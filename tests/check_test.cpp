// CHECK()/DCHECK() contract: a failed invariant prints the expression
// with file:line and aborts (the death tests), a passing one is free,
// and DCHECK disappears — unevaluated, not just non-fatal — in NDEBUG
// builds. Also pins the report-path enum-name guards converted from
// silent "unknown" fallbacks to WAKURLN_UNREACHABLE.

#include "util/check.h"

#include <gtest/gtest.h>

#include "scenario/spec.h"
#include "sim/topology.h"

namespace wakurln {
namespace {

TEST(CheckDeathTest, FailedCheckPrintsExpressionAndLocation) {
  EXPECT_DEATH(CHECK(1 == 2), "CHECK failed: 1 == 2 at .*check_test\\.cpp:[0-9]+");
}

TEST(CheckDeathTest, FailedCheckMsgCarriesTheJustification) {
  EXPECT_DEATH(CHECK_MSG(false, "event pool corrupted"),
               "CHECK failed: false \\(event pool corrupted\\) at");
}

TEST(CheckDeathTest, UnreachableAborts) {
  EXPECT_DEATH(WAKURLN_UNREACHABLE("switch was exhaustive"),
               "unreachable \\(switch was exhaustive\\)");
}

TEST(CheckTest, PassingChecksAreSilent) {
  CHECK(true);
  CHECK_MSG(2 > 1, "arithmetic still works");
  DCHECK(true);
}

TEST(CheckTest, DcheckEvaluationMatchesBuildMode) {
  int evaluations = 0;
  const auto bump = [&evaluations] {
    ++evaluations;
    return true;
  };
#ifdef NDEBUG
  // Parsed but never evaluated: hot-path DCHECKs cost nothing in Release.
  DCHECK(bump());
  EXPECT_EQ(evaluations, 0);
#else
  DCHECK(bump());
  EXPECT_EQ(evaluations, 1);
#endif
}

#ifndef NDEBUG
TEST(CheckDeathTest, DcheckIsFatalInDebugBuilds) {
  EXPECT_DEATH(DCHECK(false), "CHECK failed: false at");
}
#endif

// The enum->name helpers feed SCENARIO_*.json spec blocks. An impossible
// enum value used to serialize as a plausible-looking "unknown"; it must
// abort instead. (enum class: any int is a representable value, so the
// casts below are well-defined probes, not UB.)
TEST(CheckDeathTest, InvalidObserverPlacementAbortsInsteadOfSerializingUnknown) {
  EXPECT_DEATH(
      scenario::observer_placement_name(static_cast<scenario::ObserverPlacement>(99)),
      "invalid ObserverPlacement value");
}

TEST(CheckDeathTest, InvalidTopologyKindAborts) {
  EXPECT_DEATH(sim::topology_name(static_cast<sim::TopologyKind>(99)),
               "invalid TopologyKind value");
}

TEST(CheckDeathTest, InvalidLinkProfileAborts) {
  EXPECT_DEATH(sim::link_profile_name(static_cast<sim::LinkProfile>(99)),
               "invalid LinkProfile value");
}

}  // namespace
}  // namespace wakurln
