#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "field/fr.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "obs/tracer.h"
#include "rln/nullifier_map.h"
#include "scenario/metrics.h"
#include "sim/scheduler.h"
#include "util/stats.h"

namespace wakurln {
namespace {

// ---------------------------------------------------------------------------
// Shared percentile definition (util::stats): hand-computed pins. These
// exact values are the contract the scenario latency metrics, the bench
// harness and the obs histograms all share.

TEST(PercentileTest, OddCountHandComputed) {
  const std::vector<double> odd{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(util::percentile(odd, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(util::percentile(odd, 0.9), 4.6);
  EXPECT_DOUBLE_EQ(util::percentile(odd, 0.99), 4.96);
}

TEST(PercentileTest, EvenCountHandComputed) {
  const std::vector<double> even{4, 3, 2, 1};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(util::percentile(even, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(util::percentile(even, 0.9), 3.7);
  EXPECT_DOUBLE_EQ(util::percentile(even, 0.99), 3.97);
}

TEST(PercentileTest, EdgeRanksAndEmpty) {
  const std::vector<double> v{10, 20, 30};
  EXPECT_DOUBLE_EQ(util::percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(util::percentile(v, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(util::percentile({}, 0.5), 0.0);
}

TEST(PercentileTest, ScenarioMetricsShareTheImplementation) {
  const std::vector<double> samples{7, 1, 5, 3, 9, 2, 8};
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(scenario::percentile(samples, q), util::percentile(samples, q))
        << "q=" << q;
  }
}

// ---------------------------------------------------------------------------
// Registry.

TEST(RegistryTest, RegistrationOrderIsColumnOrder) {
  obs::Registry reg;
  obs::Counter c = reg.counter("alpha");
  obs::Gauge g = reg.gauge("beta");
  reg.probe("gamma", [] { return 7.0; });
  obs::Histogram h = reg.histogram("delta", {1, 2});

  const std::vector<std::string> expect{"alpha", "beta",     "gamma",
                                        "delta_count", "delta_p50", "delta_p90",
                                        "delta_p99"};
  EXPECT_EQ(reg.columns(), expect);

  c.inc(3);
  g.set(2.5);
  h.observe(1.5);
  const std::vector<double> row = reg.sample_row();
  ASSERT_EQ(row.size(), expect.size());
  EXPECT_DOUBLE_EQ(row[0], 3.0);
  EXPECT_DOUBLE_EQ(row[1], 2.5);
  EXPECT_DOUBLE_EQ(row[2], 7.0);
  EXPECT_DOUBLE_EQ(row[3], 1.0);  // delta_count
}

TEST(RegistryTest, DisabledRegistryIsInert) {
  obs::Registry reg(/*enabled=*/false);
  obs::Counter c = reg.counter("a");
  obs::Gauge g = reg.gauge("b");
  obs::Histogram h = reg.histogram("c", {1, 2});
  reg.probe("d", [] { return 1.0; });

  EXPECT_FALSE(reg.enabled());
  EXPECT_FALSE(c.enabled());
  EXPECT_FALSE(g.enabled());
  EXPECT_FALSE(h.enabled());
  c.inc();
  g.set(5);
  h.observe(1);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(reg.columns().empty());
  EXPECT_TRUE(reg.sample_row().empty());
  EXPECT_EQ(reg.instrument_count(), 0u);
}

TEST(RegistryTest, DuplicateAndEmptyNamesThrow) {
  obs::Registry reg;
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW((void)reg.counter(""), std::invalid_argument);
}

TEST(RegistryTest, HistogramEdgeValidationHoldsEvenWhenDisabled) {
  obs::Registry reg(/*enabled=*/false);
  EXPECT_THROW((void)reg.histogram("h", {}), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("h", {2, 1}), std::invalid_argument);
}

TEST(RegistryTest, HistogramPercentilesHandComputed) {
  obs::Registry reg;
  // One observation per unit bucket: the k-th order statistic sits at the
  // midpoint of its bucket, so the bucketed samples are {0.5 .. 4.5}.
  obs::Histogram h = reg.histogram("lat", {1, 2, 3, 4, 5});
  for (const double v : {0.5, 1.5, 2.5, 3.5, 4.5}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.9), 4.1);   // 3.5 + 0.6 * (4.5 - 3.5)
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 4.46); // 3.5 + 0.96
}

TEST(RegistryTest, HistogramOverflowClampsToLastEdge) {
  obs::Registry reg;
  obs::Histogram h = reg.histogram("big", {1, 2, 5});
  h.observe(1000);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 5.0);
}

// ---------------------------------------------------------------------------
// Time series.

TEST(TimeSeriesTest, FreezesColumnsAtFirstSample) {
  obs::Registry reg;
  obs::Counter c = reg.counter("events");
  obs::TimeSeries series;
  c.inc(2);
  series.sample(reg, 1.0);
  c.inc(3);
  series.sample(reg, 2.0);

  const std::vector<std::string> expect{"t_s", "events"};
  EXPECT_EQ(series.columns(), expect);
  ASSERT_EQ(series.rows().size(), 2u);
  EXPECT_DOUBLE_EQ(series.rows()[0][0], 1.0);
  EXPECT_DOUBLE_EQ(series.rows()[0][1], 2.0);
  EXPECT_DOUBLE_EQ(series.rows()[1][1], 5.0);

  // Registering mid-run changes the registry's shape: the next sample
  // must fail loudly instead of emitting ragged rows.
  (void)reg.counter("late");
  EXPECT_THROW(series.sample(reg, 3.0), std::logic_error);
}

// ---------------------------------------------------------------------------
// Tracer.

TEST(TracerTest, RingWrapAroundKeepsNewestEvents) {
  obs::Tracer tracer(/*capacity=*/4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    tracer.instant("tick", /*ts_us=*/100 + i, /*track=*/0);
  }
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.retained(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const std::string json = tracer.json();
  // Oldest retained event first: ts 102..105; 100 and 101 overwritten.
  EXPECT_EQ(json.find("\"ts\": 100"), std::string::npos);
  EXPECT_EQ(json.find("\"ts\": 101"), std::string::npos);
  const auto p102 = json.find("\"ts\": 102");
  const auto p105 = json.find("\"ts\": 105");
  EXPECT_NE(p102, std::string::npos);
  EXPECT_NE(p105, std::string::npos);
  EXPECT_LT(p102, p105);
}

TEST(TracerTest, MemoryStaysBoundedPastCapacity) {
  obs::Tracer tracer(/*capacity=*/64);
  tracer.instant("warm", 0, 0, "0123456789abcdef");
  const std::size_t warm = tracer.memory_bytes();
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    tracer.instant("warm", i, 0, "0123456789abcdef");
  }
  // Same name, same arg shape: the ring was reserved up front and the
  // name is interned, so 10k more events cost zero additional bytes.
  EXPECT_EQ(tracer.memory_bytes(), warm);
  EXPECT_EQ(tracer.retained(), 64u);
}

TEST(TracerTest, SpansNestLifoPerTrack) {
  obs::Tracer tracer(16);
  tracer.begin("outer", 10, /*track=*/1);
  tracer.begin("inner", 20, /*track=*/1);
  tracer.end(30, /*track=*/1);  // closes inner
  tracer.end(40, /*track=*/1);  // closes outer
  tracer.end(50, /*track=*/1);  // no open span: no-op
  EXPECT_EQ(tracer.recorded(), 2u);

  const std::string json = tracer.json();
  // Inner closes first, so it serializes first; both are complete events
  // anchored at their begin timestamps.
  const auto inner = json.find("\"inner\"");
  const auto outer = json.find("\"outer\"");
  ASSERT_NE(inner, std::string::npos);
  ASSERT_NE(outer, std::string::npos);
  EXPECT_LT(inner, outer);
  EXPECT_NE(json.find("\"ts\": 20, \"dur\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 10, \"dur\": 30"), std::string::npos);
}

TEST(TracerTest, JsonShapeAndArgs) {
  obs::Tracer tracer(8);
  tracer.instant("publish", 5, 3, "deadbeefdeadbeef");
  const std::string json = tracer.json();
  EXPECT_EQ(json.find("{\"traceEvents\": ["), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"msg\": \"deadbeefdeadbeef\"}"),
            std::string::npos);
}

TEST(TracerTest, ShortIdIsStableHexPrefix) {
  const std::vector<std::uint8_t> id{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02,
                                     0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  EXPECT_EQ(obs::short_id(id), "deadbeef01020304");
}

// ---------------------------------------------------------------------------
// memory_bytes() exactness on the two churn-heavy subsystems.

TEST(MemoryAccountingTest, NullifierMapTracksSlotTableGrowth) {
  rln::NullifierMap map;
  EXPECT_EQ(map.memory_bytes(), sizeof(rln::NullifierMap));
  const std::size_t store_empty = map.store()->memory_bytes();

  // The per-node view is shard headers plus an open-addressing table of
  // 4-byte record indices. Mirror its growth policy — power-of-two
  // capacity from 8, doubled while the post-insert load exceeds 3/4 —
  // and check the model byte-for-byte. Record contents live in the
  // shared store, accounted separately below.
  std::size_t shard_header = 0;  // measured on the first record
  std::size_t cap = 8;
  for (std::uint64_t i = 1; i <= 200; ++i) {
    map.observe(/*epoch=*/7, field::Fr::from_u64(i), field::Fr::from_u64(2 * i),
                field::Fr::from_u64(2 * i + 1));
    if (i == 1) {
      shard_header = map.memory_bytes() - sizeof(rln::NullifierMap) -
                     cap * sizeof(std::uint32_t);
      EXPECT_GT(shard_header, 0u);
    }
    if ((i + 1) * 4 > cap * 3) cap *= 2;
    EXPECT_EQ(map.memory_bytes(), sizeof(rln::NullifierMap) + shard_header +
                                      cap * sizeof(std::uint32_t))
        << "record " << i;
  }
  EXPECT_EQ(map.record_count(), 200u);
  EXPECT_EQ(cap, 512u);
  EXPECT_EQ(map.store()->shard_count(), 1u);
  EXPECT_GT(map.store()->memory_bytes(), store_empty);

  // Churn: pruning every shard returns the per-node view to the empty
  // footprint and releases the store shard (no other view holds it).
  map.prune_before(1000);
  EXPECT_EQ(map.record_count(), 0u);
  EXPECT_EQ(map.memory_bytes(), sizeof(rln::NullifierMap));
  EXPECT_EQ(map.store()->shard_count(), 0u);
  EXPECT_EQ(map.store()->memory_bytes(), store_empty);
}

TEST(MemoryAccountingTest, SharedNullifierStoreInternsRecordsOnce) {
  auto store = std::make_shared<rln::NullifierStore>();
  const std::size_t empty = store->memory_bytes();
  rln::NullifierMap a(store);
  rln::NullifierMap b(store);

  for (std::uint64_t i = 1; i <= 50; ++i) {
    a.observe(/*epoch=*/3, field::Fr::from_u64(i), field::Fr::from_u64(9),
              field::Fr::from_u64(10));
  }
  const std::size_t after_a = store->memory_bytes();
  EXPECT_GT(after_a, empty);

  // b routes the same 50 messages: its own membership view grows, but
  // every record is already interned — the shared arena does not.
  for (std::uint64_t i = 1; i <= 50; ++i) {
    EXPECT_EQ(
        b.observe(/*epoch=*/3, field::Fr::from_u64(i), field::Fr::from_u64(9),
                  field::Fr::from_u64(10))
            .outcome,
        rln::NullifierMap::Outcome::kFresh);
  }
  EXPECT_EQ(store->memory_bytes(), after_a);
  EXPECT_EQ(store->shard_count(), 1u);

  // The shard frees only when the last view releases it.
  a.prune_before(100);
  EXPECT_EQ(store->shard_count(), 1u);
  b.prune_before(100);
  EXPECT_EQ(store->shard_count(), 0u);
  EXPECT_EQ(store->memory_bytes(), empty);
}

TEST(MemoryAccountingTest, SchedulerPoolGrowsInBlocksAndNeverShrinks) {
  sim::Scheduler sched;
  const std::size_t empty = sched.memory_bytes();

  // The deterministic model sizes the pool for the observed peak of
  // pending events (in whole blocks), so a merely-scheduled event parks
  // one wheel pointer but grows no pool block until a run observes it.
  sched.schedule_at(1, [] {});
  EXPECT_EQ(sched.memory_bytes(), empty + sizeof(void*));
  sched.run_all();
  const std::size_t one_block = sched.memory_bytes() - empty;
  EXPECT_GT(one_block, 0u);

  // 600 simultaneous events: 600 wheel slots while pending; once the run
  // observes the new peak the pool model is ceil(600 / 256) = 3 blocks —
  // and it never shrinks after the queue drains.
  for (std::uint64_t i = 0; i < 600; ++i) {
    sched.schedule_at(100 + i, [] {});
  }
  EXPECT_EQ(sched.memory_bytes(), empty + one_block + 600 * sizeof(void*));
  sched.run_all();
  EXPECT_EQ(sched.memory_bytes(), empty + 3 * one_block);
  EXPECT_EQ(sched.stats().node_allocs, 600u);
  EXPECT_EQ(sched.stats().pool_reuses, 1u);
}

}  // namespace
}  // namespace wakurln
