// End-to-end integration scenarios crossing every module boundary:
// contract + chain + group sync + gossip routing + RLN validation +
// slashing economics (the full Figure 1 pipeline of the paper).

#include <gtest/gtest.h>

#include <memory>

#include "baselines/pow.h"
#include "sim/topology.h"
#include "waku/relay.h"
#include "waku/rln_relay.h"

namespace wakurln {
namespace {

using util::Bytes;
using util::Rng;

struct World {
  sim::Scheduler sched;
  Rng rng{31337};
  sim::Network net{sched, rng, link()};
  eth::Chain chain{chain_cfg()};
  std::unique_ptr<eth::RegistryListContract> contract;
  zksnark::KeyPair crs;
  std::vector<std::unique_ptr<waku::WakuRelay>> relays;
  std::vector<std::unique_ptr<waku::WakuRlnRelay>> nodes;
  std::unordered_map<sim::NodeId, std::vector<Bytes>> inbox;

  static sim::LinkParams link() {
    sim::LinkParams l;
    l.base_latency = 30 * sim::kUsPerMs;
    l.jitter = 20 * sim::kUsPerMs;
    return l;
  }
  static eth::Chain::Config chain_cfg() { return {}; }
  static waku::WakuRlnConfig rln_cfg() {
    waku::WakuRlnConfig c;
    c.tree_depth = 12;
    c.epoch_period_seconds = 10;
    c.max_delay_seconds = 20;
    return c;
  }

  explicit World(std::size_t n) {
    eth::MembershipConfig mcfg;
    mcfg.tree_depth = rln_cfg().tree_depth;
    mcfg.stake_wei = 1'000'000;
    mcfg.burn_fraction = 0.5;
    contract = std::make_unique<eth::RegistryListContract>(chain, mcfg);
    crs = zksnark::MockGroth16::setup(rln_cfg().tree_depth, rng);
    std::vector<sim::NodeId> ids;
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = net.add_node({});
      ids.push_back(id);
      relays.push_back(std::make_unique<waku::WakuRelay>(id, net));
      chain.ledger().mint(2000 + i, 50'000'000);
      nodes.push_back(std::make_unique<waku::WakuRlnRelay>(
          *relays.back(), chain, *contract, crs, 2000 + i, rln_cfg(),
          Rng(rng.next_u64())));
    }
    sim::connect_ring_plus_random(net, ids, 3, rng);
    for (auto& r : relays) r->start();
    mine_loop();
  }

  void mine_loop() {
    sched.schedule_after(chain.config().block_time_seconds * sim::kUsPerSecond,
                         [this] {
                           chain.mine_block(sched.now() / sim::kUsPerSecond);
                           mine_loop();
                         });
  }

  void run_seconds(std::uint64_t s) { sched.run_for(s * sim::kUsPerSecond); }

  void subscribe_all(const std::string& topic) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      nodes[i]->subscribe(
          topic, [this, id = relays[i]->id()](const gossipsub::TopicId&,
                                              const util::SharedBytes& payload) {
            inbox[id].push_back(payload.to_vector());
          });
    }
  }
};

TEST(IntegrationTest, FigureOnePipeline) {
  // Register → sync → publish → route with verification → receive.
  World w(12);
  w.subscribe_all("waku/toy-chat");
  for (auto& n : w.nodes) n->request_registration();
  w.run_seconds(20);

  for (auto& n : w.nodes) {
    ASSERT_TRUE(n->is_registered());
    EXPECT_EQ(n->group().member_count(), w.nodes.size());
  }

  // Three distinct honest publishers, distinct epochs not required.
  w.nodes[0]->publish("waku/toy-chat", util::to_bytes("alpha"));
  w.nodes[4]->publish("waku/toy-chat", util::to_bytes("beta"));
  w.nodes[9]->publish("waku/toy-chat", util::to_bytes("gamma"));
  w.run_seconds(15);

  for (const auto& [id, msgs] : w.inbox) {
    EXPECT_EQ(msgs.size(), 3u) << "node " << id;
  }
  // No false positives anywhere.
  for (auto& n : w.nodes) {
    EXPECT_EQ(n->stats().double_signals, 0u);
    EXPECT_EQ(n->stats().invalid_proof, 0u);
  }
}

TEST(IntegrationTest, SpammerIsGloballyRemovedAndSlasherPaid) {
  World w(10);
  w.subscribe_all("t");
  for (auto& n : w.nodes) n->request_registration();
  w.run_seconds(20);

  auto& spammer = *w.nodes[3];
  const field::Fr spammer_pk = spammer.identity().pk;
  const auto stake = w.contract->config().stake_wei;

  spammer.publish_unchecked("t", util::to_bytes("spam-a"));
  spammer.publish_unchecked("t", util::to_bytes("spam-b"));
  w.run_seconds(30);

  // Globally removed: every peer's local group dropped the spammer.
  EXPECT_FALSE(w.contract->is_active(spammer_pk));
  for (auto& n : w.nodes) {
    EXPECT_FALSE(n->group().index_of(spammer_pk).has_value());
  }
  // Economics: burn + reward account for the whole stake.
  EXPECT_EQ(w.chain.ledger().burnt_total(), stake / 2);
  std::uint64_t total_rewards = 0;
  for (std::size_t i = 0; i < w.nodes.size(); ++i) {
    const auto bal = w.chain.ledger().balance_of(2000 + i);
    if (i == 3) {
      EXPECT_EQ(bal, 50'000'000 - stake);  // spammer lost the stake
    } else if (bal > 50'000'000 - stake) {
      total_rewards += bal - (50'000'000 - stake);
    }
  }
  EXPECT_EQ(total_rewards, stake / 2);

  // Liveness is unaffected for honest peers afterwards.
  w.inbox.clear();
  w.run_seconds(10);
  EXPECT_EQ(w.nodes[0]->publish("t", util::to_bytes("after the purge")),
            waku::WakuRlnRelay::PublishOutcome::kPublished);
  w.run_seconds(15);
  std::size_t got = 0;
  for (const auto& [id, msgs] : w.inbox) got += msgs.size();
  EXPECT_EQ(got, w.nodes.size());
}

TEST(IntegrationTest, LateJoinerSyncsGroupAndParticipates) {
  World w(8);
  w.subscribe_all("t");
  for (std::size_t i = 0; i + 1 < w.nodes.size(); ++i) {
    w.nodes[i]->request_registration();
  }
  w.run_seconds(20);

  // The last node registers late; everyone (including it) must converge.
  w.nodes.back()->request_registration();
  w.run_seconds(20);
  for (auto& n : w.nodes) {
    EXPECT_EQ(n->group().member_count(), w.nodes.size());
  }
  EXPECT_EQ(w.nodes.back()->publish("t", util::to_bytes("late but valid")),
            waku::WakuRlnRelay::PublishOutcome::kPublished);
  w.run_seconds(15);
  std::size_t got = 0;
  for (const auto& [id, msgs] : w.inbox) got += msgs.size();
  EXPECT_EQ(got, w.nodes.size());
}

TEST(IntegrationTest, RootWindowToleratesRegistrationChurn) {
  // A publisher proving against a root that is a few registrations old is
  // still accepted while the root stays inside the acceptance window.
  World w(8);
  w.subscribe_all("t");
  for (auto& n : w.nodes) n->request_registration();
  w.run_seconds(20);

  auto& sender = *w.nodes[0];
  const Bytes payload = util::to_bytes("pre-churn proof");
  rln::RlnProver prover(w.crs.pk, sender.identity());
  const auto index = sender.group().index_of(sender.identity().pk);
  ASSERT_TRUE(index.has_value());
  Rng prng(11);
  const auto signal = prover.create_signal(payload, sender.current_epoch(),
                                           sender.group(), *index, prng);
  ASSERT_TRUE(signal.has_value());

  // Two more registrations advance the root twice (within window of 5).
  Rng extra_rng(99);
  for (int i = 0; i < 2; ++i) {
    const auto id = rln::Identity::generate(extra_rng);
    w.chain.ledger().mint(5000 + i, 10'000'000);
    w.chain.submit(
        5000 + i, w.contract->config().stake_wei,
        eth::MembershipContract::kRegisterCalldataBytes,
        [&w, pk = id.pk](eth::TxContext& ctx) { w.contract->register_member(ctx, pk); },
        w.sched.now() / sim::kUsPerSecond);
  }
  w.run_seconds(15);  // mine the registrations

  w.relays[0]->publish("t", waku::WakuRlnRelay::encode_envelope(*signal, payload));
  w.run_seconds(10);
  std::size_t got = 0;
  for (const auto& [id, msgs] : w.inbox) got += msgs.size();
  // Everyone delivers, including the sender (its own validator accepts the
  // stale-but-in-window root at local publish time).
  EXPECT_EQ(got, w.nodes.size());
}

TEST(IntegrationTest, PowAndRlnValidatorsCoexistOnDifferentTopics) {
  // Sanity check that the baseline machinery runs on the same stack.
  World w(6);
  w.subscribe_all("rln-topic");
  for (auto& n : w.nodes) n->request_registration();
  w.run_seconds(20);

  int pow_received = 0;
  for (auto& r : w.relays) {
    r->router().set_validator("pow-topic", baselines::make_pow_validator(8));
    r->router().subscribe("pow-topic");
  }
  w.relays[0]->router().set_message_handler(
      [&](const gossipsub::GsMessage& m) {
        if (m.topic == "pow-topic") ++pow_received;
      });
  w.run_seconds(5);
  const auto sealed = baselines::pow_seal(util::to_bytes("pow msg"), 8);
  w.relays[1]->publish("pow-topic", sealed.serialize());
  w.run_seconds(10);
  EXPECT_GE(pow_received, 1);
}

}  // namespace
}  // namespace wakurln
