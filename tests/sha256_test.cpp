#include <gtest/gtest.h>

#include "hash/sha256.h"
#include "util/bytes.h"

namespace wakurln::hash {
namespace {

using util::Bytes;
using util::from_hex;
using util::to_hex;

TEST(Sha256Test, NistVectorEmpty) {
  EXPECT_EQ(to_hex(Sha256::digest("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, NistVectorAbc) {
  EXPECT_EQ(to_hex(Sha256::digest("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, NistVectorTwoBlocks) {
  EXPECT_EQ(to_hex(Sha256::digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, NistVectorMillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.finalize(), Sha256::digest(msg)) << "split at " << split;
  }
}

TEST(Sha256Test, ExactBlockBoundaries) {
  // 55, 56, 63, 64, 65 bytes cross the padding edge cases.
  for (std::size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 128u}) {
    const std::string msg(n, 'x');
    Sha256 a;
    a.update(msg);
    const Digest d1 = a.finalize();
    const Digest d2 = Sha256::digest(msg);
    EXPECT_EQ(d1, d2) << "length " << n;
  }
}

TEST(Sha256Test, DifferentInputsDiffer) {
  EXPECT_NE(Sha256::digest("a"), Sha256::digest("b"));
  EXPECT_NE(Sha256::digest(""), Sha256::digest(std::string(1, '\0')));
}

TEST(HmacSha256Test, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = util::to_bytes("Hi There");
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  const Bytes key = util::to_bytes("Jefe");
  const Bytes data = util::to_bytes("what do ya want for nothing?");
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256Test, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const Bytes data = util::to_bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256Test, KeySensitivity) {
  const Bytes k1 = {1, 2, 3};
  const Bytes k2 = {1, 2, 4};
  const Bytes data = {9, 9, 9};
  EXPECT_NE(hmac_sha256(k1, data), hmac_sha256(k2, data));
}

}  // namespace
}  // namespace wakurln::hash
