#include <gtest/gtest.h>

#include <set>

#include "util/bytes.h"
#include "util/rng.h"
#include "util/shared_bytes.h"
#include "util/serde.h"

namespace wakurln::util {
namespace {

TEST(BytesTest, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0x0001ABFF7F"), data);
}

TEST(BytesTest, EmptyHex) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
  EXPECT_TRUE(from_hex("0x").empty());
}

TEST(BytesTest, RejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesTest, RejectsInvalidDigits) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(BytesTest, ToBytesCopiesString) {
  const Bytes b = to_bytes("hi");
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 'h');
  EXPECT_EQ(b[1], 'i');
}

TEST(BytesTest, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(equal_ct(a, b));
  EXPECT_FALSE(equal_ct(a, c));
  EXPECT_FALSE(equal_ct(a, d));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(RngTest, UnitInHalfOpenInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialMeanRoughlyCalibrated) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.3);
}

TEST(RngTest, FillCoversBuffer) {
  Rng rng(19);
  std::array<std::uint8_t, 37> buf{};
  rng.fill(buf);
  std::set<std::uint8_t> distinct(buf.begin(), buf.end());
  EXPECT_GT(distinct.size(), 10u);  // astronomically unlikely to fail
}

TEST(RngTest, ForkIsIndependentStream) {
  Rng a(23);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(SerdeTest, PrimitiveRoundTrip) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  const Bytes buf = w.take();

  ByteReader r(buf);
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.empty());
}

TEST(SerdeTest, VarBufferRoundTrip) {
  ByteWriter w;
  const Bytes payload = {9, 8, 7};
  w.put_var(payload);
  w.put_var({});
  const Bytes buf = w.take();

  ByteReader r(buf);
  const auto a = r.get_var();
  EXPECT_EQ(Bytes(a.begin(), a.end()), payload);
  EXPECT_TRUE(r.get_var().empty());
}

TEST(SerdeTest, TruncatedInputThrows) {
  const Bytes buf = {1, 2};
  ByteReader r(buf);
  EXPECT_THROW(r.get_u32(), DecodeError);
}

TEST(SerdeTest, VarLengthBeyondBufferThrows) {
  ByteWriter w;
  w.put_u32(1000);  // claims 1000 bytes follow
  w.put_u8(1);
  const Bytes buf = w.take();
  ByteReader r(buf);
  EXPECT_THROW(r.get_var(), DecodeError);
}

TEST(SerdeTest, GetArrayExactSize) {
  ByteWriter w;
  const Bytes payload = {1, 2, 3, 4};
  w.put_raw(payload);
  ByteReader r(w.data());
  const auto arr = r.get_array<4>();
  EXPECT_EQ(arr[0], 1);
  EXPECT_EQ(arr[3], 4);
  EXPECT_THROW(r.get_u8(), DecodeError);
}

TEST(SerdeTest, RemainingTracksPosition) {
  const Bytes buf = {1, 2, 3, 4, 5};
  ByteReader r(buf);
  EXPECT_EQ(r.remaining(), 5u);
  r.get_u8();
  EXPECT_EQ(r.remaining(), 4u);
  r.get_raw(4);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SharedBytesTest, SharesOneBufferAcrossCopiesAndSlices) {
  const std::uint64_t allocs0 = SharedBytes::allocation_count();
  SharedBytes a{Bytes{1, 2, 3, 4, 5}};
  EXPECT_EQ(SharedBytes::allocation_count(), allocs0 + 1);
  const SharedBytes b = a;                 // refcount bump, no allocation
  const SharedBytes mid = a.slice(1, 3);   // view, no allocation
  EXPECT_EQ(SharedBytes::allocation_count(), allocs0 + 1);
  EXPECT_EQ(a.use_count(), 3);
  EXPECT_EQ(b, a);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid[0], 2);
  EXPECT_EQ(mid[2], 4);
  EXPECT_EQ(mid.data(), a.data() + 1);  // same buffer, shifted view
  EXPECT_EQ(mid.to_vector(), (Bytes{2, 3, 4}));
}

TEST(SharedBytesTest, ComparesByContentAndHandlesEmpty) {
  const SharedBytes empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.use_count(), 0);
  EXPECT_EQ(empty, SharedBytes{});
  const SharedBytes a{Bytes{9, 8}};
  const SharedBytes same = SharedBytes::copy_of(a.span());
  EXPECT_EQ(a, same);                  // equal content, distinct buffers
  EXPECT_NE(a.data(), same.data());
  const Bytes plain{9, 8};
  EXPECT_EQ(a, plain);                 // span comparison against vectors
  EXPECT_FALSE(a == SharedBytes{Bytes{9}});
}

TEST(SharedBytesTest, SliceBoundsAreChecked) {
  const SharedBytes a{Bytes{1, 2, 3}};
  EXPECT_NO_THROW(a.slice(3, 0));
  EXPECT_THROW(a.slice(2, 2), std::out_of_range);
  EXPECT_THROW(a.slice(4, 0), std::out_of_range);
}

}  // namespace
}  // namespace wakurln::util
