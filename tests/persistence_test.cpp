#include <gtest/gtest.h>

#include "rln/persistence.h"
#include "rln/prover.h"
#include "util/rng.h"
#include "util/serde.h"

namespace wakurln::rln {
namespace {

using util::Bytes;
using util::Rng;

TEST(PersistenceTest, IdentityRoundTrip) {
  Rng rng(1);
  const Identity original = Identity::generate(rng);
  const Bytes saved = save_identity(original);
  const auto loaded = load_identity(saved);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, original);
}

TEST(PersistenceTest, IdentityRejectsCorruption) {
  Rng rng(2);
  Bytes saved = save_identity(Identity::generate(rng));
  Bytes truncated(saved.begin(), saved.end() - 1);
  EXPECT_FALSE(load_identity(truncated).has_value());
  Bytes bad_magic = saved;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(load_identity(bad_magic).has_value());
  Bytes trailing = saved;
  trailing.push_back(0);
  EXPECT_FALSE(load_identity(trailing).has_value());
}

TEST(PersistenceTest, IdentityRejectsNonCanonicalSecret) {
  Bytes forged = {0x31, 0x4e, 0x4c, 0x52};  // magic little-endian? build properly
  forged.clear();
  // Build: magic + modulus bytes (non-canonical field element).
  util::ByteWriter w;
  w.put_u32(0x524c4e31);
  w.put_raw(field::Fr::modulus_bytes_be());
  EXPECT_FALSE(load_identity(w.data()).has_value());
}

TEST(PersistenceTest, GroupRoundTripPreservesRootAndIndices) {
  Rng rng(3);
  RlnGroup group(10);
  std::vector<Identity> members;
  for (int i = 0; i < 20; ++i) {
    members.push_back(Identity::generate(rng));
    group.add_member(members.back().pk);
  }
  group.remove_member(7);   // a slashed slot
  group.remove_member(13);  // another

  const Bytes saved = save_group(group);
  const auto loaded = load_group(saved);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->root(), group.root());
  EXPECT_EQ(loaded->member_count(), group.member_count());
  EXPECT_EQ(loaded->leaf_count(), group.leaf_count());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(loaded->index_of(members[i].pk), group.index_of(members[i].pk));
  }
  EXPECT_FALSE(loaded->is_active(7));
  EXPECT_FALSE(loaded->is_active(13));
}

TEST(PersistenceTest, RestoredGroupProducesVerifiableProofs) {
  Rng rng(4);
  RlnGroup group(8);
  const Identity id = Identity::generate(rng);
  const auto index = group.add_member(id.pk);
  group.add_member(Identity::generate(rng).pk);

  const auto loaded = load_group(save_group(group));
  ASSERT_TRUE(loaded.has_value());

  const auto keys = zksnark::MockGroth16::setup(8, rng);
  const RlnProver prover(keys.pk, id);
  const RlnVerifier verifier(keys.vk);
  const Bytes payload = util::to_bytes("proof from restored group");
  const auto signal = prover.create_signal(payload, 1, *loaded, index, rng);
  ASSERT_TRUE(signal.has_value());
  EXPECT_TRUE(verifier.verify(payload, *signal));
  EXPECT_EQ(signal->root, group.root());
}

TEST(PersistenceTest, GroupRejectsCorruption) {
  Rng rng(5);
  RlnGroup group(6);
  group.add_member(Identity::generate(rng).pk);
  Bytes saved = save_group(group);

  Bytes truncated(saved.begin(), saved.end() - 5);
  EXPECT_FALSE(load_group(truncated).has_value());

  Bytes bad_depth = saved;
  bad_depth[4] = 0;  // depth 0
  EXPECT_FALSE(load_group(bad_depth).has_value());

  Bytes overflow = saved;
  overflow[8] = 0xff;  // leaf count far beyond capacity
  overflow[9] = 0xff;
  EXPECT_FALSE(load_group(overflow).has_value());
}

TEST(PersistenceTest, KeypairRoundTripInteroperates) {
  Rng rng(6);
  const auto keys = zksnark::MockGroth16::setup(8, rng);
  const auto loaded = load_keypair(save_keypair(keys));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->pk.circuit_id, keys.pk.circuit_id);
  EXPECT_EQ(loaded->pk.tree_depth, keys.pk.tree_depth);
  EXPECT_EQ(loaded->pk.simulated_size_bytes, keys.pk.simulated_size_bytes);

  // A proof made with the original proving key verifies under the loaded
  // verifying key (and vice versa).
  RlnGroup group(8);
  const Identity id = Identity::generate(rng);
  const auto index = group.add_member(id.pk);
  const RlnProver prover(keys.pk, id);
  const RlnVerifier loaded_verifier(loaded->vk);
  const Bytes payload = util::to_bytes("cross-key check");
  const auto signal = prover.create_signal(payload, 2, group, index, rng);
  ASSERT_TRUE(signal.has_value());
  EXPECT_TRUE(loaded_verifier.verify(payload, *signal));

  const RlnProver loaded_prover(loaded->pk, id);
  const RlnVerifier verifier(keys.vk);
  const auto signal2 = loaded_prover.create_signal(payload, 3, group, index, rng);
  ASSERT_TRUE(signal2.has_value());
  EXPECT_TRUE(verifier.verify(payload, *signal2));
}

TEST(PersistenceTest, KeypairRejectsCorruption) {
  Rng rng(7);
  Bytes saved = save_keypair(zksnark::MockGroth16::setup(8, rng));
  Bytes truncated(saved.begin(), saved.begin() + 10);
  EXPECT_FALSE(load_keypair(truncated).has_value());
  Bytes bad_magic = saved;
  bad_magic[0] ^= 1;
  EXPECT_FALSE(load_keypair(bad_magic).has_value());
}

}  // namespace
}  // namespace wakurln::rln
