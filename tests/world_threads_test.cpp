// Parallel world execution (sharded scheduler): the determinism contract
// under test is that world_threads changes *nothing* observable — every
// deterministic report byte, every delivery order, every timer fire is
// identical to the single-thread run.
//
// Two halves:
//   * Catalogue byte-identity: every registered scenario runs at a fixed
//     shrink config with world_threads 1, 2 and 4; the full deterministic
//     report (and the per-epoch time series) must compare equal as
//     strings.
//   * Window-barrier edge cases at the raw scheduler level, comparing a
//     2-shard execution log against the 1-shard reference: zero-latency
//     rescheduling inside a window, cross-shard arrivals tying on time
//     (merged by (origin, seq)), and cancelling a shard-owned timer from
//     a global event while its next occurrence is already armed across
//     the barrier.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "scenario/campaign.h"
#include "scenario/scenarios.h"
#include "sim/scheduler.h"

namespace wakurln {
namespace {

// ---------------------------------------------------------------------------
// Catalogue byte-identity
// ---------------------------------------------------------------------------

// Same shrink config as the report pins (12 nodes, 3 traffic epochs),
// one seed per variant. Observability is on so the per-epoch time series
// is held to the same byte-identity bar as the report.
std::string run_report(scenario::ScenarioSpec spec, unsigned world_threads) {
  spec.nodes = 12;
  spec.traffic_epochs = 3;
  spec.observability = true;
  spec.world_threads = world_threads;
  scenario::CampaignConfig cfg;
  cfg.seeds = 1;
  cfg.seed0 = 1;
  cfg.threads = 1;
  const scenario::CampaignResult result = scenario::run_campaign(spec, cfg);
  return scenario::report_json(result) + "\n" + scenario::timeseries_json(result);
}

class WorldThreadsIdentityTest
    : public ::testing::TestWithParam<scenario::ScenarioSpec> {};

TEST_P(WorldThreadsIdentityTest, ShardedRunMatchesSerialByteForByte) {
  const scenario::ScenarioSpec& spec = GetParam();
  const std::string serial = run_report(spec, 1);
  EXPECT_EQ(serial, run_report(spec, 2))
      << spec.name << ": 2-shard report diverged from the serial run";
  EXPECT_EQ(serial, run_report(spec, 4))
      << spec.name << ": 4-shard report diverged from the serial run";
}

INSTANTIATE_TEST_SUITE_P(
    Catalogue, WorldThreadsIdentityTest,
    ::testing::ValuesIn(scenario::registered_scenarios()),
    [](const ::testing::TestParamInfo<scenario::ScenarioSpec>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Window-barrier edge cases
// ---------------------------------------------------------------------------

// Records every delivery into the executing lane's own log (workers never
// share a vector) stamped with the scheduler's total-order stamp; merged()
// folds the lanes into the stamp order the determinism contract promises.
class LogSink : public sim::DeliverySink {
 public:
  explicit LogSink(sim::Scheduler& sched)
      : sched_(sched), lanes_(sched.lane_count()) {}

  void on_delivery(const sim::DeliveryEvent& ev) override {
    lanes_[sched_.current_lane()].emplace_back(
        sched_.current_stamp(),
        "t=" + std::to_string(sched_.now()) + " " + std::to_string(ev.from) +
            "->" + std::to_string(ev.to) + " bytes=" + std::to_string(ev.bytes));
    if (on) on(ev);
  }

  std::vector<std::string> merged() const {
    std::vector<std::pair<sim::Scheduler::Stamp, std::string>> all;
    for (const auto& lane : lanes_) all.insert(all.end(), lane.begin(), lane.end());
    std::stable_sort(all.begin(), all.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<std::string> out;
    out.reserve(all.size());
    for (auto& entry : all) out.push_back(std::move(entry.second));
    return out;
  }

  std::function<void(const sim::DeliveryEvent&)> on;

 private:
  sim::Scheduler& sched_;
  std::vector<std::vector<std::pair<sim::Scheduler::Stamp, std::string>>> lanes_;
};

constexpr sim::TimeUs kLookahead = 1'000;
constexpr std::size_t kNodes = 4;  // 2 shards of 2 at world_threads 2

sim::DeliveryEvent make_delivery(sim::NodeId from, sim::NodeId to,
                                 std::size_t bytes) {
  sim::DeliveryEvent ev;
  ev.from = from;
  ev.to = to;
  ev.bytes = bytes;
  return ev;
}

// A delivery handler that re-sends to the same node with delay 0 chains
// several events at the *same* (time, origin) inside one window — the
// seq counter alone must order them, and the chain must not escape the
// window's event horizon.
TEST(WorldThreadsBarrierTest, ZeroLatencyRescheduleInsideWindow) {
  auto run = [](unsigned world_threads) {
    sim::Scheduler sched(world_threads, kNodes);
    sched.set_lookahead(kLookahead);
    LogSink sink(sched);
    sched.set_delivery_sink(&sink);
    sink.on = [&](const sim::DeliveryEvent& ev) {
      if (ev.bytes > 0) {
        sched.schedule_delivery_after(0,
                                      make_delivery(ev.to, ev.to, ev.bytes - 1));
      }
    };
    for (sim::NodeId n = 0; n < kNodes; ++n) {
      sched.schedule_delivery_after(500 + 100 * n, make_delivery(n, n, 3));
    }
    sched.run_until(5'000);
    return sink.merged();
  };

  const std::vector<std::string> serial = run(1);
  ASSERT_EQ(serial.size(), kNodes * 4u);  // seed + 3 chained re-sends each
  EXPECT_EQ(serial, run(2));
}

// Two senders on different shards hit the same destination at the same
// simulated time. The mailbox merge must order them by (origin, seq) —
// node 0 (origin 1) before node 3 (origin 4) — exactly as the serial
// engine does.
TEST(WorldThreadsBarrierTest, CrossShardTieBreakMergesByOriginThenSeq) {
  auto run = [](unsigned world_threads) {
    sim::Scheduler sched(world_threads, kNodes);
    sched.set_lookahead(kLookahead);
    LogSink sink(sched);
    sched.set_delivery_sink(&sink);
    sink.on = [&](const sim::DeliveryEvent& ev) {
      // Markers fan in to node 1: from node 0 an intra-shard hop, from
      // node 3 a cross-shard hop at exactly the lookahead bound. Both
      // land at the same timestamp.
      if (ev.bytes == 1) {
        sched.schedule_delivery_after(kLookahead, make_delivery(ev.to, 1, 0));
      }
    };
    sched.schedule_delivery_after(500, make_delivery(0, 0, 1));
    sched.schedule_delivery_after(500, make_delivery(3, 3, 1));
    sched.run_until(5'000);
    return sink.merged();
  };

  const std::vector<std::string> serial = run(1);
  ASSERT_EQ(serial.size(), 4u);
  // The tied arrivals at t=1500: lower origin (node 0) first.
  EXPECT_EQ(serial[2], "t=1500 0->1 bytes=0");
  EXPECT_EQ(serial[3], "t=1500 3->1 bytes=0");
  EXPECT_EQ(serial, run(2));
}

// A shard-owned periodic timer is cancelled by a *global* event while its
// next occurrence is already enqueued on the shard lane beyond the
// barrier: the tombstone must reach across lanes, and the fire sequence
// must match the serial run exactly.
TEST(WorldThreadsBarrierTest, TimerCancelAcrossWindowBarrier) {
  auto run = [](unsigned world_threads) {
    sim::Scheduler sched(world_threads, kNodes);
    sched.set_lookahead(kLookahead);
    std::vector<std::vector<std::pair<sim::Scheduler::Stamp, std::string>>> logs(
        sched.lane_count());
    const sim::TimerHandle handle = sched.schedule_periodic_for(
        /*owner=*/2, /*first_delay=*/500, /*interval=*/500, [&] {
          logs[sched.current_lane()].emplace_back(
              sched.current_stamp(), "fire@" + std::to_string(sched.now()));
        });
    sched.schedule_at(1'750, [&] { sched.cancel(handle); });
    sched.run_until(3'000);

    std::vector<std::pair<sim::Scheduler::Stamp, std::string>> all;
    for (const auto& lane : logs) all.insert(all.end(), lane.begin(), lane.end());
    std::stable_sort(all.begin(), all.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<std::string> out;
    out.reserve(all.size());
    for (auto& entry : all) out.push_back(std::move(entry.second));
    return out;
  };

  const std::vector<std::string> expected = {"fire@500", "fire@1000",
                                             "fire@1500"};
  EXPECT_EQ(run(1), expected);
  EXPECT_EQ(run(2), expected);
}

}  // namespace
}  // namespace wakurln
