#include <gtest/gtest.h>

#include <string>

#include "sim/network.h"
#include "sim/scheduler.h"
#include "sim/topology.h"

namespace wakurln::sim {
namespace {

using util::Rng;

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(300, [&] { order.push_back(3); });
  sched.schedule_at(100, [&] { order.push_back(1); });
  sched.schedule_at(200, [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 300u);
}

TEST(SchedulerTest, TiesBreakBySubmissionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(50, [&, i] { order.push_back(i); });
  }
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, EventsMayScheduleMoreEvents) {
  Scheduler sched;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sched.schedule_after(10, chain);
  };
  sched.schedule_at(0, chain);
  sched.run_all();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sched.now(), 40u);
}

TEST(SchedulerTest, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(100, [&] { ++fired; });
  sched.schedule_at(200, [&] { ++fired; });
  sched.run_until(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), 150u);
  EXPECT_EQ(sched.pending(), 1u);
}

TEST(SchedulerTest, PastSchedulingThrows) {
  Scheduler sched;
  sched.schedule_at(100, [] {});
  sched.run_all();
  EXPECT_THROW(sched.schedule_at(50, [] {}), std::invalid_argument);
}

TEST(SchedulerTest, RunNextOnEmptyReturnsFalse) {
  Scheduler sched;
  EXPECT_FALSE(sched.run_next());
}

struct TestNode {
  std::vector<std::pair<NodeId, std::string>> received;
  std::vector<NodeId> connected;

  NodeCallbacks callbacks() {
    NodeCallbacks cb;
    cb.on_frame = [this](NodeId from, const std::any& frame, std::size_t) {
      received.emplace_back(from, std::any_cast<std::string>(frame));
    };
    cb.on_peer_connected = [this](NodeId peer) { connected.push_back(peer); };
    return cb;
  }
};

TEST(NetworkTest, DeliversWithLatency) {
  Scheduler sched;
  Rng rng(1);
  LinkParams link;
  link.base_latency = 10 * kUsPerMs;
  link.jitter = 0;
  link.loss_rate = 0;
  link.bandwidth_bytes_per_sec = 0;
  Network net(sched, rng, link);

  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);

  net.send(ida, idb, std::string("hello"), 5);
  EXPECT_TRUE(b.received.empty());
  sched.run_until(9 * kUsPerMs);
  EXPECT_TRUE(b.received.empty());
  sched.run_until(10 * kUsPerMs);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, ida);
  EXPECT_EQ(b.received[0].second, "hello");
}

TEST(NetworkTest, ConnectNotifiesBothSides) {
  Scheduler sched;
  Rng rng(2);
  Network net(sched, rng);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);
  EXPECT_EQ(a.connected, std::vector<NodeId>{idb});
  EXPECT_EQ(b.connected, std::vector<NodeId>{ida});
  EXPECT_TRUE(net.are_connected(ida, idb));
  // Reconnecting is a no-op.
  net.connect(ida, idb);
  EXPECT_EQ(a.connected.size(), 1u);
}

TEST(NetworkTest, SelfLinkRejected) {
  Scheduler sched;
  Rng rng(3);
  Network net(sched, rng);
  TestNode a;
  const NodeId ida = net.add_node(a.callbacks());
  EXPECT_THROW(net.connect(ida, ida), std::invalid_argument);
}

TEST(NetworkTest, SendWithoutLinkThrows) {
  Scheduler sched;
  Rng rng(4);
  Network net(sched, rng);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  EXPECT_THROW(net.send(ida, idb, std::string("x"), 1), std::logic_error);
}

TEST(NetworkTest, LossDropsFrames) {
  Scheduler sched;
  Rng rng(5);
  LinkParams link;
  link.loss_rate = 1.0;
  Network net(sched, rng, link);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);
  for (int i = 0; i < 10; ++i) net.send(ida, idb, std::string("x"), 1);
  sched.run_all();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().frames_lost, 10u);
}

TEST(NetworkTest, InFlightFramesDropOnDisconnect) {
  Scheduler sched;
  Rng rng(6);
  Network net(sched, rng);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);
  net.send(ida, idb, std::string("x"), 1);
  net.disconnect(ida, idb);
  sched.run_all();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().frames_lost, 1u);
}

TEST(NetworkTest, BandwidthAddsSizeDependentDelay) {
  Scheduler sched;
  Rng rng(7);
  LinkParams link;
  link.base_latency = 0;
  link.jitter = 0;
  link.bandwidth_bytes_per_sec = 1000.0;  // 1 byte per ms
  Network net(sched, rng, link);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);
  net.send(ida, idb, std::string("x"), 500);  // 0.5 s serialisation
  sched.run_until(499 * kUsPerMs);
  EXPECT_TRUE(b.received.empty());
  sched.run_until(500 * kUsPerMs);
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(NetworkTest, TrafficAccounting) {
  Scheduler sched;
  Rng rng(8);
  Network net(sched, rng);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);
  net.send(ida, idb, std::string("x"), 100);
  net.send(ida, idb, std::string("y"), 50);
  sched.run_all();
  EXPECT_EQ(net.bytes_sent_by(ida), 150u);
  EXPECT_EQ(net.bytes_received_by(idb), 150u);
  EXPECT_EQ(net.stats().bytes_sent, 150u);
  EXPECT_EQ(net.stats().frames_delivered, 2u);
}

TEST(TopologyTest, RingPlusRandomIsConnected) {
  Scheduler sched;
  Rng rng(9);
  Network net(sched, rng);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 30; ++i) nodes.push_back(net.add_node({}));
  connect_ring_plus_random(net, nodes, 2, rng);

  // BFS connectivity check.
  std::vector<bool> visited(nodes.size(), false);
  std::vector<NodeId> frontier = {nodes[0]};
  visited[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId cur = frontier.back();
    frontier.pop_back();
    for (NodeId next : net.neighbors(cur)) {
      if (!visited[next]) {
        visited[next] = true;
        ++reached;
        frontier.push_back(next);
      }
    }
  }
  EXPECT_EQ(reached, nodes.size());
}

TEST(TopologyTest, ConnectToRandomPeersRespectsDegree) {
  Scheduler sched;
  Rng rng(10);
  Network net(sched, rng);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 10; ++i) nodes.push_back(net.add_node({}));
  const NodeId newcomer = net.add_node({});
  connect_to_random_peers(net, newcomer, nodes, 4, rng);
  EXPECT_EQ(net.neighbors(newcomer).size(), 4u);
  // Never connects to itself even if listed.
  std::vector<NodeId> incl = nodes;
  incl.push_back(newcomer);
  const NodeId other = net.add_node({});
  connect_to_random_peers(net, other, incl, 20, rng);
  for (NodeId n : net.neighbors(other)) EXPECT_NE(n, other);
}

TEST(DeterminismTest, SameSeedSameSchedule) {
  auto run = [](std::uint64_t seed) {
    Scheduler sched;
    Rng rng(seed);
    Network net(sched, rng);
    TestNode a, b;
    const NodeId ida = net.add_node(a.callbacks());
    const NodeId idb = net.add_node(b.callbacks());
    net.connect(ida, idb);
    for (int i = 0; i < 20; ++i) {
      net.send(ida, idb, std::string("m") + std::to_string(i), 10 + i);
    }
    sched.run_all();
    return sched.now();
  };
  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(run(1234), run(5678));
}

}  // namespace
}  // namespace wakurln::sim
