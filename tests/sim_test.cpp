#include <gtest/gtest.h>

#include <functional>
#include <queue>
#include <string>

#include "sim/network.h"
#include "sim/scheduler.h"
#include "sim/topology.h"

namespace wakurln::sim {
namespace {

using util::Rng;

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(300, [&] { order.push_back(3); });
  sched.schedule_at(100, [&] { order.push_back(1); });
  sched.schedule_at(200, [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 300u);
}

TEST(SchedulerTest, TiesBreakBySubmissionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(50, [&, i] { order.push_back(i); });
  }
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, EventsMayScheduleMoreEvents) {
  Scheduler sched;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sched.schedule_after(10, chain);
  };
  sched.schedule_at(0, chain);
  sched.run_all();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sched.now(), 40u);
}

TEST(SchedulerTest, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(100, [&] { ++fired; });
  sched.schedule_at(200, [&] { ++fired; });
  sched.run_until(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), 150u);
  EXPECT_EQ(sched.pending(), 1u);
}

TEST(SchedulerTest, PastSchedulingThrows) {
  Scheduler sched;
  sched.schedule_at(100, [] {});
  sched.run_all();
  EXPECT_THROW(sched.schedule_at(50, [] {}), std::invalid_argument);
}

TEST(SchedulerTest, RunNextOnEmptyReturnsFalse) {
  Scheduler sched;
  EXPECT_FALSE(sched.run_next());
}

TEST(SchedulerTest, ZeroDelayEventRunsAtCurrentTime) {
  Scheduler sched;
  sched.schedule_at(100, [] {});
  sched.run_all();
  ASSERT_EQ(sched.now(), 100u);
  bool fired = false;
  sched.schedule_after(0, [&] {
    fired = true;
  });
  EXPECT_EQ(sched.pending(), 1u);
  sched.run_until(100);  // zero-latency event is due *now*
  EXPECT_TRUE(fired);
  EXPECT_EQ(sched.now(), 100u);
}

TEST(SchedulerTest, SameTimestampNestedSchedulingRunsAfterExistingTies) {
  // An event that schedules a same-timestamp follow-up must see the
  // follow-up run after every already-queued event at that timestamp
  // (sequence numbers keep growing), and the whole order must be
  // deterministic — the scenario runner's churn/publish interleavings
  // depend on this.
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(10, [&] {
    order.push_back(0);
    sched.schedule_at(10, [&] { order.push_back(2); });
  });
  sched.schedule_at(10, [&] { order.push_back(1); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SchedulerTest, RunUntilBoundaryIsInclusiveAndDeterministic) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(200, [&] { order.push_back(0); });
  sched.schedule_at(200, [&] { order.push_back(1); });
  sched.schedule_at(201, [&] { order.push_back(2); });
  sched.run_until(200);  // both boundary events run, in submission order
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(sched.pending(), 1u);
}

TEST(SchedulerTest, ReentrantSameTickSchedulingRunsWithinSameDrain) {
  // The FIFO contract (sim/scheduler.h): an event running at time T may
  // schedule more work at T; the new event runs after every event already
  // queued at T, inside the same run_until drain — the drain re-checks
  // the queue after every execution.
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(500, [&] {
    order.push_back(0);
    sched.schedule_at(500, [&] {
      order.push_back(2);
      sched.schedule_at(500, [&] { order.push_back(3); });
    });
  });
  sched.schedule_at(500, [&] { order.push_back(1); });
  sched.schedule_at(501, [&] { order.push_back(4); });
  sched.run_until(500);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sched.pending(), 1u);
  EXPECT_EQ(sched.now(), 500u);
}

TEST(SchedulerTest, SteadyStateSchedulingReusesPooledNodes) {
  Scheduler sched;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 8; ++i) sched.schedule_after(10, [] {});
    sched.run_all();
  }
  const Scheduler::Stats& st = sched.stats();
  EXPECT_EQ(st.scheduled, 800u);
  EXPECT_EQ(st.executed, 800u);
  // Only the first round's peak allocates; every later event recycles.
  EXPECT_EQ(st.node_allocs, 8u);
  EXPECT_EQ(st.pool_reuses, 792u);
  EXPECT_EQ(st.peak_pending, 8u);
}

TEST(SchedulerTest, FarFutureEventsWaitInOverflowAndMigrate) {
  // Events beyond the ring horizon (~8.4 s) park in the fallback heap and
  // migrate into the ring as the cursor advances; global (time, seq)
  // order is unaffected.
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(20 * kUsPerSecond, [&] { order.push_back(2); });
  sched.schedule_at(100 * kUsPerSecond, [&] { order.push_back(3); });
  sched.schedule_at(100 * kUsPerSecond, [&] { order.push_back(4); });  // seq tie-break
  sched.schedule_at(kUsPerMs, [&] { order.push_back(1); });
  EXPECT_GE(sched.stats().overflow_events, 3u);
  sched.run_until(20 * kUsPerSecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sched.now(), 100 * kUsPerSecond);
}

TEST(SchedulerTest, PeriodicTimerMatchesTailRescheduleSemantics) {
  // A periodic timer re-arms after its callback returns, so the next
  // occurrence is sequenced after everything the callback scheduled —
  // exactly the classic "schedule_after at the end of the tick" idiom.
  Scheduler sched;
  std::vector<std::string> order;
  int fires = 0;
  TimerHandle h;
  h = sched.schedule_periodic(100, 100, [&] {
    ++fires;
    order.push_back("tick" + std::to_string(sched.now()));
    if (fires == 1) {
      sched.schedule_after(100, [&] { order.push_back("oneshot200"); });
    }
    if (fires == 3) {
      EXPECT_TRUE(sched.cancel(h));  // cancel from own callback
    }
  });
  EXPECT_TRUE(sched.timer_active(h));
  sched.run_for(10'000);
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(order, (std::vector<std::string>{"tick100", "oneshot200", "tick200",
                                             "tick300"}));
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_FALSE(sched.timer_active(h));
  EXPECT_FALSE(sched.cancel(h));  // stale handle: no-op
  EXPECT_EQ(sched.stats().timer_fires, 3u);
  EXPECT_EQ(sched.stats().timers_cancelled, 1u);
}

TEST(SchedulerTest, CancelledTimerNeverFiresAgainAndSlotIsRecycled) {
  Scheduler sched;
  int a_fires = 0;
  int b_fires = 0;
  const TimerHandle a = sched.schedule_periodic(50, 50, [&] { ++a_fires; });
  sched.run_until(120);  // fires at 50 and 100
  EXPECT_EQ(a_fires, 2);
  EXPECT_EQ(sched.pending(), 1u);  // the armed occurrence at 150
  EXPECT_TRUE(sched.cancel(a));
  EXPECT_EQ(sched.pending(), 0u);  // cancellation retires it immediately
  EXPECT_FALSE(sched.timer_active(a));
  // The freed slot is recycled; the stale handle must not reach timer b.
  const TimerHandle b = sched.schedule_periodic(50, 50, [&] { ++b_fires; });
  EXPECT_FALSE(sched.cancel(a));
  sched.run_until(400);
  EXPECT_EQ(a_fires, 2);
  EXPECT_GE(b_fires, 4);
  EXPECT_TRUE(sched.timer_active(b));
}

TEST(SchedulerTest, ZeroIntervalPeriodicTimerRejected) {
  Scheduler sched;
  EXPECT_THROW(sched.schedule_periodic(10, 0, [] {}), std::invalid_argument);
}

namespace {

/// The classic single-heap scheduler PR 0–3 ran on, kept as the executable
/// specification of the (time, seq) contract: the calendar-queue engine
/// must produce byte-identical execution orders.
class ReferenceScheduler {
 public:
  TimeUs now() const { return now_; }
  void schedule_at(TimeUs t, std::function<void()> fn) {
    queue_.push(Ev{t, next_seq_++, std::move(fn)});
  }
  void schedule_after(TimeUs d, std::function<void()> fn) {
    schedule_at(now_ + d, std::move(fn));
  }
  bool run_next() {
    if (queue_.empty()) return false;
    Ev ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    return true;
  }
  void run_until(TimeUs t) {
    while (!queue_.empty() && queue_.top().time <= t) run_next();
    if (t > now_) now_ = t;
  }
  void run_all() {
    while (run_next()) {
    }
  }

 private:
  struct Ev {
    TimeUs time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  TimeUs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Ev, std::vector<Ev>, Later> queue_;
};

/// Drives a scheduler through a deterministic branching script mixing
/// same-tick, near-future and far-future (overflow-horizon) delays, and
/// records the execution order.
template <typename S>
class ScriptRunner {
 public:
  explicit ScriptRunner(S& sched) : sched_(sched) {}

  void spawn(std::uint64_t id, int depth) {
    const TimeUs delay = delay_of(id);
    sched_.schedule_after(delay, [this, id, depth] {
      log_.emplace_back(sched_.now(), id);
      if (depth < 3) {
        spawn(id * 3 + 1, depth + 1);
        if (id % 2 == 0) spawn(id * 3 + 2, depth + 1);
      }
    });
  }

  const std::vector<std::pair<TimeUs, std::uint64_t>>& log() const { return log_; }

 private:
  static TimeUs delay_of(std::uint64_t id) {
    if (id % 7 == 0) return 0;  // same-tick reentrant
    if (id % 5 == 0) return 9 * kUsPerSecond + (id % 13) * kUsPerSecond;  // overflow
    return (id % 3) * 37 * kUsPerMs + id % 997;  // near future
  }

  S& sched_;
  std::vector<std::pair<TimeUs, std::uint64_t>> log_;
};

template <typename S>
std::vector<std::pair<TimeUs, std::uint64_t>> run_script(S& sched) {
  ScriptRunner<S> runner(sched);
  for (std::uint64_t i = 0; i < 40; ++i) runner.spawn(i, 0);
  sched.run_until(kUsPerSecond);
  sched.run_until(5 * kUsPerSecond);
  for (int i = 0; i < 10; ++i) sched.run_next();
  sched.run_all();
  return runner.log();
}

}  // namespace

TEST(SchedulerTest, CalendarQueueAgreesWithReferenceHeap) {
  Scheduler wheel;
  ReferenceScheduler heap;
  const auto wheel_log = run_script(wheel);
  const auto heap_log = run_script(heap);
  ASSERT_GT(wheel_log.size(), 100u);
  EXPECT_EQ(wheel_log, heap_log);
  EXPECT_EQ(wheel.now(), heap.now());
  EXPECT_GT(wheel.stats().overflow_events, 0u);  // the script reached the heap
}

struct TestNode {
  std::vector<std::pair<NodeId, std::string>> received;
  std::vector<NodeId> connected;

  NodeCallbacks callbacks() {
    NodeCallbacks cb;
    cb.on_frame = [this](NodeId from, const sim::Frame& frame, std::size_t) {
      const std::string* text = frame.get_if<std::string>();
      received.emplace_back(from, text ? *text : std::string());
    };
    cb.on_peer_connected = [this](NodeId peer) { connected.push_back(peer); };
    return cb;
  }
};

TEST(NetworkTest, DeliversWithLatency) {
  Scheduler sched;
  Rng rng(1);
  LinkParams link;
  link.base_latency = 10 * kUsPerMs;
  link.jitter = 0;
  link.loss_rate = 0;
  link.bandwidth_bytes_per_sec = 0;
  Network net(sched, rng, link);

  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);

  net.send(ida, idb, sim::Frame::of(std::string("hello")), 5);
  EXPECT_TRUE(b.received.empty());
  sched.run_until(9 * kUsPerMs);
  EXPECT_TRUE(b.received.empty());
  sched.run_until(10 * kUsPerMs);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, ida);
  EXPECT_EQ(b.received[0].second, "hello");
}

TEST(NetworkTest, ConnectNotifiesBothSides) {
  Scheduler sched;
  Rng rng(2);
  Network net(sched, rng);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);
  EXPECT_EQ(a.connected, std::vector<NodeId>{idb});
  EXPECT_EQ(b.connected, std::vector<NodeId>{ida});
  EXPECT_TRUE(net.are_connected(ida, idb));
  // Reconnecting is a no-op.
  net.connect(ida, idb);
  EXPECT_EQ(a.connected.size(), 1u);
}

TEST(NetworkTest, SelfLinkRejected) {
  Scheduler sched;
  Rng rng(3);
  Network net(sched, rng);
  TestNode a;
  const NodeId ida = net.add_node(a.callbacks());
  EXPECT_THROW(net.connect(ida, ida), std::invalid_argument);
}

TEST(NetworkTest, SendWithoutLinkThrows) {
  Scheduler sched;
  Rng rng(4);
  Network net(sched, rng);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  EXPECT_THROW(net.send(ida, idb, sim::Frame::of(std::string("x")), 1), std::logic_error);
}

TEST(NetworkTest, LossDropsFrames) {
  Scheduler sched;
  Rng rng(5);
  LinkParams link;
  link.loss_rate = 1.0;
  Network net(sched, rng, link);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);
  for (int i = 0; i < 10; ++i) net.send(ida, idb, sim::Frame::of(std::string("x")), 1);
  sched.run_all();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().frames_lost, 10u);
}

TEST(NetworkTest, InFlightFramesDropOnDisconnect) {
  Scheduler sched;
  Rng rng(6);
  Network net(sched, rng);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);
  net.send(ida, idb, sim::Frame::of(std::string("x")), 1);
  net.disconnect(ida, idb);
  sched.run_all();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().frames_lost, 1u);
}

TEST(NetworkTest, BandwidthAddsSizeDependentDelay) {
  Scheduler sched;
  Rng rng(7);
  LinkParams link;
  link.base_latency = 0;
  link.jitter = 0;
  link.bandwidth_bytes_per_sec = 1000.0;  // 1 byte per ms
  Network net(sched, rng, link);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);
  net.send(ida, idb, sim::Frame::of(std::string("x")), 500);  // 0.5 s serialisation
  sched.run_until(499 * kUsPerMs);
  EXPECT_TRUE(b.received.empty());
  sched.run_until(500 * kUsPerMs);
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(NetworkTest, TrafficAccounting) {
  Scheduler sched;
  Rng rng(8);
  Network net(sched, rng);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);
  net.send(ida, idb, sim::Frame::of(std::string("x")), 100);
  net.send(ida, idb, sim::Frame::of(std::string("y")), 50);
  sched.run_all();
  EXPECT_EQ(net.bytes_sent_by(ida), 150u);
  EXPECT_EQ(net.bytes_received_by(idb), 150u);
  EXPECT_EQ(net.stats().bytes_sent, 150u);
  EXPECT_EQ(net.stats().frames_delivered, 2u);
}

TEST(NetworkTest, DropInFlightPreventsStaleDeliveryAfterRejoin) {
  // Regression: a frame sent before a node departs must not deliver into
  // the node after it re-links, even though the link exists again by the
  // frame's arrival time. drop_in_flight invalidates the in-flight frame.
  Scheduler sched;
  Rng rng(11);
  LinkParams link;
  link.base_latency = 10 * kUsPerMs;
  link.jitter = 0;
  link.bandwidth_bytes_per_sec = 0;
  Network net(sched, rng, link);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);

  net.send(ida, idb, sim::Frame::of(std::string("stale")), 5);
  // b departs (links torn down, in-flight frames invalidated) and rejoins
  // before the frame's arrival time.
  net.disconnect(ida, idb);
  net.drop_in_flight(idb);
  net.connect(ida, idb);
  sched.run_all();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().frames_lost, 1u);

  // Frames sent after the rejoin deliver normally.
  net.send(ida, idb, sim::Frame::of(std::string("fresh")), 5);
  sched.run_all();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].second, "fresh");
}

TEST(NetworkTest, WithoutDropInFlightStaleFrameWouldDeliver) {
  // Documents why drop_in_flight exists: a disconnect/reconnect pair alone
  // does not invalidate frames already on the wire.
  Scheduler sched;
  Rng rng(12);
  LinkParams link;
  link.base_latency = 10 * kUsPerMs;
  link.jitter = 0;
  link.bandwidth_bytes_per_sec = 0;
  Network net(sched, rng, link);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);
  net.send(ida, idb, sim::Frame::of(std::string("stale")), 5);
  net.disconnect(ida, idb);
  net.connect(ida, idb);
  sched.run_all();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(NetworkTest, FrameTapObservesDeliveriesOnly) {
  Scheduler sched;
  Rng rng(13);
  LinkParams link;
  link.base_latency = kUsPerMs;
  link.jitter = 0;
  link.loss_rate = 0;
  link.bandwidth_bytes_per_sec = 0;
  Network net(sched, rng, link);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);

  std::vector<std::pair<NodeId, NodeId>> taps;
  net.set_frame_tap([&](NodeId from, NodeId to, const sim::Frame&, std::size_t) {
    taps.emplace_back(from, to);
  });

  net.send(ida, idb, sim::Frame::of(std::string("seen")), 4);
  net.send(idb, ida, sim::Frame::of(std::string("back")), 4);
  sched.run_all();
  // This one is dropped in flight and must not reach the tap.
  net.send(ida, idb, sim::Frame::of(std::string("dropped")), 7);
  net.drop_in_flight(idb);
  sched.run_all();

  ASSERT_EQ(taps.size(), 2u);
  EXPECT_EQ(taps[0], (std::pair<NodeId, NodeId>{ida, idb}));
  EXPECT_EQ(taps[1], (std::pair<NodeId, NodeId>{idb, ida}));
  EXPECT_EQ(net.stats().frames_lost, 1u);
}

TEST(NetworkTest, CancelPeriodicSenderLeavesInFlightDeliveryIntact) {
  // Cancelling a periodic timer races a delivery its callback already
  // scheduled: the cancellation retires the timer, not the pooled frame
  // event on the wire.
  Scheduler sched;
  Rng rng(21);
  LinkParams link;
  link.base_latency = 10 * kUsPerMs;
  link.jitter = 0;
  link.bandwidth_bytes_per_sec = 0;
  Network net(sched, rng, link);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);

  TimerHandle ticker = sched.schedule_periodic(kUsPerMs, kUsPerMs, [&] {
    net.send(ida, idb, sim::Frame::of(std::string("tick")), 4);
  });
  sched.run_until(kUsPerMs);     // one tick fired; its frame arrives at 11 ms
  EXPECT_TRUE(sched.cancel(ticker));
  sched.run_all();
  ASSERT_EQ(b.received.size(), 1u);  // the in-flight frame still lands
  EXPECT_EQ(b.received[0].second, "tick");
  EXPECT_EQ(sched.stats().timer_fires, 1u);
}

TEST(NetworkTest, DropInFlightReleasesPooledFramePayload) {
  // A pooled delivery event cleared by drop_in_flight must not keep the
  // frame payload alive from the free list (node churn at scale would
  // otherwise pin dead payload memory).
  Scheduler sched;
  Rng rng(23);
  LinkParams link;
  link.base_latency = 10 * kUsPerMs;
  link.jitter = 0;
  link.bandwidth_bytes_per_sec = 0;
  Network net(sched, rng, link);
  TestNode a, b;
  const NodeId ida = net.add_node(a.callbacks());
  const NodeId idb = net.add_node(b.callbacks());
  net.connect(ida, idb);

  auto payload = std::make_shared<const std::string>("pooled payload");
  net.send(ida, idb, sim::Frame::wrap(payload), 14);
  EXPECT_GT(payload.use_count(), 1);  // held by the queued delivery event
  net.drop_in_flight(idb);
  sched.run_all();
  EXPECT_EQ(payload.use_count(), 1);  // released when the event retired
  EXPECT_EQ(net.stats().frames_lost, 1u);
  EXPECT_TRUE(b.received.empty());
}

TEST(NetworkTest, OneNetworkPerSchedulerEnforced) {
  Scheduler sched;
  Rng rng(24);
  Network net(sched, rng);
  EXPECT_THROW(Network(sched, rng), std::logic_error);
}

TEST(TopologyTest, RingPlusRandomIsConnected) {
  Scheduler sched;
  Rng rng(9);
  Network net(sched, rng);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 30; ++i) nodes.push_back(net.add_node({}));
  connect_ring_plus_random(net, nodes, 2, rng);

  // BFS connectivity check.
  std::vector<bool> visited(nodes.size(), false);
  std::vector<NodeId> frontier = {nodes[0]};
  visited[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId cur = frontier.back();
    frontier.pop_back();
    for (NodeId next : net.neighbors(cur)) {
      if (!visited[next]) {
        visited[next] = true;
        ++reached;
        frontier.push_back(next);
      }
    }
  }
  EXPECT_EQ(reached, nodes.size());
}

TEST(TopologyTest, ConnectToRandomPeersRespectsDegree) {
  Scheduler sched;
  Rng rng(10);
  Network net(sched, rng);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 10; ++i) nodes.push_back(net.add_node({}));
  const NodeId newcomer = net.add_node({});
  connect_to_random_peers(net, newcomer, nodes, 4, rng);
  EXPECT_EQ(net.neighbors(newcomer).size(), 4u);
  // Never connects to itself even if listed.
  std::vector<NodeId> incl = nodes;
  incl.push_back(newcomer);
  const NodeId other = net.add_node({});
  connect_to_random_peers(net, other, incl, 20, rng);
  for (NodeId n : net.neighbors(other)) EXPECT_NE(n, other);
}

TEST(TopologyTest, RingPlusRandomTinyNetworks) {
  Scheduler sched;
  Rng rng(14);
  Network net(sched, rng);
  // 0 and 1 nodes: no-ops, no crash.
  std::vector<NodeId> none;
  connect_ring_plus_random(net, none, 3, rng);
  std::vector<NodeId> one = {net.add_node({})};
  connect_ring_plus_random(net, one, 3, rng);
  EXPECT_TRUE(net.neighbors(one[0]).empty());
  // 2 nodes: a single link, no chords (chords need >= 3 nodes).
  std::vector<NodeId> two = {net.add_node({}), net.add_node({})};
  connect_ring_plus_random(net, two, 3, rng);
  EXPECT_EQ(net.neighbors(two[0]), std::vector<NodeId>{two[1]});
}

TEST(TopologyTest, ErdosRenyiExtremes) {
  Scheduler sched;
  Rng rng(15);
  Network net(sched, rng);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 12; ++i) nodes.push_back(net.add_node({}));

  connect_erdos_renyi(net, nodes, 0.0, rng);
  for (NodeId n : nodes) EXPECT_TRUE(net.neighbors(n).empty());

  connect_erdos_renyi(net, nodes, 1.0, rng);
  for (NodeId n : nodes) EXPECT_EQ(net.neighbors(n).size(), nodes.size() - 1);
}

TEST(TopologyTest, BuildTopologyDispatchesByKind) {
  Scheduler sched;
  Rng rng(16);
  Network net(sched, rng);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 10; ++i) nodes.push_back(net.add_node({}));

  build_topology(net, nodes, TopologyKind::kErdosRenyi, /*extra_per_node=*/9,
                 /*edge_probability=*/0.0, rng);
  for (NodeId n : nodes) EXPECT_TRUE(net.neighbors(n).empty());

  build_topology(net, nodes, TopologyKind::kRingPlusRandom, /*extra_per_node=*/0,
                 /*edge_probability=*/0.0, rng);
  for (NodeId n : nodes) EXPECT_GE(net.neighbors(n).size(), 2u);  // the ring
}

TEST(TopologyTest, TopologyNamesRoundTrip) {
  for (const TopologyKind kind :
       {TopologyKind::kRingPlusRandom, TopologyKind::kErdosRenyi}) {
    EXPECT_EQ(topology_from_name(topology_name(kind)), kind);
  }
  EXPECT_THROW(topology_from_name("moebius_strip"), std::invalid_argument);
}

TEST(DeterminismTest, SameSeedSameSchedule) {
  auto run = [](std::uint64_t seed) {
    Scheduler sched;
    Rng rng(seed);
    Network net(sched, rng);
    TestNode a, b;
    const NodeId ida = net.add_node(a.callbacks());
    const NodeId idb = net.add_node(b.callbacks());
    net.connect(ida, idb);
    for (int i = 0; i < 20; ++i) {
      net.send(ida, idb, sim::Frame::of(std::string("m") + std::to_string(i)), 10 + i);
    }
    sched.run_all();
    return sched.now();
  };
  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(run(1234), run(5678));
}

TEST(FrameTest, SharesOnePayloadAcrossFanOut) {
  const Frame a = Frame::of(std::string("shared payload"));
  const Frame b = a;  // refcount bump, no clone
  EXPECT_EQ(a.use_count(), 2);
  ASSERT_NE(a.get_if<std::string>(), nullptr);
  EXPECT_EQ(a.get_if<std::string>(), b.get_if<std::string>());  // same object
  EXPECT_EQ(*b.get_if<std::string>(), "shared payload");
  // Typed access is exact: a string frame is not an int frame.
  EXPECT_EQ(a.get_if<int>(), nullptr);
  const Frame empty;
  EXPECT_FALSE(empty.has_value());
  EXPECT_EQ(empty.get_if<std::string>(), nullptr);
}

TEST(FrameTest, WrapAdoptsExistingSharedPayload) {
  auto payload = std::make_shared<const int>(41);
  const Frame f = Frame::wrap(payload);
  EXPECT_EQ(payload.use_count(), 2);
  ASSERT_NE(f.get_if<int>(), nullptr);
  EXPECT_EQ(*f.get_if<int>(), 41);
  EXPECT_EQ(f.get_if<int>(), payload.get());
}

TEST(GeoLatencyTest, NamesAndRegionsAreStable) {
  EXPECT_STREQ(link_profile_name(LinkProfile::kGeo), "geo");
  EXPECT_EQ(link_profile_from_name("uniform"), LinkProfile::kUniform);
  EXPECT_EQ(link_profile_from_name("geo"), LinkProfile::kGeo);
  EXPECT_THROW(link_profile_from_name("mars"), std::invalid_argument);
  // Contiguous blocks cover all regions in order.
  EXPECT_EQ(geo_region_of(0, 100), 0u);
  EXPECT_EQ(geo_region_of(99, 100), kGeoRegions - 1);
  for (std::size_t i = 1; i < 100; ++i) {
    EXPECT_GE(geo_region_of(i, 100), geo_region_of(i - 1, 100));
  }
}

TEST(GeoLatencyTest, CrossRegionLinksAreSlowerThanLocalOnes) {
  LinkParams base;
  base.loss_rate = 0.25;
  const LinkParams local = geo_link_params(0, 0, base);
  const LinkParams far = geo_link_params(0, 3, base);
  EXPECT_GT(far.base_latency, 10 * local.base_latency);
  EXPECT_EQ(local.loss_rate, base.loss_rate);  // non-latency params inherited
  EXPECT_EQ(far.bandwidth_bytes_per_sec, base.bandwidth_bytes_per_sec);
  // Symmetric matrix.
  EXPECT_EQ(geo_link_params(3, 0, base).base_latency, far.base_latency);
}

TEST(GeoLatencyTest, RegionalParamsCoverExistingAndFutureLinks) {
  Rng rng(77);
  Scheduler sched;
  LinkParams base;
  base.base_latency = 1 * kUsPerMs;
  base.jitter = 0;
  Network net(sched, rng, base);
  std::vector<NodeId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(net.add_node({}));
  net.connect(ids[0], ids[1]);  // same region (nodes 0-1 of 10)
  net.connect(ids[0], ids[9]);  // cross-region (region 0 vs 4)
  apply_geo_latency(net, ids, base);
  EXPECT_GT(net.link_params(ids[0], ids[9]).base_latency,
            net.link_params(ids[0], ids[1]).base_latency);
  // Regional mode covers links created after the profile was applied
  // (churn rejoin, peer exchange): the new link gets its region pair's
  // params, not the default.
  net.connect(ids[2], ids[9]);
  EXPECT_EQ(net.link_params(ids[2], ids[9]).base_latency,
            geo_link_params(1, 4, base).base_latency);
  // A targeted per-link override still wins over the region pair.
  LinkParams pinned = base;
  pinned.base_latency = 123 * kUsPerMs;
  net.set_link_params(ids[0], ids[9], pinned);
  EXPECT_EQ(net.link_params(ids[0], ids[9]).base_latency, pinned.base_latency);
}

}  // namespace
}  // namespace wakurln::sim
