// Differential suite for the batched field kernels: every batch path in
// src/field must be *bit-identical* to the scalar reference operation it
// replaces — not merely equal mod r. Elements are stored canonically, so
// EXPECT_EQ on Fr (raw limb comparison) is exactly that bit-equality
// claim. The suite drives seeded-random property sweeps plus the edges
// that break Montgomery code in practice: 0, 1, r-1, values whose raw
// Montgomery limbs sit at the reduction boundary, batch sizes 0 / 1 /
// odd / 4-lane remainders / large, and aliased outputs.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "field/fr.h"
#include "util/rng.h"

namespace wakurln::field {
namespace {

using util::Rng;

// r - 1, the largest canonical element.
Fr r_minus_one() { return -Fr::one(); }

// Elements that stress the CIOS reduction boundary: tiny values, the
// canonical extremes, and values near r from both sides of small offsets.
std::vector<Fr> edge_elements() {
  std::vector<Fr> edges = {Fr::zero(), Fr::one(), Fr::from_u64(2),
                           r_minus_one(), r_minus_one() - Fr::one()};
  // Per-limb extremes: all-ones and sign-bit limbs from both directions
  // push carries through every CIOS iteration.
  for (std::uint64_t v : {0xffffffffffffffffULL, 0x8000000000000000ULL}) {
    edges.push_back(Fr::from_u64(v));
    edges.push_back(-Fr::from_u64(v));
  }
  return edges;
}

std::vector<Fr> random_elements(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Fr> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(Fr::random(rng));
  return xs;
}

// ---------------------------------------------------------------------------
// mul_batch / square_batch

TEST(FrBatchTest, MulBatchMatchesScalarOnRandomInputs) {
  // 1000 exercises the 4-wide kernel ~250 times plus no tail; sweep
  // nearby sizes so every tail remainder (1, 2, 3) is also covered.
  for (std::size_t n : {1000u, 1001u, 1002u, 1003u}) {
    const auto a = random_elements(n, 0x11 + n);
    const auto b = random_elements(n, 0x22 + n);
    std::vector<Fr> out(n);
    Fr::mul_batch(a, b, out);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], a[i] * b[i]) << "lane " << i << " of " << n;
    }
  }
}

TEST(FrBatchTest, MulBatchMatchesScalarOnEdgeCross) {
  // Full cross product of the edge set against itself: zero limbs,
  // maximal limbs and boundary values in every lane position.
  const auto edges = edge_elements();
  std::vector<Fr> a, b;
  for (const Fr& x : edges) {
    for (const Fr& y : edges) {
      a.push_back(x);
      b.push_back(y);
    }
  }
  std::vector<Fr> out(a.size());
  Fr::mul_batch(a, b, out);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(out[i], a[i] * b[i]) << "edge pair " << i;
  }
}

TEST(FrBatchTest, MulBatchHandlesEmptyAndSingleton) {
  Fr::mul_batch({}, {}, {});  // no-op, must not touch memory
  std::vector<Fr> a = {Fr::from_u64(7)}, b = {Fr::from_u64(9)}, out(1);
  Fr::mul_batch(a, b, out);
  EXPECT_EQ(out[0], Fr::from_u64(63));
}

TEST(FrBatchTest, MulBatchSupportsAliasedOutput) {
  for (std::size_t n : {4u, 7u}) {
    auto a = random_elements(n, 0x33);
    const auto b = random_elements(n, 0x44);
    const auto a_copy = a;
    Fr::mul_batch(a, b, a);  // out aliases a
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(a[i], a_copy[i] * b[i]) << "aliased lane " << i;
    }
  }
}

TEST(FrBatchTest, SquareBatchMatchesScalarSquare) {
  auto xs = random_elements(257, 0x55);  // 64 blocks + remainder 1
  const auto edges = edge_elements();
  xs.insert(xs.end(), edges.begin(), edges.end());
  std::vector<Fr> out(xs.size());
  Fr::square_batch(xs, out);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(out[i], xs[i].square()) << "lane " << i;
  }
}

// ---------------------------------------------------------------------------
// batch_inverse

TEST(FrBatchTest, BatchInverseMatchesScalarInverse) {
  for (std::size_t n : {1u, 2u, 7u, 64u, 333u}) {
    auto xs = random_elements(n, 0x66 + n);
    xs[0] = Fr::one();                         // self-inverse edge
    if (n > 1) xs[1] = r_minus_one();          // (-1)^-1 == -1
    const auto ref = xs;
    Fr::batch_inverse(xs);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(xs[i], ref[i].inverse()) << "lane " << i << " of " << n;
      ASSERT_EQ(xs[i] * ref[i], Fr::one());
    }
  }
}

TEST(FrBatchTest, BatchInverseEmptyIsNoop) {
  std::vector<Fr> xs;
  EXPECT_NO_THROW(Fr::batch_inverse(xs));
}

TEST(FrBatchTest, BatchInverseThrowsOnZeroLeavingSpanUntouched) {
  for (std::size_t zero_at : {0u, 3u, 6u}) {
    auto xs = random_elements(7, 0x77);
    xs[zero_at] = Fr::zero();
    const auto before = xs;
    EXPECT_THROW(Fr::batch_inverse(xs), std::domain_error);
    // The zero scan runs before any mutation: a failed call must leave
    // every element exactly as it was, wherever the zero sits.
    EXPECT_EQ(xs, before) << "zero at " << zero_at;
  }
}

// ---------------------------------------------------------------------------
// FrAcc — fused multiply-accumulate

TEST(FrAccTest, EmptyAccumulatorReducesToZero) {
  FrAcc acc;
  EXPECT_EQ(acc.terms(), 0);
  EXPECT_EQ(acc.reduce(), Fr::zero());
}

TEST(FrAccTest, SingleTermMatchesScalarMul) {
  const auto edges = edge_elements();
  for (const Fr& a : edges) {
    for (const Fr& b : edges) {
      FrAcc acc;
      acc.add_mul(a, b);
      ASSERT_EQ(acc.reduce(), a * b);
    }
  }
}

TEST(FrAccTest, FusedDotProductMatchesScalarChain) {
  Rng rng(0x88);
  for (int trial = 0; trial < 64; ++trial) {
    const int terms = 1 + static_cast<int>(rng.next_u64() % FrAcc::kMaxTerms);
    FrAcc acc;
    Fr ref = Fr::zero();
    for (int t = 0; t < terms; ++t) {
      const Fr a = Fr::random(rng);
      const Fr b = Fr::random(rng);
      acc.add_mul(a, b);
      ref += a * b;
    }
    EXPECT_EQ(acc.terms(), terms);
    ASSERT_EQ(acc.reduce(), ref) << "trial " << trial << " terms " << terms;
  }
}

TEST(FrAccTest, FullCapacityOfWorstCaseProductsReduces) {
  // kMaxTerms copies of (r-1)^2 is the accumulator's documented
  // worst case: it must still fit the 512-bit register and reduce to
  // the canonical result.
  FrAcc acc;
  Fr ref = Fr::zero();
  const Fr m1 = r_minus_one();
  for (int t = 0; t < FrAcc::kMaxTerms; ++t) {
    acc.add_mul(m1, m1);
    ref += m1 * m1;
  }
  EXPECT_EQ(acc.terms(), FrAcc::kMaxTerms);
  EXPECT_EQ(acc.reduce(), ref);
}

TEST(FrAccTest, ClearResetsForReuse) {
  Rng rng(0x99);
  FrAcc acc;
  acc.add_mul(Fr::random(rng), Fr::random(rng));
  acc.clear();
  EXPECT_EQ(acc.terms(), 0);
  EXPECT_EQ(acc.reduce(), Fr::zero());
  const Fr a = Fr::random(rng), b = Fr::random(rng);
  acc.add_mul(a, b);
  EXPECT_EQ(acc.reduce(), a * b);
}

// ---------------------------------------------------------------------------
// mat3_mul_fused

TEST(Mat3MulFusedTest, MatchesAccumulatorAndScalarChainOnRandomInputs) {
  // Per row the fused kernel must be bit-identical both to the FrAcc
  // path it interleaves and to the plain scalar mul/add chain.
  Rng rng(0xa3);
  for (int trial = 0; trial < 64; ++trial) {
    std::array<std::array<Fr, 3>, 3> m;
    std::array<Fr, 3> v;
    for (auto& row : m) {
      for (auto& e : row) e = Fr::random(rng);
    }
    for (auto& e : v) e = Fr::random(rng);
    std::array<Fr, 3> out;
    Fr::mat3_mul_fused(m, v, out);
    for (int i = 0; i < 3; ++i) {
      FrAcc acc;
      for (int j = 0; j < 3; ++j) {
        acc.add_mul(m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                    v[static_cast<std::size_t>(j)]);
      }
      ASSERT_EQ(out[static_cast<std::size_t>(i)], acc.reduce())
          << "row " << i << " trial " << trial;
      const auto& mi = m[static_cast<std::size_t>(i)];
      ASSERT_EQ(out[static_cast<std::size_t>(i)],
                mi[0] * v[0] + mi[1] * v[1] + mi[2] * v[2])
          << "row " << i << " trial " << trial;
    }
  }
}

TEST(Mat3MulFusedTest, HandlesEdgeElementCross) {
  // Matrix and vector built entirely from reduction-boundary edges; every
  // row is three worst-case products, exercising the full carry schedule.
  const auto edges = edge_elements();
  for (std::size_t base = 0; base + 12 <= edges.size() * 2; ++base) {
    std::array<std::array<Fr, 3>, 3> m;
    std::array<Fr, 3> v;
    std::size_t k = base;
    for (auto& row : m) {
      for (auto& e : row) e = edges[k++ % edges.size()];
    }
    for (auto& e : v) e = edges[k++ % edges.size()];
    std::array<Fr, 3> out;
    Fr::mat3_mul_fused(m, v, out);
    for (int i = 0; i < 3; ++i) {
      const auto& mi = m[static_cast<std::size_t>(i)];
      ASSERT_EQ(out[static_cast<std::size_t>(i)],
                mi[0] * v[0] + mi[1] * v[1] + mi[2] * v[2])
          << "row " << i << " base " << base;
    }
  }
}

TEST(Mat3MulFusedTest, OutputMayAliasMatrixButNotVector) {
  // The contract forbids out aliasing v but allows it to alias rows of m.
  Rng rng(0xa4);
  std::array<std::array<Fr, 3>, 3> m;
  std::array<Fr, 3> v;
  for (auto& row : m) {
    for (auto& e : row) e = Fr::random(rng);
  }
  for (auto& e : v) e = Fr::random(rng);
  std::array<Fr, 3> expect;
  Fr::mat3_mul_fused(m, v, expect);
  Fr::mat3_mul_fused(m, v, m[0]);
  EXPECT_EQ(m[0][0], expect[0]);
  EXPECT_EQ(m[0][1], expect[1]);
  EXPECT_EQ(m[0][2], expect[2]);
}

}  // namespace
}  // namespace wakurln::field
