// Anonymity properties (paper §I/§IV: "peers 1) do not disclose any piece
// of PII in any phase 2) prove their compliance with the messaging rate
// without leaving any trace to their public keys").
//
// These tests check the *observable surface*: what a network adversary who
// reads every envelope can and cannot compute.

#include <gtest/gtest.h>

#include <unordered_set>

#include "hash/poseidon.h"
#include "rln/group.h"
#include "rln/identity.h"
#include "rln/prover.h"
#include "shamir/shamir.h"
#include "waku/rln_relay.h"
#include "util/rng.h"

namespace wakurln {
namespace {

using field::Fr;
using field::FrHash;
using util::Bytes;
using util::Rng;

struct TwoMembers {
  Rng rng{1234};
  rln::RlnGroup group{8};
  rln::Identity alice = rln::Identity::generate(rng);
  rln::Identity bob = rln::Identity::generate(rng);
  std::uint64_t alice_index = group.add_member(alice.pk);
  std::uint64_t bob_index = group.add_member(bob.pk);
  zksnark::KeyPair keys = zksnark::MockGroth16::setup(8, rng);
  rln::RlnProver alice_prover{keys.pk, alice};
  rln::RlnProver bob_prover{keys.pk, bob};
};

TEST(AnonymityTest, EnvelopeContainsNoSenderIdentifier) {
  // Signals from different members have identical structure and size;
  // no field equals or derives trivially from the sender's pk.
  TwoMembers f;
  const Bytes payload = util::to_bytes("same payload");
  const auto sa = f.alice_prover.create_signal(payload, 5, f.group, f.alice_index, f.rng);
  const auto sb = f.bob_prover.create_signal(payload, 5, f.group, f.bob_index, f.rng);
  ASSERT_TRUE(sa && sb);
  EXPECT_EQ(sa->serialize().size(), sb->serialize().size());
  EXPECT_EQ(sa->root, sb->root);    // same public group state
  EXPECT_EQ(sa->epoch, sb->epoch);  // same public epoch
  // No signal field leaks the identity commitment.
  for (const auto* s : {&*sa, &*sb}) {
    EXPECT_NE(s->y, f.alice.pk);
    EXPECT_NE(s->y, f.bob.pk);
    EXPECT_NE(s->nullifier, f.alice.pk);
    EXPECT_NE(s->nullifier, f.bob.pk);
  }
}

TEST(AnonymityTest, NullifiersUnlinkableAcrossEpochs) {
  // One member's nullifiers over many epochs are all distinct — a passive
  // observer cannot build a per-sender message history across epochs.
  TwoMembers f;
  std::unordered_set<Fr, FrHash> nullifiers;
  const int kEpochs = 100;
  for (int e = 0; e < kEpochs; ++e) {
    const auto s = f.alice_prover.create_signal(util::to_bytes("m"), e, f.group,
                                                f.alice_index, f.rng);
    ASSERT_TRUE(s.has_value());
    nullifiers.insert(s->nullifier);
  }
  EXPECT_EQ(nullifiers.size(), static_cast<std::size_t>(kEpochs));
}

TEST(AnonymityTest, NullifierDoesNotIdentifyMemberWithinEpoch) {
  // Within one epoch, distinct members produce distinct nullifiers, but
  // neither can be mapped to a member without knowing a secret key:
  // the nullifier is H(H(sk, epoch)) and H is preimage-resistant. We test
  // the structural property that nothing in the public group state
  // (pk list, root) recomputes the nullifier.
  TwoMembers f;
  const auto sa =
      f.alice_prover.create_signal(util::to_bytes("x"), 9, f.group, f.alice_index, f.rng);
  ASSERT_TRUE(sa.has_value());
  // Exhaustively check the obvious public-input derivations an adversary
  // could try from the membership list.
  for (const Fr& pk : {f.alice.pk, f.bob.pk}) {
    EXPECT_NE(sa->nullifier, hash::poseidon_hash1(pk));
    EXPECT_NE(sa->nullifier, hash::poseidon_hash2(pk, Fr::from_u64(9)));
    EXPECT_NE(sa->nullifier, hash::poseidon_hash1(hash::poseidon_hash2(pk, Fr::from_u64(9))));
  }
}

TEST(AnonymityTest, ProofsAreRerandomisedPerPublication) {
  // Two honest publications of different payloads by the same member in
  // different epochs share no byte-level fingerprint in the proof field.
  TwoMembers f;
  const auto s1 =
      f.alice_prover.create_signal(util::to_bytes("a"), 1, f.group, f.alice_index, f.rng);
  const auto s2 =
      f.alice_prover.create_signal(util::to_bytes("b"), 2, f.group, f.alice_index, f.rng);
  ASSERT_TRUE(s1 && s2);
  int equal_bytes = 0;
  for (std::size_t i = 0; i < zksnark::Proof::kSize; ++i) {
    if (s1->proof.bytes[i] == s2->proof.bytes[i]) ++equal_bytes;
  }
  // Random 128-byte strings agree on ~0.5 bytes; allow generous slack.
  EXPECT_LT(equal_bytes, 8);
}

TEST(AnonymityTest, SingleShareIsInformationTheoreticallyHiding) {
  // For any observed share (x, y) and *any* candidate member, there exists
  // a consistent line — one message per epoch reveals nothing about which
  // member sent it (the Shamir hiding property, paper §II).
  TwoMembers f;
  const Bytes payload = util::to_bytes("hidden");
  const auto s = f.alice_prover.create_signal(payload, 4, f.group, f.alice_index, f.rng);
  ASSERT_TRUE(s.has_value());
  const Fr x = zksnark::RlnCircuit::message_to_x(payload);
  // Candidate = Bob: the slope that would explain the share.
  const Fr candidate_slope = (s->y - f.bob.sk) * x.inverse();
  EXPECT_EQ(shamir::make_share(f.bob.sk, candidate_slope, x).y, s->y);
}

TEST(AnonymityTest, WireEnvelopesFromDifferentSendersAreSameShape) {
  TwoMembers f;
  const Bytes payload = util::to_bytes("shape probe");
  const auto sa = f.alice_prover.create_signal(payload, 5, f.group, f.alice_index, f.rng);
  const auto sb = f.bob_prover.create_signal(payload, 5, f.group, f.bob_index, f.rng);
  const Bytes ea = waku::WakuRlnRelay::encode_envelope(*sa, payload);
  const Bytes eb = waku::WakuRlnRelay::encode_envelope(*sb, payload);
  EXPECT_EQ(ea.size(), eb.size());
}

TEST(AnonymityTest, SlashingDeanonymisesOnlyTheOffender) {
  // After Alice double-signals, the network learns *Alice's* sk — but
  // nothing new about Bob, whose traffic stays unlinkable.
  TwoMembers f;
  rln::NullifierMap map;
  const Bytes m1 = util::to_bytes("m1");
  const Bytes m2 = util::to_bytes("m2");
  const auto a1 = f.alice_prover.create_signal(m1, 7, f.group, f.alice_index, f.rng);
  const auto a2 = f.alice_prover.create_signal(m2, 7, f.group, f.alice_index, f.rng);
  const auto b1 = f.bob_prover.create_signal(m1, 7, f.group, f.bob_index, f.rng);

  map.observe(7, b1->nullifier, zksnark::RlnCircuit::message_to_x(m1), b1->y);
  map.observe(7, a1->nullifier, zksnark::RlnCircuit::message_to_x(m1), a1->y);
  const auto breach =
      map.observe(7, a2->nullifier, zksnark::RlnCircuit::message_to_x(m2), a2->y);
  ASSERT_EQ(breach.outcome, rln::NullifierMap::Outcome::kDoubleSignal);
  EXPECT_EQ(*breach.breached_sk, f.alice.sk);
  EXPECT_NE(*breach.breached_sk, f.bob.sk);
}

}  // namespace
}  // namespace wakurln
