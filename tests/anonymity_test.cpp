// Anonymity properties (paper §I/§IV: "peers 1) do not disclose any piece
// of PII in any phase 2) prove their compliance with the messaging rate
// without leaving any trace to their public keys").
//
// These tests check the *observable surface*: what a network adversary who
// reads every envelope can and cannot compute.

#include <gtest/gtest.h>

#include <unordered_set>

#include "hash/poseidon.h"
#include "rln/group.h"
#include "rln/identity.h"
#include "rln/prover.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "shamir/shamir.h"
#include "waku/rln_relay.h"
#include "util/rng.h"

namespace wakurln {
namespace {

using field::Fr;
using field::FrHash;
using util::Bytes;
using util::Rng;

struct TwoMembers {
  Rng rng{1234};
  rln::RlnGroup group{8};
  rln::Identity alice = rln::Identity::generate(rng);
  rln::Identity bob = rln::Identity::generate(rng);
  std::uint64_t alice_index = group.add_member(alice.pk);
  std::uint64_t bob_index = group.add_member(bob.pk);
  zksnark::KeyPair keys = zksnark::MockGroth16::setup(8, rng);
  rln::RlnProver alice_prover{keys.pk, alice};
  rln::RlnProver bob_prover{keys.pk, bob};
};

TEST(AnonymityTest, EnvelopeContainsNoSenderIdentifier) {
  // Signals from different members have identical structure and size;
  // no field equals or derives trivially from the sender's pk.
  TwoMembers f;
  const Bytes payload = util::to_bytes("same payload");
  const auto sa = f.alice_prover.create_signal(payload, 5, f.group, f.alice_index, f.rng);
  const auto sb = f.bob_prover.create_signal(payload, 5, f.group, f.bob_index, f.rng);
  ASSERT_TRUE(sa && sb);
  EXPECT_EQ(sa->serialize().size(), sb->serialize().size());
  EXPECT_EQ(sa->root, sb->root);    // same public group state
  EXPECT_EQ(sa->epoch, sb->epoch);  // same public epoch
  // No signal field leaks the identity commitment.
  for (const auto* s : {&*sa, &*sb}) {
    EXPECT_NE(s->y, f.alice.pk);
    EXPECT_NE(s->y, f.bob.pk);
    EXPECT_NE(s->nullifier, f.alice.pk);
    EXPECT_NE(s->nullifier, f.bob.pk);
  }
}

TEST(AnonymityTest, NullifiersUnlinkableAcrossEpochs) {
  // One member's nullifiers over many epochs are all distinct — a passive
  // observer cannot build a per-sender message history across epochs.
  TwoMembers f;
  std::unordered_set<Fr, FrHash> nullifiers;
  const int kEpochs = 100;
  for (int e = 0; e < kEpochs; ++e) {
    const auto s = f.alice_prover.create_signal(util::to_bytes("m"), e, f.group,
                                                f.alice_index, f.rng);
    ASSERT_TRUE(s.has_value());
    nullifiers.insert(s->nullifier);
  }
  EXPECT_EQ(nullifiers.size(), static_cast<std::size_t>(kEpochs));
}

TEST(AnonymityTest, NullifierDoesNotIdentifyMemberWithinEpoch) {
  // Within one epoch, distinct members produce distinct nullifiers, but
  // neither can be mapped to a member without knowing a secret key:
  // the nullifier is H(H(sk, epoch)) and H is preimage-resistant. We test
  // the structural property that nothing in the public group state
  // (pk list, root) recomputes the nullifier.
  TwoMembers f;
  const auto sa =
      f.alice_prover.create_signal(util::to_bytes("x"), 9, f.group, f.alice_index, f.rng);
  ASSERT_TRUE(sa.has_value());
  // Exhaustively check the obvious public-input derivations an adversary
  // could try from the membership list.
  for (const Fr& pk : {f.alice.pk, f.bob.pk}) {
    EXPECT_NE(sa->nullifier, hash::poseidon_hash1(pk));
    EXPECT_NE(sa->nullifier, hash::poseidon_hash2(pk, Fr::from_u64(9)));
    EXPECT_NE(sa->nullifier, hash::poseidon_hash1(hash::poseidon_hash2(pk, Fr::from_u64(9))));
  }
}

TEST(AnonymityTest, ProofsAreRerandomisedPerPublication) {
  // Two honest publications of different payloads by the same member in
  // different epochs share no byte-level fingerprint in the proof field.
  TwoMembers f;
  const auto s1 =
      f.alice_prover.create_signal(util::to_bytes("a"), 1, f.group, f.alice_index, f.rng);
  const auto s2 =
      f.alice_prover.create_signal(util::to_bytes("b"), 2, f.group, f.alice_index, f.rng);
  ASSERT_TRUE(s1 && s2);
  int equal_bytes = 0;
  for (std::size_t i = 0; i < zksnark::Proof::kSize; ++i) {
    if (s1->proof.bytes[i] == s2->proof.bytes[i]) ++equal_bytes;
  }
  // Random 128-byte strings agree on ~0.5 bytes; allow generous slack.
  EXPECT_LT(equal_bytes, 8);
}

TEST(AnonymityTest, SingleShareIsInformationTheoreticallyHiding) {
  // For any observed share (x, y) and *any* candidate member, there exists
  // a consistent line — one message per epoch reveals nothing about which
  // member sent it (the Shamir hiding property, paper §II).
  TwoMembers f;
  const Bytes payload = util::to_bytes("hidden");
  const auto s = f.alice_prover.create_signal(payload, 4, f.group, f.alice_index, f.rng);
  ASSERT_TRUE(s.has_value());
  const Fr x = zksnark::RlnCircuit::message_to_x(payload);
  // Candidate = Bob: the slope that would explain the share.
  const Fr candidate_slope = (s->y - f.bob.sk) * x.inverse();
  EXPECT_EQ(shamir::make_share(f.bob.sk, candidate_slope, x).y, s->y);
}

TEST(AnonymityTest, WireEnvelopesFromDifferentSendersAreSameShape) {
  TwoMembers f;
  const Bytes payload = util::to_bytes("shape probe");
  const auto sa = f.alice_prover.create_signal(payload, 5, f.group, f.alice_index, f.rng);
  const auto sb = f.bob_prover.create_signal(payload, 5, f.group, f.bob_index, f.rng);
  const Bytes ea = waku::WakuRlnRelay::encode_envelope(*sa, payload);
  const Bytes eb = waku::WakuRlnRelay::encode_envelope(*sb, payload);
  EXPECT_EQ(ea.size(), eb.size());
}

TEST(AnonymityTest, SlashingDeanonymisesOnlyTheOffender) {
  // After Alice double-signals, the network learns *Alice's* sk — but
  // nothing new about Bob, whose traffic stays unlinkable.
  TwoMembers f;
  rln::NullifierMap map;
  const Bytes m1 = util::to_bytes("m1");
  const Bytes m2 = util::to_bytes("m2");
  const auto a1 = f.alice_prover.create_signal(m1, 7, f.group, f.alice_index, f.rng);
  const auto a2 = f.alice_prover.create_signal(m2, 7, f.group, f.alice_index, f.rng);
  const auto b1 = f.bob_prover.create_signal(m1, 7, f.group, f.bob_index, f.rng);

  map.observe(7, b1->nullifier, zksnark::RlnCircuit::message_to_x(m1), b1->y);
  map.observe(7, a1->nullifier, zksnark::RlnCircuit::message_to_x(m1), a1->y);
  const auto breach =
      map.observe(7, a2->nullifier, zksnark::RlnCircuit::message_to_x(m2), a2->y);
  ASSERT_EQ(breach.outcome, rln::NullifierMap::Outcome::kDoubleSignal);
  EXPECT_EQ(*breach.breached_sk, f.alice.sk);
  EXPECT_NE(*breach.breached_sk, f.bob.sk);
}

// -- coalition first-spy on hand-built worlds ---------------------------
//
// A 5-node pure ring 0-1-2-3-4-0 (no extra chords, zero jitter) with a
// 2-member observer coalition {3, 4} and three publishers {0, 1, 2}, all
// publishing every epoch. With deterministic latency, the coalition's
// first sighting of every message is computable by hand:
//
//   * origin 0: the direct link 0→4 wins (one hop) — guessed correctly.
//   * origin 1: two hops either way (1→2→3 or 1→0→4) — the guessed
//     neighbour is a relay, never 1 — always wrong.
//   * origin 2: the direct link 2→3 wins — guessed correctly.
//
// So the random-tail coalition deanonymises exactly 2 of 3 publishers.

scenario::ScenarioSpec five_node_coalition(scenario::ObserverPlacement placement) {
  scenario::ScenarioSpec s;
  s.name = "hand_coalition";
  s.description = "hand-checkable 5-node coalition world";
  s.nodes = 5;
  s.topology = sim::TopologyKind::kRingPlusRandom;
  s.extra_links_per_node = 0;  // pure ring
  s.link.base_latency = 10 * sim::kUsPerMs;
  s.link.jitter = 0;  // deterministic arrival order
  s.observers = 2;    // coalition {3, 4}
  s.observer.placement = placement;
  s.observer.eclipse_target = 0;
  s.observer.sybil_extra_links = 4;  // sybil: adjacent to every node
  s.honest_publish_prob = 1.0;       // every publisher, every epoch
  s.traffic_epochs = 2;
  return s;
}

TEST(CoalitionFirstSpyTest, RandomTailDeanonymisesExactlyTheAdjacentPublishers) {
  const auto m =
      scenario::ScenarioRunner(five_node_coalition(scenario::ObserverPlacement::kRandomTail), 7)
          .run();
  // 3 publishers x 2 epochs, all published, all flood to the coalition.
  EXPECT_EQ(m.at("honest_published"), 6);
  EXPECT_EQ(m.at("observed_messages"), 6);
  // Origins 0 and 2 are ring-adjacent to the coalition: correct. Origin 1
  // is two hops out: always wrong. Accuracy = 2/3 by construction.
  EXPECT_DOUBLE_EQ(m.at("first_spy_accuracy"), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.at("deanonymisation_probability"), 2.0 / 3.0);
  EXPECT_EQ(m.at("coalition_size"), 2);
  EXPECT_DOUBLE_EQ(m.at("delivery_ratio"), 1.0);
}

TEST(CoalitionFirstSpyTest, EclipseRingFullyDeanonymisesTheTarget) {
  const auto m =
      scenario::ScenarioRunner(five_node_coalition(scenario::ObserverPlacement::kEclipseRing), 7)
          .run();
  // The ring severs 0's honest links (0-1) and wires 0 to both coalition
  // members; the graph becomes 0-3, 0-4, 1-2, 2-3, 3-4. Every first hop
  // out of the target lands on an observer: its traffic (2 messages) is
  // deanonymised with certainty. Origin 2 still hits 3 directly
  // (correct); origin 1's first sighting comes through relay 2 (wrong).
  EXPECT_EQ(m.at("eclipse_target_messages"), 2);
  EXPECT_DOUBLE_EQ(m.at("eclipse_target_deanonymisation"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("first_spy_accuracy"), 2.0 / 3.0);
  // The eclipsed target stays connected through the relaying coalition.
  EXPECT_DOUBLE_EQ(m.at("delivery_ratio"), 1.0);
}

TEST(CoalitionFirstSpyTest, SybilHighDegreeDeanonymisesEveryPublisher) {
  const auto m = scenario::ScenarioRunner(
                     five_node_coalition(scenario::ObserverPlacement::kSybilHighDegree), 7)
                     .run();
  // With 4 extra chords each, both sybils are adjacent to every node, so
  // every origin's direct frame arrives first: accuracy 1, anonymity set
  // collapsed to 1.
  EXPECT_DOUBLE_EQ(m.at("first_spy_accuracy"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("deanonymisation_probability"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("anonymity_set_mean"), 1.0);
}

TEST(CoalitionFirstSpyTest, OneObserverCoalitionReproducesLegacyFirstSpyNumbers) {
  // Regression pin: the coalition generalisation with a 1-observer
  // "coalition" must reproduce the plain first-spy numbers byte-identically
  // (baseline_relay shrunk to 14 nodes / 4 epochs at seed 11; all are pure
  // functions of (spec, seed), identical on every machine and at every
  // world_threads setting; recaptured when link loss/jitter moved to
  // per-sender RNG streams).
  scenario::ScenarioSpec s;
  s.name = "baseline_relay";
  s.description = "legacy pin";
  s.nodes = 14;
  s.traffic_epochs = 4;
  s.link.base_latency = 30 * sim::kUsPerMs;
  s.link.jitter = 20 * sim::kUsPerMs;
  const auto m = scenario::ScenarioRunner(s, 11).run();
  EXPECT_EQ(m.at("observed_messages"), 31);
  EXPECT_DOUBLE_EQ(m.at("first_spy_accuracy"), 11.0 / 31.0);
  EXPECT_DOUBLE_EQ(m.at("anonymity_set_mean"), 107.0 / 31.0);
  EXPECT_EQ(m.at("coalition_size"), 1);
  EXPECT_DOUBLE_EQ(m.at("deanonymisation_probability"), 11.0 / 31.0);
}

TEST(CoalitionFirstSpyTest, StructuredPlacementsBeatRandomTailAtEqualSize) {
  // The ISSUE's acceptance shape at catalogue scale (32 nodes, 8
  // publishers, 6 observers): eclipse and sybil coalitions deanonymise
  // measurably more of the honest traffic than the same-size random-tail
  // coalition. One fixed seed — the runs are deterministic.
  scenario::ScenarioSpec base;
  base.name = "placement_cmp";
  base.description = "placement comparison world";
  base.nodes = 32;
  base.publishers = 8;
  base.honest_publish_prob = 0.8;
  base.observers = 6;
  base.link.base_latency = 30 * sim::kUsPerMs;
  base.link.jitter = 20 * sim::kUsPerMs;

  scenario::ScenarioSpec random_tail = base;
  scenario::ScenarioSpec eclipse = base;
  eclipse.observer.placement = scenario::ObserverPlacement::kEclipseRing;
  eclipse.observer.eclipse_target = 3;  // not ring-adjacent to the tail
  scenario::ScenarioSpec sybil = base;
  sybil.observer.placement = scenario::ObserverPlacement::kSybilHighDegree;
  sybil.observer.sybil_extra_links = 12;

  double r_sum = 0;
  double e_sum = 0;
  double s_sum = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    r_sum += scenario::ScenarioRunner(random_tail, seed).run().at(
        "deanonymisation_probability");
    e_sum += scenario::ScenarioRunner(eclipse, seed).run().at(
        "deanonymisation_probability");
    s_sum += scenario::ScenarioRunner(sybil, seed).run().at(
        "deanonymisation_probability");
  }
  EXPECT_GT(e_sum, r_sum);
  EXPECT_GT(s_sum, r_sum);
}

}  // namespace
}  // namespace wakurln
