#include <gtest/gtest.h>

#include <memory>

#include "gossipsub/router.h"
#include "sim/topology.h"

namespace wakurln::gossipsub {
namespace {

using sim::NodeId;
using util::Rng;

// A little harness holding a simulated gossip network.
struct Swarm {
  sim::Scheduler sched;
  Rng rng{12345};
  sim::Network net{sched, rng, make_link()};
  std::vector<std::unique_ptr<GossipSubRouter>> routers;
  std::unordered_map<NodeId, std::vector<GsMessage>> inbox;

  static sim::LinkParams make_link() {
    sim::LinkParams link;
    link.base_latency = 20 * sim::kUsPerMs;
    link.jitter = 10 * sim::kUsPerMs;
    link.loss_rate = 0;
    return link;
  }

  explicit Swarm(std::size_t n, GossipSubParams params = {}) {
    std::vector<NodeId> ids;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = net.add_node({});
      ids.push_back(id);
      routers.push_back(std::make_unique<GossipSubRouter>(id, net, params));
    }
    connect_ring_plus_random(net, ids, 3, rng);
    for (auto& r : routers) {
      r->start();
      r->set_message_handler(
          [this, id = r->id()](const GsMessage& m) { inbox[id].push_back(m); });
    }
  }

  void subscribe_all(const TopicId& topic) {
    for (auto& r : routers) r->subscribe(topic);
  }

  void settle(std::uint64_t seconds = 5) {
    sched.run_for(seconds * sim::kUsPerSecond);
  }

  std::size_t delivered_count(const TopicId& topic) const {
    std::size_t n = 0;
    for (const auto& [id, msgs] : inbox) {
      for (const auto& m : msgs) {
        if (m.topic == topic) ++n;
      }
    }
    return n;
  }
};

TEST(GsMessageTest, ContentAddressedId) {
  const GsMessage a = GsMessage::create("t", util::to_bytes("payload"));
  const GsMessage b = GsMessage::create("t", util::to_bytes("payload"));
  const GsMessage c = GsMessage::create("t", util::to_bytes("other"));
  const GsMessage d = GsMessage::create("u", util::to_bytes("payload"));
  EXPECT_EQ(a.id, b.id);  // no origin, no nonce: anonymity-preserving
  EXPECT_NE(a.id, c.id);
  EXPECT_NE(a.id, d.id);
}

TEST(RpcTest, WireSizeCountsComponents) {
  Rpc rpc;
  EXPECT_TRUE(rpc.empty());
  const std::size_t base = rpc.wire_size();
  rpc.publish.push_back(
      std::make_shared<const GsMessage>(GsMessage::create("topic", util::Bytes(100, 7))));
  EXPECT_GT(rpc.wire_size(), base + 100);
  EXPECT_FALSE(rpc.empty());
}

TEST(MessageCacheTest, ServesAndExpires) {
  MessageCache cache(3, 2);
  const auto msg = std::make_shared<const GsMessage>(
      GsMessage::create("t", util::to_bytes("m")));
  cache.put(msg);
  ASSERT_NE(cache.get(msg->id), nullptr);
  EXPECT_EQ(cache.gossip_ids("t").size(), 1u);
  EXPECT_TRUE(cache.gossip_ids("other").empty());
  cache.shift();
  cache.shift();
  EXPECT_EQ(cache.gossip_ids("t").size(), 0u);  // out of the gossip window
  ASSERT_NE(cache.get(msg->id), nullptr);       // still in history
  cache.shift();
  EXPECT_EQ(cache.get(msg->id), nullptr);  // dropped from history
}

TEST(MessageCacheTest, RejectsBadWindowConfig) {
  EXPECT_THROW(MessageCache(0, 0), std::invalid_argument);
  EXPECT_THROW(MessageCache(2, 3), std::invalid_argument);
}

TEST(ScoreTest, FreshPeerIsNeutral) {
  PeerScoreTracker tracker{PeerScoreParams{}};
  EXPECT_EQ(tracker.score(1, 0), 0.0);
}

TEST(ScoreTest, TimeInMeshAccrues) {
  PeerScoreTracker tracker{PeerScoreParams{}};
  tracker.on_join_mesh(1, "t", 0);
  const double s = tracker.score(1, 10 * sim::kUsPerSecond);
  EXPECT_NEAR(s, 0.01 * 10, 1e-9);
}

TEST(ScoreTest, FirstDeliveriesRewardAndDecay) {
  PeerScoreTracker tracker{PeerScoreParams{}};
  for (int i = 0; i < 5; ++i) tracker.on_first_delivery(1, "t");
  EXPECT_NEAR(tracker.score(1, 0), 5.0, 1e-9);
  tracker.decay();
  EXPECT_NEAR(tracker.score(1, 0), 4.5, 1e-9);
}

TEST(ScoreTest, InvalidMessagesPenaliseQuadratically) {
  PeerScoreTracker tracker{PeerScoreParams{}};
  tracker.on_invalid_message(1, "t");
  EXPECT_NEAR(tracker.score(1, 0), -100.0, 1e-9);
  tracker.on_invalid_message(1, "t");
  EXPECT_NEAR(tracker.score(1, 0), -400.0, 1e-9);
}

TEST(ScoreTest, IpColocationPenalisesSybils) {
  PeerScoreParams params;
  PeerScoreTracker tracker{params};
  // Four peers on one IP: each penalised by (4-1)^2 * -10.
  for (NodeId p = 1; p <= 4; ++p) tracker.set_peer_ip(p, 99);
  EXPECT_NEAR(tracker.score(1, 0), -90.0, 1e-9);
  // A fifth peer on its own IP is unaffected.
  tracker.set_peer_ip(5, 7);
  EXPECT_EQ(tracker.score(5, 0), 0.0);
  // Removing peers lifts the penalty.
  tracker.remove_peer(4);
  tracker.remove_peer(3);
  tracker.remove_peer(2);
  EXPECT_EQ(tracker.score(1, 0), 0.0);
}

TEST(RouterTest, MeshFormsWithinBounds) {
  Swarm swarm(20);
  swarm.subscribe_all("news");
  swarm.settle(10);
  for (const auto& r : swarm.routers) {
    const auto mesh = r->mesh_peers("news");
    EXPECT_GE(mesh.size(), 1u) << "router " << r->id();
    EXPECT_LE(mesh.size(), static_cast<std::size_t>(r->params().d_hi));
  }
}

TEST(RouterTest, PublishReachesAllSubscribers) {
  Swarm swarm(25);
  swarm.subscribe_all("news");
  swarm.settle(5);
  swarm.routers[0]->publish("news", util::to_bytes("breaking"));
  swarm.settle(10);
  // Every node including the publisher delivers exactly once.
  EXPECT_EQ(swarm.delivered_count("news"), swarm.routers.size());
}

TEST(RouterTest, NoDoubleDelivery) {
  Swarm swarm(15);
  swarm.subscribe_all("t");
  swarm.settle(5);
  for (int i = 0; i < 5; ++i) {
    swarm.routers[i]->publish("t", util::to_bytes("msg" + std::to_string(i)));
  }
  swarm.settle(10);
  for (const auto& [id, msgs] : swarm.inbox) {
    std::set<std::string> unique;
    for (const auto& m : msgs) {
      unique.insert(std::string(m.data.begin(), m.data.end()));
    }
    EXPECT_EQ(unique.size(), msgs.size()) << "node " << id << " saw duplicates";
  }
}

TEST(RouterTest, NonSubscriberDoesNotDeliverButRoutes) {
  Swarm swarm(20);
  // The first half subscribes; the rest merely relay if grafted. A
  // contiguous block keeps the subscriber-induced subgraph connected via
  // the ring edges regardless of where the random extra links land —
  // subscription announcements travel one hop (as in libp2p), so coverage
  // through the subscriber set must not depend on random shortcuts.
  const std::size_t subscribers = swarm.routers.size() / 2;
  for (std::size_t i = 0; i < subscribers; ++i) {
    swarm.routers[i]->subscribe("t");
  }
  swarm.settle(5);
  swarm.routers[0]->publish("t", util::to_bytes("m"));
  swarm.settle(10);
  for (std::size_t i = subscribers; i < swarm.routers.size(); ++i) {
    EXPECT_TRUE(swarm.inbox[swarm.routers[i]->id()].empty());
  }
  EXPECT_GE(swarm.delivered_count("t"), subscribers - 1);
  EXPECT_LE(swarm.delivered_count("t"), subscribers);
}

TEST(RouterTest, FanoutPublishFromNonSubscriber) {
  Swarm swarm(20);
  for (std::size_t i = 1; i < swarm.routers.size(); ++i) {
    swarm.routers[i]->subscribe("t");
  }
  swarm.settle(5);
  // Router 0 publishes without subscribing (fanout path).
  swarm.routers[0]->publish("t", util::to_bytes("from-outside"));
  swarm.settle(10);
  EXPECT_EQ(swarm.delivered_count("t"), swarm.routers.size() - 1);
}

TEST(RouterTest, ValidatorRejectStopsPropagationAndPenalises) {
  Swarm swarm(12);
  swarm.subscribe_all("t");
  // Every router rejects payloads starting with 'X'.
  for (auto& r : swarm.routers) {
    r->set_validator("t", [](NodeId, const GsMessage& m) {
      return !m.data.empty() && m.data[0] == 'X' ? Validation::kReject
                                                 : Validation::kAccept;
    });
  }
  swarm.settle(5);
  swarm.routers[0]->publish("t", util::to_bytes("Xspam"));
  swarm.settle(10);
  // The spam dies at the publisher's mesh frontier: no deliveries except
  // the publisher's own local delivery.
  EXPECT_LE(swarm.delivered_count("t"), 1u);
  std::uint64_t rejected = 0;
  for (const auto& r : swarm.routers) rejected += r->stats().rejected;
  EXPECT_GE(rejected, 1u);
}

TEST(RouterTest, ValidatorIgnoreStopsPropagationSilently) {
  Swarm swarm(12);
  swarm.subscribe_all("t");
  for (auto& r : swarm.routers) {
    r->set_validator("t",
                     [](NodeId, const GsMessage&) { return Validation::kIgnore; });
  }
  swarm.settle(5);
  swarm.routers[0]->publish("t", util::to_bytes("m"));
  swarm.settle(10);
  EXPECT_LE(swarm.delivered_count("t"), 1u);
  for (const auto& r : swarm.routers) {
    EXPECT_EQ(r->stats().rejected, 0u);
  }
}

TEST(RouterTest, UnsubscribeLeavesMesh) {
  Swarm swarm(10);
  swarm.subscribe_all("t");
  swarm.settle(5);
  swarm.routers[0]->unsubscribe("t");
  swarm.settle(5);
  EXPECT_FALSE(swarm.routers[0]->subscribed("t"));
  for (std::size_t i = 1; i < swarm.routers.size(); ++i) {
    for (NodeId p : swarm.routers[i]->mesh_peers("t")) {
      EXPECT_NE(p, swarm.routers[0]->id());
    }
  }
}

TEST(RouterTest, GossipRecoversFromLossyLinks) {
  GossipSubParams params;
  Swarm swarm(16, params);
  // Make every link lossy; IHAVE/IWANT must patch the holes.
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b : swarm.net.neighbors(a)) {
      if (a < b) {
        sim::LinkParams lossy = Swarm::make_link();
        lossy.loss_rate = 0.15;
        swarm.net.set_link_params(a, b, lossy);
      }
    }
  }
  swarm.subscribe_all("t");
  swarm.settle(5);
  for (int i = 0; i < 10; ++i) {
    swarm.routers[i % 16]->publish("t", util::to_bytes("m" + std::to_string(i)));
    swarm.settle(2);
  }
  swarm.settle(30);  // allow several gossip rounds
  // ≥95% of (message, node) pairs delivered despite 15% frame loss.
  const std::size_t total = swarm.delivered_count("t");
  EXPECT_GE(total, static_cast<std::size_t>(0.95 * 10 * 16));
}

TEST(RouterTest, GraylistedPeerIsIgnored) {
  GossipSubParams params;
  params.enable_scoring = true;
  Swarm swarm(8, params);
  swarm.subscribe_all("t");
  // Reject everything from node 7 so its score collapses below graylist.
  for (auto& r : swarm.routers) {
    r->set_validator("t", [](NodeId src, const GsMessage&) {
      return src == 7 ? Validation::kReject : Validation::kAccept;
    });
  }
  swarm.settle(5);
  // The spammer's modified client skips its own validator. The burst is
  // back-to-back so all three land before score-based pruning (with PRUNE
  // backoff) evicts the spammer from its neighbours' meshes.
  for (int i = 0; i < 3; ++i) {
    swarm.routers[7]->publish("t", util::to_bytes("spam" + std::to_string(i)),
                              /*apply_validator=*/false);
  }
  swarm.settle(1);
  // Node 7 crashed through the graylist threshold at its neighbours the
  // moment the first spam validated; the remaining burst frames were then
  // dropped *before* validation (that is the graylist working — and also
  // why the invalid counter does not keep climbing). The score decays
  // afterwards, so assert right after the burst: at minimum it is still
  // below the publish threshold.
  bool someone_penalised = false;
  std::uint64_t graylisted_frames = 0;
  for (const auto& r : swarm.routers) {
    if (r->id() != 7 && r->peer_score(7) <= params.score.publish_threshold) {
      someone_penalised = true;
    }
    graylisted_frames += r->stats().graylisted_frames;
  }
  EXPECT_TRUE(someone_penalised);
  EXPECT_GE(graylisted_frames, 1u);
}

// -- sorted-vector state equivalence ------------------------------------
// The struct-of-arrays refactor replaced the per-topic std::set mesh /
// fanout / backoff containers with sorted vectors. These tests pin the
// behaviour the replacement must preserve: mesh maintenance keeps the
// members sorted, unique and inside [1, d_hi] under graft/prune churn,
// a pruned link respects its backoff, and fanout state expires after
// fanout_ttl without a publish (then rebuilds on the next one).

TEST(RouterTest, MeshStaysSortedUniqueAndBoundedUnderChurn) {
  Swarm swarm(30);
  swarm.subscribe_all("t");
  // Several maintenance rounds with mid-run unsubscribes force both the
  // graft path (under-degree after leavers) and the prune path
  // (over-degree in a dense 30-node swarm).
  swarm.settle(10);
  swarm.routers[3]->unsubscribe("t");
  swarm.routers[17]->unsubscribe("t");
  swarm.settle(10);
  for (const auto& r : swarm.routers) {
    if (!r->subscribed("t")) continue;
    const auto mesh = r->mesh_peers("t");
    EXPECT_TRUE(std::is_sorted(mesh.begin(), mesh.end())) << "router " << r->id();
    EXPECT_EQ(std::adjacent_find(mesh.begin(), mesh.end()), mesh.end())
        << "router " << r->id() << " has duplicate mesh entries";
    EXPECT_GE(mesh.size(), 1u) << "router " << r->id();
    EXPECT_LE(mesh.size(), static_cast<std::size_t>(r->params().d_hi));
    // The leavers must be gone from every mesh.
    EXPECT_FALSE(std::binary_search(mesh.begin(), mesh.end(),
                                    swarm.routers[3]->id()));
    EXPECT_FALSE(std::binary_search(mesh.begin(), mesh.end(),
                                    swarm.routers[17]->id()));
  }
}

TEST(RouterTest, PruneBackoffBlocksImmediateRegraft) {
  GossipSubParams params;
  params.prune_backoff = 3600 * sim::kUsPerSecond;  // effectively forever
  Swarm swarm(20, params);
  swarm.subscribe_all("t");
  swarm.settle(10);
  // Unsubscribe sends PRUNE to the whole mesh; with an unexpiring backoff
  // the re-subscribing router must not re-graft any of those links even
  // across many heartbeats.
  const auto old_mesh = swarm.routers[0]->mesh_peers("t");
  ASSERT_GE(old_mesh.size(), 1u);
  swarm.routers[0]->unsubscribe("t");
  swarm.settle(2);
  swarm.routers[0]->subscribe("t");
  swarm.settle(10);
  const auto regrafted = swarm.routers[0]->mesh_peers("t");
  for (const NodeId peer : old_mesh) {
    EXPECT_FALSE(std::binary_search(regrafted.begin(), regrafted.end(), peer))
        << "re-grafted " << peer << " inside its prune backoff";
  }
}

TEST(RouterTest, FanoutExpiresAfterTtlAndRebuilds) {
  GossipSubParams params;
  params.fanout_ttl = 5 * sim::kUsPerSecond;
  Swarm swarm(15, params);
  for (std::size_t i = 1; i < swarm.routers.size(); ++i) {
    swarm.routers[i]->subscribe("t");
  }
  swarm.settle(5);

  // Non-subscriber publish builds fanout state.
  swarm.routers[0]->publish("t", util::to_bytes("first"));
  swarm.settle(2);
  const std::size_t with_fanout = swarm.routers[0]->memory_bytes();

  // Heartbeats past fanout_ttl with no publish drop the fanout peers; the
  // modeled footprint shrinks back below the loaded reading.
  swarm.settle(20);
  EXPECT_LT(swarm.routers[0]->memory_bytes(), with_fanout);

  // A publish after expiry rebuilds fanout and still reaches everyone.
  swarm.inbox.clear();
  swarm.routers[0]->publish("t", util::to_bytes("second"));
  swarm.settle(10);
  EXPECT_EQ(swarm.delivered_count("t"), swarm.routers.size() - 1);
}

TEST(RouterTest, StatsTrackForwarding) {
  Swarm swarm(10);
  swarm.subscribe_all("t");
  swarm.settle(5);
  swarm.routers[0]->publish("t", util::to_bytes("m"));
  swarm.settle(5);
  std::uint64_t forwarded = 0;
  for (const auto& r : swarm.routers) forwarded += r->stats().forwarded;
  EXPECT_GT(forwarded, 0u);
}

TEST(ZeroCopyTest, FanOutSharesOnePayloadAllocation) {
  // One published message floods a 12-node swarm. Every delivered copy —
  // inboxes, mcaches, frames still in flight — must view the single
  // buffer allocated at publish time.
  Swarm m(12);
  m.subscribe_all("z");
  m.settle();
  const std::uint64_t allocs0 = util::SharedBytes::allocation_count();
  m.routers[0]->publish("z", util::Bytes(4096, 0xAB));
  m.settle(10);
  EXPECT_EQ(util::SharedBytes::allocation_count(), allocs0 + 1);
  EXPECT_EQ(m.delivered_count("z"), m.routers.size());
  // All delivered messages alias the same bytes.
  const std::uint8_t* buffer = nullptr;
  for (const auto& [id, msgs] : m.inbox) {
    for (const GsMessage& msg : msgs) {
      if (buffer == nullptr) buffer = msg.data.data();
      EXPECT_EQ(msg.data.data(), buffer);
      EXPECT_GE(msg.data.use_count(), 1);
    }
  }
}

TEST(ZeroCopyTest, WireSizeModelSplitsPayloadAndControl) {
  Rpc rpc;
  const auto empty = rpc.wire_breakdown();
  EXPECT_EQ(empty.payload, 0u);
  EXPECT_EQ(empty.control, kRpcHeaderBytes);
  rpc.publish.push_back(std::make_shared<const GsMessage>(
      GsMessage::create("topic", util::Bytes(100, 7))));
  rpc.ihave.push_back({"topic", std::vector<MessageId>(3)});
  rpc.subscriptions.push_back({"topic", true});
  const auto b = rpc.wire_breakdown();
  EXPECT_EQ(b.payload, 100 + 5 + kMessageFramingBytes);
  EXPECT_EQ(b.control, kRpcHeaderBytes + (5 + kControlEntryBytes + kIdListCountBytes +
                                          3 * kMessageIdBytes) +
                           (5 + kControlEntryBytes));
  EXPECT_EQ(rpc.wire_size(), b.payload + b.control);
}

TEST(ZeroCopyTest, RouterAccountsBytesByClass) {
  Swarm m(8);
  m.subscribe_all("z");
  m.settle();
  std::uint64_t payload0 = 0;
  for (auto& r : m.routers) payload0 += r->stats().payload_bytes_sent;
  EXPECT_EQ(payload0, 0u);  // only control traffic so far
  m.routers[0]->publish("z", util::Bytes(512, 1));
  m.settle(10);
  std::uint64_t payload_bytes = 0;
  std::uint64_t control_bytes = 0;
  for (auto& r : m.routers) {
    payload_bytes += r->stats().payload_bytes_sent;
    control_bytes += r->stats().control_bytes_sent;
  }
  EXPECT_GT(payload_bytes, 0u);
  EXPECT_GT(control_bytes, 0u);
  // Byte classes reconcile exactly with the network's total accounting.
  EXPECT_EQ(payload_bytes + control_bytes, m.net.stats().bytes_sent);
}

}  // namespace
}  // namespace wakurln::gossipsub
