// Tests for the k-messages-per-epoch rate extension (RLN-v2-style slots).
// The paper's scheme is the k = 1 special case; these tests pin down that
// (a) k = 1 behaviour is bit-identical to the paper's external nullifier,
// (b) each slot is an independent rate-limit line, and (c) slot reuse is
// slashable while cross-slot traffic is not.

#include <gtest/gtest.h>

#include "hash/poseidon.h"
#include "rln/epoch.h"
#include "rln/group.h"
#include "rln/nullifier_map.h"
#include "rln/prover.h"
#include "shamir/shamir.h"
#include "waku/harness.h"

namespace wakurln {
namespace {

using field::Fr;
using util::Bytes;
using util::Rng;

TEST(ExternalNullifierTest, RateOneMatchesPaperScheme) {
  for (std::uint64_t epoch : {0ull, 7ull, 123456789ull}) {
    EXPECT_EQ(rln::external_nullifier(epoch, 0, 1), Fr::from_u64(epoch));
  }
}

TEST(ExternalNullifierTest, SlotsAreDistinct) {
  const std::uint64_t epoch = 42;
  const auto e0 = rln::external_nullifier(epoch, 0, 3);
  const auto e1 = rln::external_nullifier(epoch, 1, 3);
  const auto e2 = rln::external_nullifier(epoch, 2, 3);
  EXPECT_NE(e0, e1);
  EXPECT_NE(e1, e2);
  EXPECT_NE(e0, e2);
  // And distinct across epochs for the same slot.
  EXPECT_NE(e0, rln::external_nullifier(43, 0, 3));
}

TEST(ExternalNullifierTest, BoundsChecked) {
  EXPECT_THROW(rln::external_nullifier(1, 3, 3), std::out_of_range);
  EXPECT_THROW(rln::external_nullifier(1, 0, 0), std::invalid_argument);
}

struct RateFixture {
  static constexpr std::uint64_t kRate = 3;
  Rng rng{4040};
  rln::RlnGroup group{8};
  rln::Identity id = rln::Identity::generate(rng);
  std::uint64_t index = group.add_member(id.pk);
  zksnark::KeyPair keys = zksnark::MockGroth16::setup(8, rng);
  rln::RlnProver prover{keys.pk, id, kRate};
  rln::RlnVerifier verifier{keys.vk, kRate};
};

TEST(RateProverTest, RejectsZeroRate) {
  RateFixture f;
  EXPECT_THROW(rln::RlnProver(f.keys.pk, f.id, 0), std::invalid_argument);
  EXPECT_THROW(rln::RlnVerifier(f.keys.vk, 0), std::invalid_argument);
}

TEST(RateProverTest, AllSlotsVerify) {
  RateFixture f;
  for (std::uint64_t slot = 0; slot < RateFixture::kRate; ++slot) {
    const Bytes payload = util::to_bytes("slot " + std::to_string(slot));
    const auto signal = f.prover.create_signal(payload, 5, f.group, f.index, f.rng, slot);
    ASSERT_TRUE(signal.has_value()) << "slot " << slot;
    EXPECT_EQ(signal->message_index, slot);
    EXPECT_TRUE(f.verifier.verify(payload, *signal));
  }
}

TEST(RateProverTest, SlotBeyondRateRefused) {
  RateFixture f;
  const Bytes payload = util::to_bytes("overflow");
  EXPECT_FALSE(
      f.prover.create_signal(payload, 5, f.group, f.index, f.rng, RateFixture::kRate)
          .has_value());
}

TEST(RateProverTest, VerifierRejectsOutOfRangeSlot) {
  RateFixture f;
  const Bytes payload = util::to_bytes("m");
  auto signal = f.prover.create_signal(payload, 5, f.group, f.index, f.rng, 1);
  ASSERT_TRUE(signal.has_value());
  signal->message_index = RateFixture::kRate;  // forged out-of-range slot
  EXPECT_FALSE(f.verifier.verify(payload, *signal));
}

TEST(RateProverTest, SlotIndexIsBoundIntoProof) {
  // Moving a valid signal to another slot must invalidate it (the external
  // nullifier is part of the proven statement).
  RateFixture f;
  const Bytes payload = util::to_bytes("m");
  auto signal = f.prover.create_signal(payload, 5, f.group, f.index, f.rng, 1);
  ASSERT_TRUE(signal.has_value());
  signal->message_index = 2;
  EXPECT_FALSE(f.verifier.verify(payload, *signal));
}

TEST(RateProverTest, DistinctSlotsHaveDistinctNullifiers) {
  RateFixture f;
  const Bytes payload = util::to_bytes("same payload");
  const auto s0 = f.prover.create_signal(payload, 5, f.group, f.index, f.rng, 0);
  const auto s1 = f.prover.create_signal(payload, 5, f.group, f.index, f.rng, 1);
  ASSERT_TRUE(s0 && s1);
  EXPECT_NE(s0->nullifier, s1->nullifier);
}

TEST(RateProverTest, CrossSlotSharesDoNotReconstructKey) {
  // Two messages in different slots of the same epoch sit on different
  // lines: combining their shares must NOT yield the secret key.
  RateFixture f;
  const Bytes m1 = util::to_bytes("first");
  const Bytes m2 = util::to_bytes("second");
  const auto s0 = f.prover.create_signal(m1, 5, f.group, f.index, f.rng, 0);
  const auto s1 = f.prover.create_signal(m2, 5, f.group, f.index, f.rng, 1);
  ASSERT_TRUE(s0 && s1);
  const auto recovered = shamir::reconstruct(
      shamir::Share{zksnark::RlnCircuit::message_to_x(m1), s0->y},
      shamir::Share{zksnark::RlnCircuit::message_to_x(m2), s1->y});
  ASSERT_TRUE(recovered.has_value());
  EXPECT_NE(*recovered, f.id.sk);
}

TEST(RateProverTest, SlotReuseReconstructsKey) {
  RateFixture f;
  rln::NullifierMap map;
  const Bytes m1 = util::to_bytes("first");
  const Bytes m2 = util::to_bytes("second");
  const auto s0 = f.prover.create_signal(m1, 5, f.group, f.index, f.rng, 2);
  const auto s0b = f.prover.create_signal(m2, 5, f.group, f.index, f.rng, 2);
  ASSERT_TRUE(s0 && s0b);
  map.observe(5, s0->nullifier, zksnark::RlnCircuit::message_to_x(m1), s0->y);
  const auto result =
      map.observe(5, s0b->nullifier, zksnark::RlnCircuit::message_to_x(m2), s0b->y);
  EXPECT_EQ(result.outcome, rln::NullifierMap::Outcome::kDoubleSignal);
  ASSERT_TRUE(result.breached_sk.has_value());
  EXPECT_EQ(*result.breached_sk, f.id.sk);
}

// Full network behaviour with k = 3.
struct RateWorld {
  waku::HarnessConfig cfg = [] {
    waku::HarnessConfig c = waku::HarnessConfig::defaults();
    c.node_count = 8;
    c.rln.messages_per_epoch = 3;
    c.seed = 6060;
    return c;
  }();
  waku::SimHarness world{cfg};

  RateWorld() {
    world.subscribe_all("rate/topic");
    world.register_all();
    world.run_seconds(3);
  }
};

TEST(RateNetworkTest, HonestClientGetsKMessagesPerEpoch) {
  RateWorld rw;
  auto& node = rw.world.node(0);
  EXPECT_EQ(node.publish("rate/topic", util::to_bytes("one")),
            waku::WakuRlnRelay::PublishOutcome::kPublished);
  EXPECT_EQ(node.publish("rate/topic", util::to_bytes("two")),
            waku::WakuRlnRelay::PublishOutcome::kPublished);
  EXPECT_EQ(node.publish("rate/topic", util::to_bytes("three")),
            waku::WakuRlnRelay::PublishOutcome::kPublished);
  EXPECT_EQ(node.publish("rate/topic", util::to_bytes("four")),
            waku::WakuRlnRelay::PublishOutcome::kRateLimited);

  rw.world.run_seconds(10);
  EXPECT_EQ(rw.world.nodes_delivered(util::to_bytes("one")), rw.world.size());
  EXPECT_EQ(rw.world.nodes_delivered(util::to_bytes("two")), rw.world.size());
  EXPECT_EQ(rw.world.nodes_delivered(util::to_bytes("three")), rw.world.size());
  EXPECT_EQ(rw.world.nodes_delivered(util::to_bytes("four")), 0u);
  EXPECT_EQ(rw.world.aggregate_stats().double_signals, 0u);
}

TEST(RateNetworkTest, ExceedingRateUncheckedIsSlashed) {
  RateWorld rw;
  auto& spammer = rw.world.node(1);
  // Fill all three honest slots, then keep going with a modified client.
  spammer.publish("rate/topic", util::to_bytes("s1"));
  spammer.publish("rate/topic", util::to_bytes("s2"));
  spammer.publish("rate/topic", util::to_bytes("s3"));
  spammer.publish_unchecked("rate/topic", util::to_bytes("s4-violation"));
  rw.world.run_seconds(30);

  EXPECT_GE(rw.world.aggregate_stats().double_signals, 1u);
  EXPECT_FALSE(rw.world.contract().is_active(spammer.identity().pk));
}

TEST(RateNetworkTest, RateResetsNextEpoch) {
  RateWorld rw;
  auto& node = rw.world.node(2);
  for (int i = 0; i < 3; ++i) {
    node.publish("rate/topic", util::to_bytes("e1-" + std::to_string(i)));
  }
  EXPECT_EQ(node.publish("rate/topic", util::to_bytes("blocked")),
            waku::WakuRlnRelay::PublishOutcome::kRateLimited);
  rw.world.run_seconds(rw.cfg.rln.epoch_period_seconds);
  EXPECT_EQ(node.publish("rate/topic", util::to_bytes("fresh epoch")),
            waku::WakuRlnRelay::PublishOutcome::kPublished);
}

}  // namespace
}  // namespace wakurln
