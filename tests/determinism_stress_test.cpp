// Concurrency stress suite — the TSan job's primary workload (label:
// "concurrency"; the tsan CMake test preset selects exactly this label).
//
// Two claims are under test:
//   1. The threaded campaign sweep is embarrassingly parallel for real:
//      a multi-seed sweep at maximum (oversubscribed) thread fan-out
//      produces the byte-identical report of the single-threaded run —
//      worlds share nothing but immutable config, and the per-seed slots
//      they write are disjoint.
//   2. util::SharedBytes is safe to copy/slice/destroy across threads
//      (shared_ptr's atomic control block carries the refcount) while
//      its allocation counters stay exact per thread.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "scenario/campaign.h"
#include "scenario/scenarios.h"
#include "scenario/spec.h"
#include "util/bytes.h"
#include "util/shared_bytes.h"

namespace wakurln::scenario {
namespace {

// Shrinks a registered scenario so the stress sweep stays fast enough to
// run under TSan's ~10x slowdown in CI.
ScenarioSpec small(const std::string& name, std::size_t nodes = 14,
                   std::uint64_t epochs = 3) {
  ScenarioSpec spec = find_scenario(name);
  spec.nodes = nodes;
  spec.traffic_epochs = epochs;
  spec.observers = std::min<std::size_t>(spec.observers, 3);
  spec.publishers = std::min<std::size_t>(spec.publishers, 4);
  return spec;
}

// Enough workers that a single-core CI box still interleaves them, and a
// multi-core box oversubscribes: run_campaign clamps to the seed count,
// so kSeeds is the real fan-out ceiling.
constexpr std::size_t kSeeds = 8;

std::string sweep(const ScenarioSpec& spec, std::size_t threads) {
  CampaignConfig cfg;
  cfg.seeds = kSeeds;
  cfg.seed0 = 3;
  cfg.threads = threads;
  return report_json(run_campaign(spec, cfg));
}

TEST(CampaignStressTest, MaxFanOutSweepIsByteIdenticalToSerialRun) {
  const ScenarioSpec spec = small("spam_wave");
  const std::size_t fan_out =
      std::max<std::size_t>(kSeeds, 2 * std::thread::hardware_concurrency());
  EXPECT_EQ(sweep(spec, 1), sweep(spec, fan_out));
}

TEST(CampaignStressTest, StormSweepWithSharedGroupSyncIsByteIdentical) {
  // registration_storm churns the per-world shared GroupSync from a
  // periodic timer while traffic runs — the closest thing the campaign
  // has to cross-component mutable state, one instance per worker.
  const ScenarioSpec spec = small("registration_storm");
  EXPECT_EQ(sweep(spec, 1), sweep(spec, kSeeds));
}

TEST(CampaignStressTest, ObserverSweepWithFrameTapIsByteIdentical) {
  // The frame tap (FirstSpyObserver) hangs a callback off every delivery;
  // under fan-out each world's tap must stay confined to its thread.
  const ScenarioSpec spec = small("observer_coalition");
  EXPECT_EQ(sweep(spec, 1), sweep(spec, kSeeds));
}

TEST(CampaignStressTest, ObsTimeSeriesAndTraceAreByteIdenticalAcrossThreads) {
  // The observability layer rides the same determinism contract as the
  // report: per-epoch samples are pure functions of (spec, seed), and the
  // seed0 trace is recorded by exactly one worker regardless of fan-out.
  ScenarioSpec spec = small("observer_coalition");
  spec.observability = true;
  spec.trace = true;

  CampaignConfig cfg;
  cfg.seeds = kSeeds;
  cfg.seed0 = 3;
  cfg.threads = 1;
  const CampaignResult serial = run_campaign(spec, cfg);
  cfg.threads = kSeeds;
  const CampaignResult fanned = run_campaign(spec, cfg);

  const std::string serial_ts = timeseries_json(serial);
  ASSERT_FALSE(serial_ts.empty());
  EXPECT_EQ(serial_ts, timeseries_json(fanned));
  ASSERT_FALSE(serial.trace_json.empty());
  EXPECT_EQ(serial.trace_json, fanned.trace_json);
}

TEST(CampaignStressTest, ObsOnLeavesProtocolMetricsByteIdentical) {
  // Enabling the registry, sampler and tracer must be pure observation:
  // the protocol portion of the report (everything but resources) stays
  // byte-identical to the obs-off run.
  ScenarioSpec spec = small("registration_storm");
  CampaignConfig cfg;
  cfg.seeds = 4;
  cfg.seed0 = 3;
  cfg.threads = 4;
  const CampaignResult off = run_campaign(spec, cfg);
  spec.observability = true;
  spec.trace = true;
  const CampaignResult on = run_campaign(spec, cfg);
  EXPECT_EQ(report_json(off, /*include_resources=*/false),
            report_json(on, /*include_resources=*/false));
}

TEST(SharedBytesStressTest, CrossThreadCopySliceDestroyIsRaceFree) {
  util::Bytes data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  util::SharedBytes root{std::move(data)};

  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  const std::uint64_t main_allocs0 = util::SharedBytes::allocation_count();

  // Per-worker results land in disjoint slots and are asserted after the
  // join: no gtest machinery runs on the workers (its internals are not
  // TSan-instrumented in CI and would read as false races).
  std::vector<std::uint64_t> sums(kThreads, 0);
  std::vector<std::uint64_t> own_alloc_delta(kThreads, 0);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&root, &sums, &own_alloc_delta, t] {
      // Copies and slices churn the shared refcount from every thread;
      // the reads prove the bytes stay immutable and visible.
      std::uint64_t local = 0;
      for (int i = 0; i < kIters; ++i) {
        const util::SharedBytes copy = root;  // +1 / -1 across threads
        const util::SharedBytes view =
            copy.slice(static_cast<std::size_t>((t * kIters + i) % 4080), 16);
        local += view[0];
      }
      // A worker's own allocation lands in its own thread-local counter.
      const std::uint64_t before = util::SharedBytes::allocation_count();
      const util::SharedBytes mine =
          util::SharedBytes::copy_of(root.slice(0, 64).span());
      local += mine[63];
      own_alloc_delta[t] = util::SharedBytes::allocation_count() - before;
      sums[t] = local;
    });
  }
  for (std::thread& t : pool) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(own_alloc_delta[t], 1u) << "worker " << t;
    EXPECT_NE(sums[t], 0u) << "worker " << t;
  }

  // Every cross-thread owner is gone: the root view owns alone again.
  EXPECT_EQ(root.use_count(), 1);
  // The workers' allocations never bled into this thread's counter —
  // per-world payload_allocs deltas stay exact under campaign fan-out.
  EXPECT_EQ(util::SharedBytes::allocation_count(), main_allocs0);
}

}  // namespace
}  // namespace wakurln::scenario
