// Failure injection: partitions, loss, races and resource exhaustion.
// These scenarios probe the liveness/safety seams between the modules —
// what a deployment actually hits in the field.

#include <gtest/gtest.h>

#include "sim/topology.h"
#include "waku/harness.h"

namespace wakurln {
namespace {

using util::Bytes;
using util::Rng;

TEST(FailureTest, GossipHealsNetworkPartition) {
  // Split a 12-node network in half mid-run; messages published during the
  // partition reach the other side after the links heal (IHAVE/IWANT
  // recovery from the message cache).
  waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
  cfg.node_count = 12;
  cfg.extra_links_per_node = 4;
  cfg.seed = 111;
  // Deeper message cache / gossip window so recovery can span the outage
  // (the knob a deployment would turn when partitions are expected).
  cfg.gossip.mcache_len = 30;
  cfg.gossip.mcache_gossip = 15;
  cfg.gossip.d_lazy = 8;
  waku::SimHarness world(cfg);
  world.subscribe_all("fail/partition");
  world.register_all();
  world.run_seconds(5);

  // Partition: cut every link between {0..5} and {6..11}.
  std::vector<std::pair<sim::NodeId, sim::NodeId>> cut;
  for (sim::NodeId a = 0; a < 6; ++a) {
    for (sim::NodeId b : world.network().neighbors(a)) {
      if (b >= 6) cut.emplace_back(a, b);
    }
  }
  for (const auto& [a, b] : cut) world.network().disconnect(a, b);

  const Bytes payload = util::to_bytes("published during partition");
  world.node(0).publish("fail/partition", payload);
  world.run_seconds(5);
  // Only the publisher's side has it.
  std::size_t left = 0, right = 0;
  for (const auto& d : world.deliveries()) {
    if (d.payload != payload) continue;
    (d.node_index < 6 ? left : right) += 1;
  }
  EXPECT_GT(left, 0u);
  EXPECT_EQ(right, 0u);

  // Heal and wait for mesh repair + gossip rounds. The message must stay
  // within the epoch window, so keep the gap short (Thr=2, T=10s).
  for (const auto& [a, b] : cut) world.network().connect(a, b);
  world.run_seconds(15);
  EXPECT_EQ(world.nodes_delivered(payload), world.size())
      << "partitioned side never recovered the message";
}

TEST(FailureTest, RlnSurvivesLossyLinks) {
  waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
  cfg.node_count = 12;
  cfg.link.loss_rate = 0.15;
  cfg.seed = 222;
  cfg.gossip.mcache_len = 10;
  cfg.gossip.mcache_gossip = 5;
  cfg.gossip.d_lazy = 8;
  waku::SimHarness world(cfg);
  world.subscribe_all("fail/lossy");
  world.register_all();
  world.run_seconds(5);

  int published = 0;
  for (int e = 0; e < 4; ++e) {
    // Built via += rather than "m" + std::to_string(e): GCC 12 emits a
    // bogus -Wrestrict on inlined const char* + std::string&& (PR105651).
    std::string tag = "m";
    tag += std::to_string(e);
    if (world.node(e).publish("fail/lossy", util::to_bytes(tag)) ==
        waku::WakuRlnRelay::PublishOutcome::kPublished) {
      ++published;
    }
    world.run_seconds(world.config().rln.epoch_period_seconds);
  }
  world.run_seconds(30);  // gossip recovery rounds

  std::size_t total = 0;
  for (int e = 0; e < 4; ++e) {
    std::string tag = "m";
    tag += std::to_string(e);
    total += world.nodes_delivered(util::to_bytes(tag));
  }
  // >= 90% of (message, node) pairs despite 15% frame loss.
  EXPECT_GE(total, static_cast<std::size_t>(0.9 * published * world.size()));
}

TEST(FailureTest, ConcurrentSlashersOnlyBurnOnce) {
  // Every honest router detects the same double-signal and submits a slash
  // tx. Exactly one succeeds; the stake is burnt exactly once and exactly
  // one reward is paid.
  waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
  cfg.node_count = 10;
  cfg.seed = 333;
  waku::SimHarness world(cfg);
  world.subscribe_all("fail/race");
  world.register_all();
  world.run_seconds(3);

  world.node(0).publish_unchecked("fail/race", util::to_bytes("a"));
  world.node(0).publish_unchecked("fail/race", util::to_bytes("b"));
  world.run_seconds(40);

  const auto stats = world.aggregate_stats();
  EXPECT_GE(stats.slashes_submitted, 2u);  // a real race happened
  EXPECT_EQ(world.chain().ledger().burnt_total(),
            world.contract().config().stake_wei / 2);  // but one burn only
  std::size_t rewardees = 0;
  for (std::size_t i = 0; i < world.size(); ++i) {
    const auto bal = world.chain().ledger().balance_of(world.account_of(i));
    if (bal > world.config().initial_balance_wei - world.config().stake_wei) {
      ++rewardees;
    }
  }
  EXPECT_EQ(rewardees, 1u);
  // The losing slash transactions reverted on-chain.
  std::size_t reverted = 0;
  for (const auto& block : world.chain().blocks()) {
    for (const auto& r : block.receipts) {
      if (!r.success && r.error == "not a member") ++reverted;
    }
  }
  EXPECT_EQ(reverted, stats.slashes_submitted - 1);
}

TEST(FailureTest, RegistrationBeyondCapacityFailsCleanly) {
  waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
  cfg.node_count = 5;
  cfg.rln.tree_depth = 2;  // capacity 4 < 5 nodes
  cfg.seed = 444;
  waku::SimHarness world(cfg);
  world.subscribe_all("fail/full");
  world.register_all();

  std::size_t registered = 0;
  for (std::size_t i = 0; i < world.size(); ++i) {
    if (world.node(i).is_registered()) ++registered;
  }
  EXPECT_EQ(registered, 4u);
  EXPECT_EQ(world.contract().member_count(), 4u);
  // The unregistered node cannot publish but does not corrupt anything.
  for (std::size_t i = 0; i < world.size(); ++i) {
    if (!world.node(i).is_registered()) {
      EXPECT_EQ(world.node(i).publish("fail/full", util::to_bytes("nope")),
                waku::WakuRlnRelay::PublishOutcome::kNotRegistered);
    }
  }
  // Everyone else still works.
  for (std::size_t i = 0; i < world.size(); ++i) {
    if (world.node(i).is_registered()) {
      EXPECT_EQ(world.node(i).publish("fail/full", util::to_bytes("works")),
                waku::WakuRlnRelay::PublishOutcome::kPublished);
      break;
    }
  }
}

TEST(FailureTest, InsufficientStakeBalanceFailsRegistration) {
  waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
  cfg.node_count = 4;
  cfg.initial_balance_wei = 100;  // cannot afford the 1e6 stake
  cfg.seed = 555;
  waku::SimHarness world(cfg);
  world.register_all();
  for (std::size_t i = 0; i < world.size(); ++i) {
    EXPECT_FALSE(world.node(i).is_registered());
  }
  EXPECT_EQ(world.contract().member_count(), 0u);
}

TEST(FailureTest, LateSubscriberMissesOldButGetsNewMessages) {
  // No store/history layer: a peer that subscribes late receives only
  // traffic from then on (expected Waku-Relay semantics).
  waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
  cfg.node_count = 8;
  cfg.seed = 666;
  waku::SimHarness world(cfg);
  // All but node 7 subscribe.
  std::vector<Bytes> late_inbox;
  for (std::size_t i = 0; i < 7; ++i) {
    world.node(i).subscribe("fail/late",
                            [](const gossipsub::TopicId&, const util::SharedBytes&) {});
  }
  world.register_all();
  world.run_seconds(3);
  world.node(0).publish("fail/late", util::to_bytes("early message"));
  world.run_seconds(world.config().rln.epoch_period_seconds + 5);

  world.node(7).subscribe("fail/late",
                          [&late_inbox](const gossipsub::TopicId&,
                                        const util::SharedBytes& p) {
                            late_inbox.push_back(p.to_vector());
                          });
  world.run_seconds(5);  // mesh formation for the late subscriber
  world.node(0).publish("fail/late", util::to_bytes("current message"));
  world.run_seconds(10);

  ASSERT_EQ(late_inbox.size(), 1u);
  EXPECT_EQ(late_inbox[0], util::to_bytes("current message"));
}

TEST(FailureTest, ChurnDuringPublishIsToleratedByRootWindow) {
  // Registrations landing while a message is in flight advance the root;
  // the acceptable-root window (default 5) keeps the message deliverable.
  waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
  cfg.node_count = 8;
  cfg.seed = 777;
  waku::SimHarness world(cfg);
  world.subscribe_all("fail/churn");
  world.register_all();
  world.run_seconds(3);

  // Slow down one victim's inbound links so the message arrives after the
  // root has moved.
  for (sim::NodeId peer : world.network().neighbors(6)) {
    sim::LinkParams slow = world.config().link;
    slow.base_latency = 8 * sim::kUsPerSecond;  // 8 s propagation
    world.network().set_link_params(6, peer, slow);
  }
  const Bytes payload = util::to_bytes("slow boat");
  world.node(0).publish("fail/churn", payload);

  // Meanwhile a newcomer registers (root advances before delivery at 6).
  Rng nrng(888);
  const auto newcomer = rln::Identity::generate(nrng);
  world.chain().ledger().mint(70'000, 10'000'000);
  world.chain().submit(
      70'000, world.contract().config().stake_wei,
      eth::MembershipContract::kRegisterCalldataBytes,
      [&world, pk = newcomer.pk](eth::TxContext& ctx) {
        world.contract().register_member(ctx, pk);
      },
      world.scheduler().now() / sim::kUsPerSecond);

  world.run_seconds(20);
  EXPECT_EQ(world.nodes_delivered(payload), world.size());
}

}  // namespace
}  // namespace wakurln
