#include <gtest/gtest.h>

#include "hash/poseidon.h"
#include "rln/epoch.h"
#include "rln/group.h"
#include "rln/identity.h"
#include "rln/nullifier_map.h"
#include "rln/prover.h"
#include "rln/signal.h"
#include "shamir/shamir.h"
#include "util/rng.h"

namespace wakurln::rln {
namespace {

using field::Fr;
using util::Bytes;
using util::Rng;

TEST(IdentityTest, PkIsPoseidonOfSk) {
  Rng rng(701);
  const Identity id = Identity::generate(rng);
  EXPECT_EQ(id.pk, hash::poseidon_hash1(id.sk));
  EXPECT_EQ(Identity::from_sk(id.sk), id);
}

TEST(IdentityTest, KeysSerializeTo32Bytes) {
  // Paper §IV: each peer persists 32 B public and secret keys.
  Rng rng(702);
  const Identity id = Identity::generate(rng);
  EXPECT_EQ(id.sk.to_bytes_be().size(), 32u);
  EXPECT_EQ(id.pk.to_bytes_be().size(), 32u);
}

TEST(EpochTest, EpochAtDividesByPeriod) {
  const EpochScheme scheme(10, 20);
  EXPECT_EQ(scheme.epoch_at(0), 0u);
  EXPECT_EQ(scheme.epoch_at(9), 0u);
  EXPECT_EQ(scheme.epoch_at(10), 1u);
  EXPECT_EQ(scheme.epoch_at(105), 10u);
}

TEST(EpochTest, ThresholdIsCeilOfDelayOverPeriod) {
  EXPECT_EQ(EpochScheme(10, 20).threshold(), 2u);   // D/T exact
  EXPECT_EQ(EpochScheme(10, 25).threshold(), 3u);   // rounds up
  EXPECT_EQ(EpochScheme(10, 0).threshold(), 0u);
  EXPECT_EQ(EpochScheme(1, 6).threshold(), 6u);
}

TEST(EpochTest, WithinThresholdIsSymmetric) {
  const EpochScheme scheme(10, 20);  // Thr = 2
  EXPECT_TRUE(scheme.within_threshold(100, 100));
  EXPECT_TRUE(scheme.within_threshold(98, 100));
  EXPECT_TRUE(scheme.within_threshold(102, 100));
  EXPECT_FALSE(scheme.within_threshold(97, 100));   // too old
  EXPECT_FALSE(scheme.within_threshold(103, 100));  // too far in the future
}

TEST(EpochTest, ZeroPeriodRejected) {
  EXPECT_THROW(EpochScheme(0, 10), std::invalid_argument);
}

TEST(GroupTest, AddAndLookupMembers) {
  Rng rng(703);
  RlnGroup group(8);
  const Identity a = Identity::generate(rng);
  const Identity b = Identity::generate(rng);
  const auto ia = group.add_member(a.pk);
  const auto ib = group.add_member(b.pk);
  EXPECT_EQ(ia, 0u);
  EXPECT_EQ(ib, 1u);
  EXPECT_EQ(group.member_count(), 2u);
  EXPECT_EQ(group.index_of(a.pk), ia);
  EXPECT_EQ(group.index_of(b.pk), ib);
  EXPECT_FALSE(group.index_of(Fr::from_u64(12345)).has_value());
}

TEST(GroupTest, RemoveMemberZeroesLeaf) {
  Rng rng(704);
  RlnGroup group(8);
  const Identity a = Identity::generate(rng);
  const auto ia = group.add_member(a.pk);
  const Fr root_before = group.root();
  group.remove_member(ia);
  EXPECT_EQ(group.member_count(), 0u);
  EXPECT_FALSE(group.is_active(ia));
  EXPECT_FALSE(group.index_of(a.pk).has_value());
  EXPECT_NE(group.root(), root_before);
  EXPECT_THROW(group.remove_member(ia), std::out_of_range);
}

TEST(GroupTest, RejectsZeroCommitment) {
  RlnGroup group(8);
  EXPECT_THROW(group.add_member(Fr::zero()), std::invalid_argument);
}

TEST(GroupTest, MembershipProofVerifiesAgainstRoot) {
  Rng rng(705);
  RlnGroup group(8);
  const Identity a = Identity::generate(rng);
  const auto ia = group.add_member(a.pk);
  const auto proof = group.membership_proof(ia);
  EXPECT_TRUE(merkle::MerkleTree::verify(group.root(), a.pk, proof));
  EXPECT_THROW(group.membership_proof(5), std::out_of_range);
}

struct ProverFixture {
  Rng rng{800};
  RlnGroup group{8};
  Identity id = Identity::generate(rng);
  std::uint64_t index = group.add_member(id.pk);
  zksnark::KeyPair keys = zksnark::MockGroth16::setup(8, rng);
  RlnProver prover{keys.pk, id};
  RlnVerifier verifier{keys.vk};
};

TEST(ProverTest, SignalRoundTrip) {
  ProverFixture f;
  const Bytes payload = util::to_bytes("hello rln");
  const auto signal = f.prover.create_signal(payload, 42, f.group, f.index, f.rng);
  ASSERT_TRUE(signal.has_value());
  EXPECT_EQ(signal->epoch, 42u);
  EXPECT_EQ(signal->root, f.group.root());
  EXPECT_TRUE(f.verifier.verify(payload, *signal));
}

TEST(ProverTest, VerifierRejectsPayloadSubstitution) {
  // The proof binds x = H(m): swapping the payload invalidates the signal.
  ProverFixture f;
  const Bytes payload = util::to_bytes("original");
  const auto signal = f.prover.create_signal(payload, 42, f.group, f.index, f.rng);
  ASSERT_TRUE(signal.has_value());
  EXPECT_FALSE(f.verifier.verify(util::to_bytes("forged"), *signal));
}

TEST(ProverTest, VerifierRejectsEpochSubstitution) {
  ProverFixture f;
  const Bytes payload = util::to_bytes("msg");
  auto signal = f.prover.create_signal(payload, 42, f.group, f.index, f.rng);
  ASSERT_TRUE(signal.has_value());
  signal->epoch = 43;
  EXPECT_FALSE(f.verifier.verify(payload, *signal));
}

TEST(ProverTest, RefusesWrongLeafIndex) {
  ProverFixture f;
  const Identity other = Identity::generate(f.rng);
  const auto other_index = f.group.add_member(other.pk);
  const Bytes payload = util::to_bytes("msg");
  EXPECT_FALSE(f.prover.create_signal(payload, 1, f.group, other_index, f.rng).has_value());
}

TEST(ProverTest, RefusesAfterSlashing) {
  ProverFixture f;
  f.group.remove_member(f.index);
  const Bytes payload = util::to_bytes("msg");
  EXPECT_FALSE(f.prover.create_signal(payload, 1, f.group, f.index, f.rng).has_value());
}

TEST(ProverTest, SignalVerifiesOnlyAgainstMatchingRoot) {
  // Group-synchronisation hazard from §III: a proof against a stale root
  // fails once the tree has moved on.
  ProverFixture f;
  const Bytes payload = util::to_bytes("msg");
  const auto signal = f.prover.create_signal(payload, 7, f.group, f.index, f.rng);
  ASSERT_TRUE(signal.has_value());
  // Root advances after another registration.
  const Identity late = Identity::generate(f.rng);
  f.group.add_member(late.pk);
  EXPECT_NE(f.group.root(), signal->root);
  // The signal still verifies against the root it committed to…
  EXPECT_TRUE(f.verifier.verify(payload, *signal));
  // …but a signal claiming the new root with the old proof fails.
  auto stale = *signal;
  stale.root = f.group.root();
  EXPECT_FALSE(f.verifier.verify(payload, stale));
}

TEST(ProverTest, SameEpochSameNullifierAcrossMessages) {
  ProverFixture f;
  const auto s1 = f.prover.create_signal(util::to_bytes("m1"), 9, f.group, f.index, f.rng);
  const auto s2 = f.prover.create_signal(util::to_bytes("m2"), 9, f.group, f.index, f.rng);
  ASSERT_TRUE(s1 && s2);
  EXPECT_EQ(s1->nullifier, s2->nullifier);  // double-signal fingerprint
}

TEST(ProverTest, DifferentEpochsYieldUnlinkableNullifiers) {
  ProverFixture f;
  const auto s1 = f.prover.create_signal(util::to_bytes("m"), 9, f.group, f.index, f.rng);
  const auto s2 = f.prover.create_signal(util::to_bytes("m"), 10, f.group, f.index, f.rng);
  ASSERT_TRUE(s1 && s2);
  EXPECT_NE(s1->nullifier, s2->nullifier);
}

TEST(SignalTest, SerializationRoundTrip) {
  ProverFixture f;
  const Bytes payload = util::to_bytes("wire");
  const auto signal = f.prover.create_signal(payload, 13, f.group, f.index, f.rng);
  ASSERT_TRUE(signal.has_value());
  const Bytes wire = signal->serialize();
  EXPECT_EQ(wire.size(), RlnSignal::kWireSize);
  const auto parsed = RlnSignal::deserialize(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, *signal);
  EXPECT_TRUE(f.verifier.verify(payload, *parsed));
}

TEST(SignalTest, DeserializeRejectsBadLength) {
  const Bytes short_buf(10, 0);
  EXPECT_FALSE(RlnSignal::deserialize(short_buf).has_value());
  const Bytes long_buf(RlnSignal::kWireSize + 1, 0);
  EXPECT_FALSE(RlnSignal::deserialize(long_buf).has_value());
}

TEST(SignalTest, DeserializeRejectsNonCanonicalField) {
  ProverFixture f;
  const auto signal = f.prover.create_signal(util::to_bytes("x"), 1, f.group, f.index, f.rng);
  Bytes wire = signal->serialize();
  // Overwrite y with the modulus (non-canonical encoding).
  const auto mod = Fr::modulus_bytes_be();
  std::copy(mod.begin(), mod.end(), wire.begin() + 8);
  EXPECT_FALSE(RlnSignal::deserialize(wire).has_value());
}

TEST(NullifierMapTest, FreshThenDuplicateThenDoubleSignal) {
  Rng rng(900);
  NullifierMap map;
  const Identity id = Identity::generate(rng);
  const Fr epoch_field = Fr::from_u64(5);
  const Fr a1 = hash::poseidon_hash2(id.sk, epoch_field);
  const Fr nullifier = hash::poseidon_hash1(a1);

  const Fr x1 = Fr::from_u64(101), x2 = Fr::from_u64(202);
  const Fr y1 = shamir::make_share(id.sk, a1, x1).y;
  const Fr y2 = shamir::make_share(id.sk, a1, x2).y;

  const auto first = map.observe(5, nullifier, x1, y1);
  EXPECT_EQ(first.outcome, NullifierMap::Outcome::kFresh);

  const auto dup = map.observe(5, nullifier, x1, y1);
  EXPECT_EQ(dup.outcome, NullifierMap::Outcome::kDuplicateMessage);
  EXPECT_FALSE(dup.breached_sk.has_value());

  const auto breach = map.observe(5, nullifier, x2, y2);
  EXPECT_EQ(breach.outcome, NullifierMap::Outcome::kDoubleSignal);
  ASSERT_TRUE(breach.breached_sk.has_value());
  EXPECT_EQ(*breach.breached_sk, id.sk);  // slashing evidence is the real key
}

TEST(NullifierMapTest, SameNullifierDifferentEpochIsFresh) {
  NullifierMap map;
  const Fr n = Fr::from_u64(7);
  EXPECT_EQ(map.observe(1, n, Fr::from_u64(1), Fr::from_u64(2)).outcome,
            NullifierMap::Outcome::kFresh);
  EXPECT_EQ(map.observe(2, n, Fr::from_u64(3), Fr::from_u64(4)).outcome,
            NullifierMap::Outcome::kFresh);
}

TEST(NullifierMapTest, PruneDropsOldEpochs) {
  NullifierMap map;
  for (std::uint64_t e = 0; e < 10; ++e) {
    map.observe(e, Fr::from_u64(e + 100), Fr::from_u64(1), Fr::from_u64(2));
  }
  EXPECT_EQ(map.epoch_count(), 10u);
  map.prune_before(7);
  EXPECT_EQ(map.epoch_count(), 3u);
  EXPECT_EQ(map.record_count(), 3u);
  // A pruned nullifier can be observed again without a false double-signal
  // (the message would be dropped by the epoch check anyway, §III).
  EXPECT_EQ(map.observe(3, Fr::from_u64(103), Fr::from_u64(9), Fr::from_u64(9)).outcome,
            NullifierMap::Outcome::kFresh);
}

TEST(NullifierMapTest, MemoryGrowsWithRecordsAndShrinksOnPrune) {
  NullifierMap map;
  const std::size_t empty = map.memory_bytes();
  for (std::uint64_t e = 0; e < 5; ++e) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      map.observe(e, Fr::from_u64(e * 1000 + i), Fr::from_u64(i), Fr::from_u64(i + 1));
    }
  }
  const std::size_t loaded = map.memory_bytes();
  EXPECT_GT(loaded, empty);
  map.prune_before(5);
  EXPECT_LT(map.memory_bytes(), loaded);
  EXPECT_EQ(map.record_count(), 0u);
}

// -- sharded-ring storage invariants ------------------------------------

TEST(NullifierMapShardTest, PruneInvariantsAcrossEpochWrapAround) {
  // Drive many prune cycles: the ring must keep exactly the retained
  // window at every step, with counts consistent, as epochs march far
  // beyond the initial allocation (ring reuse / wrap-around).
  NullifierMap map;
  constexpr std::uint64_t kWindow = 4;
  for (std::uint64_t e = 0; e < 200; ++e) {
    for (std::uint64_t i = 0; i < 3; ++i) {
      EXPECT_EQ(
          map.observe(e, Fr::from_u64(e * 17 + i), Fr::from_u64(i + 1), Fr::from_u64(i + 2))
              .outcome,
          NullifierMap::Outcome::kFresh);
    }
    if (e >= kWindow) {
      map.prune_before(e - kWindow + 1);
      EXPECT_EQ(map.epoch_count(), kWindow);
      EXPECT_EQ(map.record_count(), kWindow * 3);
    }
    // Records inside the window survive the prune; a record from the
    // current epoch is always a duplicate on re-observation.
    EXPECT_EQ(map.observe(e, Fr::from_u64(e * 17), Fr::from_u64(1), Fr::from_u64(2)).outcome,
              NullifierMap::Outcome::kDuplicateMessage);
  }
  map.prune_before(1000);
  EXPECT_EQ(map.epoch_count(), 0u);
  EXPECT_EQ(map.record_count(), 0u);
}

TEST(NullifierMapShardTest, OutOfOrderEpochsWithinWindowShareTheRing) {
  // The Thr acceptance window lets slightly-old epochs arrive after newer
  // ones; they must land in their own shard, not corrupt neighbours.
  NullifierMap map;
  map.observe(10, Fr::from_u64(1), Fr::from_u64(1), Fr::from_u64(2));
  map.observe(12, Fr::from_u64(2), Fr::from_u64(1), Fr::from_u64(2));
  map.observe(11, Fr::from_u64(3), Fr::from_u64(1), Fr::from_u64(2));  // middle insert
  map.observe(9, Fr::from_u64(4), Fr::from_u64(1), Fr::from_u64(2));   // front insert
  EXPECT_EQ(map.epoch_count(), 4u);
  EXPECT_EQ(map.record_count(), 4u);
  // Same nullifier value in different epochs stays independent.
  EXPECT_EQ(map.observe(11, Fr::from_u64(2), Fr::from_u64(5), Fr::from_u64(6)).outcome,
            NullifierMap::Outcome::kFresh);
  map.prune_before(11);
  EXPECT_EQ(map.epoch_count(), 2u);
  EXPECT_EQ(map.record_count(), 3u);
}

TEST(NullifierMapShardTest, MemoryBytesTracksLiveStateExactly) {
  // memory_bytes must be reproducible from the visible state (records and
  // shards), grow monotonically under inserts within an epoch, and return
  // to the empty baseline after a full prune.
  NullifierMap map;
  const std::size_t empty = map.memory_bytes();
  std::size_t prev = empty;
  for (std::uint64_t i = 0; i < 64; ++i) {
    map.observe(5, Fr::from_u64(1000 + i), Fr::from_u64(1), Fr::from_u64(2));
    const std::size_t now = map.memory_bytes();
    EXPECT_GT(now, prev - 1);  // never shrinks while inserting
    prev = now;
  }
  // Duplicates add no records and therefore no memory.
  const std::size_t loaded = map.memory_bytes();
  map.observe(5, Fr::from_u64(1000), Fr::from_u64(1), Fr::from_u64(2));
  EXPECT_EQ(map.memory_bytes(), loaded);
  map.prune_before(6);
  EXPECT_EQ(map.record_count(), 0u);
  EXPECT_EQ(map.memory_bytes(), empty);
}

TEST(NullifierMapShardTest, DuplicateVersusDoubleSignalUnderRateExtension) {
  // messages_per_epoch > 1: each (epoch, slot) pair derives a distinct
  // internal nullifier, so k honest slots coexist in one epoch shard,
  // while reusing one slot with a different message is a double-signal
  // and re-sending the same message is only a duplicate.
  Rng rng(903);
  const Identity id = Identity::generate(rng);
  const std::uint64_t epoch = 77;
  NullifierMap map;
  std::vector<Fr> slot_nullifiers;
  std::vector<Fr> slot_keys;  // a_1 per slot
  for (std::uint64_t slot = 0; slot < 3; ++slot) {
    // External nullifier mixes epoch and slot as in the RLN-v2 extension.
    const Fr ext = hash::poseidon_hash2(Fr::from_u64(epoch), Fr::from_u64(slot));
    const Fr a1 = hash::poseidon_hash2(id.sk, ext);
    slot_keys.push_back(a1);
    slot_nullifiers.push_back(hash::poseidon_hash1(a1));
  }
  // One honest message per slot: all fresh, same epoch shard.
  for (std::uint64_t slot = 0; slot < 3; ++slot) {
    const Fr x = Fr::from_u64(100 + slot);
    const auto share = shamir::make_share(id.sk, slot_keys[slot], x);
    EXPECT_EQ(map.observe(epoch, slot_nullifiers[slot], x, share.y).outcome,
              NullifierMap::Outcome::kFresh);
  }
  EXPECT_EQ(map.epoch_count(), 1u);
  EXPECT_EQ(map.record_count(), 3u);
  // Gossip duplicate of slot 1: same x, same y -> ignore.
  {
    const Fr x = Fr::from_u64(101);
    const auto share = shamir::make_share(id.sk, slot_keys[1], x);
    EXPECT_EQ(map.observe(epoch, slot_nullifiers[1], x, share.y).outcome,
              NullifierMap::Outcome::kDuplicateMessage);
  }
  // Slot 1 reused for a *different* message: double-signal, sk recovered.
  {
    const Fr x = Fr::from_u64(555);
    const auto share = shamir::make_share(id.sk, slot_keys[1], x);
    const auto result = map.observe(epoch, slot_nullifiers[1], x, share.y);
    EXPECT_EQ(result.outcome, NullifierMap::Outcome::kDoubleSignal);
    ASSERT_TRUE(result.breached_sk.has_value());
    EXPECT_EQ(*result.breached_sk, id.sk);
  }
  EXPECT_EQ(map.record_count(), 3u);  // violations never add records
}

// Property sweep: double-signal reconstruction always recovers the true sk
// for random identities, epochs and message pairs.
class DoubleSignalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DoubleSignalProperty, ReconstructsOffenderKey) {
  Rng rng(1000 + GetParam());
  NullifierMap map;
  const Identity id = Identity::generate(rng);
  const std::uint64_t epoch = rng.uniform(0, 1u << 30);
  const Fr a1 = hash::poseidon_hash2(id.sk, Fr::from_u64(epoch));
  const Fr nullifier = hash::poseidon_hash1(a1);
  const Fr x1 = Fr::random(rng);
  Fr x2 = Fr::random(rng);
  if (x2 == x1) x2 += Fr::one();
  map.observe(epoch, nullifier, x1, shamir::make_share(id.sk, a1, x1).y);
  const auto result =
      map.observe(epoch, nullifier, x2, shamir::make_share(id.sk, a1, x2).y);
  EXPECT_EQ(result.outcome, NullifierMap::Outcome::kDoubleSignal);
  ASSERT_TRUE(result.breached_sk.has_value());
  EXPECT_EQ(*result.breached_sk, id.sk);
}

INSTANTIATE_TEST_SUITE_P(RandomisedRuns, DoubleSignalProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace wakurln::rln
