#include <gtest/gtest.h>

#include <unordered_set>

#include "hash/poseidon.h"
#include "util/rng.h"

namespace wakurln::hash {
namespace {

using field::Fr;
using field::FrHash;
using util::Rng;

TEST(PoseidonParamsTest, InstanceIsStable) {
  const PoseidonParams& a = PoseidonParams::instance();
  const PoseidonParams& b = PoseidonParams::instance();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.round_constants.size(),
            static_cast<std::size_t>(PoseidonParams::kFullRounds +
                                     PoseidonParams::kPartialRounds));
}

TEST(PoseidonParamsTest, RoundConstantsAreDistinct) {
  const PoseidonParams& p = PoseidonParams::instance();
  std::unordered_set<Fr, FrHash> seen;
  for (const auto& rc : p.round_constants) {
    for (const auto& c : rc) seen.insert(c);
  }
  EXPECT_EQ(seen.size(), p.round_constants.size() * PoseidonParams::kWidth);
}

TEST(PoseidonParamsTest, MdsMatrixEntriesNonZero) {
  const PoseidonParams& p = PoseidonParams::instance();
  for (const auto& row : p.mds) {
    for (const auto& e : row) EXPECT_FALSE(e.is_zero());
  }
}

TEST(PoseidonParamsTest, MdsMatrixIsInvertible) {
  // det(M) != 0 for the 3x3 Cauchy matrix.
  const auto& m = PoseidonParams::instance().mds;
  const Fr det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
                 m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
                 m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
  EXPECT_FALSE(det.is_zero());
}

TEST(PoseidonPermuteTest, ChangesState) {
  std::array<Fr, 3> state = {Fr::zero(), Fr::zero(), Fr::zero()};
  poseidon_permute(state);
  EXPECT_FALSE(state[0].is_zero());
  EXPECT_FALSE(state[1].is_zero());
  EXPECT_FALSE(state[2].is_zero());
}

TEST(PoseidonPermuteTest, Deterministic) {
  std::array<Fr, 3> s1 = {Fr::from_u64(1), Fr::from_u64(2), Fr::from_u64(3)};
  std::array<Fr, 3> s2 = s1;
  poseidon_permute(s1);
  poseidon_permute(s2);
  EXPECT_EQ(s1, s2);
}

TEST(PoseidonHashTest, DeterministicAcrossCalls) {
  const Fr a = Fr::from_u64(123456);
  EXPECT_EQ(poseidon_hash1(a), poseidon_hash1(a));
  EXPECT_EQ(poseidon_hash2(a, a), poseidon_hash2(a, a));
}

TEST(PoseidonHashTest, InputSensitivity) {
  Rng rng(201);
  for (int i = 0; i < 20; ++i) {
    const Fr a = Fr::random(rng);
    const Fr b = Fr::random(rng);
    ASSERT_NE(a, b);
    EXPECT_NE(poseidon_hash1(a), poseidon_hash1(b));
    EXPECT_NE(poseidon_hash2(a, b), poseidon_hash2(b, a));
  }
}

TEST(PoseidonHashTest, DomainSeparationBetweenArities) {
  // H1(x) must differ from H2(x, 0): the capacity tag separates them.
  const Fr x = Fr::from_u64(77);
  EXPECT_NE(poseidon_hash1(x), poseidon_hash2(x, Fr::zero()));
}

TEST(PoseidonHashTest, NoObviousCollisionsOnRandomInputs) {
  Rng rng(202);
  std::unordered_set<Fr, FrHash> outputs;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    outputs.insert(poseidon_hash1(Fr::random(rng)));
  }
  EXPECT_EQ(outputs.size(), static_cast<std::size_t>(n));
}

TEST(PoseidonHashTest, OutputNotEqualToInput) {
  Rng rng(203);
  for (int i = 0; i < 20; ++i) {
    const Fr a = Fr::random(rng);
    EXPECT_NE(poseidon_hash1(a), a);
  }
}

// ---------------------------------------------------------------------------
// Batch kernels: bit-identical to the scalar reference permutation.

TEST(PoseidonBatchTest, PermuteBatchMatchesScalarPermute) {
  // Sizes cover an empty span, a single state, a partial block, exactly
  // one kernel block (8), and a multi-block run with remainder.
  for (std::size_t n : {0u, 1u, 3u, 8u, 27u}) {
    Rng rng(400 + n);
    std::vector<std::array<Fr, PoseidonParams::kWidth>> states(n);
    for (auto& s : states) {
      for (auto& e : s) e = Fr::random(rng);
    }
    auto ref = states;
    poseidon_permute_batch(states);
    for (std::size_t i = 0; i < n; ++i) {
      poseidon_permute(ref[i]);
      ASSERT_EQ(states[i], ref[i]) << "state " << i << " of " << n;
    }
  }
}

TEST(PoseidonBatchTest, PermuteBatchMatchesOnDegenerateStates) {
  // All-zero, all-one and mixed-extreme states: the batch S-box gathers
  // lanes across states, so degenerate values must not leak between
  // neighbours.
  const Fr r1 = -Fr::one();
  std::vector<std::array<Fr, PoseidonParams::kWidth>> states = {
      {Fr::zero(), Fr::zero(), Fr::zero()},
      {Fr::one(), Fr::one(), Fr::one()},
      {r1, Fr::zero(), r1},
      {Fr::from_u64(1), r1, Fr::zero()},
  };
  auto ref = states;
  poseidon_permute_batch(states);
  for (std::size_t i = 0; i < states.size(); ++i) {
    poseidon_permute(ref[i]);
    ASSERT_EQ(states[i], ref[i]) << "degenerate state " << i;
  }
}

TEST(PoseidonBatchTest, Hash2BatchMatchesScalarHash2) {
  for (std::size_t n : {0u, 1u, 8u, 21u}) {
    Rng rng(500 + n);
    std::vector<Fr> a(n), b(n), out(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = Fr::random(rng);
      b[i] = Fr::random(rng);
    }
    poseidon_hash2_batch(a, b, out);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], poseidon_hash2(a[i], b[i])) << "pair " << i;
    }
  }
}

TEST(PoseidonBatchTest, Hash2BatchSupportsAliasedOutput) {
  Rng rng(600);
  std::vector<Fr> a(11), b(11);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = Fr::random(rng);
    b[i] = Fr::random(rng);
  }
  const auto a_copy = a;
  poseidon_hash2_batch(a, b, a);  // out aliases a
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], poseidon_hash2(a_copy[i], b[i])) << "aliased pair " << i;
  }
}

TEST(PoseidonHashTest, AvalancheOnSingleBitOfInput) {
  // Flipping the lowest bit of the input changes the output completely
  // (compare leading bytes rather than full equality to make the check
  // meaningful).
  const Fr a = Fr::from_u64(0x1000);
  const Fr b = Fr::from_u64(0x1001);
  const auto ha = poseidon_hash1(a).to_bytes_be();
  const auto hb = poseidon_hash1(b).to_bytes_be();
  int differing = 0;
  for (std::size_t i = 0; i < ha.size(); ++i) {
    if (ha[i] != hb[i]) ++differing;
  }
  EXPECT_GT(differing, 20);
}

}  // namespace
}  // namespace wakurln::hash
