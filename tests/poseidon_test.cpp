#include <gtest/gtest.h>

#include <unordered_set>

#include "hash/poseidon.h"
#include "util/rng.h"

namespace wakurln::hash {
namespace {

using field::Fr;
using field::FrHash;
using util::Rng;

TEST(PoseidonParamsTest, InstanceIsStable) {
  const PoseidonParams& a = PoseidonParams::instance();
  const PoseidonParams& b = PoseidonParams::instance();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.round_constants.size(),
            static_cast<std::size_t>(PoseidonParams::kFullRounds +
                                     PoseidonParams::kPartialRounds));
}

TEST(PoseidonParamsTest, RoundConstantsAreDistinct) {
  const PoseidonParams& p = PoseidonParams::instance();
  std::unordered_set<Fr, FrHash> seen;
  for (const auto& rc : p.round_constants) {
    for (const auto& c : rc) seen.insert(c);
  }
  EXPECT_EQ(seen.size(), p.round_constants.size() * PoseidonParams::kWidth);
}

TEST(PoseidonParamsTest, MdsMatrixEntriesNonZero) {
  const PoseidonParams& p = PoseidonParams::instance();
  for (const auto& row : p.mds) {
    for (const auto& e : row) EXPECT_FALSE(e.is_zero());
  }
}

TEST(PoseidonParamsTest, MdsMatrixIsInvertible) {
  // det(M) != 0 for the 3x3 Cauchy matrix.
  const auto& m = PoseidonParams::instance().mds;
  const Fr det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
                 m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
                 m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
  EXPECT_FALSE(det.is_zero());
}

TEST(PoseidonPermuteTest, ChangesState) {
  std::array<Fr, 3> state = {Fr::zero(), Fr::zero(), Fr::zero()};
  poseidon_permute(state);
  EXPECT_FALSE(state[0].is_zero());
  EXPECT_FALSE(state[1].is_zero());
  EXPECT_FALSE(state[2].is_zero());
}

TEST(PoseidonPermuteTest, Deterministic) {
  std::array<Fr, 3> s1 = {Fr::from_u64(1), Fr::from_u64(2), Fr::from_u64(3)};
  std::array<Fr, 3> s2 = s1;
  poseidon_permute(s1);
  poseidon_permute(s2);
  EXPECT_EQ(s1, s2);
}

TEST(PoseidonHashTest, DeterministicAcrossCalls) {
  const Fr a = Fr::from_u64(123456);
  EXPECT_EQ(poseidon_hash1(a), poseidon_hash1(a));
  EXPECT_EQ(poseidon_hash2(a, a), poseidon_hash2(a, a));
}

TEST(PoseidonHashTest, InputSensitivity) {
  Rng rng(201);
  for (int i = 0; i < 20; ++i) {
    const Fr a = Fr::random(rng);
    const Fr b = Fr::random(rng);
    ASSERT_NE(a, b);
    EXPECT_NE(poseidon_hash1(a), poseidon_hash1(b));
    EXPECT_NE(poseidon_hash2(a, b), poseidon_hash2(b, a));
  }
}

TEST(PoseidonHashTest, DomainSeparationBetweenArities) {
  // H1(x) must differ from H2(x, 0): the capacity tag separates them.
  const Fr x = Fr::from_u64(77);
  EXPECT_NE(poseidon_hash1(x), poseidon_hash2(x, Fr::zero()));
}

TEST(PoseidonHashTest, NoObviousCollisionsOnRandomInputs) {
  Rng rng(202);
  std::unordered_set<Fr, FrHash> outputs;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    outputs.insert(poseidon_hash1(Fr::random(rng)));
  }
  EXPECT_EQ(outputs.size(), static_cast<std::size_t>(n));
}

TEST(PoseidonHashTest, OutputNotEqualToInput) {
  Rng rng(203);
  for (int i = 0; i < 20; ++i) {
    const Fr a = Fr::random(rng);
    EXPECT_NE(poseidon_hash1(a), a);
  }
}

TEST(PoseidonHashTest, AvalancheOnSingleBitOfInput) {
  // Flipping the lowest bit of the input changes the output completely
  // (compare leading bytes rather than full equality to make the check
  // meaningful).
  const Fr a = Fr::from_u64(0x1000);
  const Fr b = Fr::from_u64(0x1001);
  const auto ha = poseidon_hash1(a).to_bytes_be();
  const auto hb = poseidon_hash1(b).to_bytes_be();
  int differing = 0;
  for (std::size_t i = 0; i < ha.size(); ++i) {
    if (ha[i] != hb[i]) ++differing;
  }
  EXPECT_GT(differing, 20);
}

}  // namespace
}  // namespace wakurln::hash
