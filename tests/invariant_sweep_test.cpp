// Randomised end-to-end invariant sweep: for many seeds, run a small world
// with honest traffic and one misbehaving member, then assert the protocol
// invariants that must hold on EVERY trajectory:
//
//   I1. no honest member is ever slashed (no false positives)
//   I2. every detected double-signal reconstructs the true offender key
//   I3. the offender is removed on-chain and from every local group view
//   I4. stake conservation: burnt + rewards == offender's lost stake
//   I5. honest messages published within rate are delivered network-wide
//
// This is the closest thing to a model-checking pass the simulator offers.

#include <gtest/gtest.h>

#include "waku/harness.h"

namespace wakurln {
namespace {

using util::Bytes;

class InvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InvariantSweep, AllInvariantsHold) {
  const std::uint64_t seed = GetParam();
  waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
  cfg.node_count = 8 + seed % 5;  // 8..12 nodes
  cfg.seed = seed * 7919 + 13;
  cfg.rln.epoch_period_seconds = 5 + (seed % 3) * 5;  // 5, 10 or 15 s
  waku::SimHarness world(cfg);
  world.subscribe_all("sweep/topic");
  world.register_all();
  world.run_seconds(3);

  const std::size_t offender = seed % world.size();
  std::vector<Bytes> honest_payloads;

  // Three epochs of traffic: every node publishes once per epoch; the
  // offender additionally double-signals in epoch 1.
  for (int epoch_round = 0; epoch_round < 3; ++epoch_round) {
    for (std::size_t i = 0; i < world.size(); ++i) {
      // Built via += rather than chained operator+: GCC 12 emits a bogus
      // -Wrestrict on inlined const char* + std::string&& (PR105651).
      std::string tag = "n";
      tag += std::to_string(i);
      tag += "-e";
      tag += std::to_string(epoch_round);
      const Bytes payload = util::to_bytes(tag);
      const auto outcome = world.node(i).publish("sweep/topic", payload);
      if (outcome == waku::WakuRlnRelay::PublishOutcome::kPublished &&
          i != offender) {
        honest_payloads.push_back(payload);
      }
    }
    if (epoch_round == 1) {
      world.node(offender).publish_unchecked("sweep/topic",
                                             util::to_bytes("VIOLATION"));
    }
    world.run_seconds(cfg.rln.epoch_period_seconds);
  }
  world.run_seconds(40);  // settle gossip + mining

  // I1 / I3: exactly the offender lost membership.
  for (std::size_t i = 0; i < world.size(); ++i) {
    const bool active = world.contract().is_active(world.node(i).identity().pk);
    if (i == offender) {
      EXPECT_FALSE(active) << "seed " << seed << ": offender kept membership";
    } else {
      EXPECT_TRUE(active) << "seed " << seed << ": honest node " << i << " slashed";
    }
  }
  for (std::size_t v = 0; v < world.size(); ++v) {
    EXPECT_FALSE(world.node(v)
                     .group()
                     .index_of(world.node(offender).identity().pk)
                     .has_value())
        << "seed " << seed << ": node " << v << " still lists the offender";
  }

  // I2: detection happened (the offender's violation propagated).
  EXPECT_GE(world.aggregate_stats().double_signals, 1u) << "seed " << seed;

  // I4: stake conservation.
  const std::uint64_t stake = world.config().stake_wei;
  const std::uint64_t burnt = world.chain().ledger().burnt_total();
  std::uint64_t rewards = 0;
  for (std::size_t i = 0; i < world.size(); ++i) {
    const auto bal = world.chain().ledger().balance_of(world.account_of(i));
    const std::uint64_t baseline = world.config().initial_balance_wei - stake;
    if (bal > baseline) rewards += bal - baseline;
  }
  EXPECT_EQ(burnt + rewards, stake) << "seed " << seed;
  EXPECT_EQ(world.chain().ledger().balance_of(world.account_of(offender)),
            world.config().initial_balance_wei - stake)
      << "seed " << seed;

  // I5: every honest within-rate message reached the whole network.
  for (const Bytes& payload : honest_payloads) {
    EXPECT_EQ(world.nodes_delivered(payload), world.size())
        << "seed " << seed << " lost payload "
        << std::string(payload.begin(), payload.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantSweep, ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace wakurln
