#include <gtest/gtest.h>

#include "hash/poseidon.h"
#include "merkle/merkle_tree.h"
#include "shamir/shamir.h"
#include "util/rng.h"
#include "zksnark/batch_verifier.h"
#include "zksnark/cost_model.h"
#include "zksnark/proof_system.h"
#include "zksnark/rln_circuit.h"

namespace wakurln::zksnark {
namespace {

using field::Fr;
using util::Rng;

// Builds a satisfying (witness, public-inputs) pair over a small tree.
struct Fixture {
  merkle::MerkleTree tree{8};
  Fr sk;
  RlnWitness witness;
  RlnPublicInputs pub;

  explicit Fixture(Rng& rng, std::uint64_t epoch = 42) {
    sk = Fr::random(rng);
    const Fr pk = hash::poseidon_hash1(sk);
    // pad some other members around ours
    tree.append(Fr::random(rng));
    const std::uint64_t index = tree.append(pk);
    tree.append(Fr::random(rng));

    pub.root = tree.root();
    pub.epoch = Fr::from_u64(epoch);
    pub.x = Fr::random(rng);
    const Fr a1 = hash::poseidon_hash2(sk, pub.epoch);
    pub.y = shamir::make_share(sk, a1, pub.x).y;
    pub.nullifier = hash::poseidon_hash1(a1);

    witness.sk = sk;
    witness.path = tree.prove(index);
  }
};

TEST(RlnCircuitTest, SatisfiedForHonestWitness) {
  Rng rng(601);
  Fixture f(rng);
  EXPECT_TRUE(RlnCircuit::satisfied(f.witness, f.pub));
}

TEST(RlnCircuitTest, RejectsWrongSecretKey) {
  Rng rng(602);
  Fixture f(rng);
  f.witness.sk = Fr::random(rng);
  EXPECT_FALSE(RlnCircuit::satisfied(f.witness, f.pub));
}

TEST(RlnCircuitTest, RejectsWrongRoot) {
  Rng rng(603);
  Fixture f(rng);
  f.pub.root = Fr::random(rng);
  EXPECT_FALSE(RlnCircuit::satisfied(f.witness, f.pub));
}

TEST(RlnCircuitTest, RejectsTamperedShare) {
  Rng rng(604);
  Fixture f(rng);
  f.pub.y += Fr::one();
  EXPECT_FALSE(RlnCircuit::satisfied(f.witness, f.pub));
}

TEST(RlnCircuitTest, RejectsTamperedNullifier) {
  Rng rng(605);
  Fixture f(rng);
  f.pub.nullifier += Fr::one();
  EXPECT_FALSE(RlnCircuit::satisfied(f.witness, f.pub));
}

TEST(RlnCircuitTest, RejectsWrongEpoch) {
  Rng rng(606);
  Fixture f(rng);
  // Same share/nullifier but claimed for another epoch: slope no longer
  // matches H(sk, epoch').
  f.pub.epoch = Fr::from_u64(43);
  EXPECT_FALSE(RlnCircuit::satisfied(f.witness, f.pub));
}

TEST(RlnCircuitTest, RejectsNonMemberPath) {
  Rng rng(607);
  Fixture f(rng);
  f.witness.path.leaf_index ^= 1;
  EXPECT_FALSE(RlnCircuit::satisfied(f.witness, f.pub));
}

TEST(RlnCircuitTest, ConstraintCountGrowsLinearlyWithDepth) {
  const std::size_t c10 = RlnCircuit::constraint_count(10);
  const std::size_t c20 = RlnCircuit::constraint_count(20);
  const std::size_t c30 = RlnCircuit::constraint_count(30);
  EXPECT_EQ(c30 - c20, c20 - c10);
  EXPECT_GT(c20, c10);
}

TEST(RlnCircuitTest, MessageToXIsDeterministicAndSensitive) {
  const util::Bytes m1 = util::to_bytes("hello");
  const util::Bytes m2 = util::to_bytes("hello!");
  EXPECT_EQ(RlnCircuit::message_to_x(m1), RlnCircuit::message_to_x(m1));
  EXPECT_NE(RlnCircuit::message_to_x(m1), RlnCircuit::message_to_x(m2));
}

TEST(PublicInputsTest, SerializationIsInjectiveOnFields) {
  Rng rng(608);
  Fixture f(rng);
  const util::Bytes base = f.pub.serialize();
  EXPECT_EQ(base.size(), 5u * 32u);
  RlnPublicInputs other = f.pub;
  other.x += Fr::one();
  EXPECT_NE(other.serialize(), base);
}

TEST(MockGroth16Test, ProveAndVerifyRoundTrip) {
  Rng rng(609);
  Fixture f(rng);
  const KeyPair keys = MockGroth16::setup(f.tree.depth(), rng);
  const auto proof = MockGroth16::prove(keys.pk, f.witness, f.pub, rng);
  ASSERT_TRUE(proof.has_value());
  EXPECT_TRUE(MockGroth16::verify(keys.vk, *proof, f.pub));
}

TEST(MockGroth16Test, ProofIsConstantSize) {
  EXPECT_EQ(sizeof(Proof::bytes), 128u);
  EXPECT_EQ(Proof::kSize, 128u);
}

TEST(MockGroth16Test, RefusesUnsatisfiedWitness) {
  Rng rng(610);
  Fixture f(rng);
  const KeyPair keys = MockGroth16::setup(f.tree.depth(), rng);
  f.pub.y += Fr::one();
  EXPECT_FALSE(MockGroth16::prove(keys.pk, f.witness, f.pub, rng).has_value());
}

TEST(MockGroth16Test, RefusesDepthMismatch) {
  Rng rng(611);
  Fixture f(rng);
  const KeyPair keys = MockGroth16::setup(f.tree.depth() + 1, rng);
  EXPECT_FALSE(MockGroth16::prove(keys.pk, f.witness, f.pub, rng).has_value());
}

TEST(MockGroth16Test, ProofsAreRerandomized) {
  // Zero-knowledge shape: two proofs of the same statement differ.
  Rng rng(612);
  Fixture f(rng);
  const KeyPair keys = MockGroth16::setup(f.tree.depth(), rng);
  const auto p1 = MockGroth16::prove(keys.pk, f.witness, f.pub, rng);
  const auto p2 = MockGroth16::prove(keys.pk, f.witness, f.pub, rng);
  ASSERT_TRUE(p1 && p2);
  EXPECT_NE(*p1, *p2);
  EXPECT_TRUE(MockGroth16::verify(keys.vk, *p1, f.pub));
  EXPECT_TRUE(MockGroth16::verify(keys.vk, *p2, f.pub));
}

TEST(MockGroth16Test, VerifyRejectsTamperedProof) {
  Rng rng(613);
  Fixture f(rng);
  const KeyPair keys = MockGroth16::setup(f.tree.depth(), rng);
  auto proof = MockGroth16::prove(keys.pk, f.witness, f.pub, rng);
  ASSERT_TRUE(proof.has_value());
  for (std::size_t pos : {0u, 33u, 64u, 127u}) {
    Proof tampered = *proof;
    tampered.bytes[pos] ^= 0x01;
    EXPECT_FALSE(MockGroth16::verify(keys.vk, tampered, f.pub)) << "byte " << pos;
  }
}

TEST(MockGroth16Test, VerifyRejectsDifferentPublicInputs) {
  Rng rng(614);
  Fixture f(rng);
  const KeyPair keys = MockGroth16::setup(f.tree.depth(), rng);
  const auto proof = MockGroth16::prove(keys.pk, f.witness, f.pub, rng);
  ASSERT_TRUE(proof.has_value());
  RlnPublicInputs other = f.pub;
  other.x += Fr::one();
  EXPECT_FALSE(MockGroth16::verify(keys.vk, *proof, other));
}

TEST(MockGroth16Test, VerifyRejectsProofFromOtherSetup) {
  Rng rng(615);
  Fixture f(rng);
  const KeyPair keys_a = MockGroth16::setup(f.tree.depth(), rng);
  const KeyPair keys_b = MockGroth16::setup(f.tree.depth(), rng);
  const auto proof = MockGroth16::prove(keys_a.pk, f.witness, f.pub, rng);
  ASSERT_TRUE(proof.has_value());
  EXPECT_FALSE(MockGroth16::verify(keys_b.vk, *proof, f.pub));
}

TEST(MockGroth16Test, ProvingKeySizeMatchesPaperAtDepth20) {
  // §IV: each peer persists a ≈3.89 MB prover key.
  const std::size_t bytes = MockGroth16::modelled_proving_key_bytes(20);
  EXPECT_NEAR(static_cast<double>(bytes) / 1e6, 3.89, 0.01);
}

TEST(MockGroth16Test, VerifyingKeyIsSmall) {
  Rng rng(616);
  const KeyPair keys = MockGroth16::setup(20, rng);
  EXPECT_LT(keys.vk.simulated_size_bytes, 2048u);
  EXPECT_GT(keys.pk.simulated_size_bytes, 1000u * 1000u);
}

// ---------------------------------------------------------------------------
// PreparedVerifier: verdict bit-equality with the reference verifier.

TEST(PreparedVerifierTest, AgreesWithReferenceOnValidProofs) {
  Rng rng(620);
  Fixture f(rng);
  const KeyPair keys = MockGroth16::setup(f.tree.depth(), rng);
  const PreparedVerifier prepared(keys.vk);
  for (int i = 0; i < 8; ++i) {
    const auto proof = MockGroth16::prove(keys.pk, f.witness, f.pub, rng);
    ASSERT_TRUE(proof.has_value());
    EXPECT_TRUE(prepared.verify(*proof, f.pub));
    EXPECT_EQ(prepared.verify(*proof, f.pub),
              MockGroth16::verify(keys.vk, *proof, f.pub));
  }
}

TEST(PreparedVerifierTest, AgreesWithReferenceOnTamperedProofs) {
  Rng rng(621);
  Fixture f(rng);
  const KeyPair keys = MockGroth16::setup(f.tree.depth(), rng);
  const PreparedVerifier prepared(keys.vk);
  const auto proof = MockGroth16::prove(keys.pk, f.witness, f.pub, rng);
  ASSERT_TRUE(proof.has_value());
  for (std::size_t pos = 0; pos < Proof::kSize; ++pos) {
    Proof tampered = *proof;
    tampered.bytes[pos] ^= 0x01;
    // Same verdict as the reference on *every* single-byte corruption:
    // salt region, tag region and expansion region alike.
    EXPECT_EQ(prepared.verify(tampered, f.pub),
              MockGroth16::verify(keys.vk, tampered, f.pub))
        << "byte " << pos;
    EXPECT_FALSE(prepared.verify(tampered, f.pub)) << "byte " << pos;
  }
}

TEST(PreparedVerifierTest, AgreesWithReferenceOnWrongInputsAndKeys) {
  Rng rng(622);
  Fixture f(rng);
  const KeyPair keys = MockGroth16::setup(f.tree.depth(), rng);
  const KeyPair other = MockGroth16::setup(f.tree.depth(), rng);
  const PreparedVerifier prepared(keys.vk);
  const PreparedVerifier prepared_other(other.vk);
  const auto proof = MockGroth16::prove(keys.pk, f.witness, f.pub, rng);
  ASSERT_TRUE(proof.has_value());

  // Each public-input field perturbed in turn.
  for (int which = 0; which < 5; ++which) {
    RlnPublicInputs bad = f.pub;
    (which == 0   ? bad.root
     : which == 1 ? bad.epoch
     : which == 2 ? bad.x
     : which == 3 ? bad.y
                  : bad.nullifier) += Fr::one();
    EXPECT_EQ(prepared.verify(*proof, bad),
              MockGroth16::verify(keys.vk, *proof, bad))
        << "field " << which;
    EXPECT_FALSE(prepared.verify(*proof, bad)) << "field " << which;
  }

  // A verifier prepared from a different setup rejects, like the
  // reference.
  EXPECT_EQ(prepared_other.verify(*proof, f.pub),
            MockGroth16::verify(other.vk, *proof, f.pub));
  EXPECT_FALSE(prepared_other.verify(*proof, f.pub));
}

// ---------------------------------------------------------------------------
// Modeled batch verification.

TEST(CostModelTest, BatchVerifyAnchors) {
  const DeviceProfile dev = DeviceProfile::laptop();
  EXPECT_DOUBLE_EQ(CostModel::batch_verify_ms(0, dev), 0.0);
  // One proof gains nothing: the full pairing product is still paid.
  EXPECT_DOUBLE_EQ(CostModel::batch_verify_ms(1, dev), CostModel::verify_ms(dev));
}

TEST(CostModelTest, BatchVerifyAmortisesButStaysMonotone) {
  const DeviceProfile dev = DeviceProfile::laptop();
  double prev = 0.0;
  for (std::size_t n = 1; n <= 256; n *= 2) {
    const double batched = CostModel::batch_verify_ms(n, dev);
    const double scalar = static_cast<double>(n) * CostModel::verify_ms(dev);
    EXPECT_GT(batched, prev) << "n=" << n;  // more proofs cost more...
    if (n > 1) {
      EXPECT_LT(batched, scalar) << "n=" << n;  // ...but sublinearly
    }
    prev = batched;
  }
  // The default watermark (64) models roughly 2.8x amortisation.
  const double speedup =
      64.0 * CostModel::verify_ms(dev) / CostModel::batch_verify_ms(64, dev);
  EXPECT_NEAR(speedup, 2.8, 0.1);
}

TEST(BatchVerifierTest, WatermarkAutoDrains) {
  BatchVerifier bv(4);
  for (int i = 0; i < 3; ++i) bv.enqueue();
  EXPECT_EQ(bv.pending(), 3u);
  EXPECT_EQ(bv.stats().drains, 0u);
  bv.enqueue();  // hits the watermark
  EXPECT_EQ(bv.pending(), 0u);
  EXPECT_EQ(bv.stats().drains, 1u);
  EXPECT_EQ(bv.stats().watermark_drains, 1u);
  EXPECT_EQ(bv.stats().largest_batch, 4u);
  EXPECT_EQ(bv.stats().enqueued, 4u);
}

TEST(BatchVerifierTest, EpochDrainTakesPartialBatch) {
  BatchVerifier bv(64);
  for (int i = 0; i < 5; ++i) bv.enqueue();
  bv.drain(BatchVerifier::DrainReason::kEpochBoundary);
  EXPECT_EQ(bv.pending(), 0u);
  EXPECT_EQ(bv.stats().epoch_drains, 1u);
  EXPECT_EQ(bv.stats().largest_batch, 5u);
  // An empty drain is a no-op, not a counted drain.
  bv.drain(BatchVerifier::DrainReason::kEpochBoundary);
  EXPECT_EQ(bv.stats().drains, 1u);
}

TEST(BatchVerifierTest, ZeroWatermarkOnlyDrainsExplicitly) {
  BatchVerifier bv(0);
  for (int i = 0; i < 100; ++i) bv.enqueue();
  EXPECT_EQ(bv.pending(), 100u);
  EXPECT_EQ(bv.stats().drains, 0u);
  bv.drain(BatchVerifier::DrainReason::kFlush);
  EXPECT_EQ(bv.stats().flush_drains, 1u);
  EXPECT_EQ(bv.stats().largest_batch, 100u);
}

TEST(BatchVerifierTest, ModeledSpeedupMatchesCostModel) {
  const DeviceProfile dev = DeviceProfile::laptop();
  BatchVerifier bv(64, dev);
  EXPECT_DOUBLE_EQ(bv.modeled_speedup(), 1.0);  // nothing drained yet
  for (int i = 0; i < 64; ++i) bv.enqueue();    // one watermark drain
  const double expected = 64.0 * CostModel::verify_ms(dev) /
                          CostModel::batch_verify_ms(64, dev);
  EXPECT_DOUBLE_EQ(bv.modeled_speedup(), expected);
  EXPECT_GT(bv.modeled_speedup(), 1.5);  // the CI gate's floor
  // Stats are a pure function of the call sequence: a second identical
  // round doubles both cost counters and keeps the ratio.
  for (int i = 0; i < 64; ++i) bv.enqueue();
  EXPECT_DOUBLE_EQ(bv.modeled_speedup(), expected);
  EXPECT_EQ(bv.stats().watermark_drains, 2u);
}

TEST(CostModelTest, ProveAnchoredAtHalfSecondDepth32) {
  EXPECT_NEAR(CostModel::prove_ms(32, DeviceProfile::iphone8()), 500.0, 1e-9);
}

TEST(CostModelTest, VerifyConstantThirtyMs) {
  EXPECT_NEAR(CostModel::verify_ms(DeviceProfile::iphone8()), 30.0, 1e-9);
  // Independent of depth by construction; spot-check monotone device scale.
  EXPECT_LT(CostModel::verify_ms(DeviceProfile::server()),
            CostModel::verify_ms(DeviceProfile::iphone8()));
}

TEST(CostModelTest, ProveGrowsWithDepth) {
  const auto& dev = DeviceProfile::iphone8();
  EXPECT_LT(CostModel::prove_ms(10, dev), CostModel::prove_ms(20, dev));
  EXPECT_LT(CostModel::prove_ms(20, dev), CostModel::prove_ms(32, dev));
}

TEST(CostModelTest, DeviceProfilesOrdered) {
  EXPECT_GT(DeviceProfile::gpu_rig().hashes_per_second,
            DeviceProfile::iphone8().hashes_per_second);
  EXPECT_EQ(DeviceProfile::all().size(), 4u);
}

}  // namespace
}  // namespace wakurln::zksnark
