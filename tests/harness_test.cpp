// Tests for the SimHarness itself — the top-level entry point users build
// experiments on. The key property is exact reproducibility: two harnesses
// with the same config produce identical traces.

#include <gtest/gtest.h>

#include "waku/harness.h"

namespace wakurln::waku {
namespace {

using util::Bytes;

HarnessConfig small_config(std::uint64_t seed) {
  HarnessConfig cfg = HarnessConfig::defaults();
  cfg.node_count = 8;
  cfg.seed = seed;
  return cfg;
}

// Runs a fixed scenario and returns a trace fingerprint.
std::vector<std::tuple<std::size_t, Bytes, sim::TimeUs>> run_scenario(
    std::uint64_t seed) {
  SimHarness world(small_config(seed));
  world.subscribe_all("h/topic");
  world.register_all();
  world.run_seconds(3);
  world.node(0).publish("h/topic", util::to_bytes("alpha"));
  world.run_seconds(world.config().rln.epoch_period_seconds);
  world.node(3).publish("h/topic", util::to_bytes("beta"));
  world.run_seconds(10);
  std::vector<std::tuple<std::size_t, Bytes, sim::TimeUs>> trace;
  for (const auto& d : world.deliveries()) {
    trace.emplace_back(d.node_index, d.payload.to_vector(), d.at);
  }
  return trace;
}

TEST(HarnessTest, SameSeedReproducesExactTrace) {
  const auto t1 = run_scenario(42);
  const auto t2 = run_scenario(42);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
}

TEST(HarnessTest, DifferentSeedsDiverge) {
  const auto t1 = run_scenario(42);
  const auto t2 = run_scenario(43);
  // Delivery timing depends on jitter; identical traces across seeds would
  // indicate the seed is not actually threaded through.
  EXPECT_NE(t1, t2);
}

TEST(HarnessTest, RegisterAllConfirmsEveryNode) {
  SimHarness world(small_config(7));
  world.register_all();
  for (std::size_t i = 0; i < world.size(); ++i) {
    EXPECT_TRUE(world.node(i).is_registered()) << "node " << i;
  }
  EXPECT_EQ(world.contract().member_count(), world.size());
}

TEST(HarnessTest, NodesDeliveredCountsDistinctNodes) {
  SimHarness world(small_config(8));
  world.subscribe_all("h/count");
  world.register_all();
  world.run_seconds(3);
  const Bytes payload = util::to_bytes("counted once per node");
  world.node(1).publish("h/count", payload);
  world.run_seconds(10);
  EXPECT_EQ(world.nodes_delivered(payload), world.size());
  EXPECT_EQ(world.nodes_delivered(util::to_bytes("never sent")), 0u);
  world.clear_deliveries();
  EXPECT_EQ(world.nodes_delivered(payload), 0u);
}

TEST(HarnessTest, AggregateStatsSumAcrossNodes) {
  SimHarness world(small_config(9));
  world.subscribe_all("h/stats");
  world.register_all();
  world.run_seconds(3);
  world.node(0).publish("h/stats", util::to_bytes("m"));
  world.run_seconds(10);
  const auto stats = world.aggregate_stats();
  EXPECT_EQ(stats.published, 1u);
  // Every node (including the publisher's own validator run) accepted it.
  EXPECT_EQ(stats.accepted, world.size());
  EXPECT_EQ(stats.double_signals, 0u);
}

TEST(HarnessTest, BlocksAreMinedOnSchedule) {
  SimHarness world(small_config(10));
  const std::uint64_t block_time = world.chain().config().block_time_seconds;
  world.run_seconds(block_time * 4 + 2);
  EXPECT_GE(world.chain().height(), 4u);
}

}  // namespace
}  // namespace wakurln::waku
