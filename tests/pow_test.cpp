#include <gtest/gtest.h>

#include "baselines/pow.h"
#include "hash/sha256.h"

namespace wakurln::baselines {
namespace {

TEST(LeadingZeroBitsTest, CountsCorrectly) {
  std::array<std::uint8_t, 32> digest{};
  digest.fill(0xff);
  EXPECT_EQ(leading_zero_bits(digest), 0);
  digest[0] = 0x7f;
  EXPECT_EQ(leading_zero_bits(digest), 1);
  digest[0] = 0x00;
  digest[1] = 0x80;
  EXPECT_EQ(leading_zero_bits(digest), 8);
  digest[1] = 0x01;
  EXPECT_EQ(leading_zero_bits(digest), 15);
  digest.fill(0x00);
  EXPECT_EQ(leading_zero_bits(digest), 256);
}

TEST(PowEnvelopeTest, SerializationRoundTrip) {
  PowEnvelope env;
  env.nonce = 0xdeadbeef12345678ULL;
  env.payload = util::to_bytes("hello");
  const auto wire = env.serialize();
  const auto parsed = PowEnvelope::deserialize(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->nonce, env.nonce);
  EXPECT_EQ(parsed->payload, env.payload);
}

TEST(PowEnvelopeTest, DeserializeRejectsTooShort) {
  const util::Bytes tiny = {1, 2, 3};
  EXPECT_FALSE(PowEnvelope::deserialize(tiny).has_value());
}

TEST(PowSealTest, SealedEnvelopeVerifies) {
  const auto env = pow_seal(util::to_bytes("message"), 10);
  EXPECT_TRUE(pow_verify(env, 10));
  EXPECT_TRUE(pow_verify(env, 5));  // stronger seal satisfies weaker target
}

TEST(PowSealTest, TamperedPayloadFailsVerification) {
  auto env = pow_seal(util::to_bytes("message"), 12);
  env.payload[0] ^= 0x01;
  EXPECT_FALSE(pow_verify(env, 12));
}

TEST(PowSealTest, HigherDifficultyRejectsWeakSeal) {
  const auto env = pow_seal(util::to_bytes("m"), 4);
  // With overwhelming probability a 4-bit seal does not meet 30 bits.
  EXPECT_FALSE(pow_verify(env, 30));
}

TEST(PowCostTest, ExpectedHashesIsExponential) {
  EXPECT_DOUBLE_EQ(expected_hashes(0), 1.0);
  EXPECT_DOUBLE_EQ(expected_hashes(10), 1024.0);
  EXPECT_DOUBLE_EQ(expected_hashes(20) / expected_hashes(10), 1024.0);
}

TEST(PowCostTest, PhoneVsGpuAsymmetry) {
  // The §I asymmetry: a difficulty cheap for a GPU rig is crippling for a
  // phone. At 24 bits the phone needs ~8.4 s per message; the rig ~3 ms.
  const double phone = expected_seal_seconds(24, zksnark::DeviceProfile::iphone8());
  const double rig = expected_seal_seconds(24, zksnark::DeviceProfile::gpu_rig());
  EXPECT_GT(phone, 5.0);
  EXPECT_LT(rig, 0.01);
  EXPECT_GT(phone / rig, 1000.0);
}

TEST(PowCostTest, SampledHashesHasRightMean) {
  util::Rng rng(4242);
  const int bits = 12;
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(sampled_seal_hashes(bits, rng));
  }
  EXPECT_NEAR(total / n / expected_hashes(bits), 1.0, 0.05);
}

TEST(PowValidatorTest, AcceptsSealedRejectsUnsealed) {
  const auto validator = make_pow_validator(8);
  const auto sealed = pow_seal(util::to_bytes("ok"), 8);
  const auto good =
      gossipsub::GsMessage::create("t", sealed.serialize());
  EXPECT_EQ(validator(0, good), gossipsub::Validation::kAccept);

  PowEnvelope unsealed;
  unsealed.nonce = 0;
  unsealed.payload = util::to_bytes("spam-without-work");
  const auto bad = gossipsub::GsMessage::create("t", unsealed.serialize());
  // nonce 0 almost surely fails 8 bits for this payload; if not, the seal
  // is legitimately valid and the validator must accept.
  const auto verdict = validator(0, bad);
  if (pow_verify(unsealed, 8)) {
    EXPECT_EQ(verdict, gossipsub::Validation::kAccept);
  } else {
    EXPECT_EQ(verdict, gossipsub::Validation::kReject);
  }
}

TEST(PowValidatorTest, RejectsGarbageFrames) {
  const auto validator = make_pow_validator(8);
  const auto garbage = gossipsub::GsMessage::create("t", util::Bytes{1, 2});
  EXPECT_EQ(validator(0, garbage), gossipsub::Validation::kReject);
}

}  // namespace
}  // namespace wakurln::baselines
