#include <gtest/gtest.h>

#include "field/fr.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace wakurln::field {
namespace {

using util::Rng;

TEST(FrTest, ZeroAndOneIdentities) {
  const Fr z = Fr::zero();
  const Fr o = Fr::one();
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(o.is_zero());
  EXPECT_EQ(z + o, o);
  EXPECT_EQ(o * o, o);
  EXPECT_EQ(z * o, z);
  EXPECT_EQ(o - o, z);
}

TEST(FrTest, FromU64MatchesSmallArithmetic) {
  for (std::uint64_t a : {0ULL, 1ULL, 2ULL, 57ULL, 1000000007ULL}) {
    for (std::uint64_t b : {0ULL, 1ULL, 3ULL, 99ULL, 4294967295ULL}) {
      EXPECT_EQ(Fr::from_u64(a) + Fr::from_u64(b), Fr::from_u64(a + b));
      // max product here is ~4.3e18 < 2^64, so a*b does not wrap
      EXPECT_EQ(Fr::from_u64(a) * Fr::from_u64(b), Fr::from_u64(a * b));
    }
  }
}

TEST(FrTest, ModulusBytesMatchKnownConstant) {
  // r = 0x30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001
  const auto m = Fr::modulus_bytes_be();
  EXPECT_EQ(util::to_hex(m),
            "30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001");
}

TEST(FrTest, ModulusReducesToZero) {
  const auto m = Fr::modulus_bytes_be();
  EXPECT_TRUE(Fr::from_bytes_be(m).is_zero());
}

TEST(FrTest, ModulusMinusOnePlusOneIsZero) {
  auto m = Fr::modulus_bytes_be();
  m[31] -= 1;  // r - 1 (r ends in ...01)
  const Fr r_minus_1 = Fr::from_bytes_be(m);
  EXPECT_TRUE((r_minus_1 + Fr::one()).is_zero());
  EXPECT_EQ(-Fr::one(), r_minus_1);
}

TEST(FrTest, CanonicalParseRejectsModulus) {
  const auto m = Fr::modulus_bytes_be();
  EXPECT_FALSE(Fr::from_bytes_canonical(m).has_value());
  auto below = m;
  below[31] -= 1;
  EXPECT_TRUE(Fr::from_bytes_canonical(below).has_value());
}

TEST(FrTest, CanonicalParseRejectsWrongLength) {
  const std::array<std::uint8_t, 31> short_buf{};
  EXPECT_FALSE(Fr::from_bytes_canonical(short_buf).has_value());
}

TEST(FrTest, SerializationRoundTrip) {
  Rng rng(101);
  for (int i = 0; i < 200; ++i) {
    const Fr a = Fr::random(rng);
    const auto bytes = a.to_bytes_be();
    EXPECT_EQ(Fr::from_bytes_be(bytes), a);
    const auto strict = Fr::from_bytes_canonical(bytes);
    ASSERT_TRUE(strict.has_value());
    EXPECT_EQ(*strict, a);
  }
}

TEST(FrTest, AdditionCommutesAndAssociates) {
  Rng rng(102);
  for (int i = 0; i < 100; ++i) {
    const Fr a = Fr::random(rng), b = Fr::random(rng), c = Fr::random(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
  }
}

TEST(FrTest, MultiplicationCommutesAndAssociates) {
  Rng rng(103);
  for (int i = 0; i < 100; ++i) {
    const Fr a = Fr::random(rng), b = Fr::random(rng), c = Fr::random(rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
  }
}

TEST(FrTest, DistributiveLaw) {
  Rng rng(104);
  for (int i = 0; i < 100; ++i) {
    const Fr a = Fr::random(rng), b = Fr::random(rng), c = Fr::random(rng);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(FrTest, SubtractionInvertsAddition) {
  Rng rng(105);
  for (int i = 0; i < 100; ++i) {
    const Fr a = Fr::random(rng), b = Fr::random(rng);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ(a - a, Fr::zero());
  }
}

TEST(FrTest, NegationIsAdditiveInverse) {
  Rng rng(106);
  for (int i = 0; i < 100; ++i) {
    const Fr a = Fr::random(rng);
    EXPECT_TRUE((a + (-a)).is_zero());
    EXPECT_EQ(-(-a), a);
  }
  EXPECT_TRUE((-Fr::zero()).is_zero());
}

TEST(FrTest, InverseIsMultiplicativeInverse) {
  Rng rng(107);
  for (int i = 0; i < 50; ++i) {
    Fr a = Fr::random(rng);
    if (a.is_zero()) a = Fr::one();
    EXPECT_EQ(a * a.inverse(), Fr::one());
  }
}

TEST(FrTest, InverseOfZeroThrows) {
  EXPECT_THROW(Fr::zero().inverse(), std::domain_error);
}

TEST(FrTest, SquareMatchesSelfMultiply) {
  Rng rng(108);
  for (int i = 0; i < 100; ++i) {
    const Fr a = Fr::random(rng);
    EXPECT_EQ(a.square(), a * a);
  }
}

TEST(FrTest, PowSmallExponents) {
  Rng rng(109);
  const Fr a = Fr::random(rng);
  EXPECT_EQ(a.pow(std::uint64_t{0}), Fr::one());
  EXPECT_EQ(a.pow(std::uint64_t{1}), a);
  EXPECT_EQ(a.pow(std::uint64_t{2}), a.square());
  EXPECT_EQ(a.pow(std::uint64_t{5}), a * a * a * a * a);
}

TEST(FrTest, PowAddsExponents) {
  Rng rng(110);
  const Fr a = Fr::random(rng);
  EXPECT_EQ(a.pow(std::uint64_t{7}) * a.pow(std::uint64_t{9}), a.pow(std::uint64_t{16}));
}

TEST(FrTest, FermatLittleTheorem) {
  // a^(r-1) == 1 for a != 0.
  Rng rng(111);
  auto exp_limbs = std::array<std::uint64_t, 4>{
      0x43e1f593f0000000ULL, 0x2833e84879b97091ULL,
      0xb85045b68181585dULL, 0x30644e72e131a029ULL};  // r - 1
  for (int i = 0; i < 10; ++i) {
    Fr a = Fr::random(rng);
    if (a.is_zero()) a = Fr::from_u64(3);
    EXPECT_EQ(a.pow(exp_limbs), Fr::one());
  }
}

TEST(FrTest, RandomElementsDistinct) {
  Rng rng(112);
  const Fr a = Fr::random(rng);
  const Fr b = Fr::random(rng);
  EXPECT_NE(a, b);
}

TEST(FrTest, HashConsistentWithEquality) {
  Rng rng(113);
  for (int i = 0; i < 50; ++i) {
    const Fr a = Fr::random(rng);
    const Fr b = Fr::from_bytes_be(a.to_bytes_be());
    EXPECT_EQ(a.hash64(), b.hash64());
  }
}

TEST(FrTest, HexStringIs64Chars) {
  Rng rng(114);
  const Fr a = Fr::random(rng);
  EXPECT_EQ(a.to_hex().size(), 64u);
}

TEST(FrTest, FromBytesReducesLargeValues) {
  // 2^256 - 1 reduces to (2^256 - 1) mod r; check via algebra:
  // from_bytes(all-ones) + 1 + (r - 2^256 mod r adjustments) is hard to
  // state directly, so instead verify that reduce(x) == reduce(x - r).
  std::array<std::uint8_t, 32> all_ones;
  all_ones.fill(0xff);
  const Fr reduced = Fr::from_bytes_be(all_ones);
  // Compute expected: (2^255 mod r) * 2 + (2^256-1 - 2*2^255 == -1 → plus r-1? )
  // Simpler: 2^256 - 1 = 2 * (2^255) - 1.
  const Fr two_255 = Fr::from_u64(2).pow(std::uint64_t{255});
  EXPECT_EQ(reduced, two_255 * Fr::from_u64(2) - Fr::one());
}

}  // namespace
}  // namespace wakurln::field
