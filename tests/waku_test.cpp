#include <gtest/gtest.h>

#include <memory>

#include "hash/poseidon.h"
#include "sim/topology.h"
#include "waku/harness.h"
#include "waku/relay.h"
#include "waku/rln_relay.h"

namespace wakurln::waku {
namespace {

using util::Bytes;
using util::Rng;

// Full-stack fixture: chain + contract + N waku-rln-relay peers on a
// simulated network, with block mining driven by the scheduler.
struct TestNet {
  sim::Scheduler sched;
  Rng rng{777};
  sim::Network net{sched, rng, link()};
  eth::Chain chain{chain_config()};
  std::unique_ptr<eth::RegistryListContract> contract;
  zksnark::KeyPair crs;
  std::vector<std::unique_ptr<WakuRelay>> relays;
  std::vector<std::unique_ptr<WakuRlnRelay>> nodes;
  std::unordered_map<sim::NodeId, std::vector<Bytes>> delivered;

  static sim::LinkParams link() {
    sim::LinkParams l;
    l.base_latency = 20 * sim::kUsPerMs;
    l.jitter = 10 * sim::kUsPerMs;
    return l;
  }
  static eth::Chain::Config chain_config() {
    eth::Chain::Config cfg;
    cfg.block_time_seconds = 12;
    return cfg;
  }
  static WakuRlnConfig rln_config() {
    WakuRlnConfig cfg;
    cfg.tree_depth = 10;
    cfg.epoch_period_seconds = 10;
    cfg.max_delay_seconds = 20;
    return cfg;
  }

  explicit TestNet(std::size_t n, WakuRlnConfig cfg = rln_config()) {
    eth::MembershipConfig mcfg;
    mcfg.tree_depth = cfg.tree_depth;
    contract = std::make_unique<eth::RegistryListContract>(chain, mcfg);
    crs = zksnark::MockGroth16::setup(cfg.tree_depth, rng);

    std::vector<sim::NodeId> ids;
    for (std::size_t i = 0; i < n; ++i) {
      const sim::NodeId id = net.add_node({});
      ids.push_back(id);
      relays.push_back(std::make_unique<WakuRelay>(id, net));
      const eth::Address account = 1000 + i;
      chain.ledger().mint(account, 100'000'000);
      nodes.push_back(std::make_unique<WakuRlnRelay>(
          *relays.back(), chain, *contract, crs, account, cfg, Rng(rng.next_u64())));
    }
    connect_ring_plus_random(net, ids, 3, rng);
    for (auto& r : relays) r->start();

    // Periodic block production on the simulated clock.
    schedule_mining();
  }

  void schedule_mining() {
    sched.schedule_after(chain.config().block_time_seconds * sim::kUsPerSecond, [this] {
      chain.mine_block(sched.now() / sim::kUsPerSecond);
      schedule_mining();
    });
  }

  void subscribe_all(const std::string& topic) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      nodes[i]->subscribe(topic, [this, id = relays[i]->id()](
                                     const gossipsub::TopicId&,
                                     const util::SharedBytes& payload) {
        delivered[id].push_back(payload.to_vector());
      });
    }
  }

  void register_all() {
    for (auto& n : nodes) n->request_registration();
    run_seconds(15);  // one block
  }

  void run_seconds(std::uint64_t s) { sched.run_for(s * sim::kUsPerSecond); }

  std::size_t total_delivered() const {
    std::size_t n = 0;
    for (const auto& [id, msgs] : delivered) n += msgs.size();
    return n;
  }
};

TEST(WakuRelayTest, AnonymousPayloadDelivery) {
  sim::Scheduler sched;
  Rng rng(1);
  sim::Network net(sched, rng, TestNet::link());
  std::vector<sim::NodeId> ids;
  std::vector<std::unique_ptr<WakuRelay>> relays;
  for (int i = 0; i < 10; ++i) {
    const auto id = net.add_node({});
    ids.push_back(id);
    relays.push_back(std::make_unique<WakuRelay>(id, net));
  }
  sim::connect_ring_plus_random(net, ids, 3, rng);
  int received = 0;
  for (auto& r : relays) {
    r->start();
    r->subscribe("chat",
                 [&](const gossipsub::TopicId&, const util::SharedBytes&) { ++received; });
  }
  sched.run_for(5 * sim::kUsPerSecond);
  relays[0]->publish("chat", util::to_bytes("hi"));
  sched.run_for(5 * sim::kUsPerSecond);
  EXPECT_EQ(received, 10);
}

TEST(WakuRlnRelayTest, RegistrationConfirmsViaContractEvent) {
  TestNet tn(4);
  EXPECT_FALSE(tn.nodes[0]->is_registered());
  tn.nodes[0]->request_registration();
  EXPECT_FALSE(tn.nodes[0]->is_registered());  // pending until mined
  tn.run_seconds(15);
  EXPECT_TRUE(tn.nodes[0]->is_registered());
  // Every peer's local group observed the same registration event.
  for (auto& n : tn.nodes) {
    EXPECT_EQ(n->group().member_count(), 1u);
  }
}

TEST(WakuRlnRelayTest, PublishRequiresRegistration) {
  TestNet tn(4);
  tn.subscribe_all("t");
  EXPECT_EQ(tn.nodes[0]->publish("t", util::to_bytes("m")),
            WakuRlnRelay::PublishOutcome::kNotRegistered);
}

TEST(WakuRlnRelayTest, ValidMessageReachesEveryone) {
  TestNet tn(8);
  tn.subscribe_all("t");
  tn.register_all();
  tn.run_seconds(5);
  EXPECT_EQ(tn.nodes[0]->publish("t", util::to_bytes("hello rln")),
            WakuRlnRelay::PublishOutcome::kPublished);
  tn.run_seconds(10);
  EXPECT_EQ(tn.total_delivered(), tn.nodes.size());
  for (const auto& [id, msgs] : tn.delivered) {
    ASSERT_EQ(msgs.size(), 1u);
    EXPECT_EQ(msgs[0], util::to_bytes("hello rln"));
  }
}

TEST(WakuRlnRelayTest, HonestClientIsRateLimitedLocally) {
  TestNet tn(4);
  tn.subscribe_all("t");
  tn.register_all();
  EXPECT_EQ(tn.nodes[0]->publish("t", util::to_bytes("first")),
            WakuRlnRelay::PublishOutcome::kPublished);
  EXPECT_EQ(tn.nodes[0]->publish("t", util::to_bytes("second-same-epoch")),
            WakuRlnRelay::PublishOutcome::kRateLimited);
  // Next epoch the client may publish again.
  tn.run_seconds(tn.nodes[0]->epoch_scheme().period_seconds());
  EXPECT_EQ(tn.nodes[0]->publish("t", util::to_bytes("next-epoch")),
            WakuRlnRelay::PublishOutcome::kPublished);
}

TEST(WakuRlnRelayTest, DoubleSignalDetectedAndSlashed) {
  TestNet tn(8);
  tn.subscribe_all("t");
  tn.register_all();
  tn.run_seconds(5);

  WakuRlnRelay& spammer = *tn.nodes[0];
  const auto account_before = tn.chain.ledger().balance_of(spammer.account());
  EXPECT_EQ(spammer.publish_unchecked("t", util::to_bytes("spam-1")),
            WakuRlnRelay::PublishOutcome::kPublished);
  EXPECT_EQ(spammer.publish_unchecked("t", util::to_bytes("spam-2")),
            WakuRlnRelay::PublishOutcome::kPublished);
  (void)account_before;
  tn.run_seconds(30);  // propagate + mine the slash tx

  // Some router detected the double-signal and slashed the spammer.
  std::uint64_t detections = 0, slashes = 0;
  for (auto& n : tn.nodes) {
    detections += n->stats().double_signals;
    slashes += n->stats().slashes_submitted;
  }
  EXPECT_GE(detections, 1u);
  EXPECT_GE(slashes, 1u);
  EXPECT_FALSE(tn.contract->is_active(spammer.identity().pk));
  EXPECT_FALSE(spammer.is_registered());  // self-view updated by event
  // Stake economics: half burnt, half rewarded to some slasher.
  EXPECT_EQ(tn.chain.ledger().burnt_total(), tn.contract->config().stake_wei / 2);
}

TEST(WakuRlnRelayTest, SlashedMemberCannotPublish) {
  TestNet tn(6);
  tn.subscribe_all("t");
  tn.register_all();
  tn.run_seconds(5);
  WakuRlnRelay& spammer = *tn.nodes[0];
  spammer.publish_unchecked("t", util::to_bytes("a"));
  spammer.publish_unchecked("t", util::to_bytes("b"));
  tn.run_seconds(30);
  ASSERT_FALSE(spammer.is_registered());
  EXPECT_EQ(spammer.publish("t", util::to_bytes("after-slash")),
            WakuRlnRelay::PublishOutcome::kNotRegistered);
}

TEST(WakuRlnRelayTest, StaleEpochRejected) {
  TestNet tn(4);
  tn.subscribe_all("t");
  tn.register_all();
  tn.run_seconds(5);

  // Craft an envelope for an epoch far in the past (a newly registered
  // peer trying to back-fill history, §III).
  WakuRlnRelay& sender = *tn.nodes[0];
  const Bytes payload = util::to_bytes("stale");
  const std::uint64_t stale_epoch = 0;  // long past at t≈20s? current=2; use far future instead
  (void)stale_epoch;
  // Use a far-future epoch which is unambiguously outside Thr.
  const std::uint64_t future_epoch = sender.current_epoch() + 100;
  rln::RlnProver prover(tn.crs.pk, sender.identity());
  // Build the signal directly against the sender's group view.
  auto group_index = sender.group().index_of(sender.identity().pk);
  ASSERT_TRUE(group_index.has_value());
  Rng prng(5);
  const auto signal =
      prover.create_signal(payload, future_epoch, sender.group(), *group_index, prng);
  ASSERT_TRUE(signal.has_value());
  tn.relays[0]->publish("t", WakuRlnRelay::encode_envelope(*signal, payload));
  tn.run_seconds(10);

  std::uint64_t epoch_rejections = 0;
  for (auto& n : tn.nodes) epoch_rejections += n->stats().invalid_epoch;
  EXPECT_GE(epoch_rejections, 1u);
  EXPECT_EQ(tn.total_delivered(), 0u);
}

TEST(WakuRlnRelayTest, GarbageEnvelopeRejected) {
  TestNet tn(4);
  tn.subscribe_all("t");
  tn.register_all();
  tn.relays[0]->publish("t", util::to_bytes("not an rln envelope"));
  tn.run_seconds(10);
  std::uint64_t invalid = 0;
  for (auto& n : tn.nodes) invalid += n->stats().invalid_envelope;
  EXPECT_GE(invalid, 1u);
  EXPECT_EQ(tn.total_delivered(), 0u);
}

TEST(WakuRlnRelayTest, ForgedProofRejected) {
  TestNet tn(4);
  tn.subscribe_all("t");
  tn.register_all();
  tn.run_seconds(5);

  WakuRlnRelay& sender = *tn.nodes[0];
  const Bytes payload = util::to_bytes("forged");
  rln::RlnProver prover(tn.crs.pk, sender.identity());
  const auto index = sender.group().index_of(sender.identity().pk);
  Rng prng(6);
  auto signal = prover.create_signal(payload, sender.current_epoch(), sender.group(),
                                     *index, prng);
  ASSERT_TRUE(signal.has_value());
  signal->proof.bytes[40] ^= 0xff;  // corrupt the proof
  tn.relays[0]->publish("t", WakuRlnRelay::encode_envelope(*signal, payload));
  tn.run_seconds(10);

  std::uint64_t bad_proofs = 0;
  for (auto& n : tn.nodes) bad_proofs += n->stats().invalid_proof;
  EXPECT_GE(bad_proofs, 1u);
  EXPECT_EQ(tn.total_delivered(), 0u);
}

TEST(WakuRlnRelayTest, NonMemberCannotProduceValidSignal) {
  TestNet tn(4);
  tn.subscribe_all("t");
  tn.register_all();
  tn.run_seconds(5);

  // An outsider with a fresh identity but no registration: the prover
  // refuses (no leaf), and hand-rolling a signal against a fake group
  // fails root acceptance.
  Rng orng(7);
  const rln::Identity outsider = rln::Identity::generate(orng);
  rln::RlnGroup fake_group(tn.rln_config().tree_depth);
  fake_group.add_member(outsider.pk);
  rln::RlnProver prover(tn.crs.pk, outsider);
  const Bytes payload = util::to_bytes("outsider");
  const auto signal =
      prover.create_signal(payload, tn.nodes[1]->current_epoch(), fake_group, 0, orng);
  ASSERT_TRUE(signal.has_value());  // proof against the *fake* root
  tn.relays[0]->publish("t", WakuRlnRelay::encode_envelope(*signal, payload));
  tn.run_seconds(10);

  std::uint64_t unknown_roots = 0;
  for (auto& n : tn.nodes) unknown_roots += n->stats().unknown_root;
  EXPECT_GE(unknown_roots, 1u);
  EXPECT_EQ(tn.total_delivered(), 0u);
}

TEST(WakuRlnRelayTest, ReplayWithNewProofIsDuplicateNotSlash) {
  // Re-publishing the same payload in the same epoch with a re-randomised
  // proof yields the same share (x, y): routers must treat it as a
  // duplicate, not slashable evidence.
  TestNet tn(6);
  tn.subscribe_all("t");
  tn.register_all();
  tn.run_seconds(5);

  WakuRlnRelay& sender = *tn.nodes[0];
  const Bytes payload = util::to_bytes("same-message");
  rln::RlnProver prover(tn.crs.pk, sender.identity());
  const auto index = sender.group().index_of(sender.identity().pk);
  Rng prng(8);
  const std::uint64_t epoch = sender.current_epoch();
  const auto s1 = prover.create_signal(payload, epoch, sender.group(), *index, prng);
  const auto s2 = prover.create_signal(payload, epoch, sender.group(), *index, prng);
  ASSERT_TRUE(s1 && s2);
  ASSERT_NE(s1->proof, s2->proof);  // distinct gossip message ids
  tn.relays[0]->publish("t", WakuRlnRelay::encode_envelope(*s1, payload));
  tn.run_seconds(5);
  tn.relays[0]->publish("t", WakuRlnRelay::encode_envelope(*s2, payload));
  tn.run_seconds(15);

  std::uint64_t duplicates = 0, double_signals = 0;
  for (auto& n : tn.nodes) {
    duplicates += n->stats().duplicates;
    double_signals += n->stats().double_signals;
  }
  EXPECT_GE(duplicates, 1u);
  EXPECT_EQ(double_signals, 0u);
  EXPECT_TRUE(tn.contract->is_active(sender.identity().pk));  // not slashed
}

TEST(WakuRlnRelayTest, EnvelopeRoundTrip) {
  Rng rng(9);
  rln::RlnSignal signal;
  signal.epoch = 99;
  signal.y = field::Fr::random(rng);
  signal.nullifier = field::Fr::random(rng);
  signal.root = field::Fr::random(rng);
  rng.fill(signal.proof.bytes);
  const Bytes payload = util::to_bytes("payload");
  const Bytes envelope = WakuRlnRelay::encode_envelope(signal, payload);
  const auto decoded = WakuRlnRelay::decode_envelope(envelope);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first, signal);
  EXPECT_EQ(decoded->second, payload);
  // Trailing garbage is rejected.
  Bytes extended = envelope;
  extended.push_back(0);
  EXPECT_FALSE(WakuRlnRelay::decode_envelope(extended).has_value());
}

TEST(WakuRlnRelayTest, CrsDepthMismatchThrows) {
  TestNet tn(1);
  WakuRlnConfig bad = TestNet::rln_config();
  bad.tree_depth = 12;  // CRS built for depth 10
  Rng rng(10);
  EXPECT_THROW(WakuRlnRelay(*tn.relays[0], tn.chain, *tn.contract, tn.crs, 1, bad,
                            Rng(1)),
               std::invalid_argument);
}

TEST(WakuRlnRelayTest, ProofCacheSkipsRepeatVerificationOnRedelivery) {
  // Two peers with a fast-expiring gossip seen-cache: re-publishing the
  // exact same envelope re-enters the receiver's validator after seen
  // expiry, and the message-id proof cache answers instead of the
  // zkSNARK verifier. The outcome stays the duplicate-ignore of the
  // nullifier map — only the repeat verification is saved.
  Rng rng(414);
  sim::Scheduler sched;
  sim::Network net{sched, rng, TestNet::link()};
  eth::Chain chain{TestNet::chain_config()};
  eth::MembershipConfig mcfg;
  const WakuRlnConfig cfg = TestNet::rln_config();
  mcfg.tree_depth = cfg.tree_depth;
  eth::RegistryListContract contract(chain, mcfg);
  const zksnark::KeyPair crs = zksnark::MockGroth16::setup(cfg.tree_depth, rng);

  gossipsub::GossipSubParams gossip;
  gossip.seen_ttl = 1 * sim::kUsPerSecond;  // heartbeats expire seen ids fast

  const sim::NodeId ida = net.add_node({});
  const sim::NodeId idb = net.add_node({});
  WakuRelay relay_a(ida, net, gossip);
  WakuRelay relay_b(idb, net, gossip);
  chain.ledger().mint(1, 100'000'000);
  chain.ledger().mint(2, 100'000'000);
  WakuRlnRelay a(relay_a, chain, contract, crs, 1, cfg, Rng(rng.next_u64()));
  WakuRlnRelay b(relay_b, chain, contract, crs, 2, cfg, Rng(rng.next_u64()));
  net.connect(ida, idb);
  relay_a.start();
  relay_b.start();
  a.subscribe("t", [](const gossipsub::TopicId&, const util::SharedBytes&) {});
  b.subscribe("t", [](const gossipsub::TopicId&, const util::SharedBytes&) {});

  a.request_registration();
  sched.run_for(2 * sim::kUsPerSecond);
  chain.mine_block(sched.now() / sim::kUsPerSecond);
  sched.run_for(3 * sim::kUsPerSecond);
  ASSERT_TRUE(a.is_registered());

  // One signal, serialized once, published twice: identical message id.
  rln::RlnProver prover(crs.pk, a.identity(), cfg.messages_per_epoch);
  Rng prng(7);
  const Bytes payload = util::to_bytes("cache me");
  const auto index = a.group().index_of(a.identity().pk);
  ASSERT_TRUE(index.has_value());
  const auto signal =
      prover.create_signal(payload, a.current_epoch(), a.group(), *index, prng);
  ASSERT_TRUE(signal.has_value());
  const Bytes envelope = WakuRlnRelay::encode_envelope(*signal, payload);

  relay_a.publish("t", envelope);
  sched.run_for(3 * sim::kUsPerSecond);  // deliver + expire b's seen entry
  EXPECT_EQ(b.stats().proof_verifications, 1u);
  EXPECT_EQ(b.stats().accepted, 1u);

  // Re-send exactly the same frame, skipping A's own validator (which
  // would classify it as a duplicate and drop the publish locally).
  relay_a.publish("t", envelope, /*apply_validator=*/false);
  sched.run_for(3 * sim::kUsPerSecond);
  EXPECT_EQ(b.stats().proof_verifications, 1u);  // no repeat verify
  EXPECT_EQ(b.stats().proof_cache_hits, 1u);
  EXPECT_EQ(b.stats().duplicates, 1u);  // nullifier map still says duplicate
}

// ---------------------------------------------------------------------------
// Batched crypto hot path: externally identical to the scalar reference.

// Drives two (chain, contract, GroupSync) stacks — one batching
// registrations per block, one applying them per event — through an
// identical transaction schedule and asserts the externally observable
// sync state matches after every block.
TEST(GroupSyncBatchTest, BatchedBlocksMatchScalarEventApplication) {
  eth::MembershipConfig mcfg;
  mcfg.tree_depth = 8;
  eth::Chain chain_b{TestNet::chain_config()}, chain_s{TestNet::chain_config()};
  eth::RegistryListContract contract_b(chain_b, mcfg), contract_s(chain_s, mcfg);
  GroupSync batched(chain_b, mcfg.tree_depth, /*batch_appends=*/true);
  GroupSync scalar(chain_s, mcfg.tree_depth, /*batch_appends=*/false);

  Rng rng(4040);
  std::vector<field::Fr> sks;
  std::uint64_t now = 0;
  const auto submit_register = [&](const field::Fr& pk) {
    const auto call = [pk](auto& contract) {
      return [&contract, pk](eth::TxContext& ctx) {
        contract.register_member(ctx, pk);
      };
    };
    chain_b.submit(1, mcfg.stake_wei, eth::MembershipContract::kRegisterCalldataBytes,
                   call(contract_b), now);
    chain_s.submit(1, mcfg.stake_wei, eth::MembershipContract::kRegisterCalldataBytes,
                   call(contract_s), now);
  };
  const auto submit_slash = [&](const field::Fr& sk) {
    const auto call = [sk](auto& contract) {
      return [&contract, sk](eth::TxContext& ctx) { contract.slash(ctx, sk); };
    };
    chain_b.submit(2, 0, eth::MembershipContract::kSlashCalldataBytes,
                   call(contract_b), now);
    chain_s.submit(2, 0, eth::MembershipContract::kSlashCalldataBytes,
                   call(contract_s), now);
  };
  const auto expect_synced = [&](int block) {
    ASSERT_EQ(batched.group().root(), scalar.group().root()) << "block " << block;
    ASSERT_EQ(batched.group().member_count(), scalar.group().member_count());
    // total_roots equality is the per-registration root-history claim:
    // a block of k registrations must add k distinct roots, not one.
    ASSERT_EQ(batched.total_roots(), scalar.total_roots()) << "block " << block;
    ASSERT_EQ(batched.stats().registrations_applied,
              scalar.stats().registrations_applied);
    ASSERT_EQ(batched.stats().slashes_applied, scalar.stats().slashes_applied);
    ASSERT_EQ(batched.stats().root_updates, scalar.stats().root_updates);
    ASSERT_EQ(batched.stats().sync_bytes, scalar.stats().sync_bytes);
    ASSERT_TRUE(batched.root_in_window(scalar.group().root(),
                                       scalar.current_root_index()));
  };

  // Block shapes: a registration storm (6 joins in one block), a mixed
  // block whose slash lands *after* same-block registrations (the batch
  // must flush before the slash reads membership), an empty block, and a
  // slash-only block.
  for (int block = 0; block < 8; ++block) {
    for (const eth::Address account : {1, 2}) {
      chain_b.ledger().mint(account, 100'000'000);
      chain_s.ledger().mint(account, 100'000'000);
    }
    const int joins = (block % 3 == 0) ? 6 : (block % 3 == 1 ? 3 : 0);
    for (int j = 0; j < joins; ++j) {
      const field::Fr sk = field::Fr::random(rng);
      sks.push_back(sk);
      submit_register(hash::poseidon_hash1(sk));
    }
    if (block >= 2 && block % 2 == 0 && !sks.empty()) {
      submit_slash(sks[static_cast<std::size_t>(block)]);  // post-join slash
    }
    now += chain_b.config().block_time_seconds;
    chain_b.mine_block(now);
    chain_s.mine_block(now);
    expect_synced(block);
  }
}

// Helper: every deterministic relay counter, compared field by field.
void expect_stats_equal(const WakuRlnRelay::Stats& a, const WakuRlnRelay::Stats& b,
                        std::size_t node) {
  EXPECT_EQ(a.published, b.published) << "node " << node;
  EXPECT_EQ(a.accepted, b.accepted) << "node " << node;
  EXPECT_EQ(a.invalid_envelope, b.invalid_envelope) << "node " << node;
  EXPECT_EQ(a.invalid_epoch, b.invalid_epoch) << "node " << node;
  EXPECT_EQ(a.invalid_slot, b.invalid_slot) << "node " << node;
  EXPECT_EQ(a.unknown_root, b.unknown_root) << "node " << node;
  EXPECT_EQ(a.invalid_proof, b.invalid_proof) << "node " << node;
  EXPECT_EQ(a.duplicates, b.duplicates) << "node " << node;
  EXPECT_EQ(a.double_signals, b.double_signals) << "node " << node;
  EXPECT_EQ(a.slashes_submitted, b.slashes_submitted) << "node " << node;
  EXPECT_EQ(a.proof_verifications, b.proof_verifications) << "node " << node;
  EXPECT_EQ(a.proof_cache_hits, b.proof_cache_hits) << "node " << node;
}

TEST(WakuRlnRelayTest, BatchCryptoOffIsObservationallyIdentical) {
  // The same world twice — batched crypto on vs. off — through a
  // workload that exercises every validation path: honest traffic, a
  // double-signal slash, and mid-run registrations that churn the root
  // window while proofs are in flight. Every deterministic counter and
  // the group state must match exactly.
  WakuRlnConfig on = TestNet::rln_config();
  on.batch_crypto = true;
  WakuRlnConfig off = TestNet::rln_config();
  off.batch_crypto = false;

  TestNet a(6, on), b(6, off);
  const auto drive = [](TestNet& tn) {
    tn.subscribe_all("t");
    // Register only the first four; the last two join mid-traffic.
    for (int i = 0; i < 4; ++i) tn.nodes[static_cast<std::size_t>(i)]->request_registration();
    tn.run_seconds(15);
    tn.nodes[0]->publish("t", util::to_bytes("m0"));
    tn.nodes[1]->publish("t", util::to_bytes("m1"));
    tn.run_seconds(5);
    // Mid-traffic joins advance the root sequence under in-flight proofs.
    tn.nodes[4]->request_registration();
    tn.nodes[5]->request_registration();
    tn.run_seconds(15);
    // A rogue client double-signals: detected, slashed.
    tn.nodes[2]->publish_unchecked("t", util::to_bytes("s1"));
    tn.nodes[2]->publish_unchecked("t", util::to_bytes("s2"));
    tn.run_seconds(25);
    tn.nodes[4]->publish("t", util::to_bytes("late join publishes"));
    tn.run_seconds(10);
  };
  drive(a);
  drive(b);

  ASSERT_EQ(a.total_delivered(), b.total_delivered());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    expect_stats_equal(a.nodes[i]->stats(), b.nodes[i]->stats(), i);
    EXPECT_EQ(a.nodes[i]->group().root(), b.nodes[i]->group().root());
    EXPECT_EQ(a.nodes[i]->group().member_count(), b.nodes[i]->group().member_count());
  }
  // Mode introspection: the queue exists only in batched mode, and it
  // saw exactly the verifications the relay performed.
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    ASSERT_NE(a.nodes[i]->batch_verifier(), nullptr);
    EXPECT_EQ(b.nodes[i]->batch_verifier(), nullptr);
    EXPECT_EQ(a.nodes[i]->batch_verifier()->stats().enqueued,
              a.nodes[i]->stats().proof_verifications);
  }
}

TEST(WakuRlnRelayTest, BatchVerifierWatermarkDrainsMidEpoch) {
  WakuRlnConfig cfg = TestNet::rln_config();
  cfg.batch_verify_watermark = 2;
  TestNet tn(5, cfg);
  tn.subscribe_all("t");
  tn.register_all();
  tn.run_seconds(5);
  // Three different members publish inside one epoch: a pure relay
  // verifies all three, so its queue crosses the watermark once and
  // keeps one proof pending.
  tn.nodes[0]->publish("t", util::to_bytes("w0"));
  tn.nodes[1]->publish("t", util::to_bytes("w1"));
  tn.nodes[2]->publish("t", util::to_bytes("w2"));
  tn.run_seconds(4);  // deliver within the current epoch
  const zksnark::BatchVerifier* bv = tn.nodes[4]->batch_verifier();
  ASSERT_NE(bv, nullptr);
  EXPECT_EQ(bv->stats().enqueued, 3u);
  EXPECT_EQ(bv->stats().watermark_drains, 1u);
  EXPECT_EQ(bv->stats().largest_batch, 2u);
  EXPECT_EQ(bv->pending(), 1u);
  // The epoch boundary drains the in-flight remainder.
  tn.run_seconds(cfg.epoch_period_seconds + 1);
  EXPECT_EQ(bv->pending(), 0u);
  EXPECT_GE(bv->stats().epoch_drains, 1u);
  EXPECT_GT(bv->modeled_speedup(), 1.0);
}

TEST(WakuRlnRelayTest, BatchVerifierEpochDrainHandlesQuietEpochs) {
  // With a high watermark nothing auto-drains; the per-epoch timer must
  // still empty the queue, and epochs with no traffic must not record
  // empty drains.
  WakuRlnConfig cfg = TestNet::rln_config();
  cfg.batch_verify_watermark = 1000;
  TestNet tn(4, cfg);
  tn.subscribe_all("t");
  tn.register_all();
  tn.run_seconds(5);
  tn.nodes[0]->publish("t", util::to_bytes("one"));
  tn.run_seconds(3 * cfg.epoch_period_seconds);
  const zksnark::BatchVerifier* bv = tn.nodes[3]->batch_verifier();
  ASSERT_NE(bv, nullptr);
  EXPECT_EQ(bv->stats().enqueued, 1u);
  EXPECT_EQ(bv->pending(), 0u);
  EXPECT_EQ(bv->stats().watermark_drains, 0u);
  // Exactly one real drain: quiet epochs are no-ops.
  EXPECT_EQ(bv->stats().drains, 1u);
  EXPECT_EQ(bv->stats().epoch_drains, 1u);
}

TEST(WakuRlnRelayTest, SharedGroupSyncMatchesPrivateViews) {
  // A world where every peer shares one GroupSync must expose the same
  // roots and membership as per-peer private syncs (the views are
  // deterministically identical; sharing only removes redundant hashing).
  TestNet tn(3);  // private syncs
  for (auto& n : tn.nodes) n->request_registration();
  tn.run_seconds(15);
  const field::Fr private_root = tn.nodes[0]->group().root();
  EXPECT_EQ(tn.nodes[1]->group().root(), private_root);
  EXPECT_EQ(tn.nodes[2]->group().root(), private_root);
  EXPECT_EQ(tn.nodes[0]->group().member_count(), 3u);
  // Harness worlds share one sync; same membership state shape.
  HarnessConfig hc = HarnessConfig::defaults();
  hc.node_count = 3;
  hc.seed = tn.rng.next_u64() | 1;
  SimHarness world(hc);
  world.register_all();
  EXPECT_EQ(world.node(0).group().member_count(), 3u);
  EXPECT_EQ(world.node(0).group().root(), world.node(2).group().root());
  EXPECT_EQ(&world.node(0).group(), &world.node(1).group());  // one tree
}

}  // namespace
}  // namespace wakurln::waku
