#include <gtest/gtest.h>

#include <memory>

#include "sim/topology.h"
#include "waku/harness.h"
#include "waku/relay.h"
#include "waku/rln_relay.h"

namespace wakurln::waku {
namespace {

using util::Bytes;
using util::Rng;

// Full-stack fixture: chain + contract + N waku-rln-relay peers on a
// simulated network, with block mining driven by the scheduler.
struct TestNet {
  sim::Scheduler sched;
  Rng rng{777};
  sim::Network net{sched, rng, link()};
  eth::Chain chain{chain_config()};
  std::unique_ptr<eth::RegistryListContract> contract;
  zksnark::KeyPair crs;
  std::vector<std::unique_ptr<WakuRelay>> relays;
  std::vector<std::unique_ptr<WakuRlnRelay>> nodes;
  std::unordered_map<sim::NodeId, std::vector<Bytes>> delivered;

  static sim::LinkParams link() {
    sim::LinkParams l;
    l.base_latency = 20 * sim::kUsPerMs;
    l.jitter = 10 * sim::kUsPerMs;
    return l;
  }
  static eth::Chain::Config chain_config() {
    eth::Chain::Config cfg;
    cfg.block_time_seconds = 12;
    return cfg;
  }
  static WakuRlnConfig rln_config() {
    WakuRlnConfig cfg;
    cfg.tree_depth = 10;
    cfg.epoch_period_seconds = 10;
    cfg.max_delay_seconds = 20;
    return cfg;
  }

  explicit TestNet(std::size_t n, WakuRlnConfig cfg = rln_config()) {
    eth::MembershipConfig mcfg;
    mcfg.tree_depth = cfg.tree_depth;
    contract = std::make_unique<eth::RegistryListContract>(chain, mcfg);
    crs = zksnark::MockGroth16::setup(cfg.tree_depth, rng);

    std::vector<sim::NodeId> ids;
    for (std::size_t i = 0; i < n; ++i) {
      const sim::NodeId id = net.add_node({});
      ids.push_back(id);
      relays.push_back(std::make_unique<WakuRelay>(id, net));
      const eth::Address account = 1000 + i;
      chain.ledger().mint(account, 100'000'000);
      nodes.push_back(std::make_unique<WakuRlnRelay>(
          *relays.back(), chain, *contract, crs, account, cfg, Rng(rng.next_u64())));
    }
    connect_ring_plus_random(net, ids, 3, rng);
    for (auto& r : relays) r->start();

    // Periodic block production on the simulated clock.
    schedule_mining();
  }

  void schedule_mining() {
    sched.schedule_after(chain.config().block_time_seconds * sim::kUsPerSecond, [this] {
      chain.mine_block(sched.now() / sim::kUsPerSecond);
      schedule_mining();
    });
  }

  void subscribe_all(const std::string& topic) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      nodes[i]->subscribe(topic, [this, id = relays[i]->id()](
                                     const gossipsub::TopicId&,
                                     const util::SharedBytes& payload) {
        delivered[id].push_back(payload.to_vector());
      });
    }
  }

  void register_all() {
    for (auto& n : nodes) n->request_registration();
    run_seconds(15);  // one block
  }

  void run_seconds(std::uint64_t s) { sched.run_for(s * sim::kUsPerSecond); }

  std::size_t total_delivered() const {
    std::size_t n = 0;
    for (const auto& [id, msgs] : delivered) n += msgs.size();
    return n;
  }
};

TEST(WakuRelayTest, AnonymousPayloadDelivery) {
  sim::Scheduler sched;
  Rng rng(1);
  sim::Network net(sched, rng, TestNet::link());
  std::vector<sim::NodeId> ids;
  std::vector<std::unique_ptr<WakuRelay>> relays;
  for (int i = 0; i < 10; ++i) {
    const auto id = net.add_node({});
    ids.push_back(id);
    relays.push_back(std::make_unique<WakuRelay>(id, net));
  }
  sim::connect_ring_plus_random(net, ids, 3, rng);
  int received = 0;
  for (auto& r : relays) {
    r->start();
    r->subscribe("chat",
                 [&](const gossipsub::TopicId&, const util::SharedBytes&) { ++received; });
  }
  sched.run_for(5 * sim::kUsPerSecond);
  relays[0]->publish("chat", util::to_bytes("hi"));
  sched.run_for(5 * sim::kUsPerSecond);
  EXPECT_EQ(received, 10);
}

TEST(WakuRlnRelayTest, RegistrationConfirmsViaContractEvent) {
  TestNet tn(4);
  EXPECT_FALSE(tn.nodes[0]->is_registered());
  tn.nodes[0]->request_registration();
  EXPECT_FALSE(tn.nodes[0]->is_registered());  // pending until mined
  tn.run_seconds(15);
  EXPECT_TRUE(tn.nodes[0]->is_registered());
  // Every peer's local group observed the same registration event.
  for (auto& n : tn.nodes) {
    EXPECT_EQ(n->group().member_count(), 1u);
  }
}

TEST(WakuRlnRelayTest, PublishRequiresRegistration) {
  TestNet tn(4);
  tn.subscribe_all("t");
  EXPECT_EQ(tn.nodes[0]->publish("t", util::to_bytes("m")),
            WakuRlnRelay::PublishOutcome::kNotRegistered);
}

TEST(WakuRlnRelayTest, ValidMessageReachesEveryone) {
  TestNet tn(8);
  tn.subscribe_all("t");
  tn.register_all();
  tn.run_seconds(5);
  EXPECT_EQ(tn.nodes[0]->publish("t", util::to_bytes("hello rln")),
            WakuRlnRelay::PublishOutcome::kPublished);
  tn.run_seconds(10);
  EXPECT_EQ(tn.total_delivered(), tn.nodes.size());
  for (const auto& [id, msgs] : tn.delivered) {
    ASSERT_EQ(msgs.size(), 1u);
    EXPECT_EQ(msgs[0], util::to_bytes("hello rln"));
  }
}

TEST(WakuRlnRelayTest, HonestClientIsRateLimitedLocally) {
  TestNet tn(4);
  tn.subscribe_all("t");
  tn.register_all();
  EXPECT_EQ(tn.nodes[0]->publish("t", util::to_bytes("first")),
            WakuRlnRelay::PublishOutcome::kPublished);
  EXPECT_EQ(tn.nodes[0]->publish("t", util::to_bytes("second-same-epoch")),
            WakuRlnRelay::PublishOutcome::kRateLimited);
  // Next epoch the client may publish again.
  tn.run_seconds(tn.nodes[0]->epoch_scheme().period_seconds());
  EXPECT_EQ(tn.nodes[0]->publish("t", util::to_bytes("next-epoch")),
            WakuRlnRelay::PublishOutcome::kPublished);
}

TEST(WakuRlnRelayTest, DoubleSignalDetectedAndSlashed) {
  TestNet tn(8);
  tn.subscribe_all("t");
  tn.register_all();
  tn.run_seconds(5);

  WakuRlnRelay& spammer = *tn.nodes[0];
  const auto account_before = tn.chain.ledger().balance_of(spammer.account());
  EXPECT_EQ(spammer.publish_unchecked("t", util::to_bytes("spam-1")),
            WakuRlnRelay::PublishOutcome::kPublished);
  EXPECT_EQ(spammer.publish_unchecked("t", util::to_bytes("spam-2")),
            WakuRlnRelay::PublishOutcome::kPublished);
  (void)account_before;
  tn.run_seconds(30);  // propagate + mine the slash tx

  // Some router detected the double-signal and slashed the spammer.
  std::uint64_t detections = 0, slashes = 0;
  for (auto& n : tn.nodes) {
    detections += n->stats().double_signals;
    slashes += n->stats().slashes_submitted;
  }
  EXPECT_GE(detections, 1u);
  EXPECT_GE(slashes, 1u);
  EXPECT_FALSE(tn.contract->is_active(spammer.identity().pk));
  EXPECT_FALSE(spammer.is_registered());  // self-view updated by event
  // Stake economics: half burnt, half rewarded to some slasher.
  EXPECT_EQ(tn.chain.ledger().burnt_total(), tn.contract->config().stake_wei / 2);
}

TEST(WakuRlnRelayTest, SlashedMemberCannotPublish) {
  TestNet tn(6);
  tn.subscribe_all("t");
  tn.register_all();
  tn.run_seconds(5);
  WakuRlnRelay& spammer = *tn.nodes[0];
  spammer.publish_unchecked("t", util::to_bytes("a"));
  spammer.publish_unchecked("t", util::to_bytes("b"));
  tn.run_seconds(30);
  ASSERT_FALSE(spammer.is_registered());
  EXPECT_EQ(spammer.publish("t", util::to_bytes("after-slash")),
            WakuRlnRelay::PublishOutcome::kNotRegistered);
}

TEST(WakuRlnRelayTest, StaleEpochRejected) {
  TestNet tn(4);
  tn.subscribe_all("t");
  tn.register_all();
  tn.run_seconds(5);

  // Craft an envelope for an epoch far in the past (a newly registered
  // peer trying to back-fill history, §III).
  WakuRlnRelay& sender = *tn.nodes[0];
  const Bytes payload = util::to_bytes("stale");
  const std::uint64_t stale_epoch = 0;  // long past at t≈20s? current=2; use far future instead
  (void)stale_epoch;
  // Use a far-future epoch which is unambiguously outside Thr.
  const std::uint64_t future_epoch = sender.current_epoch() + 100;
  rln::RlnProver prover(tn.crs.pk, sender.identity());
  // Build the signal directly against the sender's group view.
  auto group_index = sender.group().index_of(sender.identity().pk);
  ASSERT_TRUE(group_index.has_value());
  Rng prng(5);
  const auto signal =
      prover.create_signal(payload, future_epoch, sender.group(), *group_index, prng);
  ASSERT_TRUE(signal.has_value());
  tn.relays[0]->publish("t", WakuRlnRelay::encode_envelope(*signal, payload));
  tn.run_seconds(10);

  std::uint64_t epoch_rejections = 0;
  for (auto& n : tn.nodes) epoch_rejections += n->stats().invalid_epoch;
  EXPECT_GE(epoch_rejections, 1u);
  EXPECT_EQ(tn.total_delivered(), 0u);
}

TEST(WakuRlnRelayTest, GarbageEnvelopeRejected) {
  TestNet tn(4);
  tn.subscribe_all("t");
  tn.register_all();
  tn.relays[0]->publish("t", util::to_bytes("not an rln envelope"));
  tn.run_seconds(10);
  std::uint64_t invalid = 0;
  for (auto& n : tn.nodes) invalid += n->stats().invalid_envelope;
  EXPECT_GE(invalid, 1u);
  EXPECT_EQ(tn.total_delivered(), 0u);
}

TEST(WakuRlnRelayTest, ForgedProofRejected) {
  TestNet tn(4);
  tn.subscribe_all("t");
  tn.register_all();
  tn.run_seconds(5);

  WakuRlnRelay& sender = *tn.nodes[0];
  const Bytes payload = util::to_bytes("forged");
  rln::RlnProver prover(tn.crs.pk, sender.identity());
  const auto index = sender.group().index_of(sender.identity().pk);
  Rng prng(6);
  auto signal = prover.create_signal(payload, sender.current_epoch(), sender.group(),
                                     *index, prng);
  ASSERT_TRUE(signal.has_value());
  signal->proof.bytes[40] ^= 0xff;  // corrupt the proof
  tn.relays[0]->publish("t", WakuRlnRelay::encode_envelope(*signal, payload));
  tn.run_seconds(10);

  std::uint64_t bad_proofs = 0;
  for (auto& n : tn.nodes) bad_proofs += n->stats().invalid_proof;
  EXPECT_GE(bad_proofs, 1u);
  EXPECT_EQ(tn.total_delivered(), 0u);
}

TEST(WakuRlnRelayTest, NonMemberCannotProduceValidSignal) {
  TestNet tn(4);
  tn.subscribe_all("t");
  tn.register_all();
  tn.run_seconds(5);

  // An outsider with a fresh identity but no registration: the prover
  // refuses (no leaf), and hand-rolling a signal against a fake group
  // fails root acceptance.
  Rng orng(7);
  const rln::Identity outsider = rln::Identity::generate(orng);
  rln::RlnGroup fake_group(tn.rln_config().tree_depth);
  fake_group.add_member(outsider.pk);
  rln::RlnProver prover(tn.crs.pk, outsider);
  const Bytes payload = util::to_bytes("outsider");
  const auto signal =
      prover.create_signal(payload, tn.nodes[1]->current_epoch(), fake_group, 0, orng);
  ASSERT_TRUE(signal.has_value());  // proof against the *fake* root
  tn.relays[0]->publish("t", WakuRlnRelay::encode_envelope(*signal, payload));
  tn.run_seconds(10);

  std::uint64_t unknown_roots = 0;
  for (auto& n : tn.nodes) unknown_roots += n->stats().unknown_root;
  EXPECT_GE(unknown_roots, 1u);
  EXPECT_EQ(tn.total_delivered(), 0u);
}

TEST(WakuRlnRelayTest, ReplayWithNewProofIsDuplicateNotSlash) {
  // Re-publishing the same payload in the same epoch with a re-randomised
  // proof yields the same share (x, y): routers must treat it as a
  // duplicate, not slashable evidence.
  TestNet tn(6);
  tn.subscribe_all("t");
  tn.register_all();
  tn.run_seconds(5);

  WakuRlnRelay& sender = *tn.nodes[0];
  const Bytes payload = util::to_bytes("same-message");
  rln::RlnProver prover(tn.crs.pk, sender.identity());
  const auto index = sender.group().index_of(sender.identity().pk);
  Rng prng(8);
  const std::uint64_t epoch = sender.current_epoch();
  const auto s1 = prover.create_signal(payload, epoch, sender.group(), *index, prng);
  const auto s2 = prover.create_signal(payload, epoch, sender.group(), *index, prng);
  ASSERT_TRUE(s1 && s2);
  ASSERT_NE(s1->proof, s2->proof);  // distinct gossip message ids
  tn.relays[0]->publish("t", WakuRlnRelay::encode_envelope(*s1, payload));
  tn.run_seconds(5);
  tn.relays[0]->publish("t", WakuRlnRelay::encode_envelope(*s2, payload));
  tn.run_seconds(15);

  std::uint64_t duplicates = 0, double_signals = 0;
  for (auto& n : tn.nodes) {
    duplicates += n->stats().duplicates;
    double_signals += n->stats().double_signals;
  }
  EXPECT_GE(duplicates, 1u);
  EXPECT_EQ(double_signals, 0u);
  EXPECT_TRUE(tn.contract->is_active(sender.identity().pk));  // not slashed
}

TEST(WakuRlnRelayTest, EnvelopeRoundTrip) {
  Rng rng(9);
  rln::RlnSignal signal;
  signal.epoch = 99;
  signal.y = field::Fr::random(rng);
  signal.nullifier = field::Fr::random(rng);
  signal.root = field::Fr::random(rng);
  rng.fill(signal.proof.bytes);
  const Bytes payload = util::to_bytes("payload");
  const Bytes envelope = WakuRlnRelay::encode_envelope(signal, payload);
  const auto decoded = WakuRlnRelay::decode_envelope(envelope);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first, signal);
  EXPECT_EQ(decoded->second, payload);
  // Trailing garbage is rejected.
  Bytes extended = envelope;
  extended.push_back(0);
  EXPECT_FALSE(WakuRlnRelay::decode_envelope(extended).has_value());
}

TEST(WakuRlnRelayTest, CrsDepthMismatchThrows) {
  TestNet tn(1);
  WakuRlnConfig bad = TestNet::rln_config();
  bad.tree_depth = 12;  // CRS built for depth 10
  Rng rng(10);
  EXPECT_THROW(WakuRlnRelay(*tn.relays[0], tn.chain, *tn.contract, tn.crs, 1, bad,
                            Rng(1)),
               std::invalid_argument);
}

TEST(WakuRlnRelayTest, ProofCacheSkipsRepeatVerificationOnRedelivery) {
  // Two peers with a fast-expiring gossip seen-cache: re-publishing the
  // exact same envelope re-enters the receiver's validator after seen
  // expiry, and the message-id proof cache answers instead of the
  // zkSNARK verifier. The outcome stays the duplicate-ignore of the
  // nullifier map — only the repeat verification is saved.
  Rng rng(414);
  sim::Scheduler sched;
  sim::Network net{sched, rng, TestNet::link()};
  eth::Chain chain{TestNet::chain_config()};
  eth::MembershipConfig mcfg;
  const WakuRlnConfig cfg = TestNet::rln_config();
  mcfg.tree_depth = cfg.tree_depth;
  eth::RegistryListContract contract(chain, mcfg);
  const zksnark::KeyPair crs = zksnark::MockGroth16::setup(cfg.tree_depth, rng);

  gossipsub::GossipSubParams gossip;
  gossip.seen_ttl = 1 * sim::kUsPerSecond;  // heartbeats expire seen ids fast

  const sim::NodeId ida = net.add_node({});
  const sim::NodeId idb = net.add_node({});
  WakuRelay relay_a(ida, net, gossip);
  WakuRelay relay_b(idb, net, gossip);
  chain.ledger().mint(1, 100'000'000);
  chain.ledger().mint(2, 100'000'000);
  WakuRlnRelay a(relay_a, chain, contract, crs, 1, cfg, Rng(rng.next_u64()));
  WakuRlnRelay b(relay_b, chain, contract, crs, 2, cfg, Rng(rng.next_u64()));
  net.connect(ida, idb);
  relay_a.start();
  relay_b.start();
  a.subscribe("t", [](const gossipsub::TopicId&, const util::SharedBytes&) {});
  b.subscribe("t", [](const gossipsub::TopicId&, const util::SharedBytes&) {});

  a.request_registration();
  sched.run_for(2 * sim::kUsPerSecond);
  chain.mine_block(sched.now() / sim::kUsPerSecond);
  sched.run_for(3 * sim::kUsPerSecond);
  ASSERT_TRUE(a.is_registered());

  // One signal, serialized once, published twice: identical message id.
  rln::RlnProver prover(crs.pk, a.identity(), cfg.messages_per_epoch);
  Rng prng(7);
  const Bytes payload = util::to_bytes("cache me");
  const auto index = a.group().index_of(a.identity().pk);
  ASSERT_TRUE(index.has_value());
  const auto signal =
      prover.create_signal(payload, a.current_epoch(), a.group(), *index, prng);
  ASSERT_TRUE(signal.has_value());
  const Bytes envelope = WakuRlnRelay::encode_envelope(*signal, payload);

  relay_a.publish("t", envelope);
  sched.run_for(3 * sim::kUsPerSecond);  // deliver + expire b's seen entry
  EXPECT_EQ(b.stats().proof_verifications, 1u);
  EXPECT_EQ(b.stats().accepted, 1u);

  // Re-send exactly the same frame, skipping A's own validator (which
  // would classify it as a duplicate and drop the publish locally).
  relay_a.publish("t", envelope, /*apply_validator=*/false);
  sched.run_for(3 * sim::kUsPerSecond);
  EXPECT_EQ(b.stats().proof_verifications, 1u);  // no repeat verify
  EXPECT_EQ(b.stats().proof_cache_hits, 1u);
  EXPECT_EQ(b.stats().duplicates, 1u);  // nullifier map still says duplicate
}

TEST(WakuRlnRelayTest, SharedGroupSyncMatchesPrivateViews) {
  // A world where every peer shares one GroupSync must expose the same
  // roots and membership as per-peer private syncs (the views are
  // deterministically identical; sharing only removes redundant hashing).
  TestNet tn(3);  // private syncs
  for (auto& n : tn.nodes) n->request_registration();
  tn.run_seconds(15);
  const field::Fr private_root = tn.nodes[0]->group().root();
  EXPECT_EQ(tn.nodes[1]->group().root(), private_root);
  EXPECT_EQ(tn.nodes[2]->group().root(), private_root);
  EXPECT_EQ(tn.nodes[0]->group().member_count(), 3u);
  // Harness worlds share one sync; same membership state shape.
  HarnessConfig hc = HarnessConfig::defaults();
  hc.node_count = 3;
  hc.seed = tn.rng.next_u64() | 1;
  SimHarness world(hc);
  world.register_all();
  EXPECT_EQ(world.node(0).group().member_count(), 3u);
  EXPECT_EQ(world.node(0).group().root(), world.node(2).group().root());
  EXPECT_EQ(&world.node(0).group(), &world.node(1).group());  // one tree
}

}  // namespace
}  // namespace wakurln::waku
