#include <gtest/gtest.h>

#include "hash/poseidon.h"
#include "merkle/frontier.h"
#include "merkle/merkle_tree.h"
#include "util/rng.h"

namespace wakurln::merkle {
namespace {

using field::Fr;
using util::Rng;

TEST(ZeroCacheTest, ChainsByHashing) {
  EXPECT_EQ(zero_at_level(0), Fr::zero());
  EXPECT_EQ(zero_at_level(1), hash::poseidon_hash2(Fr::zero(), Fr::zero()));
  EXPECT_EQ(zero_at_level(5),
            hash::poseidon_hash2(zero_at_level(4), zero_at_level(4)));
}

TEST(ZeroCacheTest, TooDeepThrows) {
  EXPECT_THROW(zero_at_level(100), std::out_of_range);
}

TEST(MerkleTreeTest, RejectsBadDepth) {
  EXPECT_THROW(MerkleTree(0), std::invalid_argument);
  EXPECT_THROW(MerkleTree(41), std::invalid_argument);
}

TEST(MerkleTreeTest, EmptyRootIsZeroSubtree) {
  for (std::size_t depth : {1u, 4u, 10u, 20u}) {
    MerkleTree tree(depth);
    EXPECT_EQ(tree.root(), zero_at_level(depth)) << "depth " << depth;
    EXPECT_EQ(tree.size(), 0u);
  }
}

TEST(MerkleTreeTest, AppendReturnsSequentialIndices) {
  MerkleTree tree(4);
  Rng rng(301);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(tree.append(Fr::random(rng)), i);
  }
  EXPECT_EQ(tree.size(), 16u);
}

TEST(MerkleTreeTest, AppendBeyondCapacityThrows) {
  MerkleTree tree(2);
  Rng rng(302);
  for (int i = 0; i < 4; ++i) tree.append(Fr::random(rng));
  EXPECT_THROW(tree.append(Fr::random(rng)), std::length_error);
}

TEST(MerkleTreeTest, DepthOneRootIsHashOfLeaves) {
  MerkleTree tree(1);
  const Fr a = Fr::from_u64(10), b = Fr::from_u64(20);
  tree.append(a);
  EXPECT_EQ(tree.root(), hash::poseidon_hash2(a, Fr::zero()));
  tree.append(b);
  EXPECT_EQ(tree.root(), hash::poseidon_hash2(a, b));
}

TEST(MerkleTreeTest, ProofVerifiesForEveryLeaf) {
  MerkleTree tree(5);
  Rng rng(303);
  std::vector<Fr> leaves;
  for (int i = 0; i < 32; ++i) {
    leaves.push_back(Fr::random(rng));
    tree.append(leaves.back());
  }
  for (std::uint64_t i = 0; i < 32; ++i) {
    const MerkleProof proof = tree.prove(i);
    EXPECT_EQ(proof.depth(), 5u);
    EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], proof)) << "leaf " << i;
  }
}

TEST(MerkleTreeTest, ProofFailsForWrongLeaf) {
  MerkleTree tree(4);
  Rng rng(304);
  for (int i = 0; i < 8; ++i) tree.append(Fr::random(rng));
  const MerkleProof proof = tree.prove(3);
  EXPECT_FALSE(MerkleTree::verify(tree.root(), Fr::from_u64(999), proof));
}

TEST(MerkleTreeTest, ProofFailsForWrongRoot) {
  MerkleTree tree(4);
  Rng rng(305);
  const Fr leaf = Fr::random(rng);
  tree.append(leaf);
  const MerkleProof proof = tree.prove(0);
  EXPECT_FALSE(MerkleTree::verify(Fr::from_u64(1234), leaf, proof));
}

TEST(MerkleTreeTest, ProofFailsForWrongIndex) {
  MerkleTree tree(4);
  Rng rng(306);
  std::vector<Fr> leaves;
  for (int i = 0; i < 8; ++i) {
    leaves.push_back(Fr::random(rng));
    tree.append(leaves.back());
  }
  MerkleProof proof = tree.prove(2);
  proof.leaf_index = 3;  // direction bits now wrong
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[2], proof));
}

TEST(MerkleTreeTest, ProveOutOfRangeThrows) {
  MerkleTree tree(4);
  tree.append(Fr::from_u64(1));
  EXPECT_THROW(tree.prove(1), std::out_of_range);
}

TEST(MerkleTreeTest, UpdateChangesRootAndProofs) {
  MerkleTree tree(4);
  Rng rng(307);
  for (int i = 0; i < 8; ++i) tree.append(Fr::random(rng));
  const Fr old_root = tree.root();

  tree.update(5, Fr::zero());  // member deletion: zero the leaf
  EXPECT_NE(tree.root(), old_root);
  EXPECT_EQ(tree.leaf(5), Fr::zero());
  EXPECT_TRUE(MerkleTree::verify(tree.root(), Fr::zero(), tree.prove(5)));
}

TEST(MerkleTreeTest, UpdateOutOfRangeThrows) {
  MerkleTree tree(4);
  EXPECT_THROW(tree.update(0, Fr::zero()), std::out_of_range);
}

TEST(MerkleTreeTest, RootDependsOnLeafOrder) {
  MerkleTree t1(3), t2(3);
  const Fr a = Fr::from_u64(1), b = Fr::from_u64(2);
  t1.append(a);
  t1.append(b);
  t2.append(b);
  t2.append(a);
  EXPECT_NE(t1.root(), t2.root());
}

TEST(MerkleTreeTest, StorageGrowsWithMembers) {
  MerkleTree tree(10);
  const std::size_t empty = tree.storage_bytes();
  Rng rng(308);
  for (int i = 0; i < 100; ++i) tree.append(Fr::random(rng));
  EXPECT_GT(tree.storage_bytes(), empty);
}

TEST(MerkleTreeTest, FullStorageMatchesPaperAtDepth20) {
  // 2^21 - 1 nodes of 32 bytes each ≈ 67 MB (the paper's figure, §IV).
  const std::uint64_t bytes = MerkleTree::full_storage_bytes(20);
  EXPECT_EQ(bytes, ((1ULL << 21) - 1) * 32);
  // 67,108,832 bytes ≈ 67 MB (decimal), the figure quoted in §IV.
  EXPECT_NEAR(static_cast<double>(bytes) / 1e6, 67.0, 1.0);
}

// ---------------------------------------------------------------------------
// Batch appends: bit-identical storage AND intermediate roots.

// Scalar-reference twin: appends the same leaves one by one, recording
// the root after each, and compares final roots, per-append root
// history, and every leaf's authentication path.
void expect_batch_equals_scalar(std::size_t depth, std::uint64_t prefill,
                                std::size_t batch, std::uint64_t seed) {
  MerkleTree batched(depth), scalar(depth);
  Rng rng(seed);
  for (std::uint64_t i = 0; i < prefill; ++i) {
    const Fr leaf = Fr::random(rng);
    batched.append(leaf);
    scalar.append(leaf);
  }
  std::vector<Fr> leaves;
  for (std::size_t i = 0; i < batch; ++i) leaves.push_back(Fr::random(rng));

  std::vector<Fr> roots(batch);
  const std::uint64_t first = batched.append_batch(leaves, roots);
  EXPECT_EQ(first, prefill);
  for (std::size_t i = 0; i < batch; ++i) {
    scalar.append(leaves[i]);
    ASSERT_EQ(roots[i], scalar.root())
        << "intermediate root " << i << " (depth " << depth << ", prefill "
        << prefill << ", batch " << batch << ")";
  }
  ASSERT_EQ(batched.root(), scalar.root());
  for (std::uint64_t i = 0; i < batched.size(); ++i) {
    ASSERT_EQ(batched.prove(i).siblings, scalar.prove(i).siblings)
        << "leaf " << i;
  }
}

TEST(MerkleBatchTest, AppendBatchMatchesScalarAppends) {
  // Prefill alignment sweeps odd/even start indices; batch sizes sweep
  // empty, singleton, odd, a full level and the registration-storm wave
  // shape (4 joins per wave).
  for (std::uint64_t prefill : {0u, 1u, 2u, 3u, 5u}) {
    for (std::size_t batch : {0u, 1u, 3u, 4u, 8u, 17u}) {
      expect_batch_equals_scalar(6, prefill, batch, 700 + prefill * 31 + batch);
    }
  }
}

TEST(MerkleBatchTest, AppendBatchFillsTreeToCapacity) {
  expect_batch_equals_scalar(4, 0, 16, 800);   // whole tree in one batch
  expect_batch_equals_scalar(4, 7, 9, 801);    // odd prefill to capacity
  expect_batch_equals_scalar(1, 0, 2, 802);    // minimal depth
}

TEST(MerkleBatchTest, AppendBatchWithoutRootsOut) {
  MerkleTree batched(5), scalar(5);
  Rng rng(810);
  std::vector<Fr> leaves;
  for (int i = 0; i < 9; ++i) leaves.push_back(Fr::random(rng));
  batched.append_batch(leaves);  // roots_out omitted
  for (const Fr& leaf : leaves) scalar.append(leaf);
  EXPECT_EQ(batched.root(), scalar.root());
}

TEST(MerkleBatchTest, AppendBatchBeyondCapacityThrowsUntouched) {
  MerkleTree tree(2);
  tree.append(Fr::from_u64(1));
  const Fr before = tree.root();
  std::vector<Fr> leaves = {Fr::from_u64(2), Fr::from_u64(3), Fr::from_u64(4),
                            Fr::from_u64(5)};
  EXPECT_THROW(tree.append_batch(leaves), std::length_error);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.root(), before);
}

TEST(MerkleBatchTest, AppendBatchRootsOutSizeMismatchChecks) {
  // A wrongly sized roots_out is a programmer error, not user input:
  // it CHECKs (aborts) rather than throwing.
  MerkleTree tree(3);
  std::vector<Fr> leaves = {Fr::from_u64(1), Fr::from_u64(2)};
  std::vector<Fr> wrong(1);
  EXPECT_DEATH(tree.append_batch(leaves, wrong), "CHECK failed");
}

TEST(MerkleBatchTest, InterleavedBatchesAndSlashChurnMatchScalar) {
  // Registration-storm shape: waves of batched joins interleaved with
  // slashes (leaf zeroed via update), which is exactly how GroupSync
  // drives the tree. The scalar twin must agree after every operation.
  MerkleTree batched(6), scalar(6);
  Rng rng(820);
  std::uint64_t joined = 0;
  for (int wave = 0; wave < 6; ++wave) {
    std::vector<Fr> joins;
    for (int j = 0; j < 4; ++j) joins.push_back(Fr::random(rng));
    std::vector<Fr> roots(joins.size());
    batched.append_batch(joins, roots);
    for (std::size_t j = 0; j < joins.size(); ++j) {
      scalar.append(joins[j]);
      ASSERT_EQ(roots[j], scalar.root()) << "wave " << wave << " join " << j;
    }
    joined += joins.size();
    // Slash one member from this wave and one early member.
    const std::uint64_t victim = joined - 2;
    batched.update(victim, Fr::zero());
    scalar.update(victim, Fr::zero());
    if (wave > 0) {
      batched.update(static_cast<std::uint64_t>(wave) - 1, Fr::zero());
      scalar.update(static_cast<std::uint64_t>(wave) - 1, Fr::zero());
    }
    ASSERT_EQ(batched.root(), scalar.root()) << "after wave " << wave;
  }
}

TEST(FrontierBatchTest, AppendBatchMatchesScalarAppends) {
  for (std::size_t depth : {1u, 2u, 3u, 6u}) {
    const std::uint64_t cap = std::uint64_t{1} << depth;
    for (std::uint64_t prefill : {0u, 1u, 2u, 3u}) {
      if (prefill > cap) continue;
      for (std::size_t batch : {0u, 1u, 2u, 5u, 8u}) {
        if (prefill + batch > cap) continue;
        MerkleFrontier batched(depth), scalar(depth);
        Rng rng(900 + depth * 101 + prefill * 13 + batch);
        for (std::uint64_t i = 0; i < prefill; ++i) {
          const Fr leaf = Fr::random(rng);
          batched.append(leaf);
          scalar.append(leaf);
        }
        std::vector<Fr> leaves;
        for (std::size_t i = 0; i < batch; ++i) leaves.push_back(Fr::random(rng));
        batched.append_batch(leaves);
        for (const Fr& leaf : leaves) scalar.append(leaf);
        ASSERT_EQ(batched.root(), scalar.root())
            << "depth " << depth << " prefill " << prefill << " batch " << batch;
        ASSERT_EQ(batched.size(), scalar.size());
      }
    }
  }
}

TEST(FrontierBatchTest, BatchFillToCapacityMatchesFullTree) {
  const std::size_t depth = 5;
  MerkleTree tree(depth);
  MerkleFrontier frontier(depth);
  Rng rng(910);
  std::vector<Fr> leaves;
  for (std::uint64_t i = 0; i < (std::uint64_t{1} << depth); ++i) {
    leaves.push_back(Fr::random(rng));
  }
  frontier.append_batch(leaves);
  for (const Fr& leaf : leaves) tree.append(leaf);
  EXPECT_EQ(frontier.root(), tree.root());
}

TEST(FrontierBatchTest, AppendBatchBeyondCapacityThrows) {
  MerkleFrontier f(2);
  f.append(Fr::from_u64(1));
  std::vector<Fr> leaves = {Fr::from_u64(2), Fr::from_u64(3), Fr::from_u64(4),
                            Fr::from_u64(5)};
  EXPECT_THROW(f.append_batch(leaves), std::length_error);
}

TEST(FrontierTest, MatchesFullTreeRootAtEveryStep) {
  for (std::size_t depth : {1u, 2u, 3u, 6u}) {
    MerkleTree tree(depth);
    MerkleFrontier frontier(depth);
    Rng rng(309);
    EXPECT_EQ(frontier.root(), tree.root()) << "empty, depth " << depth;
    const std::uint64_t cap = std::uint64_t{1} << depth;
    for (std::uint64_t i = 0; i < cap; ++i) {
      const Fr leaf = Fr::random(rng);
      tree.append(leaf);
      frontier.append(leaf);
      EXPECT_EQ(frontier.root(), tree.root())
          << "depth " << depth << " after " << (i + 1) << " appends";
    }
  }
}

TEST(FrontierTest, AppendBeyondCapacityThrows) {
  MerkleFrontier f(2);
  for (int i = 0; i < 4; ++i) f.append(Fr::from_u64(i + 1));
  EXPECT_THROW(f.append(Fr::from_u64(9)), std::length_error);
}

TEST(FrontierTest, StorageIsOrdersOfMagnitudeSmaller) {
  const std::size_t depth = 20;
  MerkleFrontier f(depth);
  // Frontier state ≈ depth * 32 bytes, versus 67 MB for the full tree.
  EXPECT_LT(f.storage_bytes(), 1024u);  // the paper's "0.128 KB" ballpark
  EXPECT_GT(MerkleTree::full_storage_bytes(depth) / f.storage_bytes(), 50000u);
}

TEST(FrontierTest, RejectsBadDepth) {
  EXPECT_THROW(MerkleFrontier(0), std::invalid_argument);
  EXPECT_THROW(MerkleFrontier(64), std::invalid_argument);
}

// Equivalence property over random interleavings of depths and counts.
class FrontierEquivalence : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FrontierEquivalence, RootMatchesFullTree) {
  const auto [depth, count] = GetParam();
  MerkleTree tree(depth);
  MerkleFrontier frontier(depth);
  Rng rng(400 + depth * 31 + count);
  for (int i = 0; i < count; ++i) {
    const Fr leaf = Fr::random(rng);
    tree.append(leaf);
    frontier.append(leaf);
  }
  EXPECT_EQ(frontier.root(), tree.root());
  EXPECT_EQ(frontier.size(), tree.size());
}

INSTANTIATE_TEST_SUITE_P(
    DepthsAndCounts, FrontierEquivalence,
    ::testing::Values(std::make_tuple(4, 0), std::make_tuple(4, 1),
                      std::make_tuple(4, 7), std::make_tuple(4, 16),
                      std::make_tuple(8, 100), std::make_tuple(8, 256),
                      std::make_tuple(12, 500), std::make_tuple(16, 1000)));

}  // namespace
}  // namespace wakurln::merkle
