// Helpers shared by the byte-identity pin test and the (throwaway) pin
// generator: a redaction pass that blanks the one memory-model metric the
// SoA refactor is allowed to change, and a stable FNV-1a fingerprint of
// the redacted deterministic report.
#pragma once

#include <cctype>
#include <cstdint>
#include <string>

namespace wakurln::scenario::pin {

// `nullifier_map_max_bytes` is a memory-model metric that lives inside the
// deterministic protocol MetricSet (both per-run and aggregate blocks). It
// is the only report field whose value tracks internal container layout,
// so the storage refactors this pin guards are allowed to move it; every
// other byte of the report must stay identical. Replaces each occurrence's
// value (scalar or {"mean":..} object) with `R`.
inline std::string redact_memory_model(const std::string& report) {
  static const std::string kKey = "\"nullifier_map_max_bytes\":";
  std::string out;
  out.reserve(report.size());
  std::size_t pos = 0;
  while (true) {
    const std::size_t hit = report.find(kKey, pos);
    if (hit == std::string::npos) {
      out.append(report, pos, report.size() - pos);
      return out;
    }
    std::size_t i = hit + kKey.size();
    while (i < report.size() && report[i] == ' ') ++i;
    if (i < report.size() && report[i] == '{') {
      int depth = 0;
      do {
        if (report[i] == '{') ++depth;
        if (report[i] == '}') --depth;
        ++i;
      } while (i < report.size() && depth > 0);
    } else {
      while (i < report.size() &&
             (std::isdigit(static_cast<unsigned char>(report[i])) != 0 ||
              report[i] == '-' || report[i] == '+' || report[i] == '.' ||
              report[i] == 'e' || report[i] == 'E')) {
        ++i;
      }
    }
    out.append(report, pos, hit + kKey.size() - pos);
    out.push_back('R');
    pos = i;
  }
}

inline std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace wakurln::scenario::pin
