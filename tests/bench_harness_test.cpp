#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness.h"

namespace wakurln::bench {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(BenchHarnessTest, PercentileOfKnownSamples) {
  const std::vector<double> v = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Runner::percentile(v, 0.0), 10);
  EXPECT_DOUBLE_EQ(Runner::percentile(v, 0.5), 30);
  EXPECT_DOUBLE_EQ(Runner::percentile(v, 1.0), 50);
  // p90 of five points interpolates between the 4th and 5th order stats.
  EXPECT_DOUBLE_EQ(Runner::percentile(v, 0.9), 46);
}

TEST(BenchHarnessTest, PercentileSortsItsInput) {
  EXPECT_DOUBLE_EQ(Runner::percentile({50, 10, 40, 20, 30}, 0.5), 30);
}

TEST(BenchHarnessTest, PercentileEdgeCases) {
  EXPECT_DOUBLE_EQ(Runner::percentile({}, 0.5), 0);
  EXPECT_DOUBLE_EQ(Runner::percentile({7}, 0.5), 7);
  EXPECT_DOUBLE_EQ(Runner::percentile({7}, 0.9), 7);
}

TEST(BenchHarnessTest, SummarizeComputesOrderedStats) {
  const auto s = Runner::summarize("label", 3, 2, {40, 10, 20, 30, 50});
  EXPECT_EQ(s.name, "label");
  EXPECT_EQ(s.reps, 5u);
  EXPECT_EQ(s.warmup, 3u);
  EXPECT_EQ(s.batch, 2u);
  EXPECT_DOUBLE_EQ(s.min_ns, 10);
  EXPECT_DOUBLE_EQ(s.max_ns, 50);
  EXPECT_DOUBLE_EQ(s.mean_ns, 30);
  EXPECT_DOUBLE_EQ(s.median_ns, 30);
  EXPECT_LE(s.min_ns, s.median_ns);
  EXPECT_LE(s.median_ns, s.p90_ns);
  EXPECT_LE(s.p90_ns, s.max_ns);
}

TEST(BenchHarnessTest, RunExecutesWarmupAndReps) {
  Runner runner("harness_selftest_counts");
  int calls = 0;
  const auto& s = runner.run("count", [&] { ++calls; }, /*reps=*/5, /*warmup=*/2);
  EXPECT_EQ(calls, 7);
  EXPECT_EQ(s.reps, 5u);
  EXPECT_GE(s.median_ns, 0.0);
  runner.write_json();
  std::remove(runner.json_path().c_str());
}

TEST(BenchHarnessTest, RunOnceIsSingleRepNoWarmup) {
  Runner runner("harness_selftest_once");
  int calls = 0;
  const auto s = runner.run_once("scenario", [&] { ++calls; });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(s.reps, 1u);
  EXPECT_EQ(s.warmup, 0u);
  EXPECT_DOUBLE_EQ(s.median_ns, s.p90_ns);
  runner.write_json();
  std::remove(runner.json_path().c_str());
}

TEST(BenchHarnessTest, MetricsSerializeIntegersExactly) {
  const std::string dir = ::testing::TempDir();
  std::string path;
  {
    Runner runner("harness_selftest_ints", dir);
    runner.metric("big_counter", 123456789012345.0, "wei");
    runner.metric("fractional", 0.5, "ratio");
    path = runner.json_path();
  }
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"value\": 123456789012345,"), std::string::npos);
  EXPECT_NE(body.find("\"value\": 0.5,"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BenchHarnessTest, BatchDividesPerOpTiming) {
  Runner runner("harness_selftest_batch");
  volatile int sink = 0;
  const auto& batched = runner.run(
      "batched", [&] { for (int i = 0; i < 1000; ++i) sink = sink + i; },
      /*reps=*/5, /*warmup=*/1, /*batch=*/1000);
  EXPECT_EQ(batched.batch, 1000u);
  // 1000 adds amortised per-op must be far below one microsecond.
  EXPECT_LT(batched.median_ns, 1000.0);
  runner.write_json();
  std::remove(runner.json_path().c_str());
}

TEST(BenchHarnessTest, WriteJsonEmitsTimingsAndMetrics) {
  const std::string dir = ::testing::TempDir();
  std::string path;
  {
    Runner runner("harness_selftest_json", dir);
    runner.run("work", [] {}, /*reps=*/3, /*warmup=*/1);
    runner.metric("records", 1234, "count");
    path = runner.json_path();
    EXPECT_EQ(path, dir + "/BENCH_harness_selftest_json.json");
  }  // destructor writes the file
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"bench\": \"harness_selftest_json\""), std::string::npos);
  EXPECT_NE(body.find("\"name\": \"work\""), std::string::npos);
  EXPECT_NE(body.find("\"median_ns\""), std::string::npos);
  EXPECT_NE(body.find("\"p90_ns\""), std::string::npos);
  EXPECT_NE(body.find("\"name\": \"records\""), std::string::npos);
  EXPECT_NE(body.find("\"value\": 1234"), std::string::npos);
  EXPECT_NE(body.find("\"unit\": \"count\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(BenchHarnessTest, WriteJsonIsIdempotent) {
  const std::string dir = ::testing::TempDir();
  Runner runner("harness_selftest_idem", dir);
  runner.run("once", [] {}, 2, 0);
  runner.write_json();
  const std::string first = slurp(runner.json_path());
  runner.metric("added_after_write", 1);
  runner.write_json();  // must not rewrite
  EXPECT_EQ(slurp(runner.json_path()), first);
  std::remove(runner.json_path().c_str());
}

TEST(BenchHarnessTest, EscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(Runner::escape("plain_name-42"), "plain_name-42");
  EXPECT_EQ(Runner::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Runner::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(Runner::escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(Runner::escape(std::string("a\x01") + "b"), "a\\u0001b");
}

}  // namespace
}  // namespace wakurln::bench
