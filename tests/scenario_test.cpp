#include <gtest/gtest.h>

#include <set>
#include <string>

#include "scenario/campaign.h"
#include "scenario/metrics.h"
#include "scenario/runner.h"
#include "scenario/scenarios.h"

namespace wakurln::scenario {
namespace {

// Shrinks a registered scenario so a unit test stays fast.
ScenarioSpec small(const std::string& name, std::size_t nodes = 10,
                   std::uint64_t epochs = 3) {
  ScenarioSpec spec = find_scenario(name);
  spec.nodes = nodes;
  spec.traffic_epochs = epochs;
  return spec;
}

// The report-determinism probe: the deterministic (protocol-metrics)
// report of a short campaign. Two calls with equal inputs must produce
// byte-identical strings — shared by the pairwise determinism test and
// the per-scenario sweep over the adversarial catalogue.
std::string deterministic_report(const ScenarioSpec& spec, std::size_t seeds,
                                 std::uint64_t seed0, std::size_t threads) {
  CampaignConfig cfg;
  cfg.seeds = seeds;
  cfg.seed0 = seed0;
  cfg.threads = threads;
  return report_json(run_campaign(spec, cfg));
}

TEST(MetricSetTest, SetGetAndOverwritePreservePosition) {
  MetricSet m;
  m.set("a", 1);
  m.set("b", 2);
  m.set("a", 3);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.entries()[0].name, "a");
  EXPECT_EQ(m.at("a"), 3);
  EXPECT_EQ(m.at("b"), 2);
  EXPECT_FALSE(m.get("c").has_value());
  EXPECT_THROW(m.at("c"), std::out_of_range);
}

TEST(MetricSetTest, AggregateComputesMeanMinMax) {
  MetricSet r1, r2;
  r1.set("x", 1);
  r2.set("x", 3);
  const auto agg = aggregate_runs({r1, r2});
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_EQ(agg[0].name, "x");
  EXPECT_DOUBLE_EQ(agg[0].mean, 2);
  EXPECT_DOUBLE_EQ(agg[0].min, 1);
  EXPECT_DOUBLE_EQ(agg[0].max, 3);
}

TEST(MetricSetTest, AggregateRejectsMismatchedLayouts) {
  MetricSet r1, r2;
  r1.set("x", 1);
  r2.set("y", 1);
  EXPECT_THROW(aggregate_runs({r1, r2}), std::invalid_argument);
}

TEST(RegistryTest, HasAtLeastSixteenUniquelyNamedScenarios) {
  const auto& catalogue = registered_scenarios();
  EXPECT_GE(catalogue.size(), 16u);
  // The adversarial wave is registered.
  for (const char* name :
       {"observer_coalition", "eclipse_publisher", "sybil_observers",
        "adaptive_spammer", "adaptive_prober", "registration_storm",
        "multi_topic_mesh"}) {
    EXPECT_EQ(find_scenario(name).name, name);
  }
  std::set<std::string> names;
  for (const ScenarioSpec& s : catalogue) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.description.empty());
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate scenario " << s.name;
  }
  EXPECT_EQ(find_scenario("spam_wave").name, "spam_wave");
  EXPECT_THROW(find_scenario("no_such_scenario"), std::invalid_argument);
}

TEST(RegistryTest, SpecValidationRejectsInfeasibleSpecs) {
  ScenarioSpec spec = find_scenario("baseline_relay");
  spec.nodes = 3;
  spec.observers = 3;  // leaves no honest publisher
  EXPECT_THROW(ScenarioRunner(spec, 1), std::invalid_argument);
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = find_scenario("baseline_relay");
  spec.traffic_epochs = 0;
  EXPECT_THROW(ScenarioRunner(spec, 1), std::invalid_argument);
  spec = find_scenario("partition_heal");
  spec.partition.fraction = 1.5;
  EXPECT_THROW(ScenarioRunner(spec, 1), std::invalid_argument);
}

TEST(RegistryTest, ValidationRejectsOverSubscribedBands) {
  // The reserved-band math must count every band: steady + burst +
  // adaptive adversaries, stormers, replayers AND observers together
  // over-subscribe a 10-node range here even though each band fits alone.
  ScenarioSpec spec = find_scenario("baseline_relay");
  spec.nodes = 10;
  spec.observers = 4;
  spec.storm.stormers = 4;
  spec.adversaries.adaptive_spammers = 3;
  EXPECT_EQ(spec.honest_publishers(), 0u);
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  EXPECT_THROW(ScenarioRunner(spec, 1), std::invalid_argument);
  // Two fewer reserved nodes leave exactly one honest publisher: valid.
  spec.adversaries.adaptive_spammers = 1;
  EXPECT_EQ(spec.honest_publishers(), 1u);
  EXPECT_NO_THROW(spec.validate());
}

TEST(RegistryTest, ValidationRejectsMisplacedObserverBands) {
  // An eclipse target outside the active-publisher band.
  ScenarioSpec spec = find_scenario("eclipse_publisher");
  spec.nodes = 12;
  spec.publishers = 4;
  spec.observer.eclipse_target = 4;  // band is [0, 4)
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.observer.eclipse_target = 3;
  EXPECT_NO_THROW(spec.validate());
  // Churn would silently dissolve the ring once the target rejoins on
  // random links — reject the combination instead of reporting a
  // meaningless eclipse metric.
  spec.churn.leave_prob_per_epoch = 0.1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.churn.leave_prob_per_epoch = 0.0;
  // Eclipse/sybil placement without any observer to place.
  spec.observers = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(RegistryTest, ValidationRejectsProtocolMismatchedAdversaries) {
  ScenarioSpec spec = find_scenario("adaptive_spammer");
  spec.protocol = Protocol::kPow;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = find_scenario("registration_storm");
  spec.protocol = Protocol::kPow;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = find_scenario("multi_topic_mesh");
  spec.replay.replayers = 2;  // replay is single-topic only
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = find_scenario("multi_topic_mesh");
  spec.topics = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(DeterminismTest, SameSeedSameMetricsByteIdentical) {
  const ScenarioSpec spec = small("spam_wave");
  EXPECT_EQ(deterministic_report(spec, 2, 7, 2), deterministic_report(spec, 2, 7, 2));
}

TEST(DeterminismTest, EveryAdversarialScenarioIsByteDeterministic) {
  // The new-wave catalogue, shrunk: run each twice at a fixed seed and
  // require the protocol-metrics block byte-identical (observer
  // placement wiring, adaptive probes, storm timers and per-topic
  // accounting must all stay pure functions of (spec, seed)).
  for (const char* name :
       {"observer_coalition", "eclipse_publisher", "sybil_observers",
        "adaptive_spammer", "adaptive_prober", "registration_storm",
        "multi_topic_mesh"}) {
    ScenarioSpec spec = small(name, 14, 3);
    spec.observers = std::min<std::size_t>(spec.observers, 3);
    spec.publishers = std::min<std::size_t>(spec.publishers, 4);
    EXPECT_EQ(deterministic_report(spec, 2, 5, 2), deterministic_report(spec, 2, 5, 2))
        << name;
  }
}

TEST(DeterminismTest, ThreadCountDoesNotChangeTheReport) {
  const ScenarioSpec spec = small("baseline_relay");
  CampaignConfig serial;
  serial.seeds = 3;
  serial.seed0 = 1;
  serial.threads = 1;
  CampaignConfig parallel = serial;
  parallel.threads = 3;
  EXPECT_EQ(report_json(run_campaign(spec, serial)),
            report_json(run_campaign(spec, parallel)));
}

TEST(DeterminismTest, DifferentSeedsProduceIndependentRuns) {
  const ScenarioSpec spec = small("baseline_relay");
  const MetricSet a = ScenarioRunner(spec, 1).run();
  const MetricSet b = ScenarioRunner(spec, 2).run();
  // Same layout (required for aggregation)...
  ASSERT_EQ(a.size(), b.size());
  // ...but genuinely different random worlds: latency percentiles depend
  // on jitter draws and cannot coincide across seeds.
  EXPECT_NE(a.at("latency_p50_ms"), b.at("latency_p50_ms"));
}

// The ISSUE's acceptance scenario: >90% of over-rate signals slashed while
// the honest delivery ratio stays >= the no-adversary baseline.
TEST(SpamWaveTest, SlashesOverRateSignalsWithoutHurtingHonestTraffic) {
  const MetricSet spam = ScenarioRunner(small("spam_wave", 12, 3), 42).run();
  const MetricSet base = ScenarioRunner(small("baseline_relay", 12, 3), 42).run();

  EXPECT_GT(spam.at("over_rate_signals"), 0);
  EXPECT_GT(spam.at("over_rate_slashed_ratio"), 0.9);
  EXPECT_EQ(spam.at("adversaries_slashed"), spam.at("adversaries"));
  EXPECT_GE(spam.at("delivery_ratio"), base.at("delivery_ratio"));
  // Spam is contained: at most ~1/spam_per_epoch of over-rate traffic
  // propagates (only the first signal per epoch is relayable).
  EXPECT_LT(spam.at("spam_delivery_ratio"), 0.5);
  EXPECT_GT(spam.at("stake_burnt_wei"), 0);
}

TEST(PowBaselineTest, PowDeliversSpamThatRlnContains) {
  const MetricSet pow = ScenarioRunner(small("pow_baseline", 12, 3), 5).run();
  const MetricSet rln = ScenarioRunner(small("spam_wave", 12, 3), 5).run();
  // PoW prices spam but cannot rate-limit it: everything sealed delivers.
  EXPECT_GT(pow.at("spam_delivery_ratio"), 0.9);
  EXPECT_EQ(pow.at("over_rate_slashed_ratio"), 0.0);
  EXPECT_GT(pow.at("over_rate_signals"), 0);
  // RLN contains the same attack.
  EXPECT_LT(rln.at("spam_delivery_ratio"), 0.5);
  EXPECT_GT(pow.at("pow_expected_hashes_per_msg"), 0);
}

TEST(ChurnStormTest, RunsWithDegradedButPositiveDelivery) {
  const MetricSet m = ScenarioRunner(small("churn_storm", 12, 4), 3).run();
  // Offline windows cost deliveries, but the overlay keeps working.
  EXPECT_GT(m.at("delivery_ratio"), 0.3);
  EXPECT_LT(m.at("delivery_ratio"), 1.0);
  EXPECT_GT(m.at("honest_published"), 0);
}

TEST(PartitionHealTest, DeliveryDegradesUnderCutAndNetworkSurvives) {
  const MetricSet part = ScenarioRunner(small("partition_heal", 12, 4), 9).run();
  const MetricSet base = ScenarioRunner(small("baseline_relay", 12, 4), 9).run();
  EXPECT_GT(part.at("delivery_ratio"), 0.0);
  // Messages published during the cut cannot cross it.
  EXPECT_LT(part.at("delivery_ratio"), base.at("delivery_ratio"));
}

TEST(MixedRateTest, RateExtensionAllowsKPerEpochAndStillSlashesOverRate) {
  const MetricSet m = ScenarioRunner(small("mixed_rate", 12, 3), 21).run();
  EXPECT_GT(m.at("honest_published"), 0);
  EXPECT_GE(m.at("delivery_ratio"), 0.9);
  EXPECT_GT(m.at("over_rate_signals"), 0);
  EXPECT_GT(m.at("over_rate_slashed_ratio"), 0.9);
}

TEST(AnonymityTest, FirstSpyObserverSeesMessagesButNotAllOriginators) {
  const MetricSet m = ScenarioRunner(small("baseline_relay", 14, 4), 11).run();
  EXPECT_GT(m.at("observed_messages"), 0);
  // The observer's first-spy guess must not be a perfect deanonymiser on
  // a multi-hop overlay.
  EXPECT_LT(m.at("first_spy_accuracy"), 1.0);
  EXPECT_GE(m.at("anonymity_set_mean"), 1.0);
}

TEST(ReportTest, JsonIsWellFormedAndCarriesRunsAndAggregates) {
  CampaignConfig cfg;
  cfg.seeds = 2;
  cfg.seed0 = 1;
  const CampaignResult result = run_campaign(small("baseline_relay"), cfg);
  ASSERT_EQ(result.runs.size(), 2u);
  ASSERT_FALSE(result.aggregate.empty());
  const std::string json = report_json(result);
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"baseline_relay\""), std::string::npos);
  EXPECT_NE(json.find("\"delivery_ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\""), std::string::npos);
  // Balanced braces (cheap well-formedness proxy; CI validates with a
  // real parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(LargeMeshTest, RegisteredAndShrinksToAUnitScaleWorld) {
  const ScenarioSpec full = find_scenario("large_mesh");
  EXPECT_EQ(full.nodes, 10000u);
  EXPECT_EQ(full.link_profile, sim::LinkProfile::kGeo);
  EXPECT_TRUE(full.register_publishers_only);
  EXPECT_GT(full.publishers, 0u);
  EXPECT_GT(full.payload_bytes, 0u);

  // The same spec at toy scale: a bounded publisher set, relays that
  // never publish, and publisher-only registration still deliver.
  ScenarioSpec spec = small("large_mesh", 24, 2);
  spec.publishers = 4;
  spec.payload_bytes = 256;
  const MetricSet m = ScenarioRunner(spec, 3).run();
  EXPECT_GT(m.at("honest_published"), 0);
  EXPECT_GE(m.at("delivery_ratio"), 0.9);
  // Only 4 publishers ever attempt: 4 nodes x 2 epochs at most.
  EXPECT_LE(m.at("honest_attempted"), 8);
  EXPECT_GT(m.at("verifications_total"), 0);
  EXPECT_GT(m.at("payload_bytes_total"), 0);
  EXPECT_GT(m.at("sim_seconds"), 0);
}

TEST(LargeMeshTest, PayloadPaddingDoesNotChangeDeliverySemantics) {
  ScenarioSpec bare = small("baseline_relay", 10, 2);
  ScenarioSpec padded = bare;
  padded.payload_bytes = 2048;
  const MetricSet mb = ScenarioRunner(bare, 5).run();
  const MetricSet mp = ScenarioRunner(padded, 5).run();
  // Same workload decisions (same seed, padding draws no randomness).
  EXPECT_EQ(mb.at("honest_attempted"), mp.at("honest_attempted"));
  EXPECT_EQ(mb.at("honest_published"), mp.at("honest_published"));
  EXPECT_EQ(mb.at("delivery_ratio"), mp.at("delivery_ratio"));
  // Padding shows up on the wire.
  EXPECT_GT(mp.at("payload_bytes_total"), mb.at("payload_bytes_total"));
}

TEST(LargeMeshTest, GeoProfileStretchesLatencyTails) {
  ScenarioSpec uniform = small("baseline_relay", 20, 3);
  ScenarioSpec geo = uniform;
  geo.link_profile = sim::LinkProfile::kGeo;
  const MetricSet mu = ScenarioRunner(uniform, 9).run();
  const MetricSet mg = ScenarioRunner(geo, 9).run();
  EXPECT_GE(mg.at("delivery_ratio"), 0.9);  // still a connected overlay
  // Cross-region hops dominate the tail: geo p90 well above uniform's.
  EXPECT_GT(mg.at("latency_p90_ms"), mu.at("latency_p90_ms"));
}

TEST(ResourceTest, DeterministicResourceMetricsAndSeparateWallClockBlock) {
  CampaignConfig cfg;
  cfg.seeds = 2;
  cfg.seed0 = 4;
  const CampaignResult result = run_campaign(small("baseline_relay"), cfg);
  ASSERT_EQ(result.resources.size(), 2u);
  for (const ResourceUsage& r : result.resources) {
    EXPECT_GT(r.wall_ms, 0);
    EXPECT_GT(r.sim_seconds, 0);
  }
  // The deterministic view omits host wall-clock; the full report
  // carries it in the resources block.
  const std::string deterministic = report_json(result);
  EXPECT_EQ(deterministic.find("\"resources\""), std::string::npos);
  const std::string full = report_json(result, /*include_resources=*/true);
  EXPECT_NE(full.find("\"resources\""), std::string::npos);
  EXPECT_NE(full.find("\"wall_ms_per_sim_second_mean\""), std::string::npos);
  EXPECT_EQ(std::count(full.begin(), full.end(), '{'),
            std::count(full.begin(), full.end(), '}'));
  // Deterministic resource metrics live in the metric sets themselves.
  EXPECT_GT(result.runs[0].at("verifications_total"), 0);
  EXPECT_GE(result.runs[0].at("verifications_saved"), 0);
  EXPECT_GT(result.runs[0].at("payload_allocs"), 0);
  EXPECT_GT(result.runs[0].at("control_bytes_total"), 0);
}

TEST(ResourceTest, SchedulerStatsAreReportedAndDeterministic) {
  CampaignConfig cfg;
  cfg.seeds = 1;
  cfg.seed0 = 11;
  const ScenarioSpec spec = small("baseline_relay");
  const CampaignResult a = run_campaign(spec, cfg);
  const CampaignResult b = run_campaign(spec, cfg);
  ASSERT_EQ(a.resources.size(), 1u);
  const ResourceUsage& r = a.resources[0];
  EXPECT_GT(r.events_scheduled, 0);
  EXPECT_GT(r.events_executed, 0);
  EXPECT_GT(r.event_queue_peak, 0);
  EXPECT_GT(r.timer_fires, 0);
  // Pooling: the steady state recycles far more nodes than it allocates.
  EXPECT_GT(r.event_pool_reuses, r.event_allocs);
  // Once the world is warm, the traffic phase allocates (nearly) nothing:
  // the ISSUE's "~0 event allocations per simulated second" gate.
  EXPECT_LT(r.event_allocs_per_sim_second, 1.0);
  // Scheduler stats are pure functions of (spec, seed) — unlike wall_ms.
  EXPECT_EQ(r.events_scheduled, b.resources[0].events_scheduled);
  EXPECT_EQ(r.events_executed, b.resources[0].events_executed);
  EXPECT_EQ(r.event_allocs, b.resources[0].event_allocs);
  EXPECT_EQ(r.event_queue_peak, b.resources[0].event_queue_peak);
  // And the report carries them in the resources block.
  const std::string full = report_json(a, /*include_resources=*/true);
  EXPECT_NE(full.find("\"scheduler\": {\"deterministic\": true"), std::string::npos);
  EXPECT_NE(full.find("\"event_allocs_per_sim_second\""), std::string::npos);
}

TEST(IwantReplayTest, ReplayedMessagesHitTheProofVerdictCache) {
  // The PR 3 proof-verdict cache finally pays: colluding peers re-serve
  // old messages via IHAVE/IWANT after the (shortened) seen-cache TTL,
  // and every honest re-validation is answered from the cache.
  const ScenarioSpec full = find_scenario("iwant_replay");
  EXPECT_GT(full.replay.replayers, 0u);
  EXPECT_GT(full.seen_ttl_seconds, 0u);
  // The replay must land after seen-cache expiry but inside Thr * T.
  EXPECT_GT(full.replay.delay_seconds, full.seen_ttl_seconds);
  EXPECT_LT(full.replay.delay_seconds, 2 * full.epoch_seconds);

  const MetricSet m = ScenarioRunner(small("iwant_replay", 14, 3), 6).run();
  EXPECT_GT(m.at("replay_ids_recorded"), 0);
  EXPECT_GT(m.at("replay_ihaves_sent"), 0);
  EXPECT_GT(m.at("replay_messages_served"), 0);
  EXPECT_GT(m.at("verifications_saved"), 0);  // the cache pays
  // Replays are duplicates at the RLN layer: contained, not re-forwarded.
  EXPECT_GE(m.at("rln_duplicates"), m.at("verifications_saved"));
  EXPECT_GE(m.at("delivery_ratio"), 0.9);  // honest traffic unharmed
}

TEST(AdaptiveSpammerTest, UnderRateSpamIsNeverSlashedAndDeliversFully) {
  // The adaptive spammer publishes exactly the allowed rate through the
  // honest client path: zero over-rate signals, zero slashes anywhere,
  // and its spam delivers like honest traffic — rate-limiting contains
  // volume, but slashing never fires on rate-compliant abuse.
  const MetricSet m = ScenarioRunner(small("adaptive_spammer", 12, 3), 42).run();
  EXPECT_EQ(m.at("adversaries"), 3);
  EXPECT_EQ(m.at("adversaries_slashed"), 0);
  EXPECT_EQ(m.at("rln_slashes_submitted"), 0);
  EXPECT_EQ(m.at("rln_double_signals"), 0);
  EXPECT_EQ(m.at("over_rate_signals"), 0);
  EXPECT_EQ(m.at("group_slashes"), 0);
  EXPECT_EQ(m.at("stake_burnt_wei"), 0);
  // 3 spammers x 3 epochs x rate 1: every message accepted and flooded.
  EXPECT_EQ(m.at("spam_published"), 9);
  EXPECT_DOUBLE_EQ(m.at("spam_delivery_ratio"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("delivery_ratio"), 1.0);
}

TEST(AdaptiveSpammerTest, ProberIsSlashedOnExactlyItsOverRateEpochs) {
  // Probe only on the last epoch ((e + 1) % 4 == 0 with 4 epochs), so
  // each of the two probers sends exactly one over-rate message — and
  // the slash count must equal the probe count.
  ScenarioSpec spec = small("adaptive_prober", 12, 4);
  spec.adversaries.adaptive_probe_every = 4;
  const MetricSet m = ScenarioRunner(spec, 42).run();
  EXPECT_EQ(m.at("adaptive_probes_attempted"), 2);
  EXPECT_EQ(m.at("adaptive_probes_published"), 2);
  EXPECT_EQ(m.at("over_rate_signals"), 2);
  EXPECT_EQ(m.at("adversaries_slashed"), m.at("adaptive_probes_published"));
  EXPECT_EQ(m.at("group_slashes"), m.at("adaptive_probes_published"));
  EXPECT_DOUBLE_EQ(m.at("over_rate_slashed_ratio"), 1.0);
  EXPECT_GT(m.at("stake_burnt_wei"), 0);
  // Under-rate traffic before the probe epoch delivered unharmed.
  EXPECT_GE(m.at("delivery_ratio"), 0.9);
}

TEST(RegistrationStormTest, WavesJoinAndSlashThroughTheSharedGroupSync) {
  // 8 stormers joining 4 per wave: two waves, every join confirmed and
  // then slashed again (slash_after_join), so the Merkle tree churns in
  // both directions while honest traffic keeps delivering.
  const MetricSet m = ScenarioRunner(small("registration_storm", 14, 4), 3).run();
  EXPECT_EQ(m.at("storm_waves"), 2);
  EXPECT_EQ(m.at("storm_join_requests"), 8);
  EXPECT_EQ(m.at("storm_double_signal_publishes"), 16);
  // Initial registrations cover only the publishing bands (5 honest
  // publishers here — the storm band must start unregistered).
  EXPECT_EQ(m.at("group_registrations"), 5 + 8);
  EXPECT_EQ(m.at("group_slashes"), 8);
  EXPECT_GT(m.at("stake_burnt_wei"), 0);
  EXPECT_GE(m.at("delivery_ratio"), 0.9);
}

TEST(RegistrationStormTest, GroupSyncChurnLandsInTheResourcesBlock) {
  CampaignConfig cfg;
  cfg.seeds = 1;
  cfg.seed0 = 3;
  const CampaignResult result = run_campaign(small("registration_storm", 14, 4), cfg);
  const ResourceUsage& r = result.resources[0];
  // 13 registrations + 8 slash removals, 40 modeled bytes per event.
  EXPECT_EQ(r.group_root_updates, 13 + 8);
  EXPECT_EQ(r.group_sync_bytes, (13.0 + 8.0) * 40.0);
  const std::string full = report_json(result, /*include_resources=*/true);
  EXPECT_NE(full.find("\"group_sync\": {\"deterministic\": true"), std::string::npos);
  EXPECT_NE(full.find("\"root_updates\""), std::string::npos);
}

TEST(MultiTopicTest, FourTopicsDeliverFullyWithPerTopicMetrics) {
  const ScenarioSpec full = find_scenario("multi_topic_mesh");
  EXPECT_EQ(full.nodes, 10000u);
  EXPECT_EQ(full.topics, 4u);
  EXPECT_TRUE(full.register_publishers_only);

  // Shrunk: 4 publishers rotating over 4 topics, 2 epochs — every topic
  // carries exactly 2 messages and floods the whole (subscribed-to-all)
  // world.
  ScenarioSpec spec = small("multi_topic_mesh", 16, 2);
  spec.publishers = 4;
  const MetricSet m = ScenarioRunner(spec, 5).run();
  EXPECT_EQ(m.at("honest_published"), 8);
  EXPECT_DOUBLE_EQ(m.at("delivery_ratio"), 1.0);
  for (int t = 0; t < 4; ++t) {
    const std::string suffix = "_topic" + std::to_string(t);
    EXPECT_EQ(m.at("honest_published" + suffix), 2) << t;
    EXPECT_DOUBLE_EQ(m.at("delivery_ratio" + suffix), 1.0) << t;
  }
}

TEST(MultiTopicTest, SingleTopicWorldsCarryNoPerTopicMetrics) {
  const MetricSet m = ScenarioRunner(small("baseline_relay", 10, 2), 4).run();
  EXPECT_FALSE(m.get("delivery_ratio_topic0").has_value());
}

TEST(IwantReplayTest, ReplayAdversaryRejectedForPow) {
  ScenarioSpec spec = small("pow_baseline");
  spec.replay.replayers = 2;
  EXPECT_THROW(ScenarioRunner(spec, 1), std::invalid_argument);
}

TEST(HugeMeshTest, RegisteredAtFiftyThousandAndShrinksToAUnitScaleWorld) {
  const ScenarioSpec full = find_scenario("huge_mesh");
  EXPECT_EQ(full.nodes, 50000u);
  EXPECT_EQ(full.link_profile, sim::LinkProfile::kGeo);
  EXPECT_TRUE(full.register_publishers_only);
  EXPECT_GT(full.publishers, 0u);

  ScenarioSpec spec = small("huge_mesh", 24, 2);
  spec.publishers = 4;
  const MetricSet m = ScenarioRunner(spec, 8).run();
  EXPECT_GT(m.at("honest_published"), 0);
  EXPECT_GE(m.at("delivery_ratio"), 0.9);
  EXPECT_GT(m.at("verifications_total"), 0);
}

}  // namespace
}  // namespace wakurln::scenario
