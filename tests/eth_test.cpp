#include <gtest/gtest.h>

#include "eth/chain.h"
#include "eth/membership_contract.h"
#include "eth/signal_board.h"
#include "rln/identity.h"
#include "util/rng.h"

namespace wakurln::eth {
namespace {

using field::Fr;
using rln::Identity;
using util::Rng;

Chain::Config test_chain_config() {
  Chain::Config cfg;
  cfg.block_time_seconds = 12;
  return cfg;
}

MembershipConfig small_membership() {
  MembershipConfig cfg;
  cfg.tree_depth = 8;
  cfg.stake_wei = 1'000'000;
  cfg.burn_fraction = 0.5;
  return cfg;
}

// Submits a register_member transaction and mines it immediately.
Receipt register_now(Chain& chain, MembershipContract& contract, Address from,
                     const Fr& pk, std::uint64_t now, std::uint64_t stake) {
  const auto tx = chain.submit(
      from, stake, MembershipContract::kRegisterCalldataBytes,
      [&contract, pk](TxContext& ctx) { contract.register_member(ctx, pk); }, now);
  chain.mine_block(now + chain.config().block_time_seconds);
  return *chain.receipt(tx);
}

Receipt slash_now(Chain& chain, MembershipContract& contract, Address slasher,
                  const Fr& sk, std::uint64_t now) {
  const auto tx = chain.submit(
      slasher, 0, MembershipContract::kSlashCalldataBytes,
      [&contract, sk](TxContext& ctx) { contract.slash(ctx, sk); }, now);
  chain.mine_block(now + chain.config().block_time_seconds);
  return *chain.receipt(tx);
}

TEST(LedgerTest, MintAndTransfer) {
  Ledger ledger;
  ledger.mint(1, 100);
  EXPECT_EQ(ledger.balance_of(1), 100u);
  EXPECT_TRUE(ledger.transfer(1, 2, 40));
  EXPECT_EQ(ledger.balance_of(1), 60u);
  EXPECT_EQ(ledger.balance_of(2), 40u);
}

TEST(LedgerTest, TransferFailsOnInsufficientFunds) {
  Ledger ledger;
  ledger.mint(1, 10);
  EXPECT_FALSE(ledger.transfer(1, 2, 11));
  EXPECT_EQ(ledger.balance_of(1), 10u);
  EXPECT_EQ(ledger.balance_of(2), 0u);
}

TEST(LedgerTest, BurnTracksTotal) {
  Ledger ledger;
  ledger.mint(1, 100);
  EXPECT_TRUE(ledger.transfer(1, kBurnAddress, 30));
  EXPECT_EQ(ledger.burnt_total(), 30u);
}

TEST(ChainTest, RejectsZeroBlockTime) {
  Chain::Config cfg;
  cfg.block_time_seconds = 0;
  EXPECT_THROW(Chain{cfg}, std::invalid_argument);
}

TEST(ChainTest, TransactionsOnlyExecuteWhenMined) {
  Chain chain(test_chain_config());
  bool executed = false;
  const auto tx = chain.submit(1, 0, 0, [&](TxContext&) { executed = true; }, 0);
  EXPECT_FALSE(executed);
  EXPECT_EQ(chain.receipt(tx), nullptr);
  EXPECT_EQ(chain.pending_count(), 1u);

  chain.mine_block(12);
  EXPECT_TRUE(executed);
  ASSERT_NE(chain.receipt(tx), nullptr);
  EXPECT_TRUE(chain.receipt(tx)->success);
  EXPECT_EQ(chain.receipt(tx)->block_number, 1u);
  EXPECT_EQ(chain.pending_count(), 0u);
}

TEST(ChainTest, BaseGasChargedPerTransaction) {
  Chain chain(test_chain_config());
  const auto tx = chain.submit(1, 0, 10, [](TxContext&) {}, 0);
  chain.mine_block(12);
  const GasSchedule& g = GasSchedule::standard();
  EXPECT_EQ(chain.receipt(tx)->gas_used, g.tx_base + 10 * g.calldata_byte);
}

TEST(ChainTest, MonotonicTimestampsEnforced) {
  Chain chain(test_chain_config());
  chain.mine_block(100);
  EXPECT_THROW(chain.mine_block(50), std::invalid_argument);
}

TEST(ChainTest, RevertedTxEmitsNoEvents) {
  Chain chain(test_chain_config());
  int events_seen = 0;
  chain.subscribe_events([&](const ContractEvent&, const Block&) { ++events_seen; });
  chain.submit(
      1, 0, 0,
      [](TxContext& ctx) {
        ctx.emit(SignalPosted{0, 1});
        ctx.revert("boom");
      },
      0);
  chain.mine_block(12);
  EXPECT_EQ(events_seen, 0);
  EXPECT_FALSE(chain.blocks().back().receipts[0].success);
  EXPECT_EQ(chain.blocks().back().receipts[0].error, "boom");
}

TEST(ChainTest, EventsDeliveredAtSealTime) {
  Chain chain(test_chain_config());
  std::vector<std::uint64_t> seen_blocks;
  chain.subscribe_events(
      [&](const ContractEvent&, const Block& b) { seen_blocks.push_back(b.number); });
  chain.submit(1, 0, 0, [](TxContext& ctx) { ctx.emit(SignalPosted{7, 3}); }, 0);
  EXPECT_TRUE(seen_blocks.empty());
  chain.mine_block(12);
  ASSERT_EQ(seen_blocks.size(), 1u);
  EXPECT_EQ(seen_blocks[0], 1u);
}

class MembershipContractTest : public ::testing::TestWithParam<bool> {
 protected:
  MembershipContractTest() : chain_(test_chain_config()) {
    if (GetParam()) {
      contract_ = std::make_unique<OnChainTreeContract>(chain_, small_membership());
    } else {
      contract_ = std::make_unique<RegistryListContract>(chain_, small_membership());
    }
    chain_.ledger().mint(kAlice, 10'000'000);
    chain_.ledger().mint(kBob, 10'000'000);
  }

  static constexpr Address kAlice = 100, kBob = 200;
  Chain chain_;
  std::unique_ptr<MembershipContract> contract_;
  Rng rng_{42};
};

TEST_P(MembershipContractTest, RegistrationStakesAndEmits) {
  const Identity id = Identity::generate(rng_);
  std::vector<MemberRegistered> events;
  chain_.subscribe_events([&](const ContractEvent& ev, const Block&) {
    if (const auto* reg = std::get_if<MemberRegistered>(&ev)) events.push_back(*reg);
  });

  const Receipt r = register_now(chain_, *contract_, kAlice, id.pk, 0,
                                 contract_->config().stake_wei);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(contract_->member_count(), 1u);
  EXPECT_TRUE(contract_->is_active(id.pk));
  EXPECT_EQ(chain_.ledger().balance_of(kAlice), 10'000'000u - 1'000'000u);
  EXPECT_EQ(chain_.ledger().balance_of(contract_->address()), 1'000'000u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].pk, id.pk);
  EXPECT_EQ(events[0].index, 0u);
}

TEST_P(MembershipContractTest, RegistrationRejectsWrongStake) {
  const Identity id = Identity::generate(rng_);
  const Receipt r = register_now(chain_, *contract_, kAlice, id.pk, 0, 999);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.error, "stake mismatch");
  EXPECT_EQ(contract_->member_count(), 0u);
  EXPECT_EQ(chain_.ledger().balance_of(kAlice), 10'000'000u);
}

TEST_P(MembershipContractTest, RegistrationRejectsDuplicate) {
  const Identity id = Identity::generate(rng_);
  EXPECT_TRUE(register_now(chain_, *contract_, kAlice, id.pk, 0,
                           contract_->config().stake_wei)
                  .success);
  const Receipt dup = register_now(chain_, *contract_, kBob, id.pk, 20,
                                   contract_->config().stake_wei);
  EXPECT_FALSE(dup.success);
  EXPECT_EQ(dup.error, "already registered");
  EXPECT_EQ(contract_->member_count(), 1u);
}

TEST_P(MembershipContractTest, RegistrationRejectsZeroCommitment) {
  const Receipt r = register_now(chain_, *contract_, kAlice, Fr::zero(), 0,
                                 contract_->config().stake_wei);
  EXPECT_FALSE(r.success);
}

TEST_P(MembershipContractTest, RegistrationRejectsPoorAccount) {
  Chain fresh(test_chain_config());
  std::unique_ptr<MembershipContract> contract;
  if (GetParam()) {
    contract = std::make_unique<OnChainTreeContract>(fresh, small_membership());
  } else {
    contract = std::make_unique<RegistryListContract>(fresh, small_membership());
  }
  const Identity id = Identity::generate(rng_);
  const Receipt r =
      register_now(fresh, *contract, 999, id.pk, 0, contract->config().stake_wei);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.error, "insufficient balance");
}

TEST_P(MembershipContractTest, SlashBurnsAndRewards) {
  const Identity id = Identity::generate(rng_);
  register_now(chain_, *contract_, kAlice, id.pk, 0, contract_->config().stake_wei);

  std::vector<MemberSlashed> events;
  chain_.subscribe_events([&](const ContractEvent& ev, const Block&) {
    if (const auto* s = std::get_if<MemberSlashed>(&ev)) events.push_back(*s);
  });

  const std::uint64_t bob_before = chain_.ledger().balance_of(kBob);
  const Receipt r = slash_now(chain_, *contract_, kBob, id.sk, 20);
  EXPECT_TRUE(r.success);
  EXPECT_FALSE(contract_->is_active(id.pk));
  EXPECT_EQ(contract_->member_count(), 0u);
  // 50% burnt, 50% to the slasher.
  EXPECT_EQ(chain_.ledger().burnt_total(), 500'000u);
  EXPECT_EQ(chain_.ledger().balance_of(kBob), bob_before + 500'000u);
  EXPECT_EQ(chain_.ledger().balance_of(contract_->address()), 0u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].pk, id.pk);
  EXPECT_EQ(events[0].beneficiary, kBob);
}

TEST_P(MembershipContractTest, SlashRejectsNonMember) {
  const Identity stranger = Identity::generate(rng_);
  const Receipt r = slash_now(chain_, *contract_, kBob, stranger.sk, 0);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.error, "not a member");
}

TEST_P(MembershipContractTest, SlashedMemberCannotBeSlashedTwice) {
  const Identity id = Identity::generate(rng_);
  register_now(chain_, *contract_, kAlice, id.pk, 0, contract_->config().stake_wei);
  EXPECT_TRUE(slash_now(chain_, *contract_, kBob, id.sk, 20).success);
  const Receipt again = slash_now(chain_, *contract_, kBob, id.sk, 40);
  EXPECT_FALSE(again.success);
}

TEST_P(MembershipContractTest, GroupFullRejects) {
  MembershipConfig tiny = small_membership();
  tiny.tree_depth = 1;  // capacity 2
  Chain chain(test_chain_config());
  std::unique_ptr<MembershipContract> contract;
  if (GetParam()) {
    contract = std::make_unique<OnChainTreeContract>(chain, tiny);
  } else {
    contract = std::make_unique<RegistryListContract>(chain, tiny);
  }
  chain.ledger().mint(kAlice, 10'000'000);
  std::uint64_t now = 0;
  for (int i = 0; i < 2; ++i) {
    const Identity id = Identity::generate(rng_);
    EXPECT_TRUE(register_now(chain, *contract, kAlice, id.pk, now, tiny.stake_wei).success);
    now += 20;
  }
  const Identity extra = Identity::generate(rng_);
  EXPECT_FALSE(register_now(chain, *contract, kAlice, extra.pk, now, tiny.stake_wei).success);
}

INSTANTIATE_TEST_SUITE_P(BothVariants, MembershipContractTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "OnChainTree" : "RegistryList";
                         });

TEST(GasComparisonTest, RegistryListIsOrderOfMagnitudeCheaper) {
  // The §III claim: moving the tree off-chain cuts registration gas by an
  // order of magnitude. Holds at the deployment depth the paper discusses
  // (depth 20; the gap only widens at 32).
  Chain chain(test_chain_config());
  MembershipConfig cfg = small_membership();
  cfg.tree_depth = 20;
  RegistryListContract registry(chain, cfg);
  OnChainTreeContract onchain(chain, cfg);
  chain.ledger().mint(1, 100'000'000);
  Rng rng(77);

  const Identity a = Identity::generate(rng);
  const Identity b = Identity::generate(rng);
  const Receipt r_list = register_now(chain, registry, 1, a.pk, 0, 1'000'000);
  const Receipt r_tree = register_now(chain, onchain, 1, b.pk, 20, 1'000'000);
  ASSERT_TRUE(r_list.success);
  ASSERT_TRUE(r_tree.success);
  EXPECT_GE(r_tree.gas_used, 10 * r_list.gas_used)
      << "registry=" << r_list.gas_used << " on-chain tree=" << r_tree.gas_used;
}

TEST(GasComparisonTest, RegistryGasConstantInGroupSize) {
  Chain chain(test_chain_config());
  RegistryListContract registry(chain, small_membership());
  chain.ledger().mint(1, 1'000'000'000);
  Rng rng(78);
  std::uint64_t first_gas = 0, last_gas = 0, now = 0;
  for (int i = 0; i < 50; ++i) {
    const Identity id = Identity::generate(rng);
    const Receipt r = register_now(chain, registry, 1, id.pk, now, 1'000'000);
    ASSERT_TRUE(r.success);
    if (i == 0) first_gas = r.gas_used;
    last_gas = r.gas_used;
    now += 20;
  }
  EXPECT_EQ(first_gas, last_gas);
}

TEST(OnChainTreeTest, RootMatchesOffChainTree) {
  Chain chain(test_chain_config());
  OnChainTreeContract contract(chain, small_membership());
  chain.ledger().mint(1, 100'000'000);
  Rng rng(79);
  merkle::MerkleTree reference(small_membership().tree_depth);
  std::uint64_t now = 0;
  for (int i = 0; i < 5; ++i) {
    const Identity id = Identity::generate(rng);
    register_now(chain, contract, 1, id.pk, now, 1'000'000);
    reference.append(id.pk);
    now += 20;
    EXPECT_EQ(contract.on_chain_root(), reference.root());
  }
}

TEST(SignalBoardTest, PostChargesPerByteAndEmits) {
  Chain chain(test_chain_config());
  SignalBoardContract board(chain);
  std::vector<SignalPosted> events;
  chain.subscribe_events([&](const ContractEvent& ev, const Block&) {
    if (const auto* p = std::get_if<SignalPosted>(&ev)) events.push_back(*p);
  });

  const std::uint64_t payload = 256;
  const auto tx = chain.submit(
      1, 0, SignalBoardContract::calldata_bytes(payload),
      [&](TxContext& ctx) { board.post(ctx, payload); }, 0);
  chain.mine_block(12);
  ASSERT_TRUE(chain.receipt(tx)->success);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].payload_bytes, payload);
  // Posting bytes on-chain costs orders of magnitude more gas than the
  // 21k base: 8 slots * 20k alone is 160k.
  EXPECT_GT(chain.receipt(tx)->gas_used, 180'000u);
}

TEST(SignalBoardTest, InclusionLatencyIsBlockBound) {
  // A message submitted right after a block waits a full block time before
  // becoming visible — the §III propagation argument.
  Chain chain(test_chain_config());
  SignalBoardContract board(chain);
  const std::uint64_t submitted_at = 1;  // just after block at t=0
  const auto tx = chain.submit(
      1, 0, SignalBoardContract::calldata_bytes(64),
      [&](TxContext& ctx) { board.post(ctx, 64); }, submitted_at);
  chain.mine_block(12);
  const Receipt* r = chain.receipt(tx);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->block_timestamp - r->submitted_at, 11u);
}

}  // namespace
}  // namespace wakurln::eth
