// Byte-identity pins for the deterministic campaign reports.
//
// Every pre-existing catalogue scenario is run at a fixed shrink config
// (12 nodes, 3 traffic epochs, 2 seeds, single-threaded) and the
// resulting deterministic report — minus the one redacted memory-model
// metric (see support/report_pin.h) — is fingerprinted and compared
// against a captured table. A mismatch means a change leaked into
// protocol behaviour: message routing, RLN validation outcomes or
// metric values moved, which pure storage or execution-model refactors
// explicitly promise not to do.
//
// Scenarios added after the capture (e.g. geo_250k) are deliberately NOT
// pinned here; regenerate the table when a PR intentionally changes
// protocol behaviour.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "scenario/campaign.h"
#include "scenario/scenarios.h"
#include "support/report_pin.h"

namespace wakurln::scenario {
namespace {

struct ReportPin {
  const char* name;
  std::uint64_t fingerprint;
};

// Captured at 12 nodes / 3 traffic epochs / seeds {1, 2} / 1 thread.
// Recaptured for the sharded-scheduler work (PR 9): per-sender RNG
// streams and per-origin event stamps replaced the single global draw
// order, which moves loss/jitter decisions (and hence every downstream
// metric) for the same seed. The new values are pinned by
// world_threads_test to be identical at every shard count.
constexpr ReportPin kPins[] = {
    {"baseline_relay", 0xf550deb3a866f5f4ULL},
    {"spam_wave", 0x4169e6fb6fe1cbccULL},
    {"churn_storm", 0x738530d224fccdcaULL},
    {"partition_heal", 0x21934e7af6cce3d9ULL},
    {"mixed_rate", 0x70ef87a127e5b32aULL},
    {"large_mesh", 0x8df5a1b0833321a5ULL},
    {"iwant_replay", 0x3daa03ea513107f1ULL},
    {"huge_mesh", 0x3119cb81c6232fdeULL},
    {"observer_coalition", 0x62374fa57e0265edULL},
    {"eclipse_publisher", 0x15de68478fc25d21ULL},
    {"sybil_observers", 0xa1afb25ea25cfd39ULL},
    {"adaptive_spammer", 0xfeb170594c73555aULL},
    {"adaptive_prober", 0xd5a582414bb3b5b7ULL},
    {"registration_storm", 0xe89ce29d2b27a686ULL},
    {"multi_topic_mesh", 0x298f03630ac44906ULL},
    {"pow_baseline", 0xdfefb393ed3913c8ULL},
};

std::uint64_t pinned_fingerprint(const ReportPin& pin, bool batch_crypto) {
  ScenarioSpec spec;
  bool found = false;
  for (const ScenarioSpec& s : registered_scenarios()) {
    if (s.name == pin.name) {
      spec = s;
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "scenario " << pin.name << " missing from catalogue";
  if (!found) return 0;

  spec.nodes = 12;
  spec.traffic_epochs = 3;
  spec.batch_crypto = batch_crypto;
  CampaignConfig cfg;
  cfg.seeds = 2;
  cfg.seed0 = 1;
  cfg.threads = 1;
  const CampaignResult result = run_campaign(spec, cfg);
  const std::string report = pin::redact_memory_model(report_json(result));
  return pin::fnv1a(report);
}

class ReportPinTest : public ::testing::TestWithParam<ReportPin> {};

TEST_P(ReportPinTest, DeterministicReportIsByteIdentical) {
  const ReportPin& pin = GetParam();
  EXPECT_EQ(pinned_fingerprint(pin, /*batch_crypto=*/true), pin.fingerprint)
      << "deterministic report for " << pin.name
      << " drifted from the pre-refactor capture";
}

// The scalar reference paths (batch_crypto off) must hit the very same
// captured fingerprints: the batched hot path — Merkle block appends,
// prepared verification, modeled amortisation queue — changes no
// deterministic report byte in either direction.
class ScalarCryptoPinTest : public ::testing::TestWithParam<ReportPin> {};

TEST_P(ScalarCryptoPinTest, ScalarReferenceMatchesBatchedCapture) {
  const ReportPin& pin = GetParam();
  EXPECT_EQ(pinned_fingerprint(pin, /*batch_crypto=*/false), pin.fingerprint)
      << "scalar-crypto report for " << pin.name
      << " diverged from the batched capture";
}

INSTANTIATE_TEST_SUITE_P(Catalogue, ReportPinTest, ::testing::ValuesIn(kPins),
                         [](const ::testing::TestParamInfo<ReportPin>& info) {
                           return std::string(info.param.name);
                         });

INSTANTIATE_TEST_SUITE_P(Catalogue, ScalarCryptoPinTest, ::testing::ValuesIn(kPins),
                         [](const ::testing::TestParamInfo<ReportPin>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace wakurln::scenario
