// Byte-identity pins for the deterministic campaign reports.
//
// Every pre-existing catalogue scenario is run at a fixed shrink config
// (12 nodes, 3 traffic epochs, 2 seeds, single-threaded) and the
// resulting deterministic report — minus the one redacted memory-model
// metric (see support/report_pin.h) — is fingerprinted and compared
// against a table captured before the struct-of-arrays node-state /
// interned-peer-set / shared-validator refactor. A mismatch means a
// storage change leaked into protocol behaviour: message routing, RLN
// validation outcomes or metric values moved, which the refactor
// explicitly promises not to do.
//
// Scenarios added after the capture (e.g. geo_250k) are deliberately NOT
// pinned here; regenerate the table when a PR intentionally changes
// protocol behaviour.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "scenario/campaign.h"
#include "scenario/scenarios.h"
#include "support/report_pin.h"

namespace wakurln::scenario {
namespace {

struct ReportPin {
  const char* name;
  std::uint64_t fingerprint;
};

// Captured at 12 nodes / 3 traffic epochs / seeds {1, 2} / 1 thread on
// the pre-refactor tree (PR 7).
constexpr ReportPin kPins[] = {
    {"baseline_relay", 0x2500210c0711c162ULL},
    {"spam_wave", 0x1bb7297f90a1cc75ULL},
    {"churn_storm", 0xb701e67e8ed894afULL},
    {"partition_heal", 0xf5aca0e8b7cca89eULL},
    {"mixed_rate", 0x810ff57196823f44ULL},
    {"large_mesh", 0x99f239d4a1597210ULL},
    {"iwant_replay", 0x49134eb3b833fe6dULL},
    {"huge_mesh", 0xdfbdf3389fb67ff4ULL},
    {"observer_coalition", 0x163e88d7f1446bd9ULL},
    {"eclipse_publisher", 0x0f1f3c7bb0922e2cULL},
    {"sybil_observers", 0x7b44331e116ba9feULL},
    {"adaptive_spammer", 0xc468a2a0e7dfe0c6ULL},
    {"adaptive_prober", 0x04255c6247180549ULL},
    {"registration_storm", 0x3aacdd0ff796d002ULL},
    {"multi_topic_mesh", 0x661c4664e5ff7ac1ULL},
    {"pow_baseline", 0x300e89479bb29ffdULL},
};

class ReportPinTest : public ::testing::TestWithParam<ReportPin> {};

TEST_P(ReportPinTest, DeterministicReportIsByteIdentical) {
  const ReportPin& pin = GetParam();
  ScenarioSpec spec;
  bool found = false;
  for (const ScenarioSpec& s : registered_scenarios()) {
    if (s.name == pin.name) {
      spec = s;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "scenario " << pin.name << " missing from catalogue";

  spec.nodes = 12;
  spec.traffic_epochs = 3;
  CampaignConfig cfg;
  cfg.seeds = 2;
  cfg.seed0 = 1;
  cfg.threads = 1;
  const CampaignResult result = run_campaign(spec, cfg);
  const std::string report = pin::redact_memory_model(report_json(result));
  EXPECT_EQ(pin::fnv1a(report), pin.fingerprint)
      << "deterministic report for " << pin.name
      << " drifted from the pre-refactor capture";
}

INSTANTIATE_TEST_SUITE_P(Catalogue, ReportPinTest, ::testing::ValuesIn(kPins),
                         [](const ::testing::TestParamInfo<ReportPin>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace wakurln::scenario
