// Tests for the P3 (mesh message delivery deficit) scoring component.

#include <gtest/gtest.h>

#include "gossipsub/score.h"

namespace wakurln::gossipsub {
namespace {

PeerScoreParams p3_params() {
  PeerScoreParams params;
  params.topic.mesh_message_deliveries_weight = -1.0;
  params.topic.mesh_message_deliveries_threshold = 5.0;
  params.topic.mesh_message_deliveries_activation = 5 * sim::kUsPerSecond;
  // Silence the other components for isolation.
  params.topic.time_in_mesh_weight = 0.0;
  params.topic.first_message_deliveries_weight = 0.0;
  return params;
}

TEST(ScoreP3Test, DisabledByDefault) {
  PeerScoreTracker tracker{PeerScoreParams{}};
  tracker.on_join_mesh(1, "t", 0);
  // Default P3 weight is 0: a silent mesh peer accrues only the positive
  // P1 time-in-mesh credit, never a delivery-deficit penalty.
  EXPECT_GE(tracker.score(1, 100 * sim::kUsPerSecond), 0.0);
}

TEST(ScoreP3Test, NoPenaltyBeforeActivation) {
  PeerScoreTracker tracker{p3_params()};
  tracker.on_join_mesh(1, "t", 0);
  EXPECT_EQ(tracker.score(1, 4 * sim::kUsPerSecond), 0.0);
}

TEST(ScoreP3Test, SilentMeshPeerPenalisedAfterActivation) {
  PeerScoreTracker tracker{p3_params()};
  tracker.on_join_mesh(1, "t", 0);
  // Deficit = 5, penalty = -1 * 25.
  EXPECT_NEAR(tracker.score(1, 10 * sim::kUsPerSecond), -25.0, 1e-9);
}

TEST(ScoreP3Test, DeliveriesReduceTheDeficit) {
  PeerScoreTracker tracker{p3_params()};
  tracker.on_join_mesh(1, "t", 0);
  for (int i = 0; i < 3; ++i) tracker.on_mesh_delivery(1, "t");
  // Deficit = 2, penalty = -4.
  EXPECT_NEAR(tracker.score(1, 10 * sim::kUsPerSecond), -4.0, 1e-9);
  for (int i = 0; i < 2; ++i) tracker.on_mesh_delivery(1, "t");
  EXPECT_EQ(tracker.score(1, 10 * sim::kUsPerSecond), 0.0);
}

TEST(ScoreP3Test, OverDeliveryIsNotRewarded) {
  PeerScoreTracker tracker{p3_params()};
  tracker.on_join_mesh(1, "t", 0);
  for (int i = 0; i < 50; ++i) tracker.on_mesh_delivery(1, "t");
  EXPECT_EQ(tracker.score(1, 10 * sim::kUsPerSecond), 0.0);
}

TEST(ScoreP3Test, NonMeshPeerNotPenalised) {
  PeerScoreTracker tracker{p3_params()};
  tracker.on_first_delivery(1, "t");  // known peer, never in mesh
  EXPECT_EQ(tracker.score(1, 100 * sim::kUsPerSecond), 0.0);
}

TEST(ScoreP3Test, LeavingMeshStopsThePenalty) {
  PeerScoreTracker tracker{p3_params()};
  tracker.on_join_mesh(1, "t", 0);
  EXPECT_LT(tracker.score(1, 10 * sim::kUsPerSecond), 0.0);
  tracker.on_leave_mesh(1, "t");
  EXPECT_EQ(tracker.score(1, 10 * sim::kUsPerSecond), 0.0);
}

TEST(ScoreP3Test, DecayErodesDeliveryCredit) {
  PeerScoreTracker tracker{p3_params()};
  tracker.on_join_mesh(1, "t", 0);
  for (int i = 0; i < 5; ++i) tracker.on_mesh_delivery(1, "t");
  EXPECT_EQ(tracker.score(1, 10 * sim::kUsPerSecond), 0.0);
  // After enough decay rounds with no traffic the deficit reopens.
  for (int i = 0; i < 20; ++i) tracker.decay();
  EXPECT_LT(tracker.score(1, 10 * sim::kUsPerSecond), -15.0);
}

}  // namespace
}  // namespace wakurln::gossipsub
