// Focused control-plane tests for the GossipSub router: GRAFT/PRUNE
// handshakes, IHAVE/IWANT recovery, fanout lifecycle and seen-cache TTL —
// each on a minimal hand-wired topology where every frame is accountable.

#include <gtest/gtest.h>

#include <memory>

#include "gossipsub/router.h"

namespace wakurln::gossipsub {
namespace {

using sim::NodeId;
using util::Rng;

struct MiniNet {
  sim::Scheduler sched;
  Rng rng{99};
  sim::Network net;
  std::vector<std::unique_ptr<GossipSubRouter>> routers;

  explicit MiniNet(std::size_t n, GossipSubParams params = {},
                   sim::LinkParams link = fast_link())
      : net(sched, rng, link) {
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = net.add_node({});
      routers.push_back(std::make_unique<GossipSubRouter>(id, net, params));
    }
  }

  static sim::LinkParams fast_link() {
    sim::LinkParams l;
    l.base_latency = 5 * sim::kUsPerMs;
    l.jitter = 0;
    l.bandwidth_bytes_per_sec = 0;
    return l;
  }

  void start_all() {
    for (auto& r : routers) r->start();
  }
  void run_s(std::uint64_t s) { sched.run_for(s * sim::kUsPerSecond); }
};

TEST(GossipControlTest, GraftHandshakeFormsSymmetricMesh) {
  MiniNet m(2);
  m.net.connect(0, 1);
  m.start_all();
  m.routers[0]->subscribe("t");
  m.routers[1]->subscribe("t");
  m.run_s(3);
  EXPECT_EQ(m.routers[0]->mesh_peers("t"), std::vector<NodeId>{1});
  EXPECT_EQ(m.routers[1]->mesh_peers("t"), std::vector<NodeId>{0});
}

TEST(GossipControlTest, GraftToNonSubscriberIsPrunedBack) {
  MiniNet m(2);
  m.net.connect(0, 1);
  m.start_all();
  m.routers[0]->subscribe("t");  // 1 never subscribes
  m.run_s(5);
  EXPECT_TRUE(m.routers[0]->mesh_peers("t").empty());
}

TEST(GossipControlTest, UnsubscribeSendsPruneAndSubscriptionUpdate) {
  MiniNet m(2);
  m.net.connect(0, 1);
  m.start_all();
  m.routers[0]->subscribe("t");
  m.routers[1]->subscribe("t");
  m.run_s(3);
  m.routers[1]->unsubscribe("t");
  m.run_s(3);
  EXPECT_TRUE(m.routers[0]->mesh_peers("t").empty());
  // Router 0 no longer counts 1 as a topic peer, so the mesh stays empty
  // across further heartbeats.
  m.run_s(3);
  EXPECT_TRUE(m.routers[0]->mesh_peers("t").empty());
}

TEST(GossipControlTest, IHaveIWantDeliversWithoutAnyMesh) {
  // With D = 0 no mesh ever forms, so eager push is impossible: the ONLY
  // way a message can travel is IHAVE advertisement -> IWANT fetch. This
  // isolates the lazy-gossip path end to end.
  GossipSubParams params;
  params.d = 0;
  params.d_lo = 0;
  params.d_hi = 0;
  MiniNet m(2, params);
  m.net.connect(0, 1);
  m.start_all();
  m.routers[0]->subscribe("t");
  m.routers[1]->subscribe("t");
  m.run_s(2);

  int delivered_at_1 = 0;
  m.routers[1]->set_message_handler([&](const GsMessage&) { ++delivered_at_1; });

  m.routers[0]->publish("t", util::to_bytes("lazy only"));
  EXPECT_TRUE(m.routers[0]->mesh_peers("t").empty());
  m.run_s(4);  // a few heartbeats for IHAVE -> IWANT -> message
  EXPECT_EQ(delivered_at_1, 1);
  EXPECT_GE(m.routers[1]->stats().delivered, 1u);
}

TEST(GossipControlTest, PruneBackoffPreventsImmediateRegraft) {
  GossipSubParams params;
  params.prune_backoff = 30 * sim::kUsPerSecond;
  MiniNet m(2, params);
  m.net.connect(0, 1);
  m.start_all();
  m.routers[0]->subscribe("t");
  m.routers[1]->subscribe("t");
  m.run_s(3);
  ASSERT_EQ(m.routers[0]->mesh_peers("t").size(), 1u);

  // Force a prune by unsubscribing and re-subscribing on node 1: node 0
  // received PRUNE and must not re-graft node 1 during the backoff.
  m.routers[1]->unsubscribe("t");
  m.run_s(2);
  EXPECT_TRUE(m.routers[0]->mesh_peers("t").empty());
  m.routers[1]->subscribe("t");
  m.run_s(5);
  // Both sides honour the backoff: no mesh reforms yet...
  EXPECT_TRUE(m.routers[0]->mesh_peers("t").empty());
  // ...but after the backoff expires the mesh heals.
  m.run_s(30);
  EXPECT_EQ(m.routers[0]->mesh_peers("t").size(), 1u);
}

TEST(GossipControlTest, IWantServedFromMessageCacheOnly) {
  MiniNet m(2);
  m.net.connect(0, 1);
  m.start_all();
  m.routers[0]->subscribe("t");
  m.routers[1]->subscribe("t");
  m.run_s(2);
  m.routers[0]->publish("t", util::to_bytes("cached"));
  m.run_s(1);
  // After mcache_len heartbeats the message leaves the cache; a late IWANT
  // (simulated by a fresh peer asking via IHAVE path) cannot be served.
  m.run_s(m.routers[0]->params().mcache_len + 1);
  EXPECT_TRUE(m.routers[0]->has_seen(
      GsMessage::create("t", util::to_bytes("cached")).id));
}

TEST(GossipControlTest, SeenCacheExpiresAfterTtl) {
  GossipSubParams params;
  params.seen_ttl = 3 * sim::kUsPerSecond;
  MiniNet m(2, params);
  m.net.connect(0, 1);
  m.start_all();
  m.routers[0]->subscribe("t");
  m.routers[1]->subscribe("t");
  m.run_s(2);
  const MessageId id = m.routers[0]->publish("t", util::to_bytes("ttl probe"));
  m.run_s(1);
  EXPECT_TRUE(m.routers[0]->has_seen(id));
  m.run_s(6);  // beyond seen_ttl + heartbeat GC
  EXPECT_FALSE(m.routers[0]->has_seen(id));
}

TEST(GossipControlTest, FanoutExpiresAfterTtl) {
  GossipSubParams params;
  params.fanout_ttl = 2 * sim::kUsPerSecond;
  MiniNet m(3, params);
  m.net.connect(0, 1);
  m.net.connect(0, 2);
  m.start_all();
  m.routers[1]->subscribe("t");
  m.routers[2]->subscribe("t");
  m.run_s(2);

  int received = 0;
  m.routers[1]->set_message_handler([&](const GsMessage&) { ++received; });
  m.routers[2]->set_message_handler([&](const GsMessage&) { ++received; });

  // Node 0 publishes without subscribing: fanout path.
  m.routers[0]->publish("t", util::to_bytes("f1"));
  m.run_s(1);
  EXPECT_EQ(received, 2);
  // After the fanout TTL the state is dropped; a later publish rebuilds it
  // and still delivers.
  m.run_s(5);
  m.routers[0]->publish("t", util::to_bytes("f2"));
  m.run_s(1);
  EXPECT_EQ(received, 4);
}

TEST(GossipControlTest, MeshRespectsUpperBoundUnderManyPeers) {
  GossipSubParams params;
  params.d = 4;
  params.d_lo = 3;
  params.d_hi = 6;
  MiniNet m(15, params);
  // Star-plus-clique: node 0 connected to everyone.
  for (NodeId i = 1; i < 15; ++i) m.net.connect(0, i);
  m.start_all();
  for (auto& r : m.routers) r->subscribe("t");
  m.run_s(10);
  const auto mesh = m.routers[0]->mesh_peers("t");
  EXPECT_LE(mesh.size(), 6u);
  EXPECT_GE(mesh.size(), 3u);
}

TEST(GossipControlTest, PeerExchangeOnPruneDiscoversNewPeers) {
  // Star: spokes only know the hub. When the hub prunes its oversubscribed
  // mesh, the PRUNE carries PX referrals, and pruned spokes connect to
  // each other — mesh capacity stops depending on one super-node.
  GossipSubParams params;
  params.d = 2;
  params.d_lo = 2;
  params.d_hi = 3;
  MiniNet m(10, params);
  for (NodeId i = 1; i < 10; ++i) m.net.connect(0, i);
  m.start_all();
  for (auto& r : m.routers) r->subscribe("t");
  m.run_s(15);

  // At least some spokes now have spoke-to-spoke links learned via PX.
  std::size_t spoke_to_spoke = 0;
  for (NodeId i = 1; i < 10; ++i) {
    for (NodeId n : m.net.neighbors(i)) {
      if (n != 0) ++spoke_to_spoke;
    }
  }
  EXPECT_GT(spoke_to_spoke, 0u);
  // And the hub's mesh respects its bounds despite 9 candidates.
  EXPECT_LE(m.routers[0]->mesh_peers("t").size(), 3u);
}

TEST(GossipControlTest, PxDisabledKeepsTopologyStatic) {
  GossipSubParams params;
  params.d = 2;
  params.d_lo = 2;
  params.d_hi = 3;
  params.px_peers = 0;  // no referrals attached
  MiniNet m(8, params);
  for (NodeId i = 1; i < 8; ++i) m.net.connect(0, i);
  m.start_all();
  for (auto& r : m.routers) r->subscribe("t");
  m.run_s(15);
  for (NodeId i = 1; i < 8; ++i) {
    EXPECT_EQ(m.net.neighbors(i), std::vector<NodeId>{0}) << "spoke " << i;
  }
}

TEST(GossipControlTest, DisconnectedPeerLeavesAllState) {
  MiniNet m(3);
  m.net.connect(0, 1);
  m.net.connect(0, 2);
  m.start_all();
  for (auto& r : m.routers) r->subscribe("t");
  m.run_s(3);
  ASSERT_FALSE(m.routers[0]->mesh_peers("t").empty());
  m.net.disconnect(0, 1);
  m.run_s(1);
  for (NodeId p : m.routers[0]->mesh_peers("t")) EXPECT_NE(p, 1u);
  const auto known = m.routers[0]->known_peers();
  EXPECT_EQ(std::count(known.begin(), known.end(), 1u), 0);
}

}  // namespace
}  // namespace wakurln::gossipsub
