#include <gtest/gtest.h>

#include "hash/poseidon.h"
#include "shamir/shamir.h"
#include "util/rng.h"

namespace wakurln::shamir {
namespace {

using field::Fr;
using util::Rng;

TEST(ShamirTest, TwoSharesReconstructSecret) {
  Rng rng(501);
  for (int i = 0; i < 100; ++i) {
    const Fr sk = Fr::random(rng);
    const Fr a1 = Fr::random(rng);
    const Fr x1 = Fr::random(rng);
    const Fr x2 = Fr::random(rng);
    if (x1 == x2) continue;
    const Share s1 = make_share(sk, a1, x1);
    const Share s2 = make_share(sk, a1, x2);
    const auto recovered = reconstruct(s1, s2);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(*recovered, sk);
  }
}

TEST(ShamirTest, ReconstructionIsSymmetric) {
  Rng rng(502);
  const Fr sk = Fr::random(rng), a1 = Fr::random(rng);
  const Share s1 = make_share(sk, a1, Fr::from_u64(5));
  const Share s2 = make_share(sk, a1, Fr::from_u64(9));
  EXPECT_EQ(reconstruct(s1, s2), reconstruct(s2, s1));
}

TEST(ShamirTest, SameXReturnsNullopt) {
  Rng rng(503);
  const Fr sk = Fr::random(rng), a1 = Fr::random(rng);
  const Fr x = Fr::random(rng);
  const Share s = make_share(sk, a1, x);
  EXPECT_FALSE(reconstruct(s, s).has_value());
  EXPECT_FALSE(recover_slope(s, s).has_value());
}

TEST(ShamirTest, SlopeRecoveryMatchesDealer) {
  Rng rng(504);
  for (int i = 0; i < 50; ++i) {
    const Fr sk = Fr::random(rng), a1 = Fr::random(rng);
    const Share s1 = make_share(sk, a1, Fr::random(rng));
    const Share s2 = make_share(sk, a1, Fr::random(rng));
    if (s1.x == s2.x) continue;
    const auto slope = recover_slope(s1, s2);
    ASSERT_TRUE(slope.has_value());
    EXPECT_EQ(*slope, a1);
  }
}

TEST(ShamirTest, SharesFromDifferentLinesDoNotRecoverSk) {
  // Shares from two different epochs (different a1) must not reconstruct
  // the secret — this is why one message per epoch is safe (paper §II).
  Rng rng(505);
  for (int i = 0; i < 50; ++i) {
    const Fr sk = Fr::random(rng);
    const Fr a1_epoch1 = Fr::random(rng);
    const Fr a1_epoch2 = Fr::random(rng);
    if (a1_epoch1 == a1_epoch2) continue;
    const Share s1 = make_share(sk, a1_epoch1, Fr::random(rng));
    const Share s2 = make_share(sk, a1_epoch2, Fr::random(rng));
    if (s1.x == s2.x) continue;
    const auto recovered = reconstruct(s1, s2);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_NE(*recovered, sk);
  }
}

TEST(ShamirTest, SingleShareRevealsNothingDeterministic) {
  // For a fixed share (x, y), every candidate secret sk' admits a slope
  // a1' = (y - sk') / x that explains the share: information-theoretic
  // hiding for one point. Verify the algebra for a few candidates.
  Rng rng(506);
  const Fr sk = Fr::random(rng), a1 = Fr::random(rng);
  const Fr x = Fr::from_u64(42);
  const Share s = make_share(sk, a1, x);
  for (int i = 0; i < 20; ++i) {
    const Fr candidate_sk = Fr::random(rng);
    const Fr candidate_a1 = (s.y - candidate_sk) * x.inverse();
    EXPECT_EQ(make_share(candidate_sk, candidate_a1, x), s);
  }
}

TEST(ShamirTest, ZeroSecretIsHandled) {
  const Fr a1 = Fr::from_u64(7);
  const Share s1 = make_share(Fr::zero(), a1, Fr::from_u64(1));
  const Share s2 = make_share(Fr::zero(), a1, Fr::from_u64(2));
  const auto recovered = reconstruct(s1, s2);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(recovered->is_zero());
}

TEST(ShamirTest, RlnDerivationEndToEnd) {
  // The exact derivation the protocol uses: a1 = H(sk, epoch), x = H(m).
  Rng rng(507);
  const Fr sk = Fr::random(rng);
  const Fr epoch = Fr::from_u64(123456789);
  const Fr a1 = hash::poseidon_hash2(sk, epoch);
  const Fr x1 = hash::poseidon_hash1(Fr::from_u64(1111));  // H(m1)
  const Fr x2 = hash::poseidon_hash1(Fr::from_u64(2222));  // H(m2)
  const auto recovered = reconstruct(make_share(sk, a1, x1), make_share(sk, a1, x2));
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, sk);
}

}  // namespace
}  // namespace wakurln::shamir
