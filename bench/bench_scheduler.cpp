// Microbenchmark for the typed pooled event engine (sim/scheduler.h):
// raw event throughput (events/sec) and allocation discipline
// (allocs/event) for each of the three event classes — one-shot
// callbacks, typed frame deliveries, periodic timers — plus the
// far-future overflow path. The BENCH_scheduler.json metrics gate the
// 50k-node campaign work: steady-state allocs/event must stay ~0.

#include <cstdio>
#include <string>

#include "harness.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "util/rng.h"

using namespace wakurln;

namespace {

double events_per_sec(const bench::TimingStats& t) {
  return t.median_ns <= 0 ? 0 : 1e9 / t.median_ns;
}

}  // namespace

int main() {
  bench::Runner runner("scheduler");
  std::printf("typed pooled event engine: throughput and allocation discipline\n\n");

  // 1. One-shot callback churn: schedule batches across the calendar
  // ring and drain. After the first warm-up rep the pool serves
  // everything.
  {
    sim::Scheduler sched;
    constexpr std::size_t kBatch = 100'000;
    const auto t = runner.run(
        "oneshot_schedule_and_run",
        [&] {
          for (std::size_t i = 0; i < kBatch; ++i) {
            sched.schedule_after((i % 1000) * 17, [] {});
          }
          sched.run_all();
        },
        /*reps=*/10, /*warmup=*/2, /*batch=*/kBatch);
    const sim::Scheduler::Stats& st = sched.stats();
    runner.metric("oneshot_events_per_sec", events_per_sec(t), "events/s");
    runner.metric("oneshot_allocs_per_event",
                  static_cast<double>(st.node_allocs) /
                      static_cast<double>(st.executed));
    runner.metric("oneshot_pool_reuse_ratio",
                  static_cast<double>(st.pool_reuses) /
                      static_cast<double>(st.scheduled));
  }

  // 2. Typed frame deliveries: a 64-node ring fanning shared frames to
  // both neighbours — the network hot path, zero closures per send.
  {
    sim::Scheduler sched;
    util::Rng rng(42);
    sim::LinkParams link;
    link.base_latency = 5 * sim::kUsPerMs;
    link.jitter = 30 * sim::kUsPerMs;  // spread deliveries across ring slots
    link.loss_rate = 0;
    link.bandwidth_bytes_per_sec = 0;
    sim::Network net(sched, rng, link);
    constexpr std::size_t kNodes = 64;
    constexpr std::size_t kRounds = 500;
    std::vector<sim::NodeId> ids;
    for (std::size_t i = 0; i < kNodes; ++i) ids.push_back(net.add_node({}));
    for (std::size_t i = 0; i < kNodes; ++i) {
      net.connect(ids[i], ids[(i + 1) % kNodes]);
    }
    const sim::Frame frame = sim::Frame::of(std::string(256, 'x'));
    const auto t = runner.run(
        "delivery_ring_fanout",
        [&] {
          for (std::size_t r = 0; r < kRounds; ++r) {
            for (std::size_t i = 0; i < kNodes; ++i) {
              net.send(ids[i], ids[(i + 1) % kNodes], frame, 256);
            }
          }
          sched.run_all();
        },
        /*reps=*/10, /*warmup=*/2, /*batch=*/kNodes * kRounds);
    const sim::Scheduler::Stats& st = sched.stats();
    runner.metric("delivery_events_per_sec", events_per_sec(t), "events/s");
    runner.metric("delivery_allocs_per_event",
                  static_cast<double>(st.node_allocs) /
                      static_cast<double>(st.executed));
  }

  // 3. Periodic timers: 10k timers (one per simulated node at mid scale)
  // ticking every second for a simulated minute — one stored callback
  // each, every fire a pooled re-arm.
  {
    sim::Scheduler sched;
    std::uint64_t fires = 0;
    for (std::size_t i = 0; i < 10'000; ++i) {
      sched.schedule_periodic(i % sim::kUsPerSecond, sim::kUsPerSecond,
                              [&fires] { ++fires; });
    }
    const auto t = runner.run_once("periodic_10k_timers_60s", [&] {
      sched.run_for(60 * sim::kUsPerSecond);
    });
    const sim::Scheduler::Stats& st = sched.stats();
    runner.metric("periodic_timer_fires", static_cast<double>(st.timer_fires));
    runner.metric("periodic_fires_per_sec",
                  t.median_ns <= 0 ? 0
                                   : static_cast<double>(st.timer_fires) /
                                         (t.median_ns / 1e9),
                  "fires/s");
    runner.metric("periodic_allocs_per_fire",
                  static_cast<double>(st.node_allocs) /
                      static_cast<double>(st.timer_fires));
  }

  // 4. Far-future overflow: every event lands beyond the ~8.4 s ring
  // horizon and migrates in as the cursor advances.
  {
    sim::Scheduler sched;
    constexpr std::size_t kBatch = 50'000;
    const auto t = runner.run(
        "overflow_far_future",
        [&] {
          for (std::size_t i = 0; i < kBatch; ++i) {
            sched.schedule_after(10 * sim::kUsPerSecond + (i % 5000) * 7'000, [] {});
          }
          sched.run_all();
        },
        /*reps=*/5, /*warmup=*/1, /*batch=*/kBatch);
    const sim::Scheduler::Stats& st = sched.stats();
    runner.metric("overflow_events_per_sec", events_per_sec(t), "events/s");
    runner.metric("overflow_share",
                  static_cast<double>(st.overflow_events) /
                      static_cast<double>(st.scheduled));
  }

  // 5. Sharded world throughput curve: the delivery ring workload again,
  // but executed at world_threads 1/2/4/8 under conservative time-window
  // synchronisation. The executed-event count must be identical at every
  // shard count (the determinism contract); the per-shard-count
  // throughput metrics chart how the windowed engine scales.
  {
    std::uint64_t executed_serial = 0;
    bool executed_identical = true;
    for (unsigned shards : {1u, 2u, 4u, 8u}) {
      sim::Scheduler sched(shards, /*node_count_hint=*/256);
      util::Rng rng(42);
      sim::LinkParams link;
      link.base_latency = 5 * sim::kUsPerMs;
      link.jitter = 10 * sim::kUsPerMs;
      link.loss_rate = 0;
      link.bandwidth_bytes_per_sec = 0;
      sim::Network net(sched, rng, link);
      constexpr std::size_t kNodes = 256;
      constexpr std::size_t kRounds = 100;
      std::vector<sim::NodeId> ids;
      for (std::size_t i = 0; i < kNodes; ++i) ids.push_back(net.add_node({}));
      for (std::size_t i = 0; i < kNodes; ++i) {
        net.connect(ids[i], ids[(i + 1) % kNodes]);
      }
      const sim::Frame frame = sim::Frame::of(std::string(256, 'x'));
      const auto t = runner.run(
          "sharded_ring_" + std::to_string(shards) + "_shards",
          [&] {
            for (std::size_t r = 0; r < kRounds; ++r) {
              for (std::size_t i = 0; i < kNodes; ++i) {
                net.send(ids[i], ids[(i + 1) % kNodes], frame, 256);
              }
            }
            sched.run_all();
          },
          /*reps=*/5, /*warmup=*/1, /*batch=*/kNodes * kRounds);
      const sim::Scheduler::Stats& st = sched.stats();
      if (shards == 1) {
        executed_serial = st.executed;
      } else if (st.executed != executed_serial) {
        executed_identical = false;
      }
      runner.metric("sharded_events_per_sec_" + std::to_string(shards),
                    events_per_sec(t), "events/s");
    }
    runner.metric("sharded_executed_identical", executed_identical ? 1 : 0);
  }

  std::printf(
      "\nshape check: allocs/event ~0 once warm (the pool absorbs steady\n"
      "state), deliveries within ~2x of bare callbacks, overflow path\n"
      "slower but correct; the sharded curve executes the same event\n"
      "count at every shard count.\n");
  return 0;
}
