// E4 — §IV claims: "Each peer persists a 32 B public and secret keys and a
// ≈3.89 MB prover key"; Groth16 proofs are constant 128 B.
//
// Prints the artefact-size table next to the paper's numbers.

#include <cstdio>
#include <string>

#include "harness.h"
#include "rln/identity.h"
#include "rln/signal.h"
#include "util/rng.h"
#include "zksnark/proof_system.h"

using namespace wakurln;

int main() {
  bench::Runner runner("sizes");
  util::Rng rng(42);
  const rln::Identity id = rln::Identity::generate(rng);
  runner.metric("secret_key_bytes", static_cast<double>(id.sk.to_bytes_be().size()),
                "bytes");
  runner.metric("public_key_bytes", static_cast<double>(id.pk.to_bytes_be().size()),
                "bytes");
  runner.metric("proof_bytes", static_cast<double>(zksnark::Proof::kSize), "bytes");
  runner.metric("signal_wire_bytes", static_cast<double>(rln::RlnSignal::kWireSize),
                "bytes");

  std::printf("E4: persistent artefact sizes (paper §IV)\n");
  std::printf("%-34s %14s %14s\n", "artefact", "measured", "paper");
  std::printf("%-34s %13zu B %14s\n", "secret key sk",
              id.sk.to_bytes_be().size(), "32 B");
  std::printf("%-34s %13zu B %14s\n", "public key pk = H(sk)",
              id.pk.to_bytes_be().size(), "32 B");
  std::printf("%-34s %13zu B %14s\n", "zkSNARK proof (2 G1 + 1 G2)",
              zksnark::Proof::kSize, "128 B");
  std::printf("%-34s %13zu B %14s\n", "RLN signal wire overhead",
              rln::RlnSignal::kWireSize, "(n/a)");

  std::printf("\nprover/verifier key sizes by tree depth (modelled Groth16):\n");
  std::printf("%8s %18s %18s\n", "depth", "prover key", "verifier key");
  for (std::size_t depth : {10u, 16u, 20u, 24u, 32u}) {
    const std::string tag = bench::cat("d", depth);
    zksnark::KeyPair keys;
    runner.run(
        "setup_" + tag, [&] { keys = zksnark::MockGroth16::setup(depth, rng); },
        /*reps=*/5, /*warmup=*/1);
    runner.metric("prover_key_bytes_" + tag,
                  static_cast<double>(keys.pk.simulated_size_bytes), "bytes");
    runner.metric("verifier_key_bytes_" + tag,
                  static_cast<double>(keys.vk.simulated_size_bytes), "bytes");
    std::printf("%8zu %15.3f MB %15zu B\n", depth,
                static_cast<double>(keys.pk.simulated_size_bytes) / 1e6,
                keys.vk.simulated_size_bytes);
  }
  std::printf("\npaper anchor: ≈3.89 MB prover key (depth-20 deployment)\n");
  return 0;
}
