// E13 — §III claim: "the nullifier map suffices to hold messages [that]
// belong to the last Thr epochs because older messages are considered
// invalid by default" — i.e. router memory for spam defence is bounded by
// rate x window, not by history length.
//
// Sweeps message rate and retention window and prints steady-state memory,
// demonstrating that GC keeps the footprint flat over time.

#include <cstdio>
#include <string>

#include "harness.h"
#include "rln/nullifier_map.h"
#include "util/rng.h"

using namespace wakurln;

int main() {
  bench::Runner runner("nullifier_map");
  std::printf("E13: nullifier-map memory vs rate and retention (paper §III)\n\n");

  // Raw observe throughput on a warm map (the router hot path). Pruning
  // stays outside the timed lambda so the stat measures observe alone.
  {
    rln::NullifierMap hot;
    util::Rng rng(7);
    const std::uint64_t epoch = 0;
    runner.run(
        "observe",
        [&] {
          for (std::size_t m = 0; m < 1000; ++m) {
            auto r = hot.observe(epoch, field::Fr::random(rng),
                                 field::Fr::random(rng), field::Fr::random(rng));
            bench::do_not_optimize(r);
          }
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/1000);
  }

  std::printf("%16s %12s %16s %16s\n", "msgs/epoch", "kept epochs", "records",
              "memory");

  for (const std::size_t rate : {10u, 100u, 1000u}) {
    for (const std::uint64_t keep : {2ull, 4ull, 8ull}) {
      rln::NullifierMap map;
      util::Rng rng(rate * 31 + keep);
      const std::string tag = bench::cat("r", rate, "_k", keep);
      // Simulate 100 epochs of traffic with pruning to `keep` epochs.
      runner.run(
          "trace_100_epochs_" + tag,
          [&] {
            for (std::uint64_t epoch = 0; epoch < 100; ++epoch) {
              for (std::size_t m = 0; m < rate; ++m) {
                map.observe(epoch, field::Fr::random(rng), field::Fr::random(rng),
                            field::Fr::random(rng));
              }
              if (epoch >= keep) map.prune_before(epoch - keep + 1);
            }
          },
          /*reps=*/1, /*warmup=*/0, /*batch=*/100 * rate);
      runner.metric("records_" + tag, static_cast<double>(map.record_count()),
                    "count");
      runner.metric("memory_bytes_" + tag, static_cast<double>(map.memory_bytes()),
                    "bytes");
      std::printf("%16zu %12llu %16zu %13.1f KB\n", rate,
                  static_cast<unsigned long long>(keep), map.record_count(),
                  static_cast<double>(map.memory_bytes()) / 1024.0);
    }
  }

  // Without pruning the map grows linearly with history — the §III point.
  rln::NullifierMap unbounded;
  util::Rng rng(99);
  for (std::uint64_t epoch = 0; epoch < 100; ++epoch) {
    for (std::size_t m = 0; m < 100; ++m) {
      unbounded.observe(epoch, field::Fr::random(rng), field::Fr::random(rng),
                        field::Fr::random(rng));
    }
  }
  runner.metric("unbounded_memory_bytes",
                static_cast<double>(unbounded.memory_bytes()), "bytes");
  std::printf("\nwithout pruning, the same 100-epoch trace costs %.1f KB\n",
              static_cast<double>(unbounded.memory_bytes()) / 1024.0);
  std::printf("\nshape check: memory = O(rate x kept epochs), constant over time;\n"
              "the epoch-validity rule makes records older than Thr useless, so\n"
              "pruning them is safe.\n");
  return 0;
}
