// E12 — §III: WAKU-RLN-RELAY adds RLN verification to every routing hop.
// This bench quantifies the added per-message router cost and wire
// overhead relative to plain WAKU-RELAY, plus end-to-end delivery latency
// of both protocols in the same simulated network.

#include <cstdio>

#include "harness.h"
#include "waku/harness.h"

using namespace wakurln;

namespace {

double median_latency_ms(const std::vector<double>& v) {
  if (v.empty()) return 0;
  std::vector<double> s = v;
  std::sort(s.begin(), s.end());
  return s[s.size() / 2];
}

}  // namespace

int main() {
  bench::Runner runner("routing_overhead");
  std::printf("E12: routing overhead, relay vs rln-relay (paper §III)\n\n");

  // -- wire overhead ----------------------------------------------------
  std::printf("-- wire overhead per message --\n");
  std::printf("%14s %14s %14s %10s\n", "payload", "relay bytes", "rln bytes", "extra");
  const std::size_t rln_extra = 4 + rln::RlnSignal::kWireSize + 4;  // var framing
  for (const std::size_t payload : {32u, 256u, 1024u, 4096u}) {
    std::printf("%12zu B %12zu B %12zu B %8zu B\n", payload, payload,
                payload + rln_extra, rln_extra);
  }
  runner.metric("wire_overhead_bytes", static_cast<double>(rln_extra), "bytes");

  // -- validation CPU cost ----------------------------------------------
  util::Rng rng(21);
  rln::RlnGroup group(20);
  const rln::Identity id = rln::Identity::generate(rng);
  const auto index = group.add_member(id.pk);
  const auto keys = zksnark::MockGroth16::setup(20, rng);
  const rln::RlnProver prover(keys.pk, id);
  const rln::RlnVerifier verifier(keys.vk);
  rln::NullifierMap nmap;
  const util::Bytes payload = util::to_bytes("routing overhead probe");
  const auto signal = prover.create_signal(payload, 3, group, index, rng);

  const auto& verify_stats = runner.run(
      "proof_verification",
      [&] {
        for (int i = 0; i < 200; ++i) {
          bool ok = verifier.verify(payload, *signal);
          bench::do_not_optimize(ok);
        }
      },
      /*reps=*/20, /*warmup=*/3, /*batch=*/200);
  std::uint64_t nmap_key = 0;
  const auto& nmap_stats = runner.run(
      "nullifier_map_check",
      [&] {
        for (int i = 0; i < 200; ++i) {
          auto r = nmap.observe(3, signal->nullifier,
                                field::Fr::from_u64(nmap_key++), signal->y);
          bench::do_not_optimize(r);
        }
      },
      /*reps=*/20, /*warmup=*/3, /*batch=*/200);
  const double verify_us = verify_stats.median_ns / 1000.0;
  const double nmap_us = nmap_stats.median_ns / 1000.0;
  std::printf("\n-- per-hop validation cost (measured, depth-20 group) --\n");
  std::printf("proof verification: %8.2f us   (real Groth16 anchor: ~30 ms)\n",
              verify_us);
  std::printf("nullifier-map check: %7.2f us\n", nmap_us);
  std::printf("plain relay:         %7.2f us   (no validation)\n", 0.0);

  // -- end-to-end delivery latency in the same network --------------------
  std::printf("\n-- end-to-end delivery latency, 30 peers (simulated network) --\n");
  for (const bool with_rln : {false, true}) {
    waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
    cfg.node_count = 30;
    cfg.seed = 97;
    waku::SimHarness world(cfg);
    std::vector<double> lat_ms;
    if (with_rln) {
      world.subscribe_all("bench/route");
      world.register_all();
      world.run_seconds(5);
      for (int m = 0; m < 5; ++m) {
        world.clear_deliveries();
        const auto p = util::to_bytes(bench::cat("m", m));
        const sim::TimeUs sent = world.scheduler().now();
        world.node(m).publish("bench/route", p);
        world.run_seconds(10);
        for (const auto& d : world.deliveries()) {
          lat_ms.push_back(static_cast<double>(d.at - sent) / sim::kUsPerMs);
        }
      }
    } else {
      // Plain relay over the same harness network: publish raw payloads.
      std::vector<std::pair<sim::TimeUs, sim::TimeUs>> unused;
      std::vector<double>* sink = &lat_ms;
      sim::TimeUs sent = 0;
      for (std::size_t i = 0; i < world.size(); ++i) {
        world.relay(i).subscribe("bench/raw",
                                 [&world, sink, &sent](const gossipsub::TopicId&,
                                                       const util::SharedBytes&) {
                                   sink->push_back(
                                       static_cast<double>(world.scheduler().now() -
                                                           sent) /
                                       sim::kUsPerMs);
                                 });
      }
      world.run_seconds(5);
      for (int m = 0; m < 5; ++m) {
        sent = world.scheduler().now();
        world.relay(m).publish("bench/raw", util::to_bytes(bench::cat("m", m)));
        world.run_seconds(10);
      }
      (void)unused;
    }
    runner.metric(with_rln ? "rln_sim_median_latency_ms" : "relay_sim_median_latency_ms",
                  median_latency_ms(lat_ms), "ms");
    std::printf("%-12s median delivery latency: %7.1f ms (%zu deliveries)\n",
                with_rln ? "rln-relay" : "relay", median_latency_ms(lat_ms),
                lat_ms.size());
  }

  std::printf("\nshape check: RLN adds ~240 B per message and a constant per-hop\n"
              "validation cost; propagation latency in the same network stays in\n"
              "the same range (network delay dominates CPU validation).\n");
  return 0;
}
