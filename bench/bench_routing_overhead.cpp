// E12 — §III: WAKU-RLN-RELAY adds RLN verification to every routing hop.
// This bench quantifies the added per-message router cost and wire
// overhead relative to plain WAKU-RELAY, plus end-to-end delivery latency
// of both protocols in the same simulated network.

#include <chrono>
#include <cstdio>

#include "waku/harness.h"

using namespace wakurln;

namespace {

double median_latency_ms(const std::vector<double>& v) {
  if (v.empty()) return 0;
  std::vector<double> s = v;
  std::sort(s.begin(), s.end());
  return s[s.size() / 2];
}

}  // namespace

int main() {
  std::printf("E12: routing overhead, relay vs rln-relay (paper §III)\n\n");

  // -- wire overhead ----------------------------------------------------
  std::printf("-- wire overhead per message --\n");
  std::printf("%14s %14s %14s %10s\n", "payload", "relay bytes", "rln bytes", "extra");
  for (const std::size_t payload : {32u, 256u, 1024u, 4096u}) {
    const std::size_t rln_extra = 4 + rln::RlnSignal::kWireSize + 4;  // var framing
    std::printf("%12zu B %12zu B %12zu B %8zu B\n", payload, payload,
                payload + rln_extra, rln_extra);
  }

  // -- validation CPU cost ----------------------------------------------
  util::Rng rng(21);
  rln::RlnGroup group(20);
  const rln::Identity id = rln::Identity::generate(rng);
  const auto index = group.add_member(id.pk);
  const auto keys = zksnark::MockGroth16::setup(20, rng);
  const rln::RlnProver prover(keys.pk, id);
  const rln::RlnVerifier verifier(keys.vk);
  rln::NullifierMap nmap;
  const util::Bytes payload = util::to_bytes("routing overhead probe");
  const auto signal = prover.create_signal(payload, 3, group, index, rng);

  const int kIters = 2000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    (void)verifier.verify(payload, *signal);
  }
  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    (void)nmap.observe(3, signal->nullifier, field::Fr::from_u64(i), signal->y);
  }
  const auto t2 = std::chrono::steady_clock::now();
  const double verify_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / kIters;
  const double nmap_us =
      std::chrono::duration<double, std::micro>(t2 - t1).count() / kIters;
  std::printf("\n-- per-hop validation cost (measured, depth-20 group) --\n");
  std::printf("proof verification: %8.2f us   (real Groth16 anchor: ~30 ms)\n",
              verify_us);
  std::printf("nullifier-map check: %7.2f us\n", nmap_us);
  std::printf("plain relay:         %7.2f us   (no validation)\n", 0.0);

  // -- end-to-end delivery latency in the same network --------------------
  std::printf("\n-- end-to-end delivery latency, 30 peers (simulated network) --\n");
  for (const bool with_rln : {false, true}) {
    waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
    cfg.node_count = 30;
    cfg.seed = 97;
    waku::SimHarness world(cfg);
    std::vector<double> lat_ms;
    if (with_rln) {
      world.subscribe_all("bench/route");
      world.register_all();
      world.run_seconds(5);
      for (int m = 0; m < 5; ++m) {
        world.clear_deliveries();
        const auto p = util::to_bytes("m" + std::to_string(m));
        const sim::TimeUs sent = world.scheduler().now();
        world.node(m).publish("bench/route", p);
        world.run_seconds(10);
        for (const auto& d : world.deliveries()) {
          lat_ms.push_back(static_cast<double>(d.at - sent) / sim::kUsPerMs);
        }
      }
    } else {
      // Plain relay over the same harness network: publish raw payloads.
      std::vector<std::pair<sim::TimeUs, sim::TimeUs>> unused;
      std::vector<double>* sink = &lat_ms;
      sim::TimeUs sent = 0;
      for (std::size_t i = 0; i < world.size(); ++i) {
        world.relay(i).subscribe("bench/raw",
                                 [&world, sink, &sent](const gossipsub::TopicId&,
                                                       const util::Bytes&) {
                                   sink->push_back(
                                       static_cast<double>(world.scheduler().now() -
                                                           sent) /
                                       sim::kUsPerMs);
                                 });
      }
      world.run_seconds(5);
      for (int m = 0; m < 5; ++m) {
        sent = world.scheduler().now();
        world.relay(m).publish("bench/raw", util::to_bytes("m" + std::to_string(m)));
        world.run_seconds(10);
      }
      (void)unused;
    }
    std::printf("%-12s median delivery latency: %7.1f ms (%zu deliveries)\n",
                with_rln ? "rln-relay" : "relay", median_latency_ms(lat_ms),
                lat_ms.size());
  }

  std::printf("\nshape check: RLN adds ~240 B per message and a constant per-hop\n"
              "validation cost; propagation latency in the same network stays in\n"
              "the same range (network delay dominates CPU validation).\n");
  return 0;
}
