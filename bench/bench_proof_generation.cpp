// E2 — §IV claim: "Generating membership proof to a group size of 2^32
// takes ≈0.5 s on an iPhone 8."
//
// Measured: mock-backend proof generation (real RLN relation evaluation —
// Merkle path hashing dominates, so cost grows with tree depth exactly as
// a real Groth16 prover's does with constraint count).
// Modelled: the paper-anchored Groth16 latency from the cost model,
// reported as the modeled_iphone8_ms counter.

#include <benchmark/benchmark.h>

#include "hash/poseidon.h"
#include "rln/group.h"
#include "rln/identity.h"
#include "rln/prover.h"
#include "zksnark/cost_model.h"

using namespace wakurln;

namespace {

void BM_ProofGeneration(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1000 + depth);
  rln::RlnGroup group(depth);
  const rln::Identity id = rln::Identity::generate(rng);
  const auto index = group.add_member(id.pk);
  for (int i = 0; i < 15; ++i) group.add_member(rln::Identity::generate(rng).pk);

  const auto keys = zksnark::MockGroth16::setup(depth, rng);
  const rln::RlnProver prover(keys.pk, id);
  const util::Bytes payload = util::to_bytes("bench message payload");

  std::uint64_t epoch = 0;
  for (auto _ : state) {
    auto signal = prover.create_signal(payload, epoch++, group, index, rng);
    benchmark::DoNotOptimize(signal);
    if (!signal) state.SkipWithError("prover refused honest witness");
  }
  state.counters["modeled_iphone8_ms"] =
      zksnark::CostModel::prove_ms(depth, zksnark::DeviceProfile::iphone8());
  state.counters["constraints"] =
      static_cast<double>(zksnark::RlnCircuit::constraint_count(depth));
}

}  // namespace

// Depth 32 corresponds to the paper's group size of 2^32.
BENCHMARK(BM_ProofGeneration)->Arg(10)->Arg(16)->Arg(20)->Arg(24)->Arg(28)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
