// E2 — §IV claim: "Generating membership proof to a group size of 2^32
// takes ≈0.5 s on an iPhone 8."
//
// Measured: mock-backend proof generation (real RLN relation evaluation —
// Merkle path hashing dominates, so cost grows with tree depth exactly as
// a real Groth16 prover's does with constraint count).
// Modelled: the paper-anchored Groth16 latency from the cost model,
// reported as the modeled_iphone8_ms metric in BENCH_proof_generation.json.

#include <cstdio>
#include <string>

#include "harness.h"
#include "hash/poseidon.h"
#include "rln/group.h"
#include "rln/identity.h"
#include "rln/prover.h"
#include "zksnark/cost_model.h"

using namespace wakurln;

int main() {
  bench::Runner runner("proof_generation");
  std::printf("E2: proof generation vs tree depth (paper §IV)\n");
  std::printf("depth 32 corresponds to the paper's group size of 2^32\n\n");

  for (const std::size_t depth : {10u, 16u, 20u, 24u, 28u, 32u}) {
    util::Rng rng(1000 + depth);
    rln::RlnGroup group(depth);
    const rln::Identity id = rln::Identity::generate(rng);
    const auto index = group.add_member(id.pk);
    for (int i = 0; i < 15; ++i) group.add_member(rln::Identity::generate(rng).pk);

    const auto keys = zksnark::MockGroth16::setup(depth, rng);
    const rln::RlnProver prover(keys.pk, id);
    const util::Bytes payload = util::to_bytes("bench message payload");

    std::uint64_t epoch = 0;
    bool ok = true;
    const std::string tag = bench::cat("d", depth);
    runner.run(
        "create_signal_" + tag,
        [&] {
          for (int i = 0; i < 5; ++i) {
            auto signal = prover.create_signal(payload, epoch++, group, index, rng);
            if (!signal) ok = false;
            bench::do_not_optimize(signal);
          }
        },
        /*reps=*/15, /*warmup=*/2, /*batch=*/5);
    if (!ok) {
      std::fprintf(stderr, "prover refused honest witness at depth %zu\n", depth);
      return 1;
    }

    runner.metric("modeled_iphone8_prove_ms_" + tag,
                  zksnark::CostModel::prove_ms(depth, zksnark::DeviceProfile::iphone8()),
                  "ms");
    runner.metric("constraints_" + tag,
                  static_cast<double>(zksnark::RlnCircuit::constraint_count(depth)),
                  "count");
  }

  std::printf("\nshape check: measured cost grows with depth exactly as the real\n"
              "prover's does with constraint count; the paper's 0.5 s anchor is the\n"
              "modeled_iphone8_prove_ms_d32 metric.\n");
  return 0;
}
