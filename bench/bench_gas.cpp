// E6 — §III claim: keeping the Merkle tree off-chain gives constant-gas
// registration/deletion and "optimiz[es] gas consumption by an order of
// magnitude" versus maintaining the tree on-chain.
//
// Sweeps group size and prints per-operation gas for both contract
// variants at the paper's deployment depth (20).

#include <cstdio>
#include <string>

#include "eth/membership_contract.h"
#include "harness.h"
#include "rln/identity.h"
#include "util/rng.h"

using namespace wakurln;

namespace {

eth::Receipt run_register(eth::Chain& chain, eth::MembershipContract& c,
                          const field::Fr& pk, std::uint64_t& now) {
  const auto tx = chain.submit(
      1, c.config().stake_wei, eth::MembershipContract::kRegisterCalldataBytes,
      [&c, pk](eth::TxContext& ctx) { c.register_member(ctx, pk); }, now);
  chain.mine_block(now += 12);
  return *chain.receipt(tx);
}

eth::Receipt run_slash(eth::Chain& chain, eth::MembershipContract& c,
                       const field::Fr& sk, std::uint64_t& now) {
  const auto tx = chain.submit(
      2, 0, eth::MembershipContract::kSlashCalldataBytes,
      [&c, sk](eth::TxContext& ctx) { c.slash(ctx, sk); }, now);
  chain.mine_block(now += 12);
  return *chain.receipt(tx);
}

}  // namespace

int main() {
  bench::Runner runner("gas");
  constexpr std::size_t kDepth = 20;
  eth::Chain chain({});
  chain.ledger().mint(1, 1'000'000'000'000ULL);
  eth::MembershipConfig cfg;
  cfg.tree_depth = kDepth;
  eth::RegistryListContract registry(chain, cfg);
  eth::OnChainTreeContract onchain(chain, cfg);
  util::Rng rng(7);
  std::uint64_t now = 0;

  std::printf("E6: registration gas vs group size, depth %zu (paper §III)\n", kDepth);
  std::printf("%12s %18s %18s %8s\n", "group size", "registry (paper)", "on-chain tree",
              "ratio");

  const std::size_t checkpoints[] = {1, 10, 100, 1000, 5000};
  std::size_t registered = 0;
  std::uint64_t last_registry_gas = 0, last_onchain_gas = 0;
  rln::Identity last_id = rln::Identity::generate(rng);
  for (const std::size_t target : checkpoints) {
    const std::size_t batch = target - registered;
    const std::string tag = bench::cat("n", target);
    runner.run(
        "register_pair_to_" + tag,
        [&] {
          while (registered < target) {
            last_id = rln::Identity::generate(rng);
            const auto r1 = run_register(chain, registry, last_id.pk, now);
            const auto r2 = run_register(chain, onchain, last_id.pk, now);
            last_registry_gas = r1.gas_used;
            last_onchain_gas = r2.gas_used;
            ++registered;
          }
        },
        /*reps=*/1, /*warmup=*/0, /*batch=*/batch == 0 ? 1 : batch);
    runner.metric("registry_gas_" + tag, static_cast<double>(last_registry_gas),
                  "gas");
    runner.metric("onchain_tree_gas_" + tag, static_cast<double>(last_onchain_gas),
                  "gas");
    std::printf("%12zu %18llu %18llu %7.1fx\n", target,
                static_cast<unsigned long long>(last_registry_gas),
                static_cast<unsigned long long>(last_onchain_gas),
                static_cast<double>(last_onchain_gas) /
                    static_cast<double>(last_registry_gas));
  }

  const auto s1 = run_slash(chain, registry, last_id.sk, now);
  const auto s2 = run_slash(chain, onchain, last_id.sk, now);
  runner.metric("registry_slash_gas", static_cast<double>(s1.gas_used), "gas");
  runner.metric("onchain_tree_slash_gas", static_cast<double>(s2.gas_used), "gas");
  std::printf("\nslashing gas: registry %llu, on-chain tree %llu (%.1fx)\n",
              static_cast<unsigned long long>(s1.gas_used),
              static_cast<unsigned long long>(s2.gas_used),
              static_cast<double>(s2.gas_used) / static_cast<double>(s1.gas_used));
  std::printf("\nshape check: registry column is CONSTANT in group size and the\n"
              "on-chain tree costs >=10x at deployment depth — the paper's\n"
              "order-of-magnitude claim.\n");
  return 0;
}
