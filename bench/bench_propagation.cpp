// E7 — §III claim: distributing messages off-chain over the gossip network
// achieves "higher message propagation speed as opposed to the on-chain
// case where messages should be mined before being visible", and saves the
// posting gas entirely.
//
// Gossip: measured first-delivery latency across the swarm.
// On-chain: inclusion latency (submit -> sealed block) on the simulated
// chain, plus the gas a sender would burn per message.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "eth/signal_board.h"
#include "harness.h"
#include "waku/harness.h"

using namespace wakurln;

namespace {

struct LatencyStats {
  double median_ms = 0, p95_ms = 0, max_ms = 0;
};

LatencyStats summarize(std::vector<double> ms) {
  LatencyStats out;
  if (ms.empty()) return out;
  std::sort(ms.begin(), ms.end());
  out.median_ms = ms[ms.size() / 2];
  out.p95_ms = ms[static_cast<std::size_t>(static_cast<double>(ms.size() - 1) * 0.95)];
  out.max_ms = ms.back();
  return out;
}

}  // namespace

int main() {
  bench::Runner runner("propagation");
  std::printf("E7: message visibility latency, gossip vs on-chain (paper §III)\n\n");
  std::printf("-- gossip path (WAKU-RLN-RELAY) --\n");
  std::printf("%8s %12s %12s %12s\n", "peers", "median", "p95", "max");

  for (const std::size_t n : {25u, 50u, 100u}) {
    const std::string tag = bench::cat("n", n);
    LatencyStats s;
    runner.run_once(
        "gossip_scenario_" + tag,
        [&] {
          waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
          cfg.node_count = n;
          cfg.seed = 1000 + n;
          waku::SimHarness world(cfg);
          world.subscribe_all("bench/prop");
          world.register_all();
          world.run_seconds(5);

          std::vector<double> latencies_ms;
          for (int msg = 0; msg < 5; ++msg) {
            world.clear_deliveries();
            const auto payload = util::to_bytes(bench::cat("prop-", msg));
            const sim::TimeUs sent_at = world.scheduler().now();
            world.node(msg % n).publish("bench/prop", payload);
            world.run_seconds(world.config().rln.epoch_period_seconds);
            for (const auto& d : world.deliveries()) {
              latencies_ms.push_back(static_cast<double>(d.at - sent_at) /
                                     sim::kUsPerMs);
            }
          }
          s = summarize(std::move(latencies_ms));
        });
    runner.metric("sim_median_latency_ms_" + tag, s.median_ms, "ms");
    runner.metric("sim_p95_latency_ms_" + tag, s.p95_ms, "ms");
    runner.metric("sim_max_latency_ms_" + tag, s.max_ms, "ms");
    std::printf("%8zu %9.1f ms %9.1f ms %9.1f ms\n", n, s.median_ms, s.p95_ms, s.max_ms);
  }

  std::printf("\n-- on-chain path (signals posted to the contract) --\n");
  std::printf("%14s %16s %14s\n", "block time", "inclusion (avg)", "gas/message");
  for (const std::uint64_t block_time : {12ull, 15ull}) {
    eth::Chain::Config ccfg;
    ccfg.block_time_seconds = block_time;
    eth::Chain chain(ccfg);
    eth::SignalBoardContract board(chain);
    util::Rng rng(3);
    double total_latency = 0;
    std::uint64_t total_gas = 0;
    const int kMessages = 40;
    std::uint64_t now = 0;
    for (int i = 0; i < kMessages; ++i) {
      // Senders submit at random offsets inside the block interval.
      const std::uint64_t submit_at = now + rng.uniform(0, block_time - 1);
      const std::uint64_t payload = 256;
      const auto tx = chain.submit(
          1, 0, eth::SignalBoardContract::calldata_bytes(payload),
          [&board, payload](eth::TxContext& ctx) { board.post(ctx, payload); },
          submit_at);
      now += block_time;
      chain.mine_block(now);
      const auto* r = chain.receipt(tx);
      total_latency += static_cast<double>(r->block_timestamp - r->submitted_at);
      total_gas += r->gas_used;
    }
    runner.metric(bench::cat("onchain_inclusion_s_bt", block_time),
                  total_latency / kMessages, "s");
    runner.metric(bench::cat("onchain_gas_per_msg_bt", block_time),
                  static_cast<double>(total_gas / kMessages), "gas");
    std::printf("%12llu s %13.1f s %14llu\n",
                static_cast<unsigned long long>(block_time),
                total_latency / kMessages,
                static_cast<unsigned long long>(total_gas / kMessages));
  }

  std::printf("\nshape check: gossip delivers in sub-second time at all sizes,\n"
              "on-chain visibility is bounded below by block production (seconds)\n"
              "and costs ~200k gas per 256 B message; off-chain messaging is free.\n");
  return 0;
}
