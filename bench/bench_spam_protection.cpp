// E8 — §I claims: RLN "controls spammers globally" where the two
// state-of-the-art defences do not: PoW is "computationally expensive
// hence not suitable for resource-constrained devices" yet cheap for
// attackers with hardware, and peer scoring "is prone to censorship and
// inexpensive attacks where millions of bots can be deployed".
//
// One bot swarm, four defences:
//   none     — open relay
//   pow      — Whisper-style PoW validator (bots own a GPU rig)
//   scoring  — GossipSub v1.1 peer scoring (bots on distinct IPs / one IP)
//   rln      — WAKU-RLN-RELAY (bots must stake; flooding leaks their keys)
//
// Reported per defence: spam that reached an average honest subscriber,
// honest-message delivery, bandwidth consumed, and the attacker's cost.

#include <cstdio>
#include <span>
#include <memory>
#include <string>
#include <vector>

#include "baselines/pow.h"
#include "harness.h"
#include "sim/topology.h"
#include "waku/harness.h"

using namespace wakurln;

namespace {

constexpr std::size_t kHonest = 20;
constexpr std::size_t kBots = 10;
constexpr int kSpamPerBot = 30;       // messages each bot pushes
constexpr int kPowBitsInSim = 12;     // real grinding kept cheap in-sim
constexpr const char* kTopic = "bench/spam";

struct Result {
  std::string name;
  double spam_per_honest_node = 0;       // distinct spam deliveries / honest node
  double honest_delivery_ratio = 0;      // of honest messages, fraction delivered
  double mbytes_total = 0;               // network bytes during the attack
  std::string attacker_cost;
};

bool is_spam(std::span<const std::uint8_t> payload) {
  return payload.size() >= 4 && payload[0] == 'S' && payload[1] == 'P';
}

// Schemes 1-3 share a raw-relay swarm; `mode` switches the defence.
Result run_relay_scheme(const std::string& name, bool use_pow, bool use_scoring,
                        bool bots_share_ip) {
  sim::Scheduler sched;
  util::Rng rng(9000 + use_pow + 2 * use_scoring + 4 * bots_share_ip);
  sim::LinkParams link;
  link.base_latency = 30 * sim::kUsPerMs;
  link.jitter = 20 * sim::kUsPerMs;
  sim::Network net(sched, rng, link);

  gossipsub::GossipSubParams params;
  params.enable_scoring = use_scoring;

  std::vector<sim::NodeId> ids;
  std::vector<std::unique_ptr<waku::WakuRelay>> relays;
  for (std::size_t i = 0; i < kHonest + kBots; ++i) {
    const auto id = net.add_node({});
    ids.push_back(id);
    relays.push_back(std::make_unique<waku::WakuRelay>(id, net, params));
  }
  sim::connect_ring_plus_random(net, ids, 3, rng);

  std::vector<std::vector<util::Bytes>> inbox(kHonest);
  for (std::size_t i = 0; i < kHonest + kBots; ++i) {
    relays[i]->start();
    if (use_pow) {
      relays[i]->router().set_validator(kTopic,
                                        baselines::make_pow_validator(kPowBitsInSim));
    }
    if (use_scoring && bots_share_ip && i >= kHonest) {
      // Honest routers observe all bots behind one IP (naive botnet).
      for (std::size_t h = 0; h < kHonest; ++h) {
        relays[h]->router().set_peer_ip(ids[i], 0xbadbeef);
      }
    }
  }
  for (std::size_t i = 0; i < kHonest; ++i) {
    relays[i]->subscribe(kTopic, [&inbox, i](const gossipsub::TopicId&,
                                             const util::SharedBytes& payload) {
      inbox[i].push_back(payload.to_vector());
    });
  }
  sched.run_for(5 * sim::kUsPerSecond);

  const std::uint64_t bytes_before = net.stats().bytes_sent;

  // Attack: bots interleave spam over 30 s; honest node 0 publishes one
  // message per 10 s.
  int honest_sent = 0;
  for (int second = 0; second < 30; ++second) {
    if (second % 10 == 0) {
      util::Bytes payload = util::to_bytes(bench::cat("HONEST-", second));
      if (use_pow) payload = baselines::pow_seal(payload, kPowBitsInSim).serialize();
      relays[0]->publish(kTopic, std::move(payload));
      ++honest_sent;
    }
    // kSpamPerBot messages spread over the attack: one per bot per second.
    if (second < kSpamPerBot) {
      for (std::size_t b = 0; b < kBots; ++b) {
        util::Bytes payload =
            util::to_bytes(bench::cat("SPAM-", b, "-", second));
        if (use_pow) {
          payload = baselines::pow_seal(payload, kPowBitsInSim).serialize();
        }
        relays[kHonest + b]->publish(kTopic, std::move(payload),
                                     /*apply_validator=*/false);
      }
    }
    sched.run_for(sim::kUsPerSecond);
  }
  sched.run_for(10 * sim::kUsPerSecond);

  Result r;
  r.name = name;
  std::size_t spam_deliveries = 0, honest_deliveries = 0;
  for (std::size_t i = 0; i < kHonest; ++i) {
    for (const auto& payload : inbox[i]) {
      // Unwrap PoW envelopes for classification.
      util::Bytes content = payload;
      if (use_pow) {
        if (const auto env = baselines::PowEnvelope::deserialize(payload)) {
          content = env->payload;
        }
      }
      if (is_spam(content)) {
        ++spam_deliveries;
      } else {
        ++honest_deliveries;
      }
    }
  }
  r.spam_per_honest_node = static_cast<double>(spam_deliveries) / kHonest;
  r.honest_delivery_ratio =
      honest_sent == 0
          ? 0
          : static_cast<double>(honest_deliveries) / (honest_sent * kHonest);
  r.mbytes_total = static_cast<double>(net.stats().bytes_sent - bytes_before) / 1e6;
  return r;
}

Result run_rln_scheme() {
  waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
  cfg.node_count = kHonest + kBots;
  cfg.seed = 4242;
  waku::SimHarness world(cfg);
  world.subscribe_all(kTopic);
  world.register_all();
  world.run_seconds(5);

  const std::uint64_t bytes_before = world.network().stats().bytes_sent;
  const std::uint64_t burnt_before = world.chain().ledger().burnt_total();

  int honest_sent = 0;
  for (int second = 0; second < 30; ++second) {
    if (second % 10 == 0) {
      world.node(0).publish(kTopic, util::to_bytes(bench::cat("HONEST-", second)));
      ++honest_sent;
    }
    if (second < kSpamPerBot) {
      for (std::size_t b = 0; b < kBots; ++b) {
        world.node(kHonest + b).publish_unchecked(
            kTopic,
            util::to_bytes(bench::cat("SPAM-", b, "-", second)));
      }
    }
    world.run_seconds(1);
  }
  world.run_seconds(15);  // slash txs mined

  Result r;
  r.name = "rln (this paper)";
  std::size_t spam_deliveries = 0, honest_deliveries = 0;
  for (const auto& d : world.deliveries()) {
    if (d.node_index >= kHonest) continue;  // count honest victims only
    if (is_spam(d.payload)) {
      ++spam_deliveries;
    } else {
      ++honest_deliveries;
    }
  }
  r.spam_per_honest_node = static_cast<double>(spam_deliveries) / kHonest;
  r.honest_delivery_ratio =
      static_cast<double>(honest_deliveries) / (honest_sent * kHonest);
  r.mbytes_total =
      static_cast<double>(world.network().stats().bytes_sent - bytes_before) / 1e6;
  const auto burnt = world.chain().ledger().burnt_total() - burnt_before;
  std::size_t slashed = 0;
  for (std::size_t b = 0; b < kBots; ++b) {
    if (!world.contract().is_active(world.node(kHonest + b).identity().pk)) ++slashed;
  }
  r.attacker_cost = std::to_string(kBots) + " stakes locked, " +
                    std::to_string(slashed) + "/" + std::to_string(kBots) +
                    " bots slashed, " + std::to_string(burnt) + " wei burnt";
  return r;
}

void print(const Result& r, int spam_sent_per_bot) {
  std::printf("%-22s %16.1f %14.0f%% %11.2f MB  %s\n", r.name.c_str(),
              r.spam_per_honest_node, r.honest_delivery_ratio * 100, r.mbytes_total,
              r.attacker_cost.c_str());
  (void)spam_sent_per_bot;
}

}  // namespace

int main() {
  bench::Runner runner("spam_protection");
  std::printf("E8: bot swarm (%zu bots x %d msgs) vs %zu honest subscribers (paper §I)\n\n",
              kBots, kSpamPerBot, kHonest);
  std::printf("%-22s %16s %15s %13s  %s\n", "defence", "spam/honest node",
              "honest deliv.", "traffic", "attacker cost");

  const auto record = [&runner](const std::string& tag, const Result& r) {
    runner.metric("spam_per_honest_node_" + tag, r.spam_per_honest_node, "msgs");
    runner.metric("honest_delivery_pct_" + tag, r.honest_delivery_ratio * 100, "%");
    runner.metric("traffic_mb_" + tag, r.mbytes_total, "MB");
  };

  Result none;
  runner.run_once(
      "scenario_none", [&] { none = run_relay_scheme("none", false, false, false); });
  none.attacker_cost = "none";
  record("none", none);
  print(none, kSpamPerBot);

  Result pow;
  runner.run_once(
      "scenario_pow",
      [&] { pow = run_relay_scheme("pow (EIP-627)", true, false, false); });
  {
    const double rig_s = baselines::expected_seal_seconds(
        24, zksnark::DeviceProfile::gpu_rig());
    const double phone_s = baselines::expected_seal_seconds(
        24, zksnark::DeviceProfile::iphone8());
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%.3f s/msg on rig at 24-bit target (phones: %.1f s/msg)",
                  rig_s * kSpamPerBot * kBots / (kSpamPerBot * kBots), phone_s);
    pow.attacker_cost = buf;
  }
  record("pow", pow);
  print(pow, kSpamPerBot);

  Result scoring;
  runner.run_once(
      "scenario_scoring_distinct_ips",
      [&] { scoring = run_relay_scheme("scoring (distinct IPs)", false, true, false); });
  scoring.attacker_cost = "bot identities are free";
  record("scoring_distinct_ips", scoring);
  print(scoring, kSpamPerBot);

  Result scoring_ip;
  runner.run_once(
      "scenario_scoring_shared_ip",
      [&] { scoring_ip = run_relay_scheme("scoring (shared IP)", false, true, true); });
  scoring_ip.attacker_cost = "needs 1 IP per bot to evade";
  record("scoring_shared_ip", scoring_ip);
  print(scoring_ip, kSpamPerBot);

  Result rln;
  runner.run_once(
      "scenario_rln", [&] { rln = run_rln_scheme(); });
  record("rln", rln);
  print(rln, kSpamPerBot);

  std::printf("\nshape check (paper §I): 'none', 'pow' (attacker owns hardware) and\n"
              "'scoring' (distinct IPs) leak the full flood to every subscriber;\n"
              "RLN caps deliverable spam at ~1 message per bot per epoch and\n"
              "converts the flood into slashed stakes.\n");
  return 0;
}
