// Ablation — acceptable-root window size (the §III group-synchronisation
// design point): a publisher whose proof references a slightly stale tree
// root must still be routable, or registration churn silently censors
// in-flight messages. A window of 1 accepts only the newest root; larger
// windows trade a little forgery surface (only against roots the group
// actually had) for robustness to sync lag.

#include <cstdio>
#include <string>

#include "harness.h"
#include "rln/prover.h"
#include "waku/harness.h"

using namespace wakurln;

namespace {

// Returns how many of `kMessages` proofs made against the *pre-churn* root
// are still delivered after `churn` registrations land in one block.
double delivery_after_churn(std::size_t window, int churn) {
  waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
  cfg.node_count = 10;
  cfg.rln.acceptable_root_window = window;
  // Long epochs so that the churn delay (one block per registration) stays
  // inside the epoch window — isolating ROOT staleness from epoch expiry.
  cfg.rln.epoch_period_seconds = 60;
  cfg.rln.max_delay_seconds = 120;
  cfg.seed = 8000 + window * 100 + churn;
  waku::SimHarness world(cfg);
  world.subscribe_all("abl/window");
  world.register_all();
  world.run_seconds(3);

  // Craft one in-flight signal against the current (soon stale) root.
  // (A single message: several signals in one epoch would collide on the
  // internal nullifier and measure slashing, not sync tolerance.)
  auto& sender = world.node(0);
  rln::RlnProver prover(world.crs().pk, sender.identity());
  const auto index = sender.group().index_of(sender.identity().pk);
  util::Rng prng(19);
  constexpr int kMessages = 1;
  std::vector<std::pair<util::Bytes, rln::RlnSignal>> prepared;
  for (int i = 0; i < kMessages; ++i) {
    const util::Bytes payload = util::to_bytes(bench::cat("inflight-", i));
    const auto signal = prover.create_signal(payload, sender.current_epoch(),
                                             sender.group(), *index, prng, 0);
    prepared.emplace_back(payload, *signal);
  }

  // Churn: `churn` new members register; each lands in its own block so
  // each advances the acceptable-root deque by one entry.
  util::Rng newcomer_rng(29);
  for (int c = 0; c < churn; ++c) {
    const auto id = rln::Identity::generate(newcomer_rng);
    world.chain().ledger().mint(90'000 + c, 10'000'000);
    world.chain().submit(
        90'000 + c, world.contract().config().stake_wei,
        eth::MembershipContract::kRegisterCalldataBytes,
        [&world, pk = id.pk](eth::TxContext& ctx) {
          world.contract().register_member(ctx, pk);
        },
        world.scheduler().now() / sim::kUsPerSecond);
    world.run_seconds(world.chain().config().block_time_seconds + 1);
  }

  // Publish the stale-root messages now (bypassing the sender's own
  // validation so the *network's* policy is what is measured).
  std::size_t delivered = 0;
  for (const auto& [payload, signal] : prepared) {
    world.clear_deliveries();
    world.relay(0).publish("abl/window",
                           waku::WakuRlnRelay::encode_envelope(signal, payload),
                           /*apply_validator=*/false);
    world.run_seconds(5);
    std::vector<bool> seen(world.size(), false);
    for (const auto& d : world.deliveries()) {
      if (d.node_index != 0 && d.payload == payload && !seen[d.node_index]) {
        seen[d.node_index] = true;
        ++delivered;
      }
    }
  }
  return static_cast<double>(delivered) /
         static_cast<double>(kMessages * (world.size() - 1));
}

}  // namespace

int main() {
  bench::Runner runner("ablation_root_window");
  std::printf("ablation: acceptable-root window vs registration churn (paper §III)\n\n");
  std::printf("%14s", "churn (blocks)");
  const std::size_t windows[] = {1, 2, 5, 8};
  for (const auto w : windows) std::printf("   window=%zu", w);
  std::printf("\n");
  for (const int churn : {0, 1, 3, 6}) {
    // Run the whole row first: Runner::run_once logs a progress line per
    // scenario, which would otherwise interleave with the table cells.
    double delivery[std::size(windows)] = {};
    for (std::size_t i = 0; i < std::size(windows); ++i) {
      const std::string tag = bench::cat("w", windows[i], "_churn", churn);
      runner.run_once("scenario_" + tag,
                      [&] { delivery[i] = delivery_after_churn(windows[i], churn); });
      runner.metric("delivery_pct_" + tag, delivery[i] * 100, "%");
    }
    std::printf("%14d", churn);
    for (const double d : delivery) std::printf("   %7.0f%% ", d * 100);
    std::printf("\n");
  }
  std::printf("\nshape check: a window of 1 censors any message proved before the\n"
              "latest registration; window >= churn depth keeps delivery at 100%%.\n"
              "The cost is bounded: only roots the group historically had are ever\n"
              "accepted, so no forgery surface opens up.\n");
  return 0;
}
