// E5 — §IV claim: "A membership tree with depth 20 requires 67 MB storage
// which can be optimized to 0.128 KB using [9]."
//
// Compares the fully materialised per-node tree against the append-only
// frontier accumulator (reference [9]'s storage optimisation) across
// depths, and verifies at a small scale that both structures agree on the
// root (so the saving is free of semantic cost for root tracking).

#include <cstdio>
#include <string>

#include "harness.h"
#include "merkle/frontier.h"
#include "merkle/merkle_tree.h"
#include "util/rng.h"

using namespace wakurln;

int main() {
  bench::Runner runner("merkle_storage");
  std::printf("E5: membership tree storage, full vs frontier (paper §IV)\n");
  std::printf("%6s %18s %18s %14s\n", "depth", "full tree (calc)", "frontier (meas)",
              "reduction");
  util::Rng rng(5);
  for (std::size_t depth : {10u, 16u, 20u, 24u, 32u}) {
    const std::string tag = bench::cat("d", depth);
    const std::uint64_t full = merkle::MerkleTree::full_storage_bytes(depth);
    merkle::MerkleFrontier frontier(depth);
    runner.run(
        "frontier_append_" + tag,
        [&] {
          for (int i = 0; i < 64; ++i) frontier.append(field::Fr::random(rng));
        },
        /*reps=*/1, /*warmup=*/0, /*batch=*/64);
    const std::size_t small = frontier.storage_bytes();
    runner.metric("full_tree_bytes_" + tag, static_cast<double>(full), "bytes");
    runner.metric("frontier_bytes_" + tag, static_cast<double>(small), "bytes");
    std::printf("%6zu %15.2f MB %15zu B %13.0fx\n", depth,
                static_cast<double>(full) / 1e6, small,
                static_cast<double>(full) / static_cast<double>(small));
  }

  // Root-equivalence spot check at depth 20.
  merkle::MerkleTree tree(20);
  merkle::MerkleFrontier frontier(20);
  util::Rng rng2(6);
  for (int i = 0; i < 500; ++i) {
    const field::Fr leaf = field::Fr::random(rng2);
    tree.append(leaf);
    frontier.append(leaf);
  }
  runner.metric("root_identical_after_500", tree.root() == frontier.root() ? 1 : 0,
                "bool");
  std::printf("\nroot equivalence after 500 appends at depth 20: %s\n",
              tree.root() == frontier.root() ? "IDENTICAL" : "MISMATCH");
  std::printf("measured full-tree allocation for those 500 members: %.2f MB\n",
              static_cast<double>(tree.storage_bytes()) / 1e6);
  std::printf("\npaper anchors: 67 MB full tree at depth 20 -> 0.128 KB optimised.\n"
              "(our frontier keeps depth+1 nodes ~= 0.7 KB; same order as [9],\n"
              "which additionally prunes interior bookkeeping)\n");
  return 0;
}
