// Ablation — messages-per-epoch rate k (extension of the paper's
// one-per-epoch scheme; DESIGN.md §3 shape expectations).
//
// Trade-off under study: raising k gives honest members more throughput
// but linearly raises the spam an attacker can deliver *per stake* before
// slashing, and grows the nullifier map. This quantifies the §III design
// point that the paper's T (epoch length) and rate together set the
// network-wide spam exposure ceiling.

#include <cstdio>
#include <string>

#include "harness.h"
#include "waku/harness.h"

using namespace wakurln;

int main() {
  bench::Runner runner("ablation_rate");
  std::printf("ablation: messages-per-epoch rate k (paper scheme is k = 1)\n\n");
  std::printf("%6s %18s %20s %20s %14s\n", "k", "honest msgs/min", "spam delivered/bot",
              "bots slashed", "nmap bytes");

  for (const std::uint64_t k : {1ull, 2ull, 4ull, 8ull}) {
    int honest_sent = 0;
    std::size_t spam_delivered = 0, slashed = 0, nmap_bytes = 0;
    const std::string tag = bench::cat("k", k);
    runner.run_once(
        "scenario_" + tag,
        [&] {
          waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
          cfg.node_count = 12;
          cfg.rln.messages_per_epoch = k;
          cfg.rln.epoch_period_seconds = 10;
          cfg.seed = 7000 + k;
          waku::SimHarness world(cfg);
          world.subscribe_all("abl/rate");
          world.register_all();
          world.run_seconds(3);

          // Honest throughput: node 0 publishes as fast as allowed for 60 s.
          honest_sent = 0;
          for (int second = 0; second < 60; ++second) {
            while (world.node(0).publish(
                       "abl/rate",
                       util::to_bytes(bench::cat("h", second, "-", honest_sent))) ==
                   waku::WakuRlnRelay::PublishOutcome::kPublished) {
              ++honest_sent;
            }
            world.run_seconds(1);
          }

          // Attack phase: two bots flood 20 messages each inside one epoch. A
          // smart bot first fills its k legitimate slots, then keeps going with
          // a modified client (slot reuse → double-signals).
          const std::size_t bots[] = {10, 11};
          for (int i = 0; i < 20; ++i) {
            for (const std::size_t b : bots) {
              const auto payload = util::to_bytes(bench::cat("SPAM-", b, "-", i));
              if (world.node(b).publish("abl/rate", payload) !=
                  waku::WakuRlnRelay::PublishOutcome::kPublished) {
                world.node(b).publish_unchecked("abl/rate", payload);
              }
            }
          }
          world.run_seconds(30);

          spam_delivered = 0;
          for (const auto& d : world.deliveries()) {
            if (d.node_index < 10 && d.payload.size() > 4 && d.payload[0] == 'S') {
              ++spam_delivered;
            }
          }
          slashed = 0;
          for (const std::size_t b : bots) {
            if (!world.contract().is_active(world.node(b).identity().pk)) ++slashed;
          }
          nmap_bytes = world.node(0).nullifier_map_bytes();
        });
    runner.metric("honest_msgs_per_min_" + tag, honest_sent, "msgs");
    runner.metric("spam_per_bot_" + tag,
                  static_cast<double>(spam_delivered) / 10.0 / 2.0, "msgs");
    runner.metric("bots_slashed_" + tag, static_cast<double>(slashed), "count");
    runner.metric("nullifier_map_bytes_" + tag, static_cast<double>(nmap_bytes),
                  "bytes");
    std::printf("%6llu %18.1f %20.1f %17zu / 2 %14zu\n",
                static_cast<unsigned long long>(k), honest_sent / 1.0,
                static_cast<double>(spam_delivered) / 10.0 / 2.0, slashed, nmap_bytes);
  }

  std::printf("\nshape check: honest throughput and per-stake spam exposure both\n"
              "scale ~linearly with k; slashing still catches every violator. The\n"
              "paper's k = 1 minimises spam exposure per registered identity.\n");
  return 0;
}
