// E10 — §II/§IV claims: "economic incentives are guaranteed
// cryptographically via secret sharing": spammers are financially
// punished (stake burnt) and those who find spammers are rewarded.
//
// Sweeps the number of simultaneous spammers and prints the resulting
// money flow plus detection latency.

#include <cstdio>
#include <string>

#include "harness.h"
#include "waku/harness.h"

using namespace wakurln;

int main() {
  bench::Runner runner("slashing_economics");
  std::printf("E10: slashing economics under concurrent spammers (paper §II)\n\n");
  std::printf("%10s %10s %14s %14s %14s %16s\n", "spammers", "slashed", "burnt (wei)",
              "rewards (wei)", "per-slasher", "detect latency");

  for (const std::size_t spammers : {1u, 2u, 4u, 8u}) {
    std::size_t slashed = 0, rewardees = 0;
    std::uint64_t rewards = 0, burnt = 0;
    double detect_latency_s = 0;
    const std::string tag = bench::cat("s", spammers);
    runner.run_once(
        "scenario_" + tag,
        [&] {
          waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
          cfg.node_count = 16;
          cfg.seed = 500 + spammers;
          waku::SimHarness world(cfg);
          world.subscribe_all("bench/econ");
          world.register_all();
          world.run_seconds(3);

          const sim::TimeUs attack_at = world.scheduler().now();
          for (std::size_t s = 0; s < spammers; ++s) {
            world.node(s).publish_unchecked("bench/econ",
                                            util::to_bytes(bench::cat("a", s)));
            world.node(s).publish_unchecked("bench/econ",
                                            util::to_bytes(bench::cat("b", s)));
          }
          // Find when the first double-signal was observed (poll in 100 ms
          // steps).
          sim::TimeUs detected_at = 0;
          for (int step = 0; step < 600 && detected_at == 0; ++step) {
            world.run_ms(100);
            if (world.aggregate_stats().double_signals > 0) {
              detected_at = world.scheduler().now();
            }
          }
          world.run_seconds(30);  // mine all slash txs

          slashed = 0;
          for (std::size_t s = 0; s < spammers; ++s) {
            if (!world.contract().is_active(world.node(s).identity().pk)) ++slashed;
          }
          rewards = 0;
          rewardees = 0;
          for (std::size_t i = 0; i < world.size(); ++i) {
            const auto bal = world.chain().ledger().balance_of(world.account_of(i));
            const std::uint64_t baseline =
                world.config().initial_balance_wei - world.config().stake_wei;
            if (bal > baseline) {
              rewards += bal - baseline;
              ++rewardees;
            }
          }
          burnt = world.chain().ledger().burnt_total();
          detect_latency_s =
              detected_at > attack_at
                  ? static_cast<double>(detected_at - attack_at) / sim::kUsPerSecond
                  : 0.0;
        });
    runner.metric("slashed_" + tag, static_cast<double>(slashed), "count");
    runner.metric("burnt_wei_" + tag, static_cast<double>(burnt), "wei");
    runner.metric("rewards_wei_" + tag, static_cast<double>(rewards), "wei");
    runner.metric("detect_latency_s_" + tag, detect_latency_s, "s");
    std::printf("%10zu %10zu %14llu %14llu %14llu %13.1f s\n", spammers, slashed,
                static_cast<unsigned long long>(burnt),
                static_cast<unsigned long long>(rewards),
                static_cast<unsigned long long>(rewardees ? rewards / rewardees : 0),
                detect_latency_s);
  }

  std::printf("\nshape check: every spammer loses the full stake; half is burnt and\n"
              "half pays the first slasher; detection happens within one gossip\n"
              "round-trip (sub-second), punishment lands at the next block.\n");
  return 0;
}
