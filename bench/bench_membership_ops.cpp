// E14 — §III claim: the off-chain-tree design gives "constant complexity
// registration and deletion operations (as opposed to logarithmic
// complexity in on-chain tree storage)".
//
// Contract-side: storage writes per operation for both variants.
// Peer-side: measured local tree-update time per registration event as the
// group grows (the O(log n) work every peer does off-chain instead).

#include <cstdio>
#include <string>

#include "eth/membership_contract.h"
#include "harness.h"
#include "rln/group.h"
#include "rln/identity.h"
#include "util/rng.h"

using namespace wakurln;

int main() {
  bench::Runner runner("membership_ops");
  std::printf("E14: membership operation complexity (paper §III)\n\n");

  // Contract storage-write counts (gas-visible complexity).
  std::printf("-- contract storage writes per registration --\n");
  std::printf("%14s %22s %22s\n", "tree depth", "registry list (paper)", "on-chain tree");
  for (const std::size_t depth : {10u, 16u, 20u, 24u, 32u}) {
    // Registry: pk slot + counter. On-chain tree: leaf + one node per level.
    std::printf("%14zu %22s %19zu\n", depth, "2 (constant)", 1 + depth);
  }

  // Peer-side local tree maintenance (what replaces the on-chain work).
  std::printf("\n-- peer-side local tree insert time as the group grows --\n");
  std::printf("%14s %16s\n", "group size", "insert (us)");
  util::Rng rng(13);
  rln::RlnGroup group(20);
  const std::size_t checkpoints[] = {100, 1000, 5000, 20000};
  std::size_t added = 0;
  for (const std::size_t target : checkpoints) {
    const std::size_t batch = target - added;
    const auto& s = runner.run(
        bench::cat("tree_insert_at_n", target),
        [&] {
          while (added < target) {
            group.add_member(field::Fr::random(rng));
            ++added;
          }
        },
        /*reps=*/1, /*warmup=*/0, /*batch=*/batch);
    std::printf("%14zu %16.1f\n", target, s.median_ns / 1000.0);
  }

  std::printf("\nshape check: contract-side cost is flat for the registry design and\n"
              "linear in depth for the on-chain tree; the off-chain insert is\n"
              "~1 ms of Poseidon hashing per event, independent of group size —\n"
              "the work the paper's design moves from gas into cheap local compute.\n");
  return 0;
}
