// E1 — Figure 1 of the paper: the full WAKU-RLN-RELAY pipeline as one
// timed scenario. Registration (stake on the contract), group sync via
// contract events, rate-limited anonymous publishing, routing with RLN
// verification, spam detection, key reconstruction, and slashing — with
// the wall-clock of each phase in simulated time.

#include <cstdio>

#include "harness.h"
#include "waku/harness.h"

using namespace wakurln;

namespace {
double sim_s(sim::TimeUs t) { return static_cast<double>(t) / sim::kUsPerSecond; }
}  // namespace

int main() {
  bench::Runner runner("end_to_end");
  std::printf("E1: end-to-end pipeline timeline (paper Fig. 1)\n\n");
  waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
  cfg.node_count = 20;
  waku::SimHarness world(cfg);
  world.subscribe_all("e2e/topic");

  std::printf("%10s  %s\n", "t (sim)", "event");
  std::printf("%9.1fs  %zu peers online, contract deployed, CRS distributed\n",
              sim_s(world.scheduler().now()), world.size());

  for (std::size_t i = 0; i < world.size(); ++i) {
    world.node(i).request_registration();
  }
  std::printf("%9.1fs  %zu registration txs submitted (stake %llu wei each)\n",
              sim_s(world.scheduler().now()), world.size(),
              static_cast<unsigned long long>(world.config().stake_wei));

  runner.run_once(
      "registration_to_sync",
      [&] { world.run_seconds(world.chain().config().block_time_seconds + 2); });
  std::printf("%9.1fs  block %llu sealed: %llu members, every peer's tree synced\n",
              sim_s(world.scheduler().now()),
              static_cast<unsigned long long>(world.chain().height()),
              static_cast<unsigned long long>(world.contract().member_count()));

  const auto payload = util::to_bytes("figure-1 message");
  const sim::TimeUs pub_at = world.scheduler().now();
  world.node(3).publish("e2e/topic", payload);
  runner.run_once("publish_propagation", [&] { world.run_seconds(5); });
  std::printf("%9.1fs  anonymous publish delivered to %zu/%zu peers (%.0f ms spread)\n",
              sim_s(world.scheduler().now()), world.nodes_delivered(payload),
              world.size(),
              world.deliveries().empty()
                  ? 0.0
                  : static_cast<double>(world.deliveries().back().at - pub_at) /
                        sim::kUsPerMs);

  world.node(7).publish_unchecked("e2e/topic", util::to_bytes("spam one"));
  world.node(7).publish_unchecked("e2e/topic", util::to_bytes("spam two"));
  const sim::TimeUs spam_at = world.scheduler().now();
  std::printf("%9.1fs  node 7 double-signals within one epoch\n", sim_s(spam_at));

  // Advance until detection.
  runner.run_once("double_signal_detection", [&] {
    while (world.aggregate_stats().double_signals == 0) world.run_ms(50);
  });
  std::printf("%9.1fs  routers reconstruct node 7's sk from the two shares (+%.2f s)\n",
              sim_s(world.scheduler().now()),
              sim_s(world.scheduler().now() - spam_at));

  while (world.contract().is_active(world.node(7).identity().pk)) world.run_ms(200);
  std::printf("%9.1fs  slash tx mined: member removed, %llu wei burnt, reward paid\n",
              sim_s(world.scheduler().now()),
              static_cast<unsigned long long>(world.chain().ledger().burnt_total()));

  world.run_seconds(3);
  const auto stats = world.aggregate_stats();
  runner.metric("published", static_cast<double>(stats.published), "msgs");
  runner.metric("accepted", static_cast<double>(stats.accepted), "msgs");
  runner.metric("double_signals", static_cast<double>(stats.double_signals), "count");
  runner.metric("slashes_submitted", static_cast<double>(stats.slashes_submitted),
                "count");
  runner.metric("stake_burnt", static_cast<double>(world.chain().ledger().burnt_total()),
                "wei");
  std::printf("\npipeline totals: published=%llu accepted=%llu double_signals=%llu "
              "slashes=%llu\n",
              static_cast<unsigned long long>(stats.published),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.double_signals),
              static_cast<unsigned long long>(stats.slashes_submitted));
  std::printf("every stage of Fig. 1 — registration, sync, publish, route+verify,\n"
              "detect, slash — executed against real module boundaries.\n");
  return 0;
}
