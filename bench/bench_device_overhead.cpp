// E9 — §I/§IV claims: WAKU-RLN-RELAY's "light computational overhead makes
// it suitable for resource-limited environments", unlike PoW where pricing
// out attackers prices out phones first.
//
// Per-message cost table across device classes: PoW sealing time at
// increasing difficulty vs the (modelled) RLN proving cost and the
// verification cost a routing peer pays.

#include <chrono>
#include <cstdio>

#include "baselines/pow.h"
#include "rln/group.h"
#include "rln/identity.h"
#include "rln/prover.h"
#include "zksnark/cost_model.h"

using namespace wakurln;

int main() {
  std::printf("E9: per-message sender cost by device class (paper §I/§IV)\n\n");

  std::printf("-- PoW sealing time (expected), seconds per message --\n");
  std::printf("%12s", "difficulty");
  for (const auto& dev : zksnark::DeviceProfile::all()) {
    std::printf(" %12s", dev.name.c_str());
  }
  std::printf("\n");
  for (const int bits : {16, 20, 24, 28}) {
    std::printf("%9d bit", bits);
    for (const auto& dev : zksnark::DeviceProfile::all()) {
      std::printf(" %12.4f", baselines::expected_seal_seconds(bits, dev));
    }
    std::printf("\n");
  }

  std::printf("\n-- RLN cost (modelled real Groth16, depth-32 group = 2^32 members) --\n");
  std::printf("%12s", "");
  for (const auto& dev : zksnark::DeviceProfile::all()) {
    std::printf(" %12s", dev.name.c_str());
  }
  std::printf("\n%12s", "prove (s)");
  for (const auto& dev : zksnark::DeviceProfile::all()) {
    std::printf(" %12.4f", zksnark::CostModel::prove_ms(32, dev) / 1000.0);
  }
  std::printf("\n%12s", "verify (s)");
  for (const auto& dev : zksnark::DeviceProfile::all()) {
    std::printf(" %12.4f", zksnark::CostModel::verify_ms(dev) / 1000.0);
  }

  // Measured cost of this implementation's full signal pipeline (mock
  // proof backend) for context.
  util::Rng rng(11);
  rln::RlnGroup group(20);
  const rln::Identity id = rln::Identity::generate(rng);
  const auto index = group.add_member(id.pk);
  const auto keys = zksnark::MockGroth16::setup(20, rng);
  const rln::RlnProver prover(keys.pk, id);
  const rln::RlnVerifier verifier(keys.vk);
  const util::Bytes payload = util::to_bytes("device overhead probe");

  const int kIters = 200;
  auto t0 = std::chrono::steady_clock::now();
  std::optional<rln::RlnSignal> signal;
  for (int i = 0; i < kIters; ++i) {
    signal = prover.create_signal(payload, i, group, index, rng);
  }
  auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    (void)verifier.verify(payload, *signal);
  }
  auto t2 = std::chrono::steady_clock::now();
  const double prove_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / kIters;
  const double verify_us =
      std::chrono::duration<double, std::micro>(t2 - t1).count() / kIters;
  std::printf("\n\n-- measured on this host (mock backend, depth 20) --\n");
  std::printf("signal creation: %.1f us/msg, verification: %.1f us/msg\n", prove_us,
              verify_us);

  std::printf("\nshape check: RLN's sender cost is CONSTANT in difficulty-space and\n"
              "~0.5 s even on a phone (paper anchor), while PoW at an\n"
              "attacker-deterring 28-bit target costs a phone >2 minutes per\n"
              "message. Router-side: one RLN verification ≈30 ms, one PoW check\n"
              "is 1 hash — both fine; only PoW's *sender* economics break.\n");
  return 0;
}
