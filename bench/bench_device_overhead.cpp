// E9 — §I/§IV claims: WAKU-RLN-RELAY's "light computational overhead makes
// it suitable for resource-limited environments", unlike PoW where pricing
// out attackers prices out phones first.
//
// Per-message cost table across device classes: PoW sealing time at
// increasing difficulty vs the (modelled) RLN proving cost and the
// verification cost a routing peer pays.

#include <cstdio>

#include "baselines/pow.h"
#include "harness.h"
#include "rln/group.h"
#include "rln/identity.h"
#include "rln/prover.h"
#include "zksnark/cost_model.h"

using namespace wakurln;

int main() {
  bench::Runner runner("device_overhead");
  std::printf("E9: per-message sender cost by device class (paper §I/§IV)\n\n");

  std::printf("-- PoW sealing time (expected), seconds per message --\n");
  std::printf("%12s", "difficulty");
  for (const auto& dev : zksnark::DeviceProfile::all()) {
    std::printf(" %12s", dev.name.c_str());
  }
  std::printf("\n");
  for (const int bits : {16, 20, 24, 28}) {
    std::printf("%9d bit", bits);
    for (const auto& dev : zksnark::DeviceProfile::all()) {
      std::printf(" %12.4f", baselines::expected_seal_seconds(bits, dev));
    }
    std::printf("\n");
  }

  std::printf("\n-- RLN cost (modelled real Groth16, depth-32 group = 2^32 members) --\n");
  std::printf("%12s", "");
  for (const auto& dev : zksnark::DeviceProfile::all()) {
    std::printf(" %12s", dev.name.c_str());
  }
  std::printf("\n%12s", "prove (s)");
  for (const auto& dev : zksnark::DeviceProfile::all()) {
    std::printf(" %12.4f", zksnark::CostModel::prove_ms(32, dev) / 1000.0);
  }
  std::printf("\n%12s", "verify (s)");
  for (const auto& dev : zksnark::DeviceProfile::all()) {
    std::printf(" %12.4f", zksnark::CostModel::verify_ms(dev) / 1000.0);
  }

  // Measured cost of this implementation's full signal pipeline (mock
  // proof backend) for context.
  util::Rng rng(11);
  rln::RlnGroup group(20);
  const rln::Identity id = rln::Identity::generate(rng);
  const auto index = group.add_member(id.pk);
  const auto keys = zksnark::MockGroth16::setup(20, rng);
  const rln::RlnProver prover(keys.pk, id);
  const rln::RlnVerifier verifier(keys.vk);
  const util::Bytes payload = util::to_bytes("device overhead probe");

  std::optional<rln::RlnSignal> signal;
  std::uint64_t epoch = 0;
  const auto& prove_stats = runner.run(
      "create_signal",
      [&] {
        for (int i = 0; i < 10; ++i) {
          signal = prover.create_signal(payload, epoch++, group, index, rng);
          bench::do_not_optimize(signal);
        }
      },
      /*reps=*/20, /*warmup=*/3, /*batch=*/10);
  const auto& verify_stats = runner.run(
      "verify_signal",
      [&] {
        for (int i = 0; i < 50; ++i) {
          bool ok = verifier.verify(payload, *signal);
          bench::do_not_optimize(ok);
        }
      },
      /*reps=*/20, /*warmup=*/3, /*batch=*/50);
  const double prove_us = prove_stats.median_ns / 1000.0;
  const double verify_us = verify_stats.median_ns / 1000.0;
  std::printf("\n\n-- measured on this host (mock backend, depth 20) --\n");
  std::printf("signal creation: %.1f us/msg, verification: %.1f us/msg\n", prove_us,
              verify_us);

  for (const auto& dev : zksnark::DeviceProfile::all()) {
    runner.metric("modeled_prove_s_" + dev.name,
                  zksnark::CostModel::prove_ms(32, dev) / 1000.0, "s");
    runner.metric("modeled_verify_s_" + dev.name,
                  zksnark::CostModel::verify_ms(dev) / 1000.0, "s");
  }

  std::printf("\nshape check: RLN's sender cost is CONSTANT in difficulty-space and\n"
              "~0.5 s even on a phone (paper anchor), while PoW at an\n"
              "attacker-deterring 28-bit target costs a phone >2 minutes per\n"
              "message. Router-side: one RLN verification ≈30 ms, one PoW check\n"
              "is 1 hash — both fine; only PoW's *sender* economics break.\n");
  return 0;
}
