// E11 — §III claim: routers drop messages whose epoch differs from the
// local epoch by more than Thr = D/T, which "prevents a newly registered
// peer from spamming the system by messaging for all the past epochs".
//
// Sweeps the epoch skew of crafted-but-otherwise-valid messages and
// reports delivery; then sweeps T (epoch length) at fixed D to show how
// Thr scales.

#include <cstdio>
#include <string>

#include "harness.h"
#include "rln/prover.h"
#include "waku/harness.h"

using namespace wakurln;

int main() {
  bench::Runner runner("epoch_validation");
  std::printf("E11: epoch-window validation, Thr = ceil(D/T) (paper §III)\n\n");

  waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
  cfg.node_count = 8;
  cfg.rln.epoch_period_seconds = 10;  // T
  cfg.rln.max_delay_seconds = 20;     // D  => Thr = 2
  waku::SimHarness world(cfg);
  world.subscribe_all("bench/epoch");
  world.register_all();
  world.run_seconds(120);  // get far enough from epoch 0 to allow negative skews

  auto& sender = world.node(0);
  rln::RlnProver prover(world.crs().pk, sender.identity());
  const auto index = sender.group().index_of(sender.identity().pk);
  util::Rng prng(17);

  std::printf("T = %llu s, D = %llu s  =>  Thr = %llu epochs\n\n",
              static_cast<unsigned long long>(cfg.rln.epoch_period_seconds),
              static_cast<unsigned long long>(cfg.rln.max_delay_seconds),
              static_cast<unsigned long long>(sender.epoch_scheme().threshold()));
  std::printf("%12s %12s %12s\n", "epoch skew", "delivered", "expected");
  for (const int skew : {-6, -3, -2, -1, 0, 1, 2, 3, 6}) {
    world.clear_deliveries();
    const std::uint64_t epoch =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(sender.current_epoch()) + skew);
    const util::Bytes payload = util::to_bytes(bench::cat("skew ", skew));
    const auto signal =
        prover.create_signal(payload, epoch, sender.group(), *index, prng);
    std::size_t delivered = 0;
    const std::string tag =
        skew < 0 ? bench::cat("m", -skew) : bench::cat("p", skew);
    runner.run_once(
        "skew_" + tag,
        [&] {
          world.relay(0).publish("bench/epoch",
                                 waku::WakuRlnRelay::encode_envelope(*signal, payload),
                                 /*apply_validator=*/false);
          world.run_seconds(5);
          // Count receivers other than the sender (whose modified client skips
          // its own validation and always self-delivers).
          std::vector<bool> seen(world.size(), false);
          delivered = 0;
          for (const auto& d : world.deliveries()) {
            if (d.node_index != 0 && d.payload == payload && !seen[d.node_index]) {
              seen[d.node_index] = true;
              ++delivered;
            }
          }
        });
    runner.metric("delivered_skew_" + tag, static_cast<double>(delivered), "nodes");
    const bool expected = std::abs(skew) <= 2;
    std::printf("%+12d %8zu / %zu %12s\n", skew, delivered, world.size() - 1,
                expected ? "accept" : "drop");
  }

  std::printf("\n-- Thr as a function of T at D = 20 s --\n");
  std::printf("%8s %8s\n", "T (s)", "Thr");
  for (const std::uint64_t t : {1ull, 5ull, 10ull, 20ull, 60ull}) {
    const rln::EpochScheme scheme(t, 20);
    std::printf("%8llu %8llu\n", static_cast<unsigned long long>(t),
                static_cast<unsigned long long>(scheme.threshold()));
  }

  std::printf("\nshape check: only |skew| <= Thr messages propagate; a fresh member\n"
              "cannot back-fill history, and clock-skewed future messages die too.\n");
  return 0;
}
