// Shared micro-benchmark runner for the bench/ binaries.
//
// Usage:
//   bench::Runner runner("nullifier_map");
//   runner.run("observe", [&] { ... }, /*reps=*/20, /*warmup=*/3,
//              /*batch=*/1000);                 // per-op stats, ns
//   runner.metric("records", map.record_count(), "count");
//   // On destruction (or an explicit write_json()) the runner writes
//   // BENCH_nullifier_map.json with min/mean/median/p90/max timings.
//
// Timing model: `fn` is invoked `warmup` times untimed, then `reps`
// times under std::chrono::steady_clock. If `fn` internally loops
// `batch` operations, pass that batch size and all reported numbers
// become per-operation. Statistics are computed over the rep samples;
// median and p90 use linear interpolation between order statistics.

#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <numeric>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/stats.h"

namespace wakurln::bench {

// Builds a string from text and integer parts via operator+=. Prefer this
// over chained operator+ in bench code: GCC 12 emits bogus -Wrestrict
// warnings (PR105651) when `const char* + std::string&&` gets inlined
// under -O2, and appending never takes that code path.
namespace detail {
inline void cat_append(std::string& out, std::string_view part) { out += part; }
template <typename T>
  requires std::is_arithmetic_v<T>
inline void cat_append(std::string& out, T part) {
  out += std::to_string(part);
}
}  // namespace detail

template <typename... Parts>
inline std::string cat(Parts&&... parts) {
  std::string out;
  (detail::cat_append(out, std::forward<Parts>(parts)), ...);
  return out;
}

// Keeps the optimiser from discarding a computed value.
template <typename T>
inline void do_not_optimize(T const& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  volatile const T* sink = &value;
  (void)sink;
#endif
}

struct TimingStats {
  std::string name;
  std::size_t reps = 0;
  std::size_t warmup = 0;
  std::size_t batch = 1;
  double min_ns = 0;
  double mean_ns = 0;
  double median_ns = 0;
  double p90_ns = 0;
  double max_ns = 0;
};

struct Metric {
  std::string name;
  double value = 0;
  std::string unit;
};

class Runner {
 public:
  // `name` becomes the BENCH_<name>.json file stem; `out_dir` (optional)
  // is the directory the file is written to, defaulting to the CWD.
  explicit Runner(std::string name, std::string out_dir = "")
      : name_(std::move(name)), out_dir_(std::move(out_dir)) {}

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  ~Runner() { write_json(); }

  // Times `fn` and records the sample statistics under `label`. Returns
  // the recorded stats (per operation when batch > 1) by value — a
  // reference into timings_ would dangle once a later run() grows the
  // vector.
  template <typename F>
  TimingStats run(const std::string& label, F&& fn, std::size_t reps = 20,
                  std::size_t warmup = 3, std::size_t batch = 1) {
    if (reps == 0) reps = 1;
    if (batch == 0) batch = 1;
    for (std::size_t i = 0; i < warmup; ++i) fn();
    std::vector<double> samples_ns;
    samples_ns.reserve(reps);
    for (std::size_t i = 0; i < reps; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const auto t1 = std::chrono::steady_clock::now();
      samples_ns.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count() /
          static_cast<double>(batch));
    }
    timings_.push_back(summarize(label, warmup, batch, std::move(samples_ns)));
    const TimingStats& s = timings_.back();
    const std::string batch_note = s.batch > 1 ? cat(", batch=", s.batch) : "";
    std::printf("[bench:%s] %-32s median %12.1f ns  p90 %12.1f ns  (reps=%zu%s)\n",
                name_.c_str(), s.name.c_str(), s.median_ns, s.p90_ns, s.reps,
                batch_note.c_str());
    return s;
  }

  // Times a whole-scenario bench exactly once (no warmup): the common
  // shape for simulated attacks/sweeps that must not repeat.
  template <typename F>
  TimingStats run_once(const std::string& label, F&& fn) {
    return run(label, std::forward<F>(fn), /*reps=*/1, /*warmup=*/0);
  }

  // Records a scalar result (count, bytes, ratio, simulated latency, ...)
  // that is not derived from wall-clock timing.
  void metric(const std::string& name, double value, const std::string& unit = "") {
    metrics_.push_back({name, value, unit});
  }

  std::string json_path() const {
    const std::string file = "BENCH_" + name_ + ".json";
    return out_dir_.empty() ? file : out_dir_ + "/" + file;
  }

  // Idempotent; also invoked by the destructor.
  void write_json() {
    if (written_) return;
    std::FILE* f = std::fopen(json_path().c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[bench:%s] cannot open %s for writing\n", name_.c_str(),
                   json_path().c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"schema_version\": 1,\n",
                 escape(name_).c_str());
    std::fprintf(f, "  \"timings\": [");
    for (std::size_t i = 0; i < timings_.size(); ++i) {
      const TimingStats& t = timings_[i];
      std::fprintf(f,
                   "%s\n    {\"name\": \"%s\", \"reps\": %zu, \"warmup\": %zu, "
                   "\"batch\": %zu, \"min_ns\": %.3f, \"mean_ns\": %.3f, "
                   "\"median_ns\": %.3f, \"p90_ns\": %.3f, \"max_ns\": %.3f}",
                   i == 0 ? "" : ",", escape(t.name).c_str(), t.reps, t.warmup,
                   t.batch, t.min_ns, t.mean_ns, t.median_ns, t.p90_ns, t.max_ns);
    }
    std::fprintf(f, "\n  ],\n  \"metrics\": [");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"value\": %s, \"unit\": \"%s\"}",
                   i == 0 ? "" : ",", escape(m.name).c_str(),
                   format_value(m.value).c_str(), escape(m.unit).c_str());
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("[bench:%s] wrote %s\n", name_.c_str(), json_path().c_str());
    written_ = true;
  }

  // Linear-interpolation percentile over an unsorted sample set; exposed
  // for the statistics unit tests. `q` is in [0, 1]. Shared with the
  // scenario metrics pipeline (util/stats.h).
  static double percentile(std::vector<double> samples, double q) {
    return util::percentile(std::move(samples), q);
  }

  static TimingStats summarize(const std::string& name, std::size_t warmup,
                               std::size_t batch, std::vector<double> samples_ns) {
    TimingStats s;
    s.name = name;
    s.reps = samples_ns.size();
    s.warmup = warmup;
    s.batch = batch;
    if (samples_ns.empty()) return s;
    s.min_ns = *std::min_element(samples_ns.begin(), samples_ns.end());
    s.max_ns = *std::max_element(samples_ns.begin(), samples_ns.end());
    s.mean_ns = std::accumulate(samples_ns.begin(), samples_ns.end(), 0.0) /
                static_cast<double>(samples_ns.size());
    s.median_ns = percentile(samples_ns, 0.5);
    s.p90_ns = percentile(std::move(samples_ns), 0.9);
    return s;
  }

  // Counters (gas, wei, bytes) must round-trip exactly: print integral
  // values without exponent notation and everything else with enough
  // digits to reconstruct the double bit-for-bit. Shared with the
  // scenario campaign reports (util/json.h).
  static std::string format_value(double v) { return util::json_number(v); }

  static std::string escape(const std::string& in) { return util::json_escape(in); }

  const std::vector<TimingStats>& timings() const { return timings_; }
  const std::vector<Metric>& metrics() const { return metrics_; }

 private:
  std::string name_;
  std::string out_dir_;
  std::vector<TimingStats> timings_;
  std::vector<Metric> metrics_;
  bool written_ = false;
};

}  // namespace wakurln::bench
