// Scenario campaign engine through the shared bench harness: runs a small
// instance of every registered scenario (2 seeds each, shrunk worlds) and
// records both the wall-clock cost of a campaign and the headline
// simulated metrics — the numbers future scaling PRs diff against.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "harness.h"
#include "scenario/campaign.h"
#include "scenario/scenarios.h"

using namespace wakurln;

int main() {
  bench::Runner runner("scenarios");
  std::printf("scenario campaigns (shrunk: <=16 nodes, 3 epochs, 2 seeds)\n\n");
  std::printf("%-16s %14s %14s %14s %12s\n", "scenario", "delivery", "spam_deliv",
              "slash_ratio", "bytes/node");

  for (const scenario::ScenarioSpec& registered : scenario::registered_scenarios()) {
    scenario::ScenarioSpec spec = registered;
    spec.nodes = std::min<std::size_t>(spec.nodes, 16);
    spec.traffic_epochs = std::min<std::uint64_t>(spec.traffic_epochs, 3);

    scenario::CampaignConfig cfg;
    cfg.seeds = 2;
    cfg.seed0 = 1;
    cfg.threads = 2;

    scenario::CampaignResult result;
    runner.run_once(bench::cat("campaign_", spec.name.c_str()),
                    [&] { result = scenario::run_campaign(spec, cfg); });

    const auto mean = [&](const char* name) {
      for (const scenario::AggregateMetric& a : result.aggregate) {
        if (a.name == name) return a.mean;
      }
      return 0.0;
    };
    const double delivery = mean("delivery_ratio");
    const double spam_delivery = mean("spam_delivery_ratio");
    const double slash_ratio = mean("over_rate_slashed_ratio");
    const double bytes_per_node = mean("bytes_per_node");

    runner.metric(bench::cat(spec.name.c_str(), "_delivery_ratio_mean"), delivery);
    runner.metric(bench::cat(spec.name.c_str(), "_spam_delivery_ratio_mean"),
                  spam_delivery);
    runner.metric(bench::cat(spec.name.c_str(), "_over_rate_slashed_ratio_mean"),
                  slash_ratio);
    runner.metric(bench::cat(spec.name.c_str(), "_bytes_per_node_mean"), bytes_per_node,
                  "bytes");
    runner.metric(bench::cat(spec.name.c_str(), "_latency_p90_ms_mean"),
                  mean("latency_p90_ms"), "ms");

    std::printf("%-16s %14.3f %14.3f %14.3f %12.0f\n", spec.name.c_str(), delivery,
                spam_delivery, slash_ratio, bytes_per_node);
  }

  // Observability overhead on baseline_relay: the same campaign with the
  // metrics registry + time-series sampler off vs on. Two invariants the
  // CI gate reads off this report: the protocol metrics must be
  // byte-identical either way (obs_protocol_metrics_identical == 1), and
  // the enabled run must stay within sampling noise of the disabled one
  // (obs_overhead_ratio; the registry's disabled mode is a pointer
  // null-check, the enabled mode a handful of probes per epoch).
  {
    scenario::ScenarioSpec spec = scenario::find_scenario("baseline_relay");
    spec.nodes = std::min<std::size_t>(spec.nodes, 16);
    spec.traffic_epochs = 3;
    scenario::CampaignConfig cfg;
    cfg.seeds = 2;
    cfg.seed0 = 1;
    cfg.threads = 2;

    const auto wall_ms = [](const auto& fn) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
          .count();
    };

    scenario::CampaignResult off;
    scenario::CampaignResult on;
    const double disabled_ms =
        wall_ms([&] { off = scenario::run_campaign(spec, cfg); });
    spec.observability = true;
    const double enabled_ms =
        wall_ms([&] { on = scenario::run_campaign(spec, cfg); });

    const bool identical = scenario::report_json(off, /*include_resources=*/false) ==
                           scenario::report_json(on, /*include_resources=*/false);
    runner.metric("obs_disabled_ms", disabled_ms, "ms");
    runner.metric("obs_enabled_ms", enabled_ms, "ms");
    runner.metric("obs_overhead_ratio",
                  disabled_ms <= 0 ? 0 : enabled_ms / disabled_ms);
    runner.metric("obs_protocol_metrics_identical", identical ? 1 : 0);
    runner.metric("obs_timeseries_rows",
                  on.series.empty()
                      ? 0
                      : static_cast<double>(on.series.front().rows().size()));
    std::printf("\nobservability overhead (baseline_relay): off %.1f ms, on %.1f ms "
                "(x%.3f), protocol metrics identical: %s\n",
                disabled_ms, enabled_ms,
                disabled_ms <= 0 ? 0 : enabled_ms / disabled_ms,
                identical ? "yes" : "NO");
  }

  std::printf("\nshape check: RLN keeps honest delivery ~1.0 while spam delivery\n"
              "collapses to ~1/spam_rate and every over-rate signal is slashed;\n"
              "the PoW baseline delivers spam at full rate and slashes nothing.\n");
  return 0;
}
