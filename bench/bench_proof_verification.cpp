// E3 — §IV claim: "Proof verification run time is constant and takes
// ≈30 ms" (independent of tree depth / group size).
//
// Measured: mock-backend verification (constant-size MAC check — flat
// across depth and group size, matching Groth16's pairing check shape).
// Modelled: the 30 ms paper anchor via the cost model counter.

#include <benchmark/benchmark.h>

#include "rln/group.h"
#include "rln/identity.h"
#include "rln/prover.h"
#include "zksnark/cost_model.h"

using namespace wakurln;

namespace {

void BM_ProofVerification(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const auto group_size = static_cast<std::size_t>(state.range(1));
  util::Rng rng(2000 + depth);
  rln::RlnGroup group(depth);
  const rln::Identity id = rln::Identity::generate(rng);
  const auto index = group.add_member(id.pk);
  for (std::size_t i = 1; i < group_size; ++i) {
    group.add_member(rln::Identity::generate(rng).pk);
  }

  const auto keys = zksnark::MockGroth16::setup(depth, rng);
  const rln::RlnProver prover(keys.pk, id);
  const rln::RlnVerifier verifier(keys.vk);
  const util::Bytes payload = util::to_bytes("bench message payload");
  const auto signal = prover.create_signal(payload, 7, group, index, rng);
  if (!signal) {
    state.SkipWithError("prover refused honest witness");
    return;
  }

  for (auto _ : state) {
    bool ok = verifier.verify(payload, *signal);
    benchmark::DoNotOptimize(ok);
    if (!ok) state.SkipWithError("verification failed");
  }
  state.counters["modeled_iphone8_ms"] =
      zksnark::CostModel::verify_ms(zksnark::DeviceProfile::iphone8());
}

}  // namespace

// Sweep depth at fixed group size, then group size at fixed depth: both
// series must be flat.
BENCHMARK(BM_ProofVerification)
    ->Args({10, 16})
    ->Args({16, 16})
    ->Args({20, 16})
    ->Args({24, 16})
    ->Args({32, 16})
    ->Args({20, 2})
    ->Args({20, 64})
    ->Args({20, 512})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
