// E3 — §IV claim: "Proof verification run time is constant and takes
// ≈30 ms" (independent of tree depth / group size).
//
// Measured: mock-backend verification (constant-size MAC check — flat
// across depth and group size, matching Groth16's pairing check shape).
// Modelled: the 30 ms paper anchor via the cost-model metric in
// BENCH_proof_verification.json.
//
// Sweeps depth at fixed group size, then group size at fixed depth: both
// series must be flat.

#include <cstdio>
#include <string>
#include <utility>

#include "harness.h"
#include "rln/group.h"
#include "rln/identity.h"
#include "rln/prover.h"
#include "zksnark/batch_verifier.h"
#include "zksnark/cost_model.h"

using namespace wakurln;

int main() {
  bench::Runner runner("proof_verification");
  std::printf("E3: proof verification vs depth and group size (paper §IV)\n\n");

  const std::pair<std::size_t, std::size_t> sweeps[] = {
      {10, 16}, {16, 16}, {20, 16}, {24, 16}, {32, 16},
      {20, 2},  {20, 64}, {20, 512},
  };

  for (const auto& [depth, group_size] : sweeps) {
    util::Rng rng(2000 + depth);
    rln::RlnGroup group(depth);
    const rln::Identity id = rln::Identity::generate(rng);
    const auto index = group.add_member(id.pk);
    for (std::size_t i = 1; i < group_size; ++i) {
      group.add_member(rln::Identity::generate(rng).pk);
    }

    const auto keys = zksnark::MockGroth16::setup(depth, rng);
    const rln::RlnProver prover(keys.pk, id);
    const rln::RlnVerifier verifier(keys.vk);
    const util::Bytes payload = util::to_bytes("bench message payload");
    const auto signal = prover.create_signal(payload, 7, group, index, rng);
    if (!signal) {
      std::fprintf(stderr, "prover refused honest witness (depth %zu)\n", depth);
      return 1;
    }

    bool ok = true;
    runner.run(
        bench::cat("verify_d", depth, "_g", group_size),
        [&] {
          for (int i = 0; i < 20; ++i) {
            if (!verifier.verify(payload, *signal)) ok = false;
          }
        },
        /*reps=*/15, /*warmup=*/2, /*batch=*/20);
    if (!ok) {
      std::fprintf(stderr, "verification failed (depth %zu)\n", depth);
      return 1;
    }
  }

  {
    // Prepared verification: HMAC midstates + transcript prefix cached,
    // stack serialisation — same verdicts, no per-call allocation.
    const std::size_t depth = 20;
    util::Rng rng(3000);
    rln::RlnGroup group(depth);
    const rln::Identity id = rln::Identity::generate(rng);
    const auto index = group.add_member(id.pk);
    for (int i = 1; i < 16; ++i) group.add_member(rln::Identity::generate(rng).pk);
    const auto keys = zksnark::MockGroth16::setup(depth, rng);
    const rln::RlnProver prover(keys.pk, id);
    const rln::RlnVerifier verifier(keys.vk);
    const util::Bytes payload = util::to_bytes("bench message payload");
    const auto signal = prover.create_signal(payload, 7, group, index, rng);
    if (!signal) {
      std::fprintf(stderr, "prover refused honest witness (prepared bench)\n");
      return 1;
    }
    bool ok = true;
    const auto& scalar_s = runner.run(
        "verify_reference_d20_g16",
        [&] {
          for (int i = 0; i < 20; ++i) {
            if (!verifier.verify(payload, *signal)) ok = false;
          }
        },
        /*reps=*/15, /*warmup=*/2, /*batch=*/20);
    const auto& prepared_s = runner.run(
        "verify_prepared_d20_g16",
        [&] {
          for (int i = 0; i < 20; ++i) {
            if (!verifier.verify_prepared(payload, *signal)) ok = false;
          }
        },
        /*reps=*/15, /*warmup=*/2, /*batch=*/20);
    if (!ok) {
      std::fprintf(stderr, "prepared verification failed\n");
      return 1;
    }
    runner.metric("prepared_verify_speedup", scalar_s.median_ns / prepared_s.median_ns,
                  "x");
  }

  runner.metric("modeled_iphone8_verify_ms",
                zksnark::CostModel::verify_ms(zksnark::DeviceProfile::iphone8()), "ms");

  {
    // Modeled amortised batch verification (random-linear-combination
    // Groth16): the per-epoch queue drains a watermark-full batch for
    // one shared pairing product plus a cheap marginal term. Pure cost
    // model — deterministic, gated in CI.
    const zksnark::DeviceProfile dev = zksnark::DeviceProfile::laptop();
    zksnark::BatchVerifier queue(64, dev);
    for (int i = 0; i < 640; ++i) queue.enqueue();
    runner.metric("modeled_batch64_verify_speedup", queue.modeled_speedup(), "x");
    runner.metric("modeled_batch64_verify_ms",
                  zksnark::CostModel::batch_verify_ms(64, dev) / 64.0, "ms/proof");
  }

  std::printf("\nshape check: both series are flat — verification is constant-time\n"
              "in depth and group size, matching the paper's 30 ms anchor shape.\n");
  return 0;
}
