// Per-node resident-memory density of a full WAKU-RLN-RELAY world. The
// struct-of-arrays node state, interned link/peer sets and world-shared
// validator state exist to push bytes/node down far enough that a
// 250k-node world fits one machine; this bench measures that density on
// settled worlds of 1k / 10k / 50k nodes (mesh formed, heartbeats
// running, no registration — the pure-relay state the big worlds are
// made of) using the same modeled memory_bytes() ledger the scenario
// reports publish.

#include <cstdio>

#include "harness.h"
#include "waku/harness.h"

using namespace wakurln;

namespace {

struct Ledger {
  std::size_t router = 0;
  std::size_t mcache = 0;
  std::size_t nullifier = 0;
  std::size_t merkle = 0;
  std::size_t event_pool = 0;
  std::size_t network = 0;

  std::size_t total() const {
    return router + mcache + nullifier + merkle + event_pool + network;
  }
};

Ledger measure(waku::SimHarness& world) {
  Ledger ledger;
  // Shared blocks once per world, per-node views summed on top — the
  // same accounting the campaign memory resources block uses.
  ledger.router = world.router_shared_bytes();
  ledger.nullifier = world.validator_context()->memory_bytes();
  for (std::size_t i = 0; i < world.size(); ++i) {
    ledger.router += world.relay(i).router().memory_bytes();
    ledger.mcache += world.relay(i).router().mcache().memory_bytes();
    ledger.nullifier += world.node(i).nullifier_map_bytes();
  }
  ledger.merkle = world.group_sync().memory_bytes();
  ledger.event_pool = world.scheduler().memory_bytes();
  ledger.network = world.network().memory_bytes();
  return ledger;
}

}  // namespace

int main() {
  bench::Runner runner("node_memory");
  std::printf("per-node resident memory of settled relay worlds\n\n");
  std::printf("%10s %14s %14s\n", "nodes", "tracked total", "bytes/node");

  for (const std::size_t n : {1000u, 10000u, 50000u}) {
    waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
    cfg.node_count = n;
    cfg.extra_links_per_node = 4;
    cfg.link_profile = sim::LinkProfile::kGeo;

    std::unique_ptr<waku::SimHarness> world;
    const std::string tag = bench::cat(n / 1000, "k");
    runner.run(
        "build_" + tag,
        [&] {
          world = std::make_unique<waku::SimHarness>(cfg);
          world->subscribe_all("bench");
          world->run_seconds(10);  // mesh formation + heartbeats
        },
        /*reps=*/1, /*warmup=*/0, /*batch=*/n);

    const Ledger ledger = measure(*world);
    const double per_node =
        static_cast<double>(ledger.total()) / static_cast<double>(n);
    runner.metric("tracked_total_bytes_" + tag,
                  static_cast<double>(ledger.total()), "bytes");
    runner.metric("bytes_per_node_" + tag, per_node, "bytes");
    std::printf("%10zu %11.1f MB %11.1f B\n", n,
                static_cast<double>(ledger.total()) / (1024.0 * 1024.0), per_node);
  }

  std::printf("\nshared-once state (params, topic table, CRS + verifier,\n"
              "nullifier record store, Merkle view) is charged once per\n"
              "world, so bytes/node falls as the world grows.\n");
  return 0;
}
