// E0 (supporting) — microbenchmarks of the cryptographic substrates the
// §IV numbers decompose into: field multiplication, Poseidon, SHA-256,
// Merkle insertion/proof, Shamir reconstruction.

#include <benchmark/benchmark.h>

#include "hash/poseidon.h"
#include "hash/sha256.h"
#include "merkle/merkle_tree.h"
#include "shamir/shamir.h"
#include "util/rng.h"

using namespace wakurln;

namespace {

void BM_FieldMul(benchmark::State& state) {
  util::Rng rng(1);
  field::Fr a = field::Fr::random(rng);
  const field::Fr b = field::Fr::random(rng);
  for (auto _ : state) {
    a = a * b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldMul);

void BM_FieldInverse(benchmark::State& state) {
  util::Rng rng(2);
  field::Fr a = field::Fr::random(rng);
  for (auto _ : state) {
    a = a.inverse();
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldInverse);

void BM_Poseidon2(benchmark::State& state) {
  util::Rng rng(3);
  field::Fr a = field::Fr::random(rng);
  const field::Fr b = field::Fr::random(rng);
  for (auto _ : state) {
    a = hash::poseidon_hash2(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Poseidon2);

void BM_Sha256_1KiB(benchmark::State& state) {
  util::Rng rng(4);
  util::Bytes data(1024);
  rng.fill(data);
  for (auto _ : state) {
    auto d = hash::Sha256::digest(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_MerkleInsert(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  merkle::MerkleTree tree(depth);
  for (auto _ : state) {
    if (tree.size() == tree.capacity()) {
      state.PauseTiming();
      tree = merkle::MerkleTree(depth);
      state.ResumeTiming();
    }
    tree.append(field::Fr::random(rng));
  }
}
BENCHMARK(BM_MerkleInsert)->Arg(10)->Arg(20)->Arg(32);

void BM_MerkleProveAndVerify(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  merkle::MerkleTree tree(depth);
  const field::Fr leaf = field::Fr::random(rng);
  tree.append(leaf);
  for (int i = 0; i < 31; ++i) tree.append(field::Fr::random(rng));
  for (auto _ : state) {
    const auto proof = tree.prove(0);
    bool ok = merkle::MerkleTree::verify(tree.root(), leaf, proof);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_MerkleProveAndVerify)->Arg(10)->Arg(20)->Arg(32);

void BM_ShamirReconstruct(benchmark::State& state) {
  util::Rng rng(7);
  const field::Fr sk = field::Fr::random(rng), a1 = field::Fr::random(rng);
  const auto s1 = shamir::make_share(sk, a1, field::Fr::random(rng));
  const auto s2 = shamir::make_share(sk, a1, field::Fr::random(rng));
  for (auto _ : state) {
    auto r = shamir::reconstruct(s1, s2);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ShamirReconstruct);

}  // namespace

BENCHMARK_MAIN();
