// E0 (supporting) — microbenchmarks of the cryptographic substrates the
// §IV numbers decompose into: field multiplication, Poseidon, SHA-256,
// Merkle insertion/proof, Shamir reconstruction.
//
// Emits BENCH_crypto_primitives.json via the shared runner.

#include <cstdio>

#include "harness.h"
#include "hash/poseidon.h"
#include "hash/sha256.h"
#include "merkle/merkle_tree.h"
#include "shamir/shamir.h"
#include "util/rng.h"

using namespace wakurln;

int main() {
  bench::Runner runner("crypto_primitives");
  std::printf("E0: cryptographic substrate microbenchmarks\n\n");

  {
    util::Rng rng(1);
    field::Fr a = field::Fr::random(rng);
    const field::Fr b = field::Fr::random(rng);
    runner.run(
        "field_mul",
        [&] {
          for (int i = 0; i < 10000; ++i) a = a * b;
          bench::do_not_optimize(a);
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/10000);
  }

  {
    util::Rng rng(2);
    field::Fr a = field::Fr::random(rng);
    runner.run(
        "field_inverse",
        [&] {
          for (int i = 0; i < 100; ++i) a = a.inverse();
          bench::do_not_optimize(a);
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/100);
  }

  {
    util::Rng rng(3);
    field::Fr a = field::Fr::random(rng);
    const field::Fr b = field::Fr::random(rng);
    runner.run(
        "poseidon2",
        [&] {
          for (int i = 0; i < 100; ++i) a = hash::poseidon_hash2(a, b);
          bench::do_not_optimize(a);
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/100);
  }

  {
    util::Rng rng(4);
    util::Bytes data(1024);
    rng.fill(data);
    const auto& s = runner.run(
        "sha256_1kib",
        [&] {
          for (int i = 0; i < 100; ++i) {
            auto d = hash::Sha256::digest(data);
            bench::do_not_optimize(d);
          }
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/100);
    runner.metric("sha256_throughput_mb_s", 1024.0 / s.median_ns * 1000.0, "MB/s");
  }

  for (const std::size_t depth : {10u, 20u, 32u}) {
    util::Rng rng(5);
    merkle::MerkleTree tree(depth);
    runner.run(
        bench::cat("merkle_insert_d", depth),
        [&] {
          if (tree.size() + 16 > tree.capacity()) tree = merkle::MerkleTree(depth);
          for (int i = 0; i < 16; ++i) tree.append(field::Fr::random(rng));
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/16);
  }

  for (const std::size_t depth : {10u, 20u, 32u}) {
    util::Rng rng(6);
    merkle::MerkleTree tree(depth);
    const field::Fr leaf = field::Fr::random(rng);
    tree.append(leaf);
    for (int i = 0; i < 31; ++i) tree.append(field::Fr::random(rng));
    runner.run(
        bench::cat("merkle_prove_verify_d", depth),
        [&] {
          for (int i = 0; i < 10; ++i) {
            const auto proof = tree.prove(0);
            bool ok = merkle::MerkleTree::verify(tree.root(), leaf, proof);
            bench::do_not_optimize(ok);
          }
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/10);
  }

  {
    util::Rng rng(7);
    const field::Fr sk = field::Fr::random(rng), a1 = field::Fr::random(rng);
    const auto s1 = shamir::make_share(sk, a1, field::Fr::random(rng));
    const auto s2 = shamir::make_share(sk, a1, field::Fr::random(rng));
    runner.run(
        "shamir_reconstruct",
        [&] {
          for (int i = 0; i < 100; ++i) {
            auto r = shamir::reconstruct(s1, s2);
            bench::do_not_optimize(r);
          }
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/100);
  }

  return 0;
}
