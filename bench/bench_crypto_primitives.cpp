// E0 (supporting) — microbenchmarks of the cryptographic substrates the
// §IV numbers decompose into: field multiplication, Poseidon, SHA-256,
// Merkle insertion/proof, Shamir reconstruction.
//
// Emits BENCH_crypto_primitives.json via the shared runner.

#include <cstdio>

#include "harness.h"
#include "hash/poseidon.h"
#include "hash/sha256.h"
#include "merkle/merkle_tree.h"
#include "shamir/shamir.h"
#include "util/rng.h"

using namespace wakurln;

int main() {
  bench::Runner runner("crypto_primitives");
  std::printf("E0: cryptographic substrate microbenchmarks\n\n");

  double field_mul_scalar_ns = 0.0;
  {
    util::Rng rng(1);
    field::Fr a = field::Fr::random(rng);
    const field::Fr b = field::Fr::random(rng);
    const auto& s = runner.run(
        "field_mul",
        [&] {
          for (int i = 0; i < 10000; ++i) a = a * b;
          bench::do_not_optimize(a);
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/10000);
    field_mul_scalar_ns = s.median_ns;
  }

  {
    // Same element count through the 4-lane interleaved kernel. Each lane
    // runs the scalar CIOS schedule bit-exactly; the win is pure ILP.
    util::Rng rng(1);
    std::vector<field::Fr> a(10000), b(10000);
    for (auto& x : a) x = field::Fr::random(rng);
    for (auto& x : b) x = field::Fr::random(rng);
    const auto& s = runner.run(
        "field_mul_batch",
        [&] {
          field::Fr::mul_batch(a, b, a);
          bench::do_not_optimize(a.data());
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/10000);
    runner.metric("field_mul_batch_speedup", field_mul_scalar_ns / s.median_ns, "x");
  }

  double field_inverse_scalar_ns = 0.0;
  {
    util::Rng rng(2);
    field::Fr a = field::Fr::random(rng);
    const auto& s = runner.run(
        "field_inverse",
        [&] {
          for (int i = 0; i < 100; ++i) a = a.inverse();
          bench::do_not_optimize(a);
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/100);
    field_inverse_scalar_ns = s.median_ns;
  }

  {
    // Montgomery batch inversion: one Fermat ladder + 3(n-1) mults for
    // the whole span, against n ladders scalar-side.
    util::Rng rng(2);
    std::vector<field::Fr> xs(100);
    for (auto& x : xs) x = field::Fr::random(rng);
    const auto& s = runner.run(
        "field_inverse_batch",
        [&] {
          field::Fr::batch_inverse(xs);
          bench::do_not_optimize(xs.data());
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/100);
    runner.metric("field_inverse_batch_speedup", field_inverse_scalar_ns / s.median_ns,
                  "x");
  }

  double poseidon_scalar_ns = 0.0;
  {
    util::Rng rng(3);
    field::Fr a = field::Fr::random(rng);
    const field::Fr b = field::Fr::random(rng);
    const auto& s = runner.run(
        "poseidon2",
        [&] {
          for (int i = 0; i < 100; ++i) a = hash::poseidon_hash2(a, b);
          bench::do_not_optimize(a);
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/100);
    poseidon_scalar_ns = s.median_ns;
  }

  {
    // Independent hashes through the 8-state batch permutation (wide
    // S-box lanes + fused MDS rows) — the Merkle wavefront's kernel.
    // The speedup metric is the CI-gated headline number.
    util::Rng rng(3);
    std::vector<field::Fr> a(100), b(100), out(100);
    for (auto& x : a) x = field::Fr::random(rng);
    for (auto& x : b) x = field::Fr::random(rng);
    const auto& s = runner.run(
        "poseidon2_batch",
        [&] {
          hash::poseidon_hash2_batch(a, b, out);
          bench::do_not_optimize(out.data());
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/100);
    runner.metric("poseidon_batch_speedup", poseidon_scalar_ns / s.median_ns, "x");
  }

  {
    util::Rng rng(4);
    util::Bytes data(1024);
    rng.fill(data);
    const auto& s = runner.run(
        "sha256_1kib",
        [&] {
          for (int i = 0; i < 100; ++i) {
            auto d = hash::Sha256::digest(data);
            bench::do_not_optimize(d);
          }
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/100);
    runner.metric("sha256_throughput_mb_s", 1024.0 / s.median_ns * 1000.0, "MB/s");
  }

  for (const std::size_t depth : {10u, 20u, 32u}) {
    util::Rng rng(5);
    merkle::MerkleTree tree(depth);
    runner.run(
        bench::cat("merkle_insert_d", depth),
        [&] {
          if (tree.size() + 16 > tree.capacity()) tree = merkle::MerkleTree(depth);
          for (int i = 0; i < 16; ++i) tree.append(field::Fr::random(rng));
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/16);
  }

  {
    // The registration-storm shape: 16 appends land as one wavefront
    // batch instead of 16 root-path walks. Compare against the scalar
    // merkle_insert_d20 series above.
    const std::size_t depth = 20;
    util::Rng rng(5);
    merkle::MerkleTree scalar_tree(depth);
    const auto& scalar_s = runner.run(
        "merkle_insert_scalar16_d20",
        [&] {
          if (scalar_tree.size() + 16 > scalar_tree.capacity()) {
            scalar_tree = merkle::MerkleTree(depth);
          }
          for (int i = 0; i < 16; ++i) scalar_tree.append(field::Fr::random(rng));
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/16);
    util::Rng brng(5);
    merkle::MerkleTree batch_tree(depth);
    std::vector<field::Fr> leaves(16);
    const auto& batch_s = runner.run(
        "merkle_insert_batch16_d20",
        [&] {
          if (batch_tree.size() + 16 > batch_tree.capacity()) {
            batch_tree = merkle::MerkleTree(depth);
          }
          for (auto& leaf : leaves) leaf = field::Fr::random(brng);
          batch_tree.append_batch(leaves);
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/16);
    runner.metric("merkle_batch_speedup", scalar_s.median_ns / batch_s.median_ns, "x");
  }

  for (const std::size_t depth : {10u, 20u, 32u}) {
    util::Rng rng(6);
    merkle::MerkleTree tree(depth);
    const field::Fr leaf = field::Fr::random(rng);
    tree.append(leaf);
    for (int i = 0; i < 31; ++i) tree.append(field::Fr::random(rng));
    runner.run(
        bench::cat("merkle_prove_verify_d", depth),
        [&] {
          for (int i = 0; i < 10; ++i) {
            const auto proof = tree.prove(0);
            bool ok = merkle::MerkleTree::verify(tree.root(), leaf, proof);
            bench::do_not_optimize(ok);
          }
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/10);
  }

  {
    util::Rng rng(7);
    const field::Fr sk = field::Fr::random(rng), a1 = field::Fr::random(rng);
    const auto s1 = shamir::make_share(sk, a1, field::Fr::random(rng));
    const auto s2 = shamir::make_share(sk, a1, field::Fr::random(rng));
    runner.run(
        "shamir_reconstruct",
        [&] {
          for (int i = 0; i < 100; ++i) {
            auto r = shamir::reconstruct(s1, s2);
            bench::do_not_optimize(r);
          }
        },
        /*reps=*/20, /*warmup=*/3, /*batch=*/100);
  }

  return 0;
}
