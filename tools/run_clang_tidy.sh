#!/usr/bin/env bash
# clang-tidy gate: runs the project .clang-tidy over every library source
# under src/ using the compile database of an existing build directory.
#
#   tools/run_clang_tidy.sh [build-dir]   (default: build)
#
# Exits non-zero on any warning (WarningsAsErrors: '*' in .clang-tidy).
# Gated, not required: machines without clang-tidy (the dev container
# ships only GCC) get a clear skip message and exit 0 so local tier-1
# loops keep working — CI installs clang-tidy and enforces the gate.
# Set WAKURLN_TIDY_STRICT=1 to turn the missing-binary skip into a
# failure (what the CI job does).
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "$tidy_bin" ]]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      tidy_bin="$cand"
      break
    fi
  done
fi
if [[ -z "$tidy_bin" ]]; then
  if [[ "${WAKURLN_TIDY_STRICT:-0}" == "1" ]]; then
    echo "run_clang_tidy: clang-tidy not found and WAKURLN_TIDY_STRICT=1" >&2
    exit 1
  fi
  echo "run_clang_tidy: clang-tidy not found; skipping (CI enforces this gate)"
  exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing —" >&2
  echo "  configure first: cmake --preset default" >&2
  exit 1
fi

# run-clang-tidy parallelises across the database; fall back to a plain
# loop when the wrapper is not installed next to the binary.
runner=""
for cand in run-clang-tidy run-clang-tidy-18 run-clang-tidy-17 run-clang-tidy-16 run-clang-tidy-15 run-clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    runner="$cand"
    break
  fi
done

cd "$repo_root"
echo "run_clang_tidy: $tidy_bin over src/ (database: $build_dir)"
if [[ -n "$runner" ]]; then
  "$runner" -clang-tidy-binary "$tidy_bin" -p "$build_dir" -quiet "src/.*\.cpp$"
else
  mapfile -t sources < <(find src -name '*.cpp' | sort)
  "$tidy_bin" -p "$build_dir" --quiet "${sources[@]}"
fi
status=$?
if [[ $status -eq 0 ]]; then
  echo "run_clang_tidy: clean"
fi
exit $status
