#!/usr/bin/env python3
"""Determinism lint for the report-emitting path.

The repo's headline guarantee is that SCENARIO_*.json reports are
byte-identical for a fixed (spec, seed) across runs, thread counts and
machines (the wall_ms resources block is the single audited exception).
That guarantee dies quietly: one `for (auto& kv : some_unordered_map)`
feeding a metric, one pointer used as a sort key, one wall-clock read
outside the resources block, and reports still *look* right while
drifting between runs.

This lint scans the files on the report-emitting path for banned
non-determinism sources:

  unordered-container   declaring std::unordered_map / std::unordered_set
                        (iteration order is hash-seed and libc++/libstdc++
                        dependent; on the report path even *declaring* one
                        needs an audit that no iteration feeds output)
  pointer-keyed-order   std::map / std::set keyed by a raw pointer, or
                        sorting by pointer value (ASLR-dependent order)
  wall-clock            std::chrono::{system,steady,high_resolution}_clock,
                        time(), gettimeofday, clock_gettime (wall time is
                        allowed only in the audited wall_ms measurement)
  unseeded-rand         rand(), srand(), std::random_device (randomness
                        must come from the seeded util::Rng streams)
  thread-id             std::this_thread::get_id, pthread_self (worker
                        identity must never influence report bytes)
  address-leak          printing a pointer with %p (ASLR in the output)

Findings are suppressed by tools/determinism_allowlist.txt entries of the
form `rule-id<space>path<space>#<space>justification`; each entry must
still match at least one finding, so stale allowlist lines fail the lint
too (the audit trail cannot rot silently).

Exit status: 0 clean, 1 findings or stale allowlist entries, 2 usage.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Files whose bytes (transitively) become SCENARIO_*.json / BENCH_*.json
# (and, since the observability layer, TIMESERIES_*/TRACE_*.json).
SCAN_GLOBS = [
    "src/scenario/*.h",
    "src/scenario/*.cpp",
    # The sharded event engine, the network fabric and the harness feed
    # the report directly since the parallel-world work: event stamps,
    # per-lane stats, mailbox merges and per-lane delivery logs all
    # shape report bytes.
    "src/sim/scheduler.h",
    "src/sim/scheduler.cpp",
    "src/sim/network.h",
    "src/sim/network.cpp",
    "src/waku/harness.h",
    "src/waku/harness.cpp",
    # The batched crypto hot path: field kernels, batch Poseidon, batch
    # Merkle appends and the modeled verification queue all sit upstream
    # of root/nullifier/verdict bytes in the report, and the batch paths
    # promise bit-identity with the scalar reference.
    "src/field/*.h",
    "src/field/*.cpp",
    "src/hash/poseidon.h",
    "src/hash/poseidon.cpp",
    "src/merkle/*.h",
    "src/merkle/*.cpp",
    "src/zksnark/*.h",
    "src/zksnark/*.cpp",
    "src/obs/*.h",
    "src/obs/*.cpp",
    "src/util/json.h",
    "src/util/json.cpp",
    "src/util/stats.h",
    "src/util/stats.cpp",
    "bench/harness.h",
    "examples/scenario_runner.cpp",
]

RULES = [
    (
        "unordered-container",
        re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b"),
        "unordered container on the report path (iteration order is not deterministic)",
    ),
    (
        "pointer-keyed-order",
        re.compile(r"\bstd::(?:map|set)<\s*[^,<>]*\*"),
        "ordered container keyed by raw pointer (ASLR-dependent order)",
    ),
    (
        "wall-clock",
        re.compile(
            r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
            r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
        ),
        "wall-clock read outside the audited wall_ms resources block",
    ),
    (
        "unseeded-rand",
        re.compile(r"(?<![\w:])(?:s?rand)\s*\(|\bstd::random_device\b"),
        "unseeded randomness (use the seeded util::Rng streams)",
    ),
    (
        "thread-id",
        re.compile(r"std::this_thread::get_id|\bpthread_self\s*\("),
        "thread identity leaking toward report bytes",
    ),
    (
        "address-leak",
        re.compile(r'%p'),
        "pointer value formatted into output (ASLR in the report)",
    ),
]

LINE_COMMENT = re.compile(r"//.*$")


def parse_allowlist(path: Path):
    """Yields (rule_id, file_path, justification, line_no)."""
    entries = []
    if not path.exists():
        return entries
    for line_no, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = re.match(r"^(\S+)\s+(\S+)\s+#\s*(.+)$", line)
        if m is None:
            print(
                f"determinism_lint: malformed allowlist line {line_no}: {raw!r}\n"
                "  expected: <rule-id> <path> # <justification>",
                file=sys.stderr,
            )
            sys.exit(2)
        entries.append((m.group(1), m.group(2), m.group(3), line_no))
    return entries


def scan_file(repo: Path, rel: str):
    """Yields (rule_id, rel_path, line_no, line_text, description)."""
    text = (repo / rel).read_text()
    for line_no, line in enumerate(text.splitlines(), start=1):
        code = LINE_COMMENT.sub("", line)
        for rule_id, pattern, description in RULES:
            if pattern.search(code):
                yield rule_id, rel, line_no, line.strip(), description


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo", type=Path, default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the tree containing this script)")
    parser.add_argument("--allowlist", type=Path, default=None,
                        help="allowlist file (default: tools/determinism_allowlist.txt)")
    args = parser.parse_args()

    repo = args.repo.resolve()
    allowlist_path = args.allowlist or repo / "tools" / "determinism_allowlist.txt"
    allowlist = parse_allowlist(allowlist_path)
    allow_used = [False] * len(allowlist)

    files = []
    for glob in SCAN_GLOBS:
        matches = sorted(repo.glob(glob))
        if not matches:
            print(f"determinism_lint: scan glob matched nothing: {glob}", file=sys.stderr)
            return 1
        files.extend(matches)

    findings = []
    for path in files:
        rel = path.relative_to(repo).as_posix()
        for rule_id, rel_path, line_no, line, description in scan_file(repo, rel):
            allowed = False
            for idx, (a_rule, a_path, _just, _ln) in enumerate(allowlist):
                if a_rule == rule_id and a_path == rel_path:
                    allow_used[idx] = True
                    allowed = True
            if not allowed:
                findings.append((rule_id, rel_path, line_no, line, description))

    status = 0
    if findings:
        status = 1
        print(f"determinism_lint: {len(findings)} finding(s) on the report path:\n")
        for rule_id, rel_path, line_no, line, description in findings:
            print(f"  {rel_path}:{line_no}: [{rule_id}] {description}")
            print(f"      {line}")
        print(
            "\nFix the non-determinism, or — only after auditing that the construct\n"
            "cannot influence report bytes — add a justified entry to\n"
            f"{allowlist_path.relative_to(repo).as_posix()}."
        )

    stale = [e for e, used in zip(allowlist, allow_used) if not used]
    if stale:
        status = 1
        print("determinism_lint: stale allowlist entries (match no finding — delete them):")
        for rule_id, path, _just, line_no in stale:
            print(f"  {allowlist_path.name}:{line_no}: {rule_id} {path}")

    if status == 0:
        print(
            f"determinism_lint: clean — {len(files)} file(s), {len(RULES)} rules, "
            f"{len(allowlist)} audited allowlist entr{'y' if len(allowlist) == 1 else 'ies'}"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
