// Scenario campaign CLI: runs the registered large-scale experiments
// (spam waves, churn storms, partitions, PoW comparison, ...) across seed
// sweeps on a thread pool and writes one SCENARIO_<name>.json report per
// scenario. Same (scenario, seeds) input → byte-identical report.
//
//   build/examples/scenario_runner --list
//   build/examples/scenario_runner --scenario spam_wave
//   build/examples/scenario_runner --all --seeds 5 --threads 4 --out .
//
// Flags (all optional):
//   --list              print the scenario catalogue and exit
//   --scenario NAME     run one scenario            --all     run every one
//   --seeds K           sweep K seeds (default 3)   --seed0 S first seed (1)
//   --threads T         worker threads (default: min(seeds, cores))
//   --nodes N           override the spec's network size
//   --epochs E          override the spec's traffic epochs
//   --payload-bytes P   pad published payloads to P bytes (0 = bare key)
//   --topics K          carry K content topics (round-robin publishers)
//   --link-profile L    uniform | geo (per-link latency from region pairs)
//   --world-threads W   scheduler shards per run (default 1; every
//                       deterministic report byte is identical at any W)
//   --scalar-crypto     disable the batched crypto hot path and run the
//                       scalar reference implementations (reports are
//                       byte-identical either way)
//   --obs               sample the per-epoch time series (TIMESERIES_*.json)
//   --trace             record the seed0 message-lifecycle trace
//                       (TRACE_*.json, Chrome trace-event format; load it
//                       in ui.perfetto.dev or chrome://tracing)
//   --trace-capacity C  tracer ring size in events (default 65536)
//   --out DIR           directory for SCENARIO_<name>.json (default CWD)

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "scenario/campaign.h"
#include "scenario/scenarios.h"
#include "sim/topology.h"
#include "util/cli.h"

using namespace wakurln;

namespace {

void print_catalogue() {
  std::printf("registered scenarios:\n");
  for (const scenario::ScenarioSpec& s : scenario::registered_scenarios()) {
    std::printf("  %-20s %s\n", s.name.c_str(), s.description.c_str());
  }
}

void run_one(scenario::ScenarioSpec spec, const util::CliArgs& args) {
  spec.nodes = static_cast<std::size_t>(args.get_u64("nodes", spec.nodes));
  spec.traffic_epochs = args.get_u64("epochs", spec.traffic_epochs);
  spec.payload_bytes =
      static_cast<std::size_t>(args.get_u64("payload-bytes", spec.payload_bytes));
  spec.topics = static_cast<std::size_t>(args.get_u64("topics", spec.topics));
  if (args.has("link-profile")) {
    spec.link_profile = sim::link_profile_from_name(args.get("link-profile", ""));
  }
  spec.world_threads =
      static_cast<unsigned>(args.get_u64("world-threads", spec.world_threads));
  if (args.has("scalar-crypto")) spec.batch_crypto = false;
  if (args.has("obs")) spec.observability = true;
  if (args.has("trace")) spec.trace = true;
  spec.trace_capacity =
      static_cast<std::size_t>(args.get_u64("trace-capacity", spec.trace_capacity));

  scenario::CampaignConfig cfg;
  cfg.seeds = static_cast<std::size_t>(args.get_u64("seeds", 3));
  cfg.seed0 = args.get_u64("seed0", 1);
  cfg.threads = static_cast<std::size_t>(args.get_u64("threads", 0));

  std::printf("== scenario %s: %zu nodes, %llu epochs, %zu seeds ==\n",
              spec.name.c_str(), spec.nodes,
              static_cast<unsigned long long>(spec.traffic_epochs), cfg.seeds);
  const scenario::CampaignResult result = scenario::run_campaign(spec, cfg);

  std::printf("%-28s %14s %14s %14s\n", "metric", "mean", "min", "max");
  for (const scenario::AggregateMetric& a : result.aggregate) {
    std::printf("%-28s %14.3f %14.3f %14.3f\n", a.name.c_str(), a.mean, a.min, a.max);
  }
  const std::string out_dir = args.get("out", std::string());
  const std::string path = scenario::write_report(result, out_dir);
  std::printf("wrote %s\n", path.c_str());
  const std::string ts_path = scenario::write_timeseries(result, out_dir);
  if (!ts_path.empty()) std::printf("wrote %s\n", ts_path.c_str());
  const std::string trace_path = scenario::write_trace(result, out_dir);
  if (!trace_path.empty()) std::printf("wrote %s\n", trace_path.c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::CliArgs args(argc, argv);
    if (args.has("list")) {
      print_catalogue();
      return 0;
    }
    if (args.has("all")) {
      for (const scenario::ScenarioSpec& s : scenario::registered_scenarios()) {
        run_one(s, args);
      }
      return 0;
    }
    if (args.has("scenario")) {
      run_one(scenario::find_scenario(args.get("scenario", "")), args);
      return 0;
    }
    std::printf("no --scenario given; running the default catalogue listing.\n");
    std::printf("usage: %s --list | --scenario NAME | --all "
                "[--seeds K] [--seed0 S] [--threads T] [--nodes N] [--epochs E] "
                "[--payload-bytes P] [--topics K] [--link-profile uniform|geo] "
                "[--world-threads W] [--scalar-crypto] [--obs] [--trace] "
                "[--trace-capacity C] "
                "[--out DIR]\n\n",
                args.program().c_str());
    print_catalogue();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario_runner: %s\n", e.what());
    return 1;
  }
}
