// Quickstart: spin up a simulated WAKU-RLN-RELAY network, register members
// on the membership contract, publish a rate-limited anonymous message and
// watch it arrive everywhere.
//
//   build/examples/quickstart [--nodes N] [--seed S]

#include <algorithm>
#include <cstdio>

#include "util/cli.h"
#include "waku/harness.h"

using namespace wakurln;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  // 1. A simulated world: 12 peers (default), one chain, one contract.
  waku::HarnessConfig config = waku::HarnessConfig::defaults();
  config.node_count =
      std::max<std::size_t>(2, static_cast<std::size_t>(args.get_u64("nodes", 12)));
  config.seed = args.get_u64("seed", config.seed);
  waku::SimHarness world(config);

  std::printf("== WAKU-RLN-RELAY quickstart ==\n");
  std::printf("peers: %zu, tree depth: %zu, epoch T = %llu s, Thr = %llu epochs\n",
              world.size(), config.rln.tree_depth,
              static_cast<unsigned long long>(config.rln.epoch_period_seconds),
              static_cast<unsigned long long>(world.node(0).epoch_scheme().threshold()));

  // 2. Everyone subscribes to the content topic.
  world.subscribe_all("waku/quickstart");

  // 3. Everyone registers (stake + pk to the contract) and waits one block.
  world.register_all();
  std::printf("registered members: %llu (contract), local group size at node 0: %llu\n",
              static_cast<unsigned long long>(world.contract().member_count()),
              static_cast<unsigned long long>(world.node(0).group().member_count()));

  // 4. Publish an anonymous, spam-protected message.
  const auto outcome = world.node(0).publish("waku/quickstart",
                                             util::to_bytes("hello, anonymous world"));
  std::printf("publish outcome: %s\n",
              outcome == waku::WakuRlnRelay::PublishOutcome::kPublished ? "published"
                                                                        : "failed");

  // 5. A second message in the same epoch is stopped client-side.
  const auto second = world.node(0).publish("waku/quickstart",
                                            util::to_bytes("too fast!"));
  std::printf("second publish in the same epoch: %s\n",
              second == waku::WakuRlnRelay::PublishOutcome::kRateLimited
                  ? "rate-limited (as designed)"
                  : "unexpected");

  // 6. Let gossip do its thing.
  world.run_seconds(10);
  std::printf("nodes that delivered the message: %zu / %zu\n",
              world.nodes_delivered(util::to_bytes("hello, anonymous world")),
              world.size());

  // 7. Next epoch it is allowed again.
  world.run_seconds(config.rln.epoch_period_seconds);
  const auto third = world.node(0).publish("waku/quickstart",
                                           util::to_bytes("next epoch, next message"));
  world.run_seconds(10);
  std::printf("next-epoch publish: %s, delivered to %zu nodes\n",
              third == waku::WakuRlnRelay::PublishOutcome::kPublished ? "published"
                                                                      : "failed",
              world.nodes_delivered(util::to_bytes("next epoch, next message")));
  return 0;
}
