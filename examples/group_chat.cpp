// Anonymous group chat: several participants exchange messages over many
// epochs. Demonstrates that (a) the payload carries no sender identity,
// (b) per-epoch nullifiers are unlinkable across epochs, and (c) the rate
// limit shapes traffic to one message per member per epoch.
//
//   build/examples/group_chat [--nodes N] [--seed S]

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_set>

#include "util/cli.h"
#include "waku/harness.h"

using namespace wakurln;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  waku::HarnessConfig config = waku::HarnessConfig::defaults();
  // 4 speakers plus at least one silent bystander.
  config.node_count =
      std::max<std::size_t>(5, static_cast<std::size_t>(args.get_u64("nodes", 8)));
  config.seed = args.get_u64("seed", config.seed);
  config.rln.epoch_period_seconds = 5;
  waku::SimHarness world(config);
  world.subscribe_all("waku/chat-room");
  world.register_all();

  const char* scripts[4][3] = {
      {"anyone up for lunch?", "thai place?", "see you there"},
      {"yes!", "+1 for thai", "omw"},
      {"can't today", "enjoy!", "next time"},
      {"lunch sounds great", "thai works", "leaving now"},
  };

  std::printf("== anonymous group chat (4 active speakers, 8 peers) ==\n");
  for (int round = 0; round < 3; ++round) {
    for (std::size_t speaker = 0; speaker < 4; ++speaker) {
      const auto outcome =
          world.node(speaker).publish("waku/chat-room", util::to_bytes(scripts[speaker][round]));
      if (outcome != waku::WakuRlnRelay::PublishOutcome::kPublished) {
        std::printf("  publish failed for speaker %zu round %d\n", speaker, round);
      }
    }
    // Everyone already spoke this epoch; a second attempt is throttled.
    const auto extra = world.node(0).publish("waku/chat-room", util::to_bytes("one more thing..."));
    if (extra == waku::WakuRlnRelay::PublishOutcome::kRateLimited) {
      std::printf("round %d: extra message throttled client-side (1 msg/epoch)\n", round);
    }
    world.run_seconds(config.rln.epoch_period_seconds);  // next epoch
  }
  world.run_seconds(10);

  // Tally deliveries at a bystander node (the last node never speaks).
  const std::size_t bystander = world.size() - 1;
  std::unordered_set<std::string> seen;
  for (const auto& d : world.deliveries()) {
    if (d.node_index == bystander) {
      seen.insert(std::string(d.payload.begin(), d.payload.end()));
    }
  }
  std::printf("bystander (node %zu) received %zu distinct messages (expected 12)\n",
              bystander, seen.size());
  std::printf("note: no delivery carries a sender id — the envelope holds only\n"
              "      {epoch, share y, nullifier, root, proof} plus the payload.\n");

  const auto stats = world.aggregate_stats();
  std::printf("network stats: accepted=%llu duplicates=%llu double_signals=%llu\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.duplicates),
              static_cast<unsigned long long>(stats.double_signals));
  return 0;
}
