// Spam attack demo (the paper's motivating scenario, §I): a registered
// member turns hostile and floods the topic. With WAKU-RLN-RELAY the
// second message in one epoch already exposes the attacker's secret key;
// routers reconstruct it, slash the stake, and every peer removes the
// member globally — no IP blocking, no reputation warm-up, no PoW tax on
// honest phones.
//
//   build/examples/spam_attack [--nodes N] [--seed S]

#include <algorithm>
#include <cstdio>

#include "util/cli.h"
#include "waku/harness.h"

using namespace wakurln;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  waku::HarnessConfig config = waku::HarnessConfig::defaults();
  // The attacker is node 5; keep at least a handful of honest victims.
  config.node_count =
      std::max<std::size_t>(8, static_cast<std::size_t>(args.get_u64("nodes", 16)));
  config.seed = args.get_u64("seed", config.seed);
  waku::SimHarness world(config);
  world.subscribe_all("waku/town-square");
  world.register_all();

  std::printf("== spam attack vs WAKU-RLN-RELAY ==\n");
  std::printf("members registered: %llu, stake per member: %llu wei\n",
              static_cast<unsigned long long>(world.contract().member_count()),
              static_cast<unsigned long long>(world.contract().config().stake_wei));

  auto& attacker = world.node(5);
  std::printf("\nattacker (node 5) floods 10 messages inside one epoch...\n");
  int sent = 0;
  for (int i = 0; i < 10; ++i) {
    const auto outcome = attacker.publish_unchecked(
        "waku/town-square", util::to_bytes("BUY NOW #" + std::to_string(i)));
    if (outcome == waku::WakuRlnRelay::PublishOutcome::kPublished) ++sent;
  }
  std::printf("attacker managed to sign %d messages before losing membership\n", sent);

  world.run_seconds(30);  // propagation + slash tx mined

  // How much spam actually reached a victim?
  std::size_t spam_deliveries = 0;
  for (const auto& d : world.deliveries()) {
    if (d.payload.size() >= 3 && d.payload[0] == 'B') ++spam_deliveries;
  }
  const auto stats = world.aggregate_stats();
  const std::size_t honest_nodes = world.size() - 1;
  std::printf("\nresults after 30 s:\n");
  std::printf("  spam deliveries across %zu honest nodes: %zu (out of a possible %zu)\n",
              honest_nodes, spam_deliveries, 10 * honest_nodes);
  std::printf("  double-signals detected by routers:     %llu\n",
              static_cast<unsigned long long>(stats.double_signals));
  std::printf("  slash transactions submitted:           %llu\n",
              static_cast<unsigned long long>(stats.slashes_submitted));
  std::printf("  attacker still a member?                %s\n",
              world.contract().is_active(attacker.identity().pk) ? "yes" : "no");
  std::printf("  stake burnt:                            %llu wei\n",
              static_cast<unsigned long long>(world.chain().ledger().burnt_total()));

  // The room still works for honest members.
  world.clear_deliveries();
  world.run_seconds(world.config().rln.epoch_period_seconds);
  world.node(1).publish("waku/town-square", util::to_bytes("calm restored"));
  world.run_seconds(10);
  std::printf("  honest message after the attack reached %zu / %zu nodes\n",
              world.nodes_delivered(util::to_bytes("calm restored")), world.size());
  std::printf("\ntakeaway: at most one signed message per epoch is deliverable;\n"
              "any second signature leaks the key and costs the stake.\n");
  return 0;
}
