// Slashing economics walk-through (paper §II): follows the money and the
// cryptography of one double-signal — from the two Shamir shares, through
// off-chain key reconstruction, to the on-chain burn/reward split.
//
//   build/examples/slashing_economics [--nodes N] [--seed S]

#include <algorithm>
#include <cstdio>

#include "hash/poseidon.h"
#include "shamir/shamir.h"
#include "util/cli.h"
#include "waku/harness.h"

using namespace wakurln;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  waku::HarnessConfig config = waku::HarnessConfig::defaults();
  // The offender is node 2; keep at least one slasher and one bystander.
  config.node_count =
      std::max<std::size_t>(4, static_cast<std::size_t>(args.get_u64("nodes", 6)));
  config.seed = args.get_u64("seed", config.seed);
  config.stake_wei = 2'000'000;
  config.burn_fraction = 0.5;
  waku::SimHarness world(config);
  world.subscribe_all("waku/econ");
  world.register_all();

  auto& offender = world.node(2);
  const field::Fr true_sk = offender.identity().sk;

  std::printf("== RLN slashing economics ==\n");
  std::printf("stake: %llu wei, burn fraction: %.0f%%\n\n",
              static_cast<unsigned long long>(config.stake_wei),
              config.burn_fraction * 100);

  // --- the cryptographic core, shown explicitly -----------------------
  const std::uint64_t epoch = offender.current_epoch();
  const field::Fr epoch_f = rln::EpochScheme::to_field(epoch);
  const field::Fr a1 = hash::poseidon_hash2(true_sk, epoch_f);
  const util::Bytes m1 = util::to_bytes("double");
  const util::Bytes m2 = util::to_bytes("signal");
  const field::Fr x1 = zksnark::RlnCircuit::message_to_x(m1);
  const field::Fr x2 = zksnark::RlnCircuit::message_to_x(m2);
  const auto s1 = shamir::make_share(true_sk, a1, x1);
  const auto s2 = shamir::make_share(true_sk, a1, x2);
  const auto reconstructed = shamir::reconstruct(s1, s2);
  std::printf("two shares of the same epoch line:\n");
  std::printf("  (x1, y1) = (%.16s…, %.16s…)\n", x1.to_hex().c_str(), s1.y.to_hex().c_str());
  std::printf("  (x2, y2) = (%.16s…, %.16s…)\n", x2.to_hex().c_str(), s2.y.to_hex().c_str());
  std::printf("reconstructed sk == true sk?  %s\n\n",
              (reconstructed && *reconstructed == true_sk) ? "yes" : "no");

  // --- the same thing happening live in the network --------------------
  offender.publish_unchecked("waku/econ", m1);
  offender.publish_unchecked("waku/econ", m2);
  world.run_seconds(30);

  std::printf("after the network caught it:\n");
  std::printf("  offender active on contract:  %s\n",
              world.contract().is_active(hash::poseidon_hash1(true_sk)) ? "yes" : "no");
  std::printf("  burnt:                        %llu wei\n",
              static_cast<unsigned long long>(world.chain().ledger().burnt_total()));
  std::uint64_t reward_paid = 0;
  std::size_t slasher = SIZE_MAX;
  for (std::size_t i = 0; i < world.size(); ++i) {
    const auto bal = world.chain().ledger().balance_of(world.account_of(i));
    const auto baseline = world.config().initial_balance_wei -
                          (i == 2 ? 0 : config.stake_wei);  // others still staked
    if (i != 2 && bal > baseline) {
      reward_paid = bal - baseline;
      slasher = i;
    }
  }
  std::printf("  slasher:                      node %zu (+%llu wei reward)\n", slasher,
              static_cast<unsigned long long>(reward_paid));
  // The offender staked at registration and the stake is now gone for good.
  std::printf("  offender net loss:            %llu wei (the full stake)\n",
              static_cast<unsigned long long>(
                  world.config().initial_balance_wei -
                  world.chain().ledger().balance_of(world.account_of(2))));
  std::printf("\nincentive summary: detecting spam pays %llu wei; spamming costs %llu.\n",
              static_cast<unsigned long long>(reward_paid),
              static_cast<unsigned long long>(config.stake_wei));
  return 0;
}
