#include "scenario/runner.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/pow.h"
#include "gossipsub/message.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "sim/topology.h"
#include "util/bytes.h"
#include "util/shared_bytes.h"
#include "waku/harness.h"

namespace wakurln::scenario {
namespace {

// Node index layout: [active publishers][pure relays][spammers]
// [burst flooders][adaptive spammers][stormers][replayers][observers].
// The relay band is empty unless spec.publishers caps the publisher set.
enum class Role {
  kHonest,
  kRelay,
  kSpammer,
  kFlooder,
  kAdaptive,
  kStormer,
  kReplayer,
  kObserver,
};

Role role_of(const ScenarioSpec& spec, std::size_t i) {
  const std::size_t honest = spec.honest_publishers();
  if (i < spec.active_publishers()) return Role::kHonest;
  if (i < honest) return Role::kRelay;
  std::size_t edge = honest + spec.adversaries.spammers;
  if (i < edge) return Role::kSpammer;
  edge += spec.adversaries.burst_flooders;
  if (i < edge) return Role::kFlooder;
  edge += spec.adversaries.adaptive_spammers;
  if (i < edge) return Role::kAdaptive;
  edge += spec.storm.stormers;
  if (i < edge) return Role::kStormer;
  edge += spec.replay.replayers;
  if (i < edge) return Role::kReplayer;
  return Role::kObserver;
}

/// Indices of every node that publishes from the start of the traffic
/// phase (and therefore needs membership up front). Stormers are
/// deliberately absent: the registration storm joins them mid-run.
std::vector<std::size_t> publishing_nodes(const ScenarioSpec& spec) {
  std::vector<std::size_t> out;
  out.reserve(spec.active_publishers() + spec.adversaries.total());
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    switch (role_of(spec, i)) {
      case Role::kHonest:
      case Role::kSpammer:
      case Role::kFlooder:
      case Role::kAdaptive:
        out.push_back(i);
        break;
      default:
        break;
    }
  }
  return out;
}

/// Indices of the storm band, in join order.
std::vector<std::size_t> storm_nodes(const ScenarioSpec& spec) {
  std::vector<std::size_t> out;
  out.reserve(spec.storm.stormers);
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    if (role_of(spec, i) == Role::kStormer) out.push_back(i);
  }
  return out;
}

/// First node index of the observer coalition (tail band).
std::size_t first_observer(const ScenarioSpec& spec) {
  return spec.nodes - spec.observers;
}

/// Rewires the eclipse-ring coalition around its target publisher: the
/// target's links to non-coalition nodes are severed and every coalition
/// member links to the target directly. The coalition keeps its own base
/// links, so the target stays connected to the overlay — through the
/// observers, which is the point: the target's first hop is always
/// observed. Draws no randomness; kRandomTail placement is a no-op (the
/// coalition is wired like any other node), and kSybilHighDegree is
/// applied earlier, at topology-build time, through the DegreeBias hook.
void apply_observer_placement(const ScenarioSpec& spec, sim::Network& net) {
  if (spec.observers == 0 ||
      spec.observer.placement != ObserverPlacement::kEclipseRing) {
    return;
  }
  const auto target = static_cast<sim::NodeId>(spec.observer.eclipse_target);
  const std::size_t coalition_start = first_observer(spec);
  for (const sim::NodeId peer : net.neighbors(target)) {
    if (static_cast<std::size_t>(peer) < coalition_start) {
      net.disconnect(target, peer);
    }
  }
  for (std::size_t o = coalition_start; o < spec.nodes; ++o) {
    const auto obs = static_cast<sim::NodeId>(o);
    net.connect(target, obs);
    // The ring is wired after the harness applied per-link latency, so
    // geo worlds must derive the new links' params themselves — an
    // eclipse must not come with an accidental uniform-latency shortcut.
    if (spec.link_profile == sim::LinkProfile::kGeo) {
      net.set_link_params(
          target, obs,
          sim::geo_link_params(
              sim::geo_region_of(spec.observer.eclipse_target, spec.nodes),
              sim::geo_region_of(o, spec.nodes), spec.link));
    }
  }
}

/// Topic index node `i`'s epoch-`e` message is published on: round-robin
/// over the configured topics (always 0 for single-topic worlds).
std::size_t topic_of(const ScenarioSpec& spec, std::size_t i, std::uint64_t e) {
  return spec.topics == 1 ? 0 : (i + static_cast<std::size_t>(e)) % spec.topics;
}

/// Topic names of a scenario. Single-topic worlds keep the original
/// "scenario/<name>" id (byte-compatible reports); multi-topic worlds
/// append "/t<k>".
std::vector<std::string> topic_names(const ScenarioSpec& spec) {
  std::vector<std::string> out;
  const std::string base = "scenario/" + spec.name;
  if (spec.topics == 1) {
    out.push_back(base);
    return out;
  }
  out.reserve(spec.topics);
  for (std::size_t k = 0; k < spec.topics; ++k) {
    out.push_back(base + "/t" + std::to_string(k));
  }
  return out;
}

/// Pads `key` with NULs to spec.payload_bytes (workload keys never
/// contain NUL, so key_of can strip the padding).
util::Bytes padded_payload(const ScenarioSpec& spec, const std::string& key) {
  util::Bytes out = util::to_bytes(key);
  if (out.size() < spec.payload_bytes) out.resize(spec.payload_bytes, 0);
  return out;
}

/// Recovers the workload key from a (possibly padded) payload.
std::string key_of(std::span<const std::uint8_t> payload) {
  const auto nul = std::find(payload.begin(), payload.end(), std::uint8_t{0});
  return std::string(payload.begin(), nul);
}

std::string payload_key(char tag, std::size_t node, std::uint64_t epoch,
                        std::uint64_t j) {
  std::string out(1, tag);
  out += '|';
  out += std::to_string(node);
  out += '|';
  out += std::to_string(epoch);
  out += '|';
  out += std::to_string(j);
  return out;
}

struct Publication {
  std::size_t origin = 0;
  sim::TimeUs at = 0;
  std::size_t topic = 0;
};

/// One application-level delivery, keyed by the bare payload.
struct Delivered {
  std::size_t node;
  std::string payload;
  sim::TimeUs at;
};

/// What the workload phase recorded. Ordered containers throughout: metric
/// assembly iterates them and campaign reports are byte-compared.
struct TrafficLog {
  std::uint64_t honest_attempted = 0;
  std::uint64_t honest_published = 0;
  std::uint64_t spam_attempted = 0;
  std::uint64_t spam_published = 0;
  std::map<std::string, Publication> honest;
  std::map<std::string, Publication> spam;
  /// adversary index -> traffic epoch -> messages actually published.
  std::map<std::size_t, std::map<std::uint64_t, std::uint64_t>> adversary_published;
  /// Over-rate probes the adaptive spammers attempted / got onto the wire.
  std::uint64_t adaptive_probes_attempted = 0;
  std::uint64_t adaptive_probes_published = 0;
};

using PublishFn =
    std::function<bool(std::size_t node, std::size_t topic, const std::string& payload)>;

void take_offline(sim::Network& net, sim::NodeId id) {
  for (const sim::NodeId peer : net.neighbors(id)) net.disconnect(id, peer);
  net.drop_in_flight(id);
}

void bring_online(sim::Network& net, sim::NodeId id, const std::vector<char>& online,
                  std::size_t degree, util::Rng& rng) {
  std::vector<sim::NodeId> targets;
  targets.reserve(online.size());
  for (std::size_t j = 0; j < online.size(); ++j) {
    if (online[j] && j != id) targets.push_back(static_cast<sim::NodeId>(j));
  }
  sim::connect_to_random_peers(net, id, targets, degree, rng);
}

/// First traffic-epoch boundary after `sched.now()`: the next protocol
/// epoch boundary, so one workload epoch never straddles two RLN epochs.
/// Shared by drive_traffic and the registration-storm timer (which must
/// agree on where the waves land).
sim::TimeUs traffic_start_us(const ScenarioSpec& spec, const sim::Scheduler& sched) {
  const std::uint64_t now_s = sched.now() / sim::kUsPerSecond;
  const std::uint64_t start_s = (now_s / spec.epoch_seconds + 1) * spec.epoch_seconds;
  return start_s * sim::kUsPerSecond;
}

/// Schedules the honest workload, the adversaries, churn and the partition
/// onto the world clock, runs the traffic phase plus `drain_seconds`, and
/// records what happened into `log` (an out-param so observability probes
/// registered before the traffic phase can read the counters live). All
/// workload randomness is pre-drawn from a dedicated stream in a fixed
/// (epoch-major, node-minor) order, so the decision sequence is a
/// function of the seed alone.
void drive_traffic(const ScenarioSpec& spec, std::uint64_t seed,
                   sim::Scheduler& sched, sim::Network& net,
                   const PublishFn& publish_honest, const PublishFn& publish_spam,
                   std::uint64_t drain_seconds, TrafficLog& log) {
  const sim::TimeUs t_us = spec.epoch_seconds * sim::kUsPerSecond;
  util::Rng traffic_rng(seed ^ 0x7472616666696331ULL);
  util::Rng rewire_rng(seed ^ 0x72656a6f696e3031ULL);

  // Publish offsets stay in the first half of each epoch so a message and
  // its proof always share the epoch they were drawn for.
  const sim::TimeUs start_us = traffic_start_us(spec, sched);

  std::vector<char> online(spec.nodes, 1);

  // Partition: cut the overlay into [0, split) / [split, n) at one epoch
  // boundary, restore the exact severed links at a later one.
  std::vector<std::pair<sim::NodeId, sim::NodeId>> severed;
  if (spec.partition.enabled) {
    const std::uint64_t cut_e =
        std::min(spec.partition.cut_at_epoch, spec.traffic_epochs - 1);
    const std::uint64_t heal_e = std::max(spec.partition.heal_at_epoch, cut_e + 1);
    const auto split = static_cast<std::size_t>(
        static_cast<double>(spec.nodes) * (1.0 - spec.partition.fraction));
    sched.schedule_at(start_us + cut_e * t_us, [&net, &severed, split, n = spec.nodes] {
      for (std::size_t a = 0; a < split; ++a) {
        for (std::size_t b = split; b < n; ++b) {
          const auto ida = static_cast<sim::NodeId>(a);
          const auto idb = static_cast<sim::NodeId>(b);
          if (net.are_connected(ida, idb)) {
            net.disconnect(ida, idb);
            severed.emplace_back(ida, idb);
          }
        }
      }
    });
    sched.schedule_at(start_us + heal_e * t_us, [&net, &severed, &online] {
      for (const auto& [a, b] : severed) {
        // A severed endpoint may have churned offline while the cut was
        // open; its links come back through its own rejoin, not the heal.
        if (online[a] && online[b]) net.connect(a, b);
      }
      severed.clear();
    });
  }

  for (std::uint64_t e = 0; e < spec.traffic_epochs; ++e) {
    const sim::TimeUs epoch_us = start_us + e * t_us;
    for (std::size_t i = 0; i < spec.nodes; ++i) {
      const Role role = role_of(spec, i);

      if (role == Role::kHonest && spec.churn.leave_prob_per_epoch > 0) {
        // Draw both values unconditionally to keep the stream layout fixed.
        const bool leaves = traffic_rng.chance(spec.churn.leave_prob_per_epoch);
        const sim::TimeUs leave_off = traffic_rng.uniform(1, t_us / 4);
        if (leaves) {
          sched.schedule_at(epoch_us + leave_off, [&net, &online, i] {
            if (!online[i]) return;
            online[i] = 0;
            take_offline(net, static_cast<sim::NodeId>(i));
          });
          sched.schedule_at(
              epoch_us + spec.churn.offline_epochs * t_us + leave_off,
              [&net, &online, &rewire_rng, i, degree = spec.churn.rejoin_degree] {
                if (online[i]) return;
                online[i] = 1;
                bring_online(net, static_cast<sim::NodeId>(i), online, degree,
                             rewire_rng);
              });
        }
      }

      const std::size_t topic = topic_of(spec, i, e);
      switch (role) {
        case Role::kRelay:
          break;  // routes and validates, never publishes
        case Role::kHonest: {
          const bool publishes = traffic_rng.chance(spec.honest_publish_prob);
          const sim::TimeUs off = t_us / 4 + traffic_rng.uniform(0, t_us / 4);
          if (!publishes) break;
          sched.schedule_at(epoch_us + off, [&log, &online, &publish_honest, &sched, i,
                                             e, topic] {
            if (!online[i]) return;
            ++log.honest_attempted;
            const std::string key = payload_key('h', i, e, 0);
            if (publish_honest(i, topic, key)) {
              ++log.honest_published;
              log.honest.emplace(key, Publication{i, sched.now(), topic});
            }
          });
          break;
        }
        case Role::kSpammer: {
          const sim::TimeUs off = t_us / 4 + traffic_rng.uniform(0, t_us / 4);
          for (std::uint64_t j = 0; j < spec.adversaries.spam_per_epoch; ++j) {
            sched.schedule_at(
                epoch_us + off + j * sim::kUsPerMs,
                [&log, &publish_spam, &sched, i, e, j, topic] {
                  ++log.spam_attempted;
                  const std::string key = payload_key('s', i, e, j);
                  if (publish_spam(i, topic, key)) {
                    ++log.spam_published;
                    log.spam.emplace(key, Publication{i, sched.now(), topic});
                    ++log.adversary_published[i][e];
                  }
                });
          }
          break;
        }
        case Role::kFlooder: {
          const std::uint64_t burst_e =
              std::min(spec.adversaries.burst_at_epoch, spec.traffic_epochs - 1);
          if (e != burst_e) break;
          const sim::TimeUs off = t_us / 4 + traffic_rng.uniform(0, t_us / 4);
          for (std::uint64_t j = 0; j < spec.adversaries.burst_size; ++j) {
            sched.schedule_at(
                epoch_us + off + j * sim::kUsPerMs,
                [&log, &publish_spam, &sched, i, e, j, topic] {
                  ++log.spam_attempted;
                  const std::string key = payload_key('f', i, e, j);
                  if (publish_spam(i, topic, key)) {
                    ++log.spam_published;
                    log.spam.emplace(key, Publication{i, sched.now(), topic});
                    ++log.adversary_published[i][e];
                  }
                });
          }
          break;
        }
        case Role::kAdaptive: {
          // Exactly messages_per_epoch messages through the *rate-checked*
          // client path: spam the limiter cannot tell from honest traffic
          // and the slasher never sees. On probe epochs, one extra
          // unchecked message right after the allowance — its slot reuse
          // is the double signal the network slashes.
          const sim::TimeUs off = t_us / 4 + traffic_rng.uniform(0, t_us / 4);
          for (std::uint64_t j = 0; j < spec.messages_per_epoch; ++j) {
            sched.schedule_at(
                epoch_us + off + j * sim::kUsPerMs,
                [&log, &publish_honest, &sched, i, e, j, topic] {
                  ++log.spam_attempted;
                  const std::string key = payload_key('a', i, e, j);
                  if (publish_honest(i, topic, key)) {
                    ++log.spam_published;
                    log.spam.emplace(key, Publication{i, sched.now(), topic});
                    ++log.adversary_published[i][e];
                  }
                });
          }
          const bool probes = spec.adversaries.adaptive_probe_every > 0 &&
                              (e + 1) % spec.adversaries.adaptive_probe_every == 0;
          if (!probes) break;
          sched.schedule_at(
              epoch_us + off + (spec.messages_per_epoch + 1) * sim::kUsPerMs,
              [&log, &publish_spam, &sched, i, e, topic] {
                ++log.spam_attempted;
                ++log.adaptive_probes_attempted;
                const std::string key = payload_key('p', i, e, 0);
                if (publish_spam(i, topic, key)) {
                  ++log.spam_published;
                  ++log.adaptive_probes_published;
                  log.spam.emplace(key, Publication{i, sched.now(), topic});
                  ++log.adversary_published[i][e];
                }
              });
          break;
        }
        case Role::kStormer:    // joins are driven by the storm timer,
        case Role::kReplayer:   // replays off the frame tap,
        case Role::kObserver:   // observers never publish
          break;
      }
    }
  }

  sched.run_until(start_us + spec.traffic_epochs * t_us +
                  drain_seconds * sim::kUsPerSecond);
}

/// Registers the workload counters as registry probes (no-op when the
/// registry is disabled). `log` must outlive the sampling run.
void register_workload_probes(obs::Registry& reg, const TrafficLog& log) {
  if (!reg.enabled()) return;
  reg.probe("honest_attempted",
            [&log] { return static_cast<double>(log.honest_attempted); });
  reg.probe("honest_published",
            [&log] { return static_cast<double>(log.honest_published); });
  reg.probe("spam_attempted",
            [&log] { return static_cast<double>(log.spam_attempted); });
  reg.probe("spam_published",
            [&log] { return static_cast<double>(log.spam_published); });
}

/// Per-subsystem resident-memory maxima over the per-epoch samples.
struct MemoryPeaks {
  std::size_t router = 0;
  std::size_t mcache = 0;
  std::size_t nullifier = 0;
  std::size_t merkle = 0;
  std::size_t event_pool = 0;
  std::size_t network = 0;
};

void fill_memory_resources(const MemoryPeaks& peaks, ResourceUsage& resource) {
  resource.mem_router_bytes = static_cast<double>(peaks.router);
  resource.mem_mcache_bytes = static_cast<double>(peaks.mcache);
  resource.mem_nullifier_bytes = static_cast<double>(peaks.nullifier);
  resource.mem_merkle_bytes = static_cast<double>(peaks.merkle);
  resource.mem_event_pool_bytes = static_cast<double>(peaks.event_pool);
  resource.mem_network_bytes = static_cast<double>(peaks.network);
}

/// The coalition-first-spy adversary: colluding silent observer nodes
/// record, per message, which neighbour first handed it to *any* member of
/// the coalition — the earliest arrival across the whole coalition — and
/// guess that neighbour as the originator ("Who started this rumor?",
/// arXiv:1902.07138). How well the guess works is a function of the
/// coalition's structural placement (ObserverSpec), not just its size.
/// The runner feeds it from the network's frame tap (one tap slot is
/// shared between every passive adversary of a scenario).
class FirstSpyObserver {
 public:
  using Decoder = std::function<std::optional<std::string>(const util::SharedBytes&)>;

  FirstSpyObserver(const ScenarioSpec& spec, const sim::Scheduler& sched,
                   Decoder decoder)
      : sched_(sched), decoder_(std::move(decoder)) {
    if (spec.observers == 0) return;
    is_observer_.assign(spec.nodes, 0);
    for (std::size_t i = spec.nodes - spec.observers; i < spec.nodes; ++i) {
      is_observer_[i] = 1;
    }
    lane_seen_.resize(sched.lane_count());
  }

  bool enabled() const { return !is_observer_.empty(); }

  /// Tap callback. Frames deliver on the receiving node's lane, so each
  /// sighting lands in that lane's private map (no shared writes during a
  /// window); within one lane events run in stamp order, so try_emplace
  /// keeps the lane-earliest arrival.
  void on_frame(sim::NodeId from, sim::NodeId to, const sim::Frame& frame) {
    if (!is_observer_[to]) return;
    const auto* rpc = frame.get_if<gossipsub::Rpc>();
    if (rpc == nullptr) return;
    auto& seen = lane_seen_[sched_.current_lane()];
    for (const gossipsub::GsMessagePtr& msg : rpc->publish) {
      if (!msg) continue;
      const auto key = decoder_(msg->data);
      if (key) seen.try_emplace(*key, sched_.current_stamp(), from);
    }
  }

  /// Coalition view after the run: per message, the neighbour whose frame
  /// carried it to *any* observer first — the minimum event stamp across
  /// the per-lane maps, identical at every world_threads.
  const std::unordered_map<std::string, sim::NodeId>& first_seen() const {
    if (!merged_) {
      for (const auto& seen : lane_seen_) {
        for (const auto& [key, entry] : seen) {
          const auto it = first_stamped_.find(key);
          if (it == first_stamped_.end() || entry.first < it->second.first) {
            first_stamped_[key] = entry;
          }
        }
      }
      for (const auto& [key, entry] : first_stamped_) {
        first_seen_[key] = entry.second;
      }
      merged_ = true;
    }
    return first_seen_;
  }

 private:
  using Sighting = std::pair<sim::Scheduler::Stamp, sim::NodeId>;

  const sim::Scheduler& sched_;
  Decoder decoder_;
  std::vector<char> is_observer_;
  std::vector<std::unordered_map<std::string, Sighting>> lane_seen_;
  mutable std::unordered_map<std::string, Sighting> first_stamped_;
  mutable std::unordered_map<std::string, sim::NodeId> first_seen_;
  mutable bool merged_ = false;
};

/// The IWANT-replay adversary: colluding silent peers (the replayer band)
/// record every message delivered to them. After spec.replay.delay_seconds
/// — chosen past the honest routers' seen-cache TTL but inside the RLN
/// epoch acceptance window — the sighting replayer advertises the old id
/// via IHAVE to its honest neighbours. Their unmodified routers answer
/// with IWANT (the id is no longer in their seen cache); the colluding
/// store serves the stale message, forcing a full re-validation on the
/// honest side — which the proof-verdict cache answers without a zkSNARK
/// verify (metric: verifications_saved).
class ReplayAttacker {
 public:
  ReplayAttacker(const ScenarioSpec& spec, sim::Network& net, gossipsub::TopicId topic)
      : spec_(spec), net_(net), topic_(std::move(topic)) {
    if (spec.replay.replayers == 0) return;
    is_replayer_.assign(spec.nodes, 0);
    const std::size_t first = spec.nodes - spec.observers - spec.replay.replayers;
    for (std::size_t i = first; i < spec.nodes - spec.observers; ++i) {
      is_replayer_[i] = 1;
    }
  }

  bool enabled() const { return !is_replayer_.empty(); }

  /// Tap callback, running on the sighting replayer's shard lane. The
  /// colluding store is shared world state, so every write to it (and to
  /// the attack counters) goes through run_deferred: commits execute at
  /// the window barriers, in deferring-stamp order, with the shards
  /// quiesced — the same points and order at every world_threads. During
  /// a window the store is therefore read-only, which makes the inline
  /// lookups below race-free.
  void on_frame(sim::NodeId from, sim::NodeId to, const sim::Frame& frame) {
    if (!is_replayer_[to]) return;
    const auto* rpc = frame.get_if<gossipsub::Rpc>();
    if (rpc == nullptr) return;
    sim::Scheduler& sched = net_.scheduler();
    // Record fresh messages and schedule their delayed IHAVE replay. Two
    // lanes sighting the same new id in one window both defer a commit;
    // the earliest-stamped one wins the emplace at the barrier, so the
    // colluders still record each id exactly once.
    for (const gossipsub::GsMessagePtr& msg : rpc->publish) {
      if (!msg || msg->topic != topic_) continue;
      if (store_.find(msg->id) != store_.end()) continue;
      sched.run_deferred([this, &sched, msg, replayer = to,
                          seen_at = sched.now()] {
        if (!store_.emplace(msg->id, msg).second) return;
        ++ids_recorded_;
        sched.schedule_at(
            seen_at + spec_.replay.delay_seconds * sim::kUsPerSecond,
            [this, replayer, id = msg->id] { send_ihave(replayer, id); });
      });
    }
    // Serve IWANT requests from the colluding store (the replayer's own
    // router mcache has long expired — that is the point of the attack).
    // The reply is sent inline: the sender is the replayer whose lane is
    // executing, so its link-stream draws stay in lane order.
    for (const gossipsub::ControlIWant& iwant : rpc->iwant) {
      gossipsub::Rpc reply;
      for (const gossipsub::MessageId& id : iwant.ids) {
        if (const auto it = store_.find(id); it != store_.end()) {
          reply.publish.push_back(it->second);
        }
      }
      if (!reply.publish.empty()) {
        sched.run_deferred([this, n = reply.publish.size()] { served_ += n; });
        send_rpc(to, from, std::move(reply));
      }
    }
  }

  std::uint64_t ids_recorded() const { return ids_recorded_; }
  std::uint64_t ihaves_sent() const { return ihaves_sent_; }
  std::uint64_t messages_served() const { return served_; }

 private:
  void send_ihave(sim::NodeId replayer, const gossipsub::MessageId& id) {
    gossipsub::Rpc rpc;
    rpc.ihave.push_back({topic_, {id}});
    std::size_t sent = 0;
    // neighbors() is sorted, so the targeted victims are deterministic.
    for (const sim::NodeId peer : net_.neighbors(replayer)) {
      if (sent >= spec_.replay.ihave_fanout) break;
      if (is_replayer_[peer]) continue;  // colluders need no advertisement
      send_rpc(replayer, peer, rpc);
      ++sent;
    }
    ihaves_sent_ += sent;
  }

  void send_rpc(sim::NodeId from, sim::NodeId to, gossipsub::Rpc rpc) {
    if (!net_.are_connected(from, to)) return;
    const auto breakdown = rpc.wire_breakdown();
    net_.send(from, to, sim::Frame::of<gossipsub::Rpc>(std::move(rpc)),
              breakdown.total());
  }

  const ScenarioSpec& spec_;
  sim::Network& net_;
  gossipsub::TopicId topic_;
  std::vector<char> is_replayer_;
  std::unordered_map<gossipsub::MessageId, gossipsub::GsMessagePtr,
                     gossipsub::MessageIdHash>
      store_;
  std::uint64_t ids_recorded_ = 0;
  std::uint64_t ihaves_sent_ = 0;
  std::uint64_t served_ = 0;
};

/// Wires the passive adversaries into the network's single tap slot.
void install_frame_tap(sim::Network& net, FirstSpyObserver& spy,
                       ReplayAttacker* replay) {
  if (!spy.enabled() && (replay == nullptr || !replay->enabled())) return;
  net.set_frame_tap([&spy, replay](sim::NodeId from, sim::NodeId to,
                                   const sim::Frame& frame, std::size_t) {
    if (spy.enabled()) spy.on_frame(from, to, frame);
    if (replay != nullptr && replay->enabled()) replay->on_frame(from, to, frame);
  });
}

/// Steady-state allocation probe. drive_traffic pre-schedules the whole
/// workload synchronously before running it, and the first traffic
/// epoch's delivery wave sets the pool's high-water mark — so the probe
/// fires one epoch into the traffic phase: from there on, a warm pool
/// should serve the run without allocating.
struct SteadyProbe {
  std::uint64_t from_s = 0;   ///< steady phase start (simulated seconds)
  std::uint64_t allocs0 = 0;  ///< pool misses when the probe fired
};

/// `probe` must outlive the run: the scheduled callback writes into it.
void arm_steady_probe(sim::Scheduler& sched, std::uint64_t epoch_seconds,
                      SteadyProbe& probe) {
  const std::uint64_t now_s = sched.now() / sim::kUsPerSecond;
  probe.from_s = (now_s / epoch_seconds + 2) * epoch_seconds;
  sched.schedule_at(probe.from_s * sim::kUsPerSecond, [&sched, &probe] {
    probe.allocs0 = sched.stats().node_allocs;
  });
}

/// Distils the engine's counters (and the probe's steady window) into the
/// deterministic scheduler fields of the run's ResourceUsage.
void capture_scheduler_stats(const sim::Scheduler& sched, const SteadyProbe& probe,
                             ResourceUsage& resource) {
  const sim::Scheduler::Stats& sst = sched.stats();
  resource.events_scheduled = static_cast<double>(sst.scheduled);
  resource.events_executed = static_cast<double>(sst.executed);
  resource.event_allocs = static_cast<double>(sst.node_allocs);
  resource.event_pool_reuses = static_cast<double>(sst.pool_reuses);
  resource.event_queue_peak = static_cast<double>(sst.peak_pending);
  resource.timer_fires = static_cast<double>(sst.timer_fires);
  resource.event_allocs_steady =
      static_cast<double>(sst.node_allocs - probe.allocs0);
  const double steady_sim_s = static_cast<double>(sched.now()) /
                                  static_cast<double>(sim::kUsPerSecond) -
                              static_cast<double>(probe.from_s);
  resource.event_allocs_per_sim_second =
      steady_sim_s <= 0 ? 0 : resource.event_allocs_steady / steady_sim_s;
  resource.world_threads = static_cast<double>(sched.shard_count());
  resource.lane_events_executed.clear();
  resource.lane_events_executed.reserve(sched.lane_count());
  for (std::size_t lane = 0; lane < sched.lane_count(); ++lane) {
    resource.lane_events_executed.push_back(
        static_cast<double>(sched.lane_stats(lane).executed));
  }
  resource.parallel_scratch_bytes =
      static_cast<double>(sched.parallel_scratch_bytes());
}

void fill_delivery_metrics(MetricSet& m, const ScenarioSpec& spec,
                           const TrafficLog& log,
                           const std::vector<Delivered>& deliveries) {
  const auto n = static_cast<double>(spec.nodes);
  std::map<std::string, std::set<std::size_t>> receivers;
  std::vector<double> latencies_ms;
  std::uint64_t honest_deliveries = 0;
  std::uint64_t spam_deliveries = 0;

  for (const Delivered& d : deliveries) {
    if (const auto it = log.honest.find(d.payload); it != log.honest.end()) {
      if (d.node == it->second.origin) continue;  // local self-delivery
      ++honest_deliveries;
      receivers[d.payload].insert(d.node);
      latencies_ms.push_back(static_cast<double>(d.at - it->second.at) /
                             static_cast<double>(sim::kUsPerMs));
    } else if (const auto is = log.spam.find(d.payload); is != log.spam.end()) {
      if (d.node == is->second.origin) continue;
      ++spam_deliveries;
    }
  }

  double ratio_sum = 0;
  for (const auto& [key, pub] : log.honest) {
    const auto it = receivers.find(key);
    const double got = it == receivers.end() ? 0 : static_cast<double>(it->second.size());
    ratio_sum += got / (n - 1);
  }

  m.set("honest_attempted", static_cast<double>(log.honest_attempted));
  m.set("honest_published", static_cast<double>(log.honest_published));
  m.set("honest_deliveries", static_cast<double>(honest_deliveries));
  m.set("delivery_ratio",
        log.honest.empty() ? 0 : ratio_sum / static_cast<double>(log.honest.size()));
  m.set("latency_p50_ms", percentile(latencies_ms, 0.5));
  m.set("latency_p90_ms", percentile(latencies_ms, 0.9));
  m.set("latency_p99_ms", percentile(latencies_ms, 0.99));
  m.set("spam_attempted", static_cast<double>(log.spam_attempted));
  m.set("spam_published", static_cast<double>(log.spam_published));
  m.set("spam_deliveries", static_cast<double>(spam_deliveries));
  m.set("spam_delivery_ratio",
        log.spam_published == 0
            ? 0
            : static_cast<double>(spam_deliveries) /
                  (static_cast<double>(log.spam_published) * (n - 1)));

  // Per-topic view of the honest workload (multi-topic meshes only; the
  // single-topic layout stays exactly as before). Every node subscribes
  // to every topic, so each topic's full-flood denominator is (n - 1).
  if (spec.topics > 1) {
    for (std::size_t t = 0; t < spec.topics; ++t) {
      double t_ratio_sum = 0;
      std::uint64_t t_published = 0;
      for (const auto& [key, pub] : log.honest) {
        if (pub.topic != t) continue;
        ++t_published;
        const auto it = receivers.find(key);
        const double got =
            it == receivers.end() ? 0 : static_cast<double>(it->second.size());
        t_ratio_sum += got / (n - 1);
      }
      const std::string suffix = "_topic" + std::to_string(t);
      m.set("honest_published" + suffix, static_cast<double>(t_published));
      m.set("delivery_ratio" + suffix,
            t_published == 0 ? 0 : t_ratio_sum / static_cast<double>(t_published));
    }
  }
}

struct OverRate {
  std::uint64_t total = 0;       ///< signals beyond the per-epoch allowance
  std::uint64_t by_slashed = 0;  ///< of those, sent by a member later slashed
  std::uint64_t adversaries_slashed = 0;
};

OverRate over_rate(const ScenarioSpec& spec, const TrafficLog& log,
                   const std::function<bool(std::size_t)>& is_slashed) {
  OverRate o;
  const std::uint64_t k = spec.messages_per_epoch;
  for (const auto& [i, per_epoch] : log.adversary_published) {
    const bool slashed = is_slashed(i);
    if (slashed) ++o.adversaries_slashed;
    for (const auto& [e, count] : per_epoch) {
      const std::uint64_t over = count > k ? count - k : 0;
      o.total += over;
      if (slashed) o.by_slashed += over;
    }
  }
  return o;
}

void fill_over_rate_metrics(MetricSet& m, const ScenarioSpec& spec,
                            const TrafficLog& log,
                            const std::function<bool(std::size_t)>& is_slashed) {
  const OverRate o = over_rate(spec, log, is_slashed);
  m.set("adversaries", static_cast<double>(spec.adversaries.total()));
  m.set("adversaries_slashed", static_cast<double>(o.adversaries_slashed));
  m.set("over_rate_signals", static_cast<double>(o.total));
  // Vacuously 1 when no over-rate signal was ever published.
  m.set("over_rate_slashed_ratio",
        o.total == 0 ? 1.0
                     : static_cast<double>(o.by_slashed) / static_cast<double>(o.total));
}

void fill_anonymity_metrics(MetricSet& m, const ScenarioSpec& spec,
                            const TrafficLog& log, const FirstSpyObserver& spy) {
  std::uint64_t observed = 0;
  std::uint64_t correct = 0;
  std::uint64_t target_messages = 0;
  std::uint64_t target_correct = 0;
  std::map<sim::NodeId, std::set<std::size_t>> confusion;
  for (const auto& [key, pub] : log.honest) {
    const bool is_target = spec.observer.placement == ObserverPlacement::kEclipseRing &&
                           pub.origin == spec.observer.eclipse_target;
    if (is_target) ++target_messages;
    const auto it = spy.first_seen().find(key);
    if (it == spy.first_seen().end()) continue;
    ++observed;
    if (it->second == pub.origin) {
      ++correct;
      if (is_target) ++target_correct;
    }
    confusion[it->second].insert(pub.origin);
  }
  double set_sum = 0;
  for (const auto& [key, pub] : log.honest) {
    const auto it = spy.first_seen().find(key);
    if (it == spy.first_seen().end()) continue;
    set_sum += static_cast<double>(confusion[it->second].size());
  }
  const double denom = static_cast<double>(observed);
  m.set("observed_messages", denom);
  m.set("first_spy_accuracy", observed == 0 ? 0 : static_cast<double>(correct) / denom);
  m.set("anonymity_set_mean", observed == 0 ? 0 : set_sum / denom);
  // Coalition view: how many colluding observers, and the probability the
  // coalition deanonymises a published honest message (unobserved
  // messages count as misses — a coalition that sees nothing learns
  // nothing). Comparable across placement strategies at equal size.
  m.set("coalition_size", static_cast<double>(spec.observers));
  m.set("deanonymisation_probability",
        log.honest.empty() ? 0
                           : static_cast<double>(correct) /
                                 static_cast<double>(log.honest.size()));
  if (spec.observer.placement == ObserverPlacement::kEclipseRing) {
    // The eclipsed publisher's traffic alone: the ring's whole purpose.
    // A zero with zero target messages is vacuous — report the count too.
    m.set("eclipse_target_messages", static_cast<double>(target_messages));
    m.set("eclipse_target_deanonymisation",
          target_messages == 0 ? 0
                               : static_cast<double>(target_correct) /
                                     static_cast<double>(target_messages));
  }
}

void fill_network_metrics(MetricSet& m, const ScenarioSpec& spec,
                          const sim::Network::Stats& stats) {
  m.set("bytes_total", static_cast<double>(stats.bytes_sent));
  m.set("bytes_per_node",
        static_cast<double>(stats.bytes_sent) / static_cast<double>(spec.nodes));
  m.set("frames_sent", static_cast<double>(stats.frames_sent));
  m.set("frames_lost", static_cast<double>(stats.frames_lost));
}

}  // namespace

ScenarioRunner::ScenarioRunner(ScenarioSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  spec_.validate();
}

MetricSet ScenarioRunner::run() {
  const auto t0 = std::chrono::steady_clock::now();
  series_ = obs::TimeSeries();
  trace_json_.clear();
  MetricSet m = spec_.protocol == Protocol::kPow ? run_pow() : run_rln();
  resource_.wall_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  resource_.sim_seconds = m.at("sim_seconds");
  return m;
}

MetricSet ScenarioRunner::run_rln() {
  waku::HarnessConfig cfg = waku::HarnessConfig::defaults();
  cfg.node_count = spec_.nodes;
  cfg.world_threads = spec_.world_threads;
  cfg.seed = seed_;
  cfg.topology = spec_.topology;
  cfg.extra_links_per_node = spec_.extra_links_per_node;
  cfg.erdos_renyi_p = spec_.erdos_renyi_p;
  cfg.link = spec_.link;
  cfg.rln.epoch_period_seconds = spec_.epoch_seconds;
  cfg.rln.messages_per_epoch = spec_.messages_per_epoch;
  cfg.rln.batch_crypto = spec_.batch_crypto;
  cfg.link_profile = spec_.link_profile;
  if (spec_.seen_ttl_seconds > 0) {
    cfg.gossip.seen_ttl = spec_.seen_ttl_seconds * sim::kUsPerSecond;
  }
  if (spec_.acceptable_root_window > 0) {
    cfg.rln.acceptable_root_window = spec_.acceptable_root_window;
  }
  if (spec_.observer.placement == ObserverPlacement::kSybilHighDegree) {
    for (std::size_t o = first_observer(spec_); o < spec_.nodes; ++o) {
      cfg.degree_boost_nodes.push_back(o);
    }
    cfg.degree_boost_links = spec_.observer.sybil_extra_links;
  }
  obs::Registry reg(spec_.observability);
  std::optional<obs::Tracer> tracer;
  if (spec_.trace) tracer.emplace(spec_.trace_capacity);

  waku::SimHarness world(cfg);
  apply_observer_placement(spec_, world.network());
  world.attach_observability(reg, tracer ? &*tracer : nullptr);
  TrafficLog log;
  register_workload_probes(reg, log);

  const std::uint64_t payload_allocs0 = util::SharedBytes::allocation_count();
  const std::uint64_t payload_bytes0 = util::SharedBytes::allocated_bytes();

  const std::vector<std::string> topics = topic_names(spec_);
  for (const std::string& t : topics) world.subscribe_all(t);
  if (spec_.register_publishers_only || spec_.storm.stormers > 0) {
    // Storm worlds must leave the storm band unregistered for the waves.
    world.register_nodes(publishing_nodes(spec_));
  } else {
    world.register_all();
  }
  world.run_seconds(5);  // mesh warm-up heartbeats

  FirstSpyObserver spy(spec_, world.scheduler(),
                       [](const util::SharedBytes& data) -> std::optional<std::string> {
                         const auto decoded = waku::WakuRlnRelay::decode_envelope(data);
                         if (!decoded) return std::nullopt;
                         return key_of(decoded->second);
                       });
  ReplayAttacker replay(spec_, world.network(), topics.front());
  install_frame_tap(world.network(), spy, &replay);

  const PublishFn honest = [&](std::size_t node, std::size_t topic,
                               const std::string& key) {
    return world.node(node).publish(topics[topic], padded_payload(spec_, key)) ==
           waku::WakuRlnRelay::PublishOutcome::kPublished;
  };
  const PublishFn spam = [&](std::size_t node, std::size_t topic,
                             const std::string& key) {
    return world.node(node).publish_unchecked(topics[topic],
                                              padded_payload(spec_, key)) ==
           waku::WakuRlnRelay::PublishOutcome::kPublished;
  };

  // Let late frames land and slash transactions get mined before measuring.
  const std::uint64_t drain_seconds = cfg.rln.max_delay_seconds +
                                      2 * world.chain().config().block_time_seconds + 5;

  // Registration storm: a periodic timer (one stored callback, re-armed
  // by the engine) walks the storm band in waves. Each wave requests
  // registrations; once a join has certainly confirmed (the next block
  // boundary has passed), the member double-signals so the network
  // slashes it — the membership tree churns in both directions while the
  // honest workload runs. The timer cancels itself when the band is
  // consumed (safe from inside its own callback).
  struct StormLog {
    std::uint64_t waves = 0;
    std::uint64_t join_requests = 0;
    std::uint64_t double_signal_publishes = 0;
  };
  StormLog storm_log;
  if (spec_.storm.stormers > 0) {
    const auto stormers = std::make_shared<std::vector<std::size_t>>(storm_nodes(spec_));
    const auto next = std::make_shared<std::size_t>(0);
    const auto handle = std::make_shared<sim::TimerHandle>();
    sim::Scheduler& sched = world.scheduler();
    const sim::TimeUs wave_us =
        spec_.storm.wave_every_epochs * spec_.epoch_seconds * sim::kUsPerSecond;
    const sim::TimeUs confirm_us =
        (world.chain().config().block_time_seconds + 2) * sim::kUsPerSecond;
    const sim::TimeUs first_delay = traffic_start_us(spec_, sched) - sched.now();
    *handle = sched.schedule_periodic(first_delay, wave_us, [&world, &storm_log,
                                                             &sched, this, stormers,
                                                             next, handle, confirm_us,
                                                             topics] {
      ++storm_log.waves;
      for (std::size_t j = 0;
           j < spec_.storm.joins_per_wave && *next < stormers->size(); ++j, ++*next) {
        const std::size_t node = (*stormers)[*next];
        world.node(node).request_registration();
        ++storm_log.join_requests;
        if (!spec_.storm.slash_after_join) continue;
        sched.schedule_after(confirm_us, [&world, &storm_log, this, node, topics] {
          for (std::uint64_t j2 = 0; j2 < 2; ++j2) {
            const std::string key = payload_key('g', node, 0, j2);
            if (world.node(node).publish_unchecked(topics.front(),
                                                   padded_payload(spec_, key)) ==
                waku::WakuRlnRelay::PublishOutcome::kPublished) {
              ++storm_log.double_signal_publishes;
            }
          }
        });
      }
      if (*next >= stormers->size()) world.scheduler().cancel(*handle);
    });
  }

  // Sample the nullifier-map footprint — and every other subsystem's
  // resident bytes — once per epoch across the whole run: the per-epoch
  // GC would have pruned the records by the time the drain ends, so an
  // end-of-run reading misses the peak. The memory peaks are reported
  // whether or not the observability layer is on (the sampling lambda is
  // read-only, so its position among same-timestamp events is inert).
  std::size_t nullifier_max = 0;
  MemoryPeaks mem_peaks;
  {
    const std::uint64_t now_s = world.scheduler().now() / sim::kUsPerSecond;
    const std::uint64_t horizon_s =
        now_s + (spec_.traffic_epochs + 2) * spec_.epoch_seconds + drain_seconds;
    for (std::uint64_t t = now_s + 1; t <= horizon_s; t += spec_.epoch_seconds) {
      world.scheduler().schedule_at(
          t * sim::kUsPerSecond, [&world, &nullifier_max, &mem_peaks] {
            // Shared world state (router params + topic table, nullifier
            // record arena) is charged once; the loop adds the per-node
            // views on top.
            std::size_t routers = world.router_shared_bytes();
            std::size_t mcaches = 0;
            std::size_t nullifiers = world.validator_context()->memory_bytes();
            for (std::size_t i = 0; i < world.size(); ++i) {
              const std::size_t nb = world.node(i).nullifier_map_bytes();
              nullifier_max = std::max(nullifier_max, nb);
              nullifiers += nb;
              routers += world.relay(i).router().memory_bytes();
              mcaches += world.relay(i).router().mcache().memory_bytes();
            }
            mem_peaks.router = std::max(mem_peaks.router, routers);
            mem_peaks.mcache = std::max(mem_peaks.mcache, mcaches);
            mem_peaks.nullifier = std::max(mem_peaks.nullifier, nullifiers);
            mem_peaks.merkle =
                std::max(mem_peaks.merkle, world.group_sync().memory_bytes());
            mem_peaks.event_pool =
                std::max(mem_peaks.event_pool, world.scheduler().memory_bytes());
            mem_peaks.network =
                std::max(mem_peaks.network, world.network().memory_bytes());
          });
    }
  }

  // Per-epoch time series: one row at every protocol epoch boundary from
  // the traffic start through the drain (the registration order of the
  // probes above is the column order of TIMESERIES_<scenario>.json).
  sim::TimerHandle sample_timer;
  if (reg.enabled()) {
    sim::Scheduler& sched = world.scheduler();
    const sim::TimeUs period = spec_.epoch_seconds * sim::kUsPerSecond;
    sample_timer = sched.schedule_periodic(
        traffic_start_us(spec_, sched) - sched.now(), period, [this, &reg, &world] {
          series_.sample(reg, static_cast<double>(world.scheduler().now()) /
                                  static_cast<double>(sim::kUsPerSecond));
        });
  }

  SteadyProbe probe;
  arm_steady_probe(world.scheduler(), spec_.epoch_seconds, probe);

  drive_traffic(spec_, seed_, world.scheduler(), world.network(), honest, spam,
                drain_seconds, log);

  capture_scheduler_stats(world.scheduler(), probe, resource_);
  fill_memory_resources(mem_peaks, resource_);
  if (tracer) trace_json_ = tracer->json();

  std::vector<Delivered> deliveries;
  deliveries.reserve(world.deliveries().size());
  for (const auto& d : world.deliveries()) {
    deliveries.push_back({d.node_index, key_of(d.payload), d.at});
  }

  MetricSet m;
  m.set("nodes", static_cast<double>(spec_.nodes));
  fill_delivery_metrics(m, spec_, log, deliveries);
  fill_over_rate_metrics(m, spec_, log, [&](std::size_t i) {
    return !world.contract().is_active(world.node(i).identity().pk);
  });

  const auto stats = world.aggregate_stats();
  m.set("rln_accepted", static_cast<double>(stats.accepted));
  m.set("rln_duplicates", static_cast<double>(stats.duplicates));
  m.set("rln_double_signals", static_cast<double>(stats.double_signals));
  m.set("rln_slashes_submitted", static_cast<double>(stats.slashes_submitted));
  m.set("nullifier_map_max_bytes", static_cast<double>(nullifier_max));
  m.set("stake_burnt_wei", static_cast<double>(world.chain().ledger().burnt_total()));

  if (spec_.adversaries.adaptive_spammers > 0) {
    m.set("adaptive_probes_attempted",
          static_cast<double>(log.adaptive_probes_attempted));
    m.set("adaptive_probes_published",
          static_cast<double>(log.adaptive_probes_published));
  }
  if (spec_.storm.stormers > 0) {
    m.set("storm_waves", static_cast<double>(storm_log.waves));
    m.set("storm_join_requests", static_cast<double>(storm_log.join_requests));
    m.set("storm_double_signal_publishes",
          static_cast<double>(storm_log.double_signal_publishes));
  }

  // Membership-sync churn over the whole run: initial registrations plus
  // whatever the storm (joins and the resulting slashes) added.
  const waku::GroupSync::Stats& gs = world.group_sync().stats();
  m.set("group_registrations", static_cast<double>(gs.registrations_applied));
  m.set("group_slashes", static_cast<double>(gs.slashes_applied));
  resource_.group_sync_bytes = static_cast<double>(gs.sync_bytes);
  resource_.group_root_updates = static_cast<double>(gs.root_updates);

  fill_network_metrics(m, spec_, world.network().stats());
  fill_anonymity_metrics(m, spec_, log, spy);

  // Resource metrics (all deterministic): zkSNARK verification work and
  // saved repeats, payload-buffer allocations, router byte classes.
  m.set("verifications_total", static_cast<double>(stats.proof_verifications));
  m.set("verifications_saved", static_cast<double>(stats.proof_cache_hits));
  if (replay.enabled()) {
    m.set("replay_ids_recorded", static_cast<double>(replay.ids_recorded()));
    m.set("replay_ihaves_sent", static_cast<double>(replay.ihaves_sent()));
    m.set("replay_messages_served", static_cast<double>(replay.messages_served()));
  }
  std::uint64_t payload_wire = 0;
  std::uint64_t control_wire = 0;
  for (std::size_t i = 0; i < world.size(); ++i) {
    const auto& rs = world.relay(i).router().stats();
    payload_wire += rs.payload_bytes_sent;
    control_wire += rs.control_bytes_sent;
  }
  m.set("payload_bytes_total", static_cast<double>(payload_wire));
  m.set("control_bytes_total", static_cast<double>(control_wire));
  m.set("control_overhead_ratio",
        payload_wire + control_wire == 0
            ? 0
            : static_cast<double>(control_wire) /
                  static_cast<double>(payload_wire + control_wire));
  m.set("payload_allocs",
        static_cast<double>(util::SharedBytes::allocation_count() - payload_allocs0));
  m.set("payload_alloc_bytes",
        static_cast<double>(util::SharedBytes::allocated_bytes() - payload_bytes0));
  m.set("sim_seconds", static_cast<double>(world.scheduler().now()) /
                           static_cast<double>(sim::kUsPerSecond));
  return m;
}

MetricSet ScenarioRunner::run_pow() {
  util::Rng rng(seed_);
  sim::Scheduler sched(spec_.world_threads, spec_.nodes);
  sim::Network net(sched, rng, spec_.link);

  gossipsub::GossipSubParams gossip;
  if (spec_.seen_ttl_seconds > 0) {
    gossip.seen_ttl = spec_.seen_ttl_seconds * sim::kUsPerSecond;
  }
  // Shared router state for the PoW world too: one parameter block and
  // one interned topic table for all nodes.
  const auto gossip_shared =
      std::make_shared<const gossipsub::GossipSubParams>(gossip);
  const auto topic_table = std::make_shared<gossipsub::TopicTable>();
  std::vector<sim::NodeId> ids;
  std::vector<std::unique_ptr<waku::WakuRelay>> relays;
  ids.reserve(spec_.nodes);
  relays.reserve(spec_.nodes);
  for (std::size_t i = 0; i < spec_.nodes; ++i) {
    ids.push_back(net.add_node({}));
    relays.push_back(std::make_unique<waku::WakuRelay>(ids.back(), net,
                                                       gossip_shared, topic_table));
  }
  sim::DegreeBias bias;
  if (spec_.observer.placement == ObserverPlacement::kSybilHighDegree) {
    for (std::size_t o = first_observer(spec_); o < spec_.nodes; ++o) {
      bias.nodes.push_back(ids[o]);
    }
    bias.extra_links = spec_.observer.sybil_extra_links;
  }
  sim::build_topology(net, ids, spec_.topology, spec_.extra_links_per_node,
                      spec_.erdos_renyi_p, rng, bias);
  if (spec_.link_profile == sim::LinkProfile::kGeo) {
    sim::apply_geo_latency(net, ids, spec_.link);
  }
  apply_observer_placement(spec_, net);
  for (auto& r : relays) r->start();

  obs::Registry reg(spec_.observability);
  std::optional<obs::Tracer> tracer;
  if (spec_.trace) tracer.emplace(spec_.trace_capacity);
  obs::Tracer* const tr = tracer ? &*tracer : nullptr;
  for (auto& r : relays) r->router().set_tracer(tr);
  net.instrument(reg);

  const std::uint64_t payload_allocs0 = util::SharedBytes::allocation_count();
  const std::uint64_t payload_bytes0 = util::SharedBytes::allocated_bytes();

  const std::vector<std::string> topics = topic_names(spec_);
  const auto decode = [](const util::SharedBytes& data) -> std::optional<std::string> {
    const auto env = baselines::PowEnvelope::deserialize(data);
    if (!env) return std::nullopt;
    return key_of(env->payload);
  };

  // Deliveries execute on the receiving node's shard lane, so — exactly
  // like waku::SimHarness — each lane records into its own stamped log and
  // the logs are merged into serial event order after the run.
  std::vector<std::vector<std::pair<sim::Scheduler::Stamp, Delivered>>>
      lane_deliveries(sched.lane_count());
  std::vector<Delivered> deliveries;
  for (std::size_t i = 0; i < spec_.nodes; ++i) {
    for (const std::string& topic : topics) {
      relays[i]->router().set_validator(
          topic, baselines::make_pow_validator(spec_.pow_difficulty_bits));
      relays[i]->subscribe(topic, [&lane_deliveries, &sched, &decode, tr, i](
                                      const gossipsub::TopicId&,
                                      const util::SharedBytes& data) {
        const auto key = decode(data);
        if (key) {
          lane_deliveries[sched.current_lane()].emplace_back(
              sched.current_stamp(), Delivered{i, *key, sched.now()});
          if (tr != nullptr) {
            tr->instant("deliver", sched.now(), static_cast<std::uint32_t>(i));
          }
        }
      });
    }
  }

  // The PoW world has no harness, so the pull probes are registered here
  // (same fixed-order rule; no membership or nullifier state to report).
  if (reg.enabled()) {
    reg.probe("delivered_total", [&lane_deliveries] {
      // Sampled from global events (shards quiesced); the count is a sum
      // over the lane logs, so it is lane-partition invariant.
      std::size_t total = 0;
      for (const auto& lane : lane_deliveries) total += lane.size();
      return static_cast<double>(total);
    });
    reg.probe("scheduler_queue",
              [&sched] { return static_cast<double>(sched.pending()); });
    reg.probe("scheduler_queue_peak", [&sched] {
      return static_cast<double>(sched.stats().peak_pending);
    });
    reg.probe("mem_router_bytes", [&relays, topic_table] {
      std::size_t total =
          sizeof(gossipsub::GossipSubParams) + topic_table->memory_bytes();
      for (const auto& r : relays) total += r->router().memory_bytes();
      return static_cast<double>(total);
    });
    reg.probe("mem_mcache_bytes", [&relays] {
      std::size_t total = 0;
      for (const auto& r : relays) total += r->router().mcache().memory_bytes();
      return static_cast<double>(total);
    });
    reg.probe("mem_event_pool_bytes",
              [&sched] { return static_cast<double>(sched.memory_bytes()); });
    reg.probe("mem_network_bytes",
              [&net] { return static_cast<double>(net.memory_bytes()); });
    reg.probe("net_frames_sent", [&net] {
      return static_cast<double>(net.stats().frames_sent);
    });
    reg.probe("net_bytes_sent",
              [&net] { return static_cast<double>(net.stats().bytes_sent); });
  }
  TrafficLog log;
  register_workload_probes(reg, log);
  sched.run_for(5 * sim::kUsPerSecond);  // mesh warm-up

  FirstSpyObserver spy(spec_, sched, decode);
  install_frame_tap(net, spy, /*replay=*/nullptr);

  // Under PoW everyone — honest phone or spam rig — pays the same hash
  // price and there is no rate to enforce: the spam path is just publish.
  const PublishFn publish = [&](std::size_t node, std::size_t topic,
                                const std::string& key) {
    const auto env =
        baselines::pow_seal(padded_payload(spec_, key), spec_.pow_difficulty_bits);
    relays[node]->publish(topics[topic], env.serialize());
    if (tr != nullptr) {
      tr->instant("publish", sched.now(), static_cast<std::uint32_t>(node), key);
    }
    return true;
  };

  // Per-epoch memory sampling (always on — the peaks land in the
  // resources block) and, with observability enabled, the time series.
  constexpr std::uint64_t kPowDrainSeconds = 10;
  MemoryPeaks mem_peaks;
  {
    const std::uint64_t now_s = sched.now() / sim::kUsPerSecond;
    const std::uint64_t horizon_s =
        now_s + (spec_.traffic_epochs + 2) * spec_.epoch_seconds + kPowDrainSeconds;
    for (std::uint64_t t = now_s + 1; t <= horizon_s; t += spec_.epoch_seconds) {
      sched.schedule_at(t * sim::kUsPerSecond,
                        [&relays, &sched, &net, &mem_peaks, topic_table] {
        std::size_t routers =
            sizeof(gossipsub::GossipSubParams) + topic_table->memory_bytes();
        std::size_t mcaches = 0;
        for (const auto& r : relays) {
          routers += r->router().memory_bytes();
          mcaches += r->router().mcache().memory_bytes();
        }
        mem_peaks.router = std::max(mem_peaks.router, routers);
        mem_peaks.mcache = std::max(mem_peaks.mcache, mcaches);
        mem_peaks.event_pool = std::max(mem_peaks.event_pool, sched.memory_bytes());
        mem_peaks.network = std::max(mem_peaks.network, net.memory_bytes());
      });
    }
  }
  sim::TimerHandle sample_timer;
  if (reg.enabled()) {
    const sim::TimeUs period = spec_.epoch_seconds * sim::kUsPerSecond;
    sample_timer = sched.schedule_periodic(
        traffic_start_us(spec_, sched) - sched.now(), period, [this, &reg, &sched] {
          series_.sample(reg, static_cast<double>(sched.now()) /
                                  static_cast<double>(sim::kUsPerSecond));
        });
  }

  SteadyProbe probe;
  arm_steady_probe(sched, spec_.epoch_seconds, probe);

  drive_traffic(spec_, seed_, sched, net, publish, publish, kPowDrainSeconds, log);

  capture_scheduler_stats(sched, probe, resource_);
  fill_memory_resources(mem_peaks, resource_);
  if (tracer) trace_json_ = tracer->json();

  // Merge the per-lane delivery logs into the order the serial engine
  // would have produced.
  {
    std::vector<std::pair<sim::Scheduler::Stamp, Delivered>> stamped;
    std::size_t total = 0;
    for (const auto& lane : lane_deliveries) total += lane.size();
    stamped.reserve(total);
    for (auto& lane : lane_deliveries) {
      for (auto& entry : lane) stamped.push_back(std::move(entry));
      lane.clear();
    }
    std::stable_sort(
        stamped.begin(), stamped.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    deliveries.reserve(stamped.size());
    for (auto& entry : stamped) deliveries.push_back(std::move(entry.second));
  }

  MetricSet m;
  m.set("nodes", static_cast<double>(spec_.nodes));
  fill_delivery_metrics(m, spec_, log, deliveries);
  fill_over_rate_metrics(m, spec_, log, [](std::size_t) { return false; });
  m.set("pow_difficulty_bits", static_cast<double>(spec_.pow_difficulty_bits));
  m.set("pow_expected_hashes_per_msg",
        baselines::expected_hashes(spec_.pow_difficulty_bits));
  fill_network_metrics(m, spec_, net.stats());
  fill_anonymity_metrics(m, spec_, log, spy);

  std::uint64_t payload_wire = 0;
  std::uint64_t control_wire = 0;
  for (const auto& r : relays) {
    const auto& rs = r->router().stats();
    payload_wire += rs.payload_bytes_sent;
    control_wire += rs.control_bytes_sent;
  }
  m.set("payload_bytes_total", static_cast<double>(payload_wire));
  m.set("control_bytes_total", static_cast<double>(control_wire));
  m.set("control_overhead_ratio",
        payload_wire + control_wire == 0
            ? 0
            : static_cast<double>(control_wire) /
                  static_cast<double>(payload_wire + control_wire));
  m.set("payload_allocs",
        static_cast<double>(util::SharedBytes::allocation_count() - payload_allocs0));
  m.set("payload_alloc_bytes",
        static_cast<double>(util::SharedBytes::allocated_bytes() - payload_bytes0));
  m.set("sim_seconds", static_cast<double>(sched.now()) /
                           static_cast<double>(sim::kUsPerSecond));
  return m;
}

}  // namespace wakurln::scenario
