#pragma once
// Unified metrics pipeline for scenario runs. A MetricSet is an *ordered*
// list of named scalar measurements — order matters because campaign
// reports are byte-compared for determinism, and because aggregation
// across seeds pairs metrics positionally (every run of one spec emits
// the same names in the same order).

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace wakurln::scenario {

struct Metric {
  std::string name;
  double value = 0;
};

class MetricSet {
 public:
  /// Appends (or overwrites, preserving position) a measurement.
  void set(const std::string& name, double value);

  /// Value lookup by name.
  std::optional<double> get(const std::string& name) const;

  /// Value lookup that throws std::out_of_range with the metric name —
  /// test/report code paths want loud failures, not silent zeros.
  double at(const std::string& name) const;

  std::size_t size() const { return metrics_.size(); }
  bool empty() const { return metrics_.empty(); }
  const std::vector<Metric>& entries() const { return metrics_; }

 private:
  std::vector<Metric> metrics_;
};

/// Per-metric summary across the seeds of a campaign.
struct AggregateMetric {
  std::string name;
  double mean = 0;
  double min = 0;
  double max = 0;
};

/// Positional aggregation: every run must carry the same metric names in
/// the same order (guaranteed for runs of one spec); throws
/// std::invalid_argument otherwise.
std::vector<AggregateMetric> aggregate_runs(const std::vector<MetricSet>& runs);

/// Linear-interpolation percentile (q in [0,1]) over an unsorted sample
/// set; delegates to util::percentile — the same definition the bench
/// harness uses for its timing statistics.
double percentile(std::vector<double> samples, double q);

}  // namespace wakurln::scenario
