#include "scenario/scenarios.h"

#include <stdexcept>

namespace wakurln::scenario {
namespace {

ScenarioSpec base_spec() {
  ScenarioSpec s;
  s.nodes = 24;
  s.topology = sim::TopologyKind::kRingPlusRandom;
  s.extra_links_per_node = 3;
  s.epoch_seconds = 10;
  s.traffic_epochs = 5;
  s.honest_publish_prob = 0.6;
  s.observers = 1;
  s.link.base_latency = 30 * sim::kUsPerMs;
  s.link.jitter = 20 * sim::kUsPerMs;
  return s;
}

std::vector<ScenarioSpec> build_catalogue() {
  std::vector<ScenarioSpec> out;

  {
    ScenarioSpec s = base_spec();
    s.name = "baseline_relay";
    s.description =
        "Honest-only WAKU-RLN-RELAY workload: delivery ratio, propagation "
        "latency and per-node overhead with no adversary.";
    out.push_back(s);
  }
  {
    ScenarioSpec s = base_spec();
    s.name = "spam_wave";
    s.description =
        "Registered members turn hostile and publish over-rate every epoch; "
        "measures spam containment, slashing coverage and the honest "
        "delivery ratio under attack.";
    s.adversaries.spammers = 3;
    s.adversaries.spam_per_epoch = 5;
    out.push_back(s);
  }
  {
    ScenarioSpec s = base_spec();
    s.name = "churn_storm";
    s.description =
        "Heavy membership churn on an Erdős–Rényi overlay: nodes drop off "
        "(in-flight frames invalidated) and rewire back in later epochs.";
    s.topology = sim::TopologyKind::kErdosRenyi;
    s.erdos_renyi_p = 0.3;
    s.traffic_epochs = 6;
    s.churn.leave_prob_per_epoch = 0.15;
    s.churn.offline_epochs = 1;
    s.churn.rejoin_degree = 4;
    out.push_back(s);
  }
  {
    ScenarioSpec s = base_spec();
    s.name = "partition_heal";
    s.description =
        "The overlay is cut into two halves at one epoch boundary and "
        "healed two epochs later; measures degradation and recovery of the "
        "delivery ratio.";
    s.traffic_epochs = 6;
    s.partition.enabled = true;
    s.partition.cut_at_epoch = 1;
    s.partition.heal_at_epoch = 3;
    s.partition.fraction = 0.5;
    out.push_back(s);
  }
  {
    ScenarioSpec s = base_spec();
    s.name = "mixed_rate";
    s.description =
        "RLN-v2-style rate k=3 with a busy honest workload, one steady "
        "over-rate spammer and one burst flooder: exercises slot validation "
        "and double-signal detection beyond the paper's k=1 scheme.";
    s.messages_per_epoch = 3;
    s.honest_publish_prob = 0.8;
    s.adversaries.spammers = 1;
    s.adversaries.spam_per_epoch = 6;
    s.adversaries.burst_flooders = 1;
    s.adversaries.burst_size = 12;
    s.adversaries.burst_at_epoch = 2;
    out.push_back(s);
  }
  {
    ScenarioSpec s = base_spec();
    s.name = "large_mesh";
    s.description =
        "10k-node geo-distributed mesh with a bounded publisher set: "
        "exercises the zero-copy fabric, sharded nullifier state and "
        "publisher-only registration; resource metrics (verifications, "
        "payload allocations, byte classes) gate the 10k roadmap item.";
    s.nodes = 10000;
    s.extra_links_per_node = 4;
    s.link_profile = sim::LinkProfile::kGeo;
    s.traffic_epochs = 3;
    s.honest_publish_prob = 0.5;
    s.publishers = 64;
    s.observers = 4;
    s.register_publishers_only = true;
    s.payload_bytes = 512;
    s.adversaries.spammers = 4;
    s.adversaries.spam_per_epoch = 3;
    out.push_back(s);
  }
  {
    ScenarioSpec s = base_spec();
    s.name = "iwant_replay";
    s.description =
        "Colluding peers record messages and re-advertise them via IHAVE "
        "after the (shortened) seen-cache TTL, forcing honest peers to "
        "IWANT-fetch and re-validate stale messages inside the epoch "
        "window; the proof-verdict cache absorbs the replayed zkSNARK "
        "work (verifications_saved > 0).";
    s.traffic_epochs = 4;
    s.seen_ttl_seconds = 5;       // forget ids quickly...
    s.replay.replayers = 3;
    s.replay.delay_seconds = 12;  // ...replay after expiry, within Thr*T = 20 s
    s.replay.ihave_fanout = 6;
    out.push_back(s);
  }
  {
    ScenarioSpec s = base_spec();
    s.name = "huge_mesh";
    s.description =
        "50k-node geo-distributed mesh with a bounded publisher set: the "
        "typed pooled event engine's scaling gate. Scheduler stats "
        "(events, pool misses, queue peak) land in the report's resources "
        "block; steady-state event allocations should stay near zero.";
    s.nodes = 50000;
    s.extra_links_per_node = 4;
    s.link_profile = sim::LinkProfile::kGeo;
    s.traffic_epochs = 2;
    s.honest_publish_prob = 0.5;
    s.publishers = 64;
    s.observers = 4;
    s.register_publishers_only = true;
    s.payload_bytes = 256;
    s.adversaries.spammers = 2;
    s.adversaries.spam_per_epoch = 3;
    out.push_back(s);
  }
  {
    ScenarioSpec s = base_spec();
    s.name = "geo_250k";
    s.description =
        "250k-node geo-distributed mesh: the struct-of-arrays node state, "
        "interned link arena and world-shared validator state rung. A "
        "bounded publisher set keeps traffic realistic while every node "
        "validates and routes; the memory resources block (bytes_per_node) "
        "is the scaling gate.";
    s.nodes = 250000;
    s.extra_links_per_node = 4;
    s.link_profile = sim::LinkProfile::kGeo;
    s.traffic_epochs = 2;
    s.honest_publish_prob = 0.5;
    s.publishers = 64;
    s.observers = 4;
    s.register_publishers_only = true;
    s.payload_bytes = 256;
    s.adversaries.spammers = 2;
    s.adversaries.spam_per_epoch = 3;
    out.push_back(s);
  }
  {
    ScenarioSpec s = base_spec();
    s.name = "observer_coalition";
    s.description =
        "A colluding first-spy coalition of six random-tail observers: the "
        "earliest arrival across the whole coalition drives the originator "
        "guess — the baseline the structural placements are measured "
        "against (Bellet et al., 'Who started this rumor?').";
    s.nodes = 32;
    s.publishers = 8;
    s.honest_publish_prob = 0.8;
    s.observers = 6;
    s.observer.placement = ObserverPlacement::kRandomTail;
    out.push_back(s);
  }
  {
    ScenarioSpec s = base_spec();
    s.name = "eclipse_publisher";
    s.description =
        "The same six-member coalition wired as an eclipse ring around one "
        "target publisher: the target's honest links are severed, every "
        "first hop out of it is observed, and its traffic is fully "
        "deanonymised while overall delivery survives (the coalition still "
        "relays).";
    s.nodes = 32;
    s.publishers = 8;
    s.honest_publish_prob = 0.8;
    s.observers = 6;
    s.observer.placement = ObserverPlacement::kEclipseRing;
    s.observer.eclipse_target = 3;  // mid-band: not ring-adjacent to the tail coalition
    out.push_back(s);
  }
  {
    ScenarioSpec s = base_spec();
    s.name = "sybil_observers";
    s.description =
        "The six-member coalition as high-degree sybils: each member gets "
        "extra random chords via the topology degree-bias hook, sitting "
        "adjacent to many potential originators — structural advantage "
        "without touching any single victim.";
    s.nodes = 32;
    s.publishers = 8;
    s.honest_publish_prob = 0.8;
    s.observers = 6;
    s.observer.placement = ObserverPlacement::kSybilHighDegree;
    s.observer.sybil_extra_links = 12;
    out.push_back(s);
  }
  {
    ScenarioSpec s = base_spec();
    s.name = "adaptive_spammer";
    s.description =
        "Adaptive spammers publish exactly the allowed rate every epoch "
        "through the honest client path: the rate limiter is satisfied, "
        "the slasher never fires (zero slashes), and the spam delivers "
        "like honest traffic — the attack class slashing cannot touch.";
    s.adversaries.adaptive_spammers = 3;
    out.push_back(s);
  }
  {
    ScenarioSpec s = base_spec();
    s.name = "adaptive_prober";
    s.description =
        "Adaptive spammers that probe the slashing boundary: exactly at "
        "the rate most epochs, one message over it every second epoch — "
        "each probe is a slot-reuse double signal, so the prober is "
        "slashed on exactly its over-rate epochs.";
    s.adversaries.adaptive_spammers = 2;
    s.adversaries.adaptive_probe_every = 2;
    out.push_back(s);
  }
  {
    ScenarioSpec s = base_spec();
    s.name = "registration_storm";
    s.description =
        "Mass join/slash interleaving mid-traffic: a periodic timer joins "
        "storm waves of new members, each of which double-signals once "
        "confirmed and is slashed again — Merkle root churn in both "
        "directions stressing group-sync dedup while honest traffic "
        "flows (a widened acceptable-root window keeps in-flight proofs "
        "valid).";
    s.traffic_epochs = 6;
    s.storm.stormers = 8;
    s.storm.wave_every_epochs = 1;
    s.storm.joins_per_wave = 4;
    s.storm.slash_after_join = true;
    s.acceptable_root_window = 16;
    out.push_back(s);
  }
  {
    ScenarioSpec s = base_spec();
    s.name = "multi_topic_mesh";
    s.description =
        "Four content topics through the per-topic router at 10k nodes: "
        "every node subscribes to every topic, the bounded publisher set "
        "rotates round-robin across topics, and the report carries "
        "per-topic and aggregate delivery — the still-open multi-topic "
        "rung of the scaling roadmap.";
    s.nodes = 10000;
    s.topics = 4;
    s.extra_links_per_node = 4;
    s.link_profile = sim::LinkProfile::kGeo;
    s.traffic_epochs = 3;
    s.honest_publish_prob = 1.0;
    s.publishers = 64;
    s.observers = 4;
    s.register_publishers_only = true;
    s.payload_bytes = 256;
    out.push_back(s);
  }
  {
    ScenarioSpec s = base_spec();
    s.name = "pow_baseline";
    s.description =
        "The same spam wave against the PoW (EIP-627-style) baseline: spam "
        "is priced, not rate-limited, so a resourced spammer's messages all "
        "deliver — the paper's motivating comparison.";
    s.protocol = Protocol::kPow;
    s.pow_difficulty_bits = 8;
    s.adversaries.spammers = 3;
    s.adversaries.spam_per_epoch = 5;
    out.push_back(s);
  }

  return out;
}

}  // namespace

const std::vector<ScenarioSpec>& registered_scenarios() {
  static const std::vector<ScenarioSpec> catalogue = build_catalogue();
  return catalogue;
}

ScenarioSpec find_scenario(const std::string& name) {
  std::string known;
  for (const ScenarioSpec& s : registered_scenarios()) {
    if (s.name == name) return s;
    if (!known.empty()) known += ", ";
    known += s.name;
  }
  throw std::invalid_argument("unknown scenario '" + name + "' (known: " + known + ")");
}

}  // namespace wakurln::scenario
