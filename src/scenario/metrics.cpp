#include "scenario/metrics.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/stats.h"

namespace wakurln::scenario {

void MetricSet::set(const std::string& name, double value) {
  for (Metric& m : metrics_) {
    if (m.name == name) {
      m.value = value;
      return;
    }
  }
  metrics_.push_back({name, value});
}

std::optional<double> MetricSet::get(const std::string& name) const {
  for (const Metric& m : metrics_) {
    if (m.name == name) return m.value;
  }
  return std::nullopt;
}

double MetricSet::at(const std::string& name) const {
  const auto v = get(name);
  if (!v) throw std::out_of_range("MetricSet: no metric named " + name);
  return *v;
}

std::vector<AggregateMetric> aggregate_runs(const std::vector<MetricSet>& runs) {
  std::vector<AggregateMetric> out;
  if (runs.empty()) return out;
  const std::vector<Metric>& first = runs.front().entries();
  out.reserve(first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    AggregateMetric agg;
    agg.name = first[i].name;
    agg.min = agg.max = first[i].value;
    double sum = 0;
    for (const MetricSet& run : runs) {
      const std::vector<Metric>& entries = run.entries();
      if (entries.size() != first.size() || entries[i].name != agg.name) {
        throw std::invalid_argument(
            "aggregate_runs: runs disagree on metric layout at '" + agg.name + "'");
      }
      const double v = entries[i].value;
      sum += v;
      agg.min = std::min(agg.min, v);
      agg.max = std::max(agg.max, v);
    }
    agg.mean = sum / static_cast<double>(runs.size());
    out.push_back(std::move(agg));
  }
  return out;
}

double percentile(std::vector<double> samples, double q) {
  return util::percentile(std::move(samples), q);
}

}  // namespace wakurln::scenario
