#pragma once
// The named scenario catalogue: every experiment the campaign engine can
// run out of the box. Each entry is a fully-specified ScenarioSpec; CLI
// overrides (nodes, epochs, ...) are applied on top by the callers.

#include <string>
#include <vector>

#include "scenario/spec.h"

namespace wakurln::scenario {

/// All registered scenarios, in display order.
const std::vector<ScenarioSpec>& registered_scenarios();

/// Lookup by name; throws std::invalid_argument naming the valid choices.
ScenarioSpec find_scenario(const std::string& name);

}  // namespace wakurln::scenario
