#include "scenario/spec.h"

#include <stdexcept>
#include <string>

#include "util/check.h"

namespace wakurln::scenario {

const char* observer_placement_name(ObserverPlacement placement) {
  switch (placement) {
    case ObserverPlacement::kRandomTail: return "random_tail";
    case ObserverPlacement::kEclipseRing: return "eclipse_ring";
    case ObserverPlacement::kSybilHighDegree: return "sybil_high_degree";
  }
  // Previously fell through to a silent "unknown" — an out-of-range enum
  // (memory corruption, an unhandled new member) would flow into the
  // report's spec block as a plausible-looking string. Abort instead.
  WAKURLN_UNREACHABLE("invalid ObserverPlacement value");
}

ObserverPlacement observer_placement_from_name(std::string_view name) {
  if (name == "random_tail") return ObserverPlacement::kRandomTail;
  if (name == "eclipse_ring") return ObserverPlacement::kEclipseRing;
  if (name == "sybil_high_degree") return ObserverPlacement::kSybilHighDegree;
  throw std::invalid_argument("unknown observer placement: " + std::string(name));
}

void ScenarioSpec::validate() const {
  if (nodes < 2) {
    throw std::invalid_argument("ScenarioSpec: need at least 2 nodes");
  }
  if (honest_publishers() == 0) {
    throw std::invalid_argument(
        "ScenarioSpec: reserved bands (adversaries " +
        std::to_string(adversaries.total()) + " + stormers " +
        std::to_string(storm.stormers) + " + replayers " +
        std::to_string(replay.replayers) + " + observers " +
        std::to_string(observers) + ") leave no honest publisher in " +
        std::to_string(nodes) + " nodes");
  }
  if (epoch_seconds < 2) {
    throw std::invalid_argument("ScenarioSpec: epoch_seconds must be >= 2");
  }
  if (traffic_epochs == 0) {
    throw std::invalid_argument("ScenarioSpec: traffic_epochs must be >= 1");
  }
  if (messages_per_epoch == 0) {
    throw std::invalid_argument("ScenarioSpec: messages_per_epoch must be >= 1");
  }
  if (topics == 0) {
    throw std::invalid_argument("ScenarioSpec: topics must be >= 1");
  }
  if (trace && trace_capacity == 0) {
    throw std::invalid_argument(
        "ScenarioSpec: trace_capacity must be >= 1 when tracing");
  }
  if (world_threads == 0) {
    throw std::invalid_argument("ScenarioSpec: world_threads must be >= 1");
  }
  if (trace && world_threads > 1) {
    throw std::invalid_argument(
        "ScenarioSpec: tracing requires world_threads == 1 (the "
        "message-lifecycle tracer is not shard-aware)");
  }
  if (partition.enabled &&
      !(partition.fraction > 0.0 && partition.fraction < 1.0)) {
    throw std::invalid_argument(
        "ScenarioSpec: partition.fraction must be in (0, 1)");
  }

  // Observer coalition placement.
  if (observer.placement != ObserverPlacement::kRandomTail && observers == 0) {
    throw std::invalid_argument(
        "ScenarioSpec: eclipse/sybil placement needs a non-empty observer "
        "coalition");
  }
  if (observer.placement == ObserverPlacement::kEclipseRing &&
      observer.eclipse_target >= active_publishers()) {
    throw std::invalid_argument(
        "ScenarioSpec: eclipse_target " + std::to_string(observer.eclipse_target) +
        " is not an active publisher (band is [0, " +
        std::to_string(active_publishers()) + "))");
  }
  if (observer.placement == ObserverPlacement::kEclipseRing &&
      churn.leave_prob_per_epoch > 0.0) {
    throw std::invalid_argument(
        "ScenarioSpec: eclipse placement does not compose with churn — a "
        "rejoining target rewires to random peers and silently dissolves "
        "the ring its metrics assume");
  }

  // Registration storm.
  if (storm.stormers > 0) {
    if (storm.wave_every_epochs == 0) {
      throw std::invalid_argument(
          "ScenarioSpec: storm.wave_every_epochs must be >= 1");
    }
    if (storm.joins_per_wave == 0) {
      throw std::invalid_argument(
          "ScenarioSpec: storm.joins_per_wave must be >= 1");
    }
  }

  // Protocol-specific adversaries.
  if (protocol == Protocol::kPow) {
    if (replay.replayers > 0) {
      throw std::invalid_argument(
          "ScenarioSpec: the IWANT-replay adversary targets the RLN proof "
          "cache; it has no PoW equivalent");
    }
    if (adversaries.adaptive_spammers > 0) {
      throw std::invalid_argument(
          "ScenarioSpec: adaptive spammers game the RLN rate; PoW has no "
          "rate to stay under");
    }
    if (storm.stormers > 0) {
      throw std::invalid_argument(
          "ScenarioSpec: registration storms churn the RLN membership "
          "tree; PoW has no membership");
    }
  }

  // Replays are keyed to the first topic; multi-topic replay worlds would
  // silently ignore most traffic — reject instead.
  if (replay.replayers > 0 && topics > 1) {
    throw std::invalid_argument(
        "ScenarioSpec: the replay adversary supports single-topic worlds "
        "only");
  }
}

}  // namespace wakurln::scenario
