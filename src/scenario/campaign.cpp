#include "scenario/campaign.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <thread>

#include "scenario/runner.h"
#include "util/json.h"

namespace wakurln::scenario {
namespace {

using util::json_escape;
using util::json_number;

void append_kv(std::string& out, const char* key, double value, bool first = false) {
  if (!first) out += ", ";
  out += '"';
  out += key;
  out += "\": ";
  out += json_number(value);
}

void append_kv(std::string& out, const char* key, const std::string& value,
               bool first = false) {
  if (!first) out += ", ";
  out += '"';
  out += key;
  out += "\": \"";
  out += json_escape(value);
  out += '"';
}

std::string spec_json(const ScenarioSpec& s) {
  std::string out = "{";
  append_kv(out, "protocol", std::string(s.protocol == Protocol::kPow ? "pow" : "rln"),
            /*first=*/true);
  append_kv(out, "nodes", static_cast<double>(s.nodes));
  append_kv(out, "topology", std::string(sim::topology_name(s.topology)));
  append_kv(out, "link_profile", std::string(sim::link_profile_name(s.link_profile)));
  append_kv(out, "payload_bytes", static_cast<double>(s.payload_bytes));
  append_kv(out, "publishers", static_cast<double>(s.publishers));
  append_kv(out, "register_publishers_only",
            static_cast<double>(s.register_publishers_only ? 1 : 0));
  append_kv(out, "extra_links_per_node", static_cast<double>(s.extra_links_per_node));
  append_kv(out, "erdos_renyi_p", s.erdos_renyi_p);
  append_kv(out, "epoch_seconds", static_cast<double>(s.epoch_seconds));
  append_kv(out, "messages_per_epoch", static_cast<double>(s.messages_per_epoch));
  append_kv(out, "traffic_epochs", static_cast<double>(s.traffic_epochs));
  append_kv(out, "honest_publish_prob", s.honest_publish_prob);
  append_kv(out, "topics", static_cast<double>(s.topics));
  append_kv(out, "observers", static_cast<double>(s.observers));
  append_kv(out, "observer_placement",
            std::string(observer_placement_name(s.observer.placement)));
  append_kv(out, "eclipse_target", static_cast<double>(s.observer.eclipse_target));
  append_kv(out, "sybil_extra_links",
            static_cast<double>(s.observer.sybil_extra_links));
  append_kv(out, "spammers", static_cast<double>(s.adversaries.spammers));
  append_kv(out, "spam_per_epoch", static_cast<double>(s.adversaries.spam_per_epoch));
  append_kv(out, "burst_flooders", static_cast<double>(s.adversaries.burst_flooders));
  append_kv(out, "burst_size", static_cast<double>(s.adversaries.burst_size));
  append_kv(out, "burst_at_epoch", static_cast<double>(s.adversaries.burst_at_epoch));
  append_kv(out, "adaptive_spammers",
            static_cast<double>(s.adversaries.adaptive_spammers));
  append_kv(out, "adaptive_probe_every",
            static_cast<double>(s.adversaries.adaptive_probe_every));
  append_kv(out, "stormers", static_cast<double>(s.storm.stormers));
  append_kv(out, "storm_wave_every_epochs",
            static_cast<double>(s.storm.wave_every_epochs));
  append_kv(out, "storm_joins_per_wave",
            static_cast<double>(s.storm.joins_per_wave));
  append_kv(out, "storm_slash_after_join",
            static_cast<double>(s.storm.slash_after_join ? 1 : 0));
  append_kv(out, "acceptable_root_window",
            static_cast<double>(s.acceptable_root_window));
  append_kv(out, "churn_leave_prob", s.churn.leave_prob_per_epoch);
  append_kv(out, "churn_offline_epochs",
            static_cast<double>(s.churn.offline_epochs));
  append_kv(out, "churn_rejoin_degree", static_cast<double>(s.churn.rejoin_degree));
  append_kv(out, "seen_ttl_seconds", static_cast<double>(s.seen_ttl_seconds));
  append_kv(out, "replayers", static_cast<double>(s.replay.replayers));
  append_kv(out, "replay_delay_seconds",
            static_cast<double>(s.replay.delay_seconds));
  append_kv(out, "replay_ihave_fanout",
            static_cast<double>(s.replay.ihave_fanout));
  append_kv(out, "partition", static_cast<double>(s.partition.enabled ? 1 : 0));
  append_kv(out, "partition_cut_at_epoch",
            static_cast<double>(s.partition.cut_at_epoch));
  append_kv(out, "partition_heal_at_epoch",
            static_cast<double>(s.partition.heal_at_epoch));
  append_kv(out, "partition_fraction", s.partition.fraction);
  append_kv(out, "link_base_latency_us", static_cast<double>(s.link.base_latency));
  append_kv(out, "link_jitter_us", static_cast<double>(s.link.jitter));
  append_kv(out, "link_loss_rate", s.link.loss_rate);
  append_kv(out, "link_bandwidth_bytes_per_sec", s.link.bandwidth_bytes_per_sec);
  append_kv(out, "pow_difficulty_bits", static_cast<double>(s.pow_difficulty_bits));
  out += "}";
  return out;
}

}  // namespace

CampaignResult run_campaign(const ScenarioSpec& spec, const CampaignConfig& config) {
  if (config.seeds == 0) {
    throw std::invalid_argument("CampaignConfig: seeds must be >= 1");
  }
  // Validate the spec once, up front, on the calling thread.
  { ScenarioRunner probe(spec, config.seed0); }

  CampaignResult result;
  result.spec = spec;
  result.seeds.reserve(config.seeds);
  for (std::size_t i = 0; i < config.seeds; ++i) {
    result.seeds.push_back(config.seed0 + i);
  }
  result.runs.resize(config.seeds);
  result.resources.resize(config.seeds);
  result.series.resize(config.seeds);

  std::size_t threads = config.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::min<std::size_t>(config.seeds, hw == 0 ? 1 : hw);
  }
  threads = std::min(threads, config.seeds);
  // Each in-flight seed runs its world on spec.world_threads scheduler
  // shards, so cap the pool to keep seeds_in_flight * world_threads
  // within the hardware: oversubscribing sharded worlds stalls their
  // window barriers instead of adding throughput.
  if (spec.world_threads > 1) {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t budget =
        std::max<std::size_t>(1, (hw == 0 ? 1 : hw) / spec.world_threads);
    threads = std::min(threads, budget);
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(config.seeds);
  const auto worker = [&] {
    while (true) {
      const std::size_t idx = next.fetch_add(1);
      if (idx >= result.seeds.size()) return;
      try {
        ScenarioSpec run_spec = spec;
        // The campaign keeps seed0's trace only (see CampaignResult), so
        // the other seeds skip the tracer entirely.
        if (idx != 0) run_spec.trace = false;
        ScenarioRunner runner(run_spec, result.seeds[idx]);
        result.runs[idx] = runner.run();
        result.resources[idx] = runner.resource();
        result.series[idx] = runner.take_timeseries();
        if (idx == 0) result.trace_json = runner.take_trace_json();
      } catch (...) {
        errors[idx] = std::current_exception();
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }

  result.aggregate = aggregate_runs(result.runs);
  return result;
}

// Built with operator+= only: GCC 12's -Wrestrict misfires on inlined
// `const char* + std::string&&` chains (PR105651; see bench/harness.h).
std::string report_json(const CampaignResult& result, bool include_resources) {
  std::string out = "{\n";
  out += "  \"schema_version\": 2,\n";
  out += "  \"scenario\": \"";
  out += json_escape(result.spec.name);
  out += "\",\n";
  out += "  \"description\": \"";
  out += json_escape(result.spec.description);
  out += "\",\n";
  out += "  \"spec\": ";
  out += spec_json(result.spec);
  out += ",\n";

  // Seeds are printed as integers, not through json_number: a double
  // cannot represent a uint64 seed above 2^53 exactly, and the report
  // must identify the exact seeds that reproduce the runs.
  out += "  \"seeds\": [";
  for (std::size_t i = 0; i < result.seeds.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(result.seeds[i]);
  }
  out += "],\n";

  out += "  \"runs\": [";
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"seed\": ";
    out += std::to_string(result.seeds[i]);
    out += ", \"metrics\": {";
    const auto& entries = result.runs[i].entries();
    for (std::size_t j = 0; j < entries.size(); ++j) {
      if (j != 0) out += ", ";
      out += '"';
      out += json_escape(entries[j].name);
      out += "\": ";
      out += json_number(entries[j].value);
    }
    out += "}}";
  }
  out += "\n  ],\n";

  out += "  \"aggregate\": {";
  for (std::size_t i = 0; i < result.aggregate.size(); ++i) {
    const AggregateMetric& a = result.aggregate[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    out += json_escape(a.name);
    out += "\": {\"mean\": ";
    out += json_number(a.mean);
    out += ", \"min\": ";
    out += json_number(a.min);
    out += ", \"max\": ";
    out += json_number(a.max);
    out += "}";
  }
  out += "\n  }";

  // Host-cost block. Only wall_ms (and its derived ratio) is
  // machine-dependent; the nested "scheduler" object — typed event
  // engine statistics — is deterministic, a pure function of (spec,
  // seed), and safe to compare across machines.
  if (include_resources && !result.resources.empty()) {
    double wall_ms_total = 0;
    double sim_s_total = 0;
    out += ",\n  \"resources\": {\"deterministic\": false, \"runs\": [";
    for (std::size_t i = 0; i < result.resources.size(); ++i) {
      const ResourceUsage& r = result.resources[i];
      wall_ms_total += r.wall_ms;
      sim_s_total += r.sim_seconds;
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"wall_ms\": ";
      out += json_number(r.wall_ms);
      out += ", \"sim_seconds\": ";
      out += json_number(r.sim_seconds);
      out += ", \"wall_ms_per_sim_second\": ";
      out += json_number(r.sim_seconds == 0 ? 0 : r.wall_ms / r.sim_seconds);
      out += ",\n     \"scheduler\": {\"deterministic\": true, \"events_scheduled\": ";
      out += json_number(r.events_scheduled);
      out += ", \"events_executed\": ";
      out += json_number(r.events_executed);
      out += ", \"event_queue_peak\": ";
      out += json_number(r.event_queue_peak);
      out += ", \"timer_fires\": ";
      out += json_number(r.timer_fires);
      // Event pooling is per lane, so the alloc/reuse split depends on
      // the shard partition — it lives outside the deterministic block.
      out += "},\n     \"pool\": {\"deterministic\": false, \"event_allocs\": ";
      out += json_number(r.event_allocs);
      out += ", \"event_pool_reuses\": ";
      out += json_number(r.event_pool_reuses);
      out += ", \"event_allocs_steady\": ";
      out += json_number(r.event_allocs_steady);
      out += ", \"event_allocs_per_sim_second\": ";
      out += json_number(r.event_allocs_per_sim_second);
      // How this run was executed: shard count, the per-lane event split
      // (index 0 = the global lane) and the resident bytes parallel
      // execution added beyond the deterministic memory model.
      out += "},\n     \"parallel\": {\"deterministic\": false, \"world_threads\": ";
      out += json_number(r.world_threads);
      out += ", \"lane_events_executed\": [";
      for (std::size_t lane = 0; lane < r.lane_events_executed.size(); ++lane) {
        if (lane != 0) out += ", ";
        out += json_number(r.lane_events_executed[lane]);
      }
      out += "], \"scratch_bytes\": ";
      out += json_number(r.parallel_scratch_bytes);
      out += "},\n     \"group_sync\": {\"deterministic\": true, \"sync_bytes\": ";
      out += json_number(r.group_sync_bytes);
      out += ", \"root_updates\": ";
      out += json_number(r.group_root_updates);
      out += "},\n     \"memory\": {\"deterministic\": true, \"router_bytes\": ";
      out += json_number(r.mem_router_bytes);
      out += ", \"mcache_bytes\": ";
      out += json_number(r.mem_mcache_bytes);
      out += ", \"nullifier_bytes\": ";
      out += json_number(r.mem_nullifier_bytes);
      out += ", \"merkle_bytes\": ";
      out += json_number(r.mem_merkle_bytes);
      out += ", \"event_pool_bytes\": ";
      out += json_number(r.mem_event_pool_bytes);
      out += ", \"network_bytes\": ";
      out += json_number(r.mem_network_bytes);
      // Derived density figure: total tracked bytes over the node count
      // (the scaling headline — the README "Memory budget" table and the
      // CI bytes/node gate both read this field).
      const double tracked = r.mem_router_bytes + r.mem_mcache_bytes +
                             r.mem_nullifier_bytes + r.mem_merkle_bytes +
                             r.mem_event_pool_bytes + r.mem_network_bytes;
      out += ", \"bytes_per_node\": ";
      out += json_number(result.spec.nodes == 0
                             ? 0
                             : tracked / static_cast<double>(result.spec.nodes));
      out += "}}";
    }
    out += "\n  ], \"wall_ms_per_sim_second_mean\": ";
    out += json_number(sim_s_total == 0 ? 0 : wall_ms_total / sim_s_total);
    out += "}";
  }

  out += "\n}\n";
  return out;
}

namespace {

std::string write_text(const std::string& file, const std::string& out_dir,
                       const std::string& content) {
  const std::string path = out_dir.empty() ? file : out_dir + "/" + file;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return path;
}

}  // namespace

std::string write_report(const CampaignResult& result, const std::string& out_dir) {
  return write_text("SCENARIO_" + result.spec.name + ".json", out_dir,
                    report_json(result, /*include_resources=*/true));
}

std::string timeseries_json(const CampaignResult& result) {
  // Every run of one spec samples the same columns (registration order is
  // code order); the first non-empty series provides the header.
  const obs::TimeSeries* first = nullptr;
  for (const obs::TimeSeries& s : result.series) {
    if (!s.empty()) {
      first = &s;
      break;
    }
  }
  if (first == nullptr) return "";

  std::string out = "{\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"kind\": \"timeseries\",\n";
  out += "  \"scenario\": \"";
  out += json_escape(result.spec.name);
  out += "\",\n";
  out += "  \"epoch_seconds\": ";
  out += std::to_string(result.spec.epoch_seconds);
  out += ",\n";
  out += "  \"columns\": [";
  const std::vector<std::string>& cols = first->columns();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"';
    out += json_escape(cols[i]);
    out += '"';
  }
  out += "],\n";
  out += "  \"runs\": [";
  for (std::size_t i = 0; i < result.series.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"seed\": ";
    out += std::to_string(result.seeds[i]);
    out += ", \"rows\": [";
    const auto& rows = result.series[i].rows();
    for (std::size_t r = 0; r < rows.size(); ++r) {
      out += r == 0 ? "\n" : ",\n";
      out += "      [";
      for (std::size_t c = 0; c < rows[r].size(); ++c) {
        if (c != 0) out += ", ";
        out += json_number(rows[r][c]);
      }
      out += "]";
    }
    out += rows.empty() ? "]}" : "\n    ]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string write_timeseries(const CampaignResult& result, const std::string& out_dir) {
  const std::string json = timeseries_json(result);
  if (json.empty()) return "";
  return write_text("TIMESERIES_" + result.spec.name + ".json", out_dir, json);
}

std::string write_trace(const CampaignResult& result, const std::string& out_dir) {
  if (result.trace_json.empty()) return "";
  return write_text("TRACE_" + result.spec.name + ".json", out_dir,
                    result.trace_json);
}

}  // namespace wakurln::scenario
