#pragma once
// Executes one scenario: builds the simulated world a ScenarioSpec
// describes (WAKU-RLN-RELAY via waku::SimHarness, or the PoW-baseline
// relay stack), drives the honest workload, the adversaries (steady and
// burst spammers, adaptive at-the-rate spammers and their over-rate
// probes, registration-storm waves, IWANT replayers), churn and
// partitions on the discrete-event clock — across one or many content
// topics — and distils the run into a MetricSet: delivery ratio
// (aggregate and per topic), propagation-latency percentiles, per-node
// traffic, spam containment and slashing coverage, nullifier-map
// footprint, membership-sync churn, and the coalition-first-spy
// adversary's view of originator anonymity under the configured
// observer placement.
//
// A run is a pure function of (spec, seed): all randomness flows from
// explicitly seeded Rng streams and the deterministic scheduler, so two
// runs with equal inputs produce identical metrics, byte for byte.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeseries.h"
#include "scenario/metrics.h"
#include "scenario/spec.h"

namespace wakurln::scenario {

/// Host-machine cost of one run. Wall-clock is *not* part of the metric
/// set: it is machine-dependent, so it lives outside the byte-determinism
/// contract and is reported in the campaign's separate resources block.
/// The event-engine fields below it, by contrast, ARE deterministic —
/// pure functions of (spec, seed) — and gate the scaling roadmap.
struct ResourceUsage {
  double wall_ms = 0;      ///< host time spent inside run()
  double sim_seconds = 0;  ///< simulated time the run covered

  // Typed event engine statistics (sim::Scheduler::Stats). Event and
  // timer counts are deterministic at every thread count; the pool
  // fields (event_allocs*, event_pool_reuses) depend on how the node
  // partition splits the per-lane pools, so the report moves them into
  // the machine-ish "pool" sub-block instead of the deterministic
  // scheduler one.
  double events_scheduled = 0;   ///< events enqueued, incl. timer re-arms
  double events_executed = 0;
  double event_allocs = 0;       ///< pool misses over the whole run
  double event_pool_reuses = 0;  ///< pooled nodes recycled
  double event_queue_peak = 0;   ///< max live events queued at once
  double timer_fires = 0;        ///< periodic timer callbacks run
  /// Pool misses after world construction + warm-up (the steady state),
  /// and their rate per simulated second of the measured phase. ~0 means
  /// the traffic phase scheduled every event without allocating.
  double event_allocs_steady = 0;
  double event_allocs_per_sim_second = 0;

  // Parallel execution shape of the run (sharded scheduler, PR 9).
  // world_threads and the per-lane split describe how this particular
  // run was executed — diagnostics, not part of any determinism contract.
  double world_threads = 1;  ///< scheduler shards the run executed on
  /// Events executed per lane (index 0 = the global lane, then one entry
  /// per shard). Sums to events_executed.
  std::vector<double> lane_events_executed;
  /// Resident bytes of per-shard rings/pools, mailboxes and worker
  /// bookkeeping beyond the deterministic event-engine memory model.
  double parallel_scratch_bytes = 0;

  // Membership group-sync churn (waku::GroupSync::Stats), deterministic;
  // zero for the PoW baseline, which has no membership. Registration
  // storms are the scenarios that move these.
  double group_sync_bytes = 0;    ///< modeled bytes to apply the event stream
  double group_root_updates = 0;  ///< Merkle root changes over the run

  // Per-subsystem resident-memory peaks, sampled once per epoch over the
  // whole run (modeled bytes — see obs/memory.h; deterministic, reported
  // whether or not the observability layer is enabled). Sums across all
  // nodes of the world except the shared merkle view and the event pool.
  double mem_router_bytes = 0;      ///< gossipsub peer/mesh/seen state
                                    ///  (+ shared params/topic table, once)
  double mem_mcache_bytes = 0;      ///< gossip message caches
  double mem_nullifier_bytes = 0;   ///< RLN nullifier views + shared store
  double mem_merkle_bytes = 0;      ///< shared membership Merkle view
  double mem_event_pool_bytes = 0;  ///< scheduler calendar + event pool
  double mem_network_bytes = 0;     ///< interned link arena + overrides
};

class ScenarioRunner {
 public:
  /// Throws std::invalid_argument if the spec is infeasible (e.g. fewer
  /// nodes than adversaries + observers + one honest publisher).
  ScenarioRunner(ScenarioSpec spec, std::uint64_t seed);

  /// Builds the world, runs it to completion and returns the metrics.
  MetricSet run();

  /// Host cost of the last run() call.
  const ResourceUsage& resource() const { return resource_; }

  /// Per-epoch metric samples of the last run() — empty unless
  /// spec.observability. Moves the series out (one run per runner).
  obs::TimeSeries take_timeseries() { return std::move(series_); }

  /// Chrome trace-event JSON of the last run() — empty unless spec.trace.
  std::string take_trace_json() { return std::move(trace_json_); }

  const ScenarioSpec& spec() const { return spec_; }
  std::uint64_t seed() const { return seed_; }

 private:
  MetricSet run_rln();
  MetricSet run_pow();

  ScenarioSpec spec_;
  std::uint64_t seed_;
  ResourceUsage resource_;
  obs::TimeSeries series_;
  std::string trace_json_;
};

}  // namespace wakurln::scenario
