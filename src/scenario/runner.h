#pragma once
// Executes one scenario: builds the simulated world a ScenarioSpec
// describes (WAKU-RLN-RELAY via waku::SimHarness, or the PoW-baseline
// relay stack), drives the honest workload, the adversaries, churn and
// partitions on the discrete-event clock, and distils the run into a
// MetricSet: delivery ratio, propagation-latency percentiles, per-node
// traffic, spam containment and slashing coverage, nullifier-map
// footprint, and the first-spy observer's view of originator anonymity.
//
// A run is a pure function of (spec, seed): all randomness flows from
// explicitly seeded Rng streams and the deterministic scheduler, so two
// runs with equal inputs produce identical metrics, byte for byte.

#include <cstdint>

#include "scenario/metrics.h"
#include "scenario/spec.h"

namespace wakurln::scenario {

/// Host-machine cost of one run. Wall-clock is *not* part of the metric
/// set: it is machine-dependent, so it lives outside the byte-determinism
/// contract and is reported in the campaign's separate resources block.
struct ResourceUsage {
  double wall_ms = 0;      ///< host time spent inside run()
  double sim_seconds = 0;  ///< simulated time the run covered
};

class ScenarioRunner {
 public:
  /// Throws std::invalid_argument if the spec is infeasible (e.g. fewer
  /// nodes than adversaries + observers + one honest publisher).
  ScenarioRunner(ScenarioSpec spec, std::uint64_t seed);

  /// Builds the world, runs it to completion and returns the metrics.
  MetricSet run();

  /// Host cost of the last run() call.
  const ResourceUsage& resource() const { return resource_; }

  const ScenarioSpec& spec() const { return spec_; }
  std::uint64_t seed() const { return seed_; }

 private:
  MetricSet run_rln();
  MetricSet run_pow();

  ScenarioSpec spec_;
  std::uint64_t seed_;
  ResourceUsage resource_;
};

}  // namespace wakurln::scenario
