#pragma once
// Campaign = one scenario swept across seeds. Runs land on a small thread
// pool (each run is an independent, fully deterministic simulated world,
// so parallelism cannot change any result), are aggregated per metric,
// and serialize to a stable JSON report following the PR-1 bench-harness
// conventions (SCENARIO_<name>.json next to the BENCH_<name>.json files).
//
// Determinism contract: report_json(run_campaign(spec, cfg)) is a pure
// function of (spec, cfg.seeds, cfg.seed0) — the thread count and
// completion order never leak into the bytes.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeseries.h"
#include "scenario/metrics.h"
#include "scenario/runner.h"
#include "scenario/spec.h"

namespace wakurln::scenario {

struct CampaignConfig {
  /// How many seeds to sweep: seed0, seed0+1, ...
  std::size_t seeds = 3;
  std::uint64_t seed0 = 1;
  /// Worker threads; 0 picks min(seeds, hardware_concurrency).
  std::size_t threads = 0;
};

struct CampaignResult {
  ScenarioSpec spec;
  std::vector<std::uint64_t> seeds;
  std::vector<MetricSet> runs;  ///< ordered by seed, not by completion
  std::vector<ResourceUsage> resources;  ///< host cost per run (same order)
  std::vector<AggregateMetric> aggregate;
  /// Per-epoch metric samples per run (same order; empty series unless
  /// spec.observability).
  std::vector<obs::TimeSeries> series;
  /// Chrome trace-event JSON of the seed0 run ("" unless spec.trace).
  /// Seed0 only: the trace is a timeline artifact for one run, and
  /// keeping it single-seed leaves TRACE_* independent of the seed count
  /// and the thread pool.
  std::string trace_json;
};

/// Runs the sweep; rethrows the first per-run exception (by seed order).
CampaignResult run_campaign(const ScenarioSpec& spec, const CampaignConfig& config);

/// Deterministic JSON serialization (schema documented in the README).
/// `include_resources` appends the machine-dependent "resources" block
/// (host wall-clock per run); everything else stays a pure function of
/// (spec, seeds).
std::string report_json(const CampaignResult& result, bool include_resources = false);

/// Writes the full report (resources included) to
/// "<out_dir>/SCENARIO_<name>.json" ("" = CWD); returns the path written.
std::string write_report(const CampaignResult& result, const std::string& out_dir = "");

/// Deterministic JSON serialization of the per-epoch time series across
/// all runs — a pure function of (spec, cfg.seeds, cfg.seed0), like
/// report_json. Returns "" when no run sampled anything (observability
/// off).
std::string timeseries_json(const CampaignResult& result);

/// Writes timeseries_json to "<out_dir>/TIMESERIES_<name>.json"; returns
/// the path written, or "" when there was nothing to write.
std::string write_timeseries(const CampaignResult& result,
                             const std::string& out_dir = "");

/// Writes the seed0 trace to "<out_dir>/TRACE_<name>.json"; returns the
/// path written, or "" when tracing was off.
std::string write_trace(const CampaignResult& result, const std::string& out_dir = "");

}  // namespace wakurln::scenario
