#pragma once
// Declarative description of one large-scale experiment: which protocol
// stack to deploy (WAKU-RLN-RELAY or the PoW baseline), how many peers on
// which overlay, what the honest workload looks like, and which
// adversaries / disruptions act on the network. A spec plus a seed fully
// determines a run — the scenario runner derives every random decision
// from the seed, so identical (spec, seed) pairs reproduce byte-identical
// metrics.

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/network.h"
#include "sim/topology.h"

namespace wakurln::scenario {

/// Where the colluding observer coalition sits in the overlay. The
/// coalition always occupies the tail band of node indices; placement
/// changes its *wiring* — the structural position Bellet et al. ("Who
/// started this rumor?") and Jin et al. show dominates deanonymisation.
enum class ObserverPlacement {
  /// Wired like any other node (the original isolated-observer setup).
  kRandomTail,
  /// A ring around one target publisher: the target's links to
  /// non-coalition nodes are severed and every coalition member links to
  /// the target directly, so the target's first hop is always observed.
  kEclipseRing,
  /// Degree-biased sybils: each coalition member receives extra random
  /// chords through the sim::build_topology bias hook, occupying
  /// high-degree positions adjacent to many potential originators.
  kSybilHighDegree,
};

/// Stable identifier used in CLI flags and JSON reports.
const char* observer_placement_name(ObserverPlacement placement);

/// Parses observer_placement_name output back; throws
/// std::invalid_argument on unknown names.
ObserverPlacement observer_placement_from_name(std::string_view name);

/// How the silent first-spy coalition (size = ScenarioSpec::observers) is
/// placed. The coalition-first-spy metric uses the earliest arrival
/// across the whole coalition.
struct ObserverSpec {
  ObserverPlacement placement = ObserverPlacement::kRandomTail;
  /// Node index the eclipse ring wraps (kEclipseRing; must be an active
  /// publisher so the eclipsed traffic actually exists).
  std::size_t eclipse_target = 0;
  /// Extra random chords per coalition member (kSybilHighDegree).
  std::size_t sybil_extra_links = 16;
};

/// Adversary population mixed into the node set (node indices are
/// assigned after the honest publishers, before the observers).
struct AdversaryMix {
  /// Members that publish over-rate every epoch via a modified client
  /// (no local rate check): the paper's steady spammer.
  std::size_t spammers = 0;
  /// Unchecked messages each spammer emits per epoch.
  std::uint64_t spam_per_epoch = 4;

  /// Members that stay quiet, then dump one large burst in a single
  /// epoch: the flash-flood attack.
  std::size_t burst_flooders = 0;
  std::uint64_t burst_size = 16;
  /// Which traffic epoch the burst lands in.
  std::uint64_t burst_at_epoch = 1;

  /// Adaptive spammers: modified clients that publish exactly
  /// messages_per_epoch messages every epoch — at the rate, never over
  /// it. The rate limiter cannot distinguish this traffic from a busy
  /// honest member and the slasher never fires: the scenario separates
  /// what rate-limiting contains from what slashing punishes.
  std::size_t adaptive_spammers = 0;
  /// If > 0, each adaptive spammer probes the slashing boundary on every
  /// epoch e with (e + 1) % adaptive_probe_every == 0: one extra
  /// unchecked message beyond the rate (slot reuse → double signal →
  /// slash). 0 = pure under-rate mode, provably unslashed.
  std::uint64_t adaptive_probe_every = 0;

  std::size_t total() const { return spammers + burst_flooders + adaptive_spammers; }
};

/// Registration storm: a dedicated node band joins in periodic waves
/// mid-traffic (driven by a first-class periodic timer on the event
/// engine), and — when slash_after_join is set — each joined member
/// immediately double-signals so the network slashes it again. Mass
/// join/slash interleaving churns the waku::GroupSync Merkle tree in both
/// directions while honest traffic flows; group-sync bytes and root
/// updates land in the report's resources block. Storm scenarios register
/// only the publishing bands up front (the storm band must start
/// unregistered), regardless of register_publishers_only.
struct StormSpec {
  /// Size of the storm band (after the adaptive spammers, before the
  /// replayers). Consumed in index order by the join waves.
  std::size_t stormers = 0;
  /// Wave period in traffic epochs.
  std::uint64_t wave_every_epochs = 1;
  /// Members requesting registration per wave.
  std::size_t joins_per_wave = 4;
  /// Joined members double-signal once confirmed, so each wave's joins
  /// become the next blocks' slashes.
  bool slash_after_join = true;
};

/// Membership churn: nodes go offline (links dropped, in-flight frames
/// invalidated) and rejoin later.
struct ChurnSpec {
  /// Per eligible node, per traffic epoch probability of departing.
  double leave_prob_per_epoch = 0.0;
  /// How many epochs a departed node stays offline before rejoining.
  std::uint64_t offline_epochs = 1;
  /// Degree used when the node rewires into the overlay on rejoin.
  std::size_t rejoin_degree = 4;
};

/// Colluding replay adversary ("IWANT replay"): silent peers that record
/// every message delivered to them and, once the honest routers' seen
/// caches have forgotten the id (but the RLN epoch window still accepts
/// it), advertise the old ids via IHAVE. Honest peers IWANT-fetch the
/// stale message and must re-validate it — the proof-verdict cache turns
/// each re-validation into a map lookup instead of a zkSNARK verify.
struct ReplaySpec {
  /// Colluding replay peers (node band after the flooders, before the
  /// observers; they subscribe and relay but never publish or register).
  std::size_t replayers = 0;
  /// Seconds between first sighting and the IHAVE replay. Must exceed
  /// the seen-cache TTL (so honest peers re-fetch) and stay under
  /// Thr * epoch_seconds (so validation reaches the proof check).
  std::uint64_t delay_seconds = 12;
  /// Honest neighbours each replayer advertises an old id to.
  std::size_t ihave_fanout = 6;
};

/// One clean cut of the overlay into two halves, healed later.
struct PartitionSpec {
  bool enabled = false;
  /// Traffic epoch at whose boundary the cut happens.
  std::uint64_t cut_at_epoch = 1;
  /// Traffic epoch at whose boundary the severed links are restored.
  std::uint64_t heal_at_epoch = 3;
  /// Fraction of nodes on the minority side.
  double fraction = 0.5;
};

/// Which protocol stack the scenario deploys.
enum class Protocol {
  kRln,  ///< WAKU-RLN-RELAY (membership, proofs, slashing)
  kPow,  ///< plain relay + EIP-627-style proof-of-work pricing
};

struct ScenarioSpec {
  std::string name;
  std::string description;

  Protocol protocol = Protocol::kRln;

  // -- world ------------------------------------------------------------
  std::size_t nodes = 16;
  sim::TopologyKind topology = sim::TopologyKind::kRingPlusRandom;
  std::size_t extra_links_per_node = 3;
  double erdos_renyi_p = 0.3;
  sim::LinkParams link;
  /// kGeo assigns nodes to regions and derives per-link latency from
  /// region pairs (sim/topology.h); kUniform uses `link` everywhere.
  sim::LinkProfile link_profile = sim::LinkProfile::kUniform;

  // -- protocol ----------------------------------------------------------
  /// RLN epoch length T (also the cadence of the honest workload).
  std::uint64_t epoch_seconds = 10;
  /// RLN rate k (messages per member per epoch); the paper's scheme is 1.
  std::uint64_t messages_per_epoch = 1;
  /// PoW difficulty for Protocol::kPow.
  int pow_difficulty_bits = 8;

  /// RLN acceptable-root window override (0 = relay default): how many
  /// recent membership Merkle roots a validator accepts a proof against.
  /// Registration storms push many root updates per block; a wider window
  /// keeps honest in-flight proofs acceptable through the churn.
  std::size_t acceptable_root_window = 0;

  // -- workload ----------------------------------------------------------
  /// Number of traffic epochs driven after registration + mesh warm-up.
  std::uint64_t traffic_epochs = 5;
  /// Per honest publisher, per epoch probability of publishing a message.
  double honest_publish_prob = 0.6;
  /// Content topics the mesh carries (each is an independent per-topic
  /// GossipSub mesh over the same overlay). Publishers rotate round-robin:
  /// node i publishes epoch e's message on topic (i + e) % topics. 1 keeps
  /// the original single-topic workload byte-identical.
  std::size_t topics = 1;
  /// Silent colluding first-spy observers (taken from the tail of the
  /// node range; they subscribe and relay but never publish).
  std::size_t observers = 1;
  /// How the observer coalition is wired into the overlay.
  ObserverSpec observer;
  /// 0 = every honest node publishes. Otherwise only the first N honest
  /// nodes publish and the rest are pure relays (they validate and route
  /// but never publish or churn) — how 10k-node worlds keep a bounded
  /// publisher set.
  std::size_t publishers = 0;
  /// Register only the publishing members (publishers + adversaries).
  /// Relays and observers stay unregistered: RLN validation needs the
  /// group view, not a membership. Keeps registration cost O(publishers)
  /// instead of O(nodes) at large scale.
  bool register_publishers_only = false;
  /// Pads every published payload (honest and spam) to this many bytes
  /// (0 = the bare workload key). Payload-heavy runs exercise the
  /// zero-copy message fabric.
  std::size_t payload_bytes = 0;

  /// GossipSub seen-cache TTL override in seconds (0 = router default).
  /// Short TTLs open the window the iwant_replay adversary exploits.
  std::uint64_t seen_ttl_seconds = 0;

  // -- execution ---------------------------------------------------------
  /// Scheduler shards executing each run's world (forwarded into
  /// sim::Scheduler via waku::SimHarness). Every deterministic output —
  /// metrics, aggregate, time series — is byte-identical at every value,
  /// so like `observability` it is not part of the spec's serialized
  /// identity; only the resources block records it. Tracing requires 1
  /// (the tracer is not shard-aware; validate() enforces it).
  unsigned world_threads = 1;

  /// Batched crypto hot path (block-batched Merkle appends, prepared
  /// proof verification, modeled amortised-verification queue). Every
  /// deterministic report byte is identical on or off — the batch paths
  /// are pinned bit-equal to the scalar reference implementations
  /// (tests/report_pins_test.cpp sweeps both) — so like `world_threads`
  /// it is not part of the spec's serialized identity. Off = the scalar
  /// reference paths, kept as the executable spec.
  bool batch_crypto = true;

  // -- observability -----------------------------------------------------
  /// Enables the metrics registry and the per-epoch time-series sampler
  /// (src/obs). Off by default: a disabled registry hands out inert
  /// handles and the protocol metrics stay byte-identical either way —
  /// the bench suite asserts both properties. Not part of the spec's
  /// serialized identity (reports are comparable across obs settings).
  bool observability = false;
  /// Enables the message-lifecycle tracer (Chrome trace-event JSON).
  bool trace = false;
  /// Tracer ring capacity in events (oldest events overwritten beyond it).
  std::size_t trace_capacity = 1 << 16;

  AdversaryMix adversaries;
  ChurnSpec churn;
  PartitionSpec partition;
  ReplaySpec replay;
  StormSpec storm;

  /// Node indices reserved for non-honest bands: adversaries (steady /
  /// burst / adaptive), stormers, replayers and the observer coalition.
  std::size_t reserved_nodes() const {
    return adversaries.total() + storm.stormers + replay.replayers + observers;
  }

  /// Honest publisher count (everything that is not in a reserved band).
  std::size_t honest_publishers() const {
    const std::size_t reserved = reserved_nodes();
    return nodes > reserved ? nodes - reserved : 0;
  }

  /// Honest nodes that actually publish (see `publishers`).
  std::size_t active_publishers() const {
    const std::size_t honest = honest_publishers();
    return publishers == 0 ? honest : std::min(publishers, honest);
  }

  /// Throws std::invalid_argument when the spec is infeasible: an
  /// over-subscribed node range (reserved bands leave no honest
  /// publisher), an eclipse target outside the active-publisher band,
  /// adversaries that have no meaning for the selected protocol, or
  /// out-of-range scalar parameters. ScenarioRunner validates on
  /// construction; callers composing specs by hand may validate earlier.
  void validate() const;
};

}  // namespace wakurln::scenario
