#pragma once
// Declarative description of one large-scale experiment: which protocol
// stack to deploy (WAKU-RLN-RELAY or the PoW baseline), how many peers on
// which overlay, what the honest workload looks like, and which
// adversaries / disruptions act on the network. A spec plus a seed fully
// determines a run — the scenario runner derives every random decision
// from the seed, so identical (spec, seed) pairs reproduce byte-identical
// metrics.

#include <cstdint>
#include <string>

#include "sim/network.h"
#include "sim/topology.h"

namespace wakurln::scenario {

/// Adversary population mixed into the node set (node indices are
/// assigned after the honest publishers, before the observers).
struct AdversaryMix {
  /// Members that publish over-rate every epoch via a modified client
  /// (no local rate check): the paper's steady spammer.
  std::size_t spammers = 0;
  /// Unchecked messages each spammer emits per epoch.
  std::uint64_t spam_per_epoch = 4;

  /// Members that stay quiet, then dump one large burst in a single
  /// epoch: the flash-flood attack.
  std::size_t burst_flooders = 0;
  std::uint64_t burst_size = 16;
  /// Which traffic epoch the burst lands in.
  std::uint64_t burst_at_epoch = 1;

  std::size_t total() const { return spammers + burst_flooders; }
};

/// Membership churn: nodes go offline (links dropped, in-flight frames
/// invalidated) and rejoin later.
struct ChurnSpec {
  /// Per eligible node, per traffic epoch probability of departing.
  double leave_prob_per_epoch = 0.0;
  /// How many epochs a departed node stays offline before rejoining.
  std::uint64_t offline_epochs = 1;
  /// Degree used when the node rewires into the overlay on rejoin.
  std::size_t rejoin_degree = 4;
};

/// Colluding replay adversary ("IWANT replay"): silent peers that record
/// every message delivered to them and, once the honest routers' seen
/// caches have forgotten the id (but the RLN epoch window still accepts
/// it), advertise the old ids via IHAVE. Honest peers IWANT-fetch the
/// stale message and must re-validate it — the proof-verdict cache turns
/// each re-validation into a map lookup instead of a zkSNARK verify.
struct ReplaySpec {
  /// Colluding replay peers (node band after the flooders, before the
  /// observers; they subscribe and relay but never publish or register).
  std::size_t replayers = 0;
  /// Seconds between first sighting and the IHAVE replay. Must exceed
  /// the seen-cache TTL (so honest peers re-fetch) and stay under
  /// Thr * epoch_seconds (so validation reaches the proof check).
  std::uint64_t delay_seconds = 12;
  /// Honest neighbours each replayer advertises an old id to.
  std::size_t ihave_fanout = 6;
};

/// One clean cut of the overlay into two halves, healed later.
struct PartitionSpec {
  bool enabled = false;
  /// Traffic epoch at whose boundary the cut happens.
  std::uint64_t cut_at_epoch = 1;
  /// Traffic epoch at whose boundary the severed links are restored.
  std::uint64_t heal_at_epoch = 3;
  /// Fraction of nodes on the minority side.
  double fraction = 0.5;
};

/// Which protocol stack the scenario deploys.
enum class Protocol {
  kRln,  ///< WAKU-RLN-RELAY (membership, proofs, slashing)
  kPow,  ///< plain relay + EIP-627-style proof-of-work pricing
};

struct ScenarioSpec {
  std::string name;
  std::string description;

  Protocol protocol = Protocol::kRln;

  // -- world ------------------------------------------------------------
  std::size_t nodes = 16;
  sim::TopologyKind topology = sim::TopologyKind::kRingPlusRandom;
  std::size_t extra_links_per_node = 3;
  double erdos_renyi_p = 0.3;
  sim::LinkParams link;
  /// kGeo assigns nodes to regions and derives per-link latency from
  /// region pairs (sim/topology.h); kUniform uses `link` everywhere.
  sim::LinkProfile link_profile = sim::LinkProfile::kUniform;

  // -- protocol ----------------------------------------------------------
  /// RLN epoch length T (also the cadence of the honest workload).
  std::uint64_t epoch_seconds = 10;
  /// RLN rate k (messages per member per epoch); the paper's scheme is 1.
  std::uint64_t messages_per_epoch = 1;
  /// PoW difficulty for Protocol::kPow.
  int pow_difficulty_bits = 8;

  // -- workload ----------------------------------------------------------
  /// Number of traffic epochs driven after registration + mesh warm-up.
  std::uint64_t traffic_epochs = 5;
  /// Per honest publisher, per epoch probability of publishing a message.
  double honest_publish_prob = 0.6;
  /// Silent colluding first-spy observers (taken from the tail of the
  /// node range; they subscribe and relay but never publish).
  std::size_t observers = 1;
  /// 0 = every honest node publishes. Otherwise only the first N honest
  /// nodes publish and the rest are pure relays (they validate and route
  /// but never publish or churn) — how 10k-node worlds keep a bounded
  /// publisher set.
  std::size_t publishers = 0;
  /// Register only the publishing members (publishers + adversaries).
  /// Relays and observers stay unregistered: RLN validation needs the
  /// group view, not a membership. Keeps registration cost O(publishers)
  /// instead of O(nodes) at large scale.
  bool register_publishers_only = false;
  /// Pads every published payload (honest and spam) to this many bytes
  /// (0 = the bare workload key). Payload-heavy runs exercise the
  /// zero-copy message fabric.
  std::size_t payload_bytes = 0;

  /// GossipSub seen-cache TTL override in seconds (0 = router default).
  /// Short TTLs open the window the iwant_replay adversary exploits.
  std::uint64_t seen_ttl_seconds = 0;

  AdversaryMix adversaries;
  ChurnSpec churn;
  PartitionSpec partition;
  ReplaySpec replay;

  /// Honest publisher count (everything that is not adversary/replayer/
  /// observer).
  std::size_t honest_publishers() const {
    const std::size_t reserved = adversaries.total() + replay.replayers + observers;
    return nodes > reserved ? nodes - reserved : 0;
  }

  /// Honest nodes that actually publish (see `publishers`).
  std::size_t active_publishers() const {
    const std::size_t honest = honest_publishers();
    return publishers == 0 ? honest : std::min(publishers, honest);
  }
};

}  // namespace wakurln::scenario
