#pragma once
// The wire unit of the simulated network: an immutable, ref-counted view
// of a protocol frame. Lives below both the scheduler and the network so
// the typed event engine can carry frame deliveries as plain data (no
// type-erased closures on the hot path) without a circular include.

#include <cstdint>
#include <memory>

namespace wakurln::sim {

using NodeId = std::uint32_t;

namespace detail {
/// One tag object per frame payload type; its address identifies the type
/// without RTTI. `inline` guarantees a single address across TUs.
template <typename T>
inline constexpr char frame_tag_v = 0;
}  // namespace detail

/// Immutable, shared handle to a protocol frame. Copying a Frame bumps a
/// reference count — it never clones the contained frame, so the same
/// handle can be scheduled for delivery to many peers at zero marginal
/// cost (the zero-copy fabric's wire representation).
class Frame {
 public:
  Frame() = default;

  /// Wraps `value` in a shared frame (the one allocation of its fan-out).
  template <typename T>
  static Frame of(T value) {
    return Frame(std::make_shared<const T>(std::move(value)),
                 &detail::frame_tag_v<T>);
  }

  /// Adopts an existing shared payload without copying it.
  template <typename T>
  static Frame wrap(std::shared_ptr<const T> ptr) {
    return Frame(std::move(ptr), &detail::frame_tag_v<T>);
  }

  /// Typed access; nullptr when the frame holds a different type.
  template <typename T>
  const T* get_if() const {
    return tag_ == &detail::frame_tag_v<T> ? static_cast<const T*>(ptr_.get())
                                           : nullptr;
  }

  bool has_value() const { return ptr_ != nullptr; }
  /// Owners of the underlying frame (introspection for zero-copy tests).
  long use_count() const { return ptr_.use_count(); }

 private:
  Frame(std::shared_ptr<const void> ptr, const void* tag)
      : ptr_(std::move(ptr)), tag_(tag) {}

  std::shared_ptr<const void> ptr_;
  const void* tag_ = nullptr;
};

}  // namespace wakurln::sim
