#pragma once
// Deterministic discrete-event scheduler: the clock of the whole simulated
// world (network, gossip heartbeats, epochs, block mining). Events with
// equal timestamps run in submission order, so a fixed seed reproduces an
// experiment exactly.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace wakurln::sim {

/// Simulation time in microseconds.
using TimeUs = std::uint64_t;

inline constexpr TimeUs kUsPerMs = 1'000;
inline constexpr TimeUs kUsPerSecond = 1'000'000;

class Scheduler {
 public:
  TimeUs now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now).
  void schedule_at(TimeUs t, std::function<void()> fn);

  /// Schedules `fn` `delay` microseconds from now.
  void schedule_after(TimeUs delay, std::function<void()> fn);

  /// Runs the earliest pending event, if any. Returns false when idle.
  bool run_next();

  /// Runs every event with timestamp <= t, then advances the clock to t.
  void run_until(TimeUs t);

  /// Convenience: run_until(now + duration).
  void run_for(TimeUs duration);

  /// Drains the queue completely (use only for terminating workloads).
  void run_all();

  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    TimeUs time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimeUs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace wakurln::sim
