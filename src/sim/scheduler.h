#pragma once
// Deterministic discrete-event engine: the clock of the whole simulated
// world (network, gossip heartbeats, epochs, block mining).
//
// The engine is typed, pooled and — since the parallel-world work —
// *sharded*. The three dominant event classes each have a first-class
// representation instead of a heap-allocated type-erased closure:
//
//   * frame deliveries   — plain data (DeliveryEvent) executed through a
//                          DeliverySink, so the network hot path performs
//                          no std::function allocation per send;
//   * periodic timers    — the callback is stored once in a timer table
//                          and re-armed by the engine after every fire
//                          (no lambda re-capture per tick), with a
//                          generation-checked cancellation handle;
//   * one-shot callbacks — the std::function fallback for everything else.
//
// Sharded execution model
// -----------------------
// The engine owns one *global lane* plus S >= 1 *shard lanes*. Nodes are
// partitioned into contiguous ranges (shard_of(i) = i*S/N — aligned with
// the contiguous geo regions of sim/topology.h); each shard lane owns a
// full calendar-queue + event-pool + timer-table instance for its nodes.
// Frame deliveries and owner-tagged periodic timers (gossip heartbeats,
// nullifier GC) execute on the shard lane of their node; every untyped
// one-shot and untagged periodic timer is a *global* event executed by
// the coordinator with all shards quiesced.
//
// With world_threads > 1 the shard lanes run on worker threads under
// conservative time-window synchronisation: shards execute independently
// inside a lookahead window bounded by the minimum cross-shard link
// latency (sim::Network computes it and calls set_lookahead), and
// cross-shard deliveries are exchanged at window barriers through
// per-(src,dst)-shard FIFO mailboxes. The barrier schedule is a pure
// function of the workload and the lookahead — never of the thread
// count — so the single-thread run executes the *same* windows, making
// every deterministic report byte identical across world_threads.
//
// Ordering contract (relied on by every seeded experiment):
//   * Every event carries a total-order stamp (time, origin, seq):
//     origin 0 is the global lane, origin i+1 is node i, and seq is a
//     per-origin submission counter. Events execute in stamp order
//     within their lane; at equal timestamps global events run before
//     node events, and lower origins before higher ones. Because seq
//     counters are per-origin (not a single global counter), the stamps
//     an execution produces are independent of the shard count.
//   * An event running at time T may schedule more work at T (t < now
//     throws); the new event runs after every event already queued at T
//     with the same origin.
//   * A periodic timer first fires at now + first_delay, then re-arms at
//     fire_time + interval *after* its callback returns; cancel() from
//     inside the timer's own callback stops the re-arm.
//   * Work deferred from shard context with run_deferred() executes at
//     the next window barrier, in stamp order of the deferring events —
//     the same points and order at every thread count.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <variant>
#include <vector>

#include "sim/frame.h"

namespace wakurln::sim {

/// Simulation time in microseconds.
using TimeUs = std::uint64_t;

inline constexpr TimeUs kUsPerMs = 1'000;
inline constexpr TimeUs kUsPerSecond = 1'000'000;

/// A frame in flight: plain data, no closure. `generation` snapshots the
/// destination's drop_in_flight counter at send time so departures
/// invalidate frames already on the wire.
struct DeliveryEvent {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t generation = 0;
  std::size_t bytes = 0;
  Frame frame;
};

/// Executes delivery events; implemented by sim::Network. One sink per
/// scheduler — the simulated world has one network fabric. on_delivery
/// must be safe to call from shard worker threads (sim::Network keeps
/// per-lane traffic accounting for exactly this reason).
class DeliverySink {
 public:
  virtual void on_delivery(const DeliveryEvent& ev) = 0;

 protected:
  ~DeliverySink() = default;
};

/// Cancellation handle for a periodic timer. Copyable; stale handles
/// (already-cancelled timers, recycled slots) are detected by generation
/// and make cancel() a no-op returning false.
class TimerHandle {
 public:
  TimerHandle() = default;
  /// True when the handle was issued by schedule_periodic (it may still
  /// refer to a timer that was cancelled since; see Scheduler::timer_active).
  bool issued() const { return index_ != kInvalidIndex; }

 private:
  friend class Scheduler;
  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;
  std::uint32_t index_ = kInvalidIndex;
  std::uint32_t generation_ = 0;
  std::uint32_t lane_ = 0;  ///< owning lane (0 = global, 1 + shard otherwise)
};

class Scheduler {
 public:
  /// Engine statistics. All values are pure functions of the scheduled
  /// workload — deterministic for a fixed seed, safe to put in reports.
  /// The aggregate's peak_pending is sampled at window boundaries (the
  /// points every thread count shares); per-lane stats keep exact peaks.
  struct Stats {
    std::uint64_t scheduled = 0;      ///< events enqueued (incl. timer re-arms)
    std::uint64_t executed = 0;       ///< events run
    std::uint64_t node_allocs = 0;    ///< pool misses (fresh event nodes)
    std::uint64_t pool_reuses = 0;    ///< pool hits (recycled event nodes)
    std::uint64_t overflow_events = 0;  ///< enqueues beyond the ring horizon
    std::uint64_t timers_created = 0;
    std::uint64_t timers_cancelled = 0;
    std::uint64_t timer_fires = 0;
    std::size_t peak_pending = 0;     ///< max live events queued at once
  };

  /// Total-order stamp of an event: (time, origin, seq), compared
  /// lexicographically. Origin 0 is the global lane; origin i+1 is
  /// node i. Thread-count independent by construction.
  struct Stamp {
    TimeUs time = 0;
    std::uint32_t origin = 0;
    std::uint64_t seq = 0;

    friend bool operator<(const Stamp& a, const Stamp& b) {
      if (a.time != b.time) return a.time < b.time;
      if (a.origin != b.origin) return a.origin < b.origin;
      return a.seq < b.seq;
    }
    friend bool operator==(const Stamp& a, const Stamp& b) {
      return a.time == b.time && a.origin == b.origin && a.seq == b.seq;
    }
  };

  /// `world_threads` shard lanes execute node events (clamped to
  /// `node_count_hint`; 1 when the hint is 0 — the single-lane engine).
  /// Worker threads are spawned lazily, only when a window actually runs
  /// with more than one shard, so world_threads == 1 never creates one.
  explicit Scheduler(unsigned world_threads = 1, std::size_t node_count_hint = 0);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Simulated clock. Thread-aware: inside an executing event it is that
  /// event's timestamp (on whichever lane is running it); between events
  /// it is the coordinator clock.
  TimeUs now() const;

  /// Stamp of the event currently executing on the calling thread (the
  /// coordinator's last stamp outside shard execution). Observers use it
  /// to record merge-stable orderings of concurrent shard work.
  Stamp current_stamp() const;

  /// Number of shard lanes (1 when the engine is single-lane).
  std::size_t shard_count() const { return shard_count_; }
  /// shard_count() + the global lane.
  std::size_t lane_count() const { return shard_count_ + 1; }
  /// Lane executing on the calling thread: 0 for the coordinator/global
  /// lane, 1 + shard for shard execution. Observers index per-lane
  /// buffers with it.
  std::size_t current_lane() const;
  std::size_t shard_of(NodeId node) const {
    if (shard_count_ == 1 || node_count_ == 0) return 0;
    const std::size_t s = (static_cast<std::size_t>(node) * shard_count_) / node_count_;
    return s < shard_count_ ? s : shard_count_ - 1;
  }
  /// True while the calling thread executes shard-lane work (worker
  /// thread, or the coordinator running a shard window inline).
  bool in_shard_context() const;

  /// Conservative lookahead: a lower bound on the delay of every
  /// cross-shard delivery. sim::Network recomputes it from its link
  /// parameters. 0 disables windowed execution — the engine falls back
  /// to serially merging the lanes (correct at every thread count, no
  /// parallelism). The value is a function of the world, never of the
  /// thread count, so the window schedule it induces is too.
  void set_lookahead(TimeUs min_cross_shard_delay) { lookahead_ = min_cross_shard_delay; }
  TimeUs lookahead() const { return lookahead_; }

  /// Schedules `fn` at absolute time `t` (>= now; throws otherwise) as a
  /// global event. Must not be called from shard context (throws): shard
  /// work hands global actions to run_deferred instead.
  void schedule_at(TimeUs t, std::function<void()> fn);

  /// Schedules `fn` `delay` microseconds from now.
  void schedule_after(TimeUs delay, std::function<void()> fn);

  /// Schedules a typed frame delivery `delay` microseconds from now on
  /// the destination's shard lane. From shard context, a delivery to
  /// another shard must satisfy delay >= lookahead() (the conservative
  /// window bound); sim::Network's latency floor guarantees it.
  void schedule_delivery_after(TimeUs delay, DeliveryEvent ev);

  /// From shard context: defers `fn` to the next window barrier, where
  /// the coordinator runs all deferred work in stamp order of the
  /// deferring events with the shards quiesced — the same points and
  /// order at every thread count. From the coordinator: runs inline.
  /// The deferred body may schedule global events and touch world state.
  void run_deferred(std::function<void()> fn);

  /// Registers the delivery executor. One sink per scheduler: installing
  /// a second, different sink throws (clear the first one before).
  void set_delivery_sink(DeliverySink* sink);
  /// Clears the sink if it is `sink` (used by the network's destructor).
  void clear_delivery_sink(DeliverySink* sink);

  /// Installs a global periodic timer (coordinator lane): first fire at
  /// now + first_delay, then every `interval` (> 0) microseconds after
  /// the previous fire. The callback is stored once; each fire costs one
  /// pooled event node and zero allocations.
  TimerHandle schedule_periodic(TimeUs first_delay, TimeUs interval,
                                std::function<void()> fn);

  /// Installs a periodic timer owned by `owner`'s shard lane: fires
  /// execute on the shard (in parallel with other shards), so the
  /// callback must only touch state of the owning node. Gossip
  /// heartbeats and per-node GC use this; anything world-global stays on
  /// schedule_periodic.
  TimerHandle schedule_periodic_for(NodeId owner, TimeUs first_delay,
                                    TimeUs interval, std::function<void()> fn);

  /// Cancels a periodic timer. Safe from inside the timer's own callback
  /// (stops the re-arm) and with stale handles (returns false). From
  /// shard context only the shard's own timers may be cancelled. Returns
  /// true when an active timer was cancelled.
  bool cancel(const TimerHandle& handle);

  /// True while the timer is installed (armed or currently firing).
  bool timer_active(const TimerHandle& handle) const;

  /// Runs the earliest pending event, if any. Returns false when idle.
  /// Serial stepping facility (tests/debug): executes inline on the
  /// calling thread regardless of the thread count.
  bool run_next();

  /// Runs every event with timestamp <= t, then advances the clock to t.
  /// With lookahead > 0 this is the windowed loop (parallel when
  /// shard_count > 1); otherwise the lanes are merged serially.
  void run_until(TimeUs t);

  /// Convenience: run_until(now + duration).
  void run_for(TimeUs duration);

  /// Drains the queue completely (use only for terminating workloads).
  void run_all();

  /// Live events queued (cancelled timer occurrences are excluded).
  std::size_t pending() const;

  /// Aggregate statistics over all lanes. Sums are shard-count invariant
  /// for every field except node_allocs and pool_reuses (pooling is
  /// per-lane, so the split between fresh allocations and reuses depends
  /// on the partition — keep those two out of deterministic reports and
  /// read the exact values from lane_stats for the resources block).
  /// peak_pending is the window-boundary peak, identical at every thread
  /// count.
  Stats stats() const;

  /// Exact per-lane statistics (lane 0 = global). Shard event counts and
  /// allocator detail for the resources block come from here.
  const Stats& lane_stats(std::size_t lane) const;

  /// Deterministic memory model of the event engine: the calendar rings,
  /// a node pool sized for the reported peak_pending, the live/overflow
  /// pointer parking, the timer tables and the per-origin sequence
  /// counters. The model is a function of the workload only — identical
  /// at every thread count — so it can feed the deterministic memory
  /// accounting; the extra resident bytes parallel execution actually
  /// costs (per-shard rings and pools, mailboxes, worker slots) are
  /// reported separately by parallel_scratch_bytes().
  std::size_t memory_bytes() const;

  /// Actual resident bytes beyond the deterministic model: the per-shard
  /// lane structures, cross-shard mailboxes and worker bookkeeping.
  /// Shard-count dependent by nature — resources-block material.
  std::size_t parallel_scratch_bytes() const;

 private:
  // Calendar-queue geometry: one slot covers 2^kSlotShift us (~1 ms), the
  // ring spans kNumBuckets slots (~8.4 s). Near-future events — link
  // deliveries, heartbeats — land in the ring; anything beyond the
  // horizon waits in the overflow heap and migrates as the cursor moves.
  static constexpr TimeUs kSlotShift = 10;
  static constexpr std::size_t kNumBuckets = 8192;  // power of two
  static constexpr std::size_t kBucketMask = kNumBuckets - 1;
  static constexpr std::size_t kBlockSize = 256;  // event nodes per pool block

  /// A periodic timer occurrence: a generation-checked reference into the
  /// owning lane's timer table (the callback itself lives there).
  struct TimerRef {
    std::uint32_t index = 0;
    std::uint32_t generation = 0;
  };

  /// One payload variant per event class — the node pays for the largest
  /// alternative only, not the sum (the pool is permanently resident, so
  /// node size is pool size at scale). monostate = free-listed.
  using Payload =
      std::variant<std::monostate, std::function<void()>, DeliveryEvent, TimerRef>;

  struct EventNode {
    TimeUs time = 0;
    std::uint32_t origin = 0;
    std::uint64_t seq = 0;
    Payload payload;
    EventNode* next_free = nullptr;
  };

  struct TimerSlot {
    std::function<void()> fn;
    TimeUs interval = 0;
    std::uint32_t generation = 0;
    std::uint32_t next_free = TimerHandle::kInvalidIndex;
    std::uint32_t owner_origin = 0;  ///< stamping origin of the fires
    bool active = false;
    bool firing = false;  ///< callback on the stack right now
  };

  /// Heap order: top is the (time, origin, seq) minimum.
  struct LaterPtr {
    bool operator()(const EventNode* a, const EventNode* b) const {
      if (a->time != b->time) return a->time > b->time;
      if (a->origin != b->origin) return a->origin > b->origin;
      return a->seq > b->seq;
    }
  };

  /// A deferred global action, ordered by the stamp of the deferring
  /// event (plus a per-event sub-counter for multiple defers).
  struct DeferredAction {
    Stamp key;
    std::uint32_t sub = 0;
    std::function<void()> fn;
  };

  /// One full event-engine instance: calendar ring + overflow heap +
  /// node pool + timer table. Lane 0 is the global lane; lanes 1..S are
  /// the shard lanes. Each lane is single-writer: its worker during a
  /// window, the coordinator otherwise (barriers order the handoff).
  struct Lane {
    std::vector<std::vector<EventNode*>> buckets;
    std::size_t wheel_count = 0;
    std::uint64_t cursor_slot = 0;  ///< absolute slot index (time >> kSlotShift)
    std::vector<EventNode*> overflow;

    std::vector<std::unique_ptr<EventNode[]>> blocks;
    std::size_t block_used = kBlockSize;
    EventNode* free_list = nullptr;

    std::deque<TimerSlot> timers;
    std::uint32_t timer_free = TimerHandle::kInvalidIndex;

    std::size_t live = 0;  ///< queued events excluding cancelled timers
    TimeUs exec_now = 0;   ///< timestamp of the lane's last executed event
    Stats stats;

    std::vector<DeferredAction> deferred;

    Lane() : buckets(kNumBuckets) {}

    EventNode* acquire();
    void release(EventNode* node);
    void enqueue(EventNode* node);
    void migrate_overflow();
    EventNode* pop_earliest(TimeUs limit);
    /// Earliest pending node with time <= limit (nullptr otherwise).
    /// Walks a *local* cursor over empty slots — the committed cursor
    /// only moves in pop_earliest, so a barrier-time insert can never
    /// land behind it.
    EventNode* peek_earliest(TimeUs limit) const;
    bool is_tombstone(const EventNode* node) const;
    void free_timer_slot(std::uint32_t index);
    void reanchor(TimeUs at);
    std::size_t resident_bytes() const;
  };

  /// Per-thread execution context (thread_local pointer while a lane
  /// executes). `origin` stamps every event the running handler
  /// schedules; `on_worker` routes cross-shard deliveries through the
  /// mailboxes instead of direct enqueues.
  struct ExecCtx {
    Scheduler* sched = nullptr;
    Lane* lane = nullptr;
    std::size_t lane_index = 0;
    bool on_worker = false;
    TimeUs now = 0;
    Stamp key;
    std::uint32_t origin = 0;
    std::uint32_t defer_sub = 0;
  };

  /// A cross-shard delivery parked until the window barrier, already
  /// stamped by its sender.
  struct Mail {
    Stamp key;
    DeliveryEvent ev;
  };

  struct WorkerSlot {
    std::exception_ptr error;
    std::uint64_t payload_allocs = 0;  ///< unfolded SharedBytes count delta
    std::uint64_t payload_bytes = 0;   ///< unfolded SharedBytes byte delta
    std::uint64_t allocs_last = 0;     ///< worker counter at the last barrier
    std::uint64_t bytes_last = 0;
  };

  ExecCtx* own_ctx() const;

  std::uint64_t next_seq(std::uint32_t origin);
  TimerHandle install_timer(std::size_t lane_index, std::uint32_t owner_origin,
                            TimeUs first_delay, TimeUs interval,
                            std::function<void()> fn);
  bool deferred_pending() const;
  void execute_event(Lane& lane, std::size_t lane_index, EventNode* node,
                     ExecCtx& ctx);
  void run_lane_window(std::size_t shard, TimeUs end_exclusive, bool on_worker);
  void run_one_global(TimeUs limit);
  void flush_deferred();
  void drain_mailboxes();
  void run_until_windowed(TimeUs t);
  void run_until_merged(TimeUs t);
  void sample_peak();
  void ensure_workers();
  void stop_workers();
  void worker_main(std::size_t shard);
  void dispatch_window(TimeUs end_exclusive);

  /// RAII install/restore of the thread-local execution context
  /// (exception-safe: a throwing callback must not leave it dangling).
  class CtxGuard;

  static thread_local ExecCtx* t_ctx_;

  std::size_t shard_count_ = 1;
  std::size_t node_count_ = 0;
  unsigned world_threads_ = 1;
  TimeUs lookahead_ = 0;

  TimeUs now_ = 0;               ///< coordinator clock
  Stamp cur_key_;                ///< stamp of the coordinator's current event
  std::uint32_t cur_origin_ = 0; ///< coordinator stamping origin (flush restores)
  std::size_t barrier_peak_ = 0; ///< peak_pending sampled at window boundaries

  std::vector<std::uint64_t> origin_seq_;  ///< per-origin submission counters
  std::vector<std::unique_ptr<Lane>> lanes_;  ///< [0] global, [1..S] shards
  std::vector<std::vector<Mail>> mail_;    ///< [src_shard * S + dst_shard]
  std::vector<DeferredAction> flush_scratch_;

  // Worker pool (spawned lazily; only ever exists when shard_count_ > 1).
  std::vector<std::thread> workers_;
  std::vector<WorkerSlot> worker_slots_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t window_epoch_ = 0;
  TimeUs window_end_ = 0;
  std::size_t workers_running_ = 0;
  bool stop_ = false;

  DeliverySink* sink_ = nullptr;
};

}  // namespace wakurln::sim
