#pragma once
// Deterministic discrete-event engine: the clock of the whole simulated
// world (network, gossip heartbeats, epochs, block mining).
//
// The engine is typed and pooled. The three dominant event classes each
// have a first-class representation instead of a heap-allocated
// type-erased closure:
//
//   * frame deliveries   — plain data (DeliveryEvent) executed through a
//                          DeliverySink, so the network hot path performs
//                          no std::function allocation per send;
//   * periodic timers    — the callback is stored once in a timer table
//                          and re-armed by the engine after every fire
//                          (no lambda re-capture per tick), with a
//                          generation-checked cancellation handle;
//   * one-shot callbacks — the std::function fallback for everything else.
//
// Event nodes come from a free-list pool backed by chunked blocks: once
// the pool has grown to the world's peak concurrency, steady-state
// simulation schedules events with zero allocations.
//
// Near-future events (link deliveries, heartbeats) live in a calendar
// queue — a ring of per-slot buckets, each a small binary heap — and
// far-future events (epoch GC, block mining) wait in a fallback heap that
// migrates into the ring as the cursor advances. Both structures order
// events by (time, submission sequence), so the execution order is
// exactly the one the classic single-heap scheduler produced.
//
// Determinism contract (relied on by every seeded experiment):
//   * Events with equal timestamps run in schedule order (global
//     submission sequence, FIFO).
//   * An event running at time T may schedule more work at T (t < now
//     throws); the new event runs after every event already queued at T —
//     including within the same run_until/run_next drain, which re-checks
//     the queue after every execution.
//   * A periodic timer first fires at now + first_delay, then re-arms at
//     fire_time + interval *after* its callback returns: the next
//     occurrence is sequenced after everything the callback scheduled,
//     matching the classic "reschedule at the end of the tick" idiom.
//   * cancel() from inside the timer's own callback stops the re-arm.

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <variant>
#include <vector>

#include "sim/frame.h"

namespace wakurln::sim {

/// Simulation time in microseconds.
using TimeUs = std::uint64_t;

inline constexpr TimeUs kUsPerMs = 1'000;
inline constexpr TimeUs kUsPerSecond = 1'000'000;

/// A frame in flight: plain data, no closure. `generation` snapshots the
/// destination's drop_in_flight counter at send time so departures
/// invalidate frames already on the wire.
struct DeliveryEvent {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t generation = 0;
  std::size_t bytes = 0;
  Frame frame;
};

/// Executes delivery events; implemented by sim::Network. One sink per
/// scheduler — the simulated world has one network fabric.
class DeliverySink {
 public:
  virtual void on_delivery(const DeliveryEvent& ev) = 0;

 protected:
  ~DeliverySink() = default;
};

/// Cancellation handle for a periodic timer. Copyable; stale handles
/// (already-cancelled timers, recycled slots) are detected by generation
/// and make cancel() a no-op returning false.
class TimerHandle {
 public:
  TimerHandle() = default;
  /// True when the handle was issued by schedule_periodic (it may still
  /// refer to a timer that was cancelled since; see Scheduler::timer_active).
  bool issued() const { return index_ != kInvalidIndex; }

 private:
  friend class Scheduler;
  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;
  std::uint32_t index_ = kInvalidIndex;
  std::uint32_t generation_ = 0;
};

class Scheduler {
 public:
  /// Engine statistics. All values are pure functions of the scheduled
  /// workload — deterministic for a fixed seed, safe to put in reports.
  struct Stats {
    std::uint64_t scheduled = 0;      ///< events enqueued (incl. timer re-arms)
    std::uint64_t executed = 0;       ///< events run
    std::uint64_t node_allocs = 0;    ///< pool misses (fresh event nodes)
    std::uint64_t pool_reuses = 0;    ///< pool hits (recycled event nodes)
    std::uint64_t overflow_events = 0;  ///< enqueues beyond the ring horizon
    std::uint64_t timers_created = 0;
    std::uint64_t timers_cancelled = 0;
    std::uint64_t timer_fires = 0;
    std::size_t peak_pending = 0;     ///< max live events queued at once
  };

  Scheduler();
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  TimeUs now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now; throws otherwise).
  void schedule_at(TimeUs t, std::function<void()> fn);

  /// Schedules `fn` `delay` microseconds from now.
  void schedule_after(TimeUs delay, std::function<void()> fn);

  /// Schedules a typed frame delivery `delay` microseconds from now; the
  /// event is pooled plain data executed through the delivery sink.
  void schedule_delivery_after(TimeUs delay, DeliveryEvent ev);

  /// Registers the delivery executor. One sink per scheduler: installing
  /// a second, different sink throws (clear the first one before).
  void set_delivery_sink(DeliverySink* sink);
  /// Clears the sink if it is `sink` (used by the network's destructor).
  void clear_delivery_sink(DeliverySink* sink);

  /// Installs a periodic timer: first fire at now + first_delay, then
  /// every `interval` (> 0) microseconds after the previous fire. The
  /// callback is stored once; each fire costs one pooled event node and
  /// zero allocations.
  TimerHandle schedule_periodic(TimeUs first_delay, TimeUs interval,
                                std::function<void()> fn);

  /// Cancels a periodic timer. Safe from inside the timer's own callback
  /// (stops the re-arm) and with stale handles (returns false). Returns
  /// true when an active timer was cancelled.
  bool cancel(const TimerHandle& handle);

  /// True while the timer is installed (armed or currently firing).
  bool timer_active(const TimerHandle& handle) const;

  /// Runs the earliest pending event, if any. Returns false when idle.
  bool run_next();

  /// Runs every event with timestamp <= t, then advances the clock to t.
  void run_until(TimeUs t);

  /// Convenience: run_until(now + duration).
  void run_for(TimeUs duration);

  /// Drains the queue completely (use only for terminating workloads).
  void run_all();

  /// Live events queued (cancelled timer occurrences are excluded).
  std::size_t pending() const { return live_; }

  const Stats& stats() const { return stats_; }

  /// Resident bytes of the event engine: the pooled node blocks (the pool
  /// never shrinks — this is the high-water mark of event concurrency),
  /// the calendar ring, the overflow heap and the timer table. Exact for
  /// the engine's own structures (live content, not allocator slack in
  /// the per-slot vectors); deterministic for a fixed workload.
  std::size_t memory_bytes() const;

 private:
  // Calendar-queue geometry: one slot covers 2^kSlotShift us (~1 ms), the
  // ring spans kNumBuckets slots (~8.4 s). Near-future events — link
  // deliveries, heartbeats — land in the ring; anything beyond the
  // horizon waits in the overflow heap and migrates as the cursor moves.
  static constexpr TimeUs kSlotShift = 10;
  static constexpr std::size_t kNumBuckets = 8192;  // power of two
  static constexpr std::size_t kBucketMask = kNumBuckets - 1;
  static constexpr std::size_t kBlockSize = 256;  // event nodes per pool block

  /// A periodic timer occurrence: a generation-checked reference into the
  /// timer table (the callback itself lives there, stored once).
  struct TimerRef {
    std::uint32_t index = 0;
    std::uint32_t generation = 0;
  };

  /// One payload variant per event class — the node pays for the largest
  /// alternative only, not the sum (the pool is permanently resident, so
  /// node size is pool size at scale). monostate = free-listed.
  using Payload =
      std::variant<std::monostate, std::function<void()>, DeliveryEvent, TimerRef>;

  struct EventNode {
    TimeUs time = 0;
    std::uint64_t seq = 0;
    Payload payload;
    EventNode* next_free = nullptr;
  };

  struct TimerSlot {
    std::function<void()> fn;
    TimeUs interval = 0;
    std::uint32_t generation = 0;
    std::uint32_t next_free = TimerHandle::kInvalidIndex;
    bool active = false;
    bool firing = false;  ///< callback on the stack right now
  };

  /// Heap order: top is the (time, seq) minimum, exactly the classic
  /// scheduler's tie-break.
  struct LaterPtr {
    bool operator()(const EventNode* a, const EventNode* b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };

  EventNode* acquire();
  void release(EventNode* node);
  void enqueue(EventNode* node);
  void migrate_overflow();
  EventNode* pop_earliest(TimeUs limit);
  bool is_tombstone(const EventNode* node) const;
  void execute(EventNode* node);
  void free_timer_slot(std::uint32_t index);

  TimeUs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;  ///< queued events excluding cancelled timers

  // Calendar ring + far-future overflow heap.
  std::vector<std::vector<EventNode*>> buckets_;
  std::size_t wheel_count_ = 0;    ///< nodes currently in the ring
  std::uint64_t cursor_slot_ = 0;  ///< absolute slot index (time >> kSlotShift)
  std::vector<EventNode*> overflow_;

  // Node pool: chunked backing store + intrusive free list.
  std::vector<std::unique_ptr<EventNode[]>> blocks_;
  std::size_t block_used_ = kBlockSize;
  EventNode* free_list_ = nullptr;

  // Timer table (deque: slots must stay put while their callback runs).
  std::deque<TimerSlot> timers_;
  std::uint32_t timer_free_ = TimerHandle::kInvalidIndex;

  DeliverySink* sink_ = nullptr;
  Stats stats_;
};

}  // namespace wakurln::sim
