#pragma once
// Simulated peer-to-peer network: point-to-point links with configurable
// latency, jitter, bandwidth and loss. Message payloads travel as Frame
// handles — immutable, ref-counted views of a protocol frame — so a
// fan-out of one frame to N peers shares a single heap allocation instead
// of copying the payload per send. The network charges wire bytes for
// traffic accounting.
//
// Parallel-world contract (see sim/scheduler.h): frame sends and
// deliveries execute on the shard lane of the acting node, possibly on a
// worker thread, so every mutable hot-path structure is either owned by
// one node (per-node byte counters, per-sender RNG streams) or split per
// lane and folded deterministically on read (traffic stats, the frame
// size histogram). Topology mutations (connect/disconnect, link params,
// interning) are coordinator-only and run with the shards quiesced; a
// connect requested from shard context is deferred to the next window
// barrier via Scheduler::run_deferred.
//
// Loss and jitter draws come from a per-sender counter RNG stream seeded
// off the world seed, so a node's link randomness depends only on its own
// send history — never on how sends from different nodes interleave
// across shards. The network also derives the scheduler's conservative
// lookahead: a running lower bound of every link's base latency.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "obs/registry.h"
#include "sim/frame.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace wakurln::sim {

struct LinkParams {
  /// Fixed propagation delay.
  TimeUs base_latency = 50 * kUsPerMs;
  /// Uniform extra delay in [0, jitter).
  TimeUs jitter = 20 * kUsPerMs;
  /// Probability a packet is silently dropped.
  double loss_rate = 0.0;
  /// Serialisation rate; 0 disables the size-dependent term.
  double bandwidth_bytes_per_sec = 12.5e6;  // ~100 Mbit/s
};

/// Handlers a node registers when joining the network.
struct NodeCallbacks {
  std::function<void(NodeId from, const Frame& frame, std::size_t bytes)> on_frame;
  std::function<void(NodeId peer)> on_peer_connected;
  std::function<void(NodeId peer)> on_peer_disconnected;
};

/// Passive wiretap invoked on every delivered frame (after loss and
/// link-liveness checks, before the receiver callback). Scenario observers
/// use it to model an eavesdropping adversary without touching protocol
/// state. Runs on the receiving node's lane — a tap installed in a
/// multi-threaded world must keep per-lane state (see scenario/runner).
using FrameTap =
    std::function<void(NodeId from, NodeId to, const Frame& frame, std::size_t bytes)>;

class Network : public DeliverySink {
 public:
  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t frames_lost = 0;
    std::uint64_t bytes_sent = 0;
  };

  /// Registers itself as the scheduler's delivery sink (one network per
  /// scheduler); the destructor deregisters. Derives the scheduler's
  /// initial lookahead from the default link's base latency.
  Network(Scheduler& scheduler, util::Rng& rng, LinkParams default_link = {});
  ~Network();

  /// Adds a node; callbacks may be filled in later via set_callbacks.
  NodeId add_node(NodeCallbacks callbacks);
  void set_callbacks(NodeId node, NodeCallbacks callbacks);

  std::size_t node_count() const { return nodes_.size(); }

  /// Creates a bidirectional link (no-op if present). Both endpoints get
  /// on_peer_connected. From shard context (e.g. a router acting on a
  /// peer-exchange PRUNE) the connect is deferred to the next window
  /// barrier — at every thread count — so topology never mutates while
  /// shards run.
  void connect(NodeId a, NodeId b);
  void disconnect(NodeId a, NodeId b);
  bool are_connected(NodeId a, NodeId b) const;
  /// Sorted list of a node's neighbours.
  std::vector<NodeId> neighbors(NodeId node) const;

  /// Freezes every node's current neighbour list into one shared arena,
  /// deduplicating identical lists (nodes wired symmetrically share one
  /// slice). Topology builders call this once after wiring; a later
  /// connect/disconnect thaws the touched nodes back to private lists
  /// (copy-on-write), so churn rewiring keeps working. Idempotent; the
  /// arena is rebuilt from the current link sets on every call.
  void intern_links();

  /// Modeled resident bytes of the link structures: node headers, the
  /// interned arena and any thawed private lists, plus the per-link
  /// parameter overrides and the regional matrix. Exact for the
  /// containers it models; per-lane accounting scratch (a few hundred
  /// bytes per shard, parallel-execution overhead) is deliberately
  /// excluded so the model is identical at every thread count.
  std::size_t memory_bytes() const;

  /// Per-link parameter override (applies to both directions). Checked
  /// before the regional matrix, so targeted overrides (eclipse links)
  /// win over the node's region.
  void set_link_params(NodeId a, NodeId b, LinkParams params);

  /// Region-based link parameters: node_regions[i] is node i's region id
  /// (< region_count) and matrix is region_count x region_count
  /// LinkParams, row-major by (from, to). Replaces per-link overrides as
  /// the bulk mechanism for geographic latency — an O(1) matrix lookup
  /// per send instead of a hash probe — and, unlike per-link overrides
  /// stamped at build time, also covers links created later by churn
  /// rejoin or peer exchange.
  void set_regional_params(std::vector<std::uint8_t> node_regions,
                           std::vector<LinkParams> matrix,
                           std::size_t region_count);

  /// Effective parameters of a link: the override, else the regional
  /// matrix entry, else the default.
  const LinkParams& link_params(NodeId a, NodeId b) const { return params_for(a, b); }

  /// Sends a frame over an existing link; throws if not connected. The
  /// frame handle is shared, not copied — callers fanning one frame out
  /// to many peers pass the same handle each time. Loss and jitter draw
  /// from the sender's private RNG stream; safe from the sender's shard
  /// lane.
  void send(NodeId from, NodeId to, Frame frame, std::size_t bytes);

  /// Invalidates every frame currently in flight towards `node` (they are
  /// counted as lost on arrival). Call on node departure: merely
  /// disconnecting links is not enough, because a frame sent before the
  /// departure would still deliver if the node re-links before the frame's
  /// arrival time (stale delivery into the re-joined instance).
  void drop_in_flight(NodeId node);

  /// Installs (or clears, with nullptr) the global delivery wiretap.
  void set_frame_tap(FrameTap tap) { frame_tap_ = std::move(tap); }

  /// Registers the network's instruments on `reg` (no-op when the
  /// registry is disabled): the wire-frame size histogram, sampled from
  /// the per-lane counts folded deterministically. Fixed registration
  /// order — part of the deterministic time-series column contract.
  void instrument(obs::Registry& reg);

  /// Aggregate traffic statistics, folded over the per-lane slots. The
  /// sums are identical at every thread count (each frame is counted on
  /// exactly one lane).
  Stats stats() const;
  std::uint64_t bytes_sent_by(NodeId node) const;
  std::uint64_t bytes_received_by(NodeId node) const;

  /// Folded per-bucket counts of the wire-frame size histogram (edges in
  /// kFrameBytesEdges, plus the overflow bucket).
  std::vector<std::uint64_t> frame_bytes_counts() const;

  /// Wire-frame histogram bucket upper edges (bytes).
  static constexpr std::uint64_t kFrameBytesEdges[] = {64,   256,   1024,
                                                       4096, 16384, 65536};
  static constexpr std::size_t kFrameBytesBuckets =
      sizeof(kFrameBytesEdges) / sizeof(kFrameBytesEdges[0]) + 1;

  Scheduler& scheduler() { return scheduler_; }
  util::Rng& rng() { return rng_; }

 private:
  struct NodeState {
    NodeCallbacks callbacks;
    /// Private sorted neighbour list — authoritative while !frozen.
    std::vector<NodeId> links;
    /// Slice [base_off, base_off + base_len) of link_arena_ —
    /// authoritative while frozen (set by intern_links()).
    std::uint32_t base_off = 0;
    std::uint32_t base_len = 0;
    bool frozen = false;
    /// Region id for the regional parameter matrix (0 when unset).
    std::uint8_t region = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    /// Bumped by drop_in_flight; frames remember the value at send time
    /// and only deliver if it is unchanged on arrival.
    std::uint64_t generation = 0;
    /// Private loss/jitter stream: a function of the world seed and this
    /// node's id + send history only, so draws are identical no matter
    /// how sends interleave across shard lanes.
    std::uint64_t rng_state = 0;
  };

  /// One lane's slice of the traffic accounting: written only by the
  /// lane's executing thread, folded by the coordinator on read.
  struct LaneTraffic {
    Stats stats;
    std::uint64_t frame_bytes[kFrameBytesBuckets] = {};
  };

  /// Executes a pooled delivery event (typed hot path — no closure per
  /// send): loss/liveness checks, traffic accounting, tap, callback.
  /// Runs on the receiving node's shard lane.
  void on_delivery(const DeliveryEvent& ev) override;

  static std::uint64_t link_key(NodeId a, NodeId b);
  const LinkParams& params_for(NodeId a, NodeId b) const;
  /// The node's current sorted neighbour list (arena slice or private).
  std::span<const NodeId> links_of(NodeId node) const;
  /// Copies a frozen node's arena slice back into its private list so it
  /// can be mutated.
  void thaw(NodeState& state);
  void connect_now(NodeId a, NodeId b);
  /// Lowers the scheduler's lookahead floor to `base` if smaller. The
  /// floor only ever decreases (an override that raises a link's latency
  /// cannot relax the bound retroactively), keeping it a conservative
  /// lower bound on every delivery delay at every thread count.
  void lower_lookahead(TimeUs base);
  LaneTraffic& lane_traffic() { return lane_traffic_[scheduler_.current_lane()]; }

  Scheduler& scheduler_;
  util::Rng& rng_;
  LinkParams default_link_;
  /// Seed base of the per-sender streams (one world-RNG draw at ctor).
  std::uint64_t stream_base_ = 0;
  TimeUs lookahead_floor_ = 0;
  std::vector<NodeState> nodes_;
  /// Interned neighbour lists, deduplicated by content (intern_links()).
  std::vector<NodeId> link_arena_;
  std::unordered_map<std::uint64_t, LinkParams> link_overrides_;
  /// Regional parameter matrix (region_count_^2, row-major); empty until
  /// set_regional_params.
  std::vector<LinkParams> region_matrix_;
  std::size_t region_count_ = 0;
  FrameTap frame_tap_;
  std::vector<LaneTraffic> lane_traffic_;
};

}  // namespace wakurln::sim
