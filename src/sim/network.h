#pragma once
// Simulated peer-to-peer network: point-to-point links with configurable
// latency, jitter, bandwidth and loss. Message payloads travel as Frame
// handles — immutable, ref-counted views of a protocol frame — so a
// fan-out of one frame to N peers shares a single heap allocation instead
// of copying the payload per send. The network charges wire bytes for
// traffic accounting.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "obs/registry.h"
#include "sim/frame.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace wakurln::sim {

struct LinkParams {
  /// Fixed propagation delay.
  TimeUs base_latency = 50 * kUsPerMs;
  /// Uniform extra delay in [0, jitter).
  TimeUs jitter = 20 * kUsPerMs;
  /// Probability a packet is silently dropped.
  double loss_rate = 0.0;
  /// Serialisation rate; 0 disables the size-dependent term.
  double bandwidth_bytes_per_sec = 12.5e6;  // ~100 Mbit/s
};

/// Handlers a node registers when joining the network.
struct NodeCallbacks {
  std::function<void(NodeId from, const Frame& frame, std::size_t bytes)> on_frame;
  std::function<void(NodeId peer)> on_peer_connected;
  std::function<void(NodeId peer)> on_peer_disconnected;
};

/// Passive wiretap invoked on every delivered frame (after loss and
/// link-liveness checks, before the receiver callback). Scenario observers
/// use it to model an eavesdropping adversary without touching protocol
/// state.
using FrameTap =
    std::function<void(NodeId from, NodeId to, const Frame& frame, std::size_t bytes)>;

class Network : public DeliverySink {
 public:
  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t frames_lost = 0;
    std::uint64_t bytes_sent = 0;
  };

  /// Registers itself as the scheduler's delivery sink (one network per
  /// scheduler); the destructor deregisters.
  Network(Scheduler& scheduler, util::Rng& rng, LinkParams default_link = {});
  ~Network();

  /// Adds a node; callbacks may be filled in later via set_callbacks.
  NodeId add_node(NodeCallbacks callbacks);
  void set_callbacks(NodeId node, NodeCallbacks callbacks);

  std::size_t node_count() const { return nodes_.size(); }

  /// Creates a bidirectional link (no-op if present). Both endpoints get
  /// on_peer_connected.
  void connect(NodeId a, NodeId b);
  void disconnect(NodeId a, NodeId b);
  bool are_connected(NodeId a, NodeId b) const;
  /// Sorted list of a node's neighbours.
  std::vector<NodeId> neighbors(NodeId node) const;

  /// Freezes every node's current neighbour list into one shared arena,
  /// deduplicating identical lists (nodes wired symmetrically share one
  /// slice). Topology builders call this once after wiring; a later
  /// connect/disconnect thaws the touched nodes back to private lists
  /// (copy-on-write), so churn rewiring keeps working. Idempotent; the
  /// arena is rebuilt from the current link sets on every call.
  void intern_links();

  /// Modeled resident bytes of the link structures: node headers, the
  /// interned arena and any thawed private lists, plus the per-link
  /// parameter overrides. Exact for the containers it models.
  std::size_t memory_bytes() const;

  /// Per-link parameter override (applies to both directions).
  void set_link_params(NodeId a, NodeId b, LinkParams params);
  /// Effective parameters of a link (the override, or the default).
  const LinkParams& link_params(NodeId a, NodeId b) const { return params_for(a, b); }

  /// Sends a frame over an existing link; throws if not connected. The
  /// frame handle is shared, not copied — callers fanning one frame out
  /// to many peers pass the same handle each time.
  void send(NodeId from, NodeId to, Frame frame, std::size_t bytes);

  /// Invalidates every frame currently in flight towards `node` (they are
  /// counted as lost on arrival). Call on node departure: merely
  /// disconnecting links is not enough, because a frame sent before the
  /// departure would still deliver if the node re-links before the frame's
  /// arrival time (stale delivery into the re-joined instance).
  void drop_in_flight(NodeId node);

  /// Installs (or clears, with nullptr) the global delivery wiretap.
  void set_frame_tap(FrameTap tap) { frame_tap_ = std::move(tap); }

  /// Registers the network's push instruments on `reg` (no-op handles
  /// when the registry is disabled): a wire-frame size histogram observed
  /// on every send. Fixed registration order — part of the deterministic
  /// time-series column contract.
  void instrument(obs::Registry& reg);

  const Stats& stats() const { return stats_; }
  std::uint64_t bytes_sent_by(NodeId node) const;
  std::uint64_t bytes_received_by(NodeId node) const;

  Scheduler& scheduler() { return scheduler_; }
  util::Rng& rng() { return rng_; }

 private:
  struct NodeState {
    NodeCallbacks callbacks;
    /// Private sorted neighbour list — authoritative while !frozen.
    std::vector<NodeId> links;
    /// Slice [base_off, base_off + base_len) of link_arena_ —
    /// authoritative while frozen (set by intern_links()).
    std::uint32_t base_off = 0;
    std::uint32_t base_len = 0;
    bool frozen = false;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    /// Bumped by drop_in_flight; frames remember the value at send time
    /// and only deliver if it is unchanged on arrival.
    std::uint64_t generation = 0;
  };

  /// Executes a pooled delivery event (typed hot path — no closure per
  /// send): loss/liveness checks, traffic accounting, tap, callback.
  void on_delivery(const DeliveryEvent& ev) override;

  static std::uint64_t link_key(NodeId a, NodeId b);
  const LinkParams& params_for(NodeId a, NodeId b) const;
  /// The node's current sorted neighbour list (arena slice or private).
  std::span<const NodeId> links_of(NodeId node) const;
  /// Copies a frozen node's arena slice back into its private list so it
  /// can be mutated.
  void thaw(NodeState& state);

  Scheduler& scheduler_;
  util::Rng& rng_;
  LinkParams default_link_;
  std::vector<NodeState> nodes_;
  /// Interned neighbour lists, deduplicated by content (intern_links()).
  std::vector<NodeId> link_arena_;
  std::unordered_map<std::uint64_t, LinkParams> link_overrides_;
  FrameTap frame_tap_;
  obs::Histogram frame_bytes_hist_;
  Stats stats_;
};

}  // namespace wakurln::sim
