#include "sim/topology.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace wakurln::sim {

void connect_ring_plus_random(Network& network, std::span<const NodeId> nodes,
                              std::size_t extra_per_node, util::Rng& rng) {
  const std::size_t n = nodes.size();
  if (n < 2) return;
  for (std::size_t i = 0; i < n; ++i) {
    network.connect(nodes[i], nodes[(i + 1) % n]);
  }
  if (n < 3) return;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < extra_per_node; ++k) {
      const NodeId peer = nodes[rng.uniform(0, n - 1)];
      if (peer != nodes[i]) network.connect(nodes[i], peer);
    }
  }
}

void connect_erdos_renyi(Network& network, std::span<const NodeId> nodes, double p,
                         util::Rng& rng) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (rng.chance(p)) network.connect(nodes[i], nodes[j]);
    }
  }
}

void connect_to_random_peers(Network& network, NodeId newcomer,
                             std::span<const NodeId> targets, std::size_t degree,
                             util::Rng& rng) {
  std::vector<NodeId> pool(targets.begin(), targets.end());
  pool.erase(std::remove(pool.begin(), pool.end(), newcomer), pool.end());
  // Partial Fisher-Yates for `degree` distinct picks.
  const std::size_t picks = std::min(degree, pool.size());
  for (std::size_t i = 0; i < picks; ++i) {
    const std::size_t j = i + rng.uniform(0, pool.size() - 1 - i);
    std::swap(pool[i], pool[j]);
    network.connect(newcomer, pool[i]);
  }
}

const char* topology_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kRingPlusRandom: return "ring_plus_random";
    case TopologyKind::kErdosRenyi: return "erdos_renyi";
  }
  return "unknown";
}

TopologyKind topology_from_name(std::string_view name) {
  if (name == "ring_plus_random") return TopologyKind::kRingPlusRandom;
  if (name == "erdos_renyi") return TopologyKind::kErdosRenyi;
  throw std::invalid_argument("unknown topology: " + std::string(name));
}

void build_topology(Network& network, std::span<const NodeId> nodes,
                    TopologyKind kind, std::size_t extra_per_node,
                    double edge_probability, util::Rng& rng) {
  switch (kind) {
    case TopologyKind::kRingPlusRandom:
      connect_ring_plus_random(network, nodes, extra_per_node, rng);
      break;
    case TopologyKind::kErdosRenyi:
      connect_erdos_renyi(network, nodes, edge_probability, rng);
      break;
  }
}

}  // namespace wakurln::sim
