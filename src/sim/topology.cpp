#include "sim/topology.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/check.h"

namespace wakurln::sim {

void connect_ring_plus_random(Network& network, std::span<const NodeId> nodes,
                              std::size_t extra_per_node, util::Rng& rng) {
  const std::size_t n = nodes.size();
  if (n < 2) return;
  for (std::size_t i = 0; i < n; ++i) {
    network.connect(nodes[i], nodes[(i + 1) % n]);
  }
  if (n < 3) return;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < extra_per_node; ++k) {
      const NodeId peer = nodes[rng.uniform(0, n - 1)];
      if (peer != nodes[i]) network.connect(nodes[i], peer);
    }
  }
}

void connect_erdos_renyi(Network& network, std::span<const NodeId> nodes, double p,
                         util::Rng& rng) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (rng.chance(p)) network.connect(nodes[i], nodes[j]);
    }
  }
}

void connect_to_random_peers(Network& network, NodeId newcomer,
                             std::span<const NodeId> targets, std::size_t degree,
                             util::Rng& rng) {
  std::vector<NodeId> pool(targets.begin(), targets.end());
  pool.erase(std::remove(pool.begin(), pool.end(), newcomer), pool.end());
  // Partial Fisher-Yates for `degree` distinct picks.
  const std::size_t picks = std::min(degree, pool.size());
  for (std::size_t i = 0; i < picks; ++i) {
    const std::size_t j = i + rng.uniform(0, pool.size() - 1 - i);
    std::swap(pool[i], pool[j]);
    network.connect(newcomer, pool[i]);
  }
}

const char* topology_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kRingPlusRandom: return "ring_plus_random";
    case TopologyKind::kErdosRenyi: return "erdos_renyi";
  }
  // These names land verbatim in SCENARIO_*.json spec blocks: an invalid
  // enum must abort here, not serialize as a plausible "unknown".
  WAKURLN_UNREACHABLE("invalid TopologyKind value");
}

TopologyKind topology_from_name(std::string_view name) {
  if (name == "ring_plus_random") return TopologyKind::kRingPlusRandom;
  if (name == "erdos_renyi") return TopologyKind::kErdosRenyi;
  throw std::invalid_argument("unknown topology: " + std::string(name));
}

void build_topology(Network& network, std::span<const NodeId> nodes,
                    TopologyKind kind, std::size_t extra_per_node,
                    double edge_probability, util::Rng& rng) {
  switch (kind) {
    case TopologyKind::kRingPlusRandom:
      connect_ring_plus_random(network, nodes, extra_per_node, rng);
      break;
    case TopologyKind::kErdosRenyi:
      connect_erdos_renyi(network, nodes, edge_probability, rng);
      break;
  }
  network.intern_links();
}

void build_topology(Network& network, std::span<const NodeId> nodes,
                    TopologyKind kind, std::size_t extra_per_node,
                    double edge_probability, util::Rng& rng,
                    const DegreeBias& bias) {
  build_topology(network, nodes, kind, extra_per_node, edge_probability, rng);
  if (bias.empty()) return;
  for (const NodeId boosted : bias.nodes) {
    connect_to_random_peers(network, boosted, nodes, bias.extra_links, rng);
  }
  // The bias pass thawed the boosted nodes and their new peers; re-intern
  // so the built topology always ends frozen.
  network.intern_links();
}

const char* link_profile_name(LinkProfile profile) {
  switch (profile) {
    case LinkProfile::kUniform: return "uniform";
    case LinkProfile::kGeo: return "geo";
  }
  WAKURLN_UNREACHABLE("invalid LinkProfile value");
}

LinkProfile link_profile_from_name(std::string_view name) {
  if (name == "uniform") return LinkProfile::kUniform;
  if (name == "geo") return LinkProfile::kGeo;
  throw std::invalid_argument("unknown link profile: " + std::string(name));
}

std::size_t geo_region_of(std::size_t index, std::size_t node_count) {
  if (node_count == 0) return 0;
  const std::size_t region = index * kGeoRegions / node_count;
  return region < kGeoRegions ? region : kGeoRegions - 1;
}

LinkParams geo_link_params(std::size_t region_a, std::size_t region_b,
                           const LinkParams& base) {
  // One-way latencies in ms between [NA-East, NA-West, EU, Asia, Oceania],
  // shaped after public cloud inter-region RTT tables (half-RTT).
  static constexpr TimeUs kOneWayMs[kGeoRegions][kGeoRegions] = {
      {5, 30, 40, 100, 110},
      {30, 5, 70, 70, 80},
      {40, 70, 5, 90, 140},
      {100, 70, 90, 5, 60},
      {110, 80, 140, 60, 5},
  };
  const std::size_t a = std::min(region_a, kGeoRegions - 1);
  const std::size_t b = std::min(region_b, kGeoRegions - 1);
  LinkParams params = base;
  params.base_latency = kOneWayMs[a][b] * kUsPerMs;
  params.jitter = params.base_latency / 5;
  return params;
}

void apply_geo_latency(Network& network, std::span<const NodeId> nodes,
                       const LinkParams& base) {
  // Regional mode: one region byte per node plus the 5x5 parameter matrix,
  // instead of stamping a per-link override on every edge. O(nodes)
  // instead of O(links) to apply, O(1) matrix lookup per send instead of a
  // hash probe — and links created later (peer exchange, churn rewiring)
  // derive their parameters from the same region pair rather than falling
  // back to the default link.
  std::vector<std::uint8_t> regions(network.node_count(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    regions.at(nodes[i]) =
        static_cast<std::uint8_t>(geo_region_of(i, nodes.size()));
  }
  std::vector<LinkParams> matrix(kGeoRegions * kGeoRegions);
  for (std::size_t a = 0; a < kGeoRegions; ++a) {
    for (std::size_t b = 0; b < kGeoRegions; ++b) {
      matrix[a * kGeoRegions + b] = geo_link_params(a, b, base);
    }
  }
  network.set_regional_params(std::move(regions), std::move(matrix), kGeoRegions);
}

}  // namespace wakurln::sim
