#include "sim/topology.h"

#include <algorithm>

namespace wakurln::sim {

void connect_ring_plus_random(Network& network, std::span<const NodeId> nodes,
                              std::size_t extra_per_node, util::Rng& rng) {
  const std::size_t n = nodes.size();
  if (n < 2) return;
  for (std::size_t i = 0; i < n; ++i) {
    network.connect(nodes[i], nodes[(i + 1) % n]);
  }
  if (n < 3) return;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < extra_per_node; ++k) {
      const NodeId peer = nodes[rng.uniform(0, n - 1)];
      if (peer != nodes[i]) network.connect(nodes[i], peer);
    }
  }
}

void connect_erdos_renyi(Network& network, std::span<const NodeId> nodes, double p,
                         util::Rng& rng) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (rng.chance(p)) network.connect(nodes[i], nodes[j]);
    }
  }
}

void connect_to_random_peers(Network& network, NodeId newcomer,
                             std::span<const NodeId> targets, std::size_t degree,
                             util::Rng& rng) {
  std::vector<NodeId> pool(targets.begin(), targets.end());
  pool.erase(std::remove(pool.begin(), pool.end(), newcomer), pool.end());
  // Partial Fisher-Yates for `degree` distinct picks.
  const std::size_t picks = std::min(degree, pool.size());
  for (std::size_t i = 0; i < picks; ++i) {
    const std::size_t j = i + rng.uniform(0, pool.size() - 1 - i);
    std::swap(pool[i], pool[j]);
    network.connect(newcomer, pool[i]);
  }
}

}  // namespace wakurln::sim
