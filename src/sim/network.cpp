#include "sim/network.h"

#include <algorithm>
#include <stdexcept>

#include "obs/memory.h"

namespace wakurln::sim {

Network::Network(Scheduler& scheduler, util::Rng& rng, LinkParams default_link)
    : scheduler_(scheduler), rng_(rng), default_link_(default_link) {
  scheduler_.set_delivery_sink(this);
}

Network::~Network() {
  scheduler_.clear_delivery_sink(this);
}

NodeId Network::add_node(NodeCallbacks callbacks) {
  NodeState state;
  state.callbacks = std::move(callbacks);
  nodes_.push_back(std::move(state));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::set_callbacks(NodeId node, NodeCallbacks callbacks) {
  nodes_.at(node).callbacks = std::move(callbacks);
}

std::uint64_t Network::link_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

const LinkParams& Network::params_for(NodeId a, NodeId b) const {
  const auto it = link_overrides_.find(link_key(a, b));
  return it == link_overrides_.end() ? default_link_ : it->second;
}

std::span<const NodeId> Network::links_of(NodeId node) const {
  const NodeState& state = nodes_.at(node);
  if (state.frozen) {
    return {link_arena_.data() + state.base_off, state.base_len};
  }
  return {state.links.data(), state.links.size()};
}

void Network::thaw(NodeState& state) {
  if (!state.frozen) return;
  state.links.assign(link_arena_.begin() + state.base_off,
                     link_arena_.begin() + state.base_off + state.base_len);
  state.frozen = false;
}

void Network::connect(NodeId a, NodeId b) {
  if (a == b) throw std::invalid_argument("Network: self-links not allowed");
  if (are_connected(a, b)) return;
  NodeState& na = nodes_.at(a);
  NodeState& nb = nodes_.at(b);
  thaw(na);
  thaw(nb);
  na.links.insert(std::lower_bound(na.links.begin(), na.links.end(), b), b);
  nb.links.insert(std::lower_bound(nb.links.begin(), nb.links.end(), a), a);
  if (na.callbacks.on_peer_connected) na.callbacks.on_peer_connected(b);
  if (nb.callbacks.on_peer_connected) nb.callbacks.on_peer_connected(a);
}

void Network::disconnect(NodeId a, NodeId b) {
  if (!are_connected(a, b)) return;
  NodeState& na = nodes_.at(a);
  NodeState& nb = nodes_.at(b);
  thaw(na);
  thaw(nb);
  na.links.erase(std::lower_bound(na.links.begin(), na.links.end(), b));
  nb.links.erase(std::lower_bound(nb.links.begin(), nb.links.end(), a));
  if (na.callbacks.on_peer_disconnected) na.callbacks.on_peer_disconnected(b);
  if (nb.callbacks.on_peer_disconnected) nb.callbacks.on_peer_disconnected(a);
}

bool Network::are_connected(NodeId a, NodeId b) const {
  const auto links = links_of(a);
  return std::binary_search(links.begin(), links.end(), b);
}

std::vector<NodeId> Network::neighbors(NodeId node) const {
  const auto links = links_of(node);
  return {links.begin(), links.end()};
}

void Network::intern_links() {
  // Rebuild the arena from the current link sets: content-hash each
  // node's sorted list and share one slice among identical lists. A
  // rebuild (rather than append) keeps re-interning after churn or
  // degree-bias passes from accreting dead slices.
  std::vector<NodeId> arena;
  struct Slice {
    std::uint32_t off, len;
  };
  std::unordered_map<std::uint64_t, std::vector<Slice>> by_hash;
  std::vector<Slice> assigned(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto links = links_of(static_cast<NodeId>(i));
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the id bytes
    for (const NodeId id : links) {
      for (std::size_t byte = 0; byte < sizeof(NodeId); ++byte) {
        h ^= (id >> (8 * byte)) & 0xff;
        h *= 1099511628211ULL;
      }
    }
    Slice* found = nullptr;
    for (Slice& candidate : by_hash[h]) {
      if (candidate.len == links.size() &&
          std::equal(links.begin(), links.end(), arena.begin() + candidate.off)) {
        found = &candidate;
        break;
      }
    }
    if (found == nullptr) {
      const Slice fresh{static_cast<std::uint32_t>(arena.size()),
                        static_cast<std::uint32_t>(links.size())};
      arena.insert(arena.end(), links.begin(), links.end());
      by_hash[h].push_back(fresh);
      found = &by_hash[h].back();
    }
    assigned[i] = *found;
  }
  arena.shrink_to_fit();
  link_arena_ = std::move(arena);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeState& state = nodes_[i];
    state.base_off = assigned[i].off;
    state.base_len = assigned[i].len;
    state.frozen = true;
    state.links.clear();
    state.links.shrink_to_fit();
  }
}

void Network::set_link_params(NodeId a, NodeId b, LinkParams params) {
  link_overrides_[link_key(a, b)] = params;
}

void Network::send(NodeId from, NodeId to, Frame frame, std::size_t bytes) {
  if (!are_connected(from, to)) {
    throw std::logic_error("Network: send over non-existent link");
  }
  stats_.frames_sent += 1;
  stats_.bytes_sent += bytes;
  nodes_[from].bytes_sent += bytes;
  frame_bytes_hist_.observe(static_cast<double>(bytes));

  const LinkParams& link = params_for(from, to);
  if (rng_.chance(link.loss_rate)) {
    stats_.frames_lost += 1;
    return;
  }
  TimeUs delay = link.base_latency;
  if (link.jitter > 0) delay += rng_.uniform(0, link.jitter - 1);
  if (link.bandwidth_bytes_per_sec > 0) {
    delay += static_cast<TimeUs>(static_cast<double>(bytes) /
                                 link.bandwidth_bytes_per_sec * kUsPerSecond);
  }

  // Typed, pooled delivery event: plain data through the scheduler's
  // calendar queue, no per-send closure allocation.
  DeliveryEvent ev;
  ev.from = from;
  ev.to = to;
  ev.generation = nodes_[to].generation;
  ev.bytes = bytes;
  ev.frame = std::move(frame);
  scheduler_.schedule_delivery_after(delay, std::move(ev));
}

void Network::on_delivery(const DeliveryEvent& ev) {
  // Link may have been torn down — or the destination may have departed
  // (drop_in_flight) — while the frame was in flight.
  if (!are_connected(ev.from, ev.to) || nodes_[ev.to].generation != ev.generation) {
    stats_.frames_lost += 1;
    return;
  }
  stats_.frames_delivered += 1;
  nodes_[ev.to].bytes_received += ev.bytes;
  if (frame_tap_) frame_tap_(ev.from, ev.to, ev.frame, ev.bytes);
  if (nodes_[ev.to].callbacks.on_frame) {
    nodes_[ev.to].callbacks.on_frame(ev.from, ev.frame, ev.bytes);
  }
}

void Network::drop_in_flight(NodeId node) {
  nodes_.at(node).generation += 1;
}

void Network::instrument(obs::Registry& reg) {
  // Wire-frame sizes: the edges straddle the control/payload split (bare
  // control RPCs sit in the low buckets, padded payload fan-out in the
  // high ones). A disabled registry hands back an inert handle.
  frame_bytes_hist_ = reg.histogram(
      "net_frame_bytes", {64, 256, 1024, 4096, 16384, 65536});
}

std::size_t Network::memory_bytes() const {
  // Exact model of the link bookkeeping (obs/memory.h conventions): node
  // headers, private link lists, the interned arena, and the per-link
  // parameter overrides' hash-map nodes and bucket array. Frame buffers
  // in flight are transient and deliberately out of scope.
  std::size_t total = sizeof(Network);
  total += nodes_.capacity() * sizeof(NodeState);
  for (const NodeState& n : nodes_) total += n.links.capacity() * sizeof(NodeId);
  total += link_arena_.capacity() * sizeof(NodeId);
  total += link_overrides_.bucket_count() * sizeof(void*);
  total += link_overrides_.size() *
           (obs::kUnorderedNodeBytes + sizeof(std::pair<const std::uint64_t, LinkParams>));
  return total;
}

std::uint64_t Network::bytes_sent_by(NodeId node) const {
  return nodes_.at(node).bytes_sent;
}

std::uint64_t Network::bytes_received_by(NodeId node) const {
  return nodes_.at(node).bytes_received;
}

}  // namespace wakurln::sim
