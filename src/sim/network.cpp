#include "sim/network.h"

#include <algorithm>
#include <stdexcept>

#include "obs/memory.h"

namespace wakurln::sim {

namespace {

// Per-sender link-randomness stream: a splitmix64 counter generator over a
// single u64 state word. Each draw depends only on the node's seed and how
// many draws the node has made — never on other nodes' activity — which is
// what makes loss/jitter byte-identical across shard counts.
std::uint64_t stream_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double stream_unit(std::uint64_t& state) {
  return static_cast<double>(stream_next(state) >> 11) * 0x1.0p-53;
}

}  // namespace

Network::Network(Scheduler& scheduler, util::Rng& rng, LinkParams default_link)
    : scheduler_(scheduler), rng_(rng), default_link_(default_link) {
  scheduler_.set_delivery_sink(this);
  stream_base_ = rng_.next_u64();
  lane_traffic_.resize(scheduler_.lane_count());
  lookahead_floor_ = default_link_.base_latency;
  scheduler_.set_lookahead(lookahead_floor_);
}

Network::~Network() {
  scheduler_.clear_delivery_sink(this);
}

NodeId Network::add_node(NodeCallbacks callbacks) {
  NodeState state;
  state.callbacks = std::move(callbacks);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  state.rng_state =
      stream_base_ ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(id) + 1));
  nodes_.push_back(std::move(state));
  return id;
}

void Network::set_callbacks(NodeId node, NodeCallbacks callbacks) {
  nodes_.at(node).callbacks = std::move(callbacks);
}

std::uint64_t Network::link_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

const LinkParams& Network::params_for(NodeId a, NodeId b) const {
  if (!link_overrides_.empty()) {
    const auto it = link_overrides_.find(link_key(a, b));
    if (it != link_overrides_.end()) return it->second;
  }
  if (!region_matrix_.empty()) {
    return region_matrix_[nodes_[a].region * region_count_ + nodes_[b].region];
  }
  return default_link_;
}

std::span<const NodeId> Network::links_of(NodeId node) const {
  const NodeState& state = nodes_.at(node);
  if (state.frozen) {
    return {link_arena_.data() + state.base_off, state.base_len};
  }
  return {state.links.data(), state.links.size()};
}

void Network::thaw(NodeState& state) {
  if (!state.frozen) return;
  state.links.assign(link_arena_.begin() + state.base_off,
                     link_arena_.begin() + state.base_off + state.base_len);
  state.frozen = false;
}

void Network::connect(NodeId a, NodeId b) {
  if (a == b) throw std::invalid_argument("Network: self-links not allowed");
  if (scheduler_.in_shard_context()) {
    // Requested while shard lanes may be running (e.g. gossipsub acting on
    // peer-exchange candidates): apply at the next window barrier, in
    // deterministic deferred order. The liveness re-check happens inside
    // connect_now, at flush time.
    scheduler_.run_deferred([this, a, b] { connect_now(a, b); });
    return;
  }
  connect_now(a, b);
}

void Network::connect_now(NodeId a, NodeId b) {
  if (are_connected(a, b)) return;
  NodeState& na = nodes_.at(a);
  NodeState& nb = nodes_.at(b);
  thaw(na);
  thaw(nb);
  na.links.insert(std::lower_bound(na.links.begin(), na.links.end(), b), b);
  nb.links.insert(std::lower_bound(nb.links.begin(), nb.links.end(), a), a);
  if (na.callbacks.on_peer_connected) na.callbacks.on_peer_connected(b);
  if (nb.callbacks.on_peer_connected) nb.callbacks.on_peer_connected(a);
}

void Network::disconnect(NodeId a, NodeId b) {
  if (scheduler_.in_shard_context()) {
    scheduler_.run_deferred([this, a, b] { disconnect(a, b); });
    return;
  }
  if (!are_connected(a, b)) return;
  NodeState& na = nodes_.at(a);
  NodeState& nb = nodes_.at(b);
  thaw(na);
  thaw(nb);
  na.links.erase(std::lower_bound(na.links.begin(), na.links.end(), b));
  nb.links.erase(std::lower_bound(nb.links.begin(), nb.links.end(), a));
  if (na.callbacks.on_peer_disconnected) na.callbacks.on_peer_disconnected(b);
  if (nb.callbacks.on_peer_disconnected) nb.callbacks.on_peer_disconnected(a);
}

bool Network::are_connected(NodeId a, NodeId b) const {
  const auto links = links_of(a);
  return std::binary_search(links.begin(), links.end(), b);
}

std::vector<NodeId> Network::neighbors(NodeId node) const {
  const auto links = links_of(node);
  return {links.begin(), links.end()};
}

void Network::intern_links() {
  // Rebuild the arena from the current link sets: content-hash each
  // node's sorted list and share one slice among identical lists. A
  // rebuild (rather than append) keeps re-interning after churn or
  // degree-bias passes from accreting dead slices.
  std::vector<NodeId> arena;
  struct Slice {
    std::uint32_t off, len;
  };
  std::unordered_map<std::uint64_t, std::vector<Slice>> by_hash;
  std::vector<Slice> assigned(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto links = links_of(static_cast<NodeId>(i));
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the id bytes
    for (const NodeId id : links) {
      for (std::size_t byte = 0; byte < sizeof(NodeId); ++byte) {
        h ^= (id >> (8 * byte)) & 0xff;
        h *= 1099511628211ULL;
      }
    }
    Slice* found = nullptr;
    for (Slice& candidate : by_hash[h]) {
      if (candidate.len == links.size() &&
          std::equal(links.begin(), links.end(), arena.begin() + candidate.off)) {
        found = &candidate;
        break;
      }
    }
    if (found == nullptr) {
      const Slice fresh{static_cast<std::uint32_t>(arena.size()),
                        static_cast<std::uint32_t>(links.size())};
      arena.insert(arena.end(), links.begin(), links.end());
      by_hash[h].push_back(fresh);
      found = &by_hash[h].back();
    }
    assigned[i] = *found;
  }
  arena.shrink_to_fit();
  link_arena_ = std::move(arena);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeState& state = nodes_[i];
    state.base_off = assigned[i].off;
    state.base_len = assigned[i].len;
    state.frozen = true;
    state.links.clear();
    state.links.shrink_to_fit();
  }
}

void Network::lower_lookahead(TimeUs base) {
  if (base >= lookahead_floor_) return;
  lookahead_floor_ = base;
  scheduler_.set_lookahead(lookahead_floor_);
}

void Network::set_link_params(NodeId a, NodeId b, LinkParams params) {
  link_overrides_[link_key(a, b)] = params;
  lower_lookahead(params.base_latency);
}

void Network::set_regional_params(std::vector<std::uint8_t> node_regions,
                                  std::vector<LinkParams> matrix,
                                  std::size_t region_count) {
  if (node_regions.size() != nodes_.size()) {
    throw std::invalid_argument("Network: one region per node required");
  }
  if (matrix.size() != region_count * region_count) {
    throw std::invalid_argument("Network: regional matrix must be region_count^2");
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (node_regions[i] >= region_count) {
      throw std::invalid_argument("Network: node region out of range");
    }
    nodes_[i].region = node_regions[i];
  }
  region_matrix_ = std::move(matrix);
  region_count_ = region_count;
  for (const LinkParams& p : region_matrix_) lower_lookahead(p.base_latency);
}

void Network::send(NodeId from, NodeId to, Frame frame, std::size_t bytes) {
  if (!are_connected(from, to)) {
    throw std::logic_error("Network: send over non-existent link");
  }
  LaneTraffic& lane = lane_traffic();
  lane.stats.frames_sent += 1;
  lane.stats.bytes_sent += bytes;
  nodes_[from].bytes_sent += bytes;
  std::size_t bucket = 0;
  while (bucket < kFrameBytesBuckets - 1 && bytes > kFrameBytesEdges[bucket]) {
    ++bucket;
  }
  lane.frame_bytes[bucket] += 1;

  const LinkParams& link = params_for(from, to);
  std::uint64_t& stream = nodes_[from].rng_state;
  if (link.loss_rate > 0 && stream_unit(stream) < link.loss_rate) {
    lane.stats.frames_lost += 1;
    return;
  }
  TimeUs delay = link.base_latency;
  if (link.jitter > 0) delay += stream_next(stream) % link.jitter;
  if (link.bandwidth_bytes_per_sec > 0) {
    delay += static_cast<TimeUs>(static_cast<double>(bytes) /
                                 link.bandwidth_bytes_per_sec * kUsPerSecond);
  }

  // Typed, pooled delivery event: plain data through the scheduler's
  // calendar queue, no per-send closure allocation.
  DeliveryEvent ev;
  ev.from = from;
  ev.to = to;
  ev.generation = nodes_[to].generation;
  ev.bytes = bytes;
  ev.frame = std::move(frame);
  scheduler_.schedule_delivery_after(delay, std::move(ev));
}

void Network::on_delivery(const DeliveryEvent& ev) {
  // Link may have been torn down — or the destination may have departed
  // (drop_in_flight) — while the frame was in flight.
  if (!are_connected(ev.from, ev.to) || nodes_[ev.to].generation != ev.generation) {
    lane_traffic().stats.frames_lost += 1;
    return;
  }
  lane_traffic().stats.frames_delivered += 1;
  nodes_[ev.to].bytes_received += ev.bytes;
  if (frame_tap_) frame_tap_(ev.from, ev.to, ev.frame, ev.bytes);
  if (nodes_[ev.to].callbacks.on_frame) {
    nodes_[ev.to].callbacks.on_frame(ev.from, ev.frame, ev.bytes);
  }
}

void Network::drop_in_flight(NodeId node) {
  nodes_.at(node).generation += 1;
}

void Network::instrument(obs::Registry& reg) {
  // Wire-frame sizes: the edges straddle the control/payload split (bare
  // control RPCs sit in the low buckets, padded payload fan-out in the
  // high ones). A pull probe over the folded per-lane counts — lanes are
  // quiesced whenever the registry samples, so the fold is race-free.
  reg.histogram_probe("net_frame_bytes",
                      {64, 256, 1024, 4096, 16384, 65536},
                      [this] { return frame_bytes_counts(); });
}

Network::Stats Network::stats() const {
  Stats total;
  for (const LaneTraffic& lane : lane_traffic_) {
    total.frames_sent += lane.stats.frames_sent;
    total.frames_delivered += lane.stats.frames_delivered;
    total.frames_lost += lane.stats.frames_lost;
    total.bytes_sent += lane.stats.bytes_sent;
  }
  return total;
}

std::vector<std::uint64_t> Network::frame_bytes_counts() const {
  std::vector<std::uint64_t> counts(kFrameBytesBuckets, 0);
  for (const LaneTraffic& lane : lane_traffic_) {
    for (std::size_t i = 0; i < kFrameBytesBuckets; ++i) {
      counts[i] += lane.frame_bytes[i];
    }
  }
  return counts;
}

std::size_t Network::memory_bytes() const {
  // Exact model of the link bookkeeping (obs/memory.h conventions): node
  // headers, private link lists, the interned arena, the per-link
  // parameter overrides' hash-map nodes and bucket array, and the regional
  // matrix. Frame buffers in flight are transient and deliberately out of
  // scope, as is the per-lane traffic scratch (parallel-execution
  // overhead, reported separately so the model is thread-count-invariant).
  std::size_t total = sizeof(Network);
  total += nodes_.capacity() * sizeof(NodeState);
  for (const NodeState& n : nodes_) total += n.links.capacity() * sizeof(NodeId);
  total += link_arena_.capacity() * sizeof(NodeId);
  total += link_overrides_.bucket_count() * sizeof(void*);
  total += link_overrides_.size() *
           (obs::kUnorderedNodeBytes + sizeof(std::pair<const std::uint64_t, LinkParams>));
  total += region_matrix_.capacity() * sizeof(LinkParams);
  return total;
}

std::uint64_t Network::bytes_sent_by(NodeId node) const {
  return nodes_.at(node).bytes_sent;
}

std::uint64_t Network::bytes_received_by(NodeId node) const {
  return nodes_.at(node).bytes_received;
}

}  // namespace wakurln::sim
