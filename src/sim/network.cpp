#include "sim/network.h"

#include <algorithm>
#include <stdexcept>

namespace wakurln::sim {

Network::Network(Scheduler& scheduler, util::Rng& rng, LinkParams default_link)
    : scheduler_(scheduler), rng_(rng), default_link_(default_link) {
  scheduler_.set_delivery_sink(this);
}

Network::~Network() {
  scheduler_.clear_delivery_sink(this);
}

NodeId Network::add_node(NodeCallbacks callbacks) {
  nodes_.push_back(NodeState{std::move(callbacks), {}, 0, 0, 0});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::set_callbacks(NodeId node, NodeCallbacks callbacks) {
  nodes_.at(node).callbacks = std::move(callbacks);
}

std::uint64_t Network::link_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

const LinkParams& Network::params_for(NodeId a, NodeId b) const {
  const auto it = link_overrides_.find(link_key(a, b));
  return it == link_overrides_.end() ? default_link_ : it->second;
}

void Network::connect(NodeId a, NodeId b) {
  if (a == b) throw std::invalid_argument("Network: self-links not allowed");
  NodeState& na = nodes_.at(a);
  NodeState& nb = nodes_.at(b);
  if (na.links.contains(b)) return;
  na.links.insert(b);
  nb.links.insert(a);
  if (na.callbacks.on_peer_connected) na.callbacks.on_peer_connected(b);
  if (nb.callbacks.on_peer_connected) nb.callbacks.on_peer_connected(a);
}

void Network::disconnect(NodeId a, NodeId b) {
  NodeState& na = nodes_.at(a);
  NodeState& nb = nodes_.at(b);
  if (!na.links.contains(b)) return;
  na.links.erase(b);
  nb.links.erase(a);
  if (na.callbacks.on_peer_disconnected) na.callbacks.on_peer_disconnected(b);
  if (nb.callbacks.on_peer_disconnected) nb.callbacks.on_peer_disconnected(a);
}

bool Network::are_connected(NodeId a, NodeId b) const {
  return nodes_.at(a).links.contains(b);
}

std::vector<NodeId> Network::neighbors(NodeId node) const {
  const auto& links = nodes_.at(node).links;
  std::vector<NodeId> out(links.begin(), links.end());
  std::sort(out.begin(), out.end());
  return out;
}

void Network::set_link_params(NodeId a, NodeId b, LinkParams params) {
  link_overrides_[link_key(a, b)] = params;
}

void Network::send(NodeId from, NodeId to, Frame frame, std::size_t bytes) {
  if (!are_connected(from, to)) {
    throw std::logic_error("Network: send over non-existent link");
  }
  stats_.frames_sent += 1;
  stats_.bytes_sent += bytes;
  nodes_[from].bytes_sent += bytes;
  frame_bytes_hist_.observe(static_cast<double>(bytes));

  const LinkParams& link = params_for(from, to);
  if (rng_.chance(link.loss_rate)) {
    stats_.frames_lost += 1;
    return;
  }
  TimeUs delay = link.base_latency;
  if (link.jitter > 0) delay += rng_.uniform(0, link.jitter - 1);
  if (link.bandwidth_bytes_per_sec > 0) {
    delay += static_cast<TimeUs>(static_cast<double>(bytes) /
                                 link.bandwidth_bytes_per_sec * kUsPerSecond);
  }

  // Typed, pooled delivery event: plain data through the scheduler's
  // calendar queue, no per-send closure allocation.
  DeliveryEvent ev;
  ev.from = from;
  ev.to = to;
  ev.generation = nodes_[to].generation;
  ev.bytes = bytes;
  ev.frame = std::move(frame);
  scheduler_.schedule_delivery_after(delay, std::move(ev));
}

void Network::on_delivery(const DeliveryEvent& ev) {
  // Link may have been torn down — or the destination may have departed
  // (drop_in_flight) — while the frame was in flight.
  if (!are_connected(ev.from, ev.to) || nodes_[ev.to].generation != ev.generation) {
    stats_.frames_lost += 1;
    return;
  }
  stats_.frames_delivered += 1;
  nodes_[ev.to].bytes_received += ev.bytes;
  if (frame_tap_) frame_tap_(ev.from, ev.to, ev.frame, ev.bytes);
  if (nodes_[ev.to].callbacks.on_frame) {
    nodes_[ev.to].callbacks.on_frame(ev.from, ev.frame, ev.bytes);
  }
}

void Network::drop_in_flight(NodeId node) {
  nodes_.at(node).generation += 1;
}

void Network::instrument(obs::Registry& reg) {
  // Wire-frame sizes: the edges straddle the control/payload split (bare
  // control RPCs sit in the low buckets, padded payload fan-out in the
  // high ones). A disabled registry hands back an inert handle.
  frame_bytes_hist_ = reg.histogram(
      "net_frame_bytes", {64, 256, 1024, 4096, 16384, 65536});
}

std::uint64_t Network::bytes_sent_by(NodeId node) const {
  return nodes_.at(node).bytes_sent;
}

std::uint64_t Network::bytes_received_by(NodeId node) const {
  return nodes_.at(node).bytes_received;
}

}  // namespace wakurln::sim
