#pragma once
// Topology builders for experiment setup.

#include <span>
#include <string_view>
#include <vector>

#include "sim/network.h"

namespace wakurln::sim {

/// Ring over all nodes plus `extra_per_node` random chords: connected,
/// low-diameter, the default experiment topology.
void connect_ring_plus_random(Network& network, std::span<const NodeId> nodes,
                              std::size_t extra_per_node, util::Rng& rng);

/// Erdős–Rényi: each pair linked independently with probability p.
/// (May be disconnected for small p; callers that need connectivity should
/// prefer connect_ring_plus_random.)
void connect_erdos_renyi(Network& network, std::span<const NodeId> nodes, double p,
                         util::Rng& rng);

/// Connects `newcomer` to `degree` distinct random members of `targets`.
void connect_to_random_peers(Network& network, NodeId newcomer,
                             std::span<const NodeId> targets, std::size_t degree,
                             util::Rng& rng);

/// Named topology families so experiment specs can select one declaratively.
enum class TopologyKind {
  kRingPlusRandom,
  kErdosRenyi,
};

/// Stable identifier used in CLI flags and JSON reports.
const char* topology_name(TopologyKind kind);

/// Parses topology_name output back; throws std::invalid_argument on
/// unknown names.
TopologyKind topology_from_name(std::string_view name);

/// Degree-bias hook: after the base topology is built, each node in
/// `nodes` receives `extra_links` additional random chords into the full
/// node set. Sybil observer coalitions use it to occupy structurally
/// favourable high-degree positions without changing the base family.
/// An empty bias draws no randomness — byte-identical to the unbiased
/// build.
struct DegreeBias {
  std::vector<NodeId> nodes;
  std::size_t extra_links = 0;

  bool empty() const { return nodes.empty() || extra_links == 0; }
};

/// Builds `kind` over `nodes`. `extra_per_node` applies to
/// kRingPlusRandom, `edge_probability` to kErdosRenyi; the other parameter
/// is ignored.
void build_topology(Network& network, std::span<const NodeId> nodes,
                    TopologyKind kind, std::size_t extra_per_node,
                    double edge_probability, util::Rng& rng);

/// Same, then applies `bias` (see DegreeBias).
void build_topology(Network& network, std::span<const NodeId> nodes,
                    TopologyKind kind, std::size_t extra_per_node,
                    double edge_probability, util::Rng& rng,
                    const DegreeBias& bias);

// -- geo-latency link classes ------------------------------------------
//
// The kGeo profile assigns nodes to contiguous regions (geographic
// clusters) and derives each link's LinkParams from the region pair via a
// canonical inter-region latency matrix, so cross-continent links are an
// order of magnitude slower than intra-region ones. The profile installs
// Network's regional parameter mode (a region byte per node plus the 5x5
// matrix), so links created *after* it is applied (peer exchange, churn
// rewiring) get region-pair parameters too — a rejoining node keeps its
// geography. Targeted per-link overrides (eclipse experiments) still win
// over the region pair.

/// Named link-parameter families for experiment specs and CLI flags.
enum class LinkProfile {
  kUniform,  ///< every link uses the spec's single LinkParams
  kGeo,      ///< per-link params derived from region pairs
};

/// Stable identifier used in CLI flags and JSON reports.
const char* link_profile_name(LinkProfile profile);

/// Parses link_profile_name output back; throws std::invalid_argument on
/// unknown names.
LinkProfile link_profile_from_name(std::string_view name);

/// Regions of the canonical geo profile (NA-East, NA-West, EU, Asia, Oceania).
inline constexpr std::size_t kGeoRegions = 5;

/// Region of the node at `index` of `node_count`: contiguous index blocks,
/// so ring neighbours usually share a region (clustered overlays).
std::size_t geo_region_of(std::size_t index, std::size_t node_count);

/// LinkParams for a region pair: one-way latency from the canonical
/// matrix, jitter at 20% of it; loss and bandwidth inherited from `base`.
LinkParams geo_link_params(std::size_t region_a, std::size_t region_b,
                           const LinkParams& base);

/// Installs the geo profile as the network's regional parameter mode:
/// region assignment is by position in the span, covering existing links
/// and any created later. Network nodes outside the span (if any) land in
/// region 0.
void apply_geo_latency(Network& network, std::span<const NodeId> nodes,
                       const LinkParams& base);

}  // namespace wakurln::sim
