#pragma once
// Topology builders for experiment setup.

#include <span>
#include <string_view>
#include <vector>

#include "sim/network.h"

namespace wakurln::sim {

/// Ring over all nodes plus `extra_per_node` random chords: connected,
/// low-diameter, the default experiment topology.
void connect_ring_plus_random(Network& network, std::span<const NodeId> nodes,
                              std::size_t extra_per_node, util::Rng& rng);

/// Erdős–Rényi: each pair linked independently with probability p.
/// (May be disconnected for small p; callers that need connectivity should
/// prefer connect_ring_plus_random.)
void connect_erdos_renyi(Network& network, std::span<const NodeId> nodes, double p,
                         util::Rng& rng);

/// Connects `newcomer` to `degree` distinct random members of `targets`.
void connect_to_random_peers(Network& network, NodeId newcomer,
                             std::span<const NodeId> targets, std::size_t degree,
                             util::Rng& rng);

/// Named topology families so experiment specs can select one declaratively.
enum class TopologyKind {
  kRingPlusRandom,
  kErdosRenyi,
};

/// Stable identifier used in CLI flags and JSON reports.
const char* topology_name(TopologyKind kind);

/// Parses topology_name output back; throws std::invalid_argument on
/// unknown names.
TopologyKind topology_from_name(std::string_view name);

/// Builds `kind` over `nodes`. `extra_per_node` applies to
/// kRingPlusRandom, `edge_probability` to kErdosRenyi; the other parameter
/// is ignored.
void build_topology(Network& network, std::span<const NodeId> nodes,
                    TopologyKind kind, std::size_t extra_per_node,
                    double edge_probability, util::Rng& rng);

}  // namespace wakurln::sim
