#pragma once
// Topology builders for experiment setup.

#include <span>
#include <vector>

#include "sim/network.h"

namespace wakurln::sim {

/// Ring over all nodes plus `extra_per_node` random chords: connected,
/// low-diameter, the default experiment topology.
void connect_ring_plus_random(Network& network, std::span<const NodeId> nodes,
                              std::size_t extra_per_node, util::Rng& rng);

/// Erdős–Rényi: each pair linked independently with probability p.
/// (May be disconnected for small p; callers that need connectivity should
/// prefer connect_ring_plus_random.)
void connect_erdos_renyi(Network& network, std::span<const NodeId> nodes, double p,
                         util::Rng& rng);

/// Connects `newcomer` to `degree` distinct random members of `targets`.
void connect_to_random_peers(Network& network, NodeId newcomer,
                             std::span<const NodeId> targets, std::size_t degree,
                             util::Rng& rng);

}  // namespace wakurln::sim
