#include "sim/scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/check.h"

namespace wakurln::sim {

namespace {
constexpr TimeUs kNoLimit = std::numeric_limits<TimeUs>::max();
}  // namespace

Scheduler::Scheduler() : buckets_(kNumBuckets) {}

Scheduler::~Scheduler() = default;

// -- node pool ----------------------------------------------------------

Scheduler::EventNode* Scheduler::acquire() {
  if (free_list_ != nullptr) {
    EventNode* node = free_list_;
    free_list_ = node->next_free;
    node->next_free = nullptr;
    ++stats_.pool_reuses;
    return node;
  }
  if (block_used_ == kBlockSize) {
    blocks_.emplace_back(new EventNode[kBlockSize]);
    block_used_ = 0;
  }
  ++stats_.node_allocs;
  return &blocks_.back()[block_used_++];
}

void Scheduler::release(EventNode* node) {
  // A free-listed node holds monostate; releasing one again would thread
  // it into the free list twice and hand the same node to two callers.
  DCHECK(!std::holds_alternative<std::monostate>(node->payload));
  // Drop captured state and frame refcounts eagerly: a pooled node must
  // not keep payloads alive while it waits on the free list.
  node->payload = std::monostate{};
  node->next_free = free_list_;
  free_list_ = node;
}

// -- queue --------------------------------------------------------------

void Scheduler::enqueue(EventNode* node) {
  ++stats_.scheduled;
  const std::uint64_t slot = node->time >> kSlotShift;
  if (slot < cursor_slot_ + kNumBuckets) {
    auto& bucket = buckets_[slot & kBucketMask];
    bucket.push_back(node);
    std::push_heap(bucket.begin(), bucket.end(), LaterPtr{});
    ++wheel_count_;
  } else {
    overflow_.push_back(node);
    std::push_heap(overflow_.begin(), overflow_.end(), LaterPtr{});
    ++stats_.overflow_events;
  }
  ++live_;
  stats_.peak_pending = std::max(stats_.peak_pending, live_);
}

void Scheduler::migrate_overflow() {
  while (!overflow_.empty() &&
         (overflow_.front()->time >> kSlotShift) < cursor_slot_ + kNumBuckets) {
    std::pop_heap(overflow_.begin(), overflow_.end(), LaterPtr{});
    EventNode* node = overflow_.back();
    overflow_.pop_back();
    auto& bucket = buckets_[(node->time >> kSlotShift) & kBucketMask];
    bucket.push_back(node);
    std::push_heap(bucket.begin(), bucket.end(), LaterPtr{});
    ++wheel_count_;
  }
}

Scheduler::EventNode* Scheduler::pop_earliest(TimeUs limit) {
  // Cursor invariant: cursor_slot_ never passes a non-empty bucket and
  // never exceeds limit's slot. Since the clock only advances to executed
  // event times (or to a run_until limit), the cursor always stays <=
  // slot(now) — so later insertions (always at t >= now) land at or ahead
  // of the cursor, never behind it.
  const std::uint64_t limit_slot = limit >> kSlotShift;
  for (;;) {
    if (wheel_count_ == 0) {
      if (overflow_.empty()) return nullptr;
      EventNode* top = overflow_.front();
      if (top->time > limit) return nullptr;
      // The ring is empty: jump the cursor straight to the overflow
      // minimum (always ahead of the cursor) and pull its window in.
      cursor_slot_ = top->time >> kSlotShift;
      migrate_overflow();
      continue;
    }
    auto& bucket = buckets_[cursor_slot_ & kBucketMask];
    if (bucket.empty()) {
      // Every ring event is in a later slot; past limit_slot they are all
      // beyond the limit, and the cursor must not outrun it.
      if (cursor_slot_ >= limit_slot) return nullptr;
      ++cursor_slot_;
      migrate_overflow();  // the slot entering the horizon may be waiting
      continue;
    }
    // The cursor never passes a non-empty bucket, so this bucket holds
    // exactly the events of slot cursor_slot_ — its heap top is the
    // global (time, seq) minimum (overflow events are all beyond the
    // horizon, hence later).
    EventNode* top = bucket.front();
    DCHECK((top->time >> kSlotShift) == cursor_slot_);
    if (top->time > limit) return nullptr;
    std::pop_heap(bucket.begin(), bucket.end(), LaterPtr{});
    bucket.pop_back();
    --wheel_count_;
    return top;
  }
}

bool Scheduler::is_tombstone(const EventNode* node) const {
  const TimerRef* ref = std::get_if<TimerRef>(&node->payload);
  if (ref == nullptr) return false;
  DCHECK(ref->index < timers_.size());
  return timers_[ref->index].generation != ref->generation;
}

// -- scheduling ---------------------------------------------------------

void Scheduler::schedule_at(TimeUs t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler: cannot schedule in the past");
  }
  EventNode* node = acquire();
  node->time = t;
  node->seq = next_seq_++;
  node->payload = std::move(fn);
  enqueue(node);
}

void Scheduler::schedule_after(TimeUs delay, std::function<void()> fn) {
  schedule_at(now_ + delay, std::move(fn));
}

void Scheduler::schedule_delivery_after(TimeUs delay, DeliveryEvent ev) {
  EventNode* node = acquire();
  node->time = now_ + delay;
  node->seq = next_seq_++;
  node->payload = std::move(ev);
  enqueue(node);
}

void Scheduler::set_delivery_sink(DeliverySink* sink) {
  if (sink_ != nullptr && sink != nullptr && sink != sink_) {
    throw std::logic_error("Scheduler: delivery sink already installed");
  }
  sink_ = sink;
}

void Scheduler::clear_delivery_sink(DeliverySink* sink) {
  if (sink_ == sink) sink_ = nullptr;
}

TimerHandle Scheduler::schedule_periodic(TimeUs first_delay, TimeUs interval,
                                         std::function<void()> fn) {
  if (interval == 0) {
    throw std::invalid_argument("Scheduler: periodic interval must be > 0");
  }
  std::uint32_t index;
  if (timer_free_ != TimerHandle::kInvalidIndex) {
    index = timer_free_;
    timer_free_ = timers_[index].next_free;
  } else {
    index = static_cast<std::uint32_t>(timers_.size());
    timers_.emplace_back();
  }
  TimerSlot& slot = timers_[index];
  slot.fn = std::move(fn);
  slot.interval = interval;
  slot.next_free = TimerHandle::kInvalidIndex;
  slot.active = true;
  slot.firing = false;
  ++stats_.timers_created;

  EventNode* node = acquire();
  node->time = now_ + first_delay;
  node->seq = next_seq_++;
  node->payload = TimerRef{index, slot.generation};
  enqueue(node);

  TimerHandle handle;
  handle.index_ = index;
  handle.generation_ = slot.generation;
  return handle;
}

bool Scheduler::cancel(const TimerHandle& handle) {
  if (handle.index_ >= timers_.size()) return false;
  TimerSlot& slot = timers_[handle.index_];
  if (!slot.active || slot.generation != handle.generation_) return false;
  slot.active = false;
  ++slot.generation;  // the pending occurrence node becomes a tombstone
  ++stats_.timers_cancelled;
  if (slot.firing) {
    // Cancelled from inside its own callback: the occurrence node is
    // already popped (not counted in live_), and the callback object is
    // on the stack — execute() finishes the slot teardown on return.
    return true;
  }
  DCHECK(live_ > 0);  // the armed occurrence must still be queued
  --live_;  // the queued occurrence no longer counts as pending
  free_timer_slot(handle.index_);
  return true;
}

bool Scheduler::timer_active(const TimerHandle& handle) const {
  return handle.index_ < timers_.size() && timers_[handle.index_].active &&
         timers_[handle.index_].generation == handle.generation_;
}

void Scheduler::free_timer_slot(std::uint32_t index) {
  TimerSlot& slot = timers_[index];
  DCHECK(!slot.active);  // cancel() must have retired the slot first
  slot.fn = nullptr;
  slot.firing = false;
  slot.next_free = timer_free_;
  timer_free_ = index;
}

// -- execution ----------------------------------------------------------

void Scheduler::execute(EventNode* node) {
  DCHECK(node->time >= now_);  // pop order is the clock's monotonicity
  DCHECK(live_ > 0);
  now_ = node->time;
  --live_;
  ++stats_.executed;
  if (auto* fn_slot = std::get_if<std::function<void()>>(&node->payload)) {
    // Move the callback out and recycle the node first: whatever the
    // callback schedules can reuse it immediately.
    std::function<void()> fn = std::move(*fn_slot);
    release(node);
    fn();
  } else if (auto* delivery = std::get_if<DeliveryEvent>(&node->payload)) {
    DeliveryEvent ev = std::move(*delivery);
    release(node);
    if (sink_ != nullptr) sink_->on_delivery(ev);
  } else {
    // Previously a bare std::get — a corrupted node died as an opaque
    // std::bad_variant_access with no location. CHECK names the site.
    const TimerRef* refp = std::get_if<TimerRef>(&node->payload);
    CHECK_MSG(refp != nullptr, "pooled event node carries no payload");
    const TimerRef ref = *refp;
    CHECK_MSG(ref.index < timers_.size(), "timer occurrence outlived its table slot");
    TimerSlot& slot = timers_[ref.index];
    ++stats_.timer_fires;
    slot.firing = true;
    slot.fn();
    if (slot.generation == ref.generation) {
      // Still installed: re-arm by recycling this very node. The fresh
      // sequence number puts the next occurrence after everything the
      // callback just scheduled.
      slot.firing = false;
      node->time += slot.interval;
      node->seq = next_seq_++;
      enqueue(node);
    } else {
      // Cancelled during its own callback: finish the deferred slot
      // teardown now that the callback has returned.
      free_timer_slot(ref.index);
      release(node);
    }
  }
}

bool Scheduler::run_next() {
  for (;;) {
    EventNode* node = pop_earliest(kNoLimit);
    if (node == nullptr) {
      // Everything drained (tombstone reaping may have walked the cursor
      // ahead of the clock): re-anchor the ring's window at the clock so
      // the next insertion cannot land behind the cursor.
      cursor_slot_ = now_ >> kSlotShift;
      return false;
    }
    if (is_tombstone(node)) {
      release(node);
      continue;
    }
    execute(node);
    return true;
  }
}

void Scheduler::run_until(TimeUs t) {
  for (;;) {
    EventNode* node = pop_earliest(t);
    if (node == nullptr) break;
    if (is_tombstone(node)) {
      release(node);
      continue;
    }
    execute(node);
  }
  if (t > now_) now_ = t;
  if (wheel_count_ == 0) {
    // Re-anchor the ring's window at the clock: near-future events
    // scheduled next land in the ring instead of the overflow heap, and
    // a cursor that tombstone reaping walked ahead of the clock comes
    // back so later insertions cannot land behind it.
    cursor_slot_ = now_ >> kSlotShift;
    migrate_overflow();
  }
}

void Scheduler::run_for(TimeUs duration) {
  run_until(now_ + duration);
}

void Scheduler::run_all() {
  while (run_next()) {
  }
}

std::size_t Scheduler::memory_bytes() const {
  std::size_t total = sizeof(Scheduler);
  // Pool blocks are the dominant term: kBlockSize nodes each, never freed.
  total += blocks_.size() *
           (sizeof(std::unique_ptr<EventNode[]>) + kBlockSize * sizeof(EventNode));
  // Calendar ring: the slot headers plus the live node pointers parked in
  // the wheel and the overflow heap.
  total += buckets_.size() * sizeof(std::vector<EventNode*>);
  total += (wheel_count_ + overflow_.size()) * sizeof(EventNode*);
  // Timer table slots (the deque never shrinks; cancelled slots recycle).
  total += timers_.size() * sizeof(TimerSlot);
  return total;
}

}  // namespace wakurln::sim
