#include "sim/scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/check.h"
#include "util/shared_bytes.h"

namespace wakurln::sim {

namespace {
constexpr TimeUs kNoLimit = std::numeric_limits<TimeUs>::max();
}  // namespace

thread_local Scheduler::ExecCtx* Scheduler::t_ctx_ = nullptr;

class Scheduler::CtxGuard {
 public:
  explicit CtxGuard(ExecCtx* ctx) : prev_(t_ctx_) { t_ctx_ = ctx; }
  ~CtxGuard() { t_ctx_ = prev_; }
  CtxGuard(const CtxGuard&) = delete;
  CtxGuard& operator=(const CtxGuard&) = delete;

 private:
  ExecCtx* prev_;
};

Scheduler::Scheduler(unsigned world_threads, std::size_t node_count_hint) {
  world_threads_ = world_threads == 0 ? 1 : world_threads;
  node_count_ = node_count_hint;
  // Without a node-count hint there is nothing to partition: stay
  // single-lane (the merged engine, byte-for-byte the classic behavior).
  shard_count_ = node_count_hint == 0
                     ? 1
                     : std::min<std::size_t>(world_threads_, node_count_hint);
  lanes_.reserve(shard_count_ + 1);
  for (std::size_t i = 0; i <= shard_count_; ++i) {
    lanes_.emplace_back(new Lane());
  }
  origin_seq_.assign(node_count_hint + 1, 0);
  mail_.resize(shard_count_ * shard_count_);
}

Scheduler::~Scheduler() { stop_workers(); }

Scheduler::ExecCtx* Scheduler::own_ctx() const {
  ExecCtx* c = t_ctx_;
  return (c != nullptr && c->sched == this) ? c : nullptr;
}

// -- per-lane node pool -------------------------------------------------

Scheduler::EventNode* Scheduler::Lane::acquire() {
  if (free_list != nullptr) {
    EventNode* node = free_list;
    free_list = node->next_free;
    node->next_free = nullptr;
    ++stats.pool_reuses;
    return node;
  }
  if (block_used == kBlockSize) {
    blocks.emplace_back(new EventNode[kBlockSize]);
    block_used = 0;
  }
  ++stats.node_allocs;
  return &blocks.back()[block_used++];
}

void Scheduler::Lane::release(EventNode* node) {
  // A free-listed node holds monostate; releasing one again would thread
  // it into the free list twice and hand the same node to two callers.
  DCHECK(!std::holds_alternative<std::monostate>(node->payload));
  // Drop captured state and frame refcounts eagerly: a pooled node must
  // not keep payloads alive while it waits on the free list.
  node->payload = std::monostate{};
  node->next_free = free_list;
  free_list = node;
}

// -- per-lane calendar queue --------------------------------------------

void Scheduler::Lane::enqueue(EventNode* node) {
  ++stats.scheduled;
  const std::uint64_t slot = node->time >> kSlotShift;
  if (slot < cursor_slot + kNumBuckets) {
    auto& bucket = buckets[slot & kBucketMask];
    bucket.push_back(node);
    std::push_heap(bucket.begin(), bucket.end(), LaterPtr{});
    ++wheel_count;
  } else {
    overflow.push_back(node);
    std::push_heap(overflow.begin(), overflow.end(), LaterPtr{});
    ++stats.overflow_events;
  }
  ++live;
  stats.peak_pending = std::max(stats.peak_pending, live);
}

void Scheduler::Lane::migrate_overflow() {
  while (!overflow.empty() &&
         (overflow.front()->time >> kSlotShift) < cursor_slot + kNumBuckets) {
    std::pop_heap(overflow.begin(), overflow.end(), LaterPtr{});
    EventNode* node = overflow.back();
    overflow.pop_back();
    auto& bucket = buckets[(node->time >> kSlotShift) & kBucketMask];
    bucket.push_back(node);
    std::push_heap(bucket.begin(), bucket.end(), LaterPtr{});
    ++wheel_count;
  }
}

Scheduler::EventNode* Scheduler::Lane::pop_earliest(TimeUs limit) {
  // Cursor invariant: cursor_slot never passes a non-empty bucket and
  // never exceeds limit's slot. Only pop commits cursor movement (peek
  // walks a local copy), and every insert lands at or after the lane's
  // execution frontier — so insertions land at or ahead of the cursor,
  // never behind it.
  const std::uint64_t limit_slot = limit >> kSlotShift;
  for (;;) {
    if (wheel_count == 0) {
      if (overflow.empty()) return nullptr;
      EventNode* top = overflow.front();
      if (top->time > limit) return nullptr;
      // The ring is empty: jump the cursor straight to the overflow
      // minimum (always ahead of the cursor) and pull its window in.
      cursor_slot = top->time >> kSlotShift;
      migrate_overflow();
      continue;
    }
    auto& bucket = buckets[cursor_slot & kBucketMask];
    if (bucket.empty()) {
      // Every ring event is in a later slot; past limit_slot they are all
      // beyond the limit, and the cursor must not outrun it.
      if (cursor_slot >= limit_slot) return nullptr;
      ++cursor_slot;
      migrate_overflow();  // the slot entering the horizon may be waiting
      continue;
    }
    // The cursor never passes a non-empty bucket, so this bucket holds
    // exactly the events of slot cursor_slot — its heap top is the lane's
    // (time, origin, seq) minimum (overflow events are all beyond the
    // horizon, hence later).
    EventNode* top = bucket.front();
    DCHECK((top->time >> kSlotShift) == cursor_slot);
    if (top->time > limit) return nullptr;
    std::pop_heap(bucket.begin(), bucket.end(), LaterPtr{});
    bucket.pop_back();
    --wheel_count;
    return top;
  }
}

Scheduler::EventNode* Scheduler::Lane::peek_earliest(TimeUs limit) const {
  if (wheel_count == 0) {
    if (overflow.empty()) return nullptr;
    EventNode* top = overflow.front();
    return top->time <= limit ? top : nullptr;
  }
  // Ring entries all live in [cursor, cursor + kNumBuckets) and are
  // therefore earlier than everything in the overflow heap — walking to
  // the first non-empty bucket finds the lane minimum. The walk uses a
  // local cursor so peeking commits nothing: a barrier-time insert may
  // land earlier than where the walk ended, and the committed cursor
  // must still be behind it.
  const std::uint64_t limit_slot = limit >> kSlotShift;
  std::uint64_t slot = cursor_slot;
  for (;;) {
    const auto& bucket = buckets[slot & kBucketMask];
    if (!bucket.empty()) {
      EventNode* top = bucket.front();
      return top->time <= limit ? top : nullptr;
    }
    if (slot >= limit_slot) return nullptr;
    ++slot;
  }
}

bool Scheduler::Lane::is_tombstone(const EventNode* node) const {
  const TimerRef* ref = std::get_if<TimerRef>(&node->payload);
  if (ref == nullptr) return false;
  DCHECK(ref->index < timers.size());
  return timers[ref->index].generation != ref->generation;
}

void Scheduler::Lane::free_timer_slot(std::uint32_t index) {
  TimerSlot& slot = timers[index];
  DCHECK(!slot.active);  // cancel() must have retired the slot first
  slot.fn = nullptr;
  slot.firing = false;
  slot.next_free = timer_free;
  timer_free = index;
}

void Scheduler::Lane::reanchor(TimeUs at) {
  if (wheel_count != 0) return;
  // Re-anchor the ring's window at the clock: near-future events
  // scheduled next land in the ring instead of the overflow heap, and a
  // cursor that tombstone reaping walked ahead of the clock comes back
  // so later insertions cannot land behind it.
  cursor_slot = at >> kSlotShift;
  migrate_overflow();
}

std::size_t Scheduler::Lane::resident_bytes() const {
  std::size_t total = sizeof(Lane);
  total += blocks.size() * (sizeof(std::unique_ptr<EventNode[]>) +
                            kBlockSize * sizeof(EventNode));
  total += buckets.size() * sizeof(std::vector<EventNode*>);
  total += (wheel_count + overflow.size()) * sizeof(EventNode*);
  total += timers.size() * sizeof(TimerSlot);
  return total;
}

// -- stamping and scheduling --------------------------------------------

std::uint64_t Scheduler::next_seq(std::uint32_t origin) {
  if (origin >= origin_seq_.size()) {
    const ExecCtx* c = own_ctx();
    // Growth reallocates the counter vector — coordinator-only. Worker
    // origins are node ids below the construction hint, so a worker
    // landing here means the hint was wrong for a sharded engine.
    CHECK_MSG(c == nullptr || !c->on_worker,
              "origin counter growth from a shard worker (node_count_hint too small)");
    origin_seq_.resize(origin + 1, 0);
  }
  return origin_seq_[origin]++;
}

void Scheduler::schedule_at(TimeUs t, std::function<void()> fn) {
  ExecCtx* c = own_ctx();
  if (c != nullptr && c->on_worker) {
    throw std::logic_error(
        "Scheduler: schedule_at from shard context (use run_deferred)");
  }
  const TimeUs ref = c != nullptr ? c->now : now_;
  if (t < ref) {
    throw std::invalid_argument("Scheduler: cannot schedule in the past");
  }
  const std::uint32_t origin = c != nullptr ? c->origin : cur_origin_;
  Lane& lane = *lanes_[0];
  EventNode* node = lane.acquire();
  node->time = t;
  node->origin = origin;
  node->seq = next_seq(origin);
  node->payload = std::move(fn);
  lane.enqueue(node);
}

void Scheduler::schedule_after(TimeUs delay, std::function<void()> fn) {
  schedule_at(now() + delay, std::move(fn));
}

void Scheduler::schedule_delivery_after(TimeUs delay, DeliveryEvent ev) {
  ExecCtx* c = own_ctx();
  const TimeUs at = (c != nullptr ? c->now : now_) + delay;
  const std::uint32_t origin = c != nullptr ? c->origin : cur_origin_;
  const std::size_t dst = shard_of(ev.to);
  if (c != nullptr && c->on_worker && dst + 1 != c->lane_index) {
    // Cross-shard send from a worker: park it in the mailbox, already
    // stamped by the sender, for the coordinator to merge at the window
    // barrier. The lookahead bound is what makes the parking safe — the
    // delivery cannot land inside the receiving shard's current window.
    DCHECK(delay >= lookahead_);
    Mail mail;
    mail.key = Stamp{at, origin, next_seq(origin)};
    mail.ev = std::move(ev);
    mail_[(c->lane_index - 1) * shard_count_ + dst].push_back(std::move(mail));
    return;
  }
  Lane& lane = *lanes_[dst + 1];
  EventNode* node = lane.acquire();
  node->time = at;
  node->origin = origin;
  node->seq = next_seq(origin);
  node->payload = std::move(ev);
  lane.enqueue(node);
}

void Scheduler::run_deferred(std::function<void()> fn) {
  ExecCtx* c = own_ctx();
  if (c != nullptr && c->lane != nullptr && c->lane_index != 0) {
    c->lane->deferred.push_back(
        DeferredAction{c->key, c->defer_sub++, std::move(fn)});
    return;
  }
  fn();
}

void Scheduler::set_delivery_sink(DeliverySink* sink) {
  if (sink_ != nullptr && sink != nullptr && sink != sink_) {
    throw std::logic_error("Scheduler: delivery sink already installed");
  }
  sink_ = sink;
}

void Scheduler::clear_delivery_sink(DeliverySink* sink) {
  if (sink_ == sink) sink_ = nullptr;
}

// -- timers -------------------------------------------------------------

TimerHandle Scheduler::install_timer(std::size_t lane_index,
                                     std::uint32_t owner_origin,
                                     TimeUs first_delay, TimeUs interval,
                                     std::function<void()> fn) {
  if (interval == 0) {
    throw std::invalid_argument("Scheduler: periodic interval must be > 0");
  }
  ExecCtx* c = own_ctx();
  if (c != nullptr && c->on_worker && c->lane_index != lane_index) {
    throw std::logic_error(
        "Scheduler: timer installed from a foreign shard context");
  }
  Lane& lane = *lanes_[lane_index];
  std::uint32_t index;
  if (lane.timer_free != TimerHandle::kInvalidIndex) {
    index = lane.timer_free;
    lane.timer_free = lane.timers[index].next_free;
  } else {
    index = static_cast<std::uint32_t>(lane.timers.size());
    lane.timers.emplace_back();
  }
  TimerSlot& slot = lane.timers[index];
  slot.fn = std::move(fn);
  slot.interval = interval;
  slot.next_free = TimerHandle::kInvalidIndex;
  slot.owner_origin = owner_origin;
  slot.active = true;
  slot.firing = false;
  ++lane.stats.timers_created;

  EventNode* node = lane.acquire();
  node->time = (c != nullptr ? c->now : now_) + first_delay;
  node->origin = owner_origin;
  node->seq = next_seq(owner_origin);
  node->payload = TimerRef{index, slot.generation};
  lane.enqueue(node);

  TimerHandle handle;
  handle.index_ = index;
  handle.generation_ = slot.generation;
  handle.lane_ = static_cast<std::uint32_t>(lane_index);
  return handle;
}

TimerHandle Scheduler::schedule_periodic(TimeUs first_delay, TimeUs interval,
                                         std::function<void()> fn) {
  return install_timer(0, 0, first_delay, interval, std::move(fn));
}

TimerHandle Scheduler::schedule_periodic_for(NodeId owner, TimeUs first_delay,
                                             TimeUs interval,
                                             std::function<void()> fn) {
  const std::size_t lane_index = shard_of(owner) + 1;
  return install_timer(lane_index, static_cast<std::uint32_t>(owner) + 1,
                       first_delay, interval, std::move(fn));
}

bool Scheduler::cancel(const TimerHandle& handle) {
  if (handle.lane_ >= lanes_.size()) return false;
  ExecCtx* c = own_ctx();
  if (c != nullptr && c->on_worker && c->lane_index != handle.lane_) {
    throw std::logic_error(
        "Scheduler: timer cancelled from a foreign shard context");
  }
  Lane& lane = *lanes_[handle.lane_];
  if (handle.index_ >= lane.timers.size()) return false;
  TimerSlot& slot = lane.timers[handle.index_];
  if (!slot.active || slot.generation != handle.generation_) return false;
  slot.active = false;
  ++slot.generation;  // the pending occurrence node becomes a tombstone
  ++lane.stats.timers_cancelled;
  if (slot.firing) {
    // Cancelled from inside its own callback: the occurrence node is
    // already popped (not counted in live), and the callback object is
    // on the stack — execute_event finishes the slot teardown on return.
    return true;
  }
  DCHECK(lane.live > 0);  // the armed occurrence must still be queued
  --lane.live;  // the queued occurrence no longer counts as pending
  lane.free_timer_slot(handle.index_);
  return true;
}

bool Scheduler::timer_active(const TimerHandle& handle) const {
  if (handle.lane_ >= lanes_.size()) return false;
  const Lane& lane = *lanes_[handle.lane_];
  return handle.index_ < lane.timers.size() &&
         lane.timers[handle.index_].active &&
         lane.timers[handle.index_].generation == handle.generation_;
}

// -- execution ----------------------------------------------------------

void Scheduler::execute_event(Lane& lane, std::size_t lane_index,
                              EventNode* node, ExecCtx& ctx) {
  DCHECK(node->time >= lane.exec_now);  // pop order is the lane's monotonicity
  DCHECK(lane.live > 0);
  lane.exec_now = node->time;
  --lane.live;
  ++lane.stats.executed;
  ctx.lane = &lane;
  ctx.lane_index = lane_index;
  ctx.now = node->time;
  ctx.key = Stamp{node->time, node->origin, node->seq};
  ctx.defer_sub = 0;
  if (auto* fn_slot = std::get_if<std::function<void()>>(&node->payload)) {
    // Move the callback out and recycle the node first: whatever the
    // callback schedules can reuse it immediately.
    ctx.origin = node->origin;
    std::function<void()> fn = std::move(*fn_slot);
    lane.release(node);
    fn();
  } else if (auto* delivery = std::get_if<DeliveryEvent>(&node->payload)) {
    // A delivery executes *as the receiving node*: whatever the handler
    // schedules (forwards, acks) is stamped with the receiver's origin,
    // drawing from its own counter — independent of the shard count.
    ctx.origin = static_cast<std::uint32_t>(delivery->to) + 1;
    DeliveryEvent ev = std::move(*delivery);
    lane.release(node);
    if (sink_ != nullptr) sink_->on_delivery(ev);
  } else {
    // Previously a bare std::get — a corrupted node died as an opaque
    // std::bad_variant_access with no location. CHECK names the site.
    const TimerRef* refp = std::get_if<TimerRef>(&node->payload);
    CHECK_MSG(refp != nullptr, "pooled event node carries no payload");
    const TimerRef ref = *refp;
    CHECK_MSG(ref.index < lane.timers.size(),
              "timer occurrence outlived its table slot");
    TimerSlot& slot = lane.timers[ref.index];
    ctx.origin = slot.owner_origin;
    ++lane.stats.timer_fires;
    slot.firing = true;
    slot.fn();
    if (slot.generation == ref.generation) {
      // Still installed: re-arm by recycling this very node. The fresh
      // sequence number puts the next occurrence after everything the
      // callback just scheduled.
      slot.firing = false;
      node->time += slot.interval;
      node->seq = next_seq(slot.owner_origin);
      lane.enqueue(node);
    } else {
      // Cancelled during its own callback: finish the deferred slot
      // teardown now that the callback has returned.
      lane.free_timer_slot(ref.index);
      lane.release(node);
    }
  }
}

void Scheduler::run_lane_window(std::size_t shard, TimeUs end_exclusive,
                                bool on_worker) {
  Lane& lane = *lanes_[shard + 1];
  ExecCtx ctx;
  ctx.sched = this;
  ctx.on_worker = on_worker;
  CtxGuard guard(&ctx);
  const TimeUs limit = end_exclusive - 1;
  for (;;) {
    EventNode* node = lane.pop_earliest(limit);
    if (node == nullptr) break;
    if (lane.is_tombstone(node)) {
      lane.release(node);
      continue;
    }
    execute_event(lane, shard + 1, node, ctx);
  }
}

void Scheduler::run_one_global(TimeUs limit) {
  Lane& lane = *lanes_[0];
  for (;;) {
    EventNode* node = lane.pop_earliest(limit);
    if (node == nullptr) return;  // only tombstones were ahead
    if (lane.is_tombstone(node)) {
      lane.release(node);
      continue;
    }
    now_ = node->time;
    cur_key_ = Stamp{node->time, node->origin, node->seq};
    ExecCtx ctx;
    ctx.sched = this;
    CtxGuard guard(&ctx);
    execute_event(lane, 0, node, ctx);
    cur_origin_ = 0;
    return;
  }
}

bool Scheduler::deferred_pending() const {
  for (const auto& lane : lanes_) {
    if (!lane->deferred.empty()) return true;
  }
  return false;
}

void Scheduler::flush_deferred() {
  if (!deferred_pending()) return;
  flush_scratch_.clear();
  for (auto& lane : lanes_) {
    for (auto& action : lane->deferred) {
      flush_scratch_.push_back(std::move(action));
    }
    lane->deferred.clear();
  }
  // Stamp order of the deferring events (plus the per-event sub-counter)
  // is a total order independent of which lane buffered the action.
  std::sort(flush_scratch_.begin(), flush_scratch_.end(),
            [](const DeferredAction& a, const DeferredAction& b) {
              if (!(a.key == b.key)) return a.key < b.key;
              return a.sub < b.sub;
            });
  for (auto& action : flush_scratch_) {
    // Restore the deferring event's identity: anything the action
    // schedules draws from the origin node's counter, exactly as the
    // inline execution on a single-lane engine would have.
    cur_key_ = action.key;
    cur_origin_ = action.key.origin;
    action.fn();
  }
  cur_origin_ = 0;
  flush_scratch_.clear();
}

void Scheduler::drain_mailboxes() {
  for (auto& box : mail_) {
    if (box.empty()) continue;
    for (auto& mail : box) {
      Lane& lane = *lanes_[shard_of(mail.ev.to) + 1];
      EventNode* node = lane.acquire();
      node->time = mail.key.time;
      node->origin = mail.key.origin;
      node->seq = mail.key.seq;
      node->payload = std::move(mail.ev);
      lane.enqueue(node);
    }
    box.clear();
  }
}

void Scheduler::sample_peak() {
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane->live;
  if (total > barrier_peak_) barrier_peak_ = total;
}

// -- worker pool --------------------------------------------------------

void Scheduler::ensure_workers() {
  if (!workers_.empty() || shard_count_ <= 1) return;
  worker_slots_.resize(shard_count_);
  workers_.reserve(shard_count_);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    workers_.emplace_back([this, s] { worker_main(s); });
  }
}

void Scheduler::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  worker_slots_.clear();
  stop_ = false;
}

void Scheduler::worker_main(std::size_t shard) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    TimeUs end;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || window_epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = window_epoch_;
      end = window_end_;
    }
    WorkerSlot& slot = worker_slots_[shard];
    try {
      run_lane_window(shard, end, /*on_worker=*/true);
    } catch (...) {
      slot.error = std::current_exception();
    }
    // Record this window's payload-allocation delta (the counters are
    // thread-local); the coordinator folds it in at the barrier so the
    // world's payload accounting matches the single-thread run exactly.
    const std::uint64_t allocs = util::SharedBytes::allocation_count();
    const std::uint64_t bytes = util::SharedBytes::allocated_bytes();
    slot.payload_allocs += allocs - slot.allocs_last;
    slot.payload_bytes += bytes - slot.bytes_last;
    slot.allocs_last = allocs;
    slot.bytes_last = bytes;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_running_ == 0) cv_done_.notify_one();
    }
  }
}

void Scheduler::dispatch_window(TimeUs end_exclusive) {
  if (shard_count_ == 1) {
    // Single shard: the coordinator runs the window inline. Same pops,
    // same stamps, same deferred-flush points as the worker path.
    run_lane_window(0, end_exclusive, /*on_worker=*/false);
    return;
  }
  ensure_workers();
  {
    std::lock_guard<std::mutex> lock(mu_);
    window_end_ = end_exclusive;
    workers_running_ = shard_count_;
    ++window_epoch_;
  }
  cv_work_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return workers_running_ == 0; });
  }
  for (auto& slot : worker_slots_) {
    if (slot.payload_allocs != 0 || slot.payload_bytes != 0) {
      util::SharedBytes::fold_in(slot.payload_allocs, slot.payload_bytes);
      slot.payload_allocs = 0;
      slot.payload_bytes = 0;
    }
  }
  for (auto& slot : worker_slots_) {
    if (slot.error) {
      std::exception_ptr error = slot.error;
      slot.error = nullptr;
      stop_workers();
      std::rethrow_exception(error);
    }
  }
}

// -- run loops ----------------------------------------------------------

void Scheduler::run_until_windowed(TimeUs t) {
  for (;;) {
    flush_deferred();
    sample_peak();
    EventNode* global_next = lanes_[0]->peek_earliest(t);
    const TimeUs tg = global_next != nullptr ? global_next->time : kNoLimit;
    TimeUs ts = kNoLimit;
    for (std::size_t s = 0; s < shard_count_; ++s) {
      EventNode* node = lanes_[s + 1]->peek_earliest(t);
      if (node != nullptr && node->time < ts) ts = node->time;
    }
    if (tg == kNoLimit && ts == kNoLimit) break;
    if (tg <= ts) {
      // Global events run with every shard quiesced: they may touch any
      // node, mutate topology, mine blocks. At a timestamp tie the
      // global lane goes first — a fixed rule, not a thread race.
      run_one_global(t);
      continue;
    }
    // Shard window [ts, end): every shard executes its own events with
    // time strictly below `end` without ever seeing a cross-shard
    // delivery sent inside the window (delay >= lookahead puts any such
    // delivery at or beyond `end`).
    TimeUs end = ts + lookahead_;
    if (tg < end) end = tg;
    if (t != kNoLimit && t + 1 < end) end = t + 1;
    DCHECK(end > ts);
    dispatch_window(end);
    drain_mailboxes();
    now_ = std::max(now_, std::min(end, t));
  }
  if (t > now_) now_ = t;
  flush_deferred();
  for (auto& lane : lanes_) lane->reanchor(now_);
}

void Scheduler::run_until_merged(TimeUs t) {
  for (;;) {
    Lane* best_lane = nullptr;
    std::size_t best_index = 0;
    EventNode* best_node = nullptr;
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      EventNode* node = lanes_[i]->peek_earliest(t);
      if (node == nullptr) continue;
      if (best_node == nullptr || LaterPtr{}(best_node, node)) {
        best_lane = lanes_[i].get();
        best_index = i;
        best_node = node;
      }
    }
    if (best_node == nullptr) break;
    if (best_index == 0 && deferred_pending()) {
      // Deferred work runs before the next global event (the merged
      // engine's stand-in for a window barrier); it may reschedule or
      // cancel, so re-peek from scratch.
      flush_deferred();
      continue;
    }
    sample_peak();
    EventNode* node = best_lane->pop_earliest(t);
    DCHECK(node == best_node);
    if (best_lane->is_tombstone(node)) {
      best_lane->release(node);
      continue;
    }
    now_ = node->time;
    cur_key_ = Stamp{node->time, node->origin, node->seq};
    ExecCtx ctx;
    ctx.sched = this;
    CtxGuard guard(&ctx);
    execute_event(*best_lane, best_index, node, ctx);
    cur_origin_ = 0;
  }
  if (t > now_) now_ = t;
  flush_deferred();
  for (auto& lane : lanes_) lane->reanchor(now_);
}

bool Scheduler::run_next() {
  for (;;) {
    Lane* best_lane = nullptr;
    std::size_t best_index = 0;
    EventNode* best_node = nullptr;
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      EventNode* node = lanes_[i]->peek_earliest(kNoLimit);
      if (node == nullptr) continue;
      if (best_node == nullptr || LaterPtr{}(best_node, node)) {
        best_lane = lanes_[i].get();
        best_index = i;
        best_node = node;
      }
    }
    if (best_node == nullptr) {
      flush_deferred();
      for (auto& lane : lanes_) lane->reanchor(now_);
      return false;
    }
    if (best_index == 0 && deferred_pending()) {
      flush_deferred();
      continue;
    }
    sample_peak();
    EventNode* node = best_lane->pop_earliest(kNoLimit);
    DCHECK(node == best_node);
    if (best_lane->is_tombstone(node)) {
      best_lane->release(node);
      continue;
    }
    now_ = node->time;
    cur_key_ = Stamp{node->time, node->origin, node->seq};
    ExecCtx ctx;
    ctx.sched = this;
    CtxGuard guard(&ctx);
    execute_event(*best_lane, best_index, node, ctx);
    cur_origin_ = 0;
    return true;
  }
}

void Scheduler::run_until(TimeUs t) {
  // The lookahead is a property of the world's link latencies, never of
  // the thread count — so the choice of loop (and with it every window,
  // barrier and flush point) is identical at every world_threads value.
  if (lookahead_ == 0) {
    run_until_merged(t);
  } else {
    run_until_windowed(t);
  }
}

void Scheduler::run_for(TimeUs duration) { run_until(now() + duration); }

void Scheduler::run_all() {
  while (run_next()) {
  }
}

// -- introspection ------------------------------------------------------

TimeUs Scheduler::now() const {
  const ExecCtx* c = own_ctx();
  return c != nullptr ? c->now : now_;
}

Scheduler::Stamp Scheduler::current_stamp() const {
  const ExecCtx* c = own_ctx();
  return c != nullptr ? c->key : cur_key_;
}

std::size_t Scheduler::current_lane() const {
  const ExecCtx* c = own_ctx();
  return c != nullptr ? c->lane_index : 0;
}

bool Scheduler::in_shard_context() const {
  const ExecCtx* c = own_ctx();
  return c != nullptr && c->lane != nullptr && c->lane_index != 0;
}

std::size_t Scheduler::pending() const {
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane->live;
  return total;
}

Scheduler::Stats Scheduler::stats() const {
  Stats total;
  for (const auto& lane : lanes_) {
    const Stats& s = lane->stats;
    total.scheduled += s.scheduled;
    total.executed += s.executed;
    total.node_allocs += s.node_allocs;
    total.pool_reuses += s.pool_reuses;
    total.overflow_events += s.overflow_events;
    total.timers_created += s.timers_created;
    total.timers_cancelled += s.timers_cancelled;
    total.timer_fires += s.timer_fires;
  }
  total.peak_pending = barrier_peak_;
  return total;
}

const Scheduler::Stats& Scheduler::lane_stats(std::size_t lane) const {
  CHECK_MSG(lane < lanes_.size(), "lane_stats: lane out of range");
  return lanes_[lane]->stats;
}

std::size_t Scheduler::memory_bytes() const {
  // Single-lane-equivalent model (see the header): one global ring plus
  // one merged node ring, a pool sized for the window-boundary peak, the
  // pointers parked in wheels/overflow, and the timer tables. Every term
  // is a function of the workload, not of the partition.
  std::size_t total = sizeof(Scheduler);
  total += 2 * kNumBuckets * sizeof(std::vector<EventNode*>);
  const std::size_t pool_blocks = (barrier_peak_ + kBlockSize - 1) / kBlockSize;
  total += pool_blocks * (sizeof(std::unique_ptr<EventNode[]>) +
                          kBlockSize * sizeof(EventNode));
  std::size_t parked = 0;
  std::size_t timers = 0;
  for (const auto& lane : lanes_) {
    parked += lane->wheel_count + lane->overflow.size();
    timers += lane->timers.size();
  }
  total += parked * sizeof(EventNode*);
  total += timers * sizeof(TimerSlot);
  total += origin_seq_.capacity() * sizeof(std::uint64_t);
  return total;
}

std::size_t Scheduler::parallel_scratch_bytes() const {
  std::size_t actual = sizeof(Scheduler);
  for (const auto& lane : lanes_) actual += lane->resident_bytes();
  for (const auto& box : mail_) actual += box.capacity() * sizeof(Mail);
  actual += worker_slots_.capacity() * sizeof(WorkerSlot);
  actual += origin_seq_.capacity() * sizeof(std::uint64_t);
  const std::size_t model = memory_bytes();
  return actual > model ? actual - model : 0;
}

}  // namespace wakurln::sim
