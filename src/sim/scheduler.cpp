#include "sim/scheduler.h"

#include <stdexcept>

namespace wakurln::sim {

void Scheduler::schedule_at(TimeUs t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler: cannot schedule in the past");
  }
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Scheduler::schedule_after(TimeUs delay, std::function<void()> fn) {
  schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::run_next() {
  if (queue_.empty()) return false;
  // Copy out before pop: the callback may schedule new events.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  return true;
}

void Scheduler::run_until(TimeUs t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    run_next();
  }
  if (t > now_) now_ = t;
}

void Scheduler::run_for(TimeUs duration) {
  run_until(now_ + duration);
}

void Scheduler::run_all() {
  while (run_next()) {
  }
}

}  // namespace wakurln::sim
