#pragma once
// Minimal JSON emission helpers shared by the bench harness and the
// scenario campaign reports. Emission only — the repo's JSON consumers
// (CI scripts, report diffing) parse with Python.
//
// Both helpers are deterministic: identical inputs produce identical
// bytes, which is what lets scenario reports be byte-compared across
// runs, threads and machines.

#include <string>

namespace wakurln::util {

/// Escapes `in` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& in);

/// Formats a double as a JSON number. Integral values within 2^53 print
/// without exponent or decimal point (counters round-trip exactly);
/// everything else uses %.17g so the double is reconstructible
/// bit-for-bit.
std::string json_number(double v);

}  // namespace wakurln::util
