#pragma once
// Minimal bounds-checked binary serialisation used for protocol envelopes.
// Integers are little-endian; variable buffers carry a u32 length prefix.

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>

#include "util/bytes.h"

namespace wakurln::util {

/// Appends primitive values to a growable byte buffer.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  /// Raw bytes, no length prefix (fixed-size fields).
  void put_raw(std::span<const std::uint8_t> data);
  /// Length-prefixed (u32) variable-size buffer.
  void put_var(std::span<const std::uint8_t> data);

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Error thrown by ByteReader on truncated or malformed input.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Reads primitive values from a byte span with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  /// Exactly n raw bytes.
  std::span<const std::uint8_t> get_raw(std::size_t n);
  /// Length-prefixed buffer written by put_var.
  std::span<const std::uint8_t> get_var();

  template <std::size_t N>
  std::array<std::uint8_t, N> get_array() {
    auto s = get_raw(N);
    std::array<std::uint8_t, N> out{};
    std::copy(s.begin(), s.end(), out.begin());
    return out;
  }

  bool empty() const { return pos_ >= data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace wakurln::util
