#pragma once
// Byte-buffer helpers shared by every module.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wakurln::util {

/// Owning byte buffer used throughout the library.
using Bytes = std::vector<std::uint8_t>;

/// Lowercase hex encoding of `data` (no "0x" prefix).
std::string to_hex(std::span<const std::uint8_t> data);

/// Decodes a hex string (optionally "0x"-prefixed, even length).
/// Throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

/// Copies the raw characters of `s` into a byte buffer.
Bytes to_bytes(std::string_view s);

/// Constant-time-ish equality for fixed-size secrets (length leak only).
bool equal_ct(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

}  // namespace wakurln::util
