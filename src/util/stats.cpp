#include "util/stats.h"

#include <algorithm>
#include <cstddef>

namespace wakurln::util {

double percentile_rank(std::size_t n, double q) {
  if (n == 0) return 0;
  if (q <= 0) return 0;
  if (q >= 1) return static_cast<double>(n - 1);
  return q * static_cast<double>(n - 1);
}

double percentile_at_rank(std::size_t n, double h,
                          const std::function<double(std::size_t)>& value_at) {
  if (n == 0) return 0;
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= n) return value_at(n - 1);
  const double frac = h - static_cast<double>(lo);
  const double a = value_at(lo);
  const double b = value_at(lo + 1);
  return a + frac * (b - a);
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  return percentile_at_rank(
      samples.size(), percentile_rank(samples.size(), q),
      [&samples](std::size_t k) { return samples[k]; });
}

}  // namespace wakurln::util
