#include "util/stats.h"

#include <algorithm>
#include <cstddef>

namespace wakurln::util {

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  if (q <= 0) return samples.front();
  if (q >= 1) return samples.back();
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

}  // namespace wakurln::util
