#pragma once
// Tiny command-line flag parser for the example binaries and the scenario
// runner: `--key value`, `--key=value`, and bare boolean flags (`--list`).
// No external dependency, no registration step — callers query by name
// with a default, so every binary keeps sane zero-argument behaviour for
// smoke tests and CI.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace wakurln::util {

class CliArgs {
 public:
  /// Parses argv. Throws std::invalid_argument on a non-flag token. A
  /// `--key` with no following value (end of argv, or another `--flag`
  /// next) is recorded as a boolean flag with an empty value.
  CliArgs(int argc, const char* const* argv);

  /// True if `--key` appeared (with or without a value).
  bool has(const std::string& key) const;

  /// String value, or `fallback` when the flag is absent or value-less.
  std::string get(const std::string& key, const std::string& fallback) const;

  /// Numeric values. `fallback` covers only an absent flag; a present
  /// flag whose value is missing, negative, or malformed throws
  /// std::invalid_argument ("--nodes --seeds 2" must not silently size
  /// the world with the default).
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::unordered_map<std::string, std::string> values_;
};

}  // namespace wakurln::util
