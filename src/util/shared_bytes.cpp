#include "util/shared_bytes.h"

#include <cstring>
#include <stdexcept>

namespace wakurln::util {

namespace {
thread_local std::uint64_t g_allocation_count = 0;
thread_local std::uint64_t g_allocated_bytes = 0;
}  // namespace

SharedBytes::SharedBytes(Bytes data)
    : buf_(std::make_shared<const Bytes>(std::move(data))) {
  data_ = buf_->data();
  size_ = buf_->size();
  ++g_allocation_count;
  g_allocated_bytes += size_;
}

SharedBytes SharedBytes::copy_of(std::span<const std::uint8_t> data) {
  return SharedBytes(Bytes(data.begin(), data.end()));
}

SharedBytes SharedBytes::slice(std::size_t offset, std::size_t len) const {
  if (offset > size_ || len > size_ - offset) {
    throw std::out_of_range("SharedBytes::slice: range outside buffer");
  }
  SharedBytes out;
  out.buf_ = buf_;
  out.data_ = data_ + offset;
  out.size_ = len;
  return out;
}

bool SharedBytes::operator==(const SharedBytes& other) const {
  return *this == other.span();
}

bool SharedBytes::operator==(std::span<const std::uint8_t> other) const {
  return size_ == other.size() &&
         (size_ == 0 || std::memcmp(data_, other.data(), size_) == 0);
}

std::uint64_t SharedBytes::allocation_count() { return g_allocation_count; }
std::uint64_t SharedBytes::allocated_bytes() { return g_allocated_bytes; }

void SharedBytes::fold_in(std::uint64_t count_delta, std::uint64_t bytes_delta) {
  g_allocation_count += count_delta;
  g_allocated_bytes += bytes_delta;
}

}  // namespace wakurln::util
