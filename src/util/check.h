#pragma once
// CHECK() / DCHECK(): internal-invariant macros for conditions that are
// programmer errors, never user input. On failure they print the failed
// expression with file:line to stderr and abort() — loud, unconditional,
// and sanitizer-friendly (ASan/TSan report the abort with a stack).
//
// Policy (see README "Correctness tooling"):
//   * Validation of caller-supplied data (specs, CLI flags, wire bytes)
//     throws std::invalid_argument and friends — callers can recover.
//   * Broken *internal* invariants (pool double-release, a calendar-queue
//     bucket holding a foreign slot, an impossible enum value) CHECK:
//     there is no meaningful recovery and unwinding would only smear the
//     corrupted state further before anyone notices.
//   * CHECK is always on, including Release: an aborted campaign is
//     cheaper than a silently wrong SCENARIO_*.json.
//   * DCHECK compiles away under NDEBUG — use it on hot paths (the
//     scheduler's per-event invariants) where the Release build must not
//     pay for the branch. The expression is parsed but never evaluated,
//     so variables it mentions do not become "unused".

#include <cstdlib>

namespace wakurln::util {

/// Prints "CHECK failed: <expr> (<msg>) at <file>:<line>" and aborts.
/// Out-of-line so the macro expands to a single call on the cold path.
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const char* msg);

}  // namespace wakurln::util

#define WAKURLN_CHECK(cond)                                             \
  (static_cast<bool>(cond)                                              \
       ? static_cast<void>(0)                                           \
       : ::wakurln::util::check_failed(#cond, __FILE__, __LINE__, nullptr))

#define WAKURLN_CHECK_MSG(cond, msg)                                    \
  (static_cast<bool>(cond)                                              \
       ? static_cast<void>(0)                                           \
       : ::wakurln::util::check_failed(#cond, __FILE__, __LINE__, (msg)))

#ifdef NDEBUG
// Parsed, type-checked, never evaluated: no codegen in Release.
#define WAKURLN_DCHECK(cond) static_cast<void>(sizeof(!(cond)))
#else
#define WAKURLN_DCHECK(cond) WAKURLN_CHECK(cond)
#endif

// Marks a path the surrounding logic has proven impossible (e.g. the
// default arm of an exhaustive enum switch). [[noreturn]] through
// check_failed, so no dummy return value is needed after it.
#define WAKURLN_UNREACHABLE(msg) \
  ::wakurln::util::check_failed("unreachable", __FILE__, __LINE__, (msg))

// Unprefixed aliases for in-repo use. Guarded: translation units that
// pull in another library's CHECK keep that one and use the WAKURLN_
// spellings explicitly.
#ifndef CHECK
#define CHECK(cond) WAKURLN_CHECK(cond)
#endif
#ifndef CHECK_MSG
#define CHECK_MSG(cond, msg) WAKURLN_CHECK_MSG(cond, msg)
#endif
#ifndef DCHECK
#define DCHECK(cond) WAKURLN_DCHECK(cond)
#endif
