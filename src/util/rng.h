#pragma once
// Deterministic, seedable random number generator (xoshiro256**).
//
// Every stochastic component of the library (simulator, workload
// generators, key generation in tests) draws from an explicitly seeded Rng
// so that experiments are exactly reproducible.

#include <cstdint>
#include <span>

namespace wakurln::util {

/// xoshiro256** seeded via splitmix64. Not cryptographically secure; key
/// material in production deployments must come from an OS CSPRNG, which is
/// outside the scope of this reproduction (see DESIGN.md).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double unit();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponential random variable with the given mean (> 0).
  double exponential(double mean);

  /// Fills `out` with uniform random bytes.
  void fill(std::span<std::uint8_t> out);

  /// Forks an independent child stream (stable given the call order).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace wakurln::util
