#include "util/serde.h"

namespace wakurln::util {

void ByteWriter::put_u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::put_u16(std::uint16_t v) {
  for (int i = 0; i < 2; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::put_var(std::span<const std::uint8_t> data) {
  put_u32(static_cast<std::uint32_t>(data.size()));
  put_raw(data);
}

void ByteReader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw DecodeError("ByteReader: truncated input");
  }
}

std::uint8_t ByteReader::get_u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::get_u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint32_t ByteReader::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::span<const std::uint8_t> ByteReader::get_raw(std::size_t n) {
  need(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::span<const std::uint8_t> ByteReader::get_var() {
  const std::uint32_t n = get_u32();
  return get_raw(n);
}

}  // namespace wakurln::util
