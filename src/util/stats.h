#pragma once
// Small numeric helpers shared by the bench harness, the scenario
// metrics pipeline and the observability histograms, so timing
// percentiles, simulated-latency percentiles and bucketed-distribution
// percentiles are all computed by one definition.

#include <cstddef>
#include <functional>
#include <vector>

namespace wakurln::util {

/// The fractional order-statistic rank the linear-interpolation
/// percentile sits at: h = q * (n - 1), clamped to [0, n - 1]. Every
/// percentile consumer (sample sets, histograms) derives its rank here,
/// so "p90" means the same thing everywhere. Returns 0 for n == 0.
double percentile_rank(std::size_t n, double q);

/// Evaluates the linear-interpolation percentile at fractional rank `h`
/// over `n` order statistics accessed through `value_at(k)`, k in
/// [0, n - 1]. Returns 0 for n == 0.
double percentile_at_rank(std::size_t n, double h,
                          const std::function<double(std::size_t)>& value_at);

/// Linear-interpolation percentile over an unsorted sample set; `q` is in
/// [0, 1]. Returns 0 for an empty sample set.
double percentile(std::vector<double> samples, double q);

}  // namespace wakurln::util
