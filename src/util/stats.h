#pragma once
// Small numeric helpers shared by the bench harness and the scenario
// metrics pipeline, so timing percentiles and simulated-latency
// percentiles are computed by one definition.

#include <vector>

namespace wakurln::util {

/// Linear-interpolation percentile over an unsorted sample set; `q` is in
/// [0, 1]. Returns 0 for an empty sample set.
double percentile(std::vector<double> samples, double q);

}  // namespace wakurln::util
