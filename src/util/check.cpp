#include "util/check.h"

#include <cstdio>

namespace wakurln::util {

void check_failed(const char* expr, const char* file, int line, const char* msg) {
  if (msg != nullptr) {
    std::fprintf(stderr, "CHECK failed: %s (%s) at %s:%d\n", expr, msg, file, line);
  } else {
    std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace wakurln::util
