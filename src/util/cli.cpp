#include "util/cli.h"

#include <cstddef>
#include <stdexcept>

namespace wakurln::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      throw std::invalid_argument("unexpected argument: " + token +
                                  " (flags are --key value or --key=value)");
    }
    const std::string::size_type eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(2, eq - 2)] = token.substr(eq + 1);
      continue;
    }
    const std::string key = token.substr(2);
    // A flag is boolean unless the next token is a value (not another flag).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[key] = argv[++i];
    } else {
      values_[key] = "";
    }
  }
}

bool CliArgs::has(const std::string& key) const { return values_.contains(key); }

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() || it->second.empty() ? fallback : it->second;
}

std::uint64_t CliArgs::get_u64(const std::string& key, std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  // std::stoull alone would accept "-5" (wrapping) and "5x" (trailing
  // garbage); a numeric flag with a missing value ("--nodes --seeds 2")
  // must also fail loudly rather than silently use the fallback.
  const std::string& raw = it->second;
  const bool all_digits =
      !raw.empty() && raw.find_first_not_of("0123456789") == std::string::npos;
  if (all_digits) {
    try {
      return std::stoull(raw);
    } catch (const std::exception&) {
      // out of range; fall through to the error below
    }
  }
  throw std::invalid_argument("--" + key + " expects an unsigned integer, got '" +
                              raw + "'");
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& raw = it->second;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(raw, &consumed);
    if (consumed == raw.size() && !raw.empty()) return value;
  } catch (const std::exception&) {
  }
  throw std::invalid_argument("--" + key + " expects a number, got '" + raw + "'");
}

}  // namespace wakurln::util
