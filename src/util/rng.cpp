#include "util/rng.h"

#include <cmath>

namespace wakurln::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + v % span;
}

double Rng::unit() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return unit() < p;
}

double Rng::exponential(double mean) {
  double u = unit();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

void Rng::fill(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t v = next_u64();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  }
}

Rng Rng::fork() {
  return Rng(next_u64());
}

}  // namespace wakurln::util
