#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace wakurln::util {

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  char buf[40];
  constexpr double kExactIntLimit = 9007199254740992.0;  // 2^53
  if (v == std::floor(v) && std::fabs(v) < kExactIntLimit) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

}  // namespace wakurln::util
