#pragma once
// Immutable, ref-counted byte buffer: the zero-copy payload type of the
// message fabric. A SharedBytes is a view (pointer + length) into a
// heap buffer owned by a shared_ptr, so copying one — across the gossip
// fan-out, the message cache, the simulated wire and the delivery log —
// bumps a reference count instead of cloning the bytes. slice() carves
// sub-views (e.g. the payload inside an RLN envelope) that keep the one
// underlying allocation alive.
//
// Allocation accounting: every buffer actually allocated through this
// type is counted in thread-local counters (allocation_count /
// allocated_bytes). A simulated world runs on one thread, so the deltas
// around a run are a deterministic measure of how many payload copies the
// hot path really made — the scenario reports quote them.
//
// Thread-safety contract (pinned by SharedBytesThreads in util_test and
// exercised under TSan by the campaign stress job):
//   * The ref count lives in the shared_ptr control block, which the
//     standard requires to be atomic: copying / slicing / destroying
//     views of one buffer from different threads is race-free, and the
//     last release (wherever it runs) synchronizes-with every prior
//     decrement before freeing the bytes.
//   * The payload bytes are immutable after construction, so concurrent
//     readers need no further synchronization.
//   * The counters are intentionally thread-local, NOT process-global
//     atomics: each campaign worker runs whole worlds, so its own deltas
//     stay exact and deterministic. Corollary: a buffer allocated on one
//     thread and released on another stays counted where it was
//     allocated — don't difference counters across threads.

#include <cstdint>
#include <memory>
#include <span>

#include "util/bytes.h"

namespace wakurln::util {

class SharedBytes {
 public:
  /// Empty view, no allocation.
  SharedBytes() = default;

  /// Takes ownership of `data` (one counted allocation, no byte copy).
  explicit SharedBytes(Bytes data);

  /// Deep-copies `data` into a fresh buffer (one counted allocation).
  static SharedBytes copy_of(std::span<const std::uint8_t> data);

  /// Sub-view [offset, offset+len) sharing this buffer; no allocation.
  /// Throws std::out_of_range if the range does not fit.
  SharedBytes slice(std::size_t offset, std::size_t len) const;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::uint8_t* begin() const { return data_; }
  const std::uint8_t* end() const { return data_ + size_; }
  std::uint8_t operator[](std::size_t i) const { return data_[i]; }

  std::span<const std::uint8_t> span() const { return {data_, size_}; }
  operator std::span<const std::uint8_t>() const { return span(); }  // NOLINT

  /// Explicit deep copy back into an owning vector.
  Bytes to_vector() const { return Bytes(begin(), end()); }

  /// Owners of the underlying buffer (0 for an empty view) — lets tests
  /// prove the fan-out shares rather than copies.
  long use_count() const { return buf_.use_count(); }

  /// Content equality (not identity).
  bool operator==(const SharedBytes& other) const;
  bool operator==(std::span<const std::uint8_t> other) const;

  /// Thread-local counters of buffers/bytes allocated via this type.
  static std::uint64_t allocation_count();
  static std::uint64_t allocated_bytes();

  /// Adds a delta measured on another thread into the calling thread's
  /// counters. The sharded scheduler folds each worker's per-window
  /// deltas into the coordinator at the barrier, so a parallel world's
  /// coordinator-side deltas equal the single-thread run's exactly.
  static void fold_in(std::uint64_t count_delta, std::uint64_t bytes_delta);

 private:
  std::shared_ptr<const Bytes> buf_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace wakurln::util
