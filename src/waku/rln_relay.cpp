#include "waku/rln_relay.h"

#include <algorithm>

#include "hash/poseidon.h"
#include "obs/tracer.h"
#include "util/serde.h"

namespace wakurln::waku {

using gossipsub::Validation;

std::shared_ptr<const RlnValidatorContext> RlnValidatorContext::make(
    zksnark::KeyPair crs, std::uint64_t messages_per_epoch) {
  rln::RlnVerifier verifier(crs.vk, messages_per_epoch);
  return std::make_shared<const RlnValidatorContext>(RlnValidatorContext{
      std::move(crs), std::move(verifier), std::make_shared<rln::NullifierStore>()});
}

WakuRlnRelay::WakuRlnRelay(WakuRelay& relay, eth::Chain& chain,
                           eth::MembershipContract& contract, zksnark::KeyPair crs,
                           eth::Address account, WakuRlnConfig config, util::Rng rng,
                           std::shared_ptr<GroupSync> group_sync,
                           std::shared_ptr<const RlnValidatorContext> ctx)
    : relay_(relay),
      chain_(chain),
      contract_(contract),
      account_(account),
      config_(config),
      rng_(rng),
      identity_(rln::Identity::generate(rng_)),
      epochs_(config.epoch_period_seconds, config.max_delay_seconds),
      sync_(group_sync ? std::move(group_sync)
                       : std::make_shared<GroupSync>(chain, config.tree_depth,
                                                     config.batch_crypto)),
      ctx_(ctx ? std::move(ctx)
               : RlnValidatorContext::make(std::move(crs), config.messages_per_epoch)),
      nullifier_map_(ctx_->store) {
  if (ctx_->crs.pk.tree_depth != config.tree_depth) {
    throw std::invalid_argument("WakuRlnRelay: CRS depth != configured tree depth");
  }
  if (sync_->group().tree_depth() != config.tree_depth) {
    throw std::invalid_argument("WakuRlnRelay: group sync depth != configured depth");
  }
  if (config.acceptable_root_window > GroupSync::kMaxRootHistory) {
    throw std::invalid_argument(
        "WakuRlnRelay: acceptable_root_window exceeds GroupSync::kMaxRootHistory");
  }
  // The current root is r_{floor}; everything older predates this relay
  // and was never in its acceptance window.
  root_floor_ = sync_->current_root_index();
  if (config_.batch_crypto) {
    batch_verifier_ =
        std::make_unique<zksnark::BatchVerifier>(config_.batch_verify_watermark);
  }
  // The sync's own subscription predates this one, so membership updates
  // are applied to the tree before any relay reads the new root.
  chain_.subscribe_events(
      [this](const eth::ContractEvent& ev, const eth::Block&) { on_chain_event(ev); });
  schedule_nullifier_gc();
}

std::uint64_t WakuRlnRelay::now_seconds() const {
  return relay_.router().network().scheduler().now() / sim::kUsPerSecond;
}

sim::TimeUs WakuRlnRelay::now_us() const {
  return relay_.router().network().scheduler().now();
}

void WakuRlnRelay::trace_drop(const char* reason) {
  if (tracer_ != nullptr) {
    tracer_->instant("drop", now_us(), trace_track_, reason);
  }
}

std::uint64_t WakuRlnRelay::current_epoch() const {
  return epochs_.epoch_at(now_seconds());
}

std::uint64_t WakuRlnRelay::request_registration() {
  const field::Fr pk = identity_.pk;
  return chain_.submit(
      account_, contract_.config().stake_wei,
      eth::MembershipContract::kRegisterCalldataBytes,
      [this, pk](eth::TxContext& ctx) { contract_.register_member(ctx, pk); },
      now_seconds());
}

void WakuRlnRelay::subscribe(const gossipsub::TopicId& topic, PayloadHandler handler) {
  handler_ = std::move(handler);
  relay_.router().set_validator(
      topic, [this](sim::NodeId source, const gossipsub::GsMessage& msg) {
        return validate(source, msg);
      });
  // Validation has already run by the time the relay delivers; unwrap the
  // RLN envelope and hand the bare payload (a zero-copy slice of the
  // message buffer) to the application.
  relay_.subscribe(topic,
                   [this](const gossipsub::TopicId& t, const util::SharedBytes& data) {
                     const auto decoded = decode_envelope(data);
                     if (decoded && handler_) handler_(t, decoded->second);
                   });
}

WakuRlnRelay::PublishOutcome WakuRlnRelay::publish(const gossipsub::TopicId& topic,
                                                   const util::Bytes& payload) {
  return do_publish(topic, payload, /*enforce_rate_limit=*/true);
}

WakuRlnRelay::PublishOutcome WakuRlnRelay::publish_unchecked(
    const gossipsub::TopicId& topic, const util::Bytes& payload) {
  return do_publish(topic, payload, /*enforce_rate_limit=*/false);
}

WakuRlnRelay::PublishOutcome WakuRlnRelay::do_publish(const gossipsub::TopicId& topic,
                                                      const util::Bytes& payload,
                                                      bool enforce_rate_limit) {
  if (!own_index_.has_value()) return PublishOutcome::kNotRegistered;
  const std::uint64_t epoch = current_epoch();
  if (epoch != publish_epoch_) {
    publish_epoch_ = epoch;
    published_in_epoch_ = 0;
  }
  if (enforce_rate_limit && published_in_epoch_ >= config_.messages_per_epoch) {
    return PublishOutcome::kRateLimited;
  }
  // An honest client walks the slot indices; a misbehaving one (unchecked)
  // keeps reusing whatever slot its counter is stuck at, which is exactly
  // the double-signal the network punishes.
  const std::uint64_t slot =
      std::min(published_in_epoch_, config_.messages_per_epoch - 1);
  if (!prover_) {
    // First publish: build the prover from the shared CRS. The ctor draws
    // no randomness, so lazy construction leaves the rng sequence alone.
    prover_ = std::make_unique<rln::RlnProver>(ctx_->crs.pk, identity_,
                                               config_.messages_per_epoch);
  }
  const auto signal =
      prover_->create_signal(payload, epoch, sync_->group(), *own_index_, rng_, slot);
  if (!signal) return PublishOutcome::kProofFailed;

  published_in_epoch_ += enforce_rate_limit ? 1 : 0;
  ++stats_.published;

  // Honest clients run their own validator on publish (recording their
  // share in the local nullifier map); the unchecked path models a
  // modified client that bypasses its own checks.
  const gossipsub::MessageId id =
      relay_.publish(topic, encode_envelope(*signal, payload),
                     /*apply_validator=*/enforce_rate_limit);
  if (tracer_ != nullptr) {
    tracer_->instant("publish", now_us(), trace_track_, obs::short_id(id));
  }
  return PublishOutcome::kPublished;
}

bool WakuRlnRelay::verify_proof(std::span<const std::uint8_t> payload,
                                const rln::RlnSignal& signal) {
  // Batched mode verifies through the prepared (allocation-free) path —
  // same verdict bit-for-bit — and counts the proof into the modeled
  // amortisation queue. Scalar mode is the executable reference.
  if (batch_verifier_) {
    const bool ok = ctx_->verifier.verify_prepared(payload, signal);
    batch_verifier_->enqueue();
    return ok;
  }
  return ctx_->verifier.verify(payload, signal);
}

bool WakuRlnRelay::verify_proof_cached(const gossipsub::MessageId& id,
                                       std::span<const std::uint8_t> payload,
                                       const rln::RlnSignal& signal) {
  if (config_.proof_cache_entries == 0) {
    ++stats_.proof_verifications;
    if (tracer_ != nullptr) {
      tracer_->begin("verify", now_us(), trace_track_, obs::short_id(id));
      const bool ok = verify_proof(payload, signal);
      tracer_->end(now_us(), trace_track_);
      return ok;
    }
    return verify_proof(payload, signal);
  }
  if (const auto it = proof_cache_.find(id); it != proof_cache_.end()) {
    ++stats_.proof_cache_hits;
    if (tracer_ != nullptr) {
      tracer_->instant("cache_hit", now_us(), trace_track_, obs::short_id(id));
    }
    return it->second;
  }
  ++stats_.proof_verifications;
  if (tracer_ != nullptr) {
    tracer_->begin("verify", now_us(), trace_track_, obs::short_id(id));
  }
  const bool ok = verify_proof(payload, signal);
  if (tracer_ != nullptr) tracer_->end(now_us(), trace_track_);
  if (proof_cache_order_.size() >= config_.proof_cache_entries) {
    proof_cache_.erase(proof_cache_order_.front());
    proof_cache_order_.pop_front();
  }
  proof_cache_.emplace(id, ok);
  proof_cache_order_.push_back(id);
  return ok;
}

gossipsub::Validation WakuRlnRelay::validate(sim::NodeId /*source*/,
                                             const gossipsub::GsMessage& msg) {
  // 1. Envelope shape (zero-copy: the payload is a slice of msg.data).
  const auto decoded = decode_envelope(msg.data);
  if (!decoded) {
    ++stats_.invalid_envelope;
    trace_drop("envelope");
    return Validation::kReject;
  }
  const rln::RlnSignal& signal = decoded->first;
  const util::SharedBytes& payload = decoded->second;

  // 2. Epoch window: |msg.epoch - local| <= Thr (§III).
  if (!epochs_.within_threshold(signal.epoch, current_epoch())) {
    ++stats_.invalid_epoch;
    trace_drop("epoch");
    return Validation::kReject;
  }

  // 2b. Slot index within the configured rate (always 0 in the paper's
  // one-per-epoch scheme).
  if (signal.message_index >= config_.messages_per_epoch) {
    ++stats_.invalid_slot;
    trace_drop("slot");
    return Validation::kReject;
  }

  // 3. Acceptable-root window (group-sync tolerance).
  if (!root_acceptable(signal.root)) {
    ++stats_.unknown_root;
    trace_drop("root");
    return Validation::kIgnore;  // possibly our own stale view: don't punish
  }

  // 4. zkSNARK verification — the content-addressed message id keys a
  // verdict cache, so a re-delivered message costs a map lookup.
  if (!verify_proof_cached(msg.id, payload, signal)) {
    ++stats_.invalid_proof;
    trace_drop("proof");
    return Validation::kReject;
  }

  // 5. Nullifier map: double-signal detection.
  const auto check =
      nullifier_map_.observe(signal.epoch, signal.nullifier,
                             zksnark::RlnCircuit::message_to_x(payload), signal.y);
  switch (check.outcome) {
    case rln::NullifierMap::Outcome::kDuplicateMessage:
      ++stats_.duplicates;
      return Validation::kIgnore;
    case rln::NullifierMap::Outcome::kDoubleSignal:
      ++stats_.double_signals;
      trace_drop("double_signal");
      if (check.breached_sk && config_.auto_slash) {
        submit_slash(*check.breached_sk);
      }
      return Validation::kReject;
    case rln::NullifierMap::Outcome::kFresh:
      break;
  }

  ++stats_.accepted;
  return Validation::kAccept;
}

void WakuRlnRelay::on_chain_event(const eth::ContractEvent& event) {
  // Tree updates (and the shared root history) were applied by the
  // GroupSync subscriber already; here each peer tracks only its own
  // membership index.
  if (const auto* reg = std::get_if<eth::MemberRegistered>(&event)) {
    if (reg->pk == identity_.pk) own_index_ = reg->index;
  } else if (const auto* slashed = std::get_if<eth::MemberSlashed>(&event)) {
    if (slashed->pk == identity_.pk) own_index_.reset();
  }
}

void WakuRlnRelay::submit_slash(const field::Fr& sk) {
  const field::Fr pk = hash::poseidon_hash1(sk);
  if (slash_submitted_[pk]) return;  // one slash tx per offender
  slash_submitted_[pk] = true;
  ++stats_.slashes_submitted;
  // Detection runs on this node's shard lane, but the mempool is world
  // state: defer the transaction to the next window barrier. Deferred
  // actions replay in the detecting events' timestamp order, so the
  // mempool sequence is identical at every thread count. The submission
  // timestamp is captured here, at detection time.
  const std::uint64_t at = now_seconds();
  relay_.router().network().scheduler().run_deferred([this, sk, at] {
    chain_.submit(
        account_, 0, eth::MembershipContract::kSlashCalldataBytes,
        [this, sk](eth::TxContext& ctx) { contract_.slash(ctx, sk); }, at);
  });
}

bool WakuRlnRelay::root_acceptable(const field::Fr& root) const {
  // This relay's logical window is the last acceptable_root_window entries
  // of the distinct-root sequence since its construction: exactly the
  // deque the old per-relay bookkeeping kept, read from the shared
  // history instead of n private copies.
  const std::uint64_t total = sync_->total_roots();
  const std::uint64_t window = config_.acceptable_root_window;
  std::uint64_t first = total > window ? total - window : 0;
  if (root_floor_ > first) first = root_floor_;
  return sync_->root_in_window(root, first);
}

void WakuRlnRelay::schedule_nullifier_gc() {
  // Prune once per epoch; keep a retention window of epochs so that any
  // message still inside the Thr acceptance window has its records. A
  // periodic timer holds the one callback for the node's lifetime — no
  // per-epoch lambda re-capture.
  const std::uint64_t keep_epochs =
      std::max<std::uint64_t>(epochs_.threshold(), 1) *
      std::max<std::uint64_t>(config_.nullifier_retention_factor, 1);
  const sim::TimeUs period_us = config_.epoch_period_seconds * sim::kUsPerSecond;
  // Owned by this node's shard lane: the prune touches only this node's
  // nullifier map (the shared store handles its own locking), so GC of
  // different partitions runs in parallel.
  gc_timer_ = relay_.router().network().scheduler().schedule_periodic_for(
      relay_.router().id(), period_us, period_us, [this, keep_epochs] {
        const std::uint64_t epoch = current_epoch();
        if (epoch > keep_epochs) {
          nullifier_map_.prune_before(epoch - keep_epochs);
        }
        // Epoch boundary: drain whatever the watermark left queued.
        if (batch_verifier_) {
          batch_verifier_->drain(zksnark::BatchVerifier::DrainReason::kEpochBoundary);
        }
      });
}

util::Bytes WakuRlnRelay::encode_envelope(const rln::RlnSignal& signal,
                                          const util::Bytes& payload) {
  util::ByteWriter w;
  w.put_var(signal.serialize());
  w.put_var(payload);
  return w.take();
}

namespace {

/// One parser for both decode_envelope overloads: the payload is returned
/// as a span into `data`, so callers choose copy vs shared-slice.
std::optional<std::pair<rln::RlnSignal, std::span<const std::uint8_t>>>
parse_envelope(std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    const auto signal_bytes = r.get_var();
    const auto payload = r.get_var();
    if (!r.empty()) return std::nullopt;
    auto signal = rln::RlnSignal::deserialize(signal_bytes);
    if (!signal) return std::nullopt;
    return std::make_pair(*signal, payload);
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace

std::optional<std::pair<rln::RlnSignal, util::Bytes>> WakuRlnRelay::decode_envelope(
    std::span<const std::uint8_t> data) {
  auto parsed = parse_envelope(data);
  if (!parsed) return std::nullopt;
  return std::make_pair(std::move(parsed->first),
                        util::Bytes(parsed->second.begin(), parsed->second.end()));
}

std::optional<std::pair<rln::RlnSignal, util::SharedBytes>> WakuRlnRelay::decode_envelope(
    const util::SharedBytes& data) {
  auto parsed = parse_envelope(data.span());
  if (!parsed) return std::nullopt;
  // The payload view shares data's buffer: no copy on the hot path.
  const auto offset = static_cast<std::size_t>(parsed->second.data() - data.data());
  return std::make_pair(std::move(parsed->first),
                        data.slice(offset, parsed->second.size()));
}

}  // namespace wakurln::waku
