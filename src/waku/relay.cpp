#include "waku/relay.h"

namespace wakurln::waku {

WakuRelay::WakuRelay(sim::NodeId self, sim::Network& network,
                     gossipsub::GossipSubParams params)
    : router_(self, network, params) {
  router_.set_message_handler([this](const gossipsub::GsMessage& msg) {
    if (handler_) handler_(msg.topic, msg.data);
  });
}

WakuRelay::WakuRelay(sim::NodeId self, sim::Network& network,
                     std::shared_ptr<const gossipsub::GossipSubParams> params,
                     std::shared_ptr<gossipsub::TopicTable> table)
    : router_(self, network, std::move(params), std::move(table)) {
  router_.set_message_handler([this](const gossipsub::GsMessage& msg) {
    if (handler_) handler_(msg.topic, msg.data);
  });
}

void WakuRelay::subscribe(const gossipsub::TopicId& topic, PayloadHandler handler) {
  handler_ = std::move(handler);
  router_.subscribe(topic);
}

void WakuRelay::unsubscribe(const gossipsub::TopicId& topic) {
  router_.unsubscribe(topic);
}

gossipsub::MessageId WakuRelay::publish(const gossipsub::TopicId& topic,
                                        util::Bytes payload, bool apply_validator) {
  return router_.publish(topic, std::move(payload), apply_validator);
}

}  // namespace wakurln::waku
