#include "waku/group_sync.h"

namespace wakurln::waku {

GroupSync::GroupSync(eth::Chain& chain, std::size_t tree_depth) : group_(tree_depth) {
  chain.subscribe_events(
      [this](const eth::ContractEvent& ev, const eth::Block&) { on_event(ev); });
}

void GroupSync::on_event(const eth::ContractEvent& event) {
  if (const auto* reg = std::get_if<eth::MemberRegistered>(&event)) {
    group_.add_member(reg->pk);
    ++stats_.registrations_applied;
    ++stats_.root_updates;
    stats_.sync_bytes += kEventWireBytes;
  } else if (const auto* slashed = std::get_if<eth::MemberSlashed>(&event)) {
    ++stats_.slashes_applied;
    stats_.sync_bytes += kEventWireBytes;
    if (group_.is_active(slashed->index)) {
      group_.remove_member(slashed->index);
      ++stats_.root_updates;
    }
  }
}

}  // namespace wakurln::waku
