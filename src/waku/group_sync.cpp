#include "waku/group_sync.h"

namespace wakurln::waku {

GroupSync::GroupSync(eth::Chain& chain, std::size_t tree_depth, bool batch_appends)
    : group_(tree_depth), batch_appends_(batch_appends) {
  note_root();  // r_0: the empty tree
  chain.subscribe_events(
      [this](const eth::ContractEvent& ev, const eth::Block&) { on_event(ev); });
  if (batch_appends_) {
    chain.subscribe_blocks([this](const eth::Block&) { flush_pending(); });
  }
}

void GroupSync::on_event(const eth::ContractEvent& event) {
  if (const auto* reg = std::get_if<eth::MemberRegistered>(&event)) {
    if (batch_appends_) {
      // Stats count at event time, exactly as the scalar path does; the
      // tree mutation and the root-history entry land at flush time in
      // the same order. Appending a non-zero leaf always moves the root.
      pending_pks_.push_back(reg->pk);
      ++stats_.registrations_applied;
      ++stats_.root_updates;
      stats_.sync_bytes += kEventWireBytes;
      return;
    }
    group_.add_member(reg->pk);
    ++stats_.registrations_applied;
    ++stats_.root_updates;
    stats_.sync_bytes += kEventWireBytes;
    note_root();
  } else if (const auto* slashed = std::get_if<eth::MemberSlashed>(&event)) {
    // A slash reads (and edits) current membership: apply everything
    // buffered ahead of it first.
    flush_pending();
    ++stats_.slashes_applied;
    stats_.sync_bytes += kEventWireBytes;
    if (group_.is_active(slashed->index)) {
      group_.remove_member(slashed->index);
      ++stats_.root_updates;
    }
    note_root();
  }
}

void GroupSync::flush_pending() {
  if (pending_pks_.empty()) return;
  pending_roots_.resize(pending_pks_.size());
  group_.add_members(pending_pks_, pending_roots_);
  for (const field::Fr& root : pending_roots_) {
    note_root_value(root);
  }
  pending_pks_.clear();
}

void GroupSync::note_root() {
  note_root_value(group_.root());
}

void GroupSync::note_root_value(const field::Fr& root) {
  if (!root_history_.empty() && root_history_.back() == root) return;
  root_history_.push_back(root);
  while (root_history_.size() > kMaxRootHistory) {
    root_history_.pop_front();
    ++roots_dropped_;
  }
}

bool GroupSync::root_in_window(const field::Fr& root,
                               std::uint64_t first_index) const {
  // Scan newest-first; stop once past the window's oldest entry. Windows
  // are <= kMaxRootHistory (relay ctor check), so the whole window is in
  // the retained suffix and the scan is bounded by the window length.
  std::uint64_t idx = total_roots();
  for (auto it = root_history_.rbegin(); it != root_history_.rend(); ++it) {
    --idx;
    if (idx < first_index) return false;
    if (*it == root) return true;
  }
  return false;
}

}  // namespace wakurln::waku
