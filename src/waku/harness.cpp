#include "waku/harness.h"

#include <algorithm>

#include "obs/tracer.h"
#include "sim/topology.h"

namespace wakurln::waku {

SimHarness::SimHarness(HarnessConfig config)
    : config_(config),
      rng_(config.seed),
      scheduler_(config.world_threads, config.node_count),
      network_(scheduler_, rng_, config.link),
      chain_(config.chain) {
  lane_deliveries_.resize(scheduler_.lane_count());
  eth::MembershipConfig mcfg;
  mcfg.tree_depth = config_.rln.tree_depth;
  mcfg.stake_wei = config_.stake_wei;
  mcfg.burn_fraction = config_.burn_fraction;
  contract_ = std::make_unique<eth::RegistryListContract>(chain_, mcfg);
  crs_ = zksnark::MockGroth16::setup(config_.rln.tree_depth, rng_);

  // One group-sync service for the whole world: every peer's tree view is
  // deterministically identical (see group_sync.h), so each contract
  // event is hashed into the Merkle tree once instead of node_count times.
  sync_ = std::make_shared<GroupSync>(chain_, config_.rln.tree_depth,
                                      config_.rln.batch_crypto);
  const auto& sync = sync_;

  // World-shared immutable state, one copy regardless of node count: the
  // validator context (CRS + verifier + nullifier record store) and the
  // router's parameter block + interned topic table. Each relay below
  // holds shared_ptr handles into these instead of private copies.
  ctx_ = RlnValidatorContext::make(crs_, config_.rln.messages_per_epoch);
  gossip_params_ = std::make_shared<const gossipsub::GossipSubParams>(config_.gossip);
  topic_table_ = std::make_shared<gossipsub::TopicTable>();

  std::vector<sim::NodeId> ids;
  ids.reserve(config_.node_count);
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    const sim::NodeId id = network_.add_node({});
    ids.push_back(id);
    relays_.push_back(
        std::make_unique<WakuRelay>(id, network_, gossip_params_, topic_table_));
    chain_.ledger().mint(account_of(i), config_.initial_balance_wei);
    nodes_.push_back(std::make_unique<WakuRlnRelay>(
        *relays_.back(), chain_, *contract_, zksnark::KeyPair{}, account_of(i),
        config_.rln, util::Rng(rng_.next_u64()), sync, ctx_));
  }
  sim::DegreeBias bias;
  bias.extra_links = config_.degree_boost_links;
  bias.nodes.reserve(config_.degree_boost_nodes.size());
  for (const std::size_t i : config_.degree_boost_nodes) bias.nodes.push_back(ids.at(i));
  sim::build_topology(network_, ids, config_.topology, config_.extra_links_per_node,
                      config_.erdos_renyi_p, rng_, bias);
  if (config_.link_profile == sim::LinkProfile::kGeo) {
    sim::apply_geo_latency(network_, ids, config_.link);
  }
  for (auto& r : relays_) r->start();

  // Block mining as a first-class periodic timer: one stored callback,
  // re-armed by the engine after each block (no per-block lambda churn).
  const sim::TimeUs block_us = chain_.config().block_time_seconds * sim::kUsPerSecond;
  mine_timer_ = scheduler_.schedule_periodic(block_us, block_us, [this] {
    chain_.mine_block(scheduler_.now() / sim::kUsPerSecond);
  });
}

void SimHarness::subscribe_all(const gossipsub::TopicId& topic) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->subscribe(topic, [this, i](const gossipsub::TopicId&,
                                          const util::SharedBytes& payload) {
      // Record into the executing lane's private log, keyed by the event
      // stamp — deliveries() merges the logs back into serial order.
      lane_deliveries_[scheduler_.current_lane()].emplace_back(
          scheduler_.current_stamp(), Delivery{i, payload, scheduler_.now()});
      if (tracer_ != nullptr) {
        tracer_->instant("deliver", scheduler_.now(),
                         static_cast<std::uint32_t>(i));
      }
    });
  }
}

void SimHarness::register_all() {
  for (auto& n : nodes_) n->request_registration();
  run_seconds(chain_.config().block_time_seconds + 3);
}

void SimHarness::register_nodes(std::span<const std::size_t> indices) {
  for (const std::size_t i : indices) nodes_.at(i)->request_registration();
  run_seconds(chain_.config().block_time_seconds + 3);
}

void SimHarness::run_seconds(std::uint64_t seconds) {
  scheduler_.run_for(seconds * sim::kUsPerSecond);
}

void SimHarness::run_ms(std::uint64_t ms) {
  scheduler_.run_for(ms * sim::kUsPerMs);
}

const std::vector<SimHarness::Delivery>& SimHarness::deliveries() const {
  // Fold the per-lane logs into the merged history. Every unfolded entry
  // carries a stamp no older than anything already folded (folds happen
  // between runs, and stamps are monotone within a run), so sorting the
  // fresh tail and appending preserves global stamp order.
  std::size_t fresh = 0;
  for (const auto& lane : lane_deliveries_) fresh += lane.size();
  if (fresh == 0) return deliveries_;
  std::vector<std::pair<sim::Scheduler::Stamp, Delivery>> tail;
  tail.reserve(fresh);
  for (auto& lane : lane_deliveries_) {
    for (auto& entry : lane) tail.push_back(std::move(entry));
    lane.clear();
  }
  std::stable_sort(tail.begin(), tail.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  deliveries_.reserve(deliveries_.size() + tail.size());
  for (auto& entry : tail) deliveries_.push_back(std::move(entry.second));
  return deliveries_;
}

void SimHarness::clear_deliveries() {
  deliveries_.clear();
  for (auto& lane : lane_deliveries_) lane.clear();
}

std::size_t SimHarness::nodes_delivered(const util::Bytes& payload) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::size_t count = 0;
  for (const Delivery& d : deliveries()) {
    if (d.payload == payload && !seen[d.node_index]) {
      seen[d.node_index] = true;
      ++count;
    }
  }
  return count;
}

void SimHarness::attach_observability(obs::Registry& reg, obs::Tracer* tracer) {
  tracer_ = tracer;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->set_tracer(tracer, static_cast<std::uint32_t>(i));
    relays_[i]->router().set_tracer(tracer);
  }
  network_.instrument(reg);
  if (!reg.enabled()) return;

  // Pull probes, registered in a fixed order (= time-series column order).
  // Every value below is a pure function of the simulated workload, so the
  // sampled rows stay byte-identical across seeds-in-parallel runs.
  reg.probe("delivered_total",
            [this] { return static_cast<double>(deliveries().size()); });
  reg.probe("rln_accepted", [this] {
    return static_cast<double>(aggregate_stats().accepted);
  });
  reg.probe("rln_double_signals", [this] {
    return static_cast<double>(aggregate_stats().double_signals);
  });
  reg.probe("rln_slashes_submitted", [this] {
    return static_cast<double>(aggregate_stats().slashes_submitted);
  });
  reg.probe("proof_verifications", [this] {
    return static_cast<double>(aggregate_stats().proof_verifications);
  });
  reg.probe("proof_cache_hits", [this] {
    return static_cast<double>(aggregate_stats().proof_cache_hits);
  });
  reg.probe("proof_cache_hit_rate", [this] {
    const auto s = aggregate_stats();
    const std::uint64_t lookups = s.proof_verifications + s.proof_cache_hits;
    return lookups == 0 ? 0.0
                        : static_cast<double>(s.proof_cache_hits) /
                              static_cast<double>(lookups);
  });
  reg.probe("group_root_updates", [this] {
    return static_cast<double>(sync_->stats().root_updates);
  });
  reg.probe("group_sync_bytes", [this] {
    return static_cast<double>(sync_->stats().sync_bytes);
  });
  reg.probe("eth_stake_burnt_wei", [this] {
    return static_cast<double>(chain_.ledger().burnt_total());
  });
  reg.probe("scheduler_queue",
            [this] { return static_cast<double>(scheduler_.pending()); });
  reg.probe("scheduler_queue_peak", [this] {
    return static_cast<double>(scheduler_.stats().peak_pending);
  });
  reg.probe("nullifier_bytes_total", [this] {
    // Per-node membership views plus the shared record arena, once.
    std::size_t total = ctx_->memory_bytes();
    for (const auto& n : nodes_) total += n->nullifier_map_bytes();
    return static_cast<double>(total);
  });
  reg.probe("mem_router_bytes", [this] {
    // Per-node routing state plus the shared parameter block and topic
    // table, once.
    std::size_t total = router_shared_bytes();
    for (const auto& r : relays_) total += r->router().memory_bytes();
    return static_cast<double>(total);
  });
  reg.probe("mem_mcache_bytes", [this] {
    std::size_t total = 0;
    for (const auto& r : relays_) total += r->router().mcache().memory_bytes();
    return static_cast<double>(total);
  });
  reg.probe("mem_merkle_bytes",
            [this] { return static_cast<double>(sync_->memory_bytes()); });
  reg.probe("mem_event_pool_bytes", [this] {
    return static_cast<double>(scheduler_.memory_bytes());
  });
  reg.probe("mem_network_bytes", [this] {
    return static_cast<double>(network_.memory_bytes());
  });
  reg.probe("net_frames_sent", [this] {
    return static_cast<double>(network_.stats().frames_sent);
  });
  reg.probe("net_bytes_sent", [this] {
    return static_cast<double>(network_.stats().bytes_sent);
  });
}

WakuRlnRelay::Stats SimHarness::aggregate_stats() const {
  WakuRlnRelay::Stats total;
  for (const auto& n : nodes_) {
    const auto& s = n->stats();
    total.published += s.published;
    total.accepted += s.accepted;
    total.invalid_envelope += s.invalid_envelope;
    total.invalid_epoch += s.invalid_epoch;
    total.invalid_slot += s.invalid_slot;
    total.unknown_root += s.unknown_root;
    total.invalid_proof += s.invalid_proof;
    total.duplicates += s.duplicates;
    total.double_signals += s.double_signals;
    total.slashes_submitted += s.slashes_submitted;
    total.proof_verifications += s.proof_verifications;
    total.proof_cache_hits += s.proof_cache_hits;
  }
  return total;
}

}  // namespace wakurln::waku
