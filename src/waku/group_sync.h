#pragma once
// Membership group sync as a standalone service: one chain subscriber
// applying MemberRegistered / MemberSlashed events to one Merkle tree.
//
// Every honest peer deterministically applies the same contract events in
// the same order, so all per-peer trees in one simulated world are
// bit-identical at every instant. Peers of one SimHarness therefore share
// a single GroupSync (10k peers hash each registration once, not 10k
// times — the dedup that makes 10k-node campaigns tractable), while a
// standalone WakuRlnRelay creates a private one, preserving the paper's
// "every peer maintains the tree itself" model at the protocol level.

#include <memory>

#include "eth/chain.h"
#include "rln/group.h"

namespace wakurln::waku {

class GroupSync {
 public:
  /// Subscribes to `chain` events immediately; construct before any relay
  /// that reads the group, so membership updates land first.
  GroupSync(eth::Chain& chain, std::size_t tree_depth);

  const rln::RlnGroup& group() const { return group_; }

 private:
  void on_event(const eth::ContractEvent& event);

  rln::RlnGroup group_;
};

}  // namespace wakurln::waku
