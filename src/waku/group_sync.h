#pragma once
// Membership group sync as a standalone service: one chain subscriber
// applying MemberRegistered / MemberSlashed events to one Merkle tree.
//
// Every honest peer deterministically applies the same contract events in
// the same order, so all per-peer trees in one simulated world are
// bit-identical at every instant. Peers of one SimHarness therefore share
// a single GroupSync (10k peers hash each registration once, not 10k
// times — the dedup that makes 10k-node campaigns tractable), while a
// standalone WakuRlnRelay creates a private one, preserving the paper's
// "every peer maintains the tree itself" model at the protocol level.
//
// The service counts what registration-storm scenarios stress: events
// applied, root updates, and the modeled wire bytes a peer downloads to
// stay synced (each event carries a 32-byte identity commitment plus an
// 8-byte member index). The counters are pure functions of the chain's
// event stream — deterministic, safe to put in campaign reports.

#include <memory>

#include "eth/chain.h"
#include "rln/group.h"

namespace wakurln::waku {

class GroupSync {
 public:
  /// Modeled wire size of one membership event: 32-byte pk commitment +
  /// 8-byte index (registration), or 32-byte revealed sk + 8-byte index
  /// (slash). Both event kinds cost the same on the wire.
  static constexpr std::uint64_t kEventWireBytes = 40;

  /// Deterministic sync-churn counters (see file comment).
  struct Stats {
    std::uint64_t registrations_applied = 0;
    std::uint64_t slashes_applied = 0;
    /// Tree mutations that changed the root (a slash of an
    /// already-removed member applies no mutation).
    std::uint64_t root_updates = 0;
    /// Modeled bytes one peer downloads to apply the event stream.
    std::uint64_t sync_bytes = 0;
  };

  /// Subscribes to `chain` events immediately; construct before any relay
  /// that reads the group, so membership updates land first.
  GroupSync(eth::Chain& chain, std::size_t tree_depth);

  const rln::RlnGroup& group() const { return group_; }
  const Stats& stats() const { return stats_; }

  /// Resident bytes of the synced membership view (the Merkle tree and
  /// its pk index dominate; see rln::RlnGroup::memory_bytes).
  std::size_t memory_bytes() const { return group_.memory_bytes() + sizeof(Stats); }

 private:
  void on_event(const eth::ContractEvent& event);

  rln::RlnGroup group_;
  Stats stats_;
};

}  // namespace wakurln::waku
