#pragma once
// Membership group sync as a standalone service: one chain subscriber
// applying MemberRegistered / MemberSlashed events to one Merkle tree.
//
// Every honest peer deterministically applies the same contract events in
// the same order, so all per-peer trees in one simulated world are
// bit-identical at every instant. Peers of one SimHarness therefore share
// a single GroupSync (10k peers hash each registration once, not 10k
// times — the dedup that makes 10k-node campaigns tractable), while a
// standalone WakuRlnRelay creates a private one, preserving the paper's
// "every peer maintains the tree itself" model at the protocol level.
//
// The service counts what registration-storm scenarios stress: events
// applied, root updates, and the modeled wire bytes a peer downloads to
// stay synced (each event carries a 32-byte identity commitment plus an
// 8-byte member index). The counters are pure functions of the chain's
// event stream — deterministic, safe to put in campaign reports.

#include <deque>
#include <memory>
#include <vector>

#include "eth/chain.h"
#include "rln/group.h"

namespace wakurln::waku {

class GroupSync {
 public:
  /// Modeled wire size of one membership event: 32-byte pk commitment +
  /// 8-byte index (registration), or 32-byte revealed sk + 8-byte index
  /// (slash). Both event kinds cost the same on the wire.
  static constexpr std::uint64_t kEventWireBytes = 40;

  /// How many recent distinct roots the shared history retains. Bounds
  /// every relay's acceptable-root window (checked in the relay ctor).
  static constexpr std::size_t kMaxRootHistory = 64;

  /// Deterministic sync-churn counters (see file comment).
  struct Stats {
    std::uint64_t registrations_applied = 0;
    std::uint64_t slashes_applied = 0;
    /// Tree mutations that changed the root (a slash of an
    /// already-removed member applies no mutation).
    std::uint64_t root_updates = 0;
    /// Modeled bytes one peer downloads to apply the event stream.
    std::uint64_t sync_bytes = 0;
  };

  /// Subscribes to `chain` events immediately; construct before any relay
  /// that reads the group, so membership updates land first.
  ///
  /// With `batch_appends` (the default), registrations arriving within
  /// one block are buffered and applied through the tree's amortised
  /// batch append when the block seals (or earlier, the moment a slash
  /// needs the up-to-date membership). Every per-registration root still
  /// enters the history in order and all stats count identically, so
  /// the externally observable state between blocks — and hence every
  /// scenario report byte — is identical to per-event application; only
  /// the Poseidon work inside a registration-heavy block is amortised.
  GroupSync(eth::Chain& chain, std::size_t tree_depth,
            bool batch_appends = true);

  const rln::RlnGroup& group() const { return group_; }
  const Stats& stats() const { return stats_; }

  // -- shared root history ----------------------------------------------
  // The distinct-root sequence r_0 (initial empty tree), r_1, ... is the
  // same for every peer of a world, so the per-relay acceptable-root
  // deques of the old design were n copies of overlapping suffixes of it.
  // The history lives here once; each relay keeps only the absolute index
  // the sequence had when it was constructed (its "floor") and asks for
  // membership in [max(floor, total - window), total).

  /// Distinct roots ever produced, including the initial one.
  std::uint64_t total_roots() const {
    return roots_dropped_ + root_history_.size();
  }
  /// Absolute index of the current root in the distinct-root sequence.
  std::uint64_t current_root_index() const { return total_roots() - 1; }

  /// True iff `root` appears in the distinct-root sequence at an absolute
  /// index in [first_index, total_roots()). first_index must be within
  /// the retained kMaxRootHistory suffix.
  bool root_in_window(const field::Fr& root, std::uint64_t first_index) const;

  /// Resident bytes of the synced membership view (the Merkle tree and
  /// its pk index dominate; see rln::RlnGroup::memory_bytes) plus the
  /// shared root history.
  std::size_t memory_bytes() const {
    return group_.memory_bytes() + sizeof(Stats) +
           root_history_.size() * sizeof(field::Fr);
  }

 private:
  void on_event(const eth::ContractEvent& event);
  /// Applies the buffered registrations in one batch append.
  void flush_pending();
  /// Appends the current root to the history if it changed.
  void note_root();
  /// Appends `root` to the history if it changed.
  void note_root_value(const field::Fr& root);

  rln::RlnGroup group_;
  Stats stats_;
  bool batch_appends_;
  /// Registrations buffered since the last flush (batch mode only).
  std::vector<field::Fr> pending_pks_;
  std::vector<field::Fr> pending_roots_;
  /// Consecutive-deduplicated recent roots, newest at the back.
  std::deque<field::Fr> root_history_;
  /// Roots aged out of the front of root_history_.
  std::uint64_t roots_dropped_ = 0;
};

}  // namespace wakurln::waku
