#pragma once
// WAKU-RELAY (paper §I): an anonymous gossip-based Pub/Sub layer over
// GossipSub. Sender anonymity comes from what the envelope does *not*
// contain — no digital signature, no peer id, no sequence number — and
// receiver anonymity from the gossip routing itself. This wrapper exposes
// a payload-only publish/subscribe API and keeps the underlying router
// config anonymity-preserving (content-addressed message ids).

#include <functional>
#include <memory>

#include "gossipsub/router.h"

namespace wakurln::waku {

class WakuRelay {
 public:
  /// Payloads are handed to the application as zero-copy shared views.
  using PayloadHandler =
      std::function<void(const gossipsub::TopicId&, const util::SharedBytes&)>;

  WakuRelay(sim::NodeId self, sim::Network& network,
            gossipsub::GossipSubParams params = {});

  /// World-shared router state (parameter block + topic table), so a
  /// 250k-node harness carries one copy of each instead of one per node.
  WakuRelay(sim::NodeId self, sim::Network& network,
            std::shared_ptr<const gossipsub::GossipSubParams> params,
            std::shared_ptr<gossipsub::TopicTable> table);

  sim::NodeId id() const { return router_.id(); }

  /// Registers network callbacks and starts heartbeats.
  void start() { router_.start(); }

  /// Subscribes and delivers raw payloads to `handler`.
  void subscribe(const gossipsub::TopicId& topic, PayloadHandler handler);

  void unsubscribe(const gossipsub::TopicId& topic);

  /// Publishes an anonymous payload (no PII is attached at any layer).
  /// `apply_validator = false` models a modified client skipping its own
  /// topic validation (see GossipSubRouter::publish).
  gossipsub::MessageId publish(const gossipsub::TopicId& topic, util::Bytes payload,
                               bool apply_validator = true);

  /// Underlying router, for validators and introspection.
  gossipsub::GossipSubRouter& router() { return router_; }
  const gossipsub::GossipSubRouter& router() const { return router_; }

 private:
  gossipsub::GossipSubRouter router_;
  PayloadHandler handler_;
};

}  // namespace wakurln::waku
