#pragma once
// Turn-key simulated deployment of WAKU-RLN-RELAY: one chain, one
// membership contract, N peers with relays on a random-but-connected
// topology, and block mining driven by the simulated clock. This is the
// top-level entry point examples, benches and integration studies build
// on — "give me a working network in five lines".

#include <memory>
#include <span>
#include <vector>

#include "eth/membership_contract.h"
#include "obs/registry.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "sim/topology.h"
#include "waku/relay.h"
#include "waku/rln_relay.h"

namespace wakurln::obs {
class Tracer;
}

namespace wakurln::waku {

struct HarnessConfig {
  std::size_t node_count = 10;
  /// Scheduler shards executing the world (sim/scheduler.h). 1 = the
  /// serial engine; N > 1 partitions the nodes across N worker threads
  /// with conservative window synchronisation — every deterministic
  /// output stays byte-identical to the serial run. Worlds that attach a
  /// Tracer must stay at 1 (the tracer is not shard-aware).
  unsigned world_threads = 1;
  WakuRlnConfig rln;
  eth::Chain::Config chain;
  sim::LinkParams link;
  gossipsub::GossipSubParams gossip;
  /// Stake per membership (forwarded into the contract config).
  std::uint64_t stake_wei = 1'000'000;
  double burn_fraction = 0.5;
  /// Overlay family the peers are wired into.
  sim::TopologyKind topology = sim::TopologyKind::kRingPlusRandom;
  /// Random chords per node on top of the base ring (kRingPlusRandom).
  std::size_t extra_links_per_node = 3;
  /// Pairwise edge probability (kErdosRenyi).
  double erdos_renyi_p = 0.3;
  /// kGeo derives per-link latency from region pairs (sim/topology.h).
  sim::LinkProfile link_profile = sim::LinkProfile::kUniform;
  /// Node indices whose overlay degree is biased upward at build time:
  /// each gets degree_boost_links extra random chords through the
  /// sim::build_topology bias hook (sybil high-degree observer
  /// placement). Empty = the unbiased build, byte-identical to before.
  std::vector<std::size_t> degree_boost_nodes;
  std::size_t degree_boost_links = 0;
  std::uint64_t seed = 42;
  std::uint64_t initial_balance_wei = 100'000'000;

  static HarnessConfig defaults() {
    HarnessConfig cfg;
    cfg.rln.tree_depth = 12;
    cfg.link.base_latency = 30 * sim::kUsPerMs;
    cfg.link.jitter = 20 * sim::kUsPerMs;
    return cfg;
  }
};

class SimHarness {
 public:
  /// One observed application-level delivery. The payload is a shared
  /// view of the message buffer — recording 10k deliveries of one
  /// message costs 10k views, not 10k copies.
  struct Delivery {
    std::size_t node_index;
    util::SharedBytes payload;
    sim::TimeUs at;
  };

  explicit SimHarness(HarnessConfig config);

  std::size_t size() const { return nodes_.size(); }
  WakuRlnRelay& node(std::size_t i) { return *nodes_.at(i); }
  WakuRelay& relay(std::size_t i) { return *relays_.at(i); }
  eth::Address account_of(std::size_t i) const { return 10'000 + i; }

  eth::Chain& chain() { return chain_; }
  eth::MembershipContract& contract() { return *contract_; }
  /// The world's shared membership sync (churn counters live here).
  const GroupSync& group_sync() const { return *sync_; }
  /// The world's shared immutable validator state (CRS + verifier +
  /// nullifier record store) — one copy for all peers.
  const std::shared_ptr<const RlnValidatorContext>& validator_context() const {
    return ctx_;
  }
  /// Bytes of the world-shared router state (gossipsub parameter block +
  /// interned topic table) — counted once per world, never per node.
  std::size_t router_shared_bytes() const {
    return sizeof(gossipsub::GossipSubParams) + topic_table_->memory_bytes();
  }
  sim::Scheduler& scheduler() { return scheduler_; }
  sim::Network& network() { return network_; }
  util::Rng& rng() { return rng_; }
  const zksnark::KeyPair& crs() const { return crs_; }
  const HarnessConfig& config() const { return config_; }

  /// Subscribes every node to `topic`, recording deliveries.
  void subscribe_all(const gossipsub::TopicId& topic);

  /// Registers every node and mines the confirmations.
  void register_all();

  /// Registers only the given node indices and mines the confirmations —
  /// large worlds register their publishers while the remaining nodes
  /// stay pure (validating, unregistered) relays.
  void register_nodes(std::span<const std::size_t> indices);

  /// Advances the simulated world.
  void run_seconds(std::uint64_t seconds);
  void run_ms(std::uint64_t ms);

  /// All recorded deliveries in event-stamp order — the exact order the
  /// serial engine would have produced, regardless of world_threads
  /// (per-lane logs are merged deterministically on read).
  const std::vector<Delivery>& deliveries() const;
  void clear_deliveries();

  /// Number of distinct nodes that delivered `payload`.
  std::size_t nodes_delivered(const util::Bytes& payload) const;

  /// Aggregated stats across all nodes.
  WakuRlnRelay::Stats aggregate_stats() const;

  /// Wires the observability layer into the world: registers the
  /// network's push instruments and the harness pull probes (delivery,
  /// RLN acceptance/slashing, proof-cache hit rate, group-sync churn,
  /// scheduler queue, per-subsystem memory) on `reg` in a fixed order,
  /// and attaches `tracer` (may be nullptr) to every relay and router so
  /// publish/forward/verify/cache-hit/deliver/drop events are recorded.
  /// A disabled registry keeps everything inert. Call once, after
  /// construction and before driving traffic.
  void attach_observability(obs::Registry& reg, obs::Tracer* tracer);

 private:
  HarnessConfig config_;
  util::Rng rng_;
  sim::Scheduler scheduler_;
  sim::Network network_;
  eth::Chain chain_;
  std::unique_ptr<eth::RegistryListContract> contract_;
  std::shared_ptr<GroupSync> sync_;
  zksnark::KeyPair crs_;
  std::shared_ptr<const RlnValidatorContext> ctx_;
  std::shared_ptr<const gossipsub::GossipSubParams> gossip_params_;
  std::shared_ptr<gossipsub::TopicTable> topic_table_;
  std::vector<std::unique_ptr<WakuRelay>> relays_;
  std::vector<std::unique_ptr<WakuRlnRelay>> nodes_;
  /// Delivery records land in the recording node's lane log (workers
  /// never touch a shared vector); deliveries() folds the lane logs into
  /// deliveries_ in stamp order. Stamps only ever grow between folds, so
  /// the fold appends — earlier merged entries never reorder.
  mutable std::vector<Delivery> deliveries_;
  mutable std::vector<std::vector<std::pair<sim::Scheduler::Stamp, Delivery>>>
      lane_deliveries_;
  sim::TimerHandle mine_timer_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace wakurln::waku
