#pragma once
// WAKU-RLN-RELAY — the paper's contribution (§III): WAKU-RELAY extended
// with RLN so each group member may publish at most one message per epoch.
//
// Per peer this class wires together:
//   * registration        — stake + pk to the membership contract
//   * group sync          — Merkle tree maintained from contract events
//                           (a GroupSync service, shareable across the
//                           peers of one simulated world), with an
//                           acceptable-root window
//   * rate-limited publish — RLN signal attached to every message
//   * routing validation  — proof check, epoch window (Thr = D/T),
//                           nullifier-map double-signal detection, and a
//                           message-id-keyed proof-result cache so IWANT
//                           re-deliveries and gossip duplicates skip the
//                           repeat zkSNARK verification
//   * slashing            — reconstructed sk submitted to the contract;
//                           the slasher earns the reward share

#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "eth/membership_contract.h"
#include "rln/epoch.h"
#include "rln/group.h"
#include "rln/identity.h"
#include "rln/nullifier_map.h"
#include "rln/prover.h"
#include "waku/group_sync.h"
#include "waku/relay.h"
#include "zksnark/batch_verifier.h"

namespace wakurln::obs {
class Tracer;
}

namespace wakurln::waku {

/// Immutable validation state every pure relay of a world shares: the CRS,
/// one verifier built from it, and the world's nullifier record store.
/// The old design gave each node a private copy of all three; one context
/// per world is what lets a 250k-node harness hold a single CRS and a
/// single deduplicated record arena. A relay constructed without a
/// context builds a private one from its own CRS copy.
struct RlnValidatorContext {
  zksnark::KeyPair crs;
  rln::RlnVerifier verifier;
  std::shared_ptr<rln::NullifierStore> store;

  static std::shared_ptr<const RlnValidatorContext> make(
      zksnark::KeyPair crs, std::uint64_t messages_per_epoch);

  /// Modeled resident bytes of the shared state (the record store
  /// dominates) — counted once per world by the harness.
  std::size_t memory_bytes() const {
    return sizeof(RlnValidatorContext) + store->memory_bytes();
  }
};

struct WakuRlnConfig {
  /// Membership tree depth (must match the proof-system setup).
  std::size_t tree_depth = 20;
  /// Epoch length T in seconds (paper §III).
  std::uint64_t epoch_period_seconds = 10;
  /// Maximum network delay D in seconds; Thr = ceil(D/T).
  std::uint64_t max_delay_seconds = 20;
  /// How many recent roots a router accepts (tolerates peers proving
  /// against a slightly stale tree during group sync).
  std::size_t acceptable_root_window = 5;
  /// Automatically submit slashing transactions on double-signals.
  bool auto_slash = true;
  /// Keep nullifier records for max(Thr,1)*this epochs before pruning.
  std::uint64_t nullifier_retention_factor = 2;
  /// Messages each member may publish per epoch. 1 is the paper's scheme;
  /// k > 1 is the RLN-v2-style rate extension: each (epoch, slot) pair is
  /// an independent external nullifier, so slot reuse still leaks the key.
  std::uint64_t messages_per_epoch = 1;
  /// Capacity of the proof-result cache (message ids; FIFO eviction;
  /// 0 disables). Cheap insurance: a re-delivered message (late IWANT
  /// after seen-cache expiry) reuses its zkSNARK verdict.
  std::size_t proof_cache_entries = 4096;
  /// Batched crypto hot path: registrations flush through the Merkle
  /// batch append at block seals, proofs verify through the
  /// allocation-free PreparedVerifier, and a modeled batch-verification
  /// queue amortises pairing cost. Verdicts stay synchronous and every
  /// deterministic report byte is identical either way (pinned by
  /// tests/report_pins_test.cpp); off = the scalar reference paths.
  bool batch_crypto = true;
  /// Queue size at which the modeled batch verifier auto-drains (it also
  /// drains every epoch). Only meaningful with batch_crypto.
  std::size_t batch_verify_watermark = 64;
};

class WakuRlnRelay {
 public:
  enum class PublishOutcome {
    kPublished,
    kNotRegistered,   ///< no confirmed membership yet
    kRateLimited,     ///< already published in this epoch (honest client stop)
    kProofFailed,     ///< local state inconsistent with the group
  };

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t accepted = 0;           ///< valid messages delivered/relayed
    std::uint64_t invalid_envelope = 0;   ///< unparseable data
    std::uint64_t invalid_epoch = 0;      ///< outside Thr window
    std::uint64_t invalid_slot = 0;       ///< message index beyond the rate
    std::uint64_t unknown_root = 0;       ///< not in the acceptable-root window
    std::uint64_t invalid_proof = 0;
    std::uint64_t duplicates = 0;         ///< same share seen again
    std::uint64_t double_signals = 0;     ///< rate violations detected
    std::uint64_t slashes_submitted = 0;  ///< slash txs sent to the contract
    std::uint64_t proof_verifications = 0;  ///< zkSNARK verify calls made
    std::uint64_t proof_cache_hits = 0;     ///< verify calls saved by the cache
  };

  using PayloadHandler =
      std::function<void(const gossipsub::TopicId&, const util::SharedBytes&)>;

  /// `group_sync` may be shared across the peers of one simulated world
  /// (their views are deterministically identical — see group_sync.h);
  /// nullptr creates a private sync. Likewise `ctx` shares the immutable
  /// validator state (CRS + verifier + nullifier record store); nullptr
  /// builds a private context from `crs` (which is ignored when a shared
  /// context is supplied).
  WakuRlnRelay(WakuRelay& relay, eth::Chain& chain,
               eth::MembershipContract& contract, zksnark::KeyPair crs,
               eth::Address account, WakuRlnConfig config, util::Rng rng,
               std::shared_ptr<GroupSync> group_sync = nullptr,
               std::shared_ptr<const RlnValidatorContext> ctx = nullptr);

  // -- membership -------------------------------------------------------
  /// Submits the staking registration transaction; membership becomes
  /// active once the event fires (next mined block).
  std::uint64_t request_registration();
  bool is_registered() const { return own_index_.has_value(); }
  const rln::Identity& identity() const { return identity_; }
  eth::Address account() const { return account_; }

  // -- messaging ----------------------------------------------------------
  /// Subscribes to `topic` with RLN validation installed on the route.
  void subscribe(const gossipsub::TopicId& topic, PayloadHandler handler);

  /// Rate-limited publish (honest client: refuses a second message in the
  /// same epoch locally).
  PublishOutcome publish(const gossipsub::TopicId& topic, const util::Bytes& payload);

  /// Publishes *without* the local rate check — simulates a misbehaving
  /// client; the network detects the double-signal and slashes.
  PublishOutcome publish_unchecked(const gossipsub::TopicId& topic,
                                   const util::Bytes& payload);

  // -- introspection ------------------------------------------------------
  const rln::RlnGroup& group() const { return sync_->group(); }
  const Stats& stats() const { return stats_; }
  std::uint64_t current_epoch() const;
  const rln::EpochScheme& epoch_scheme() const { return epochs_; }
  /// Per-node nullifier view bytes; the shared record store is accounted
  /// once per world via validator_context()->memory_bytes().
  std::size_t nullifier_map_bytes() const { return nullifier_map_.memory_bytes(); }
  const std::shared_ptr<const RlnValidatorContext>& validator_context() const {
    return ctx_;
  }
  /// The modeled batch-verification queue (nullptr when batch_crypto is
  /// off). Its stats are deterministic but not part of scenario reports.
  const zksnark::BatchVerifier* batch_verifier() const {
    return batch_verifier_.get();
  }

  /// Attaches the message-lifecycle tracer (nullptr detaches). `track` is
  /// the trace track (= node index) this relay's publish / verify /
  /// cache-hit / drop events land on.
  void set_tracer(obs::Tracer* tracer, std::uint32_t track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

  /// The RLN wire envelope: var(signal) || var(payload).
  static util::Bytes encode_envelope(const rln::RlnSignal& signal,
                                     const util::Bytes& payload);
  static std::optional<std::pair<rln::RlnSignal, util::Bytes>> decode_envelope(
      std::span<const std::uint8_t> data);
  /// Zero-copy variant: the returned payload is a slice sharing `data`'s
  /// buffer (no allocation on the validation hot path).
  static std::optional<std::pair<rln::RlnSignal, util::SharedBytes>> decode_envelope(
      const util::SharedBytes& data);

 private:
  std::uint64_t now_seconds() const;
  sim::TimeUs now_us() const;
  /// Records a validation-drop instant ("drop", args.msg = reason).
  void trace_drop(const char* reason);
  PublishOutcome do_publish(const gossipsub::TopicId& topic,
                            const util::Bytes& payload, bool enforce_rate_limit);
  gossipsub::Validation validate(sim::NodeId source, const gossipsub::GsMessage& msg);
  /// One zkSNARK verification: prepared path + modeled queue in batched
  /// mode, the scalar reference verifier otherwise. Verdicts identical.
  bool verify_proof(std::span<const std::uint8_t> payload,
                    const rln::RlnSignal& signal);
  bool verify_proof_cached(const gossipsub::MessageId& id,
                           std::span<const std::uint8_t> payload,
                           const rln::RlnSignal& signal);
  void on_chain_event(const eth::ContractEvent& event);
  void submit_slash(const field::Fr& sk);
  bool root_acceptable(const field::Fr& root) const;
  void schedule_nullifier_gc();

  WakuRelay& relay_;
  eth::Chain& chain_;
  eth::MembershipContract& contract_;
  eth::Address account_;
  WakuRlnConfig config_;
  util::Rng rng_;

  rln::Identity identity_;
  rln::EpochScheme epochs_;
  std::shared_ptr<GroupSync> sync_;
  std::shared_ptr<const RlnValidatorContext> ctx_;  ///< world-shared
  rln::NullifierMap nullifier_map_;
  /// Built from the shared CRS on first publish: pure relays (the vast
  /// majority of a large world) never pay for a prover.
  std::unique_ptr<rln::RlnProver> prover_;
  /// Modeled amortised-verification queue (batch_crypto only).
  std::unique_ptr<zksnark::BatchVerifier> batch_verifier_;

  std::optional<std::uint64_t> own_index_;
  std::uint64_t publish_epoch_ = 0;       ///< epoch the counter refers to
  std::uint64_t published_in_epoch_ = 0;  ///< honest messages sent this epoch
  /// Absolute index the shared distinct-root sequence had when this relay
  /// was constructed; roots older than this were never in our window.
  std::uint64_t root_floor_ = 0;
  std::unordered_map<field::Fr, bool, field::FrHash> slash_submitted_;
  /// Proof verdicts by message id, FIFO-bounded at proof_cache_entries.
  std::unordered_map<gossipsub::MessageId, bool, gossipsub::MessageIdHash> proof_cache_;
  std::deque<gossipsub::MessageId> proof_cache_order_;
  PayloadHandler handler_;
  Stats stats_;
  sim::TimerHandle gc_timer_;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t trace_track_ = 0;
};

}  // namespace wakurln::waku
