#include "zksnark/rln_circuit.h"

#include "hash/poseidon.h"
#include "hash/sha256.h"
#include "util/serde.h"

namespace wakurln::zksnark {

using field::Fr;

util::Bytes RlnPublicInputs::serialize() const {
  util::ByteWriter w;
  for (const Fr* f : {&root, &epoch, &x, &y, &nullifier}) {
    const auto b = f->to_bytes_be();
    w.put_raw(b);
  }
  return w.take();
}

bool RlnCircuit::satisfied(const RlnWitness& witness, const RlnPublicInputs& pub) {
  // 1. identity commitment + 2. membership
  const Fr pk = hash::poseidon_hash1(witness.sk);
  if (!merkle::MerkleTree::verify(pub.root, pk, witness.path)) return false;
  // 3. per-epoch slope
  const Fr a1 = hash::poseidon_hash2(witness.sk, pub.epoch);
  // 4. share correctness
  if (pub.y != witness.sk + a1 * pub.x) return false;
  // 5. nullifier correctness
  return pub.nullifier == hash::poseidon_hash1(a1);
}

std::size_t RlnCircuit::constraint_count(std::size_t tree_depth) {
  constexpr std::size_t kPoseidonConstraints = 240;  // t=3 instance
  constexpr std::size_t kFixedPart = 750;            // identity + share + nullifier
  constexpr std::size_t kPerLevelSelector = 3;
  return kFixedPart + tree_depth * (kPoseidonConstraints + kPerLevelSelector);
}

field::Fr RlnCircuit::message_to_x(std::span<const std::uint8_t> payload) {
  return Fr::from_bytes_be(hash::Sha256::digest(payload));
}

}  // namespace wakurln::zksnark
