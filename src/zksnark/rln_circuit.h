#pragma once
// The RLN relation (the "circuit", paper §II): a signal is valid iff the
// prover knows a secret key sk and a Merkle path such that
//
//   pk        = H(sk)                  (identity commitment)
//   root      = MerkleRoot(pk, path)   (membership)
//   a1        = H(sk, epoch)           (per-epoch line slope)
//   y         = sk + a1 * x            (Shamir share correctness)
//   nullifier = H(a1)                  (internal nullifier correctness)
//
// where (root, epoch, x, y, nullifier) are public and (sk, path) private.
// This relation is evaluated for real by both the mock prover (refusing to
// prove unsatisfied witnesses) and by tests; only the zero-knowledge
// wrapper around it is simulated (see DESIGN.md §2).

#include <cstdint>

#include "field/fr.h"
#include "merkle/merkle_tree.h"
#include "util/bytes.h"

namespace wakurln::zksnark {

/// Public inputs of the RLN relation.
struct RlnPublicInputs {
  field::Fr root;       ///< membership tree root
  field::Fr epoch;      ///< external nullifier (epoch) as a field element
  field::Fr x;          ///< H(message) — the share's evaluation point
  field::Fr y;          ///< share value A(x)
  field::Fr nullifier;  ///< internal nullifier φ = H(H(sk, epoch))

  /// Canonical byte serialisation (proof binding and transcripts).
  util::Bytes serialize() const;

  bool operator==(const RlnPublicInputs&) const = default;
};

/// Private witness of the RLN relation.
struct RlnWitness {
  field::Fr sk;              ///< member secret key
  merkle::MerkleProof path;  ///< membership path for pk = H(sk)
};

/// Evaluates the relation. Cheap enough to run per message in simulation.
class RlnCircuit {
 public:
  /// Identifier baked into keys and proofs (a circuit-specific CRS).
  static constexpr const char* kCircuitId = "wakurln.rln.v1";

  /// True iff (witness, public) satisfy all five constraints above.
  static bool satisfied(const RlnWitness& witness, const RlnPublicInputs& pub);

  /// Modelled R1CS constraint count for a tree of the given depth. Anchored
  /// to public RLN circuit sizes: each Merkle level costs one Poseidon
  /// (~240 constraints) plus selector logic; the identity/nullifier/share
  /// fixed part is ~750 constraints.
  static std::size_t constraint_count(std::size_t tree_depth);

  /// Derives the share's evaluation point x = H(m) from raw payload bytes
  /// (byte-level hash lifted into the field, as in RLN implementations).
  static field::Fr message_to_x(std::span<const std::uint8_t> payload);
};

}  // namespace wakurln::zksnark
