#include "zksnark/cost_model.h"

#include "zksnark/rln_circuit.h"

namespace wakurln::zksnark {

const DeviceProfile& DeviceProfile::iphone8() {
  static const DeviceProfile p{"iphone8", 1.0, 2.0e6};
  return p;
}

const DeviceProfile& DeviceProfile::laptop() {
  static const DeviceProfile p{"laptop", 0.35, 1.2e7};
  return p;
}

const DeviceProfile& DeviceProfile::server() {
  static const DeviceProfile p{"server", 0.15, 4.0e7};
  return p;
}

const DeviceProfile& DeviceProfile::gpu_rig() {
  // An attacker's GPU rig grinds byte hashes vastly faster than phones —
  // the asymmetry that breaks PoW-based spam pricing (§I).
  static const DeviceProfile p{"gpu_rig", 0.10, 5.0e9};
  return p;
}

const std::vector<DeviceProfile>& DeviceProfile::all() {
  static const std::vector<DeviceProfile> v{iphone8(), laptop(), server(), gpu_rig()};
  return v;
}

double CostModel::prove_ms(std::size_t tree_depth, const DeviceProfile& device) {
  const double anchor_ms = 500.0;  // iPhone 8, depth 32 (paper §IV)
  const double ratio = static_cast<double>(RlnCircuit::constraint_count(tree_depth)) /
                       static_cast<double>(RlnCircuit::constraint_count(32));
  return anchor_ms * ratio * device.snark_scale;
}

double CostModel::verify_ms(const DeviceProfile& device) {
  return 30.0 * device.snark_scale;
}

double CostModel::batch_verify_ms(std::size_t n, const DeviceProfile& device) {
  if (n == 0) return 0.0;
  constexpr double kMarginalFactor = 0.35;
  return verify_ms(device) * (1.0 + kMarginalFactor * static_cast<double>(n - 1));
}

}  // namespace wakurln::zksnark
