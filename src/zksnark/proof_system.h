#pragma once
// Groth16-shaped proof system for the RLN relation.
//
// Substitution (DESIGN.md §2): the paper uses Groth16 over BN254 via the
// kilic/rln Rust library. We reproduce the *interface and observable
// behaviour* of Groth16 — one-time setup emitting a multi-megabyte proving
// key and a small verifying key, constant 128-byte proofs, constant-time
// verification, and a prover that only succeeds on witnesses satisfying the
// relation — while replacing the pairing-based argument with a keyed-hash
// binding (designated-verifier argument). Within the simulated system no
// party holds the setup secret except through the key objects, so proofs
// cannot be forged for unsatisfied statements, preserving the soundness
// behaviour every experiment relies on.

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "hash/sha256.h"
#include "util/rng.h"
#include "zksnark/rln_circuit.h"

namespace wakurln::zksnark {

/// Constant-size proof, matching Groth16's 2·G1 + G2 compressed encoding.
struct Proof {
  static constexpr std::size_t kSize = 128;
  std::array<std::uint8_t, kSize> bytes{};

  bool operator==(const Proof&) const = default;
};

/// Proving key: large, member-held artefact (paper: ≈3.89 MB).
struct ProvingKey {
  std::string circuit_id;
  std::size_t tree_depth = 0;
  /// Setup secret shared with the verifying key (simulated CRS trapdoor).
  std::array<std::uint8_t, 32> binding_secret{};
  /// Modelled on-disk size of a real Groth16 proving key for this circuit.
  std::size_t simulated_size_bytes = 0;
};

/// Verifying key: small artefact distributed to every routing peer.
struct VerifyingKey {
  std::string circuit_id;
  std::size_t tree_depth = 0;
  std::array<std::uint8_t, 32> binding_secret{};
  std::size_t simulated_size_bytes = 0;
};

struct KeyPair {
  ProvingKey pk;
  VerifyingKey vk;
};

/// Groth16-shaped prover/verifier for the RLN relation.
class MockGroth16 {
 public:
  /// One-time circuit setup for a given membership-tree depth.
  static KeyPair setup(std::size_t tree_depth, util::Rng& rng);

  /// Produces a proof iff the witness satisfies the RLN relation for `pub`
  /// and the path depth matches the circuit; nullopt otherwise. Proofs are
  /// salted: proving the same statement twice yields different bytes
  /// (zero-knowledge re-randomisation behaviour).
  static std::optional<Proof> prove(const ProvingKey& pk, const RlnWitness& witness,
                                    const RlnPublicInputs& pub, util::Rng& rng);

  /// Constant-time acceptance check of `proof` against the public inputs.
  static bool verify(const VerifyingKey& vk, const Proof& proof,
                     const RlnPublicInputs& pub);

  /// Modelled proving-key size for a depth-d circuit, anchored to the
  /// paper's 3.89 MB figure.
  static std::size_t modelled_proving_key_bytes(std::size_t tree_depth);
};

/// Allocation-free verifier for one verifying key. Precomputes the HMAC
/// ipad/opad midstates and the constant transcript prefix (circuit id +
/// depth) once, then each verify() resumes from the cached state and
/// serialises the varying parts (salt, public inputs) into stack
/// buffers — no ByteWriter heap traffic on the validation hot path.
/// Replays the exact MockGroth16::verify byte transcript, so verdicts
/// are bit-equal (pinned by tests/zksnark_test.cpp). Verify is const and
/// copies the midstates per call: safe to share across a world's relays.
class PreparedVerifier {
 public:
  explicit PreparedVerifier(const VerifyingKey& vk);

  /// Same verdict as MockGroth16::verify(vk, proof, pub).
  bool verify(const Proof& proof, const RlnPublicInputs& pub) const;

 private:
  hash::Sha256 inner_midstate_;  ///< ipad block + constant transcript prefix
  hash::Sha256 outer_midstate_;  ///< opad block
};

}  // namespace wakurln::zksnark
