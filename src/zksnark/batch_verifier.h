#pragma once
// Modeled amortised proof-verification queue — the batch-verification
// mode production RLN deployments run: routing peers collect incoming
// proofs and verify them in one pairing-amortised pass per epoch (or
// when a size watermark fills) instead of paying a full multi-pairing
// per message.
//
// In this simulation, message verdicts must stay synchronous — gossipsub
// validation decides forwarding immediately, and deferring verdicts
// would change message propagation (and hence report bytes). So the
// relay still verifies every proof as it arrives (through the
// allocation-free PreparedVerifier), and this queue amortises only the
// *modeled* pairing cost: enqueue() counts a verification into the open
// batch; a drain charges CostModel::batch_verify_ms for the whole batch
// against the n * verify_ms a scalar verifier would have paid. All
// counters are pure functions of the enqueue/drain call sequence —
// deterministic, but kept out of scenario report serialisation.

#include <cstddef>
#include <cstdint>

#include "zksnark/cost_model.h"

namespace wakurln::zksnark {

class BatchVerifier {
 public:
  enum class DrainReason {
    kWatermark,      ///< the open batch reached the size watermark
    kEpochBoundary,  ///< periodic per-epoch drain
    kFlush,          ///< explicit flush (shutdown / tests)
  };

  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t drains = 0;
    std::uint64_t watermark_drains = 0;
    std::uint64_t epoch_drains = 0;
    std::uint64_t flush_drains = 0;
    std::uint64_t largest_batch = 0;
    /// Modeled cost of everything drained so far: what a scalar verifier
    /// would pay vs. the amortised batch passes.
    double modeled_scalar_ms = 0.0;
    double modeled_batched_ms = 0.0;
  };

  /// `watermark` proofs auto-drain the queue (0 = drain only on
  /// epoch/flush). The device profile scales the modeled latencies.
  explicit BatchVerifier(std::size_t watermark,
                         const DeviceProfile& device = DeviceProfile::laptop());

  /// Counts one verification into the open batch; auto-drains when the
  /// watermark fills.
  void enqueue();

  /// Drains the open batch (no-op when empty).
  void drain(DrainReason reason);

  std::size_t pending() const { return pending_; }
  std::size_t watermark() const { return watermark_; }
  const Stats& stats() const { return stats_; }

  /// Modeled amortisation over everything drained so far:
  /// scalar_ms / batched_ms (1.0 while nothing has drained).
  double modeled_speedup() const;

 private:
  std::size_t watermark_;
  DeviceProfile device_;
  std::size_t pending_ = 0;
  Stats stats_;
};

}  // namespace wakurln::zksnark
