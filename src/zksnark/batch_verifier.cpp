#include "zksnark/batch_verifier.h"

#include <algorithm>

namespace wakurln::zksnark {

BatchVerifier::BatchVerifier(std::size_t watermark, const DeviceProfile& device)
    : watermark_(watermark), device_(device) {}

void BatchVerifier::enqueue() {
  ++stats_.enqueued;
  ++pending_;
  if (watermark_ > 0 && pending_ >= watermark_) {
    drain(DrainReason::kWatermark);
  }
}

void BatchVerifier::drain(DrainReason reason) {
  if (pending_ == 0) return;
  ++stats_.drains;
  switch (reason) {
    case DrainReason::kWatermark:
      ++stats_.watermark_drains;
      break;
    case DrainReason::kEpochBoundary:
      ++stats_.epoch_drains;
      break;
    case DrainReason::kFlush:
      ++stats_.flush_drains;
      break;
  }
  stats_.largest_batch = std::max<std::uint64_t>(stats_.largest_batch, pending_);
  stats_.modeled_scalar_ms +=
      static_cast<double>(pending_) * CostModel::verify_ms(device_);
  stats_.modeled_batched_ms += CostModel::batch_verify_ms(pending_, device_);
  pending_ = 0;
}

double BatchVerifier::modeled_speedup() const {
  if (stats_.modeled_batched_ms <= 0.0) return 1.0;
  return stats_.modeled_scalar_ms / stats_.modeled_batched_ms;
}

}  // namespace wakurln::zksnark
