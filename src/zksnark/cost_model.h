#pragma once
// Cost model reproducing the paper's §IV timing/size claims on modelled
// device classes. The mock backend's measured times reflect the *shape* of
// the real system (prove grows with tree depth, verify is flat); this model
// supplies the *absolute* numbers the paper reports so benches can print
// paper-anchored values next to measured ones, clearly labelled.
//
// Anchors (paper §IV): proof generation ≈0.5 s for a group of size 2^32 on
// an iPhone 8; proof verification ≈30 ms, constant; 32 B keys; ≈3.89 MB
// prover key.

#include <cstddef>
#include <string>
#include <vector>

namespace wakurln::zksnark {

/// Relative compute capability of a device class (iPhone 8 == 1.0).
struct DeviceProfile {
  std::string name;
  /// Multiplier on SNARK prove/verify latency (lower = faster device).
  double snark_scale = 1.0;
  /// SHA-256 hash throughput, used by the PoW baseline comparison.
  double hashes_per_second = 0;

  static const DeviceProfile& iphone8();
  static const DeviceProfile& laptop();
  static const DeviceProfile& server();
  static const DeviceProfile& gpu_rig();
  static const std::vector<DeviceProfile>& all();
};

/// Modelled Groth16 latencies for the RLN circuit.
class CostModel {
 public:
  /// Proving latency in ms for a depth-`tree_depth` circuit on `device`.
  /// Linear in the constraint count, anchored at 500 ms for depth 32 on
  /// the iPhone 8.
  static double prove_ms(std::size_t tree_depth, const DeviceProfile& device);

  /// Verification latency in ms: constant 30 ms (× device scale),
  /// independent of depth and group size.
  static double verify_ms(const DeviceProfile& device);

  /// Modelled latency of verifying `n` queued proofs in one amortised
  /// pass (random-linear-combination Groth16 batch verification: one
  /// shared pairing product plus a cheap marginal term per extra proof).
  /// batch_verify_ms(1) == verify_ms; the marginal factor is 0.35, so a
  /// drained batch of 64 models a ~2.8x amortisation. Deterministic —
  /// safe to gate in CI.
  static double batch_verify_ms(std::size_t n, const DeviceProfile& device);
};

}  // namespace wakurln::zksnark
