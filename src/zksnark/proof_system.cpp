#include "zksnark/proof_system.h"

#include <algorithm>

#include "hash/sha256.h"
#include "util/serde.h"

namespace wakurln::zksnark {

namespace {

// MAC transcript: circuit_id || depth || salt || public inputs.
hash::Digest binding_tag(const std::array<std::uint8_t, 32>& secret,
                         const std::string& circuit_id, std::size_t depth,
                         std::span<const std::uint8_t> salt,
                         const RlnPublicInputs& pub) {
  util::ByteWriter w;
  w.put_var(util::to_bytes(circuit_id));
  w.put_u64(depth);
  w.put_raw(salt);
  w.put_raw(pub.serialize());
  return hash::hmac_sha256(secret, w.data());
}

// Deterministically expands a 32-byte tag to fill the Groth16-sized proof.
void expand_tag(const hash::Digest& tag, std::span<std::uint8_t> out) {
  std::uint8_t counter = 0;
  std::size_t written = 0;
  while (written < out.size()) {
    util::ByteWriter w;
    w.put_raw(tag);
    w.put_u8(counter++);
    const hash::Digest block = hash::Sha256::digest(w.data());
    const std::size_t take = std::min(block.size(), out.size() - written);
    std::copy_n(block.begin(), take, out.begin() + written);
    written += take;
  }
}

}  // namespace

KeyPair MockGroth16::setup(std::size_t tree_depth, util::Rng& rng) {
  KeyPair keys;
  keys.pk.circuit_id = RlnCircuit::kCircuitId;
  keys.pk.tree_depth = tree_depth;
  rng.fill(keys.pk.binding_secret);
  keys.pk.simulated_size_bytes = modelled_proving_key_bytes(tree_depth);

  keys.vk.circuit_id = keys.pk.circuit_id;
  keys.vk.tree_depth = tree_depth;
  keys.vk.binding_secret = keys.pk.binding_secret;
  // Groth16 verifying keys are a handful of curve points plus one point per
  // public input: 5 public inputs here.
  keys.vk.simulated_size_bytes = 7 * 64 + 5 * 64;
  return keys;
}

std::optional<Proof> MockGroth16::prove(const ProvingKey& pk, const RlnWitness& witness,
                                        const RlnPublicInputs& pub, util::Rng& rng) {
  if (witness.path.depth() != pk.tree_depth) return std::nullopt;
  if (!RlnCircuit::satisfied(witness, pub)) return std::nullopt;

  Proof proof;
  auto salt = std::span<std::uint8_t>(proof.bytes).first(32);
  rng.fill(salt);
  const hash::Digest tag =
      binding_tag(pk.binding_secret, pk.circuit_id, pk.tree_depth, salt, pub);
  std::copy(tag.begin(), tag.end(), proof.bytes.begin() + 32);
  expand_tag(tag, std::span<std::uint8_t>(proof.bytes).subspan(64));
  return proof;
}

bool MockGroth16::verify(const VerifyingKey& vk, const Proof& proof,
                         const RlnPublicInputs& pub) {
  const auto salt = std::span<const std::uint8_t>(proof.bytes).first(32);
  const hash::Digest tag =
      binding_tag(vk.binding_secret, vk.circuit_id, vk.tree_depth, salt, pub);
  if (!util::equal_ct(tag, std::span<const std::uint8_t>(proof.bytes).subspan(32, 32))) {
    return false;
  }
  std::array<std::uint8_t, Proof::kSize - 64> expansion{};
  expand_tag(tag, expansion);
  return util::equal_ct(expansion, std::span<const std::uint8_t>(proof.bytes).subspan(64));
}

PreparedVerifier::PreparedVerifier(const VerifyingKey& vk) {
  // HMAC key schedule, mirroring hash::hmac_sha256 for a 32-byte key.
  std::array<std::uint8_t, 64> ipad{};
  std::array<std::uint8_t, 64> opad{};
  for (std::size_t i = 0; i < vk.binding_secret.size(); ++i) {
    ipad[i] = vk.binding_secret[i];
    opad[i] = vk.binding_secret[i];
  }
  for (int i = 0; i < 64; ++i) {
    ipad[static_cast<std::size_t>(i)] ^= 0x36;
    opad[static_cast<std::size_t>(i)] ^= 0x5c;
  }
  inner_midstate_.update(ipad);
  outer_midstate_.update(opad);
  // Constant transcript prefix: var(circuit_id) || u64(depth). One-time
  // setup, so the ByteWriter allocation here is fine.
  util::ByteWriter w;
  w.put_var(util::to_bytes(vk.circuit_id));
  w.put_u64(vk.tree_depth);
  inner_midstate_.update(w.data());
}

bool PreparedVerifier::verify(const Proof& proof, const RlnPublicInputs& pub) const {
  const auto salt = std::span<const std::uint8_t>(proof.bytes).first(32);
  // Stack serialisation of the public inputs (RlnPublicInputs::serialize
  // layout: five 32-byte big-endian field elements).
  std::array<std::uint8_t, 5 * field::Fr::kByteSize> pub_bytes;
  std::size_t off = 0;
  for (const field::Fr* f : {&pub.root, &pub.epoch, &pub.x, &pub.y, &pub.nullifier}) {
    const auto b = f->to_bytes_be();
    std::copy(b.begin(), b.end(), pub_bytes.begin() + off);
    off += b.size();
  }

  hash::Sha256 inner = inner_midstate_;
  inner.update(salt);
  inner.update(pub_bytes);
  const hash::Digest inner_digest = inner.finalize();
  hash::Sha256 outer = outer_midstate_;
  outer.update(inner_digest);
  const hash::Digest tag = outer.finalize();

  if (!util::equal_ct(tag, std::span<const std::uint8_t>(proof.bytes).subspan(32, 32))) {
    return false;
  }
  // expand_tag without the per-block ByteWriter: SHA(tag || counter).
  std::array<std::uint8_t, 33> block_in;
  std::copy(tag.begin(), tag.end(), block_in.begin());
  std::array<std::uint8_t, Proof::kSize - 64> expansion{};
  std::uint8_t counter = 0;
  std::size_t written = 0;
  while (written < expansion.size()) {
    block_in[32] = counter++;
    const hash::Digest block = hash::Sha256::digest(block_in);
    const std::size_t take = std::min(block.size(), expansion.size() - written);
    std::copy_n(block.begin(), take, expansion.begin() + written);
    written += take;
  }
  return util::equal_ct(expansion, std::span<const std::uint8_t>(proof.bytes).subspan(64));
}

std::size_t MockGroth16::modelled_proving_key_bytes(std::size_t tree_depth) {
  // Calibrated so that the depth-20 circuit matches the paper's 3.89 MB.
  const double per_constraint =
      3.89e6 / static_cast<double>(RlnCircuit::constraint_count(20));
  return static_cast<std::size_t>(per_constraint *
                                  static_cast<double>(RlnCircuit::constraint_count(tree_depth)));
}

}  // namespace wakurln::zksnark
