#include "shamir/shamir.h"

namespace wakurln::shamir {

using field::Fr;

Share make_share(const Fr& sk, const Fr& a1, const Fr& x) {
  return Share{x, sk + a1 * x};
}

std::optional<Fr> reconstruct(const Share& s1, const Share& s2) {
  if (s1.x == s2.x) return std::nullopt;
  // Lagrange at X=0 for a line: sk = (y1*x2 - y2*x1) / (x2 - x1).
  const Fr denom = (s2.x - s1.x).inverse();
  return (s1.y * s2.x - s2.y * s1.x) * denom;
}

std::optional<Fr> recover_slope(const Share& s1, const Share& s2) {
  if (s1.x == s2.x) return std::nullopt;
  return (s2.y - s1.y) * (s2.x - s1.x).inverse();
}

}  // namespace wakurln::shamir
