#pragma once
// Degree-1 Shamir secret sharing over the BN254 scalar field — the `[sk]`
// component of every RLN signal (paper §II).
//
// The dealer's polynomial is the line A(X) = sk + a1·X where
// a1 = H(sk, external_nullifier). A signal for message m reveals the single
// evaluation point (x, y) = (H(m), A(x)). One point reveals nothing about
// the intercept sk; two points with distinct x from the same epoch lie on
// the same line and reconstruct sk — the slashing mechanism.

#include <optional>

#include "field/fr.h"

namespace wakurln::shamir {

/// One evaluation point of the dealer line.
struct Share {
  field::Fr x;
  field::Fr y;

  bool operator==(const Share&) const = default;
};

/// Evaluates y = sk + a1 * x.
Share make_share(const field::Fr& sk, const field::Fr& a1, const field::Fr& x);

/// Reconstructs the intercept (sk) from two points on the same line.
/// Returns nullopt when the shares have equal x (the same message twice —
/// a gossip duplicate, not a rate violation).
std::optional<field::Fr> reconstruct(const Share& s1, const Share& s2);

/// Recovers the slope a1 from two points (used in tests and forensics).
std::optional<field::Fr> recover_slope(const Share& s1, const Share& s2);

}  // namespace wakurln::shamir
