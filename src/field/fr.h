#pragma once
// Prime-field arithmetic over the BN254 (alt_bn128) scalar field
//
//   r = 21888242871839275222246405745257275088548364400416034343698204186575808495617
//     = 0x30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001
//
// This is the field used by the RLN construction of the paper (Poseidon
// hashing, Shamir shares, Merkle tree nodes, zkSNARK public inputs).
// Elements are stored in Montgomery form (R = 2^256) with CIOS
// multiplication; all operations are branch-light and allocation-free.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "util/rng.h"

namespace wakurln::field {

/// An element of the BN254 scalar field, stored in Montgomery form.
class Fr {
 public:
  /// Number of 64-bit limbs.
  static constexpr int kLimbs = 4;
  /// Canonical serialised size in bytes.
  static constexpr std::size_t kByteSize = 32;

  /// Zero element.
  constexpr Fr() : limbs_{0, 0, 0, 0} {}

  static Fr zero() { return Fr(); }
  static Fr one();

  /// Lifts a machine word into the field.
  static Fr from_u64(std::uint64_t v);

  /// Interprets 32 big-endian bytes as an integer and reduces mod r.
  static Fr from_bytes_be(std::span<const std::uint8_t> bytes);

  /// Strict parse: rejects values >= r. Returns nullopt if non-canonical.
  static std::optional<Fr> from_bytes_canonical(std::span<const std::uint8_t> bytes);

  /// Uniformly random element (rejection-sampled).
  static Fr random(util::Rng& rng);

  /// The field modulus as big-endian bytes (for documentation/tests).
  static std::array<std::uint8_t, kByteSize> modulus_bytes_be();

  Fr operator+(const Fr& o) const;
  Fr operator-(const Fr& o) const;
  Fr operator*(const Fr& o) const;
  Fr operator-() const;
  Fr& operator+=(const Fr& o) { return *this = *this + o; }
  Fr& operator-=(const Fr& o) { return *this = *this - o; }
  Fr& operator*=(const Fr& o) { return *this = *this * o; }

  Fr square() const;

  /// Modular exponentiation by a 256-bit exponent given as 4 LE limbs.
  Fr pow(const std::array<std::uint64_t, 4>& exp_limbs) const;
  Fr pow(std::uint64_t exp) const;

  /// Multiplicative inverse via Fermat (a^(r-2)). Requires !is_zero().
  Fr inverse() const;

  /// Element-wise products: out[i] = a[i] * b[i]. Runs four independent
  /// CIOS kernels interleaved for instruction-level parallelism; each
  /// lane executes exactly the scalar operator* schedule, so every
  /// output is bit-identical to a[i] * b[i]. out[i] may alias a[i] or
  /// b[i] (but distinct outputs must not overlap distinct inputs).
  static void mul_batch(std::span<const Fr> a, std::span<const Fr> b,
                        std::span<Fr> out);

  /// Element-wise squares: out[i] = a[i].square(), batched as mul_batch.
  static void square_batch(std::span<const Fr> a, std::span<Fr> out);

  /// Fused 3x3 matrix-vector product: out[i] = m[i][0]*v[0] + m[i][1]*v[1]
  /// + m[i][2]*v[2], each row accumulated as full 512-bit products with a
  /// single Montgomery reduction at the end (the FrAcc schedule), and the
  /// three independent row chains interleaved for instruction-level
  /// parallelism. Every row is bit-identical to the FrAcc add_mul/reduce
  /// sequence — and hence to the scalar mul/add chain — because all three
  /// are equal mod r and stored canonically. `out` must not alias `v`.
  /// This is the MDS-mix kernel of the batched Poseidon permutation.
  static void mat3_mul_fused(const std::array<std::array<Fr, 3>, 3>& m,
                             const std::array<Fr, 3>& v, std::array<Fr, 3>& out);

  /// In-place Montgomery batch inversion: one Fermat inversion plus
  /// 3(n-1) multiplications instead of n inversions. The inverse of a
  /// unit is unique mod r and elements are stored canonically, so each
  /// result is bit-identical to the per-element inverse(). Throws
  /// std::domain_error if any element is zero (matching inverse()),
  /// leaving the span unmodified.
  static void batch_inverse(std::span<Fr> xs);

  bool is_zero() const;
  bool operator==(const Fr& o) const { return limbs_ == o.limbs_; }
  bool operator!=(const Fr& o) const { return !(*this == o); }

  /// Canonical big-endian serialisation (value < r).
  std::array<std::uint8_t, kByteSize> to_bytes_be() const;

  /// Hex string of the canonical value (for logs and goldens).
  std::string to_hex() const;

  /// Stable 64-bit hash of the element (for unordered containers).
  std::uint64_t hash64() const;

  /// Raw Montgomery limbs (tests only).
  const std::array<std::uint64_t, 4>& raw_limbs() const { return limbs_; }

 private:
  explicit constexpr Fr(const std::array<std::uint64_t, 4>& limbs) : limbs_(limbs) {}

  friend struct FrDetail;  // implementation access (fr.cpp)
  friend class FrAcc;

  std::array<std::uint64_t, 4> limbs_;
};

/// Fused multiply-accumulate over Fr. Accumulates full 512-bit products
/// a*b into a double-width register and performs one Montgomery
/// reduction at the end, instead of one interleaved reduction per
/// product. Because sum(mont_mul(a_i, b_i)) mod r equals
/// REDC(sum(a_i * b_i)) and both sides are stored canonically, reduce()
/// is bit-identical to the chain of scalar multiply-adds it replaces.
///
/// Capacity: at most kMaxTerms products per reduction — 16 * r^2 is
/// about 2^511.2, still inside the 512-bit accumulator, while 32 terms
/// would overflow (r is about 2^253.6).
class FrAcc {
 public:
  static constexpr int kMaxTerms = 16;

  FrAcc() = default;

  /// acc += a * b (full product, no reduction).
  void add_mul(const Fr& a, const Fr& b);

  /// One Montgomery reduction of the accumulator to a canonical element.
  Fr reduce() const;

  void clear() {
    acc_ = {};
    terms_ = 0;
  }
  int terms() const { return terms_; }

 private:
  std::array<std::uint64_t, 8> acc_{};
  int terms_ = 0;
};

/// Hash functor so Fr can key unordered containers.
struct FrHash {
  std::size_t operator()(const Fr& f) const { return static_cast<std::size_t>(f.hash64()); }
};

}  // namespace wakurln::field
