#pragma once
// Prime-field arithmetic over the BN254 (alt_bn128) scalar field
//
//   r = 21888242871839275222246405745257275088548364400416034343698204186575808495617
//     = 0x30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001
//
// This is the field used by the RLN construction of the paper (Poseidon
// hashing, Shamir shares, Merkle tree nodes, zkSNARK public inputs).
// Elements are stored in Montgomery form (R = 2^256) with CIOS
// multiplication; all operations are branch-light and allocation-free.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "util/rng.h"

namespace wakurln::field {

/// An element of the BN254 scalar field, stored in Montgomery form.
class Fr {
 public:
  /// Number of 64-bit limbs.
  static constexpr int kLimbs = 4;
  /// Canonical serialised size in bytes.
  static constexpr std::size_t kByteSize = 32;

  /// Zero element.
  constexpr Fr() : limbs_{0, 0, 0, 0} {}

  static Fr zero() { return Fr(); }
  static Fr one();

  /// Lifts a machine word into the field.
  static Fr from_u64(std::uint64_t v);

  /// Interprets 32 big-endian bytes as an integer and reduces mod r.
  static Fr from_bytes_be(std::span<const std::uint8_t> bytes);

  /// Strict parse: rejects values >= r. Returns nullopt if non-canonical.
  static std::optional<Fr> from_bytes_canonical(std::span<const std::uint8_t> bytes);

  /// Uniformly random element (rejection-sampled).
  static Fr random(util::Rng& rng);

  /// The field modulus as big-endian bytes (for documentation/tests).
  static std::array<std::uint8_t, kByteSize> modulus_bytes_be();

  Fr operator+(const Fr& o) const;
  Fr operator-(const Fr& o) const;
  Fr operator*(const Fr& o) const;
  Fr operator-() const;
  Fr& operator+=(const Fr& o) { return *this = *this + o; }
  Fr& operator-=(const Fr& o) { return *this = *this - o; }
  Fr& operator*=(const Fr& o) { return *this = *this * o; }

  Fr square() const;

  /// Modular exponentiation by a 256-bit exponent given as 4 LE limbs.
  Fr pow(const std::array<std::uint64_t, 4>& exp_limbs) const;
  Fr pow(std::uint64_t exp) const;

  /// Multiplicative inverse via Fermat (a^(r-2)). Requires !is_zero().
  Fr inverse() const;

  bool is_zero() const;
  bool operator==(const Fr& o) const { return limbs_ == o.limbs_; }
  bool operator!=(const Fr& o) const { return !(*this == o); }

  /// Canonical big-endian serialisation (value < r).
  std::array<std::uint8_t, kByteSize> to_bytes_be() const;

  /// Hex string of the canonical value (for logs and goldens).
  std::string to_hex() const;

  /// Stable 64-bit hash of the element (for unordered containers).
  std::uint64_t hash64() const;

  /// Raw Montgomery limbs (tests only).
  const std::array<std::uint64_t, 4>& raw_limbs() const { return limbs_; }

 private:
  explicit constexpr Fr(const std::array<std::uint64_t, 4>& limbs) : limbs_(limbs) {}

  friend struct FrDetail;  // implementation access (fr.cpp)

  std::array<std::uint64_t, 4> limbs_;
};

/// Hash functor so Fr can key unordered containers.
struct FrHash {
  std::size_t operator()(const Fr& f) const { return static_cast<std::size_t>(f.hash64()); }
};

}  // namespace wakurln::field
