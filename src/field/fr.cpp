#include "field/fr.h"

#include <cassert>
#include <stdexcept>

#include "util/bytes.h"

namespace wakurln::field {

namespace {

using u64 = std::uint64_t;
// __int128 is a GCC/Clang extension; __extension__ keeps -Wpedantic quiet
// without disabling the diagnostic for anything else.
__extension__ typedef unsigned __int128 u128;
using Limbs = std::array<u64, 4>;

// BN254 scalar field modulus, little-endian limbs.
constexpr Limbs kModulus = {0x43e1f593f0000001ULL, 0x2833e84879b97091ULL,
                            0xb85045b68181585dULL, 0x30644e72e131a029ULL};

// -r^{-1} mod 2^64, computed at compile time by Newton iteration.
constexpr u64 compute_n0_inv() {
  u64 inv = 1;
  for (int i = 0; i < 6; ++i) {
    inv *= 2 - kModulus[0] * inv;
  }
  return ~inv + 1;  // negate mod 2^64
}
constexpr u64 kN0Inv = compute_n0_inv();

constexpr bool geq(const Limbs& a, const Limbs& b) {
  for (int i = 3; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

// a -= b, assuming a >= b.
constexpr void sub_in_place(Limbs& a, const Limbs& b) {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 d = static_cast<u128>(a[i]) - b[i] - borrow;
    a[i] = static_cast<u64>(d);
    borrow = static_cast<u64>((d >> 64) & 1);
  }
}

// a += a (doubling with reduction), used only for constant generation.
constexpr void double_mod(Limbs& a) {
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u64 hi = a[i] >> 63;
    a[i] = (a[i] << 1) | carry;
    carry = hi;
  }
  if (carry != 0 || geq(a, kModulus)) sub_in_place(a, kModulus);
}

// 2^512 mod r, for Montgomery conversion: to_mont(a) = mont_mul(a, R2).
constexpr Limbs compute_r2() {
  Limbs x = {1, 0, 0, 0};
  for (int i = 0; i < 512; ++i) double_mod(x);
  return x;
}
constexpr Limbs kR2 = compute_r2();

// 2^256 mod r == Montgomery form of 1.
constexpr Limbs compute_r1() {
  Limbs x = {1, 0, 0, 0};
  for (int i = 0; i < 256; ++i) double_mod(x);
  return x;
}
constexpr Limbs kOneMont = compute_r1();

// CIOS Montgomery multiplication: out = a * b * R^{-1} mod r.
// Inputs must be < r.
void mont_mul(const Limbs& a, const Limbs& b, Limbs& out) {
  u64 t[6] = {0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    // t += a * b[i]
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a[j]) * b[i] + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = cur >> 64;
    }
    u128 cur = static_cast<u128>(t[4]) + carry;
    t[4] = static_cast<u64>(cur);
    t[5] = static_cast<u64>(cur >> 64);

    // reduce: add m * r where m = t[0] * n0inv, then shift one limb
    const u64 m = t[0] * kN0Inv;
    cur = static_cast<u128>(t[0]) + static_cast<u128>(m) * kModulus[0];
    carry = cur >> 64;
    for (int j = 1; j < 4; ++j) {
      cur = static_cast<u128>(t[j]) + static_cast<u128>(m) * kModulus[j] + carry;
      t[j - 1] = static_cast<u64>(cur);
      carry = cur >> 64;
    }
    cur = static_cast<u128>(t[4]) + carry;
    t[3] = static_cast<u64>(cur);
    t[4] = t[5] + static_cast<u64>(cur >> 64);
  }
  Limbs r = {t[0], t[1], t[2], t[3]};
  if (t[4] != 0 || geq(r, kModulus)) sub_in_place(r, kModulus);
  out = r;
}

void add_mod(const Limbs& a, const Limbs& b, Limbs& out) {
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 s = static_cast<u128>(a[i]) + b[i] + carry;
    out[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  if (carry != 0 || geq(out, kModulus)) sub_in_place(out, kModulus);
}

void sub_mod(const Limbs& a, const Limbs& b, Limbs& out) {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 d = static_cast<u128>(a[i]) - b[i] - borrow;
    out[i] = static_cast<u64>(d);
    borrow = static_cast<u64>((d >> 64) & 1);
  }
  if (borrow != 0) {
    u64 carry = 0;
    for (int i = 0; i < 4; ++i) {
      const u128 s = static_cast<u128>(out[i]) + kModulus[i] + carry;
      out[i] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
  }
}

// Reduce an arbitrary 256-bit value (< 2^256) to canonical range [0, r).
// 2^256 / r < 6, so a handful of conditional subtractions suffice.
void reduce_canonical(Limbs& a) {
  while (geq(a, kModulus)) sub_in_place(a, kModulus);
}

Limbs bytes_be_to_limbs(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != Fr::kByteSize) {
    throw std::invalid_argument("Fr: expected 32 bytes");
  }
  Limbs out = {0, 0, 0, 0};
  for (int i = 0; i < 32; ++i) {
    out[3 - i / 8] |= static_cast<u64>(bytes[i]) << (8 * (7 - i % 8));
  }
  return out;
}

}  // namespace

// Friend of Fr: constructs elements directly from raw Montgomery limbs.
struct FrDetail {
  static Fr make(const Limbs& limbs) { return Fr(limbs); }
};

namespace {
using FrAccess = FrDetail;
}  // namespace

Fr Fr::one() {
  return FrAccess::make(kOneMont);
}

Fr Fr::from_u64(std::uint64_t v) {
  Limbs x = {v, 0, 0, 0};
  Limbs out;
  mont_mul(x, kR2, out);
  return FrAccess::make(out);
}

Fr Fr::from_bytes_be(std::span<const std::uint8_t> bytes) {
  Limbs x = bytes_be_to_limbs(bytes);
  reduce_canonical(x);
  Limbs out;
  mont_mul(x, kR2, out);
  return FrAccess::make(out);
}

std::optional<Fr> Fr::from_bytes_canonical(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kByteSize) return std::nullopt;
  Limbs x = bytes_be_to_limbs(bytes);
  if (geq(x, kModulus)) return std::nullopt;
  Limbs out;
  mont_mul(x, kR2, out);
  return FrAccess::make(out);
}

Fr Fr::random(util::Rng& rng) {
  // Rejection sampling on the top limb keeps the distribution uniform.
  while (true) {
    Limbs x;
    for (auto& l : x) l = rng.next_u64();
    x[3] &= (1ULL << 62) - 1;  // trim to < 2^254; modulus is ~2^253.5
    if (geq(x, kModulus)) continue;
    Limbs out;
    mont_mul(x, kR2, out);
    return FrAccess::make(out);
  }
}

std::array<std::uint8_t, Fr::kByteSize> Fr::modulus_bytes_be() {
  std::array<std::uint8_t, kByteSize> out{};
  for (int i = 0; i < 32; ++i) {
    out[i] = static_cast<std::uint8_t>(kModulus[3 - i / 8] >> (8 * (7 - i % 8)));
  }
  return out;
}

Fr Fr::operator+(const Fr& o) const {
  Limbs out;
  add_mod(limbs_, o.limbs_, out);
  return FrAccess::make(out);
}

Fr Fr::operator-(const Fr& o) const {
  Limbs out;
  sub_mod(limbs_, o.limbs_, out);
  return FrAccess::make(out);
}

Fr Fr::operator*(const Fr& o) const {
  Limbs out;
  mont_mul(limbs_, o.limbs_, out);
  return FrAccess::make(out);
}

Fr Fr::operator-() const {
  if (is_zero()) return *this;
  Limbs out = kModulus;
  sub_in_place(out, limbs_);
  return FrAccess::make(out);
}

Fr Fr::square() const {
  return *this * *this;
}

Fr Fr::pow(const std::array<std::uint64_t, 4>& exp_limbs) const {
  Fr result = Fr::one();
  Fr base = *this;
  bool started = false;
  for (int limb = 3; limb >= 0; --limb) {
    for (int bit = 63; bit >= 0; --bit) {
      if (started) result = result.square();
      if ((exp_limbs[limb] >> bit) & 1) {
        result = result * base;
        started = true;
      }
    }
  }
  return result;
}

Fr Fr::pow(std::uint64_t exp) const {
  return pow(std::array<std::uint64_t, 4>{exp, 0, 0, 0});
}

Fr Fr::inverse() const {
  if (is_zero()) {
    throw std::domain_error("Fr::inverse: zero has no inverse");
  }
  // Fermat: a^(r-2).
  Limbs e = kModulus;
  e[0] -= 2;  // r is odd and > 2, no borrow
  return pow(e);
}

bool Fr::is_zero() const {
  return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0;
}

std::array<std::uint8_t, Fr::kByteSize> Fr::to_bytes_be() const {
  // Convert out of Montgomery form: mont_mul(a, 1).
  Limbs one = {1, 0, 0, 0};
  Limbs canon;
  mont_mul(limbs_, one, canon);
  std::array<std::uint8_t, kByteSize> out{};
  for (int i = 0; i < 32; ++i) {
    out[i] = static_cast<std::uint8_t>(canon[3 - i / 8] >> (8 * (7 - i % 8)));
  }
  return out;
}

std::string Fr::to_hex() const {
  const auto b = to_bytes_be();
  return util::to_hex(b);
}

std::uint64_t Fr::hash64() const {
  // splitmix-style mixing over the Montgomery limbs (equality-compatible).
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const auto& l : limbs_) {
    std::uint64_t z = h ^ l;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = z ^ (z >> 31);
  }
  return h;
}

}  // namespace wakurln::field
