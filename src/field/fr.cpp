#include "field/fr.h"

#include <cassert>
#include <stdexcept>
#include <vector>

#include "util/bytes.h"
#include "util/check.h"

namespace wakurln::field {

namespace {

using u64 = std::uint64_t;
// __int128 is a GCC/Clang extension; __extension__ keeps -Wpedantic quiet
// without disabling the diagnostic for anything else.
__extension__ typedef unsigned __int128 u128;
using Limbs = std::array<u64, 4>;

// BN254 scalar field modulus, little-endian limbs.
constexpr Limbs kModulus = {0x43e1f593f0000001ULL, 0x2833e84879b97091ULL,
                            0xb85045b68181585dULL, 0x30644e72e131a029ULL};

// -r^{-1} mod 2^64, computed at compile time by Newton iteration.
constexpr u64 compute_n0_inv() {
  u64 inv = 1;
  for (int i = 0; i < 6; ++i) {
    inv *= 2 - kModulus[0] * inv;
  }
  return ~inv + 1;  // negate mod 2^64
}
constexpr u64 kN0Inv = compute_n0_inv();

constexpr bool geq(const Limbs& a, const Limbs& b) {
  for (int i = 3; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

// a -= b, assuming a >= b.
constexpr void sub_in_place(Limbs& a, const Limbs& b) {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 d = static_cast<u128>(a[i]) - b[i] - borrow;
    a[i] = static_cast<u64>(d);
    borrow = static_cast<u64>((d >> 64) & 1);
  }
}

// a += a (doubling with reduction), used only for constant generation.
constexpr void double_mod(Limbs& a) {
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u64 hi = a[i] >> 63;
    a[i] = (a[i] << 1) | carry;
    carry = hi;
  }
  if (carry != 0 || geq(a, kModulus)) sub_in_place(a, kModulus);
}

// 2^512 mod r, for Montgomery conversion: to_mont(a) = mont_mul(a, R2).
constexpr Limbs compute_r2() {
  Limbs x = {1, 0, 0, 0};
  for (int i = 0; i < 512; ++i) double_mod(x);
  return x;
}
constexpr Limbs kR2 = compute_r2();

// 2^256 mod r == Montgomery form of 1.
constexpr Limbs compute_r1() {
  Limbs x = {1, 0, 0, 0};
  for (int i = 0; i < 256; ++i) double_mod(x);
  return x;
}
constexpr Limbs kOneMont = compute_r1();

// One outer CIOS iteration: t += a * bi, then one Montgomery reduction
// step (add m * r with m = t[0] * n0inv and shift one limb). Factored
// out so the scalar and the interleaved multi-lane kernels execute the
// exact same instruction schedule per lane.
inline void mont_iter(u64 t[6], const Limbs& a, u64 bi) {
  // t += a * bi
  u128 carry = 0;
  for (int j = 0; j < 4; ++j) {
    const u128 cur = static_cast<u128>(a[j]) * bi + t[j] + carry;
    t[j] = static_cast<u64>(cur);
    carry = cur >> 64;
  }
  u128 cur = static_cast<u128>(t[4]) + carry;
  t[4] = static_cast<u64>(cur);
  t[5] = static_cast<u64>(cur >> 64);

  // reduce: add m * r where m = t[0] * n0inv, then shift one limb
  const u64 m = t[0] * kN0Inv;
  cur = static_cast<u128>(t[0]) + static_cast<u128>(m) * kModulus[0];
  carry = cur >> 64;
  for (int j = 1; j < 4; ++j) {
    cur = static_cast<u128>(t[j]) + static_cast<u128>(m) * kModulus[j] + carry;
    t[j - 1] = static_cast<u64>(cur);
    carry = cur >> 64;
  }
  cur = static_cast<u128>(t[4]) + carry;
  t[3] = static_cast<u64>(cur);
  t[4] = t[5] + static_cast<u64>(cur >> 64);
}

// Final conditional subtraction back into canonical range.
inline void mont_finish(const u64 t[6], Limbs& out) {
  Limbs r = {t[0], t[1], t[2], t[3]};
  if (t[4] != 0 || geq(r, kModulus)) sub_in_place(r, kModulus);
  out = r;
}

// CIOS Montgomery multiplication: out = a * b * R^{-1} mod r.
// Inputs must be < r.
void mont_mul(const Limbs& a, const Limbs& b, Limbs& out) {
  u64 t[6] = {0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) mont_iter(t, a, b[i]);
  mont_finish(t, out);
}

// Four independent CIOS multiplications with their outer iterations
// interleaved. Each lane's carry chain is serial, but the lanes are
// independent, so the core can overlap the 64x64 multiplies across
// lanes (ILP). Per lane this is operation-for-operation mont_mul, so
// every output is bit-identical to the scalar product. Outputs may
// alias their own lane's inputs (they are written only at the end).
void mont_mul_x4(const Limbs& a0, const Limbs& b0, const Limbs& a1,
                 const Limbs& b1, const Limbs& a2, const Limbs& b2,
                 const Limbs& a3, const Limbs& b3, Limbs& o0, Limbs& o1,
                 Limbs& o2, Limbs& o3) {
  u64 t0[6] = {0, 0, 0, 0, 0, 0};
  u64 t1[6] = {0, 0, 0, 0, 0, 0};
  u64 t2[6] = {0, 0, 0, 0, 0, 0};
  u64 t3[6] = {0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    mont_iter(t0, a0, b0[i]);
    mont_iter(t1, a1, b1[i]);
    mont_iter(t2, a2, b2[i]);
    mont_iter(t3, a3, b3[i]);
  }
  mont_finish(t0, o0);
  mont_finish(t1, o1);
  mont_finish(t2, o2);
  mont_finish(t3, o3);
}

void add_mod(const Limbs& a, const Limbs& b, Limbs& out) {
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 s = static_cast<u128>(a[i]) + b[i] + carry;
    out[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  if (carry != 0 || geq(out, kModulus)) sub_in_place(out, kModulus);
}

void sub_mod(const Limbs& a, const Limbs& b, Limbs& out) {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 d = static_cast<u128>(a[i]) - b[i] - borrow;
    out[i] = static_cast<u64>(d);
    borrow = static_cast<u64>((d >> 64) & 1);
  }
  if (borrow != 0) {
    u64 carry = 0;
    for (int i = 0; i < 4; ++i) {
      const u128 s = static_cast<u128>(out[i]) + kModulus[i] + carry;
      out[i] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
  }
}

// Reduce an arbitrary 256-bit value (< 2^256) to canonical range [0, r).
// 2^256 / r < 6, so a handful of conditional subtractions suffice.
void reduce_canonical(Limbs& a) {
  while (geq(a, kModulus)) sub_in_place(a, kModulus);
}

Limbs bytes_be_to_limbs(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != Fr::kByteSize) {
    throw std::invalid_argument("Fr: expected 32 bytes");
  }
  Limbs out = {0, 0, 0, 0};
  for (int i = 0; i < 32; ++i) {
    out[3 - i / 8] |= static_cast<u64>(bytes[i]) << (8 * (7 - i % 8));
  }
  return out;
}

}  // namespace

// Friend of Fr: constructs elements directly from raw Montgomery limbs.
struct FrDetail {
  static Fr make(const Limbs& limbs) { return Fr(limbs); }
};

namespace {
using FrAccess = FrDetail;
}  // namespace

Fr Fr::one() {
  return FrAccess::make(kOneMont);
}

Fr Fr::from_u64(std::uint64_t v) {
  Limbs x = {v, 0, 0, 0};
  Limbs out;
  mont_mul(x, kR2, out);
  return FrAccess::make(out);
}

Fr Fr::from_bytes_be(std::span<const std::uint8_t> bytes) {
  Limbs x = bytes_be_to_limbs(bytes);
  reduce_canonical(x);
  Limbs out;
  mont_mul(x, kR2, out);
  return FrAccess::make(out);
}

std::optional<Fr> Fr::from_bytes_canonical(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kByteSize) return std::nullopt;
  Limbs x = bytes_be_to_limbs(bytes);
  if (geq(x, kModulus)) return std::nullopt;
  Limbs out;
  mont_mul(x, kR2, out);
  return FrAccess::make(out);
}

Fr Fr::random(util::Rng& rng) {
  // Rejection sampling on the top limb keeps the distribution uniform.
  while (true) {
    Limbs x;
    for (auto& l : x) l = rng.next_u64();
    x[3] &= (1ULL << 62) - 1;  // trim to < 2^254; modulus is ~2^253.5
    if (geq(x, kModulus)) continue;
    Limbs out;
    mont_mul(x, kR2, out);
    return FrAccess::make(out);
  }
}

std::array<std::uint8_t, Fr::kByteSize> Fr::modulus_bytes_be() {
  std::array<std::uint8_t, kByteSize> out{};
  for (int i = 0; i < 32; ++i) {
    out[i] = static_cast<std::uint8_t>(kModulus[3 - i / 8] >> (8 * (7 - i % 8)));
  }
  return out;
}

Fr Fr::operator+(const Fr& o) const {
  Limbs out;
  add_mod(limbs_, o.limbs_, out);
  return FrAccess::make(out);
}

Fr Fr::operator-(const Fr& o) const {
  Limbs out;
  sub_mod(limbs_, o.limbs_, out);
  return FrAccess::make(out);
}

Fr Fr::operator*(const Fr& o) const {
  Limbs out;
  mont_mul(limbs_, o.limbs_, out);
  return FrAccess::make(out);
}

Fr Fr::operator-() const {
  if (is_zero()) return *this;
  Limbs out = kModulus;
  sub_in_place(out, limbs_);
  return FrAccess::make(out);
}

Fr Fr::square() const {
  return *this * *this;
}

Fr Fr::pow(const std::array<std::uint64_t, 4>& exp_limbs) const {
  Fr result = Fr::one();
  Fr base = *this;
  bool started = false;
  for (int limb = 3; limb >= 0; --limb) {
    for (int bit = 63; bit >= 0; --bit) {
      if (started) result = result.square();
      if ((exp_limbs[limb] >> bit) & 1) {
        result = result * base;
        started = true;
      }
    }
  }
  return result;
}

Fr Fr::pow(std::uint64_t exp) const {
  return pow(std::array<std::uint64_t, 4>{exp, 0, 0, 0});
}

Fr Fr::inverse() const {
  if (is_zero()) {
    throw std::domain_error("Fr::inverse: zero has no inverse");
  }
  // Fermat: a^(r-2).
  Limbs e = kModulus;
  e[0] -= 2;  // r is odd and > 2, no borrow
  return pow(e);
}

void Fr::mul_batch(std::span<const Fr> a, std::span<const Fr> b,
                   std::span<Fr> out) {
  WAKURLN_CHECK(a.size() == b.size() && a.size() == out.size());
  std::size_t i = 0;
  for (; i + 4 <= a.size(); i += 4) {
    mont_mul_x4(a[i].limbs_, b[i].limbs_, a[i + 1].limbs_, b[i + 1].limbs_,
                a[i + 2].limbs_, b[i + 2].limbs_, a[i + 3].limbs_,
                b[i + 3].limbs_, out[i].limbs_, out[i + 1].limbs_,
                out[i + 2].limbs_, out[i + 3].limbs_);
  }
  for (; i < a.size(); ++i) {
    mont_mul(a[i].limbs_, b[i].limbs_, out[i].limbs_);
  }
}

void Fr::square_batch(std::span<const Fr> a, std::span<Fr> out) {
  mul_batch(a, a, out);
}

void Fr::batch_inverse(std::span<Fr> xs) {
  if (xs.empty()) return;
  // Zero scan first so a throw leaves the span untouched.
  for (const Fr& x : xs) {
    if (x.is_zero()) {
      throw std::domain_error("Fr::batch_inverse: zero has no inverse");
    }
  }
  if (xs.size() == 1) {
    xs[0] = xs[0].inverse();
    return;
  }
  // Montgomery's trick: prefix[i] = x0 * ... * xi, one inversion of the
  // full product, then walk back emitting each inverse.
  std::vector<Fr> prefix(xs.size());
  prefix[0] = xs[0];
  for (std::size_t i = 1; i < xs.size(); ++i) {
    prefix[i] = prefix[i - 1] * xs[i];
  }
  Fr inv = prefix.back().inverse();
  for (std::size_t i = xs.size() - 1; i > 0; --i) {
    const Fr xi = xs[i];
    xs[i] = inv * prefix[i - 1];
    inv = inv * xi;
  }
  xs[0] = inv;
}

namespace {

// acc += a * b as a full 512-bit product (schoolbook 4x4) — the shared
// core of FrAcc::add_mul and the fused matrix kernel. Callers bound the
// term count so the sum stays below 2^512.
inline void acc_add_mul(u64 acc[8], const Limbs& a, const Limbs& b) {
  for (int i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a[j]) * b[i] + acc[i + j] + carry;
      acc[i + j] = static_cast<u64>(cur);
      carry = cur >> 64;
    }
    // Propagate into the upper limbs; within the term bound the sum
    // stays below 2^512, so no carry ever leaves acc[7].
    u64 c = static_cast<u64>(carry);
    for (int k = i + 4; c != 0 && k < 8; ++k) {
      const u128 cur = static_cast<u128>(acc[k]) + c;
      acc[k] = static_cast<u64>(cur);
      c = static_cast<u64>(cur >> 64);
    }
  }
}

// One round of the 512-bit Montgomery reduction: m = t[i] * n0inv;
// t += m * r << (64 * i). Factored (like mont_iter) so the scalar and
// interleaved multi-row reductions execute the same per-row schedule.
inline void acc_reduce_round(u64 t[9], int i) {
  const u64 m = t[i] * kN0Inv;
  u128 carry = 0;
  for (int j = 0; j < 4; ++j) {
    const u128 cur =
        static_cast<u128>(t[i + j]) + static_cast<u128>(m) * kModulus[j] + carry;
    t[i + j] = static_cast<u64>(cur);
    carry = cur >> 64;
  }
  for (int k = i + 4; carry != 0 && k < 9; ++k) {
    const u128 cur = static_cast<u128>(t[k]) + carry;
    t[k] = static_cast<u64>(cur);
    carry = cur >> 64;
  }
}

// Canonicalises the reduced accumulator t[4..7]. Within the term bound
// the value is < 2^256 (t[8] == 0) and < 6r, so a short subtraction
// loop suffices.
inline void acc_reduce_finish(const u64 t[9], Limbs& out) {
  WAKURLN_DCHECK(t[8] == 0);
  Limbs r = {t[4], t[5], t[6], t[7]};
  while (geq(r, kModulus)) sub_in_place(r, kModulus);
  out = r;
}

}  // namespace

void FrAcc::add_mul(const Fr& a, const Fr& b) {
  WAKURLN_CHECK(terms_ < kMaxTerms);
  ++terms_;
  acc_add_mul(acc_.data(), a.limbs_, b.limbs_);
}

Fr FrAcc::reduce() const {
  // Montgomery reduction of the 512-bit accumulator: the result is
  // acc * R^{-1} mod r — exactly sum(mont_mul(a_i, b_i)) mod r — and is
  // canonicalised by acc_reduce_finish.
  u64 t[9] = {acc_[0], acc_[1], acc_[2], acc_[3], acc_[4],
              acc_[5], acc_[6], acc_[7], 0};
  for (int i = 0; i < 4; ++i) acc_reduce_round(t, i);
  Limbs r;
  acc_reduce_finish(t, r);
  return FrAccess::make(r);
}

void Fr::mat3_mul_fused(const std::array<std::array<Fr, 3>, 3>& m,
                        const std::array<Fr, 3>& v, std::array<Fr, 3>& out) {
  // Three rows, three independent accumulate-then-reduce chains,
  // interleaved so the core can overlap the 64x64 multiplies across rows
  // (the mont_mul_x4 trick applied to the FrAcc schedule). Per row this
  // is operation-for-operation FrAcc::add_mul x3 + reduce(), so each
  // output is bit-identical to the unfused accumulator path.
  u64 r0[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
  u64 r1[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
  u64 r2[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
  for (int j = 0; j < 3; ++j) {
    const Limbs& vj = v[static_cast<std::size_t>(j)].limbs_;
    acc_add_mul(r0, m[0][static_cast<std::size_t>(j)].limbs_, vj);
    acc_add_mul(r1, m[1][static_cast<std::size_t>(j)].limbs_, vj);
    acc_add_mul(r2, m[2][static_cast<std::size_t>(j)].limbs_, vj);
  }
  for (int i = 0; i < 4; ++i) {
    acc_reduce_round(r0, i);
    acc_reduce_round(r1, i);
    acc_reduce_round(r2, i);
  }
  Limbs o0, o1, o2;
  acc_reduce_finish(r0, o0);
  acc_reduce_finish(r1, o1);
  acc_reduce_finish(r2, o2);
  out[0] = FrAccess::make(o0);
  out[1] = FrAccess::make(o1);
  out[2] = FrAccess::make(o2);
}

bool Fr::is_zero() const {
  return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0;
}

std::array<std::uint8_t, Fr::kByteSize> Fr::to_bytes_be() const {
  // Convert out of Montgomery form: mont_mul(a, 1).
  Limbs one = {1, 0, 0, 0};
  Limbs canon;
  mont_mul(limbs_, one, canon);
  std::array<std::uint8_t, kByteSize> out{};
  for (int i = 0; i < 32; ++i) {
    out[i] = static_cast<std::uint8_t>(canon[3 - i / 8] >> (8 * (7 - i % 8)));
  }
  return out;
}

std::string Fr::to_hex() const {
  const auto b = to_bytes_be();
  return util::to_hex(b);
}

std::uint64_t Fr::hash64() const {
  // splitmix-style mixing over the Montgomery limbs (equality-compatible).
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const auto& l : limbs_) {
    std::uint64_t z = h ^ l;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = z ^ (z >> 31);
  }
  return h;
}

}  // namespace wakurln::field
