#pragma once
// Shared constants for the per-subsystem resident-memory models
// (memory_bytes() on the router, mcache, nullifier ring, Merkle group
// and event pool). The models follow the libstdc++ layouts the way
// rln::NullifierMap::memory_bytes established: node-based containers pay
// a per-node header on top of the stored element, unordered containers
// additionally pay their bucket array. The numbers are a model of
// resident bytes, not a malloc audit — but a model applied consistently,
// so per-epoch deltas and cross-scenario comparisons are meaningful.

#include <cstddef>
#include <string>

namespace wakurln::obs {

/// Per-node overhead of libstdc++ unordered containers: the forward
/// pointer plus the cached hash.
inline constexpr std::size_t kUnorderedNodeBytes = 8 + 8;

/// Per-node overhead of libstdc++ ordered containers (std::map/std::set):
/// the _Rb_tree_node_base header (color + three pointers, padded).
inline constexpr std::size_t kTreeNodeBytes = 32;

/// libstdc++ std::string keeps up to this many chars inline (SSO).
inline constexpr std::size_t kStringSsoCapacity = 15;

/// Heap bytes behind a std::string beyond its inline buffer (0 when the
/// small-string optimisation holds the content).
inline std::size_t string_heap_bytes(const std::string& s) {
  return s.capacity() > kStringSsoCapacity ? s.capacity() + 1 : 0;
}

}  // namespace wakurln::obs
