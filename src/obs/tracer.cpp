#include "obs/tracer.h"

#include <algorithm>
#include <stdexcept>

#include "obs/memory.h"
#include "util/json.h"

namespace wakurln::obs {

std::string short_id(std::span<const std::uint8_t> id) {
  static constexpr char kHex[] = "0123456789abcdef";
  const std::size_t n = std::min<std::size_t>(id.size(), 8);
  std::string out;
  out.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    out += kHex[id[i] >> 4];
    out += kHex[id[i] & 0x0f];
  }
  return out;
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("obs::Tracer: capacity must be >= 1");
  }
  // Reserve the whole ring up front: capacity() stays constant, so
  // memory_bytes() is exact from the first event to the last.
  ring_.reserve(capacity_);
}

void Tracer::set_arg(std::string_view arg, std::array<char, kMaxArgBytes>& dst,
                     std::uint8_t& len) {
  const std::size_t n = std::min(arg.size(), kMaxArgBytes);
  std::copy_n(arg.data(), n, dst.data());
  len = static_cast<std::uint8_t>(n);
}

std::uint32_t Tracer::intern(std::string_view name) {
  const auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

void Tracer::record(const Event& ev) {
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[next_] = ev;
    next_ = (next_ + 1) % capacity_;
  }
  ++recorded_;
}

void Tracer::instant(std::string_view name, std::uint64_t ts_us,
                     std::uint32_t track, std::string_view arg) {
  Event ev;
  ev.ts = ts_us;
  ev.name_id = intern(name);
  ev.track = track;
  ev.complete = 0;
  set_arg(arg, ev.arg, ev.arg_len);
  record(ev);
}

void Tracer::begin(std::string_view name, std::uint64_t ts_us,
                   std::uint32_t track, std::string_view arg) {
  OpenSpan span;
  span.name_id = intern(name);
  span.ts = ts_us;
  set_arg(arg, span.arg, span.arg_len);
  open_[track].push_back(span);
}

void Tracer::end(std::uint64_t ts_us, std::uint32_t track) {
  const auto it = open_.find(track);
  if (it == open_.end() || it->second.empty()) return;
  const OpenSpan span = it->second.back();
  it->second.pop_back();
  Event ev;
  ev.ts = span.ts;
  ev.dur = ts_us >= span.ts ? ts_us - span.ts : 0;
  ev.name_id = span.name_id;
  ev.track = track;
  ev.complete = 1;
  ev.arg = span.arg;
  ev.arg_len = span.arg_len;
  record(ev);
}

std::size_t Tracer::memory_bytes() const {
  std::size_t total = sizeof(Tracer);
  total += ring_.capacity() * sizeof(Event);
  total += names_.capacity() * sizeof(std::string);
  for (const std::string& name : names_) total += string_heap_bytes(name);
  for (const auto& [name, id] : name_ids_) {
    (void)id;
    total += kTreeNodeBytes + sizeof(std::pair<const std::string, std::uint32_t>) +
             string_heap_bytes(name);
  }
  for (const auto& [track, stack] : open_) {
    (void)track;
    total += kTreeNodeBytes +
             sizeof(std::pair<const std::uint32_t, std::vector<OpenSpan>>) +
             stack.capacity() * sizeof(OpenSpan);
  }
  return total;
}

std::string Tracer::json() const {
  // Built with operator+= only (see campaign.cpp: GCC 12 -Wrestrict,
  // PR105651). Oldest retained event first: once the ring has wrapped,
  // next_ is both the write cursor and the oldest slot.
  std::string out = "{\"traceEvents\": [";
  const std::size_t count = ring_.size();
  const std::size_t start = recorded_ <= capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < count; ++i) {
    const Event& ev = ring_[(start + i) % count];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"name\": \"";
    out += util::json_escape(names_[ev.name_id]);
    out += "\", \"ph\": \"";
    out += ev.complete != 0 ? "X" : "i";
    out += "\", \"ts\": ";
    out += std::to_string(ev.ts);
    if (ev.complete != 0) {
      out += ", \"dur\": ";
      out += std::to_string(ev.dur);
    } else {
      out += ", \"s\": \"t\"";
    }
    out += ", \"pid\": 0, \"tid\": ";
    out += std::to_string(ev.track);
    if (ev.arg_len != 0) {
      out += ", \"args\": {\"msg\": \"";
      out += util::json_escape(std::string(ev.arg.data(), ev.arg_len));
      out += "\"}";
    }
    out += "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

}  // namespace wakurln::obs
