#include "obs/timeseries.h"

#include <stdexcept>
#include <utility>

namespace wakurln::obs {

void TimeSeries::sample(const Registry& registry, double sim_seconds) {
  if (columns_.empty()) {
    columns_.push_back("t_s");
    std::vector<std::string> cols = registry.columns();
    columns_.insert(columns_.end(), std::make_move_iterator(cols.begin()),
                    std::make_move_iterator(cols.end()));
  }
  std::vector<double> row;
  row.reserve(columns_.size());
  row.push_back(sim_seconds);
  std::vector<double> values = registry.sample_row();
  row.insert(row.end(), values.begin(), values.end());
  if (row.size() != columns_.size()) {
    throw std::logic_error(
        "obs::TimeSeries: registry shape changed between samples");
  }
  rows_.push_back(std::move(row));
}

}  // namespace wakurln::obs
