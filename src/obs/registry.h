#pragma once
// Central metrics registry: the observability substrate subsystems
// instrument through typed handles (Counter, Gauge, Histogram) and pull
// probes. Two properties carry the whole design:
//
//   * Deterministic registration order. The registry never iterates an
//     unordered container: instruments are recorded in the order code
//     registered them, and that order IS the column order of every
//     time-series sample — so TIMESERIES_<scenario>.json is a pure
//     function of (spec, seed), byte-identical across thread counts.
//     Register instruments from deterministic code paths only.
//
//   * Zero cost when disabled. A disabled registry issues null handles:
//     an instrumented hot path pays one pointer null-check per operation
//     and allocates nothing; probes are dropped at registration. The
//     instrumentation can therefore stay permanently wired into the
//     sim/gossipsub/waku/rln layers without perturbing uninstrumented
//     runs.

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace wakurln::obs {

class Registry;

/// Monotonic counter. Default-constructed (or disabled-registry) handles
/// are inert no-ops.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) {
    if (cell_ != nullptr) *cell_ += n;
  }
  std::uint64_t value() const { return cell_ == nullptr ? 0 : *cell_; }
  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(std::uint64_t* cell) : cell_(cell) {}
  std::uint64_t* cell_ = nullptr;
};

/// Last-value gauge. Default-constructed handles are inert no-ops.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (cell_ != nullptr) *cell_ = v;
  }
  double value() const { return cell_ == nullptr ? 0 : *cell_; }
  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(double* cell) : cell_(cell) {}
  double* cell_ = nullptr;
};

/// Backing state of one fixed-bucket histogram: `upper_edges.size() + 1`
/// buckets — bucket b covers (edge[b-1], edge[b]] with an implicit lower
/// bound of 0 for b == 0, and the final bucket collects everything past
/// the last edge.
struct HistogramState {
  std::vector<double> upper_edges;      ///< strictly ascending
  std::vector<std::uint64_t> counts;    ///< upper_edges.size() + 1 entries
  std::uint64_t total = 0;
};

/// Fixed-bucket histogram. Default-constructed handles are inert no-ops.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v);
  std::uint64_t count() const { return state_ == nullptr ? 0 : state_->total; }
  /// Percentile of the bucketed distribution, by the same fractional-rank
  /// definition as util::percentile (one shared implementation): the k-th
  /// order statistic is placed at the midpoint of its sub-interval inside
  /// the containing bucket, and ranks interpolate linearly. Values past
  /// the last edge clamp to it. Returns 0 with no observations.
  double percentile(double q) const;
  bool enabled() const { return state_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(HistogramState* state) : state_(state) {}
  HistogramState* state_ = nullptr;
};

class Registry {
 public:
  /// A disabled registry issues null handles and drops probes; columns()
  /// and sample_row() are empty. See the file comment.
  explicit Registry(bool enabled = true) : enabled_(enabled) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  bool enabled() const { return enabled_; }

  // -- instrument factories ---------------------------------------------
  // Names must be unique per registry (std::invalid_argument otherwise).
  // REGISTRATION ORDER IS COLUMN ORDER: only register from deterministic
  // code order, never while iterating an unordered container.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  /// `upper_edges` must be non-empty and strictly ascending
  /// (std::invalid_argument otherwise).
  Histogram histogram(const std::string& name, std::vector<double> upper_edges);
  /// Pull probe, evaluated at every sample_row(). `fn` must be read-only
  /// and deterministic — it runs on the simulated clock and its values
  /// land in the byte-deterministic time series.
  void probe(const std::string& name, std::function<double()> fn);
  /// Pull histogram: like histogram(), but the per-bucket counts live in
  /// the instrumented subsystem (e.g. split per scheduler lane) and are
  /// pulled at every sample_row(). `counts_fn` must return exactly
  /// `upper_edges.size() + 1` entries (the last is the overflow bucket),
  /// be read-only and deterministic, and counts must be cumulative over
  /// the run — same column contract (_count/_p50/_p90/_p99) as a push
  /// histogram with the same edges.
  void histogram_probe(const std::string& name, std::vector<double> upper_edges,
                       std::function<std::vector<std::uint64_t>()> counts_fn);

  // -- sampling ----------------------------------------------------------
  /// Column names in registration order. A scalar instrument contributes
  /// one column; a histogram H contributes H_count, H_p50, H_p90, H_p99.
  std::vector<std::string> columns() const;
  /// Current value of every column, in columns() order.
  std::vector<double> sample_row() const;

  std::size_t instrument_count() const { return order_.size(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kProbe, kHistogramProbe };
  struct HistogramProbe {
    std::vector<double> upper_edges;
    std::function<std::vector<std::uint64_t>()> counts_fn;
  };
  struct Instrument {
    Kind kind;
    std::string name;
    std::size_t index;  ///< into the kind's storage below
  };

  void check_name(const std::string& name) const;

  bool enabled_;
  std::vector<Instrument> order_;
  // Deques: handles point at cells, so storage must never relocate.
  std::deque<std::uint64_t> counters_;
  std::deque<double> gauges_;
  std::deque<HistogramState> histograms_;
  std::vector<std::function<double()>> probes_;
  std::vector<HistogramProbe> histogram_probes_;
};

}  // namespace wakurln::obs
