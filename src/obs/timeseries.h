#pragma once
// Per-epoch time series: rows sampled from a Registry on the simulated
// clock. The scenario runner drives sampling from a scheduler periodic
// timer (one row per RLN epoch), and the campaign layer serializes every
// run's series into TIMESERIES_<scenario>.json. The column layout
// freezes at the first sample — the registration order of the registry —
// so every run of one spec emits identical columns and the file is
// byte-comparable across repeats and thread counts.

#include <string>
#include <vector>

#include "obs/registry.h"

namespace wakurln::obs {

class TimeSeries {
 public:
  /// Appends one row: simulated time plus every registry column. The
  /// first sample freezes the column layout; a later sample seeing a
  /// different registry shape throws std::logic_error (instruments must
  /// not be registered mid-run).
  void sample(const Registry& registry, double sim_seconds);

  bool empty() const { return rows_.empty(); }
  /// "t_s" followed by the registry's columns.
  const std::vector<std::string>& columns() const { return columns_; }
  /// One row per sample, each columns().size() values, t_s first.
  const std::vector<std::vector<double>>& rows() const { return rows_; }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace wakurln::obs
