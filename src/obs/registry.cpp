#include "obs/registry.h"

#include <stdexcept>

#include "util/stats.h"

namespace wakurln::obs {
namespace {

double hist_percentile(const HistogramState& s, double q) {
  if (s.total == 0) return 0;
  const auto n = static_cast<std::size_t>(s.total);
  // The k-th order statistic, reconstructed from the buckets: walk to the
  // bucket containing rank k, then place the rank at the midpoint of its
  // 1/count_b sub-interval. The overflow bucket has no upper edge, so it
  // clamps to the last finite edge.
  const auto value_at = [&s](std::size_t k) {
    std::uint64_t before = 0;
    std::size_t b = 0;
    while (b + 1 < s.counts.size() && before + s.counts[b] <= k) {
      before += s.counts[b];
      ++b;
    }
    const double lower = b == 0 ? 0.0 : s.upper_edges[b - 1];
    const double upper =
        b < s.upper_edges.size() ? s.upper_edges[b] : s.upper_edges.back();
    const double pos = (static_cast<double>(k - before) + 0.5) /
                       static_cast<double>(s.counts[b]);
    return lower + (upper - lower) * pos;
  };
  return util::percentile_at_rank(n, util::percentile_rank(n, q), value_at);
}

void check_edges(const std::vector<double>& upper_edges) {
  if (upper_edges.empty()) {
    throw std::invalid_argument("obs::Registry: histogram needs >= 1 bucket edge");
  }
  for (std::size_t i = 1; i < upper_edges.size(); ++i) {
    if (upper_edges[i] <= upper_edges[i - 1]) {
      throw std::invalid_argument(
          "obs::Registry: histogram edges must be strictly ascending");
    }
  }
}

}  // namespace

void Histogram::observe(double v) {
  if (state_ == nullptr) return;
  std::size_t b = 0;
  while (b < state_->upper_edges.size() && v > state_->upper_edges[b]) ++b;
  ++state_->counts[b];
  ++state_->total;
}

double Histogram::percentile(double q) const {
  return state_ == nullptr ? 0 : hist_percentile(*state_, q);
}

void Registry::check_name(const std::string& name) const {
  if (name.empty()) {
    throw std::invalid_argument("obs::Registry: instrument name must not be empty");
  }
  for (const Instrument& inst : order_) {
    if (inst.name == name) {
      throw std::invalid_argument("obs::Registry: duplicate instrument name '" +
                                  name + "'");
    }
  }
}

Counter Registry::counter(const std::string& name) {
  if (!enabled_) return Counter{};
  check_name(name);
  counters_.push_back(0);
  order_.push_back({Kind::kCounter, name, counters_.size() - 1});
  return Counter{&counters_.back()};
}

Gauge Registry::gauge(const std::string& name) {
  if (!enabled_) return Gauge{};
  check_name(name);
  gauges_.push_back(0.0);
  order_.push_back({Kind::kGauge, name, gauges_.size() - 1});
  return Gauge{&gauges_.back()};
}

Histogram Registry::histogram(const std::string& name,
                              std::vector<double> upper_edges) {
  check_edges(upper_edges);
  if (!enabled_) return Histogram{};
  check_name(name);
  HistogramState state;
  state.counts.assign(upper_edges.size() + 1, 0);
  state.upper_edges = std::move(upper_edges);
  histograms_.push_back(std::move(state));
  order_.push_back({Kind::kHistogram, name, histograms_.size() - 1});
  return Histogram{&histograms_.back()};
}

void Registry::probe(const std::string& name, std::function<double()> fn) {
  if (!enabled_) return;
  check_name(name);
  probes_.push_back(std::move(fn));
  order_.push_back({Kind::kProbe, name, probes_.size() - 1});
}

void Registry::histogram_probe(const std::string& name,
                               std::vector<double> upper_edges,
                               std::function<std::vector<std::uint64_t>()> counts_fn) {
  check_edges(upper_edges);
  if (!enabled_) return;
  check_name(name);
  histogram_probes_.push_back({std::move(upper_edges), std::move(counts_fn)});
  order_.push_back({Kind::kHistogramProbe, name, histogram_probes_.size() - 1});
}

std::vector<std::string> Registry::columns() const {
  std::vector<std::string> cols;
  cols.reserve(order_.size());
  for (const Instrument& inst : order_) {
    if (inst.kind == Kind::kHistogram || inst.kind == Kind::kHistogramProbe) {
      cols.push_back(inst.name + "_count");
      cols.push_back(inst.name + "_p50");
      cols.push_back(inst.name + "_p90");
      cols.push_back(inst.name + "_p99");
    } else {
      cols.push_back(inst.name);
    }
  }
  return cols;
}

std::vector<double> Registry::sample_row() const {
  std::vector<double> row;
  row.reserve(order_.size());
  for (const Instrument& inst : order_) {
    switch (inst.kind) {
      case Kind::kCounter:
        row.push_back(static_cast<double>(counters_[inst.index]));
        break;
      case Kind::kGauge:
        row.push_back(gauges_[inst.index]);
        break;
      case Kind::kHistogram: {
        const HistogramState& h = histograms_[inst.index];
        row.push_back(static_cast<double>(h.total));
        row.push_back(hist_percentile(h, 0.50));
        row.push_back(hist_percentile(h, 0.90));
        row.push_back(hist_percentile(h, 0.99));
        break;
      }
      case Kind::kProbe:
        row.push_back(probes_[inst.index]());
        break;
      case Kind::kHistogramProbe: {
        const HistogramProbe& hp = histogram_probes_[inst.index];
        HistogramState s;
        s.upper_edges = hp.upper_edges;
        s.counts = hp.counts_fn();
        if (s.counts.size() != s.upper_edges.size() + 1) {
          throw std::logic_error(
              "obs::Registry: histogram probe returned wrong bucket count");
        }
        for (const std::uint64_t c : s.counts) s.total += c;
        row.push_back(static_cast<double>(s.total));
        row.push_back(hist_percentile(s, 0.50));
        row.push_back(hist_percentile(s, 0.90));
        row.push_back(hist_percentile(s, 0.99));
        break;
      }
    }
  }
  return row;
}

}  // namespace wakurln::obs
