#pragma once
// Message-lifecycle tracer: records publish → forward → verify /
// cache-hit → deliver / drop events into a bounded ring buffer and
// serializes them as Chrome trace-event JSON (TRACE_<scenario>.json),
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Timestamps
// are simulated microseconds, tracks (tid) are node indices — the
// resulting timeline shows one message fan out across the mesh.
//
// Determinism and bounds:
//   * Timestamps come from the caller (the simulated clock); the tracer
//     itself never reads wall time, thread ids or addresses — its JSON is
//     a pure function of the recorded event sequence, which for a
//     scenario run is a pure function of (spec, seed).
//   * The ring buffer overwrites the oldest events once `capacity` is
//     reached (dropped() counts the overwritten ones), and every event is
//     a fixed-size POD with an inline argument buffer — memory stays
//     bounded no matter how long the run is (memory_bytes() is exact).

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wakurln::obs {

/// 16-hex-char digest prefix of a message id — the correlation key
/// attached to trace events of one message's lifecycle.
std::string short_id(std::span<const std::uint8_t> id);

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;
  /// Longest argument stored per event (longer args are truncated).
  static constexpr std::size_t kMaxArgBytes = 22;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Records an instant event ("i" phase) on `track` at simulated time
  /// `ts_us`. `arg` lands in the event's "args" object (truncated to
  /// kMaxArgBytes).
  void instant(std::string_view name, std::uint64_t ts_us, std::uint32_t track,
               std::string_view arg = {});

  /// Opens a span on `track`; close it with end(). Spans on one track
  /// nest LIFO (end() closes the innermost open span) and serialize as
  /// complete "X" events with begin timestamp + duration.
  void begin(std::string_view name, std::uint64_t ts_us, std::uint32_t track,
             std::string_view arg = {});

  /// Closes the innermost open span on `track`; no-op if none is open.
  void end(std::uint64_t ts_us, std::uint32_t track);

  std::size_t capacity() const { return capacity_; }
  /// Events ever recorded (instants + closed spans).
  std::size_t recorded() const { return recorded_; }
  /// Events currently retained in the ring.
  std::size_t retained() const {
    return recorded_ < capacity_ ? recorded_ : capacity_;
  }
  /// Events overwritten by ring wrap-around.
  std::size_t dropped() const { return recorded_ - retained(); }

  /// Exact resident bytes of the tracer (ring + name table + open-span
  /// stacks), by the obs/memory.h container model.
  std::size_t memory_bytes() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}), oldest retained
  /// event first. Open (never-ended) spans are not emitted.
  std::string json() const;

 private:
  struct Event {
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;
    std::uint32_t name_id = 0;
    std::uint32_t track = 0;
    std::uint8_t complete = 0;  ///< 0 = instant "i", 1 = complete "X"
    std::uint8_t arg_len = 0;
    std::array<char, kMaxArgBytes> arg{};
  };
  struct OpenSpan {
    std::uint32_t name_id = 0;
    std::uint64_t ts = 0;
    std::uint8_t arg_len = 0;
    std::array<char, kMaxArgBytes> arg{};
  };

  std::uint32_t intern(std::string_view name);
  void record(const Event& ev);
  static void set_arg(std::string_view arg, std::array<char, kMaxArgBytes>& dst,
                      std::uint8_t& len);

  std::size_t capacity_;
  std::vector<Event> ring_;   ///< reserved to capacity_ up front
  std::size_t next_ = 0;      ///< ring write index once full
  std::size_t recorded_ = 0;  ///< total events ever recorded

  // Name interning. Ordered map: the tracer feeds a byte-deterministic
  // report, so no unordered container anywhere near it.
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> name_ids_;

  /// Per-track stacks of spans opened but not yet ended.
  std::map<std::uint32_t, std::vector<OpenSpan>> open_;
};

}  // namespace wakurln::obs
