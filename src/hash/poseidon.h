#pragma once
// Poseidon-style algebraic hash over the BN254 scalar field.
//
// This is the `H(.)` of the paper: pk = H(sk), a1 = H(sk, epoch),
// internal nullifier = H(a1), and the Merkle tree node hash.
//
// Instance: t = 3 (capacity 1, rate 2), x^5 S-box, 8 full + 57 partial
// rounds — the standard parameterisation for ~254-bit fields at 128-bit
// security. Substitution note (DESIGN.md §2): round constants are derived
// from SHA-256 with a fixed ASCII seed ("nothing up my sleeve") and the MDS
// matrix is a Cauchy matrix, instead of the circomlib reference constants.
// The structure, cost and security rationale are those of Poseidon; exact
// circom compatibility is not needed by any experiment.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "field/fr.h"

namespace wakurln::hash {

/// Poseidon permutation parameters (fixed instance, exposed for tests).
struct PoseidonParams {
  static constexpr int kWidth = 3;          // t
  static constexpr int kFullRounds = 8;     // RF
  static constexpr int kPartialRounds = 57; // RP
  static constexpr int kAlpha = 5;          // S-box exponent

  /// Round constants, one per state element per round.
  std::vector<std::array<field::Fr, kWidth>> round_constants;
  /// MDS matrix (Cauchy construction, invertible).
  std::array<std::array<field::Fr, kWidth>, kWidth> mds;

  /// Deterministically derives the library-wide instance.
  static const PoseidonParams& instance();
};

/// Applies the Poseidon permutation to a width-3 state in place.
void poseidon_permute(std::array<field::Fr, PoseidonParams::kWidth>& state);

/// One-input hash: used for pk = H(sk) and nullifier = H(a1).
field::Fr poseidon_hash1(const field::Fr& a);

/// Two-input hash: used for a1 = H(sk, epoch) and Merkle node hashing.
field::Fr poseidon_hash2(const field::Fr& a, const field::Fr& b);

/// Applies the Poseidon permutation to many independent width-3 states.
/// Runs the identical per-state operation schedule as poseidon_permute
/// (S-boxes through Fr::mul_batch lanes, MDS rows through one fused
/// FrAcc reduction), so every output state is bit-identical to calling
/// poseidon_permute on it — poseidon_permute stays the executable
/// reference spec, pinned by tests/poseidon_test.cpp.
void poseidon_permute_batch(
    std::span<std::array<field::Fr, PoseidonParams::kWidth>> states);

/// Batched two-input hash: out[i] = poseidon_hash2(a[i], b[i]),
/// bit-identical per element. out may alias a or b.
void poseidon_hash2_batch(std::span<const field::Fr> a,
                          std::span<const field::Fr> b,
                          std::span<field::Fr> out);

}  // namespace wakurln::hash
