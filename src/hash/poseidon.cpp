#include "hash/poseidon.h"

#include <string>

#include "hash/sha256.h"
#include "util/bytes.h"

namespace wakurln::hash {

namespace {

using field::Fr;

// Derives a field element from a domain-separated SHA-256 expansion.
Fr derive_constant(const std::string& label) {
  const Digest d = Sha256::digest(label);
  return Fr::from_bytes_be(d);
}

PoseidonParams build_params() {
  PoseidonParams p;
  const int rounds = PoseidonParams::kFullRounds + PoseidonParams::kPartialRounds;
  p.round_constants.reserve(rounds);
  for (int r = 0; r < rounds; ++r) {
    std::array<Fr, PoseidonParams::kWidth> rc;
    for (int j = 0; j < PoseidonParams::kWidth; ++j) {
      rc[j] = derive_constant("wakurln.poseidon.t3.rc." + std::to_string(r) + "." +
                              std::to_string(j));
    }
    p.round_constants.push_back(rc);
  }
  // Cauchy MDS: M[i][j] = 1 / (x_i + y_j) with x = {0,1,2}, y = {3,4,5}.
  // All x_i distinct, all y_j distinct and x_i + y_j != 0 in Fr, which
  // guarantees the matrix is MDS (maximum distance separable).
  for (int i = 0; i < PoseidonParams::kWidth; ++i) {
    for (int j = 0; j < PoseidonParams::kWidth; ++j) {
      p.mds[i][j] =
          (Fr::from_u64(static_cast<std::uint64_t>(i)) +
           Fr::from_u64(static_cast<std::uint64_t>(PoseidonParams::kWidth + j)))
              .inverse();
    }
  }
  return p;
}

Fr sbox(const Fr& x) {
  const Fr x2 = x.square();
  const Fr x4 = x2.square();
  return x4 * x;
}

void mix(const PoseidonParams& p, std::array<Fr, PoseidonParams::kWidth>& state) {
  std::array<Fr, PoseidonParams::kWidth> out;
  for (int i = 0; i < PoseidonParams::kWidth; ++i) {
    Fr acc = Fr::zero();
    for (int j = 0; j < PoseidonParams::kWidth; ++j) {
      acc += p.mds[i][j] * state[j];
    }
    out[i] = acc;
  }
  state = out;
}

}  // namespace

const PoseidonParams& PoseidonParams::instance() {
  static const PoseidonParams params = build_params();
  return params;
}

void poseidon_permute(std::array<Fr, PoseidonParams::kWidth>& state) {
  const PoseidonParams& p = PoseidonParams::instance();
  const int half_full = PoseidonParams::kFullRounds / 2;
  int round = 0;

  for (int r = 0; r < half_full; ++r, ++round) {
    for (int j = 0; j < PoseidonParams::kWidth; ++j) {
      state[j] = sbox(state[j] + p.round_constants[round][j]);
    }
    mix(p, state);
  }
  for (int r = 0; r < PoseidonParams::kPartialRounds; ++r, ++round) {
    for (int j = 0; j < PoseidonParams::kWidth; ++j) {
      state[j] += p.round_constants[round][j];
    }
    state[0] = sbox(state[0]);
    mix(p, state);
  }
  for (int r = 0; r < half_full; ++r, ++round) {
    for (int j = 0; j < PoseidonParams::kWidth; ++j) {
      state[j] = sbox(state[j] + p.round_constants[round][j]);
    }
    mix(p, state);
  }
}

field::Fr poseidon_hash1(const Fr& a) {
  // Capacity element carries the domain tag (input arity).
  std::array<Fr, PoseidonParams::kWidth> state = {Fr::from_u64(1), a, Fr::zero()};
  poseidon_permute(state);
  return state[0];
}

field::Fr poseidon_hash2(const Fr& a, const Fr& b) {
  std::array<Fr, PoseidonParams::kWidth> state = {Fr::from_u64(2), a, b};
  poseidon_permute(state);
  return state[0];
}

}  // namespace wakurln::hash
