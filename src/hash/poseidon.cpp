#include "hash/poseidon.h"

#include <algorithm>
#include <string>

#include "hash/sha256.h"
#include "util/bytes.h"
#include "util/check.h"

namespace wakurln::hash {

namespace {

using field::Fr;

// Derives a field element from a domain-separated SHA-256 expansion.
Fr derive_constant(const std::string& label) {
  const Digest d = Sha256::digest(label);
  return Fr::from_bytes_be(d);
}

PoseidonParams build_params() {
  PoseidonParams p;
  const int rounds = PoseidonParams::kFullRounds + PoseidonParams::kPartialRounds;
  p.round_constants.reserve(rounds);
  for (int r = 0; r < rounds; ++r) {
    std::array<Fr, PoseidonParams::kWidth> rc;
    for (int j = 0; j < PoseidonParams::kWidth; ++j) {
      rc[j] = derive_constant("wakurln.poseidon.t3.rc." + std::to_string(r) + "." +
                              std::to_string(j));
    }
    p.round_constants.push_back(rc);
  }
  // Cauchy MDS: M[i][j] = 1 / (x_i + y_j) with x = {0,1,2}, y = {3,4,5}.
  // All x_i distinct, all y_j distinct and x_i + y_j != 0 in Fr, which
  // guarantees the matrix is MDS (maximum distance separable).
  for (int i = 0; i < PoseidonParams::kWidth; ++i) {
    for (int j = 0; j < PoseidonParams::kWidth; ++j) {
      p.mds[i][j] =
          (Fr::from_u64(static_cast<std::uint64_t>(i)) +
           Fr::from_u64(static_cast<std::uint64_t>(PoseidonParams::kWidth + j)))
              .inverse();
    }
  }
  return p;
}

Fr sbox(const Fr& x) {
  const Fr x2 = x.square();
  const Fr x4 = x2.square();
  return x4 * x;
}

void mix(const PoseidonParams& p, std::array<Fr, PoseidonParams::kWidth>& state) {
  std::array<Fr, PoseidonParams::kWidth> out;
  for (int i = 0; i < PoseidonParams::kWidth; ++i) {
    Fr acc = Fr::zero();
    for (int j = 0; j < PoseidonParams::kWidth; ++j) {
      acc += p.mds[i][j] * state[j];
    }
    out[i] = acc;
  }
  state = out;
}

}  // namespace

const PoseidonParams& PoseidonParams::instance() {
  static const PoseidonParams params = build_params();
  return params;
}

void poseidon_permute(std::array<Fr, PoseidonParams::kWidth>& state) {
  const PoseidonParams& p = PoseidonParams::instance();
  const int half_full = PoseidonParams::kFullRounds / 2;
  int round = 0;

  for (int r = 0; r < half_full; ++r, ++round) {
    for (int j = 0; j < PoseidonParams::kWidth; ++j) {
      state[j] = sbox(state[j] + p.round_constants[round][j]);
    }
    mix(p, state);
  }
  for (int r = 0; r < PoseidonParams::kPartialRounds; ++r, ++round) {
    for (int j = 0; j < PoseidonParams::kWidth; ++j) {
      state[j] += p.round_constants[round][j];
    }
    state[0] = sbox(state[0]);
    mix(p, state);
  }
  for (int r = 0; r < half_full; ++r, ++round) {
    for (int j = 0; j < PoseidonParams::kWidth; ++j) {
      state[j] = sbox(state[j] + p.round_constants[round][j]);
    }
    mix(p, state);
  }
}

field::Fr poseidon_hash1(const Fr& a) {
  // Capacity element carries the domain tag (input arity).
  std::array<Fr, PoseidonParams::kWidth> state = {Fr::from_u64(1), a, Fr::zero()};
  poseidon_permute(state);
  return state[0];
}

field::Fr poseidon_hash2(const Fr& a, const Fr& b) {
  std::array<Fr, PoseidonParams::kWidth> state = {Fr::from_u64(2), a, b};
  poseidon_permute(state);
  return state[0];
}

namespace {

// States per batch block: bounds the stack scratch and keeps the
// S-box lanes wide enough (24 elements on full rounds) to fill the
// 4-lane interleaved CIOS kernel.
constexpr int kBatchBlock = 8;

// MDS mix as one fused 3x3 kernel: each row is sum(mds[i][j] * state[j])
// accumulated raw with one Montgomery reduction, the three rows
// interleaved in the field layer for ILP. Equal mod r to the scalar
// mix()'s chain of mont_mul + add_mod, and both store canonically, so
// the limbs are bit-identical.
void mix_fused(const PoseidonParams& p,
               std::array<Fr, PoseidonParams::kWidth>& state) {
  static_assert(PoseidonParams::kWidth == 3);
  std::array<Fr, PoseidonParams::kWidth> out;
  Fr::mat3_mul_fused(p.mds, state, out);
  state = out;
}

}  // namespace

void poseidon_permute_batch(
    std::span<std::array<Fr, PoseidonParams::kWidth>> states) {
  constexpr int kW = PoseidonParams::kWidth;
  const PoseidonParams& p = PoseidonParams::instance();
  const int half_full = PoseidonParams::kFullRounds / 2;

  for (std::size_t base = 0; base < states.size(); base += kBatchBlock) {
    const int nb = static_cast<int>(
        std::min<std::size_t>(kBatchBlock, states.size() - base));
    const auto blk = states.subspan(base, static_cast<std::size_t>(nb));

    // Scratch lanes: x holds the S-box inputs, y the running powers.
    std::array<Fr, kW * kBatchBlock> x;
    std::array<Fr, kW * kBatchBlock> y;

    // x^5 over the first n scratch lanes, bit-identical to sbox():
    // two squarings then a multiply by the saved base.
    const auto sbox_lanes = [&](std::size_t n) {
      const std::span<const Fr> xs(x.data(), n);
      const std::span<Fr> ys(y.data(), n);
      Fr::square_batch(xs, ys);
      Fr::square_batch(std::span<const Fr>(y.data(), n), ys);
      Fr::mul_batch(std::span<const Fr>(y.data(), n), xs, ys);
    };

    const auto full_round = [&](int round) {
      for (int b = 0; b < nb; ++b) {
        for (int j = 0; j < kW; ++j) {
          x[static_cast<std::size_t>(kW * b + j)] =
              blk[static_cast<std::size_t>(b)][static_cast<std::size_t>(j)] +
              p.round_constants[static_cast<std::size_t>(round)]
                               [static_cast<std::size_t>(j)];
        }
      }
      sbox_lanes(static_cast<std::size_t>(kW * nb));
      for (int b = 0; b < nb; ++b) {
        for (int j = 0; j < kW; ++j) {
          blk[static_cast<std::size_t>(b)][static_cast<std::size_t>(j)] =
              y[static_cast<std::size_t>(kW * b + j)];
        }
        mix_fused(p, blk[static_cast<std::size_t>(b)]);
      }
    };

    const auto partial_round = [&](int round) {
      for (int b = 0; b < nb; ++b) {
        auto& s = blk[static_cast<std::size_t>(b)];
        for (int j = 0; j < kW; ++j) {
          s[static_cast<std::size_t>(j)] +=
              p.round_constants[static_cast<std::size_t>(round)]
                               [static_cast<std::size_t>(j)];
        }
        x[static_cast<std::size_t>(b)] = s[0];
      }
      sbox_lanes(static_cast<std::size_t>(nb));
      for (int b = 0; b < nb; ++b) {
        auto& s = blk[static_cast<std::size_t>(b)];
        s[0] = y[static_cast<std::size_t>(b)];
        mix_fused(p, s);
      }
    };

    int round = 0;
    for (int r = 0; r < half_full; ++r, ++round) full_round(round);
    for (int r = 0; r < PoseidonParams::kPartialRounds; ++r, ++round) {
      partial_round(round);
    }
    for (int r = 0; r < half_full; ++r, ++round) full_round(round);
  }
}

void poseidon_hash2_batch(std::span<const Fr> a, std::span<const Fr> b,
                          std::span<Fr> out) {
  WAKURLN_CHECK(a.size() == b.size() && a.size() == out.size());
  static const Fr kTag2 = Fr::from_u64(2);
  std::array<std::array<Fr, PoseidonParams::kWidth>, kBatchBlock> states;
  for (std::size_t base = 0; base < a.size(); base += kBatchBlock) {
    const std::size_t nb =
        std::min<std::size_t>(kBatchBlock, a.size() - base);
    for (std::size_t i = 0; i < nb; ++i) {
      states[i] = {kTag2, a[base + i], b[base + i]};
    }
    poseidon_permute_batch(std::span(states.data(), nb));
    for (std::size_t i = 0; i < nb; ++i) {
      out[base + i] = states[i][0];
    }
  }
}

}  // namespace wakurln::hash
