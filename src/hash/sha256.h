#pragma once
// Self-contained SHA-256 and HMAC-SHA-256 (FIPS 180-4 / RFC 2104).
//
// Used for byte-level hashing: message ids, PoW grinding, derivation of
// Poseidon round constants, and the MAC binding inside the mock zkSNARK
// backend. Verified against NIST/RFC test vectors in tests/hash_test.cpp.

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.h"

namespace wakurln::hash {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();

  Sha256& update(std::span<const std::uint8_t> data);
  Sha256& update(std::string_view data);

  /// Finalises and returns the digest. The object must not be reused after.
  Digest finalize();

  /// One-shot convenience.
  static Digest digest(std::span<const std::uint8_t> data);
  static Digest digest(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// HMAC-SHA-256 (RFC 2104).
Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data);

}  // namespace wakurln::hash
