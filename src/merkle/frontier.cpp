#include "merkle/frontier.h"

#include <stdexcept>

#include "hash/poseidon.h"
#include "merkle/merkle_tree.h"

namespace wakurln::merkle {

MerkleFrontier::MerkleFrontier(std::size_t depth) : depth_(depth) {
  if (depth < 1 || depth > 40) {
    throw std::invalid_argument("MerkleFrontier: depth must be in [1, 40]");
  }
  frontier_.assign(depth, field::Fr::zero());
}

std::uint64_t MerkleFrontier::append(const field::Fr& leaf) {
  if (next_index_ >= capacity()) {
    throw std::length_error("MerkleFrontier: capacity exhausted");
  }
  const std::uint64_t index = next_index_++;
  // Standard incremental-merkle insertion: walk up while the current node
  // is a right child, folding with the stored left sibling; when we land on
  // a left child, stash the accumulated hash as the frontier at that level.
  field::Fr acc = leaf;
  std::uint64_t idx = index;
  for (std::size_t level = 0; level < depth_; ++level) {
    if ((idx & 1) == 0) {
      frontier_[level] = acc;
      return index;
    }
    acc = hash::poseidon_hash2(frontier_[level], acc);
    idx >>= 1;
  }
  // Only reachable when the very last leaf (index capacity-1) was added;
  // the accumulated value is the final root, stored in the top slot.
  frontier_.push_back(acc);
  return index;
}

std::uint64_t MerkleFrontier::append_batch(std::span<const field::Fr> leaves) {
  const std::uint64_t k = leaves.size();
  if (k == 0) return next_index_;
  if (k > capacity() || next_index_ > capacity() - k) {
    throw std::length_error("MerkleFrontier: capacity exhausted");
  }
  const std::uint64_t base = next_index_;
  next_index_ += k;

  // Level-synchronous replay of the per-leaf walks. At each level the
  // in-flight values occupy contiguous node indices [s, e]; a leading
  // odd node folds with the pre-batch frontier (exactly what the first
  // arriving walk would read), interior pairs fold with each other, and
  // the frontier slot ends up holding the value of the largest even
  // node — the same slot state the sequence of scalar appends leaves
  // behind, including the left-sibling value root() folds against.
  std::vector<field::Fr> cur(leaves.begin(), leaves.end());
  std::vector<field::Fr> lefts;
  std::vector<field::Fr> rights;
  std::vector<field::Fr> parents;
  std::uint64_t s = base;
  std::size_t level = 0;
  for (; level < depth_ && !cur.empty(); ++level) {
    const std::uint64_t e = s + cur.size() - 1;
    const field::Fr pre = frontier_[level];
    if ((e & 1) == 0) {
      frontier_[level] = cur[static_cast<std::size_t>(e - s)];
    } else if (e > s) {
      frontier_[level] = cur[static_cast<std::size_t>(e - 1 - s)];
    }
    lefts.clear();
    rights.clear();
    std::size_t i = 0;
    if (s & 1) {
      lefts.push_back(pre);
      rights.push_back(cur[0]);
      i = 1;
    }
    for (; i + 1 < cur.size(); i += 2) {
      lefts.push_back(cur[i]);
      rights.push_back(cur[i + 1]);
    }
    parents.resize(lefts.size());
    hash::poseidon_hash2_batch(lefts, rights, parents);
    cur.assign(parents.begin(), parents.end());
    s >>= 1;
  }
  // A value surviving past the top level means the final leaf filled the
  // tree; mirror append()'s push of the now-final root.
  if (!cur.empty() && level == depth_) {
    frontier_.push_back(cur.back());
  }
  return base;
}

field::Fr MerkleFrontier::root() const {
  if (next_index_ == capacity() && frontier_.size() > depth_) {
    return frontier_[depth_];
  }
  // Fold the frontier with zero-subtrees on the right, mirroring what the
  // full tree computes for the same fill state.
  field::Fr acc = zero_at_level(0);
  std::uint64_t idx = next_index_;
  for (std::size_t level = 0; level < depth_; ++level) {
    if (idx & 1) {
      acc = hash::poseidon_hash2(frontier_[level], acc);
    } else {
      acc = hash::poseidon_hash2(acc, zero_at_level(level));
    }
    idx >>= 1;
  }
  return acc;
}

std::size_t MerkleFrontier::storage_bytes() const {
  return frontier_.size() * field::Fr::kByteSize + sizeof(next_index_) + sizeof(depth_);
}

}  // namespace wakurln::merkle
