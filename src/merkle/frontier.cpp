#include "merkle/frontier.h"

#include <stdexcept>

#include "hash/poseidon.h"
#include "merkle/merkle_tree.h"

namespace wakurln::merkle {

MerkleFrontier::MerkleFrontier(std::size_t depth) : depth_(depth) {
  if (depth < 1 || depth > 40) {
    throw std::invalid_argument("MerkleFrontier: depth must be in [1, 40]");
  }
  frontier_.assign(depth, field::Fr::zero());
}

std::uint64_t MerkleFrontier::append(const field::Fr& leaf) {
  if (next_index_ >= capacity()) {
    throw std::length_error("MerkleFrontier: capacity exhausted");
  }
  const std::uint64_t index = next_index_++;
  // Standard incremental-merkle insertion: walk up while the current node
  // is a right child, folding with the stored left sibling; when we land on
  // a left child, stash the accumulated hash as the frontier at that level.
  field::Fr acc = leaf;
  std::uint64_t idx = index;
  for (std::size_t level = 0; level < depth_; ++level) {
    if ((idx & 1) == 0) {
      frontier_[level] = acc;
      return index;
    }
    acc = hash::poseidon_hash2(frontier_[level], acc);
    idx >>= 1;
  }
  // Only reachable when the very last leaf (index capacity-1) was added;
  // the accumulated value is the final root, stored in the top slot.
  frontier_.push_back(acc);
  return index;
}

field::Fr MerkleFrontier::root() const {
  if (next_index_ == capacity() && frontier_.size() > depth_) {
    return frontier_[depth_];
  }
  // Fold the frontier with zero-subtrees on the right, mirroring what the
  // full tree computes for the same fill state.
  field::Fr acc = zero_at_level(0);
  std::uint64_t idx = next_index_;
  for (std::size_t level = 0; level < depth_; ++level) {
    if (idx & 1) {
      acc = hash::poseidon_hash2(frontier_[level], acc);
    } else {
      acc = hash::poseidon_hash2(acc, zero_at_level(level));
    }
    idx >>= 1;
  }
  return acc;
}

std::size_t MerkleFrontier::storage_bytes() const {
  return frontier_.size() * field::Fr::kByteSize + sizeof(next_index_) + sizeof(depth_);
}

}  // namespace wakurln::merkle
