#pragma once
// Incremental Merkle membership tree (the paper's off-chain "membership
// tree", §III). Leaves are member public keys pk = H(sk); internal nodes
// are poseidon_hash2(left, right). Empty leaves hold the canonical zero
// value, so sparse trees have well-defined roots at every fill level.
//
// This "full" tree keeps every populated node so that it can serve
// inclusion proofs for any member — what each routing peer maintains
// locally. The storage-optimised frontier variant (reference [9] of the
// paper) lives in frontier.h.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "field/fr.h"

namespace wakurln::merkle {

/// An authentication path for one leaf.
struct MerkleProof {
  /// Sibling node per level, leaf level first.
  std::vector<field::Fr> siblings;
  /// Leaf index; bit i gives the direction at level i (1 = leaf is right child).
  std::uint64_t leaf_index = 0;

  std::size_t depth() const { return siblings.size(); }
};

/// Cache of "all-zero subtree" node values per level.
/// zeros(0) is the empty-leaf value; zeros(i+1) = H(zeros(i), zeros(i)).
const field::Fr& zero_at_level(std::size_t level);

/// Append-mostly Merkle tree of fixed depth with per-node storage.
class MerkleTree {
 public:
  /// depth in [1, 40]; capacity is 2^depth leaves.
  explicit MerkleTree(std::size_t depth);

  std::size_t depth() const { return depth_; }
  std::uint64_t capacity() const { return std::uint64_t{1} << depth_; }
  std::uint64_t size() const { return next_index_; }

  /// Appends a leaf; returns its index. Throws std::length_error when full.
  std::uint64_t append(const field::Fr& leaf);

  /// Appends `leaves` contiguously in one amortised wavefront pass:
  /// level by level, the whole batch's path nodes are hashed through
  /// poseidon_hash2_batch. Returns the index of the first appended leaf.
  /// If `roots_out` is non-empty it must hold leaves.size() slots and
  /// receives the tree root after each individual append — the final
  /// node storage AND every intermediate root are bit-identical to a
  /// sequence of scalar append() calls (pinned by tests/merkle_test.cpp),
  /// which is what lets GroupSync batch registrations without changing
  /// the acceptable-root-window history. Throws std::length_error when
  /// the batch does not fit.
  std::uint64_t append_batch(std::span<const field::Fr> leaves,
                             std::span<field::Fr> roots_out = {});

  /// Overwrites an existing leaf (member deletion sets it to zero).
  /// Throws std::out_of_range if index >= size().
  void update(std::uint64_t index, const field::Fr& leaf);

  field::Fr root() const;

  /// Leaf value at `index` (zero value if it was never set).
  field::Fr leaf(std::uint64_t index) const;

  /// Authentication path for leaf `index`. Throws std::out_of_range if the
  /// index is beyond the appended range.
  MerkleProof prove(std::uint64_t index) const;

  /// Verifies `proof` for `leaf` against `root`.
  static bool verify(const field::Fr& root, const field::Fr& leaf, const MerkleProof& proof);

  /// Bytes of node storage currently allocated (levels_ content).
  std::size_t storage_bytes() const;

  /// Resident bytes of the whole tree object: the node storage plus the
  /// per-level vector headers and the object itself (the observability
  /// layer's memory-accounting view; storage_bytes() is the paper-facing
  /// node-storage figure).
  std::size_t memory_bytes() const;

  /// Bytes a fully materialised tree of `depth` would occupy
  /// (2^(depth+1) - 1 nodes of 32 bytes) — the paper's 67 MB figure at
  /// depth 20.
  static std::uint64_t full_storage_bytes(std::size_t depth);

 private:
  field::Fr node(std::size_t level, std::uint64_t index) const;
  void set_node(std::size_t level, std::uint64_t index, const field::Fr& value);

  std::size_t depth_;
  std::uint64_t next_index_ = 0;
  /// levels_[l] holds populated nodes at level l (0 = leaves), dense prefix.
  std::vector<std::vector<field::Fr>> levels_;
};

}  // namespace wakurln::merkle
