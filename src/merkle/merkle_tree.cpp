#include "merkle/merkle_tree.h"

#include <stdexcept>

#include "hash/poseidon.h"
#include "util/check.h"

namespace wakurln::merkle {

namespace {
constexpr std::size_t kMaxDepth = 40;
}

const field::Fr& zero_at_level(std::size_t level) {
  static const std::vector<field::Fr> zeros = [] {
    std::vector<field::Fr> z;
    z.reserve(kMaxDepth + 1);
    z.push_back(field::Fr::zero());
    for (std::size_t i = 0; i < kMaxDepth; ++i) {
      z.push_back(hash::poseidon_hash2(z.back(), z.back()));
    }
    return z;
  }();
  if (level >= zeros.size()) {
    throw std::out_of_range("zero_at_level: level too deep");
  }
  return zeros[level];
}

MerkleTree::MerkleTree(std::size_t depth) : depth_(depth) {
  if (depth < 1 || depth > kMaxDepth) {
    throw std::invalid_argument("MerkleTree: depth must be in [1, 40]");
  }
  levels_.resize(depth + 1);
}

field::Fr MerkleTree::node(std::size_t level, std::uint64_t index) const {
  const auto& lvl = levels_[level];
  if (index < lvl.size()) return lvl[index];
  return zero_at_level(level);
}

void MerkleTree::set_node(std::size_t level, std::uint64_t index, const field::Fr& value) {
  auto& lvl = levels_[level];
  if (index >= lvl.size()) {
    lvl.resize(index + 1, zero_at_level(level));
  }
  lvl[index] = value;
}

std::uint64_t MerkleTree::append(const field::Fr& leaf) {
  if (next_index_ >= capacity()) {
    throw std::length_error("MerkleTree: capacity exhausted");
  }
  const std::uint64_t index = next_index_++;
  set_node(0, index, leaf);
  std::uint64_t idx = index;
  for (std::size_t level = 0; level < depth_; ++level) {
    const std::uint64_t parent = idx >> 1;
    const field::Fr left = node(level, parent << 1);
    const field::Fr right = node(level, (parent << 1) | 1);
    set_node(level + 1, parent, hash::poseidon_hash2(left, right));
    idx = parent;
  }
  return index;
}

std::uint64_t MerkleTree::append_batch(std::span<const field::Fr> leaves,
                                       std::span<field::Fr> roots_out) {
  WAKURLN_CHECK(roots_out.empty() || roots_out.size() == leaves.size());
  const std::uint64_t k = leaves.size();
  if (k == 0) return next_index_;
  if (k > capacity() || next_index_ > capacity() - k) {
    throw std::length_error("MerkleTree: capacity exhausted");
  }
  const std::uint64_t base = next_index_;
  next_index_ += k;
  for (std::uint64_t i = 0; i < k; ++i) {
    set_node(0, base + i, leaves[static_cast<std::size_t>(i)]);
  }

  // Wavefront: cur[i] is the value append i writes on its path at the
  // level below; lower levels are fully flushed to storage before a
  // level is hashed, so sibling reads see exactly what the i-th scalar
  // append would have seen:
  //  - path child odd: the left sibling's in-batch writers all strictly
  //    precede i, so its final stored value is the as-of-append-i value;
  //  - path child even: the right sibling's writers all follow i, and
  //    its pre-batch value is beyond the old top, i.e. the zero subtree.
  std::vector<field::Fr> cur(leaves.begin(), leaves.end());
  std::vector<field::Fr> lefts(cur.size());
  std::vector<field::Fr> rights(cur.size());
  std::vector<field::Fr> next(cur.size());
  for (std::size_t level = 1; level <= depth_; ++level) {
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint64_t child = (base + i) >> (level - 1);
      if (child & 1) {
        lefts[i] = node(level - 1, child - 1);
        rights[i] = cur[i];
      } else {
        lefts[i] = cur[i];
        rights[i] = zero_at_level(level - 1);
      }
    }
    hash::poseidon_hash2_batch(lefts, rights, next);
    for (std::size_t i = 0; i < k; ++i) {
      set_node(level, (base + i) >> level, next[i]);
    }
    cur.swap(next);
  }
  for (std::size_t i = 0; i < roots_out.size(); ++i) {
    roots_out[i] = cur[i];
  }
  return base;
}

void MerkleTree::update(std::uint64_t index, const field::Fr& leaf) {
  if (index >= next_index_) {
    throw std::out_of_range("MerkleTree::update: index beyond appended range");
  }
  set_node(0, index, leaf);
  std::uint64_t idx = index;
  for (std::size_t level = 0; level < depth_; ++level) {
    const std::uint64_t parent = idx >> 1;
    const field::Fr left = node(level, parent << 1);
    const field::Fr right = node(level, (parent << 1) | 1);
    set_node(level + 1, parent, hash::poseidon_hash2(left, right));
    idx = parent;
  }
}

field::Fr MerkleTree::root() const {
  return node(depth_, 0);
}

field::Fr MerkleTree::leaf(std::uint64_t index) const {
  return node(0, index);
}

MerkleProof MerkleTree::prove(std::uint64_t index) const {
  if (index >= next_index_) {
    throw std::out_of_range("MerkleTree::prove: index beyond appended range");
  }
  MerkleProof proof;
  proof.leaf_index = index;
  proof.siblings.reserve(depth_);
  std::uint64_t idx = index;
  for (std::size_t level = 0; level < depth_; ++level) {
    proof.siblings.push_back(node(level, idx ^ 1));
    idx >>= 1;
  }
  return proof;
}

bool MerkleTree::verify(const field::Fr& root, const field::Fr& leaf, const MerkleProof& proof) {
  field::Fr acc = leaf;
  std::uint64_t idx = proof.leaf_index;
  for (const field::Fr& sibling : proof.siblings) {
    if (idx & 1) {
      acc = hash::poseidon_hash2(sibling, acc);
    } else {
      acc = hash::poseidon_hash2(acc, sibling);
    }
    idx >>= 1;
  }
  return acc == root;
}

std::size_t MerkleTree::storage_bytes() const {
  std::size_t nodes = 0;
  for (const auto& lvl : levels_) nodes += lvl.size();
  return nodes * field::Fr::kByteSize;
}

std::size_t MerkleTree::memory_bytes() const {
  std::size_t total = sizeof(MerkleTree);
  for (const auto& lvl : levels_) {
    total += sizeof(std::vector<field::Fr>) + lvl.capacity() * sizeof(field::Fr);
  }
  return total;
}

std::uint64_t MerkleTree::full_storage_bytes(std::size_t depth) {
  // Sum over levels l=0..depth of 2^(depth-l) nodes = 2^(depth+1) - 1.
  return ((std::uint64_t{1} << (depth + 1)) - 1) * field::Fr::kByteSize;
}

}  // namespace wakurln::merkle
