#pragma once
// Storage-optimised append-only Merkle accumulator — the optimisation the
// paper cites as reference [9] ("merkle-tree-update"): a peer that only
// needs to *track the current root* (not serve proofs) keeps one node per
// level (the "frontier" of filled left subtrees) instead of the whole tree.
// At depth 20 this shrinks 67 MB of nodes to a few hundred bytes, the
// paper's "0.128 KB" order of magnitude. Benchmarked in bench_merkle_storage.

#include <cstdint>
#include <span>
#include <vector>

#include "field/fr.h"

namespace wakurln::merkle {

/// Append-only root tracker with O(depth) storage and amortised O(1)
/// hashing per append.
class MerkleFrontier {
 public:
  explicit MerkleFrontier(std::size_t depth);

  std::size_t depth() const { return depth_; }
  std::uint64_t capacity() const { return std::uint64_t{1} << depth_; }
  std::uint64_t size() const { return next_index_; }

  /// Appends a leaf; returns its index. Throws std::length_error when full.
  std::uint64_t append(const field::Fr& leaf);

  /// Appends `leaves` in one wavefront pass: per level, sibling pairs
  /// fold through poseidon_hash2_batch instead of one walk per leaf.
  /// Returns the index of the first appended leaf. The resulting
  /// frontier state (and hence every future root()) is bit-identical to
  /// sequential append() calls. Throws std::length_error when the batch
  /// does not fit.
  std::uint64_t append_batch(std::span<const field::Fr> leaves);

  /// Current root (identical to MerkleTree::root() after the same appends).
  field::Fr root() const;

  /// Bytes of persistent state (frontier nodes + counters).
  std::size_t storage_bytes() const;

 private:
  std::size_t depth_;
  std::uint64_t next_index_ = 0;
  /// frontier_[l] is the root of the last completely filled left subtree
  /// at level l, where meaningful for the current fill state.
  std::vector<field::Fr> frontier_;
};

}  // namespace wakurln::merkle
