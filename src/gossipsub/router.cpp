#include "gossipsub/router.h"

#include <algorithm>
#include <cstddef>
#include <limits>

#include "obs/memory.h"
#include "obs/tracer.h"

namespace wakurln::gossipsub {

using sim::NodeId;

namespace {

// Sorted-vector set operations for mesh/fanout membership. The sorted
// order reproduces std::set iteration, which the deterministic send
// sequence (and hence the byte-identity pins) depends on.

bool sorted_contains(const std::vector<NodeId>& v, NodeId x) {
  return std::binary_search(v.begin(), v.end(), x);
}

bool sorted_insert(std::vector<NodeId>& v, NodeId x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) return false;
  v.insert(it, x);
  return true;
}

bool sorted_erase(std::vector<NodeId>& v, NodeId x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) return false;
  v.erase(it);
  return true;
}

std::uint64_t topic_bit(std::uint32_t idx) { return std::uint64_t{1} << idx; }

}  // namespace

GossipSubRouter::GossipSubRouter(NodeId self, sim::Network& network,
                                 std::shared_ptr<const GossipSubParams> params,
                                 std::shared_ptr<TopicTable> table)
    : self_(self),
      network_(network),
      params_(std::move(params)),
      table_(std::move(table)),
      rng_(network.rng().next_u64() ^ (0x9e3779b97f4a7c15ULL * (self + 1))),
      mcache_(params_->mcache_len, params_->mcache_gossip, table_),
      score_tracker_(params_->enable_scoring
                         ? std::make_unique<PeerScoreTracker>(params_->score)
                         : nullptr) {}

GossipSubRouter::GossipSubRouter(NodeId self, sim::Network& network,
                                 GossipSubParams params)
    : GossipSubRouter(self, network,
                      std::make_shared<const GossipSubParams>(std::move(params)),
                      std::make_shared<TopicTable>()) {}

void GossipSubRouter::start() {
  if (started_) return;
  started_ = true;
  sim::NodeCallbacks callbacks;
  callbacks.on_frame = [this](NodeId from, const sim::Frame& frame, std::size_t) {
    on_frame(from, frame);
  };
  callbacks.on_peer_connected = [this](NodeId peer) { on_peer_connected(peer); };
  callbacks.on_peer_disconnected = [this](NodeId peer) { on_peer_disconnected(peer); };
  network_.set_callbacks(self_, std::move(callbacks));

  // Adopt peers connected before start().
  for (NodeId peer : network_.neighbors(self_)) on_peer_connected(peer);

  // First-class periodic timer: the heartbeat callback is stored once in
  // the scheduler's timer table and re-armed by the engine after every
  // tick — no lambda re-capture, no allocation per heartbeat. The timer
  // is owned by this node's shard lane, so heartbeats of different
  // partitions run in parallel; the callback touches only this router's
  // state (mesh maintenance, gossip emission).
  const sim::TimeUs stagger = rng_.uniform(0, params().heartbeat_interval - 1);
  heartbeat_timer_ = network_.scheduler().schedule_periodic_for(
      self_, stagger, params().heartbeat_interval, [this] { heartbeat(); });
}

void GossipSubRouter::on_peer_connected(NodeId peer) {
  if (peers_.contains(peer)) return;
  peers_.emplace(peer, std::uint64_t{0});
  if (score_tracker_) score_tracker_->set_peer_ip(peer, peer);  // default: unique IP
  // Announce our subscriptions to the new peer.
  if (!topics_.empty()) {
    Rpc rpc;
    for (const TopicId& t : topics_) rpc.subscriptions.push_back({t, true});
    send_rpc(peer, std::move(rpc));
  }
}

void GossipSubRouter::on_peer_disconnected(NodeId peer) {
  peers_.erase(peer);
  for (auto& [topic, mesh] : mesh_) {
    if (sorted_erase(mesh, peer) && score_tracker_) {
      score_tracker_->on_leave_mesh(peer, topic);
    }
  }
  for (auto& [topic, fanout] : fanout_) sorted_erase(fanout.peers, peer);
  if (score_tracker_) score_tracker_->remove_peer(peer);
}

void GossipSubRouter::set_peer_ip(NodeId peer, std::uint32_t ip) {
  if (score_tracker_) score_tracker_->set_peer_ip(peer, ip);
}

void GossipSubRouter::on_frame(NodeId from, const sim::Frame& frame) {
  const Rpc* rpc = frame.get_if<Rpc>();
  if (rpc == nullptr) return;  // foreign frame type
  handle_rpc(from, *rpc);
}

void GossipSubRouter::subscribe(const TopicId& topic) {
  if (!topics_.insert(topic).second) return;
  mesh_.try_emplace(topic);
  // Move fanout peers into the mesh seed set, as in libp2p.
  if (const auto it = fanout_.find(topic); it != fanout_.end()) {
    for (NodeId p : it->second.peers) {
      if (mesh_[topic].size() < static_cast<std::size_t>(params().d)) {
        sorted_insert(mesh_[topic], p);
        if (score_tracker_) {
          score_tracker_->on_join_mesh(p, topic, network_.scheduler().now());
        }
      }
    }
    fanout_.erase(it);
  }
  Rpc announce;
  announce.subscriptions.push_back({topic, true});
  // Target order follows peers_ iteration so the rng draw sequence of the
  // sends is unchanged by the shared-frame fan-out.
  std::vector<NodeId> announce_to;
  announce_to.reserve(peers_.size());
  for (const auto& [peer, mask] : peers_) announce_to.push_back(peer);
  send_rpc_shared(announce_to, std::move(announce),
                  std::numeric_limits<double>::lowest());
  // Graft eagerly where possible; the heartbeat tops the mesh up later.
  auto& mesh = mesh_[topic];
  maintain_mesh(topic, mesh);
}

void GossipSubRouter::unsubscribe(const TopicId& topic) {
  if (topics_.erase(topic) == 0) return;
  if (const auto it = mesh_.find(topic); it != mesh_.end()) {
    for (NodeId peer : it->second) {
      Rpc rpc;
      rpc.prune.push_back(make_prune(topic, peer));
      rpc.subscriptions.push_back({topic, false});
      send_rpc(peer, std::move(rpc));
      if (score_tracker_) score_tracker_->on_leave_mesh(peer, topic);
    }
    mesh_.erase(it);
  }
  Rpc announce;
  announce.subscriptions.push_back({topic, false});
  std::vector<NodeId> announce_to;
  announce_to.reserve(peers_.size());
  for (const auto& [peer, mask] : peers_) announce_to.push_back(peer);
  send_rpc_shared(announce_to, std::move(announce),
                  std::numeric_limits<double>::lowest());
}

MessageId GossipSubRouter::publish(const TopicId& topic, util::Bytes payload,
                                   bool apply_validator) {
  GsMessage msg = GsMessage::create(topic, std::move(payload));
  const MessageId id = msg.id;

  if (apply_validator) {
    if (const auto it = validators_.find(topic); it != validators_.end()) {
      switch (it->second(self_, msg)) {
        case Validation::kReject:
          ++stats_.rejected;  // own message; no score self-penalty
          return id;
        case Validation::kIgnore:
          ++stats_.ignored;
          return id;
        case Validation::kAccept:
          break;
      }
    }
  }

  const auto shared = std::make_shared<const GsMessage>(std::move(msg));

  seen_.insert(id, network_.scheduler().now());
  mcache_.put(shared);

  std::vector<NodeId> targets;
  if (topics_.contains(topic)) {
    // Own-topic publish: deliver locally and send to the mesh.
    if (message_handler_) message_handler_(*shared);
    ++stats_.delivered;
    targets = mesh_.at(topic);
  } else {
    // Fanout publish.
    FanoutState& fanout = fanout_[topic];
    fanout.last_publish = network_.scheduler().now();
    if (fanout.peers.empty()) {
      fanout.peers = sample(topic_peers(topic, params().score.publish_threshold),
                            static_cast<std::size_t>(params().d));
      std::sort(fanout.peers.begin(), fanout.peers.end());
    }
    targets = fanout.peers;
  }

  Rpc rpc;
  rpc.publish.push_back(shared);
  send_rpc_shared(targets, std::move(rpc), params().score.publish_threshold);
  return id;
}

void GossipSubRouter::set_message_handler(MessageHandler handler) {
  message_handler_ = std::move(handler);
}

void GossipSubRouter::set_validator(const TopicId& topic, Validator validator) {
  validators_[topic] = std::move(validator);
}

void GossipSubRouter::handle_rpc(NodeId from, const Rpc& rpc) {
  if (!peers_.contains(from)) {
    // Frame from a peer whose connect notification raced this frame.
    peers_.emplace(from, std::uint64_t{0});
    if (score_tracker_) score_tracker_->set_peer_ip(from, from);
  }
  if (params().enable_scoring &&
      score_of(from) < params().score.graylist_threshold) {
    ++stats_.graylisted_frames;
    return;
  }

  for (const SubscriptionChange& sub : rpc.subscriptions) {
    if (sub.subscribe) {
      peers_[from] |= topic_bit(table_->intern(sub.topic));
    } else {
      if (const std::uint32_t idx = table_->find(sub.topic);
          idx != TopicTable::kNotFound) {
        peers_[from] &= ~topic_bit(idx);
      }
      if (const auto it = mesh_.find(sub.topic); it != mesh_.end()) {
        if (sorted_erase(it->second, from) && score_tracker_) {
          score_tracker_->on_leave_mesh(from, sub.topic);
        }
      }
    }
  }

  Rpc reply;
  for (const ControlGraft& graft : rpc.graft) handle_graft(from, graft.topic, reply);
  for (const ControlPrune& prune : rpc.prune) handle_prune(from, prune);

  for (const GsMessagePtr& msg : rpc.publish) {
    if (msg) handle_message(from, msg);
  }

  // IHAVE: request unseen ids, respecting the gossip score threshold.
  if (!(params().enable_scoring &&
        score_of(from) < params().score.gossip_threshold)) {
    ControlIWant iwant;
    for (const ControlIHave& ihave : rpc.ihave) {
      if (!topics_.contains(ihave.topic)) continue;
      for (const MessageId& id : ihave.ids) {
        if (!seen_.contains(id) && iwant.ids.size() < params().max_iwant_ids) {
          iwant.ids.push_back(id);
        }
      }
    }
    if (!iwant.ids.empty()) reply.iwant.push_back(std::move(iwant));
  }

  // IWANT: serve shared frames straight from the message cache.
  for (const ControlIWant& iwant : rpc.iwant) {
    for (const MessageId& id : iwant.ids) {
      if (auto msg = mcache_.get(id)) reply.publish.push_back(std::move(msg));
    }
  }

  if (!reply.empty()) send_rpc(from, std::move(reply));
}

void GossipSubRouter::handle_message(NodeId from, const GsMessagePtr& msg_ptr) {
  const GsMessage& msg = *msg_ptr;
  // P3 bookkeeping: deliveries (first or duplicate) from mesh members.
  if (score_tracker_) {
    if (const auto mesh_it = mesh_.find(msg.topic);
        mesh_it != mesh_.end() && sorted_contains(mesh_it->second, from)) {
      score_tracker_->on_mesh_delivery(from, msg.topic);
    }
  }
  if (seen_.contains(msg.id)) {
    ++stats_.duplicates;
    return;
  }
  seen_.insert(msg.id, network_.scheduler().now());

  // Application validation (the WAKU-RLN-RELAY hook).
  Validation verdict = Validation::kAccept;
  if (const auto it = validators_.find(msg.topic); it != validators_.end()) {
    verdict = it->second(from, msg);
  }
  switch (verdict) {
    case Validation::kReject:
      ++stats_.rejected;
      if (score_tracker_) score_tracker_->on_invalid_message(from, msg.topic);
      return;
    case Validation::kIgnore:
      ++stats_.ignored;
      return;
    case Validation::kAccept:
      break;
  }

  if (score_tracker_) score_tracker_->on_first_delivery(from, msg.topic);
  mcache_.put(msg_ptr);  // shares the sender's allocation

  if (topics_.contains(msg.topic)) {
    ++stats_.delivered;
    if (message_handler_) message_handler_(msg);
  }
  forward(msg_ptr, from);
}

void GossipSubRouter::handle_graft(NodeId from, const TopicId& topic, Rpc& reply) {
  if (!topics_.contains(topic) || in_backoff(topic, from) ||
      (params().enable_scoring &&
       score_of(from) < params().score.mesh_threshold)) {
    reply.prune.push_back(make_prune(topic, from));
    set_backoff(topic, from);
    return;
  }
  auto& mesh = mesh_[topic];
  if (sorted_insert(mesh, from) && score_tracker_) {
    score_tracker_->on_join_mesh(from, topic, network_.scheduler().now());
  }
}

void GossipSubRouter::handle_prune(NodeId from, const ControlPrune& prune) {
  const TopicId& topic = prune.topic;
  if (const auto it = mesh_.find(topic); it != mesh_.end()) {
    if (sorted_erase(it->second, from) && score_tracker_) {
      score_tracker_->on_leave_mesh(from, topic);
    }
  }
  set_backoff(topic, from);  // do not re-graft the pruner for a while

  // Peer exchange: connect to advertised topic peers we do not know yet,
  // unless the pruner's score disqualifies its referrals.
  if (prune.px.empty() || params().px_connect == 0) return;
  if (params().enable_scoring &&
      score_of(from) < params().score.accept_px_threshold) {
    return;
  }
  std::size_t opened = 0;
  for (const std::uint32_t candidate : prune.px) {
    if (opened >= params().px_connect) break;
    if (candidate == self_ || network_.are_connected(self_, candidate)) continue;
    network_.connect(self_, candidate);
    ++opened;
  }
}

ControlPrune GossipSubRouter::make_prune(const TopicId& topic, NodeId about_to_prune) {
  ControlPrune prune;
  prune.topic = topic;
  if (params().px_peers > 0) {
    std::vector<NodeId> candidates =
        topic_peers(topic, params().score.gossip_threshold);
    candidates.erase(
        std::remove(candidates.begin(), candidates.end(), about_to_prune),
        candidates.end());
    for (NodeId peer : sample(std::move(candidates), params().px_peers)) {
      prune.px.push_back(peer);
    }
  }
  return prune;
}

void GossipSubRouter::set_backoff(const TopicId& topic, NodeId peer) {
  const sim::TimeUs deadline = network_.scheduler().now() + params().prune_backoff;
  auto& entries = backoff_[topic];
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), peer,
      [](const BackoffEntry& e, NodeId p) { return e.first < p; });
  if (it != entries.end() && it->first == peer) {
    it->second = deadline;
  } else {
    entries.insert(it, {peer, deadline});
  }
}

bool GossipSubRouter::in_backoff(const TopicId& topic, NodeId peer) const {
  const auto topic_it = backoff_.find(topic);
  if (topic_it == backoff_.end()) return false;
  const auto& entries = topic_it->second;
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), peer,
      [](const BackoffEntry& e, NodeId p) { return e.first < p; });
  return it != entries.end() && it->first == peer &&
         network_.scheduler().now() < it->second;
}

void GossipSubRouter::forward(const GsMessagePtr& msg, std::optional<NodeId> exclude) {
  const auto it = mesh_.find(msg->topic);
  if (it == mesh_.end()) return;
  std::vector<NodeId> targets;
  targets.reserve(it->second.size());
  for (NodeId peer : it->second) {
    if (exclude && peer == *exclude) continue;
    targets.push_back(peer);
  }
  Rpc rpc;
  rpc.publish.push_back(msg);
  const std::size_t sent =
      send_rpc_shared(targets, std::move(rpc), std::numeric_limits<double>::lowest());
  stats_.forwarded += sent;
  if (tracer_ != nullptr && sent > 0) {
    tracer_->instant("forward", network_.scheduler().now(), self_,
                     obs::short_id(msg->id));
  }
}

void GossipSubRouter::heartbeat() {
  // 1. Mesh maintenance.
  for (auto& [topic, mesh] : mesh_) maintain_mesh(topic, mesh);

  // 2. Fanout expiry.
  const sim::TimeUs now = network_.scheduler().now();
  for (auto it = fanout_.begin(); it != fanout_.end();) {
    if (now - it->second.last_publish > params().fanout_ttl) {
      it = fanout_.erase(it);
    } else {
      ++it;
    }
  }

  // 3. Gossip emission (IHAVE to non-mesh peers).
  emit_gossip();

  // 4. Cache maintenance.
  mcache_.shift();
  seen_.expire_older_than(now, params().seen_ttl);
  for (auto& [topic, entries] : backoff_) {
    std::erase_if(entries, [&](const BackoffEntry& e) { return now >= e.second; });
  }

  // 5. Score decay.
  if (score_tracker_) score_tracker_->decay();
  // The periodic timer re-arms the next tick after this callback returns,
  // sequenced after every frame the tick just scheduled (the same order
  // the old tail-call schedule_after produced).
}

void GossipSubRouter::maintain_mesh(const TopicId& topic,
                                    std::vector<NodeId>& mesh) {
  // Drop mesh members that fell below the mesh score threshold.
  if (params().enable_scoring) {
    for (std::size_t i = 0; i < mesh.size();) {
      const NodeId peer = mesh[i];
      if (score_of(peer) < params().score.mesh_threshold) {
        Rpc rpc;
        rpc.prune.push_back(make_prune(topic, peer));
        send_rpc(peer, std::move(rpc));
        if (score_tracker_) score_tracker_->on_leave_mesh(peer, topic);
        mesh.erase(mesh.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  if (mesh.size() < static_cast<std::size_t>(params().d_lo)) {
    std::vector<NodeId> candidates =
        topic_peers(topic, params().score.mesh_threshold);
    candidates.erase(
        std::remove_if(candidates.begin(), candidates.end(),
                       [&](NodeId p) {
                         return sorted_contains(mesh, p) || in_backoff(topic, p);
                       }),
        candidates.end());
    const std::size_t want = static_cast<std::size_t>(params().d) - mesh.size();
    for (NodeId peer : sample(std::move(candidates), want)) {
      sorted_insert(mesh, peer);
      if (score_tracker_) {
        score_tracker_->on_join_mesh(peer, topic, network_.scheduler().now());
      }
      Rpc rpc;
      rpc.graft.push_back({topic});
      send_rpc(peer, std::move(rpc));
    }
  } else if (mesh.size() > static_cast<std::size_t>(params().d_hi)) {
    std::vector<NodeId> members = mesh;
    if (params().enable_scoring) {
      // Keep the highest-scoring peers: prune from the low end.
      std::sort(members.begin(), members.end(), [&](NodeId a, NodeId b) {
        return score_of(a) < score_of(b);
      });
    } else {
      members = sample(std::move(members), members.size());  // shuffle
    }
    while (mesh.size() > static_cast<std::size_t>(params().d) && !members.empty()) {
      const NodeId victim = members.front();
      members.erase(members.begin());
      sorted_erase(mesh, victim);
      if (score_tracker_) score_tracker_->on_leave_mesh(victim, topic);
      set_backoff(topic, victim);
      Rpc rpc;
      rpc.prune.push_back(make_prune(topic, victim));
      send_rpc(victim, std::move(rpc));
    }
  }
}

void GossipSubRouter::emit_gossip() {
  for (const TopicId& topic : topics_) {
    const std::vector<MessageId> ids = mcache_.gossip_ids(topic);
    if (ids.empty()) continue;
    std::vector<NodeId> candidates =
        topic_peers(topic, params().score.gossip_threshold);
    const auto& mesh = mesh_.at(topic);
    candidates.erase(
        std::remove_if(candidates.begin(), candidates.end(),
                       [&](NodeId p) { return sorted_contains(mesh, p); }),
        candidates.end());
    Rpc rpc;
    rpc.ihave.push_back({topic, ids});
    send_rpc_shared(
        sample(std::move(candidates), static_cast<std::size_t>(params().d_lazy)),
        std::move(rpc), std::numeric_limits<double>::lowest());
  }
}

void GossipSubRouter::send_rpc(NodeId to, Rpc rpc) {
  if (!network_.are_connected(self_, to)) return;
  const Rpc::WireBreakdown breakdown = rpc.wire_breakdown();
  stats_.payload_bytes_sent += breakdown.payload;
  stats_.control_bytes_sent += breakdown.control;
  network_.send(self_, to, sim::Frame::of<Rpc>(std::move(rpc)), breakdown.total());
}

std::size_t GossipSubRouter::send_rpc_shared(const std::vector<NodeId>& targets,
                                             Rpc rpc, double min_score) {
  if (targets.empty() || rpc.empty()) return 0;
  const Rpc::WireBreakdown breakdown = rpc.wire_breakdown();
  const std::size_t bytes = breakdown.total();
  // One heap allocation for the whole fan-out; each send shares it.
  const sim::Frame frame = sim::Frame::of<Rpc>(std::move(rpc));
  std::size_t sent = 0;
  for (NodeId to : targets) {
    if (params().enable_scoring && score_of(to) < min_score) continue;
    if (!network_.are_connected(self_, to)) continue;
    stats_.payload_bytes_sent += breakdown.payload;
    stats_.control_bytes_sent += breakdown.control;
    network_.send(self_, to, frame, bytes);
    ++sent;
  }
  return sent;
}

std::vector<NodeId> GossipSubRouter::topic_peers(const TopicId& topic,
                                                 double min_score) const {
  std::vector<NodeId> out;
  const std::uint32_t idx = table_->find(topic);
  if (idx == TopicTable::kNotFound) return out;  // nobody announced it yet
  const std::uint64_t bit = topic_bit(idx);
  for (const auto& [peer, mask] : peers_) {
    if ((mask & bit) == 0) continue;
    if (params().enable_scoring && score_of(peer) < min_score) continue;
    out.push_back(peer);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> GossipSubRouter::sample(std::vector<NodeId> pool, std::size_t n) {
  const std::size_t picks = std::min(n, pool.size());
  for (std::size_t i = 0; i < picks; ++i) {
    const std::size_t j = i + rng_.uniform(0, pool.size() - 1 - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(picks);
  return pool;
}

double GossipSubRouter::score_of(NodeId peer) const {
  if (!score_tracker_) return 0.0;
  return score_tracker_->score(peer, network_.scheduler().now());
}

std::vector<NodeId> GossipSubRouter::mesh_peers(const TopicId& topic) const {
  const auto it = mesh_.find(topic);
  if (it == mesh_.end()) return {};
  return it->second;
}

std::vector<NodeId> GossipSubRouter::known_peers() const {
  std::vector<NodeId> out;
  out.reserve(peers_.size());
  for (const auto& [peer, mask] : peers_) out.push_back(peer);
  std::sort(out.begin(), out.end());
  return out;
}

double GossipSubRouter::peer_score(NodeId peer) const {
  return score_of(peer);
}

std::size_t GossipSubRouter::memory_bytes() const {
  // Modeled libstdc++ resident bytes (constants in obs/memory.h).
  // Summing over unordered containers is order-independent, so the value
  // is deterministic for a fixed workload. The shared parameter block and
  // topic table are charged once per world by the harness, not here.
  std::size_t total = sizeof(GossipSubRouter);

  total += peers_.bucket_count() * sizeof(void*);
  total += peers_.size() * (obs::kUnorderedNodeBytes +
                            sizeof(std::pair<const sim::NodeId, std::uint64_t>));

  for (const TopicId& topic : topics_) {
    total += obs::kTreeNodeBytes + sizeof(TopicId) + obs::string_heap_bytes(topic);
  }

  for (const auto& [topic, mesh] : mesh_) {
    total += obs::kTreeNodeBytes +
             sizeof(std::pair<const TopicId, std::vector<sim::NodeId>>) +
             obs::string_heap_bytes(topic);
    total += mesh.capacity() * sizeof(sim::NodeId);
  }

  for (const auto& [topic, fanout] : fanout_) {
    total += obs::kTreeNodeBytes + sizeof(std::pair<const TopicId, FanoutState>) +
             obs::string_heap_bytes(topic);
    total += fanout.peers.capacity() * sizeof(sim::NodeId);
  }

  for (const auto& [topic, entries] : backoff_) {
    total += obs::kTreeNodeBytes +
             sizeof(std::pair<const TopicId, std::vector<BackoffEntry>>) +
             obs::string_heap_bytes(topic);
    total += entries.capacity() * sizeof(BackoffEntry);
  }

  // seen_ is a by-value member, so its sizeof is already inside
  // sizeof(GossipSubRouter); add only its slot arrays.
  total += seen_.memory_bytes() - sizeof(SeenCache);

  total += validators_.bucket_count() * sizeof(void*);
  for (const auto& [topic, validator] : validators_) {
    (void)validator;
    total += obs::kUnorderedNodeBytes +
             sizeof(std::pair<const TopicId, Validator>) +
             obs::string_heap_bytes(topic);
  }

  if (score_tracker_) total += sizeof(PeerScoreTracker);

  return total;
}

}  // namespace wakurln::gossipsub
