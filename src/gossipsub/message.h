#pragma once
// GossipSub wire frames (modelled on libp2p GossipSub v1.1 [3]). Messages
// are content-addressed — the id is a hash of (topic, data) — which is a
// prerequisite for sender anonymity: no sequence numbers or origin fields
// appear anywhere in the frame (Waku-Relay's PII stripping, §I).

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace wakurln::gossipsub {

using TopicId = std::string;

/// Content-derived message identifier.
using MessageId = std::array<std::uint8_t, 32>;

struct MessageIdHash {
  std::size_t operator()(const MessageId& id) const {
    std::uint64_t v;
    std::memcpy(&v, id.data(), sizeof(v));
    return static_cast<std::size_t>(v);
  }
};

/// A published application message.
struct GsMessage {
  TopicId topic;
  util::Bytes data;
  MessageId id{};

  /// Builds a message with its content-derived id.
  static GsMessage create(TopicId topic, util::Bytes data);

  /// Approximate wire footprint (payload + topic + framing).
  std::size_t wire_size() const { return data.size() + topic.size() + 40; }
};

/// "I have these message ids in topic" gossip advertisement.
struct ControlIHave {
  TopicId topic;
  std::vector<MessageId> ids;
};

/// Request for full messages previously advertised.
struct ControlIWant {
  std::vector<MessageId> ids;
};

/// Mesh join request for a topic.
struct ControlGraft {
  TopicId topic;
};

/// Mesh leave notice for a topic. Optionally carries Peer Exchange (PX):
/// other peers on the topic the pruned node may connect to instead, so
/// pruning does not strand sparsely-connected subscribers.
struct ControlPrune {
  TopicId topic;
  std::vector<std::uint32_t> px;  ///< candidate peer ids (NodeId)
};

/// Subscription state announcement.
struct SubscriptionChange {
  TopicId topic;
  bool subscribe = true;
};

/// One router-to-router frame batching messages and control traffic.
struct Rpc {
  std::vector<GsMessage> publish;
  std::vector<SubscriptionChange> subscriptions;
  std::vector<ControlIHave> ihave;
  std::vector<ControlIWant> iwant;
  std::vector<ControlGraft> graft;
  std::vector<ControlPrune> prune;

  bool empty() const;
  std::size_t wire_size() const;
};

}  // namespace wakurln::gossipsub
