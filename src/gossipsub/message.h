#pragma once
// GossipSub wire frames (modelled on libp2p GossipSub v1.1 [3]). Messages
// are content-addressed — the id is a hash of (topic, data) — which is a
// prerequisite for sender anonymity: no sequence numbers or origin fields
// appear anywhere in the frame (Waku-Relay's PII stripping, §I).
//
// Payloads are immutable util::SharedBytes views, and Rpc::publish holds
// shared_ptr<const GsMessage> entries: the whole message (topic + id +
// payload) lives in one heap allocation shared by the publisher's fan-out,
// every forwarding hop, the message cache and IWANT replies.
//
// ---------------------------------------------------------------------
// Wire-size model — the single source of truth for byte accounting.
// Every byte the traffic metrics charge is derived from the constants
// below; nothing else in the codebase invents frame sizes.
//
//   Rpc frame          kRpcHeaderBytes
//                        (length-delimited protobuf-style envelope)
//   published message  data + topic + kMessageFramingBytes
//                        (content id 32 + field tags/lengths 8)
//   control entry      kControlEntryBytes (entry tag + length + flags;
//                        covers the subscribe bool of a subscription)
//     + per IHAVE/IWANT id list:  kIdListCountBytes + 32 per message id
//     + per PRUNE PX record:      kPxRecordBytes per candidate peer
//   topic strings      charged at byte length wherever they appear
// ---------------------------------------------------------------------

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/shared_bytes.h"

namespace wakurln::gossipsub {

using TopicId = std::string;

inline constexpr std::size_t kRpcHeaderBytes = 8;
inline constexpr std::size_t kMessageIdBytes = 32;
inline constexpr std::size_t kMessageFramingBytes = kMessageIdBytes + 8;
inline constexpr std::size_t kControlEntryBytes = 2;
inline constexpr std::size_t kIdListCountBytes = 2;
inline constexpr std::size_t kPxRecordBytes = 4;

/// Content-derived message identifier.
using MessageId = std::array<std::uint8_t, kMessageIdBytes>;

struct MessageIdHash {
  std::size_t operator()(const MessageId& id) const {
    std::uint64_t v;
    std::memcpy(&v, id.data(), sizeof(v));
    return static_cast<std::size_t>(v);
  }
};

/// A published application message.
struct GsMessage {
  TopicId topic;
  util::SharedBytes data;
  MessageId id{};

  /// Builds a message with its content-derived id.
  static GsMessage create(TopicId topic, util::Bytes data);
  static GsMessage create(TopicId topic, util::SharedBytes data);

  /// Wire footprint per the model above (payload + topic + framing).
  std::size_t wire_size() const {
    return data.size() + topic.size() + kMessageFramingBytes;
  }
};

/// Shared handle to an immutable message — the unit the fan-out, mcache
/// and IWANT paths pass around without copying.
using GsMessagePtr = std::shared_ptr<const GsMessage>;

/// "I have these message ids in topic" gossip advertisement.
struct ControlIHave {
  TopicId topic;
  std::vector<MessageId> ids;
};

/// Request for full messages previously advertised.
struct ControlIWant {
  std::vector<MessageId> ids;
};

/// Mesh join request for a topic.
struct ControlGraft {
  TopicId topic;
};

/// Mesh leave notice for a topic. Optionally carries Peer Exchange (PX):
/// other peers on the topic the pruned node may connect to instead, so
/// pruning does not strand sparsely-connected subscribers.
struct ControlPrune {
  TopicId topic;
  std::vector<std::uint32_t> px;  ///< candidate peer ids (NodeId)
};

/// Subscription state announcement.
struct SubscriptionChange {
  TopicId topic;
  bool subscribe = true;
};

/// One router-to-router frame batching messages and control traffic.
struct Rpc {
  std::vector<GsMessagePtr> publish;
  std::vector<SubscriptionChange> subscriptions;
  std::vector<ControlIHave> ihave;
  std::vector<ControlIWant> iwant;
  std::vector<ControlGraft> graft;
  std::vector<ControlPrune> prune;

  /// Wire bytes split by class, per the model above.
  struct WireBreakdown {
    std::size_t payload = 0;  ///< published messages incl. their framing
    std::size_t control = 0;  ///< frame header + all control entries
    std::size_t total() const { return payload + control; }
  };

  bool empty() const;
  WireBreakdown wire_breakdown() const;
  std::size_t wire_size() const { return wire_breakdown().total(); }
};

}  // namespace wakurln::gossipsub
