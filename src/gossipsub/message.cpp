#include "gossipsub/message.h"

#include <cstring>

#include "hash/sha256.h"
#include "util/serde.h"

namespace wakurln::gossipsub {

GsMessage GsMessage::create(TopicId topic, util::Bytes data) {
  GsMessage msg;
  msg.topic = std::move(topic);
  msg.data = std::move(data);
  util::ByteWriter w;
  w.put_var(util::to_bytes(msg.topic));
  w.put_var(msg.data);
  msg.id = hash::Sha256::digest(w.data());
  return msg;
}

bool Rpc::empty() const {
  return publish.empty() && subscriptions.empty() && ihave.empty() && iwant.empty() &&
         graft.empty() && prune.empty();
}

std::size_t Rpc::wire_size() const {
  std::size_t size = 8;  // frame header
  for (const auto& m : publish) size += m.wire_size();
  for (const auto& s : subscriptions) size += s.topic.size() + 2;
  for (const auto& ih : ihave) size += ih.topic.size() + ih.ids.size() * 32 + 4;
  for (const auto& iw : iwant) size += iw.ids.size() * 32 + 4;
  for (const auto& g : graft) size += g.topic.size() + 2;
  for (const auto& p : prune) size += p.topic.size() + 2 + p.px.size() * 4;
  return size;
}

}  // namespace wakurln::gossipsub
