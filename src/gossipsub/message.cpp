#include "gossipsub/message.h"

#include <cstring>

#include "hash/sha256.h"
#include "util/serde.h"

namespace wakurln::gossipsub {

GsMessage GsMessage::create(TopicId topic, util::Bytes data) {
  return create(std::move(topic), util::SharedBytes(std::move(data)));
}

GsMessage GsMessage::create(TopicId topic, util::SharedBytes data) {
  GsMessage msg;
  msg.topic = std::move(topic);
  msg.data = std::move(data);
  util::ByteWriter w;
  w.put_var(util::to_bytes(msg.topic));
  w.put_var(msg.data);
  msg.id = hash::Sha256::digest(w.data());
  return msg;
}

bool Rpc::empty() const {
  return publish.empty() && subscriptions.empty() && ihave.empty() && iwant.empty() &&
         graft.empty() && prune.empty();
}

Rpc::WireBreakdown Rpc::wire_breakdown() const {
  WireBreakdown b;
  b.control = kRpcHeaderBytes;
  for (const auto& m : publish) b.payload += m->wire_size();
  for (const auto& s : subscriptions) b.control += s.topic.size() + kControlEntryBytes;
  for (const auto& ih : ihave) {
    b.control += ih.topic.size() + kControlEntryBytes + kIdListCountBytes +
                 ih.ids.size() * kMessageIdBytes;
  }
  for (const auto& iw : iwant) {
    b.control +=
        kControlEntryBytes + kIdListCountBytes + iw.ids.size() * kMessageIdBytes;
  }
  for (const auto& g : graft) b.control += g.topic.size() + kControlEntryBytes;
  for (const auto& p : prune) {
    b.control += p.topic.size() + kControlEntryBytes + p.px.size() * kPxRecordBytes;
  }
  return b;
}

}  // namespace wakurln::gossipsub
