#include "gossipsub/seen_cache.h"

namespace wakurln::gossipsub {

namespace {
constexpr std::size_t kMinCapacity = 16;

/// Smallest power-of-two capacity keeping load <= 3/4 for `entries`.
std::size_t capacity_for(std::size_t entries) {
  std::size_t cap = kMinCapacity;
  while (entries * 4 > cap * 3) cap <<= 1;
  return cap;
}
}  // namespace

std::size_t SeenCache::probe(std::uint64_t fp) const {
  const std::size_t mask = fps_.size() - 1;
  std::size_t i = static_cast<std::size_t>(fp) & mask;
  while (fps_[i] != 0 && fps_[i] != fp) i = (i + 1) & mask;
  return i;
}

void SeenCache::insert(const MessageId& id, std::uint64_t at) {
  if (fps_.empty()) rehash(kMinCapacity);
  const std::uint64_t fp = fingerprint(id);
  std::size_t i = probe(fp);
  if (fps_[i] == 0) {
    if ((size_ + 1) * 4 > fps_.size() * 3) {
      rehash(fps_.size() * 2);
      i = probe(fp);
    }
    fps_[i] = fp;
    ++size_;
  }
  times_[i] = at;
}

void SeenCache::rehash(std::size_t capacity) {
  std::vector<std::uint64_t> old_fps = std::move(fps_);
  std::vector<std::uint64_t> old_times = std::move(times_);
  fps_.assign(capacity, 0);
  times_.assign(capacity, 0);
  const std::size_t mask = capacity - 1;
  for (std::size_t j = 0; j < old_fps.size(); ++j) {
    const std::uint64_t fp = old_fps[j];
    if (fp == 0) continue;
    std::size_t i = static_cast<std::size_t>(fp) & mask;
    while (fps_[i] != 0) i = (i + 1) & mask;
    fps_[i] = fp;
    times_[i] = old_times[j];
  }
}

void SeenCache::expire_older_than(std::uint64_t now, std::uint64_t ttl) {
  if (size_ == 0) return;
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < fps_.size(); ++i) {
    if (fps_[i] != 0 && now - times_[i] > ttl) {
      fps_[i] = 0;
    } else if (fps_[i] != 0) {
      ++survivors;
    }
  }
  size_ = survivors;
  if (survivors == 0) {
    // Back to the unallocated state a quiet node started in.
    fps_ = {};
    times_ = {};
    return;
  }
  // Tombstone-free rebuild at the smallest fitting capacity: linear
  // probing needs intact runs, and shrinking keeps the model honest after
  // a traffic burst drains.
  std::vector<std::uint64_t> live_fps;
  std::vector<std::uint64_t> live_times;
  live_fps.reserve(survivors);
  live_times.reserve(survivors);
  for (std::size_t i = 0; i < fps_.size(); ++i) {
    if (fps_[i] != 0) {
      live_fps.push_back(fps_[i]);
      live_times.push_back(times_[i]);
    }
  }
  const std::size_t cap = capacity_for(survivors);
  fps_.assign(cap, 0);
  times_.assign(cap, 0);
  // assign() never shrinks vector capacity; reallocate when the fit
  // changed so memory_bytes() tracks the live table, not its high-water
  // mark.
  if (fps_.capacity() != cap) {
    fps_.shrink_to_fit();
    times_.shrink_to_fit();
  }
  const std::size_t mask = cap - 1;
  for (std::size_t j = 0; j < live_fps.size(); ++j) {
    std::size_t i = static_cast<std::size_t>(live_fps[j]) & mask;
    while (fps_[i] != 0) i = (i + 1) & mask;
    fps_[i] = live_fps[j];
    times_[i] = live_times[j];
  }
}

}  // namespace wakurln::gossipsub
