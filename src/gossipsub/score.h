#pragma once
// GossipSub v1.1 peer scoring [3] — the reputation-based spam defence the
// paper uses as a baseline (§I). Implemented components:
//
//   P1  time in mesh             (bounded positive)
//   P2  first message deliveries (decaying positive)
//   P3  mesh delivery deficit    (squared negative below a threshold,
//                                 after an activation window; weight 0 ==
//                                 disabled by default, as it requires
//                                 per-topic traffic calibration)
//   P4  invalid messages         (squared, decaying negative)
//   P6  IP colocation factor     (squared negative above a threshold)
//
// P5 (app-specific) and P7 (behaviour penalties) are omitted: none of the
// paper's comparisons depend on them, and the attack the paper highlights
// — a bot swarm sending well-formed bulk traffic from many addresses —
// evades P1–P7 entirely (see bench_spam_protection).

#include <cstdint>
#include <string>
#include <unordered_map>

#include "gossipsub/message.h"
#include "sim/network.h"

namespace wakurln::gossipsub {

/// Per-topic scoring weights (libp2p defaults, lightly simplified).
struct TopicScoreParams {
  double topic_weight = 1.0;

  double time_in_mesh_weight = 0.01;
  sim::TimeUs time_in_mesh_quantum = sim::kUsPerSecond;
  double time_in_mesh_cap = 3600.0;

  double first_message_deliveries_weight = 1.0;
  double first_message_deliveries_decay = 0.9;  // per decay interval
  double first_message_deliveries_cap = 100.0;

  /// P3: mesh members delivering fewer than `threshold` messages per decay
  /// window (after `activation`) are penalised by weight * deficit^2.
  /// Disabled by default (weight 0): sensible thresholds depend on topic
  /// traffic volume.
  double mesh_message_deliveries_weight = 0.0;
  double mesh_message_deliveries_decay = 0.9;
  double mesh_message_deliveries_cap = 100.0;
  double mesh_message_deliveries_threshold = 5.0;
  sim::TimeUs mesh_message_deliveries_activation = 5 * sim::kUsPerSecond;

  double invalid_message_deliveries_weight = -100.0;
  double invalid_message_deliveries_decay = 0.9;
};

struct PeerScoreParams {
  TopicScoreParams topic;  // one shared per-topic parameter set

  double ip_colocation_weight = -10.0;
  /// Peers above this many on one IP are penalised quadratically.
  std::uint32_t ip_colocation_threshold = 1;

  /// Score below which gossip (IHAVE/IWANT) is withheld from the peer.
  double gossip_threshold = -10.0;
  /// Score below which self-published messages are not sent to the peer.
  double publish_threshold = -50.0;
  /// Score below which all traffic from the peer is ignored.
  double graylist_threshold = -80.0;
  /// Score required to stay in / be grafted into the mesh.
  double mesh_threshold = 0.0;
  /// Minimum score of a pruning peer for its PX referrals to be followed.
  double accept_px_threshold = 0.0;
};

/// Tracks counters and computes scores for one router's peers.
class PeerScoreTracker {
 public:
  explicit PeerScoreTracker(PeerScoreParams params) : params_(params) {}

  const PeerScoreParams& params() const { return params_; }

  /// Registers the IP a peer connects from (Sybil colocation accounting).
  void set_peer_ip(sim::NodeId peer, std::uint32_t ip);
  void remove_peer(sim::NodeId peer);

  void on_join_mesh(sim::NodeId peer, const TopicId& topic, sim::TimeUs now);
  void on_leave_mesh(sim::NodeId peer, const TopicId& topic);
  void on_first_delivery(sim::NodeId peer, const TopicId& topic);
  /// Any delivery (first or duplicate) arriving from a current mesh member.
  void on_mesh_delivery(sim::NodeId peer, const TopicId& topic);
  void on_invalid_message(sim::NodeId peer, const TopicId& topic);

  /// Applies the periodic decay (call once per decay interval).
  void decay();

  /// Current score of `peer`.
  double score(sim::NodeId peer, sim::TimeUs now) const;

 private:
  struct TopicCounters {
    bool in_mesh = false;
    sim::TimeUs mesh_joined_at = 0;
    double first_message_deliveries = 0;
    double mesh_message_deliveries = 0;
    double invalid_message_deliveries = 0;
  };
  struct PeerState {
    std::unordered_map<TopicId, TopicCounters> topics;
    std::uint32_t ip = 0;
    bool has_ip = false;
  };

  PeerScoreParams params_;
  std::unordered_map<sim::NodeId, PeerState> peers_;
  std::unordered_map<std::uint32_t, std::uint32_t> peers_per_ip_;
};

}  // namespace wakurln::gossipsub
