#include "gossipsub/mcache.h"

#include <algorithm>
#include <stdexcept>

#include "obs/memory.h"

namespace wakurln::gossipsub {

MessageCache::MessageCache(std::size_t history_len, std::size_t gossip_len)
    : MessageCache(history_len, gossip_len, std::make_shared<TopicTable>()) {}

MessageCache::MessageCache(std::size_t history_len, std::size_t gossip_len,
                           std::shared_ptr<TopicTable> table)
    : history_len_(history_len), gossip_len_(gossip_len), table_(std::move(table)) {
  if (history_len == 0 || gossip_len > history_len) {
    throw std::invalid_argument("MessageCache: need 0 < gossip_len <= history_len");
  }
}

void MessageCache::put(std::shared_ptr<const GsMessage> msg) {
  if (slots_.empty()) slots_.resize(history_len_);
  const std::uint32_t topic = table_->intern(msg->topic);
  slots_[slot(count_ - 1)].push_back(Entry{msg->id, topic});
  by_id_[msg->id] = std::move(msg);
}

std::shared_ptr<const GsMessage> MessageCache::get(const MessageId& id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::vector<MessageId> MessageCache::gossip_ids(const TopicId& topic) const {
  std::vector<MessageId> out;
  if (slots_.empty()) return out;
  const std::uint32_t topic_idx = table_->find(topic);
  if (topic_idx == TopicTable::kNotFound) return out;
  // Oldest-to-newest over the last gossip_len_ windows — the exact order
  // the window deque produced, which downstream IHAVE/IWANT traffic (and
  // thus the deterministic reports) depends on.
  const std::size_t n = std::min(gossip_len_, count_);
  for (std::size_t w = count_ - n; w < count_; ++w) {
    for (const Entry& e : slots_[slot(w)]) {
      if (e.topic == topic_idx) out.push_back(e.id);
    }
  }
  return out;
}

void MessageCache::shift() {
  if (count_ < history_len_) {
    // The slot the new window lands in has never been written (slots past
    // count_ stay untouched until the ring starts sliding), so opening
    // the window is just bumping the count.
    ++count_;
    return;
  }
  // Ring is full: retire the oldest window and reuse its slot (capacity
  // intact) as the new current window.
  if (!slots_.empty()) {
    std::vector<Entry>& oldest = slots_[head_];
    for (const Entry& e : oldest) by_id_.erase(e.id);
    oldest.clear();
  }
  head_ = (head_ + 1) % history_len_;
}

std::size_t MessageCache::memory_bytes() const {
  std::size_t total = sizeof(MessageCache);
  total += slots_.capacity() * sizeof(std::vector<Entry>);
  for (const std::vector<Entry>& window : slots_) {
    total += window.capacity() * sizeof(Entry);
  }
  total += by_id_.bucket_count() * sizeof(void*);
  total += by_id_.size() *
           (obs::kUnorderedNodeBytes +
            sizeof(std::pair<const MessageId, std::shared_ptr<const GsMessage>>));
  return total;
}

}  // namespace wakurln::gossipsub
