#include "gossipsub/mcache.h"

#include <stdexcept>

#include "obs/memory.h"

namespace wakurln::gossipsub {

MessageCache::MessageCache(std::size_t history_len, std::size_t gossip_len)
    : history_len_(history_len), gossip_len_(gossip_len) {
  if (history_len == 0 || gossip_len > history_len) {
    throw std::invalid_argument("MessageCache: need 0 < gossip_len <= history_len");
  }
  windows_.emplace_back();
}

void MessageCache::put(std::shared_ptr<const GsMessage> msg) {
  windows_.back().push_back(Entry{msg->id, msg->topic});
  by_id_[msg->id] = std::move(msg);
}

std::shared_ptr<const GsMessage> MessageCache::get(const MessageId& id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::vector<MessageId> MessageCache::gossip_ids(const TopicId& topic) const {
  std::vector<MessageId> out;
  const std::size_t start =
      windows_.size() > gossip_len_ ? windows_.size() - gossip_len_ : 0;
  for (std::size_t w = start; w < windows_.size(); ++w) {
    for (const Entry& e : windows_[w]) {
      if (e.topic == topic) out.push_back(e.id);
    }
  }
  return out;
}

std::size_t MessageCache::memory_bytes() const {
  std::size_t total = sizeof(MessageCache);
  for (const std::vector<Entry>& window : windows_) {
    total += sizeof(std::vector<Entry>) + window.size() * sizeof(Entry);
    for (const Entry& e : window) total += obs::string_heap_bytes(e.topic);
  }
  total += by_id_.bucket_count() * sizeof(void*);
  total += by_id_.size() *
           (obs::kUnorderedNodeBytes +
            sizeof(std::pair<const MessageId, std::shared_ptr<const GsMessage>>));
  return total;
}

void MessageCache::shift() {
  windows_.emplace_back();
  while (windows_.size() > history_len_) {
    for (const Entry& e : windows_.front()) by_id_.erase(e.id);
    windows_.pop_front();
  }
}

}  // namespace wakurln::gossipsub
