#include "gossipsub/topic_table.h"

#include <mutex>

#include "obs/memory.h"
#include "util/check.h"

namespace wakurln::gossipsub {

std::uint32_t TopicTable::intern(const TopicId& topic) {
  {
    // Fast path: the topic is almost always already interned (worlds
    // declare their topic sets at setup), so readers share the lock.
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = index_.find(topic);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = index_.find(topic);  // re-check: lost the upgrade race
  if (it != index_.end()) return it->second;
  WAKURLN_CHECK_MSG(names_.size() < kMaxTopics,
                    "TopicTable: more than 64 distinct topics in one world");
  const auto idx = static_cast<std::uint32_t>(names_.size());
  names_.push_back(topic);
  index_.emplace(topic, idx);
  return idx;
}

std::uint32_t TopicTable::find(const TopicId& topic) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = index_.find(topic);
  return it == index_.end() ? kNotFound : it->second;
}

std::size_t TopicTable::memory_bytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::size_t total = sizeof(TopicTable);
  total += names_.capacity() * sizeof(TopicId);
  for (const TopicId& t : names_) total += obs::string_heap_bytes(t);
  total += index_.bucket_count() * sizeof(void*);
  for (const auto& [t, idx] : index_) {
    (void)idx;
    total += obs::kUnorderedNodeBytes + sizeof(std::pair<const TopicId, std::uint32_t>) +
             obs::string_heap_bytes(t);
  }
  return total;
}

}  // namespace wakurln::gossipsub
